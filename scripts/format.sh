#!/usr/bin/env bash
# Check (default) or apply clang-format on the directories that are committed
# format-clean: the lint subsystem, the tools and the lint tests.  The older
# tree predates .clang-format and is reformatted opportunistically, so the
# check deliberately does not cover it yet — widen FORMAT_DIRS as directories
# are brought into compliance.
#
#   scripts/format.sh            # check only, non-zero exit on violations
#   scripts/format.sh --fix     # rewrite files in place
set -euo pipefail
cd "$(dirname "$0")/.."

FORMAT_DIRS=(src/lint tools tests/lint)

if ! command -v clang-format >/dev/null; then
  echo "format.sh: clang-format not found on PATH (CI installs it; local runs need it)" >&2
  exit 2
fi

mapfile -t files < <(find "${FORMAT_DIRS[@]}" -name '*.cpp' -o -name '*.hpp' | sort)

if [[ "${1:-}" == "--fix" ]]; then
  clang-format -i --style=file "${files[@]}"
  echo "format.sh: formatted ${#files[@]} files"
else
  clang-format --dry-run -Werror --style=file "${files[@]}"
  echo "format.sh: OK (${#files[@]} files clean)"
fi
