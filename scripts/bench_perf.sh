#!/usr/bin/env bash
# Measures the simulator hot path (bench_micro_sim), the parallel trial
# runner (bench_fig03_algorithms wall time at --jobs 1 vs --jobs nproc) and
# the sharded PDES engine (bench_fig06_hier_titan wall time over --shards —
# the single-World benchmark --jobs cannot help with) and writes the result
# as JSON.
#
#   scripts/bench_perf.sh [BUILD_DIR]     (default: build)
#
# Environment:
#   BENCH_OUT       output path (default: BENCH_pr2.json in the repo root)
#   BENCH_SUITE     "suite" label embedded in the JSON
#   BASELINE_JSON   optional google-benchmark JSON of the same micro suite
#                   from a baseline tree; per-benchmark speedups are computed
#                   against it and embedded under "baseline".
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${BENCH_OUT:-BENCH_pr2.json}"
MICRO="$BUILD_DIR/bench/bench_micro_sim"
FIG03="$BUILD_DIR/bench/bench_fig03_algorithms"
FIG06="$BUILD_DIR/bench/bench_fig06_hier_titan"
[[ -x "$MICRO" && -x "$FIG03" && -x "$FIG06" ]] \
  || { echo "bench_perf.sh: build '$BUILD_DIR' first (cmake --build $BUILD_DIR -j)" >&2; exit 1; }

MICRO_JSON=$(mktemp)
trap 'rm -f "$MICRO_JSON"' EXIT
# Repetitions + best-of: on shared/virtualized machines single runs swing by
# 10-20%; the fastest repetition is the least-perturbed measurement.
"$MICRO" \
  --benchmark_filter='BM_EventQueuePushPop|BM_SimulationDelayChain|BM_TaskCallChain' \
  --benchmark_min_time=0.5 --benchmark_repetitions=5 \
  --benchmark_format=json > "$MICRO_JSON"

# Wall time of a full figure reproduction at a fixed scale, serial vs. all
# cores.  The output is byte-identical either way; only the clock differs.
fig03_seconds() {
  local start_ns end_ns
  start_ns=$(date +%s%N)
  "$FIG03" --scale 0.05 --seed 1 --jobs "$1" > /dev/null
  end_ns=$(date +%s%N)
  awk -v a="$start_ns" -v b="$end_ns" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}
NPROC=$(nproc)
FIG03_J1=$(fig03_seconds 1)
FIG03_JN=$(fig03_seconds "$NPROC")

# The sharded-engine sweep: one 16 384-rank Titan World (the workload --jobs
# cannot parallelize — a single slow trial) advanced on 1/2/4 shard threads.
# Output is byte-identical at every shard count; only the clock differs.
fig06_seconds() {
  local start_ns end_ns
  start_ns=$(date +%s%N)
  "$FIG06" --scale 0.01 --seed 1 --shards "$1" > /dev/null
  end_ns=$(date +%s%N)
  awk -v a="$start_ns" -v b="$end_ns" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}
FIG06_S1=$(fig06_seconds 1)
FIG06_S2=$(fig06_seconds 2)
FIG06_S4=$(fig06_seconds 4)

python3 - "$MICRO_JSON" "$OUT" "$FIG03_J1" "$FIG03_JN" "$NPROC" \
    "$FIG06_S1" "$FIG06_S2" "$FIG06_S4" "${BASELINE_JSON:-}" <<'PY'
import json
import os
import sys

(micro_path, out_path, fig03_j1, fig03_jn, nproc,
 fig06_s1, fig06_s2, fig06_s4, baseline_path) = sys.argv[1:10]

def micro_table(path):
    with open(path) as f:
        doc = json.load(f)
    table = {}
    for bench in doc["benchmarks"]:
        if "items_per_second" not in bench:  # e.g. an unfiltered baseline run
            continue
        if bench.get("run_type") == "aggregate":  # keep raw repetitions only
            continue
        name = bench["name"].split("/repeats:")[0]
        entry = {
            "real_time_ns": round(bench["real_time"], 1),
            "items_per_second": round(bench["items_per_second"]),
            "per_item_ns": round(1e9 / bench["items_per_second"], 2),
        }
        if name not in table or entry["per_item_ns"] < table[name]["per_item_ns"]:
            table[name] = entry  # best repetition wins
    return table

micro = micro_table(micro_path)
result = {
    "suite": os.environ.get("BENCH_SUITE",
                            "pr2: parallel trial runner + simulator hot path"),
    "notes": [
        "per-benchmark values are the best repetition (least-perturbed run on a shared machine)",
        "baseline should be captured with this same script from a pre-PR tree, ideally interleaved with the current binary",
        "fig03 jobs_nproc equals jobs_1 when nproc is 1; the runner's speedup needs real cores",
        "fig06 shards_N on a 1-core host measures the engine's overhead, not its speedup: the shard workers time-slice one core, so shards_N >= shards_1 there by construction; speedup needs real cores",
    ],
    "machine": {"nproc": int(nproc)},
    "micro": micro,
    "fig03_wall_seconds": {
        "scale": 0.05,
        "jobs_1": float(fig03_j1),
        "jobs_nproc": float(fig03_jn),
        "speedup": round(float(fig03_j1) / float(fig03_jn), 2),
    },
    "fig06_shards_wall_seconds": {
        "scale": 0.01,
        "shards_1": float(fig06_s1),
        "shards_2": float(fig06_s2),
        "shards_4": float(fig06_s4),
        "speedup_shards_4": round(float(fig06_s1) / float(fig06_s4), 2),
    },
}
if baseline_path:
    baseline = micro_table(baseline_path)
    result["baseline"] = baseline
    result["speedup_vs_baseline"] = {
        name: round(baseline[name]["per_item_ns"] / micro[name]["per_item_ns"], 3)
        for name in micro
        if name in baseline
    }

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"bench_perf.sh: wrote {out_path}")
PY
