#!/usr/bin/env bash
# Measures the simulator hot path (bench_micro_sim), the parallel trial
# runner (bench_fig03_algorithms wall time at --jobs 1 vs --jobs nproc) and
# the sharded PDES engine (bench_fig06_hier_titan wall time over --shards —
# the single-World benchmark --jobs cannot help with) and writes the result
# as JSON.
#
#   scripts/bench_perf.sh [BUILD_DIR]             (default: build)
#   scripts/bench_perf.sh [BUILD_DIR] fig_scale   bench_scale rank sweep
#
# fig_scale runs bench_scale once per (rank count x queue engine), asserts
# the deterministic stdout is byte-identical between the heap and ladder
# engines at every point, and writes the per-point host metrics (wall time,
# events/sec, peak RSS, frame-pool reservation) as JSON (BENCH_pr7.json).
#
# Environment:
#   BENCH_OUT       output path (default: BENCH_pr2.json, or BENCH_pr7.json
#                   in fig_scale mode)
#   BENCH_SUITE     "suite" label embedded in the JSON
#   BASELINE_JSON   optional google-benchmark JSON of the same micro suite
#                   from a baseline tree; per-benchmark speedups are computed
#                   against it and embedded under "baseline".
#   SCALE_RANKS     fig_scale sweep points (default 16384,65536,131072)
#   SCALE_SHARDS    fig_scale --shards per World (default 1)
#   SCALE_SEED      fig_scale --seed (default 1)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
MODE="${2:-full}"

if [[ "$MODE" == "fig_scale" ]]; then
  OUT="${BENCH_OUT:-BENCH_pr7.json}"
  SCALE_BIN="$BUILD_DIR/bench/bench_scale"
  [[ -x "$SCALE_BIN" ]] \
    || { echo "bench_perf.sh: build '$BUILD_DIR' first (cmake --build $BUILD_DIR -j --target bench_scale)" >&2; exit 1; }
  RANKS="${SCALE_RANKS:-16384,65536,131072}"
  SHARDS="${SCALE_SHARDS:-1}"
  SEED="${SCALE_SEED:-1}"
  WORK=$(mktemp -d)
  trap 'rm -rf "$WORK"' EXIT
  for r in ${RANKS//,/ }; do
    for q in heap ladder; do
      echo "bench_perf.sh: bench_scale --ranks $r --queue $q --shards $SHARDS" >&2
      # Fresh process per point: peak RSS is a process-lifetime high-water
      # mark, so sharing a process would attribute the largest World to
      # every point.  --jobs 1 keeps the two algorithms sequential for the
      # same reason.
      "$SCALE_BIN" --ranks "$r" --queue "$q" --shards "$SHARDS" --jobs 1 \
        --seed "$SEED" --csv \
        > "$WORK/out_${r}_${q}" 2> "$WORK/host_${r}_${q}"
    done
    cmp -s "$WORK/out_${r}_heap" "$WORK/out_${r}_ladder" \
      || { echo "bench_perf.sh: bench_scale stdout differs between the heap and ladder engines at $r ranks" >&2; exit 1; }
    echo "bench_perf.sh: stdout byte-identical heap vs ladder at $r ranks" >&2
  done
  python3 - "$WORK" "$OUT" "$RANKS" "$SHARDS" "$SEED" "$(nproc)" <<'PY'
import json
import os
import sys

work, out_path, ranks_csv, shards, seed, nproc = sys.argv[1:7]
ranks = [int(r) for r in ranks_csv.split(",")]
queues = ["heap", "ladder"]

def csv_rows(path):
    """The 6-column CSV rows a bench_scale table printed with --csv."""
    rows = []
    with open(path) as f:
        for line in f:
            parts = line.strip().split(",")
            if len(parts) == 6 and parts[0] != "algorithm":
                rows.append(parts)
    return rows

points = []
summary = {}
for r in ranks:
    per_queue = {}
    for q in queues:
        det = csv_rows(f"{work}/out_{r}_{q}")
        host = csv_rows(f"{work}/host_{r}_{q}")
        total_events, total_wall, peak = 0, 0.0, 0.0
        for d, h in zip(det, host):
            alg, _, dur, off0, off1, events = d
            _, _, wall, eps, rss, pool = h
            points.append({
                "ranks": r,
                "queue": q,
                "algorithm": alg,
                "sync_duration_s": float(dur),
                "max_offset_0s_us": float(off0),
                "max_offset_1s_us": float(off1),
                "events": int(events),
                "wall_s": float(wall),
                "events_per_s": int(eps),
                "peak_rss_mib": float(rss),
                "frame_pool_mib": float(pool),
            })
            total_events += int(events)
            total_wall += float(wall)
            peak = max(peak, float(rss))
        per_queue[q] = {
            "wall_s": round(total_wall, 2),
            "events_per_s": round(total_events / total_wall) if total_wall else 0,
            "peak_rss_mib": peak,
        }
    summary[str(r)] = dict(per_queue)
    summary[str(r)]["ladder_speedup"] = round(
        per_queue["heap"]["wall_s"] / per_queue["ladder"]["wall_s"], 3)

result = {
    "suite": os.environ.get(
        "BENCH_SUITE", "pr7: million-rank scale — ladder queue + slab-allocated rank state"),
    "notes": [
        "one bench_scale process per (ranks, queue) point; --jobs 1, so peak_rss_mib is attributable to that point's Worlds",
        "stdout (sync durations, offsets, event counts) verified byte-identical between the heap and ladder engines at every rank count before this file was written",
        "events_per_s in summary is total events / total wall over both algorithms at that point; per-algorithm rates are in points[]",
        "ladder_speedup = heap wall / ladder wall at the same rank count; > 1 means the ladder queue is ahead",
    ],
    "machine": {"nproc": int(nproc)},
    "config": {"ranks": ranks, "queues": queues, "shards": int(shards),
               "jobs": 1, "seed": int(seed), "scale": 0.05},
    "determinism": {"stdout_byte_identical_heap_vs_ladder": True,
                    "verified_rank_counts": ranks},
    "points": points,
    "summary": summary,
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"bench_perf.sh: wrote {out_path}")
PY
  exit 0
fi

OUT="${BENCH_OUT:-BENCH_pr2.json}"
MICRO="$BUILD_DIR/bench/bench_micro_sim"
FIG03="$BUILD_DIR/bench/bench_fig03_algorithms"
FIG06="$BUILD_DIR/bench/bench_fig06_hier_titan"
[[ -x "$MICRO" && -x "$FIG03" && -x "$FIG06" ]] \
  || { echo "bench_perf.sh: build '$BUILD_DIR' first (cmake --build $BUILD_DIR -j)" >&2; exit 1; }

MICRO_JSON=$(mktemp)
trap 'rm -f "$MICRO_JSON"' EXIT
# Repetitions + best-of: on shared/virtualized machines single runs swing by
# 10-20%; the fastest repetition is the least-perturbed measurement.
"$MICRO" \
  --benchmark_filter='BM_EventQueuePushPop|BM_SimulationDelayChain|BM_TaskCallChain' \
  --benchmark_min_time=0.5 --benchmark_repetitions=5 \
  --benchmark_format=json > "$MICRO_JSON"

# Wall time of a full figure reproduction at a fixed scale, serial vs. all
# cores.  The output is byte-identical either way; only the clock differs.
fig03_seconds() {
  local start_ns end_ns
  start_ns=$(date +%s%N)
  "$FIG03" --scale 0.05 --seed 1 --jobs "$1" > /dev/null
  end_ns=$(date +%s%N)
  awk -v a="$start_ns" -v b="$end_ns" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}
NPROC=$(nproc)
FIG03_J1=$(fig03_seconds 1)
FIG03_JN=$(fig03_seconds "$NPROC")

# The sharded-engine sweep: one 16 384-rank Titan World (the workload --jobs
# cannot parallelize — a single slow trial) advanced on 1/2/4 shard threads.
# Output is byte-identical at every shard count; only the clock differs.
fig06_seconds() {
  local start_ns end_ns
  start_ns=$(date +%s%N)
  "$FIG06" --scale 0.01 --seed 1 --shards "$1" > /dev/null
  end_ns=$(date +%s%N)
  awk -v a="$start_ns" -v b="$end_ns" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}
FIG06_S1=$(fig06_seconds 1)
FIG06_S2=$(fig06_seconds 2)
FIG06_S4=$(fig06_seconds 4)

python3 - "$MICRO_JSON" "$OUT" "$FIG03_J1" "$FIG03_JN" "$NPROC" \
    "$FIG06_S1" "$FIG06_S2" "$FIG06_S4" "${BASELINE_JSON:-}" <<'PY'
import json
import os
import sys

(micro_path, out_path, fig03_j1, fig03_jn, nproc,
 fig06_s1, fig06_s2, fig06_s4, baseline_path) = sys.argv[1:10]

def micro_table(path):
    with open(path) as f:
        doc = json.load(f)
    table = {}
    for bench in doc["benchmarks"]:
        if "items_per_second" not in bench:  # e.g. an unfiltered baseline run
            continue
        if bench.get("run_type") == "aggregate":  # keep raw repetitions only
            continue
        name = bench["name"].split("/repeats:")[0]
        entry = {
            "real_time_ns": round(bench["real_time"], 1),
            "items_per_second": round(bench["items_per_second"]),
            "per_item_ns": round(1e9 / bench["items_per_second"], 2),
        }
        if name not in table or entry["per_item_ns"] < table[name]["per_item_ns"]:
            table[name] = entry  # best repetition wins
    return table

micro = micro_table(micro_path)
result = {
    "suite": os.environ.get("BENCH_SUITE",
                            "pr2: parallel trial runner + simulator hot path"),
    "notes": [
        "per-benchmark values are the best repetition (least-perturbed run on a shared machine)",
        "baseline should be captured with this same script from a pre-PR tree, ideally interleaved with the current binary",
        "fig03 jobs_nproc equals jobs_1 when nproc is 1; the runner's speedup needs real cores",
        "fig06 shards_N on a 1-core host measures the engine's overhead, not its speedup: the shard workers time-slice one core, so shards_N >= shards_1 there by construction; speedup needs real cores",
    ],
    "machine": {"nproc": int(nproc)},
    "micro": micro,
    "fig03_wall_seconds": {
        "scale": 0.05,
        "jobs_1": float(fig03_j1),
        "jobs_nproc": float(fig03_jn),
        "speedup": round(float(fig03_j1) / float(fig03_jn), 2),
    },
    "fig06_shards_wall_seconds": {
        "scale": 0.01,
        "shards_1": float(fig06_s1),
        "shards_2": float(fig06_s2),
        "shards_4": float(fig06_s4),
        "speedup_shards_4": round(float(fig06_s1) / float(fig06_s4), 2),
    },
}
if baseline_path:
    baseline = micro_table(baseline_path)
    result["baseline"] = baseline
    result["speedup_vs_baseline"] = {
        name: round(baseline[name]["per_item_ns"] / micro[name]["per_item_ns"], 3)
        for name in micro
        if name in baseline
    }

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"bench_perf.sh: wrote {out_path}")
PY
