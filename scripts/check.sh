#!/usr/bin/env bash
# Strict pre-merge check: configure Release with warnings-as-errors, build
# everything, run the full test suite, and smoke-run the observability
# showcase end to end (trace written, schema-validated, metrics emitted).
#
#   scripts/check.sh [BUILD_DIR]     (default: build-check)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release -DHCS_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -j "$(nproc)" --output-on-failure

# Repo-wide static analysis gate (also runs as the `lint`-labelled ctest;
# invoked directly here for a focused log line and exit status).
"$BUILD_DIR/tools/hcs_lint" --root . --baseline .lint-baseline \
  src bench examples tests tools

# End-to-end observability smoke: trace_app must produce a valid Chrome
# trace and a metrics CSV.
TRACE_JSON="$BUILD_DIR/check_trace.json"
METRICS_CSV="$BUILD_DIR/check_metrics.csv"
"$BUILD_DIR/examples/trace_app" --nodes 2 --cores 2 --iterations 4 \
  --trace-out "$TRACE_JSON" --metrics-out "$METRICS_CSV" > /dev/null
"$BUILD_DIR/tests/validate_trace" "$TRACE_JSON"
head -1 "$METRICS_CSV" | grep -q '^name,kind,unit,' \
  || { echo "check.sh: unexpected metrics CSV header" >&2; exit 1; }

echo "check.sh: OK (-Werror build, $(grep -c '^' "$METRICS_CSV") metric rows)"
