#!/usr/bin/env bash
# Verify every relative markdown link in the repo's docs resolves to a real
# file (anchors are stripped; http(s)/mailto links are skipped).  CI runs
# this so a renamed doc or section file fails the build instead of rotting.
#
#   scripts/check_links.sh [FILE.md ...]   (default: *.md + docs/*.md)
set -euo pipefail
cd "$(dirname "$0")/.."

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  mapfile -t files < <(ls ./*.md docs/*.md)
fi

broken=0
for f in "${files[@]}"; do
  dir=$(dirname "$f")
  # Pull out the (target) of every [text](target) markdown link.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"            # drop the #anchor, keep the file part
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" ]]; then
      echo "$f: broken link -> $target" >&2
      broken=1
    fi
  done < <(
    # Fenced code blocks and inline `code` spans are full of [x](y)-shaped
    # C++ (lambdas); strip them before extracting link targets.
    awk '/^```/ { fence = !fence; next } !fence' "$f" \
      | sed 's/`[^`]*`//g' \
      | grep -o '\[[^]]*\]([^)]*)' \
      | sed 's/^\[[^]]*\](\([^)]*\))$/\1/' \
      || true
  )
done

if [[ $broken -ne 0 ]]; then
  echo "check_links: broken relative links found" >&2
  exit 1
fi
echo "check_links: all relative links resolve (${#files[@]} files)"
