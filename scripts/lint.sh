#!/usr/bin/env bash
# Run hcs-lint over the tree (src bench examples tests tools) against the
# committed baseline.  Builds the tool if the build dir doesn't have it yet.
#
#   scripts/lint.sh [--changed] [BUILD_DIR] [extra hcs_lint args...]   (default: build)
#
# --changed lints only the files that differ from origin/main (committed,
# staged, unstaged and untracked), which keeps the edit loop fast; it falls
# back to a full run when origin/main is unavailable (shallow clone, no
# remote).  Interprocedural rules then only see the changed files, so the
# repo-wide gate in CI remains the full run.
#
# Exit codes follow the tool: 0 clean, 1 findings, 2 usage/I-O error.
set -euo pipefail
cd "$(dirname "$0")/.."

CHANGED=0
if [[ "${1:-}" == "--changed" ]]; then
  CHANGED=1
  shift
fi

BUILD_DIR="${1:-build}"
shift || true

if [[ ! -x "$BUILD_DIR/tools/hcs_lint" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target hcs_lint_tool >/dev/null
fi

if [[ "$CHANGED" == 1 ]]; then
  if base=$(git merge-base origin/main HEAD 2>/dev/null); then
    mapfile -t files < <(
      {
        git diff --name-only "$base"
        git diff --name-only
        git ls-files --others --exclude-standard
      } | sort -u \
        | grep -E '^(src|bench|examples|tests|tools)/.*\.(cpp|hpp|h|cc|cxx|hxx)$' \
        | grep -v '^tests/lint/fixtures/' || true
    )
    # Drop files that no longer exist (deletions still show up in the diff).
    existing=()
    for f in "${files[@]:-}"; do
      [[ -n "$f" && -f "$f" ]] && existing+=("$f")
    done
    if [[ ${#existing[@]} -eq 0 ]]; then
      echo "lint.sh: no C++ files changed relative to origin/main — nothing to lint"
      exit 0
    fi
    exec "$BUILD_DIR/tools/hcs_lint" --root . --baseline .lint-baseline "$@" "${existing[@]}"
  fi
  echo "lint.sh: origin/main not found — falling back to a full run" >&2
fi

exec "$BUILD_DIR/tools/hcs_lint" --root . --baseline .lint-baseline "$@" \
  src bench examples tests tools
