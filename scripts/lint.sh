#!/usr/bin/env bash
# Run hcs-lint over the tree (src bench examples tests tools) against the
# committed baseline.  Builds the tool if the build dir doesn't have it yet.
#
#   scripts/lint.sh [BUILD_DIR] [extra hcs_lint args...]   (default: build)
#
# Exit codes follow the tool: 0 clean, 1 findings, 2 usage/I-O error.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true

if [[ ! -x "$BUILD_DIR/tools/hcs_lint" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target hcs_lint_tool >/dev/null
fi

exec "$BUILD_DIR/tools/hcs_lint" --root . --baseline .lint-baseline "$@" \
  src bench examples tests tools
