#!/usr/bin/env bash
# Reproduce the full evaluation: build, run all tests, run every bench.
#
#   scripts/reproduce_all.sh [SCALE]
#
# SCALE (default: each binary's own default) multiplies repetition counts /
# fit points; 1.0 is the paper's full configuration.  Outputs land in
# test_output.txt and bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -ge 1 ]]; then
  export HCLOCKSYNC_SCALE="$1"
fi

cmake -B build
cmake --build build -j "$(nproc)"
ctest --test-dir build -j "$(nproc)" 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [[ -f "$b" && -x "$b" ]] || continue
  "$b"
done 2>&1 | tee bench_output.txt
