// The hcs-lint CLI — in-repo static analysis for collective matching,
// determinism hygiene and coroutine-lifetime hazards.  See
// docs/static-analysis.md.
//
// Usage:
//   hcs_lint [options] <paths...>         (paths default to src bench examples tests)
//     --root DIR             repo root; relative paths resolve against it (default: cwd)
//     --baseline FILE        suppress findings recorded in FILE
//     --write-baseline FILE  record current findings as the new baseline and exit
//     --rule ID              run only this rule (repeatable)
//     --list-rules           print the rule table and exit
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/rules.hpp"
#include "util/cli.hpp"

namespace {

int list_rules() {
  for (const auto& r : hcs::lint::rule_table()) {
    std::cout << r.id << "  [" << r.category << ", " << to_string(r.severity) << "]\n    "
              << r.summary << "\n";
    for (const auto& p : r.exempt_path_prefixes) {
      std::cout << "    exempt: " << p << "\n";
    }
  }
  return 0;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("hcs-lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hcs;
  try {
    const util::Cli cli(argc, argv, {"list-rules"});
    cli.reject_unknown({"root", "baseline", "write-baseline", "rule", "list-rules"});
    if (cli.has("list-rules")) return list_rules();

    lint::AnalyzerOptions options;
    options.root = cli.get("root", "");
    for (const std::string& id : cli.get_all("rule")) {
      if (!lint::find_rule(id)) {
        std::cerr << "hcs-lint: unknown rule '" << id << "' (see --list-rules)\n";
        return 2;
      }
      options.enabled_rules.insert(id);
    }

    std::vector<std::string> paths = cli.positional();
    if (paths.empty()) paths = {"src", "bench", "examples", "tests"};
    const lint::AnalysisResult result = lint::analyze_paths(paths, options);

    const std::string write_to = cli.get("write-baseline", "");
    if (!write_to.empty()) {
      std::ofstream out(write_to, std::ios::binary);
      if (!out) throw std::runtime_error("hcs-lint: cannot write " + write_to);
      out << lint::Baseline::serialize(result.findings, result.lines);
      std::cout << "hcs-lint: wrote baseline with " << result.findings.size()
                << " finding(s) to " << write_to << "\n";
      return 0;
    }

    lint::Baseline baseline;
    const std::string baseline_path = cli.get("baseline", "");
    if (!baseline_path.empty()) {
      std::string error;
      if (!baseline.parse(slurp(baseline_path), &error)) {
        std::cerr << "hcs-lint: " << error << "\n";
        return 2;
      }
    }
    const std::vector<lint::Finding> fresh = lint::apply_baseline(result, baseline);

    for (const auto& f : fresh) {
      std::cout << f.path << ":" << f.line << ":" << f.col << ": " << to_string(f.severity)
                << ": " << f.message << " [" << f.rule << "]\n";
    }
    const std::size_t baselined = result.findings.size() - fresh.size();
    if (fresh.empty()) {
      std::cout << "hcs-lint: clean (" << result.lines.size() << " files";
      if (baselined != 0) std::cout << ", " << baselined << " baselined finding(s)";
      std::cout << ")\n";
      return 0;
    }
    std::cout << "hcs-lint: " << fresh.size() << " finding(s) in " << result.lines.size()
              << " files";
    if (baselined != 0) std::cout << " (" << baselined << " more baselined)";
    std::cout << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
