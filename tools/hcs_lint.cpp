// The hcs-lint CLI — in-repo static analysis for collective matching,
// determinism hygiene and coroutine-lifetime hazards, with whole-program
// (cross-TU) interprocedural rules.  See docs/static-analysis.md.
//
// Usage:
//   hcs_lint [options] <paths...>         (paths default to src bench examples tests)
//     --root DIR             repo root; relative paths resolve against it (default: cwd)
//     --baseline FILE        suppress findings recorded in FILE
//     --write-baseline FILE  record current findings as the new baseline and exit
//     --rule ID              run only this rule (repeatable)
//     --cache DIR            incremental summary cache: unchanged files are not re-lexed
//     --sarif FILE           also write non-baselined findings as SARIF 2.1.0
//     --stats                print a per-rule findings/runtime table
//     --max-call-depth N     interprocedural chain bound in call edges (default 4)
//     --list-rules           print the rule table and exit
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"
#include "util/cli.hpp"

namespace {

int list_rules() {
  for (const auto& r : hcs::lint::rule_table()) {
    std::cout << r.id << "  [" << r.category << ", " << to_string(r.severity)
              << (r.interprocedural ? ", interprocedural" : "") << "]\n    " << r.summary
              << "\n";
    for (const auto& p : r.exempt_path_prefixes) {
      std::cout << "    exempt: " << p << "\n";
    }
  }
  return 0;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("hcs-lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void print_stats(const hcs::lint::AnalysisStats& stats) {
  std::printf("\n%-28s %9s %9s\n", "rule", "findings", "ms");
  for (const auto& [id, rs] : stats.rules) {
    std::printf("%-28s %9d %9.2f\n", id.c_str(), rs.findings, rs.seconds * 1e3);
  }
  std::printf("files: %d (%d lexed, %d from cache)\n", stats.files, stats.files_lexed,
              stats.cache_hits);
  std::printf("phase 1 (summaries): %.1f ms   phase 2 (interproc): %.1f ms   total: %.1f ms\n",
              stats.summary_seconds * 1e3, stats.interproc_seconds * 1e3,
              stats.total_seconds * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hcs;
  try {
    const util::Cli cli(argc, argv, {"list-rules", "stats"});
    cli.reject_unknown({"root", "baseline", "write-baseline", "rule", "cache", "sarif", "stats",
                        "max-call-depth", "list-rules"});
    if (cli.has("list-rules")) return list_rules();

    lint::AnalyzerOptions options;
    options.root = cli.get("root", "");
    options.cache_dir = cli.get("cache", "");
    options.max_call_depth = static_cast<std::size_t>(cli.get_int("max-call-depth", 4));
    options.now = [] {
      // hcs-lint: allow-next-line(wall-clock) --stats timing shim, host-only by construction
      const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
      return std::chrono::duration<double>(since_epoch).count();
    };
    for (const std::string& id : cli.get_all("rule")) {
      if (!lint::find_rule(id)) {
        std::cerr << "hcs-lint: unknown rule '" << id << "' (see --list-rules)\n";
        return 2;
      }
      options.enabled_rules.insert(id);
    }

    std::vector<std::string> paths = cli.positional();
    if (paths.empty()) paths = {"src", "bench", "examples", "tests"};
    const lint::AnalysisResult result = lint::analyze_paths(paths, options);

    const std::string write_to = cli.get("write-baseline", "");
    if (!write_to.empty()) {
      std::ofstream out(write_to, std::ios::binary);
      if (!out) throw std::runtime_error("hcs-lint: cannot write " + write_to);
      out << lint::Baseline::serialize(result.findings, result.lines);
      std::cout << "hcs-lint: wrote baseline with " << result.findings.size()
                << " finding(s) to " << write_to << "\n";
      return 0;
    }

    lint::Baseline baseline;
    const std::string baseline_path = cli.get("baseline", "");
    if (!baseline_path.empty()) {
      std::string error;
      if (!baseline.parse(slurp(baseline_path), &error)) {
        std::cerr << "hcs-lint: " << error << "\n";
        return 2;
      }
      for (const std::string& w : baseline.unknown_rule_warnings()) {
        std::cerr << "hcs-lint: warning: " << baseline_path << ": " << w << "\n";
      }
    }
    const std::vector<lint::Finding> fresh = lint::apply_baseline(result, baseline);

    const std::string sarif_path = cli.get("sarif", "");
    if (!sarif_path.empty()) {
      std::ofstream out(sarif_path, std::ios::binary);
      if (!out) throw std::runtime_error("hcs-lint: cannot write " + sarif_path);
      out << lint::to_sarif(fresh);
    }

    for (const auto& f : fresh) {
      std::cout << f.path << ":" << f.line << ":" << f.col << ": " << to_string(f.severity)
                << ": " << f.message << " [" << f.rule << "]\n";
    }
    if (cli.has("stats")) print_stats(result.stats);
    const std::size_t baselined = result.findings.size() - fresh.size();
    if (fresh.empty()) {
      std::cout << "hcs-lint: clean (" << result.lines.size() << " files";
      if (baselined != 0) std::cout << ", " << baselined << " baselined finding(s)";
      std::cout << ")\n";
      return 0;
    }
    std::cout << "hcs-lint: " << fresh.size() << " finding(s) in " << result.lines.size()
              << " files";
    if (baselined != 0) std::cout << " (" << baselined << " more baselined)";
    std::cout << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
