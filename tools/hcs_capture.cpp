// The hcs_capture CLI — record a named capture scenario to a .hcsr file and
// (optionally) its per-rank outcomes to a hexfloat sidecar
// (docs/record-replay.md).  The incident library under
// tests/replay/incidents/ is produced by this tool; --perturb regenerates
// the deliberately-nudged twin recordings the bisect acceptance tests diff.
//
// Usage:
//   hcs_capture --scenario NAME [--seed N] [--out FILE] [--expect FILE]
//               [--shards K] [--queue IMPL] [--perturb SPEC] [--replay-rank R]
//     --scenario NAME   capture scenario to run (--list prints the registry)
//     --seed N          World seed (default 1)
//     --out FILE        write the recording here
//     --expect FILE     write one describe_outcome() line per rank (hexfloat;
//                       bit-exact round-trip) for incident sidecars
//     --shards K        event-loop shards (recordings are shard-invariant)
//     --queue IMPL      event-queue engine: heap, ladder or adaptive
//     --perturb SPEC    add one extra fault spec (e.g. a straggler nudge) on
//                       top of the scenario's plan before recording
//     --replay-rank R   after recording, replay rank R against the in-memory
//                       recording and verify its outcome matches (self-check)
//     --list            print the scenario registry and exit
//
// Exit codes: 0 success, 1 self-check divergence, 2 usage or I/O error.
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "replay/feed.hpp"
#include "replay/format.hpp"
#include "replay/harness.hpp"
#include "replay/record.hpp"
#include "replay/scenario.hpp"
#include "sim/event_queue.hpp"
#include "simmpi/world.hpp"
#include "util/cli.hpp"

namespace {

int list_scenarios() {
  for (const std::string& name : hcs::replay::scenario_names()) {
    std::cout << name << "\n    " << hcs::replay::find_scenario(name).description << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hcs;
  try {
    const util::Cli cli(argc, argv, {"list", "help"});
    cli.reject_unknown({"scenario", "seed", "out", "expect", "shards", "queue", "perturb",
                        "replay-rank", "list", "help"});
    if (cli.has("help")) {
      std::cout << "usage: hcs_capture --scenario NAME [--seed N] [--out FILE] [--expect FILE]\n"
                   "                   [--shards K] [--queue IMPL] [--perturb SPEC]\n"
                   "                   [--replay-rank R] [--list]\n";
      return 0;
    }
    if (cli.has("list")) return list_scenarios();

    const std::string name = cli.get("scenario", "");
    if (name.empty()) {
      std::cerr << "hcs_capture: --scenario is required (--list prints the registry)\n";
      return 2;
    }
    replay::Scenario scenario = replay::find_scenario(name);
    for (const std::string& spec : cli.get_all("perturb")) scenario.faults.add(spec);

    const int shards = cli.shards(1);
    if (shards < 1) {
      throw std::invalid_argument("--shards must be >= 1 for hcs_capture (got " +
                                  std::to_string(shards) + ")");
    }
    simmpi::set_default_shards(shards);
    const std::string queue_name = cli.queue(sim::queue_impl_name(sim::QueueImpl::kAdaptive));
    const auto queue = sim::queue_impl_from_string(queue_name);
    if (!queue) {
      throw std::invalid_argument("unknown --queue '" + queue_name +
                                  "' (known: heap, ladder, adaptive)");
    }
    sim::set_default_queue_impl(*queue);
    const std::uint64_t seed = cli.seed(1);

    replay::Recorder recorder;
    std::vector<replay::RankOutcome> outcomes;
    {
      const replay::ScopedRecorder install(&recorder);
      outcomes = replay::run_scenario(scenario, seed);
    }
    if (recorder.world_count() != 1) {
      throw std::runtime_error("expected exactly one recorded World, got " +
                               std::to_string(recorder.world_count()));
    }
    const replay::RecordedWorld& world = recorder.world(0);
    std::cout << "captured scenario " << name << " seed " << seed << ": " << world.info.nranks
              << " ranks, " << world.total_events() << " events\n";

    const std::string out = cli.get("out", "");
    if (!out.empty()) {
      if (!replay::save(out, recorder)) {
        std::cerr << "hcs_capture: cannot write " << out << "\n";
        return 2;
      }
      std::cout << "wrote recording: " << out << "\n";
    }
    const std::string expect = cli.get("expect", "");
    if (!expect.empty()) {
      std::ofstream sidecar(expect);
      if (!sidecar) {
        std::cerr << "hcs_capture: cannot write " << expect << "\n";
        return 2;
      }
      for (const replay::RankOutcome& o : outcomes) {
        sidecar << replay::describe_outcome(o) << "\n";
      }
      std::cout << "wrote outcome sidecar: " << expect << "\n";
    }
    if (cli.has("replay-rank")) {
      const int rank = static_cast<int>(cli.get_int("replay-rank", 0));
      const replay::RankOutcome replayed = replay::replay_scenario_rank(scenario, world, rank);
      const std::string recorded_line =
          replay::describe_outcome(outcomes[static_cast<std::size_t>(rank)]);
      const std::string replayed_line = replay::describe_outcome(replayed);
      if (recorded_line != replayed_line) {
        std::cerr << "self-check FAILED for rank " << rank << "\n  recorded: " << recorded_line
                  << "\n  replayed: " << replayed_line << "\n";
        return 1;
      }
      std::cout << "self-check: rank " << rank << " replays bit-exactly\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "hcs_capture: " << e.what() << "\n";
    return 2;
  }
}
