// The hcs_bisect CLI — diff two event-order recordings and report the first
// diverging event (docs/record-replay.md).
//
// Usage:
//   hcs_bisect <a.hcsr> <b.hcsr>
//
// Prints "no divergence" when the recordings describe identical runs,
// otherwise the first event (by sim-time, then rank) at which they disagree:
// world, rank, event index, sim-time, the differing field and both sides.
//
// Exit codes: 0 no divergence, 1 divergence found, 2 usage or I/O error.
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>

#include "replay/bisect.hpp"
#include "replay/format.hpp"

namespace {

std::string fmt_time(double t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", t);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hcs;
  if (argc != 3) {
    std::cerr << "usage: hcs_bisect <a.hcsr> <b.hcsr>\n"
              << "  diffs two recordings and reports the first diverging event\n"
              << "  exit codes: 0 no divergence, 1 divergence, 2 usage or I/O error\n";
    return 2;
  }
  const std::string path_a = argv[1];
  const std::string path_b = argv[2];
  try {
    const replay::Recording a = replay::load(path_a);
    const replay::Recording b = replay::load(path_b);
    const std::optional<replay::Divergence> d = replay::first_divergence(a, b);
    if (!d) {
      std::cout << "no divergence: " << path_a << " and " << path_b
                << " describe identical runs\n";
      return 0;
    }
    std::cout << "first divergence: world " << d->world << " rank " << d->rank << " event "
              << d->index << " at t=" << fmt_time(d->time) << " field=" << d->field << "\n"
              << "  (a=" << path_a << ", b=" << path_b << ")\n"
              << "  " << d->detail << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "hcs_bisect: " << e.what() << "\n";
    return 2;
  }
}
