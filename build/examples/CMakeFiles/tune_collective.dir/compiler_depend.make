# Empty compiler generated dependencies file for tune_collective.
# This may be replaced when dependencies are built.
