file(REMOVE_RECURSE
  "CMakeFiles/tune_collective.dir/tune_collective.cpp.o"
  "CMakeFiles/tune_collective.dir/tune_collective.cpp.o.d"
  "tune_collective"
  "tune_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
