# Empty dependencies file for mpibench_cli.
# This may be replaced when dependencies are built.
