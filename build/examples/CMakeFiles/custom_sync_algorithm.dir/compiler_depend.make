# Empty compiler generated dependencies file for custom_sync_algorithm.
# This may be replaced when dependencies are built.
