file(REMOVE_RECURSE
  "CMakeFiles/custom_sync_algorithm.dir/custom_sync_algorithm.cpp.o"
  "CMakeFiles/custom_sync_algorithm.dir/custom_sync_algorithm.cpp.o.d"
  "custom_sync_algorithm"
  "custom_sync_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_sync_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
