file(REMOVE_RECURSE
  "CMakeFiles/trace_app.dir/trace_app.cpp.o"
  "CMakeFiles/trace_app.dir/trace_app.cpp.o.d"
  "trace_app"
  "trace_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
