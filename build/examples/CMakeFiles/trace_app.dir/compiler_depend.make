# Empty compiler generated dependencies file for trace_app.
# This may be replaced when dependencies are built.
