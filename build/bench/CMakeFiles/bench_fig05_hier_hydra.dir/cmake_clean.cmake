file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_hier_hydra.dir/bench_fig05_hier_hydra.cpp.o"
  "CMakeFiles/bench_fig05_hier_hydra.dir/bench_fig05_hier_hydra.cpp.o.d"
  "bench_fig05_hier_hydra"
  "bench_fig05_hier_hydra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_hier_hydra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
