# Empty dependencies file for bench_fig05_hier_hydra.
# This may be replaced when dependencies are built.
