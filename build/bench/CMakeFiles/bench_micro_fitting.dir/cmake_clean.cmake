file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_fitting.dir/bench_micro_fitting.cpp.o"
  "CMakeFiles/bench_micro_fitting.dir/bench_micro_fitting.cpp.o.d"
  "bench_micro_fitting"
  "bench_micro_fitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
