# Empty compiler generated dependencies file for bench_micro_fitting.
# This may be replaced when dependencies are built.
