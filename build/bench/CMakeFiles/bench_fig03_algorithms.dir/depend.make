# Empty dependencies file for bench_fig03_algorithms.
# This may be replaced when dependencies are built.
