# Empty dependencies file for bench_ablation_roundtime.
# This may be replaced when dependencies are built.
