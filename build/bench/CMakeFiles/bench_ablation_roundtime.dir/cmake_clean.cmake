file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_roundtime.dir/bench_ablation_roundtime.cpp.o"
  "CMakeFiles/bench_ablation_roundtime.dir/bench_ablation_roundtime.cpp.o.d"
  "bench_ablation_roundtime"
  "bench_ablation_roundtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_roundtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
