# Empty dependencies file for bench_fig06_hier_titan.
# This may be replaced when dependencies are built.
