file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_hier_jupiter.dir/bench_fig04_hier_jupiter.cpp.o"
  "CMakeFiles/bench_fig04_hier_jupiter.dir/bench_fig04_hier_jupiter.cpp.o.d"
  "bench_fig04_hier_jupiter"
  "bench_fig04_hier_jupiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_hier_jupiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
