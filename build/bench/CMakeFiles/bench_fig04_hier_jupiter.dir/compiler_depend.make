# Empty compiler generated dependencies file for bench_fig04_hier_jupiter.
# This may be replaced when dependencies are built.
