
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig04_hier_jupiter.cpp" "bench/CMakeFiles/bench_fig04_hier_jupiter.dir/bench_fig04_hier_jupiter.cpp.o" "gcc" "bench/CMakeFiles/bench_fig04_hier_jupiter.dir/bench_fig04_hier_jupiter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/hcs_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_mpibench.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_vclock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
