file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fitpoints.dir/bench_ablation_fitpoints.cpp.o"
  "CMakeFiles/bench_ablation_fitpoints.dir/bench_ablation_fitpoints.cpp.o.d"
  "bench_ablation_fitpoints"
  "bench_ablation_fitpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fitpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
