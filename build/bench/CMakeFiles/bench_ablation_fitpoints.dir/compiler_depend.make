# Empty compiler generated dependencies file for bench_ablation_fitpoints.
# This may be replaced when dependencies are built.
