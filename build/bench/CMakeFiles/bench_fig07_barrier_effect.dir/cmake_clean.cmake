file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_barrier_effect.dir/bench_fig07_barrier_effect.cpp.o"
  "CMakeFiles/bench_fig07_barrier_effect.dir/bench_fig07_barrier_effect.cpp.o.d"
  "bench_fig07_barrier_effect"
  "bench_fig07_barrier_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_barrier_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
