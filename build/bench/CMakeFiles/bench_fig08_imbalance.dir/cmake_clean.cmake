file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_imbalance.dir/bench_fig08_imbalance.cpp.o"
  "CMakeFiles/bench_fig08_imbalance.dir/bench_fig08_imbalance.cpp.o.d"
  "bench_fig08_imbalance"
  "bench_fig08_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
