file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_resync.dir/bench_ablation_resync.cpp.o"
  "CMakeFiles/bench_ablation_resync.dir/bench_ablation_resync.cpp.o.d"
  "bench_ablation_resync"
  "bench_ablation_resync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_resync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
