# Empty compiler generated dependencies file for bench_fig09_osu_vs_repro.
# This may be replaced when dependencies are built.
