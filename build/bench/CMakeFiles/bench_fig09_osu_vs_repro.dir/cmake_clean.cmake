file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_osu_vs_repro.dir/bench_fig09_osu_vs_repro.cpp.o"
  "CMakeFiles/bench_fig09_osu_vs_repro.dir/bench_fig09_osu_vs_repro.cpp.o.d"
  "bench_fig09_osu_vs_repro"
  "bench_fig09_osu_vs_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_osu_vs_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
