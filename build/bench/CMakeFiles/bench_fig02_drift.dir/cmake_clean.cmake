file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_drift.dir/bench_fig02_drift.cpp.o"
  "CMakeFiles/bench_fig02_drift.dir/bench_fig02_drift.cpp.o.d"
  "bench_fig02_drift"
  "bench_fig02_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
