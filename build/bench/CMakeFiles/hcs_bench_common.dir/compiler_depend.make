# Empty compiler generated dependencies file for hcs_bench_common.
# This may be replaced when dependencies are built.
