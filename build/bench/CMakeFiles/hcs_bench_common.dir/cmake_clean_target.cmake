file(REMOVE_RECURSE
  "libhcs_bench_common.a"
)
