file(REMOVE_RECURSE
  "CMakeFiles/hcs_bench_common.dir/common.cpp.o"
  "CMakeFiles/hcs_bench_common.dir/common.cpp.o.d"
  "libhcs_bench_common.a"
  "libhcs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
