# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_vclock[1]_include.cmake")
include("/root/repo/build/tests/test_clocksync[1]_include.cmake")
include("/root/repo/build/tests/test_mpibench[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test([=[smoke_quickstart]=] "/root/repo/build/examples/quickstart" "--nodes" "2" "--cores" "2")
set_tests_properties([=[smoke_quickstart]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;82;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[smoke_mpibench_cli]=] "/root/repo/build/examples/mpibench_cli" "--machine" "testbox" "--nodes" "2" "--cores" "2" "--msizes" "8" "--nrep" "10")
set_tests_properties([=[smoke_mpibench_cli]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;83;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[smoke_custom_sync]=] "/root/repo/build/examples/custom_sync_algorithm" "--nodes" "2" "--cores" "2")
set_tests_properties([=[smoke_custom_sync]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;85;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[smoke_trace_app]=] "/root/repo/build/examples/trace_app" "--nodes" "2" "--cores" "2" "--iterations" "4")
set_tests_properties([=[smoke_trace_app]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;86;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[smoke_bench_fig02]=] "/root/repo/build/bench/bench_fig02_drift" "--scale" "0.05")
set_tests_properties([=[smoke_bench_fig02]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;87;add_test;/root/repo/tests/CMakeLists.txt;0;")
