file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi.dir/simmpi/test_burst.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_burst.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_collective_timing.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_collective_timing.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_collectives.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_collectives.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_comm_split.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_comm_split.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_network.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_network.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_nonblocking.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_nonblocking.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_p2p.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_p2p.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_reduce_scatter_scan.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_reduce_scatter_scan.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_world.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_world.cpp.o.d"
  "test_simmpi"
  "test_simmpi.pdb"
  "test_simmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
