
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simmpi/test_burst.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_burst.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_burst.cpp.o.d"
  "/root/repo/tests/simmpi/test_collective_timing.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_collective_timing.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_collective_timing.cpp.o.d"
  "/root/repo/tests/simmpi/test_collectives.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_collectives.cpp.o.d"
  "/root/repo/tests/simmpi/test_comm_split.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_comm_split.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_comm_split.cpp.o.d"
  "/root/repo/tests/simmpi/test_network.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_network.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_network.cpp.o.d"
  "/root/repo/tests/simmpi/test_nonblocking.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_nonblocking.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_nonblocking.cpp.o.d"
  "/root/repo/tests/simmpi/test_p2p.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_p2p.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_p2p.cpp.o.d"
  "/root/repo/tests/simmpi/test_reduce_scatter_scan.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_reduce_scatter_scan.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_reduce_scatter_scan.cpp.o.d"
  "/root/repo/tests/simmpi/test_world.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_world.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcs_mpibench.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_vclock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
