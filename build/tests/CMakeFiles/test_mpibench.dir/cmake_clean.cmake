file(REMOVE_RECURSE
  "CMakeFiles/test_mpibench.dir/mpibench/test_imbalance.cpp.o"
  "CMakeFiles/test_mpibench.dir/mpibench/test_imbalance.cpp.o.d"
  "CMakeFiles/test_mpibench.dir/mpibench/test_roundtime.cpp.o"
  "CMakeFiles/test_mpibench.dir/mpibench/test_roundtime.cpp.o.d"
  "CMakeFiles/test_mpibench.dir/mpibench/test_schemes.cpp.o"
  "CMakeFiles/test_mpibench.dir/mpibench/test_schemes.cpp.o.d"
  "CMakeFiles/test_mpibench.dir/mpibench/test_suites.cpp.o"
  "CMakeFiles/test_mpibench.dir/mpibench/test_suites.cpp.o.d"
  "test_mpibench"
  "test_mpibench.pdb"
  "test_mpibench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
