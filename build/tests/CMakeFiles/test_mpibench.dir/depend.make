# Empty dependencies file for test_mpibench.
# This may be replaced when dependencies are built.
