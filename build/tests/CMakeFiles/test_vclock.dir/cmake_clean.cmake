file(REMOVE_RECURSE
  "CMakeFiles/test_vclock.dir/vclock/test_clock_properties.cpp.o"
  "CMakeFiles/test_vclock.dir/vclock/test_clock_properties.cpp.o.d"
  "CMakeFiles/test_vclock.dir/vclock/test_global_clock.cpp.o"
  "CMakeFiles/test_vclock.dir/vclock/test_global_clock.cpp.o.d"
  "CMakeFiles/test_vclock.dir/vclock/test_hardware_clock.cpp.o"
  "CMakeFiles/test_vclock.dir/vclock/test_hardware_clock.cpp.o.d"
  "CMakeFiles/test_vclock.dir/vclock/test_linear_model.cpp.o"
  "CMakeFiles/test_vclock.dir/vclock/test_linear_model.cpp.o.d"
  "test_vclock"
  "test_vclock.pdb"
  "test_vclock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
