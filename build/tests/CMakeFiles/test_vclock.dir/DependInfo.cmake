
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vclock/test_clock_properties.cpp" "tests/CMakeFiles/test_vclock.dir/vclock/test_clock_properties.cpp.o" "gcc" "tests/CMakeFiles/test_vclock.dir/vclock/test_clock_properties.cpp.o.d"
  "/root/repo/tests/vclock/test_global_clock.cpp" "tests/CMakeFiles/test_vclock.dir/vclock/test_global_clock.cpp.o" "gcc" "tests/CMakeFiles/test_vclock.dir/vclock/test_global_clock.cpp.o.d"
  "/root/repo/tests/vclock/test_hardware_clock.cpp" "tests/CMakeFiles/test_vclock.dir/vclock/test_hardware_clock.cpp.o" "gcc" "tests/CMakeFiles/test_vclock.dir/vclock/test_hardware_clock.cpp.o.d"
  "/root/repo/tests/vclock/test_linear_model.cpp" "tests/CMakeFiles/test_vclock.dir/vclock/test_linear_model.cpp.o" "gcc" "tests/CMakeFiles/test_vclock.dir/vclock/test_linear_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcs_mpibench.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_vclock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
