
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_async.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_async.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_async.cpp.o.d"
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cpp.o.d"
  "/root/repo/tests/sim/test_rng.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_rng.cpp.o.d"
  "/root/repo/tests/sim/test_simulation.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_simulation.cpp.o.d"
  "/root/repo/tests/sim/test_task.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_task.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcs_mpibench.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_vclock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
