
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/clocksync/test_accuracy.cpp" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_accuracy.cpp.o" "gcc" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_accuracy.cpp.o.d"
  "/root/repo/tests/clocksync/test_clockprop.cpp" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_clockprop.cpp.o" "gcc" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_clockprop.cpp.o.d"
  "/root/repo/tests/clocksync/test_factory.cpp" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_factory.cpp.o" "gcc" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_factory.cpp.o.d"
  "/root/repo/tests/clocksync/test_fitting.cpp" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_fitting.cpp.o" "gcc" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_fitting.cpp.o.d"
  "/root/repo/tests/clocksync/test_hierarchical.cpp" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_hierarchical.cpp.o" "gcc" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_hierarchical.cpp.o.d"
  "/root/repo/tests/clocksync/test_model_learning.cpp" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_model_learning.cpp.o" "gcc" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_model_learning.cpp.o.d"
  "/root/repo/tests/clocksync/test_offset_algorithms.cpp" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_offset_algorithms.cpp.o" "gcc" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_offset_algorithms.cpp.o.d"
  "/root/repo/tests/clocksync/test_resync.cpp" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_resync.cpp.o" "gcc" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_resync.cpp.o.d"
  "/root/repo/tests/clocksync/test_sync_algorithms.cpp" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_sync_algorithms.cpp.o" "gcc" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_sync_algorithms.cpp.o.d"
  "/root/repo/tests/clocksync/test_sync_structure.cpp" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_sync_structure.cpp.o" "gcc" "tests/CMakeFiles/test_clocksync.dir/clocksync/test_sync_structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcs_mpibench.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_vclock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
