file(REMOVE_RECURSE
  "CMakeFiles/test_clocksync.dir/clocksync/test_accuracy.cpp.o"
  "CMakeFiles/test_clocksync.dir/clocksync/test_accuracy.cpp.o.d"
  "CMakeFiles/test_clocksync.dir/clocksync/test_clockprop.cpp.o"
  "CMakeFiles/test_clocksync.dir/clocksync/test_clockprop.cpp.o.d"
  "CMakeFiles/test_clocksync.dir/clocksync/test_factory.cpp.o"
  "CMakeFiles/test_clocksync.dir/clocksync/test_factory.cpp.o.d"
  "CMakeFiles/test_clocksync.dir/clocksync/test_fitting.cpp.o"
  "CMakeFiles/test_clocksync.dir/clocksync/test_fitting.cpp.o.d"
  "CMakeFiles/test_clocksync.dir/clocksync/test_hierarchical.cpp.o"
  "CMakeFiles/test_clocksync.dir/clocksync/test_hierarchical.cpp.o.d"
  "CMakeFiles/test_clocksync.dir/clocksync/test_model_learning.cpp.o"
  "CMakeFiles/test_clocksync.dir/clocksync/test_model_learning.cpp.o.d"
  "CMakeFiles/test_clocksync.dir/clocksync/test_offset_algorithms.cpp.o"
  "CMakeFiles/test_clocksync.dir/clocksync/test_offset_algorithms.cpp.o.d"
  "CMakeFiles/test_clocksync.dir/clocksync/test_resync.cpp.o"
  "CMakeFiles/test_clocksync.dir/clocksync/test_resync.cpp.o.d"
  "CMakeFiles/test_clocksync.dir/clocksync/test_sync_algorithms.cpp.o"
  "CMakeFiles/test_clocksync.dir/clocksync/test_sync_algorithms.cpp.o.d"
  "CMakeFiles/test_clocksync.dir/clocksync/test_sync_structure.cpp.o"
  "CMakeFiles/test_clocksync.dir/clocksync/test_sync_structure.cpp.o.d"
  "test_clocksync"
  "test_clocksync.pdb"
  "test_clocksync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clocksync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
