file(REMOVE_RECURSE
  "libhcs_topology.a"
)
