# Empty compiler generated dependencies file for hcs_topology.
# This may be replaced when dependencies are built.
