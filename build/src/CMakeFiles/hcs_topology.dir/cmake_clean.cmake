file(REMOVE_RECURSE
  "CMakeFiles/hcs_topology.dir/topology/presets.cpp.o"
  "CMakeFiles/hcs_topology.dir/topology/presets.cpp.o.d"
  "CMakeFiles/hcs_topology.dir/topology/topology.cpp.o"
  "CMakeFiles/hcs_topology.dir/topology/topology.cpp.o.d"
  "libhcs_topology.a"
  "libhcs_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcs_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
