file(REMOVE_RECURSE
  "libhcs_mpibench.a"
)
