
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpibench/barrier_scheme.cpp" "src/CMakeFiles/hcs_mpibench.dir/mpibench/barrier_scheme.cpp.o" "gcc" "src/CMakeFiles/hcs_mpibench.dir/mpibench/barrier_scheme.cpp.o.d"
  "/root/repo/src/mpibench/imbalance.cpp" "src/CMakeFiles/hcs_mpibench.dir/mpibench/imbalance.cpp.o" "gcc" "src/CMakeFiles/hcs_mpibench.dir/mpibench/imbalance.cpp.o.d"
  "/root/repo/src/mpibench/roundtime_scheme.cpp" "src/CMakeFiles/hcs_mpibench.dir/mpibench/roundtime_scheme.cpp.o" "gcc" "src/CMakeFiles/hcs_mpibench.dir/mpibench/roundtime_scheme.cpp.o.d"
  "/root/repo/src/mpibench/suites.cpp" "src/CMakeFiles/hcs_mpibench.dir/mpibench/suites.cpp.o" "gcc" "src/CMakeFiles/hcs_mpibench.dir/mpibench/suites.cpp.o.d"
  "/root/repo/src/mpibench/window_scheme.cpp" "src/CMakeFiles/hcs_mpibench.dir/mpibench/window_scheme.cpp.o" "gcc" "src/CMakeFiles/hcs_mpibench.dir/mpibench/window_scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcs_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_vclock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
