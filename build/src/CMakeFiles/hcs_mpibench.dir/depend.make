# Empty dependencies file for hcs_mpibench.
# This may be replaced when dependencies are built.
