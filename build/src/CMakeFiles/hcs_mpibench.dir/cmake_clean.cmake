file(REMOVE_RECURSE
  "CMakeFiles/hcs_mpibench.dir/mpibench/barrier_scheme.cpp.o"
  "CMakeFiles/hcs_mpibench.dir/mpibench/barrier_scheme.cpp.o.d"
  "CMakeFiles/hcs_mpibench.dir/mpibench/imbalance.cpp.o"
  "CMakeFiles/hcs_mpibench.dir/mpibench/imbalance.cpp.o.d"
  "CMakeFiles/hcs_mpibench.dir/mpibench/roundtime_scheme.cpp.o"
  "CMakeFiles/hcs_mpibench.dir/mpibench/roundtime_scheme.cpp.o.d"
  "CMakeFiles/hcs_mpibench.dir/mpibench/suites.cpp.o"
  "CMakeFiles/hcs_mpibench.dir/mpibench/suites.cpp.o.d"
  "CMakeFiles/hcs_mpibench.dir/mpibench/window_scheme.cpp.o"
  "CMakeFiles/hcs_mpibench.dir/mpibench/window_scheme.cpp.o.d"
  "libhcs_mpibench.a"
  "libhcs_mpibench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcs_mpibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
