# Empty dependencies file for hcs_trace.
# This may be replaced when dependencies are built.
