file(REMOVE_RECURSE
  "libhcs_trace.a"
)
