file(REMOVE_RECURSE
  "CMakeFiles/hcs_trace.dir/trace/trace.cpp.o"
  "CMakeFiles/hcs_trace.dir/trace/trace.cpp.o.d"
  "libhcs_trace.a"
  "libhcs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
