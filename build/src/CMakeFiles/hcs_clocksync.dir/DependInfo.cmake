
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clocksync/accuracy.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/accuracy.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/accuracy.cpp.o.d"
  "/root/repo/src/clocksync/clock_prop.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/clock_prop.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/clock_prop.cpp.o.d"
  "/root/repo/src/clocksync/factory.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/factory.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/factory.cpp.o.d"
  "/root/repo/src/clocksync/fitting.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/fitting.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/fitting.cpp.o.d"
  "/root/repo/src/clocksync/hca.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/hca.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/hca.cpp.o.d"
  "/root/repo/src/clocksync/hca2.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/hca2.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/hca2.cpp.o.d"
  "/root/repo/src/clocksync/hca3.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/hca3.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/hca3.cpp.o.d"
  "/root/repo/src/clocksync/hierarchical.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/hierarchical.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/hierarchical.cpp.o.d"
  "/root/repo/src/clocksync/jk.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/jk.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/jk.cpp.o.d"
  "/root/repo/src/clocksync/meanrtt_offset.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/meanrtt_offset.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/meanrtt_offset.cpp.o.d"
  "/root/repo/src/clocksync/model_learning.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/model_learning.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/model_learning.cpp.o.d"
  "/root/repo/src/clocksync/resync.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/resync.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/resync.cpp.o.d"
  "/root/repo/src/clocksync/skampi_offset.cpp" "src/CMakeFiles/hcs_clocksync.dir/clocksync/skampi_offset.cpp.o" "gcc" "src/CMakeFiles/hcs_clocksync.dir/clocksync/skampi_offset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcs_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_vclock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
