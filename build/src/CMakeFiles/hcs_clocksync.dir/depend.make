# Empty dependencies file for hcs_clocksync.
# This may be replaced when dependencies are built.
