file(REMOVE_RECURSE
  "libhcs_clocksync.a"
)
