file(REMOVE_RECURSE
  "CMakeFiles/hcs_clocksync.dir/clocksync/accuracy.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/accuracy.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/clock_prop.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/clock_prop.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/factory.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/factory.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/fitting.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/fitting.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/hca.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/hca.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/hca2.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/hca2.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/hca3.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/hca3.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/hierarchical.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/hierarchical.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/jk.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/jk.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/meanrtt_offset.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/meanrtt_offset.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/model_learning.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/model_learning.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/resync.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/resync.cpp.o.d"
  "CMakeFiles/hcs_clocksync.dir/clocksync/skampi_offset.cpp.o"
  "CMakeFiles/hcs_clocksync.dir/clocksync/skampi_offset.cpp.o.d"
  "libhcs_clocksync.a"
  "libhcs_clocksync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcs_clocksync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
