file(REMOVE_RECURSE
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_allgather.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_allgather.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_allreduce.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_allreduce.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_alltoall.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_alltoall.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_barrier.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_barrier.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_bcast.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_bcast.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_gather.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_gather.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_reduce.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_reduce.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_reduce_scatter.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_reduce_scatter.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_scan.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_scan.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_scatter.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/coll_scatter.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/collectives.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/collectives.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/comm.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/comm.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/network.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/network.cpp.o.d"
  "CMakeFiles/hcs_simmpi.dir/simmpi/world.cpp.o"
  "CMakeFiles/hcs_simmpi.dir/simmpi/world.cpp.o.d"
  "libhcs_simmpi.a"
  "libhcs_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcs_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
