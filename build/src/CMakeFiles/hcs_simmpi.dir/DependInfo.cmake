
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/coll_allgather.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_allgather.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_allgather.cpp.o.d"
  "/root/repo/src/simmpi/coll_allreduce.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_allreduce.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_allreduce.cpp.o.d"
  "/root/repo/src/simmpi/coll_alltoall.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_alltoall.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_alltoall.cpp.o.d"
  "/root/repo/src/simmpi/coll_barrier.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_barrier.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_barrier.cpp.o.d"
  "/root/repo/src/simmpi/coll_bcast.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_bcast.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_bcast.cpp.o.d"
  "/root/repo/src/simmpi/coll_gather.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_gather.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_gather.cpp.o.d"
  "/root/repo/src/simmpi/coll_reduce.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_reduce.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_reduce.cpp.o.d"
  "/root/repo/src/simmpi/coll_reduce_scatter.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_reduce_scatter.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_reduce_scatter.cpp.o.d"
  "/root/repo/src/simmpi/coll_scan.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_scan.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_scan.cpp.o.d"
  "/root/repo/src/simmpi/coll_scatter.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_scatter.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/coll_scatter.cpp.o.d"
  "/root/repo/src/simmpi/collectives.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/collectives.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/collectives.cpp.o.d"
  "/root/repo/src/simmpi/comm.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/comm.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/comm.cpp.o.d"
  "/root/repo/src/simmpi/network.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/network.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/network.cpp.o.d"
  "/root/repo/src/simmpi/world.cpp" "src/CMakeFiles/hcs_simmpi.dir/simmpi/world.cpp.o" "gcc" "src/CMakeFiles/hcs_simmpi.dir/simmpi/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_vclock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
