# Empty compiler generated dependencies file for hcs_simmpi.
# This may be replaced when dependencies are built.
