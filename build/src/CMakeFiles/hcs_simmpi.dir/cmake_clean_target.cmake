file(REMOVE_RECURSE
  "libhcs_simmpi.a"
)
