# Empty dependencies file for hcs_util.
# This may be replaced when dependencies are built.
