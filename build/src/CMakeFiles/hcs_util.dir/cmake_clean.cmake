file(REMOVE_RECURSE
  "CMakeFiles/hcs_util.dir/util/cli.cpp.o"
  "CMakeFiles/hcs_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/hcs_util.dir/util/histogram.cpp.o"
  "CMakeFiles/hcs_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/hcs_util.dir/util/stats.cpp.o"
  "CMakeFiles/hcs_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/hcs_util.dir/util/table.cpp.o"
  "CMakeFiles/hcs_util.dir/util/table.cpp.o.d"
  "libhcs_util.a"
  "libhcs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
