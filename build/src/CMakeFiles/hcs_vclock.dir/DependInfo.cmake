
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vclock/clock.cpp" "src/CMakeFiles/hcs_vclock.dir/vclock/clock.cpp.o" "gcc" "src/CMakeFiles/hcs_vclock.dir/vclock/clock.cpp.o.d"
  "/root/repo/src/vclock/global_clock.cpp" "src/CMakeFiles/hcs_vclock.dir/vclock/global_clock.cpp.o" "gcc" "src/CMakeFiles/hcs_vclock.dir/vclock/global_clock.cpp.o.d"
  "/root/repo/src/vclock/hardware_clock.cpp" "src/CMakeFiles/hcs_vclock.dir/vclock/hardware_clock.cpp.o" "gcc" "src/CMakeFiles/hcs_vclock.dir/vclock/hardware_clock.cpp.o.d"
  "/root/repo/src/vclock/linear_model.cpp" "src/CMakeFiles/hcs_vclock.dir/vclock/linear_model.cpp.o" "gcc" "src/CMakeFiles/hcs_vclock.dir/vclock/linear_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
