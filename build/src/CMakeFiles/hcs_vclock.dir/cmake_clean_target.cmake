file(REMOVE_RECURSE
  "libhcs_vclock.a"
)
