file(REMOVE_RECURSE
  "CMakeFiles/hcs_vclock.dir/vclock/clock.cpp.o"
  "CMakeFiles/hcs_vclock.dir/vclock/clock.cpp.o.d"
  "CMakeFiles/hcs_vclock.dir/vclock/global_clock.cpp.o"
  "CMakeFiles/hcs_vclock.dir/vclock/global_clock.cpp.o.d"
  "CMakeFiles/hcs_vclock.dir/vclock/hardware_clock.cpp.o"
  "CMakeFiles/hcs_vclock.dir/vclock/hardware_clock.cpp.o.d"
  "CMakeFiles/hcs_vclock.dir/vclock/linear_model.cpp.o"
  "CMakeFiles/hcs_vclock.dir/vclock/linear_model.cpp.o.d"
  "libhcs_vclock.a"
  "libhcs_vclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcs_vclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
