# Empty compiler generated dependencies file for hcs_vclock.
# This may be replaced when dependencies are built.
