file(REMOVE_RECURSE
  "CMakeFiles/hcs_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/hcs_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/hcs_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/hcs_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/hcs_sim.dir/sim/simulation.cpp.o"
  "CMakeFiles/hcs_sim.dir/sim/simulation.cpp.o.d"
  "libhcs_sim.a"
  "libhcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
