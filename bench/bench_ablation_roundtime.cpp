// Ablation — Round-Time vs. the window scheme under injected latency
// outliers (paper §II / §V-A: "one outlier ... can cause a large number of
// subsequent measurements to be invalidated" with fixed windows, which
// Round-Time avoids by re-announcing the next start after every rep).
// Also sweeps Round-Time's slack factor B.
#include <iostream>

#include "clocksync/factory.hpp"
#include "common.hpp"
#include "mpibench/roundtime_scheme.hpp"
#include "mpibench/window_scheme.hpp"
#include "simmpi/world.hpp"

namespace hcs::bench {
namespace {

struct SchemeOutcome {
  int valid = 0;
  int invalid = 0;
  double median_runtime_us = 0.0;
};

template <typename RunFn>
SchemeOutcome run_scheme(const topology::MachineConfig& machine, const std::string& sync_label,
                         std::uint64_t seed, RunFn scheme_fn) {
  simmpi::World world(machine, seed);
  SchemeOutcome outcome;
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = hcs::clocksync::make_sync(sync_label);
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    const mpibench::MeasurementResult m = co_await scheme_fn(ctx, *g);
    if (ctx.rank() == 0) {
      outcome.valid = m.valid_reps();
      outcome.invalid = m.invalid_reps;
      if (!m.global_runtimes.empty()) {
        outcome.median_runtime_us = util::median(m.global_runtimes) * 1e6;
      }
    }
  });
  return outcome;
}

}  // namespace
}  // namespace hcs::bench

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.5);
  const Observability obs(opt);

  // Spiky network: ~1 outlier of mean 300 us per few hundred messages.
  auto machine = topology::jupiter().with_nodes(8);
  machine.net.inter_node.spike_prob = 2e-3;
  machine.net.inter_node.spike_mean = 300e-6;
  const int nrep = scaled(200, opt.scale, 40);
  print_header("Ablation (Round-Time)",
               "window scheme vs. Round-Time under latency outliers, " + std::to_string(nrep) +
                   " reps requested",
               machine, opt);

  const std::string sync_label = "hca3/recompute_intercept/" +
                                 std::to_string(scaled(500, opt.scale, 30)) + "/skampi_offset/" +
                                 std::to_string(scaled(100, opt.scale, 10));
  const mpibench::CollectiveOp op = mpibench::make_allreduce_op(8);

  util::Table table({"scheme", "valid_reps", "invalid_reps", "median_runtime_us"});

  // Window-scheme and Round-Time trials are all independent mpiruns.
  runner::TrialRunner pool(opt.jobs);
  const std::vector<double> windows_us{40.0, 80.0, 400.0};
  const std::vector<SchemeOutcome> window_outcomes =
      pool.map(static_cast<int>(windows_us.size()), opt.seed, [&](const runner::Trial& trial) {
        const double window_us = windows_us[static_cast<std::size_t>(trial.index)];
        return run_scheme(machine, sync_label, opt.seed,
                          [&](simmpi::RankCtx& ctx, vclock::Clock& g) {
                            mpibench::WindowSchemeParams params;
                            params.nrep = nrep;
                            params.window = window_us * 1e-6;
                            return mpibench::run_window_scheme(ctx.comm_world(), g, op, params);
                          });
      });
  const std::vector<double> slacks{1.5, 3.0, 10.0};
  const std::vector<SchemeOutcome> slack_outcomes =
      pool.map(static_cast<int>(slacks.size()), opt.seed, [&](const runner::Trial& trial) {
        const double slack = slacks[static_cast<std::size_t>(trial.index)];
        return run_scheme(machine, sync_label, opt.seed,
                          [&](simmpi::RankCtx& ctx, vclock::Clock& g) {
                            mpibench::RoundTimeParams params;
                            params.max_nrep = nrep;
                            params.slack_factor = slack;
                            return mpibench::run_roundtime_scheme(ctx.comm_world(), g, op, params);
                          });
      });
  for (std::size_t i = 0; i < windows_us.size(); ++i) {
    const SchemeOutcome& outcome = window_outcomes[i];
    table.add_row({"window/" + util::fmt(windows_us[i], 0) + "us", std::to_string(outcome.valid),
                   std::to_string(outcome.invalid), util::fmt(outcome.median_runtime_us, 2)});
  }
  for (std::size_t i = 0; i < slacks.size(); ++i) {
    const SchemeOutcome& outcome = slack_outcomes[i];
    table.add_row({"round-time/B=" + util::fmt(slacks[i], 1), std::to_string(outcome.valid),
                   std::to_string(outcome.invalid), util::fmt(outcome.median_runtime_us, 2)});
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: tight windows lose many reps to the outlier cascade; Round-Time "
               "reaches the requested rep count with few invalidations at any B.\n";
  return 0;
}
