// Fig. 3 — synchronization duration vs. maximum clock offset for the flat
// algorithm family (HCA, HCA2, HCA3, JK), measured right after the sync (a)
// and 10 s later (b); Jupiter, 32 x 16 = 512 ranks, 10 mpiruns.
//
// Expected shape (paper §III-C3): all algorithms are accurate at t=0; after
// 10 s HCA3 beats HCA2 beats HCA; JK is accurate at this size but needs
// O(p) time — roughly an order of magnitude longer than HCA3.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.1);
  const Observability obs(opt);
  const auto machine = topology::jupiter().with_nodes(32);

  const int nfit = scaled(1000, opt.scale, 40);
  const int npp = scaled(100, opt.scale, 10);
  // The paper: "only 20 ping-pongs are required for JK to obtain these good
  // results" — JK's exchanges are never scaled below that.
  const int npp_jk = scaled(20, opt.scale, 20);
  const int nmpiruns = 10;
  print_header("Fig. 3",
               "max clock offset vs. sync duration, 0 s and 10 s after sync, " +
                   std::to_string(nmpiruns) + " mpiruns",
               machine, opt);

  const std::vector<std::string> labels = {
      "hca/" + std::to_string(nfit) + "/skampi_offset/" + std::to_string(npp),
      "hca2/recompute_intercept/" + std::to_string(nfit) + "/skampi_offset/" +
          std::to_string(npp),
      "hca3/recompute_intercept/" + std::to_string(nfit) + "/skampi_offset/" +
          std::to_string(npp),
      "jk/" + std::to_string(nfit) + "/skampi_offset/" + std::to_string(npp_jk),
  };

  util::Table table({"algorithm", "mpirun", "sync_duration_s", "max_offset_0s_us",
                     "max_offset_10s_us", "ok_ranks", "degraded_ranks", "failed_ranks"});
  run_and_print_sync_experiment(table, machine, labels, nmpiruns, 10.0, 1.0, opt);
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: jk duration >> hca3 duration; hca3 offset at 10 s <= hca2 <= hca "
               "(on average).\n";
  return 0;
}
