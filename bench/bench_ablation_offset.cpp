// Ablation — the clock-offset building block (paper §III-A and the §III-C3
// finding that "it was often better to employ SKaMPI-Offset inside JK
// instead of the Mean-RTT-Offset algorithm").
//
// Runs JK and HCA3 with both offset algorithms on Jupiter and reports
// accuracy and duration.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.1);
  const Observability obs(opt);
  const auto machine = topology::jupiter().with_nodes(8);  // 128 ranks: JK-friendly size

  const int nfit = scaled(1000, opt.scale, 40);
  const int npp = scaled(20, opt.scale, 20);
  const int nmpiruns = 5;
  print_header("Ablation (offset algorithm)",
               "SKaMPI-Offset vs. Mean-RTT-Offset inside JK and HCA3", machine, opt);

  const std::vector<std::string> labels = {
      "jk/" + std::to_string(nfit) + "/skampi_offset/" + std::to_string(npp),
      "jk/" + std::to_string(nfit) + "/mean_rtt_offset/" + std::to_string(npp),
      "hca3/recompute_intercept/" + std::to_string(nfit) + "/skampi_offset/" +
          std::to_string(npp),
      "hca3/recompute_intercept/" + std::to_string(nfit) + "/mean_rtt_offset/" +
          std::to_string(npp),
  };
  util::Table table({"algorithm", "mpirun", "sync_duration_s", "max_offset_0s_us",
                     "max_offset_10s_us"});
  run_and_print_sync_experiment(table, machine, labels, nmpiruns, 10.0, 1.0, opt);
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: skampi_offset rows beat their mean_rtt_offset counterparts in "
               "accuracy for the same algorithm.\n";
  return 0;
}
