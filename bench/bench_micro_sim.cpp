// Microbenchmarks (google-benchmark) for the discrete-event core: event
// queue throughput, coroutine task chains, RNG and clock evaluation — the
// primitives every experiment's wall-clock cost is built from.
#include <benchmark/benchmark.h>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "vclock/hardware_clock.hpp"

namespace {

using namespace hcs;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      q.push(rng.uniform(), std::coroutine_handle<>::from_address(&q));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

// Engine comparison (heap vs. ladder, the adaptive switchover's evidence):
// the same workload against both engines across pending-set sizes from 1k to
// 10M.  The heap pays O(log n) comparisons per operation; the ladder
// amortizes O(1), so the ladder rows overtake as n grows.

// Burst-drain: push n random-time events, then drain completely — the
// "window fill + window drain" shape of the PDES engine.
void BM_EventQueueEngineBurstDrain(benchmark::State& state) {
  const auto impl = static_cast<sim::QueueImpl>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  sim::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q(impl);
    for (std::size_t i = 0; i < n; ++i) {
      q.push(rng.uniform() * 1e3, std::coroutine_handle<>::from_address(&q));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(sim::queue_impl_name(impl));
}
BENCHMARK(BM_EventQueueEngineBurstDrain)
    ->ArgNames({"impl", "n"})
    ->Args({0, 1 << 10})
    ->Args({1, 1 << 10})
    ->Args({0, 1 << 15})
    ->Args({1, 1 << 15})
    ->Args({0, 1 << 20})
    ->Args({1, 1 << 20})
    ->Args({0, 10'000'000})
    ->Args({1, 10'000'000});

// Steady-state hold: a constant pending set of n events, each pop followed
// by a reschedule a random distance past the frontier — the shape of a
// long-running simulation, and where the ladder's O(1) amortized cost beats
// the heap's O(log n) once n is large.
void BM_EventQueueEngineSteadyState(benchmark::State& state) {
  const auto impl = static_cast<sim::QueueImpl>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  sim::EventQueue q(impl);
  sim::Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    q.push(rng.uniform() * 10.0, std::coroutine_handle<>::from_address(&q));
  }
  for (auto _ : state) {
    const auto ev = q.pop();
    benchmark::DoNotOptimize(ev.time);
    q.push(ev.time + rng.uniform() * 10.0, ev.handle);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(sim::queue_impl_name(impl));
}
BENCHMARK(BM_EventQueueEngineSteadyState)
    ->ArgNames({"impl", "n"})
    ->Args({0, 1 << 10})
    ->Args({1, 1 << 10})
    ->Args({0, 1 << 15})
    ->Args({1, 1 << 15})
    ->Args({0, 1 << 20})
    ->Args({1, 1 << 20})
    ->Args({0, 10'000'000})
    ->Args({1, 10'000'000});

void BM_SimulationDelayChain(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim.spawn([](sim::Simulation& s, int hops) -> sim::Task<void> {
      for (int i = 0; i < hops; ++i) co_await s.delay(1e-6);
    }(sim, hops));
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * hops);
}
BENCHMARK(BM_SimulationDelayChain)->Arg(1000)->Arg(100000);

void BM_TaskCallChain(benchmark::State& state) {
  struct Rec {
    static sim::Task<int> down(int n) {
      if (n == 0) co_return 0;
      co_return 1 + co_await down(n - 1);
    }
  };
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    int out = 0;
    sim.spawn([](int depth, int* out) -> sim::Task<void> {
      *out = co_await Rec::down(depth);
    }(depth, &out));
    sim.run();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * depth);
}
BENCHMARK(BM_TaskCallChain)->Arg(1000);

void BM_RngNormal(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
}
BENCHMARK(BM_RngNormal);

void BM_HardwareClockRead(benchmark::State& state) {
  sim::Simulation sim;
  topology::ClockDriftParams params;
  vclock::HardwareClock clk(sim, params, 3);
  double t = 0.0;
  for (auto _ : state) {
    t += 1e-5;
    benchmark::DoNotOptimize(clk.at(t));
  }
}
BENCHMARK(BM_HardwareClockRead);

void BM_HardwareClockLongHorizonRead(benchmark::State& state) {
  // Reads far into the future force lazy skew-path extension.
  sim::Simulation sim;
  topology::ClockDriftParams params;
  vclock::HardwareClock clk(sim, params, 5);
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(clk.at(t));
  }
}
BENCHMARK(BM_HardwareClockLongHorizonRead);

}  // namespace

BENCHMARK_MAIN();
