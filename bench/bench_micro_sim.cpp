// Microbenchmarks (google-benchmark) for the discrete-event core: event
// queue throughput, coroutine task chains, RNG and clock evaluation — the
// primitives every experiment's wall-clock cost is built from.
#include <benchmark/benchmark.h>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "vclock/hardware_clock.hpp"

namespace {

using namespace hcs;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      q.push(rng.uniform(), std::coroutine_handle<>::from_address(&q));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_SimulationDelayChain(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim.spawn([](sim::Simulation& s, int hops) -> sim::Task<void> {
      for (int i = 0; i < hops; ++i) co_await s.delay(1e-6);
    }(sim, hops));
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * hops);
}
BENCHMARK(BM_SimulationDelayChain)->Arg(1000)->Arg(100000);

void BM_TaskCallChain(benchmark::State& state) {
  struct Rec {
    static sim::Task<int> down(int n) {
      if (n == 0) co_return 0;
      co_return 1 + co_await down(n - 1);
    }
  };
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    int out = 0;
    sim.spawn([](int depth, int* out) -> sim::Task<void> {
      *out = co_await Rec::down(depth);
    }(depth, &out));
    sim.run();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * depth);
}
BENCHMARK(BM_TaskCallChain)->Arg(1000);

void BM_RngNormal(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
}
BENCHMARK(BM_RngNormal);

void BM_HardwareClockRead(benchmark::State& state) {
  sim::Simulation sim;
  topology::ClockDriftParams params;
  vclock::HardwareClock clk(sim, params, 3);
  double t = 0.0;
  for (auto _ : state) {
    t += 1e-5;
    benchmark::DoNotOptimize(clk.at(t));
  }
}
BENCHMARK(BM_HardwareClockRead);

void BM_HardwareClockLongHorizonRead(benchmark::State& state) {
  // Reads far into the future force lazy skew-path extension.
  sim::Simulation sim;
  topology::ClockDriftParams params;
  vclock::HardwareClock clk(sim, params, 5);
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(clk.at(t));
  }
}
BENCHMARK(BM_HardwareClockLongHorizonRead);

}  // namespace

BENCHMARK_MAIN();
