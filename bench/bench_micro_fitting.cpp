// Microbenchmarks (google-benchmark) for model fitting and clock-model
// algebra — the per-pair CPU work of the synchronization algorithms.
#include <benchmark/benchmark.h>

#include <vector>

#include "clocksync/fitting.hpp"
#include "sim/rng.hpp"
#include "vclock/global_clock.hpp"
#include "vclock/hardware_clock.hpp"

namespace {

using namespace hcs;

void BM_FitLinearModel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(3);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.001 * static_cast<double>(i);
    y[i] = 1e-6 * x[i] + rng.normal(0.0, 50e-9);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(clocksync::fit_linear_model(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FitLinearModel)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ModelMerge(benchmark::State& state) {
  const vclock::LinearModel a{1e-6, 2e-6};
  const vclock::LinearModel b{-2e-6, 3e-6};
  for (auto _ : state) benchmark::DoNotOptimize(vclock::merge(a, b));
}
BENCHMARK(BM_ModelMerge);

void BM_NestedClockEvaluation(benchmark::State& state) {
  sim::Simulation sim;
  topology::ClockDriftParams params;
  vclock::ClockPtr clk = std::make_shared<vclock::HardwareClock>(sim, params, 3);
  const auto depth = static_cast<int>(state.range(0));
  for (int level = 0; level < depth; ++level) {
    clk = std::make_shared<vclock::GlobalClockLM>(clk, vclock::LinearModel{1e-7, 1e-7});
  }
  double t = 0.0;
  for (auto _ : state) {
    t += 1e-5;
    benchmark::DoNotOptimize(clk->at(t));
  }
}
BENCHMARK(BM_NestedClockEvaluation)->Arg(1)->Arg(3)->Arg(8);

void BM_FlattenUnflatten(benchmark::State& state) {
  sim::Simulation sim;
  topology::ClockDriftParams params;
  vclock::ClockPtr base = std::make_shared<vclock::HardwareClock>(sim, params, 5);
  vclock::ClockPtr clk = base;
  for (int level = 0; level < 3; ++level) {
    clk = std::make_shared<vclock::GlobalClockLM>(clk, vclock::LinearModel{1e-7, 1e-7});
  }
  for (auto _ : state) {
    const auto buf = vclock::flatten_clock(clk);
    benchmark::DoNotOptimize(vclock::unflatten_clock(base, buf));
  }
}
BENCHMARK(BM_FlattenUnflatten);

}  // namespace

BENCHMARK_MAIN();
