#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>

#include "clocksync/factory.hpp"
#include "clocksync/skampi_offset.hpp"
#include "simmpi/world.hpp"

namespace hcs::bench {

BenchOptions parse_common(int argc, const char* const* argv, double default_scale) {
  const util::Cli cli(argc, argv, {"csv"});
  BenchOptions opt;
  opt.scale = cli.scale(default_scale);
  opt.seed = cli.seed(1);
  opt.csv = cli.has("csv");
  return opt;
}

void print_header(const std::string& figure, const std::string& what,
                  const topology::MachineConfig& machine, const BenchOptions& opt) {
  std::cout << "=== " << figure << ": " << what << " ===\n"
            << "machine: " << machine.describe() << "\n"
            << "scale: " << opt.scale << " (1.0 = paper configuration), seed: " << opt.seed
            << "\n\n";
}

int scaled(int value, double scale, int min_value) {
  return std::max(min_value, static_cast<int>(std::lround(value * scale)));
}

SyncAccuracyPoint run_sync_accuracy(const topology::MachineConfig& machine,
                                    const std::string& label, double wait_time,
                                    double sample_fraction, std::uint64_t seed) {
  simmpi::World world(machine, seed);
  SyncAccuracyPoint point;
  const std::vector<int> clients =
      clocksync::sample_clients(world.size(), 0, sample_fraction, seed ^ 0xabcdefULL);
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync(label);
    const sim::Time begin = ctx.sim().now();
    const vclock::ClockPtr g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    point.duration = std::max(point.duration, ctx.sim().now() - begin);
    clocksync::SKaMPIOffset oalg(20);
    const clocksync::AccuracyResult acc =
        co_await clocksync::check_clock_accuracy(ctx.comm_world(), *g, oalg, wait_time, clients);
    if (ctx.rank() == 0) {
      point.max_offset_t0 = acc.max_abs_t0;
      point.max_offset_t1 = acc.max_abs_t1;
    }
  });
  return point;
}

void run_and_print_sync_experiment(util::Table& table, const topology::MachineConfig& machine,
                                   const std::vector<std::string>& labels, int nmpiruns,
                                   double wait_time, double sample_fraction,
                                   const BenchOptions& opt) {
  for (const std::string& label : labels) {
    std::vector<double> durations, t0s, t1s;
    for (int run = 0; run < nmpiruns; ++run) {
      const SyncAccuracyPoint p = run_sync_accuracy(machine, label, wait_time, sample_fraction,
                                                    opt.seed + static_cast<std::uint64_t>(run));
      durations.push_back(p.duration);
      t0s.push_back(p.max_offset_t0);
      t1s.push_back(p.max_offset_t1);
      table.add_row({label, std::to_string(run), util::fmt(p.duration, 4),
                     util::fmt_us(p.max_offset_t0, 3), util::fmt_us(p.max_offset_t1, 3)});
    }
    table.add_row({label + " [mean]", "-", util::fmt(util::mean(durations), 4),
                   util::fmt_us(util::mean(t0s), 3), util::fmt_us(util::mean(t1s), 3)});
  }
}

}  // namespace hcs::bench
