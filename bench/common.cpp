#include "common.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "clocksync/factory.hpp"
#include "replay/bisect.hpp"
#include "replay/format.hpp"
#include "sim/frame_pool.hpp"
#include "simmpi/collectives.hpp"
#include "clocksync/skampi_offset.hpp"
#include "simmpi/world.hpp"
#include "trace/chrome_export.hpp"

namespace hcs::bench {

const BenchFlag kBenchFlags[] = {
    {"scale", "S",
     "workload multiplier in (0, 4]; 1.0 = paper configuration ($HCLOCKSYNC_SCALE)"},
    {"seed", "N", "base seed; mpirun i uses seed N + i"},
    {"jobs", "J",
     "worker threads for independent trials; 0 = one per hardware thread ($HCLOCKSYNC_JOBS)"},
    {"shards", "K",
     "event-loop shards inside each World (conservative PDES); 0 = one per hardware thread; "
     "output is byte-identical for any K ($HCLOCKSYNC_SHARDS)"},
    {"queue", "IMPL",
     "event-queue engine: heap, ladder or adaptive (default: adaptive; output is "
     "byte-identical for any choice; $HCLOCKSYNC_QUEUE)"},
    {"csv", nullptr, "additionally emit CSV rows"},
    {"trace-out", "FILE", "write a Chrome trace (chrome://tracing / Perfetto)"},
    {"metrics-out", "FILE", "write the metrics registry as CSV"},
    {"record-out", "FILE",
     "record the per-rank event order of every World to FILE "
     "(docs/record-replay.md)"},
    {"replay", "FILE",
     "verify this run against a recording: exits 1 and prints the first "
     "diverging event on mismatch; requires --jobs 1"},
    {"fault", "SPEC",
     "inject a fault, repeatable; SPEC = kind:key=value,... e.g. drop:p=0.01,level=network "
     "(see docs/fault-injection.md)"},
    {"fault-file", "FILE",
     "read fault SPECs from FILE, one per line ('#' starts a comment); repeatable, composes "
     "with --fault"},
    {"fault-seed", "N", "seed of the fault-injection RNG stream (default 0)"},
    {"help", nullptr, "print this help and exit"},
};
const std::size_t kBenchFlagCount = sizeof(kBenchFlags) / sizeof(kBenchFlags[0]);

namespace {

void usage_impl(std::ostream& os, const std::string& program,
                const std::vector<BenchFlag>& extra) {
  std::vector<BenchFlag> flags(kBenchFlags, kBenchFlags + kBenchFlagCount);
  flags.insert(flags.end(), extra.begin(), extra.end());
  os << "usage: " << program;
  for (const BenchFlag& f : flags) {
    os << " [--" << f.name;
    if (f.arg) os << " " << f.arg;
    os << "]";
  }
  os << "\n\noptions:\n";
  for (const BenchFlag& f : flags) {
    std::string head = "  --" + std::string(f.name) + (f.arg ? " " + std::string(f.arg) : "");
    head.resize(std::max<std::size_t>(head.size() + 2, 22), ' ');
    os << head << f.help << "\n";
  }
}

}  // namespace

void print_usage(std::ostream& os, const std::string& program) { usage_impl(os, program, {}); }

BenchOptions parse_common(int argc, const char* const* argv, double default_scale) {
  return parse_common_extra(argc, argv, default_scale, {}).opt;
}

ParsedBench parse_common_extra(int argc, const char* const* argv, double default_scale,
                               const std::vector<BenchFlag>& extra) {
  const util::Cli cli(argc, argv, {"csv", "help"});
  if (cli.has("help")) {
    usage_impl(std::cout, cli.program(), extra);
    std::exit(0);
  }
  BenchOptions opt;
  try {
    std::vector<std::string> known;
    for (std::size_t i = 0; i < kBenchFlagCount; ++i) known.push_back(kBenchFlags[i].name);
    for (const BenchFlag& f : extra) known.push_back(f.name);
    cli.reject_unknown(known);
    opt.scale = cli.scale(default_scale);
    opt.seed = cli.seed(1);
    opt.jobs = cli.jobs(1);
    opt.shards = runner::resolve_jobs(cli.shards(1));
    // Helpers that build Worlds internally (and don't thread opt through)
    // pick the flag up via the process-wide default.
    simmpi::set_default_shards(opt.shards);
    const std::string queue_name = cli.queue(sim::queue_impl_name(opt.queue));
    const auto queue = sim::queue_impl_from_string(queue_name);
    if (!queue) {
      throw std::invalid_argument("unknown --queue '" + queue_name +
                                  "' (known: heap, ladder, adaptive)");
    }
    opt.queue = *queue;
    sim::set_default_queue_impl(opt.queue);
    opt.csv = cli.has("csv");
    opt.trace_out = cli.trace_out();
    opt.metrics_out = cli.metrics_out();
    opt.record_out = cli.record_out();
    opt.replay = cli.replay_file();
    if (!opt.replay.empty() && opt.jobs != 1) {
      throw std::invalid_argument(
          "--replay requires --jobs 1 (got --jobs " + std::to_string(opt.jobs) +
          "): verification re-runs the recorded schedule on one thread");
    }
    for (const std::string& spec : cli.get_all("fault")) opt.fault_plan.add(spec);
    for (const std::string& path : cli.get_all("fault-file")) {
      std::ifstream in(path);
      if (!in) throw std::runtime_error("--fault-file: cannot open " + path);
      std::string line;
      while (std::getline(in, line)) {
        if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos) continue;
        const auto last = line.find_last_not_of(" \t\r");
        opt.fault_plan.add(line.substr(first, last - first + 1));
      }
    }
    opt.fault_plan.set_seed(
        static_cast<std::uint64_t>(cli.get_int("fault-seed", 0)));
  } catch (const std::exception& e) {
    std::cerr << cli.program() << ": " << e.what() << "\n";
    usage_impl(std::cerr, cli.program(), extra);
    std::exit(2);
  }
  return ParsedBench{opt, cli};
}

Observability::Observability(const BenchOptions& opt)
    : trace_path_(opt.trace_out),
      metrics_path_(opt.metrics_out),
      record_path_(opt.record_out),
      replay_path_(opt.replay) {
  if (!trace_path_.empty()) {
    tracer_ = std::make_unique<trace::Tracer>();
    trace::install_tracer(tracer_.get());
  }
  // Metrics drive both the CSV dump and the end-of-run summary; enable them
  // whenever either output was requested.
  if (!metrics_path_.empty() || !trace_path_.empty()) {
    metrics_ = std::make_unique<trace::MetricsRegistry>();
    trace::install_metrics(metrics_.get());
  }
  // --replay records in memory only (the recording is compared, not saved).
  if (!record_path_.empty() || !replay_path_.empty()) {
    recorder_ = std::make_unique<replay::Recorder>();
    replay::install_recorder(recorder_.get());
  }
}

Observability::~Observability() {
  if (tracer_) {
    if (trace::write_chrome_trace_file(trace_path_, *tracer_)) {
      std::cout << "\nwrote Chrome trace (" << tracer_->recorded() - tracer_->dropped()
                << " events, " << tracer_->dropped() << " dropped): " << trace_path_ << "\n";
    } else {
      std::cerr << "failed to write trace: " << trace_path_ << "\n";
    }
    trace::install_tracer(nullptr);
  }
  if (metrics_) {
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      if (out) {
        trace::write_metrics_csv(out, *metrics_);
        std::cout << "wrote metrics CSV: " << metrics_path_ << "\n";
      } else {
        std::cerr << "failed to write metrics: " << metrics_path_ << "\n";
      }
    }
    std::cout << "\n--- metrics summary (histograms in us) ---\n";
    trace::print_metrics_summary(std::cout, *metrics_);
    trace::install_metrics(nullptr);
  }
  if (recorder_) {
    replay::install_recorder(nullptr);
    if (!record_path_.empty()) {
      if (replay::save(record_path_, *recorder_)) {
        std::size_t events = 0;
        for (std::size_t i = 0; i < recorder_->world_count(); ++i) {
          events += recorder_->world(i).total_events();
        }
        std::cout << "wrote recording (" << recorder_->world_count() << " worlds, " << events
                  << " events): " << record_path_ << "\n";
      } else {
        std::cerr << "failed to write recording: " << record_path_ << "\n";
      }
    }
    if (!replay_path_.empty()) {
      const replay::Recording reference = replay::load(replay_path_);
      const replay::Recording current = replay::parse(replay::serialize(*recorder_));
      if (const auto d = replay::first_divergence(reference, current)) {
        std::cerr << "replay verification FAILED vs " << replay_path_ << ": world " << d->world
                  << " rank " << d->rank << " event " << d->index << " at t=" << d->time
                  << ": " << d->field << " differs (a=recording, b=this run)\n  " << d->detail
                  << "\n";
        std::exit(1);
      }
      std::cout << "replay verification: no divergence vs " << replay_path_ << "\n";
    }
  }
}

void print_header(const std::string& figure, const std::string& what,
                  const topology::MachineConfig& machine, const BenchOptions& opt) {
  std::cout << "=== " << figure << ": " << what << " ===\n"
            << "machine: " << machine.describe() << "\n"
            << "scale: " << opt.scale << " (1.0 = paper configuration), seed: " << opt.seed
            << "\n";
  if (!opt.fault_plan.empty()) {
    std::cout << "faults: " << opt.fault_plan.describe() << " (fault-seed "
              << opt.fault_plan.seed() << ")\n";
  }
  std::cout << "\n";
}

int scaled(int value, double scale, int min_value) {
  return std::max(min_value, static_cast<int>(std::lround(value * scale)));
}

std::size_t peak_rss_bytes() {
  // VmHWM is exact on Linux; ru_maxrss (KiB on Linux/BSD) is the fallback.
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::stoll(line.substr(6))) * 1024;
    }
  }
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
  }
  return 0;
}

void record_memory_metrics() {
  HCS_METRIC_SET("hcs.mem.peak_rss_bytes", static_cast<double>(peak_rss_bytes()));
  HCS_METRIC_SET("hcs.mem.frame_pool_bytes",
                 static_cast<double>(sim::detail::FramePool::reserved_bytes()));
}

SyncAccuracyPoint run_sync_accuracy(const topology::MachineConfig& machine,
                                    const std::string& label, double wait_time,
                                    double sample_fraction, std::uint64_t seed,
                                    const fault::FaultPlan& fault_plan, int shards) {
  simmpi::World world(machine, seed, fault_plan, shards);
  SyncAccuracyPoint point;
  const std::vector<int> clients =
      clocksync::sample_clients(world.size(), 0, sample_fraction, seed ^ 0xabcdefULL);
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync(label);
    const sim::Time begin = ctx.sim().now();
    const clocksync::SyncResult res =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    point.duration = std::max(point.duration, ctx.sim().now() - begin);
    clocksync::SKaMPIOffset oalg(20);
    const clocksync::AccuracyResult acc = co_await clocksync::check_clock_accuracy(
        ctx.comm_world(), *res.clock, oalg, wait_time, clients);
    // Per-rank health to rank 0; collectives ride the reliable transport, so
    // this completes (and stays cheap) even under fault injection.
    std::vector<double> mine(1, static_cast<double>(res.report.health));
    const std::vector<double> health = co_await simmpi::gather(ctx.comm_world(), std::move(mine));
    if (ctx.rank() == 0) {
      point.max_offset_t0 = acc.max_abs_t0;
      point.max_offset_t1 = acc.max_abs_t1;
      for (const double h : health) {
        if (h == static_cast<double>(clocksync::SyncHealth::kOk)) ++point.ok_ranks;
        if (h == static_cast<double>(clocksync::SyncHealth::kDegraded)) ++point.degraded_ranks;
        if (h == static_cast<double>(clocksync::SyncHealth::kFailed)) ++point.failed_ranks;
      }
    }
  });
  HCS_METRIC_ADD("hcs.sync.failed_ranks", static_cast<std::uint64_t>(point.failed_ranks));
  return point;
}

void run_and_print_sync_experiment(util::Table& table, const topology::MachineConfig& machine,
                                   const std::vector<std::string>& labels, int nmpiruns,
                                   double wait_time, double sample_fraction,
                                   const BenchOptions& opt) {
  // Flatten (label, run) into one trial index so all mpiruns of all
  // algorithms fan out together; the seed depends only on `run`, matching
  // the sequential convention (mpirun i of every algorithm uses seed + i).
  const int nlabels = static_cast<int>(labels.size());
  runner::TrialRunner pool(opt.jobs);
  const std::vector<SyncAccuracyPoint> points =
      pool.map(nlabels * nmpiruns, opt.seed, [&](const runner::Trial& trial) {
        const int label_idx = trial.index / nmpiruns;
        const int run = trial.index % nmpiruns;
        return run_sync_accuracy(machine, labels[label_idx], wait_time, sample_fraction,
                                 opt.seed + static_cast<std::uint64_t>(run), opt.fault_plan,
                                 opt.shards);
      });
  for (int label_idx = 0; label_idx < nlabels; ++label_idx) {
    const std::string& label = labels[static_cast<std::size_t>(label_idx)];
    std::vector<double> durations, t0s, t1s;
    int ok = 0, degraded = 0, failed = 0;
    for (int run = 0; run < nmpiruns; ++run) {
      const SyncAccuracyPoint& p = points[static_cast<std::size_t>(label_idx * nmpiruns + run)];
      durations.push_back(p.duration);
      t0s.push_back(p.max_offset_t0);
      t1s.push_back(p.max_offset_t1);
      ok += p.ok_ranks;
      degraded += p.degraded_ranks;
      failed += p.failed_ranks;
      table.add_row({label, std::to_string(run), util::fmt(p.duration, 4),
                     util::fmt_us(p.max_offset_t0, 3), util::fmt_us(p.max_offset_t1, 3),
                     std::to_string(p.ok_ranks), std::to_string(p.degraded_ranks),
                     std::to_string(p.failed_ranks)});
    }
    table.add_row({label + " [mean]", "-", util::fmt(util::mean(durations), 4),
                   util::fmt_us(util::mean(t0s), 3), util::fmt_us(util::mean(t1s), 3),
                   std::to_string(ok), std::to_string(degraded), std::to_string(failed)});
  }
}

}  // namespace hcs::bench
