// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench binary accepts:
//   --scale S        (or $HCLOCKSYNC_SCALE): multiplies repetition counts /
//                    fit points; 1.0 = the paper's full configuration.  Each
//                    binary picks a default sized for a one-core machine.
//   --seed N         : base seed; mpirun i uses seed N + i.
//   --jobs J         (or $HCLOCKSYNC_JOBS): worker threads for independent
//                    trials; 0 = one per hardware thread.  Output is
//                    byte-identical for any J (see runner::TrialRunner).
//   --csv            : additionally emit CSV rows.
//   --trace-out F    : dump a Chrome trace (chrome://tracing / Perfetto).
//   --metrics-out F  : dump the metrics registry as CSV.
// Unknown options are an error (exit code 2), so "--job 4" can't silently
// run the default configuration.  Headers always state machine, scale and
// the paper figure being reproduced.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clocksync/accuracy.hpp"
#include "runner/trial_runner.hpp"
#include "topology/presets.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hcs::bench {

struct BenchOptions {
  double scale = 1.0;
  std::uint64_t seed = 1;
  int jobs = 1;             // worker threads for independent trials; 0 = auto
  bool csv = false;
  std::string trace_out;    // empty = tracing off
  std::string metrics_out;  // empty = metrics CSV off
};

/// Parses the shared bench options.  Rejects unknown options: prints the
/// error and the known set to stderr and exits with code 2, so a typo never
/// silently runs the default configuration.
BenchOptions parse_common(int argc, const char* const* argv, double default_scale);

/// Installs a tracer and/or metrics registry for the binary's lifetime when
/// the corresponding --trace-out/--metrics-out flag was given (construct it
/// before the first World so hot paths resolve their metric handles).  The
/// destructor writes the requested files and prints the metrics summary.
class Observability {
 public:
  explicit Observability(const BenchOptions& opt);
  ~Observability();
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

 private:
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<trace::MetricsRegistry> metrics_;
  std::string trace_path_;
  std::string metrics_path_;
};

/// Prints the standard experiment header.
void print_header(const std::string& figure, const std::string& what,
                  const topology::MachineConfig& machine, const BenchOptions& opt);

/// Scales an integer parameter, never below `min_value`.
int scaled(int value, double scale, int min_value);

/// Result of one mpirun of the paper's core experiment (sync + Alg. 6).
struct SyncAccuracyPoint {
  double duration = 0.0;       // seconds to synchronize (incl. comm creation)
  double max_offset_t0 = 0.0;  // max |offset| right after sync
  double max_offset_t1 = 0.0;  // max |offset| wait_time later
};

/// Synchronizes with `label`, then runs Check-Global-Clock (Algorithm 6).
SyncAccuracyPoint run_sync_accuracy(const topology::MachineConfig& machine,
                                    const std::string& label, double wait_time,
                                    double sample_fraction, std::uint64_t seed);

/// Runs `label` nmpiruns times and prints one row per run plus a mean row,
/// mirroring the point-clouds of the paper's Figs. 3-6.
void run_and_print_sync_experiment(util::Table& table, const topology::MachineConfig& machine,
                                   const std::vector<std::string>& labels, int nmpiruns,
                                   double wait_time, double sample_fraction,
                                   const BenchOptions& opt);

}  // namespace hcs::bench
