// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench binary accepts the flags documented in kBenchFlags below
// (--help prints the same table): --scale/--seed/--jobs/--csv, the
// observability outputs --trace-out/--metrics-out, and the fault-injection
// options --fault (repeatable) and --fault-seed.  Unknown options are an
// error (exit code 2), so "--job 4" can't silently run the default
// configuration.  Headers always state machine, scale and the paper figure
// being reproduced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "clocksync/accuracy.hpp"
#include "clocksync/sync_algorithm.hpp"
#include "fault/fault_plan.hpp"
#include "replay/record.hpp"
#include "runner/trial_runner.hpp"
#include "sim/event_queue.hpp"
#include "topology/presets.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hcs::bench {

struct BenchOptions {
  double scale = 1.0;
  std::uint64_t seed = 1;
  int jobs = 1;             // worker threads for independent trials; 0 = auto
  int shards = 1;           // event-loop shards inside each World (resolved; >= 1)
  sim::QueueImpl queue = sim::QueueImpl::kAdaptive;  // event-queue engine
  bool csv = false;
  std::string trace_out;    // empty = tracing off
  std::string metrics_out;  // empty = metrics CSV off
  std::string record_out;   // empty = event-order recording off
  std::string replay;       // non-empty = verify this run against a recording
  fault::FaultPlan fault_plan;  // empty = no fault injection
};

/// One --flag the bench binaries understand; the single source of truth for
/// --help, the usage line and reject_unknown (a flag parse_common reads but
/// this table omits would fail the help_lists_all_flags ctest).
struct BenchFlag {
  const char* name;  // without the leading "--"
  const char* arg;   // metavar, or nullptr for boolean flags
  const char* help;
};

/// Every flag parse_common parses, in display order.
extern const BenchFlag kBenchFlags[];
extern const std::size_t kBenchFlagCount;

/// Writes the usage line plus one line per kBenchFlags entry.
void print_usage(std::ostream& os, const std::string& program);

/// Parses the shared bench options.  --help prints the flag table and exits
/// 0.  Rejects unknown options and malformed --fault specs: prints the error
/// and the usage to stderr and exits with code 2, so a typo never silently
/// runs the default configuration.
BenchOptions parse_common(int argc, const char* const* argv, double default_scale);

/// parse_common plus binary-specific flags: each `extra` entry is accepted,
/// documented by --help/usage alongside the shared table, and readable
/// through the returned Cli view (e.g. bench_scale's --ranks).
struct ParsedBench {
  BenchOptions opt;
  util::Cli cli;
};
ParsedBench parse_common_extra(int argc, const char* const* argv, double default_scale,
                               const std::vector<BenchFlag>& extra);

/// Installs a tracer and/or metrics registry for the binary's lifetime when
/// the corresponding --trace-out/--metrics-out flag was given (construct it
/// before the first World so hot paths resolve their metric handles).  The
/// destructor writes the requested files and prints the metrics summary.
/// --record-out additionally installs an event-order recorder and saves it
/// at exit; --replay records in memory and verifies the run against the
/// given recording at exit, exiting 1 with the first divergence on mismatch
/// (docs/record-replay.md).
class Observability {
 public:
  explicit Observability(const BenchOptions& opt);
  ~Observability();
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

 private:
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<trace::MetricsRegistry> metrics_;
  std::unique_ptr<replay::Recorder> recorder_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string record_path_;
  std::string replay_path_;
};

/// Prints the standard experiment header.
void print_header(const std::string& figure, const std::string& what,
                  const topology::MachineConfig& machine, const BenchOptions& opt);

/// Scales an integer parameter, never below `min_value`.
int scaled(int value, double scale, int min_value);

/// Peak resident set size of this process in bytes: VmHWM from
/// /proc/self/status where available, ru_maxrss otherwise; 0 if neither
/// source works.  Monotone over the process lifetime (it is a high-water
/// mark), so sample it after the Worlds of interest have run.
std::size_t peak_rss_bytes();

/// Publishes the process memory high-water marks into the active metrics
/// registry: hcs.mem.peak_rss_bytes (peak_rss_bytes()) and
/// hcs.mem.frame_pool_bytes (the coroutine frame pool's slab reservation).
/// No-op
/// without an installed registry.
void record_memory_metrics();

/// Result of one mpirun of the paper's core experiment (sync + Alg. 6).
struct SyncAccuracyPoint {
  double duration = 0.0;       // seconds to synchronize (incl. comm creation)
  double max_offset_t0 = 0.0;  // max |offset| right after sync
  double max_offset_t1 = 0.0;  // max |offset| wait_time later
  int ok_ranks = 0;            // ranks whose sync report says kOk
  int degraded_ranks = 0;      // ranks whose sync report says kDegraded
  int failed_ranks = 0;        // ranks whose sync report says kFailed
};

/// Synchronizes with `label`, then runs Check-Global-Clock (Algorithm 6).
/// With a non-empty `fault_plan` the World injects faults; per-rank sync
/// health is gathered to rank 0 and summarized in the returned point.
SyncAccuracyPoint run_sync_accuracy(const topology::MachineConfig& machine,
                                    const std::string& label, double wait_time,
                                    double sample_fraction, std::uint64_t seed,
                                    const fault::FaultPlan& fault_plan = {}, int shards = 1);

/// Runs `label` nmpiruns times and prints one row per run plus a mean row,
/// mirroring the point-clouds of the paper's Figs. 3-6.
void run_and_print_sync_experiment(util::Table& table, const topology::MachineConfig& machine,
                                   const std::vector<std::string>& labels, int nmpiruns,
                                   double wait_time, double sample_fraction,
                                   const BenchOptions& opt);

}  // namespace hcs::bench
