// Ablation — synchronization robustness under message loss: drop rate x
// algorithm, reporting accuracy plus how many ranks each sync flagged as
// degraded or failed.  Not a paper figure; it exercises the deterministic
// fault-injection subsystem (docs/fault-injection.md) end to end.
//
// Expected shape: at 0% every algorithm is clean; as the drop rate grows the
// burst retry/timeout machinery keeps every sync terminating, accuracy decays
// gracefully, and the degraded-rank count rises (JK's O(p) serial schedule
// accumulates the most lost exchanges).  Any extra --fault specs given on the
// command line are injected on top of the swept drop fault.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 1.0);
  const Observability obs(opt);
  const auto machine = topology::testbox(4, 2);  // 8 ranks, 2 per node

  const int nfit = scaled(100, opt.scale, 20);
  const int npp = scaled(20, opt.scale, 5);
  const int nmpiruns = 3;
  const std::vector<double> drop_rates = {0.0, 0.01, 0.02, 0.05};
  print_header("Ablation (faults)",
               "sync robustness vs. message drop rate, " + std::to_string(nmpiruns) + " mpiruns",
               machine, opt);

  const std::string suffix =
      "/" + std::to_string(nfit) + "/skampi_offset/" + std::to_string(npp);
  const std::string inner = std::to_string(nfit) + "/skampi_offset/" + std::to_string(npp);
  const std::vector<std::string> labels = {
      "hca" + suffix,
      "hca2" + suffix,
      "hca3" + suffix,
      "jk" + suffix,
      "top/hca3/" + inner + "/bottom/clockpropagation",
      "top/hca3/" + inner + "/bottom/hca3/" + inner,
  };

  // One trial per (drop rate, algorithm, mpirun); seeds depend only on the
  // mpirun index so every cell sees the same worlds.
  const int nlabels = static_cast<int>(labels.size());
  const int nrates = static_cast<int>(drop_rates.size());
  runner::TrialRunner pool(opt.jobs);
  const std::vector<SyncAccuracyPoint> points =
      pool.map(nrates * nlabels * nmpiruns, opt.seed, [&](const runner::Trial& trial) {
        const int rate_idx = trial.index / (nlabels * nmpiruns);
        const int label_idx = (trial.index / nmpiruns) % nlabels;
        const int run = trial.index % nmpiruns;
        fault::FaultPlan plan = opt.fault_plan;
        if (drop_rates[static_cast<std::size_t>(rate_idx)] > 0.0) {
          fault::FaultSpec drop;
          drop.kind = fault::FaultKind::kDrop;
          drop.p = drop_rates[static_cast<std::size_t>(rate_idx)];
          plan.add(drop);
        }
        return run_sync_accuracy(machine, labels[static_cast<std::size_t>(label_idx)], 2.0, 1.0,
                                 opt.seed + static_cast<std::uint64_t>(run), plan);
      });

  util::Table table({"drop_rate", "algorithm", "sync_duration_s", "max_offset_0s_us",
                     "max_offset_2s_us", "ok_ranks", "degraded_ranks", "failed_ranks"});
  for (int rate_idx = 0; rate_idx < nrates; ++rate_idx) {
    for (int label_idx = 0; label_idx < nlabels; ++label_idx) {
      std::vector<double> durations, t0s, t1s;
      int ok = 0, degraded = 0, failed = 0;
      for (int run = 0; run < nmpiruns; ++run) {
        const SyncAccuracyPoint& p = points[static_cast<std::size_t>(
            (rate_idx * nlabels + label_idx) * nmpiruns + run)];
        durations.push_back(p.duration);
        t0s.push_back(p.max_offset_t0);
        t1s.push_back(p.max_offset_t1);
        ok += p.ok_ranks;
        degraded += p.degraded_ranks;
        failed += p.failed_ranks;
      }
      table.add_row({util::fmt(drop_rates[static_cast<std::size_t>(rate_idx)], 2),
                     labels[static_cast<std::size_t>(label_idx)],
                     util::fmt(util::mean(durations), 4), util::fmt_us(util::mean(t0s), 3),
                     util::fmt_us(util::mean(t1s), 3), std::to_string(ok),
                     std::to_string(degraded), std::to_string(failed)});
    }
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: 0% drop is clean everywhere; degraded_ranks grows with the drop "
               "rate while every sync still terminates.\n";
  return 0;
}
