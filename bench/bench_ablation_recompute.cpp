// Ablation — the recompute_intercept flag (paper Algorithm 2): re-anchoring
// the model's intercept with one extra offset measurement after the linear
// regression.  Expected: better immediate accuracy for HCA2/HCA3 at a small
// extra cost; the effect fades at the 10 s horizon where slope error
// dominates.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.1);
  const Observability obs(opt);
  const auto machine = topology::jupiter().with_nodes(16);  // 256 ranks

  const int nfit = scaled(1000, opt.scale, 40);
  const int npp = scaled(100, opt.scale, 10);
  const int nmpiruns = 5;
  print_header("Ablation (recompute_intercept)", "with vs. without the intercept re-anchor",
               machine, opt);

  std::vector<std::string> labels;
  for (const std::string algo : {"hca2", "hca3"}) {
    labels.push_back(algo + "/recompute_intercept/" + std::to_string(nfit) + "/skampi_offset/" +
                     std::to_string(npp));
    labels.push_back(algo + "/" + std::to_string(nfit) + "/skampi_offset/" +
                     std::to_string(npp));
  }
  util::Table table({"algorithm", "mpirun", "sync_duration_s", "max_offset_0s_us",
                     "max_offset_10s_us"});
  run_and_print_sync_experiment(table, machine, labels, nmpiruns, 10.0, 1.0, opt);
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: recompute_intercept improves (or matches) the 0 s column for "
               "both algorithms.\n";
  return 0;
}
