// Ablation — H3HCA vs. H2HCA (paper §IV-D/§IV-E).
//
// The paper: "We do not show experimental results for H3HCA, as they were
// found to be almost identical to the ones produced by H2HCA.  Since the
// compute nodes in our experiments have a common time source, we can treat
// all cores on a particular node equally."  This bench verifies both halves:
// on a per-node-time-source machine H3 adds a level without changing the
// result; on a per-SOCKET-time-source machine H3 (with ClockPropSync only at
// socket scope) is the correct scheme while H2's node-wide ClockPropSync
// would violate its applicability condition.
#include <iostream>

#include "clocksync/clock_prop.hpp"
#include "clocksync/hca3.hpp"
#include "clocksync/hierarchical.hpp"
#include "clocksync/skampi_offset.hpp"
#include "common.hpp"
#include "simmpi/world.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::bench {
namespace {

std::unique_ptr<clocksync::ClockSync> make_level(int nfit, int npp) {
  return std::make_unique<clocksync::HCA3Sync>(clocksync::SyncConfig{nfit, true},
                                               std::make_unique<clocksync::SKaMPIOffset>(npp));
}

struct Outcome {
  double duration = 0.0;
  double max_offset_us = 0.0;
};

Outcome run(const topology::MachineConfig& machine, int levels, int nfit, int npp,
            std::uint64_t seed) {
  simmpi::World world(machine, seed);
  const int p = world.size();
  std::vector<vclock::ClockPtr> clocks(static_cast<std::size_t>(p));
  Outcome outcome;
  sim::Time end = 0;
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    std::unique_ptr<clocksync::ClockSync> sync;
    if (levels == 2) {
      sync = clocksync::make_h2hca(make_level(nfit, npp),
                                   std::make_unique<clocksync::ClockPropSync>());
    } else {
      sync = clocksync::make_h3hca(make_level(nfit, npp), make_level(nfit / 2, npp),
                                   std::make_unique<clocksync::ClockPropSync>());
    }
    const sim::Time begin = ctx.sim().now();
    clocks[static_cast<std::size_t>(ctx.rank())] =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    outcome.duration = std::max(outcome.duration, ctx.sim().now() - begin);
    end = std::max(end, ctx.sim().now());
  });
  for (int r = 1; r < p; ++r) {
    outcome.max_offset_us = std::max(
        outcome.max_offset_us, std::abs(clocks[static_cast<std::size_t>(r)]->at_exact(end) -
                                        clocks[0]->at_exact(end)) *
                                   1e6);
  }
  return outcome;
}

}  // namespace
}  // namespace hcs::bench

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.25);
  const Observability obs(opt);
  const int nfit = scaled(1000, opt.scale, 50);
  const int npp = scaled(100, opt.scale, 10);
  const int nmpiruns = 3;

  util::Table table({"machine (time source)", "scheme", "mean_duration_s", "mean_max_offset_us"});
  const auto per_node = topology::jupiter().with_nodes(16);
  const auto per_socket =
      topology::jupiter().with_nodes(16).with_time_source(topology::TimeSourceScope::kPerSocket);
  print_header("Ablation (H3HCA)", "two vs. three architectural levels", per_node, opt);

  struct Case {
    const topology::MachineConfig* machine;
    std::string label;
    int levels;
  };
  const std::vector<Case> cases = {
      {&per_node, "per-node / H2HCA", 2},
      {&per_node, "per-node / H3HCA", 3},
      {&per_socket, "per-socket / H3HCA", 3},
  };
  // Flatten (case, run); the seed depends only on the run index, as in the
  // sequential loop this replaces.
  runner::TrialRunner pool(opt.jobs);
  const std::vector<Outcome> outcomes = pool.map(
      static_cast<int>(cases.size()) * nmpiruns, opt.seed, [&](const runner::Trial& trial) {
        const Case& c = cases[static_cast<std::size_t>(trial.index / nmpiruns)];
        return run(*c.machine, c.levels, nfit, npp,
                   opt.seed + static_cast<std::uint64_t>(trial.index % nmpiruns));
      });
  for (std::size_t case_idx = 0; case_idx < cases.size(); ++case_idx) {
    const Case& c = cases[case_idx];
    std::vector<double> durations, offsets;
    for (int r = 0; r < nmpiruns; ++r) {
      const Outcome& o =
          outcomes[case_idx * static_cast<std::size_t>(nmpiruns) + static_cast<std::size_t>(r)];
      durations.push_back(o.duration);
      offsets.push_back(o.max_offset_us);
    }
    table.add_row({c.label, c.levels == 2 ? "H2" : "H3", util::fmt(util::mean(durations), 4),
                   util::fmt(util::mean(offsets), 3)});
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: on per-node time sources H3 is 'almost identical' to H2 "
               "(paper §IV-E); on per-socket sources H3 still yields a us-level clock, the "
               "configuration H2's node-wide ClockPropSync could not handle correctly.\n";
  return 0;
}
