// Ablation — the accuracy/duration trade-off over the two tuning knobs the
// paper names in §III-C3: the number of fit points and the number of
// ping-pongs per fit point, for HCA3 on Jupiter.
//
// Expected: duration grows ~linearly in nfitpoints x pingpongs; the 10 s
// accuracy improves with both (longer fit window => better slope), with
// diminishing returns.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.25);
  const Observability obs(opt);
  const auto machine = topology::jupiter().with_nodes(16);  // 256 ranks
  const int nmpiruns = 3;
  print_header("Ablation (fit points / ping-pongs)", "HCA3 parameter sweep", machine, opt);

  struct Cell {
    int nfit, npp;
    std::string label;
  };
  std::vector<Cell> cells;
  for (const int nfit_base : {100, 300, 1000}) {
    for (const int npp_base : {10, 30, 100}) {
      const int nfit = scaled(nfit_base, opt.scale, 20);
      const int npp = scaled(npp_base, opt.scale, 5);
      cells.push_back({nfit, npp,
                       "hca3/recompute_intercept/" + std::to_string(nfit) + "/skampi_offset/" +
                           std::to_string(npp)});
    }
  }
  // Flatten (cell, run); the seed depends only on the run index, as in the
  // sequential loop this replaces.
  runner::TrialRunner pool(opt.jobs);
  const std::vector<SyncAccuracyPoint> points = pool.map(
      static_cast<int>(cells.size()) * nmpiruns, opt.seed, [&](const runner::Trial& trial) {
        return run_sync_accuracy(machine,
                                 cells[static_cast<std::size_t>(trial.index / nmpiruns)].label,
                                 10.0, 1.0,
                                 opt.seed + static_cast<std::uint64_t>(trial.index % nmpiruns));
      });

  util::Table table({"nfitpoints", "pingpongs", "mean_duration_s", "mean_offset_0s_us",
                     "mean_offset_10s_us"});
  for (std::size_t cell_idx = 0; cell_idx < cells.size(); ++cell_idx) {
    std::vector<double> durations, t0s, t1s;
    for (int run = 0; run < nmpiruns; ++run) {
      const SyncAccuracyPoint& p =
          points[cell_idx * static_cast<std::size_t>(nmpiruns) + static_cast<std::size_t>(run)];
      durations.push_back(p.duration);
      t0s.push_back(p.max_offset_t0);
      t1s.push_back(p.max_offset_t1);
    }
    table.add_row({std::to_string(cells[cell_idx].nfit), std::to_string(cells[cell_idx].npp),
                   util::fmt(util::mean(durations), 4), util::fmt_us(util::mean(t0s), 3),
                   util::fmt_us(util::mean(t1s), 3)});
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: the 10 s column improves down/right (longer fit windows); "
               "duration grows proportionally.\n";
  return 0;
}
