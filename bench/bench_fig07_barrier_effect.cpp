// Fig. 7 — the benchmarking dilemma: the latency of MPI_Allreduce for small
// payloads (4/8/16 B) as reported by three suite styles (IMB-like, OSU-like,
// ReproMPI-like) under different internal MPI_Barrier algorithms; Jupiter,
// 32 x 16 = 512 ranks.
//
// Expected shape: the barrier-based suites (IMB, OSU) report latencies that
// depend strongly on the barrier algorithm and exceed ReproMPI's Round-Time
// numbers; the "tree" barrier yields the smallest latencies.
#include <iostream>

#include "clocksync/factory.hpp"
#include "common.hpp"
#include "mpibench/suites.hpp"
#include "simmpi/world.hpp"

namespace hcs::bench {
namespace {

struct Cell {
  double imb_us, osu_us, repro_us;
};

Cell run_cell(const topology::MachineConfig& machine, std::int64_t msize,
              simmpi::BarrierAlgo barrier, int nrep, const std::string& sync_label,
              std::uint64_t seed) {
  simmpi::World world(machine, seed);
  Cell cell{};
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    auto sync = hcs::clocksync::make_sync(sync_label);
    auto g = co_await sync->sync_clocks(ctx.comm_world(), clk);
    const mpibench::CollectiveOp op = mpibench::make_allreduce_op(msize);
    const mpibench::BarrierSchemeParams bp{nrep, barrier};
    const auto imb = co_await mpibench::run_imb_like(ctx.comm_world(), *clk, op, bp);
    const auto osu = co_await mpibench::run_osu_like(ctx.comm_world(), *clk, op, bp);
    mpibench::RoundTimeParams rt;
    rt.max_nrep = nrep;
    const auto repro = co_await mpibench::run_repro_like(ctx.comm_world(), *g, op, rt);
    if (ctx.rank() == 0) {
      cell.imb_us = imb.reported_latency * 1e6;
      cell.osu_us = osu.reported_latency * 1e6;
      cell.repro_us = repro.reported_latency * 1e6;
    }
  });
  return cell;
}

}  // namespace
}  // namespace hcs::bench

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.1);
  const Observability obs(opt);
  const auto machine = topology::jupiter().with_nodes(32);
  const int nrep = scaled(300, opt.scale, 25);
  print_header("Fig. 7", "MPI_Allreduce latency by benchmark suite x barrier algorithm, " +
                             std::to_string(nrep) + " reps per cell",
               machine, opt);

  const std::string sync_label = "hca3/recompute_intercept/" +
                                 std::to_string(scaled(1000, opt.scale, 40)) +
                                 "/skampi_offset/" + std::to_string(scaled(100, opt.scale, 10));

  const std::vector<std::int64_t> msizes{4, 8, 16};
  const std::vector<simmpi::BarrierAlgo> barriers{simmpi::BarrierAlgo::kBruck,
                                                  simmpi::BarrierAlgo::kRecursiveDoubling,
                                                  simmpi::BarrierAlgo::kTree};
  const int nbarriers = static_cast<int>(barriers.size());
  // Every (msize, barrier) cell is an independent mpirun — fan them out.
  runner::TrialRunner pool(opt.jobs);
  const std::vector<Cell> cells = pool.map(
      static_cast<int>(msizes.size()) * nbarriers, opt.seed, [&](const runner::Trial& trial) {
        return run_cell(machine, msizes[static_cast<std::size_t>(trial.index / nbarriers)],
                        barriers[static_cast<std::size_t>(trial.index % nbarriers)], nrep,
                        sync_label, opt.seed);
      });

  util::Table table({"msize_B", "barrier", "IMB_us", "OSU_us", "ReproMPI_us"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    table.add_row({std::to_string(msizes[i / barriers.size()]),
                   simmpi::to_string(barriers[i % barriers.size()]), util::fmt(c.imb_us, 2),
                   util::fmt(c.osu_us, 2), util::fmt(c.repro_us, 2)});
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: ReproMPI columns are the smallest and barely depend on the "
               "barrier; IMB/OSU depend on the barrier, with 'tree' smallest.\n";
  return 0;
}
