// Fig. 6 — HCA3 vs. H2HCA at scale: Titan, 1024 x 16 = 16384 ranks,
// 5 mpiruns, clock accuracy sampled on 10 % of the ranks (as in the paper,
// "otherwise the measurement procedure would take too long").
//
// The rank count is the paper's real one at every --scale: the machine is
// always the full 1024-node Titan preset, and --scale only thins the
// per-rank workload (fit points, pingpongs per measurement).  The ladder
// event queue and slab-allocated rank state keep the default run cheap at
// this size; bench_scale extends the same sweep to 131072 ranks.
//
// Expected shape: errors grow vs. the 512-rank runs (deeper trees, fatter
// jitter tails), the hierarchical variants stay faster, and the run-to-run
// variance of the maximum offset increases markedly.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.05);
  const Observability obs(opt);
  const auto machine = topology::titan();  // 1024 x 16

  const int npp = scaled(100, opt.scale, 8);
  const int nfit_hi = scaled(1000, opt.scale, 30);
  const int nfit_lo = scaled(500, opt.scale, 15);
  const int nmpiruns = 5;
  print_header("Fig. 6", "HCA3 vs. H2HCA on Titan (1024 x 16 = 16384 ranks), 5 mpiruns, "
                         "accuracy sampled on 10% of ranks",
               machine, opt);

  auto flat = [&](int nfit) {
    return "hca3/recompute_intercept/" + std::to_string(nfit) + "/skampi_offset/" +
           std::to_string(npp);
  };
  auto hier = [&](int nfit) {
    return "top/hca3/" + std::to_string(nfit) + "/skampi_offset/" + std::to_string(npp) +
           "/bottom/clockpropagation";
  };
  const std::vector<std::string> labels = {flat(nfit_hi), flat(nfit_lo), hier(nfit_hi),
                                           hier(nfit_lo)};

  util::Table table({"algorithm", "mpirun", "sync_duration_s", "max_offset_0s_us",
                     "max_offset_10s_us", "ok_ranks", "degraded_ranks", "failed_ranks"});
  run_and_print_sync_experiment(table, machine, labels, nmpiruns, 10.0, 0.10, opt);
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: larger offsets and larger run-to-run spread than Figs. 4/5; "
               "H2HCA rows remain left of (faster than) the flat rows.\n";
  return 0;
}
