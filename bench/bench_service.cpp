// bench_service — long-running synchronization service under churn.
//
// A small cluster keeps a global clock alive for a simulated day: every
// rank runs a service loop that periodically re-synchronizes
// (clocksync::ResyncManager on a fixed cadence), serves the re-admission
// sub-phases of ranks returning from a churn plan
// (clocksync::membership), and answers a configurable stream of client
// time queries.  Queries are evaluated host-side after the run against the
// recorded clock-model history, so the whole binary — like every bench —
// prints a byte-identical stdout for any --jobs/--shards/--queue
// combination and records/replays through --record-out/--replay
// (docs/record-replay.md).
//
// SLO metrics reported (and published as service.* metrics when
// --metrics-out is given):
//   - offset error: |rank clock - rank 0 clock| at each query instant,
//     p50/p99/p999 (nearest-rank over the full query stream, no sampling);
//   - query staleness: age of the clock model answering each query;
//   - failed-query rate: queries hitting a down rank or one whose service
//     has not produced a clock yet;
//   - reconvergence time per rejoin: restart instant -> re-admitted clock.
//
// The default fault plan cycles two ranks through leave/rejoin (rank 5
// twice — three incarnations); --fault replaces it entirely.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "clocksync/factory.hpp"
#include "clocksync/membership.hpp"
#include "clocksync/resync.hpp"
#include "clocksync/skampi_offset.hpp"
#include "common.hpp"
#include "simmpi/world.hpp"

namespace {

using namespace hcs;
using namespace hcs::bench;

// One installed clock model of one rank: everything the host needs to
// answer "what would this rank have said at time t, and how stale was it".
struct ClockEpoch {
  sim::Time at = 0.0;  // install instant (sync, resync or re-admission)
  vclock::ClockPtr clock;
};

struct ServiceParams {
  std::string label;     // sync algorithm label
  double duration = 0.0; // simulated seconds of service
  double interval = 0.0; // resync cadence
  int accuracy_exchanges = 8;
};

// The agenda is the rank's whole timeline, derived from the fault oracle
// before any message is sent: resync rounds on the global cadence plus the
// re-admissions this rank serves.  Pure function of the plan, so every
// rank computes a mutually consistent schedule.
struct AgendaItem {
  sim::Time at = 0.0;
  bool serve = false;  // false = resync round, true = serve a re-admission
  clocksync::ReadmitEvent event;  // valid when serve
};

sim::Task<void> service_rank(const ServiceParams* params, std::vector<ClockEpoch>* history,
                             std::vector<double>* reconverge, int* resyncs,
                             simmpi::RankCtx& ctx) {
  simmpi::World& world = ctx.world();
  const fault::FaultInjector* fault = world.fault_injector();
  sim::Simulation& s = ctx.sim();
  const int me = ctx.rank();
  const sim::Time entry = s.now();
  const int inc = fault != nullptr ? fault->incarnation(me, entry) : 0;
  const sim::Time my_end =
      std::min(fault != nullptr ? fault->next_down(me, entry) : sim::kTimeInfinity,
               params->duration);

  clocksync::ResyncManager mgr(clocksync::make_sync(params->label), params->interval);
  clocksync::SKaMPIOffset oalg(params->accuracy_exchanges);
  clocksync::ReadmitPolicy policy;
  vclock::ClockPtr clock;
  if (inc == 0) {
    simmpi::Comm view = simmpi::Comm::view_comm(world, me, entry);
    clock = co_await mgr.tick(view, ctx.base_clock());
  } else {
    // Returning incarnation: exactly the rank's own sub-phase of the tree,
    // then adopt the re-admitted clock into the periodic cadence.
    const clocksync::ReadmitEvent event{entry, me, inc};
    simmpi::Comm view = simmpi::Comm::view_comm(world, me, entry);
    clocksync::ReadmitResult res =
        co_await clocksync::readmit(view, event, ctx.base_clock(), oalg, policy);
    clock = res.clock;
    reconverge->push_back(s.now() - entry);
    mgr.adopt(clock, clock->at_exact(s.now()) + params->interval);
  }
  history->push_back({s.now(), clock});

  std::vector<AgendaItem> agenda;
  const std::vector<clocksync::ReadmitEvent> schedule = clocksync::readmit_schedule(world);
  for (const clocksync::ReadmitEvent& ev : schedule) {
    if (ev.rank == me || ev.at < entry || ev.at >= my_end) continue;
    if (clocksync::readmit_reference(world, ev) != me) continue;
    agenda.push_back({ev.at, true, ev});
  }
  for (sim::Time r = params->interval; r < my_end; r += params->interval) {
    if (r <= entry) continue;
    agenda.push_back({r, false, {}});
  }
  std::sort(agenda.begin(), agenda.end(), [](const AgendaItem& a, const AgendaItem& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.serve != b.serve) return a.serve;  // serve before the round at ties
    return a.event.rank < b.event.rank;
  });

  for (const AgendaItem& item : agenda) {
    if (s.now() < item.at) co_await s.delay(item.at - s.now());
    world.check_crash(me);
    if (item.serve) {
      simmpi::Comm view = simmpi::Comm::view_comm(world, me, item.event.at);
      (void)co_await clocksync::readmit(view, item.event, clock, oalg, policy);
    } else {
      const int before = mgr.resyncs();
      simmpi::Comm view = simmpi::Comm::view_comm(world, me, item.at);
      clock = co_await mgr.tick(view, ctx.base_clock());
      if (mgr.resyncs() != before) history->push_back({s.now(), clock});
    }
  }
  *resyncs = mgr.resyncs();
  if (my_end < params->duration) {
    // This incarnation departs before the service window ends: run up to
    // the departure instant so the churn supervisor sees the crash and can
    // schedule the next incarnation (a program that returns early would
    // leave the remaining plan armed but unfired).
    if (s.now() < my_end) co_await s.delay(my_end - s.now());
    world.check_crash(me);
  }
}

double nearest_rank(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t n = sorted.size();
  std::size_t idx = static_cast<std::size_t>(std::ceil(q / 100.0 * static_cast<double>(n)));
  if (idx > 0) --idx;
  if (idx >= n) idx = n - 1;
  return sorted[idx];
}

const ClockEpoch* epoch_at(const std::vector<ClockEpoch>& history, double t) {
  const ClockEpoch* best = nullptr;
  for (const ClockEpoch& e : history) {
    if (e.at <= t) best = &e;
    else break;
  }
  return best;
}

std::string fault_spec(const char* kind, int rank, double at) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s:rank=%d,at=%.6fs", kind, rank, at);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const ParsedBench parsed = parse_common_extra(
      argc, argv, 0.01,
      {{"duration", "SECONDS", "simulated service length (default 86400 * scale, min 120)"},
       {"qps", "N", "client time queries per simulated second, round-robin over ranks "
                    "(default 2)"},
       {"interval", "SECONDS", "re-synchronization cadence (default 20)"}});
  BenchOptions opt = parsed.opt;

  ServiceParams params;
  params.duration = scaled(86400, opt.scale, 120);
  params.interval = 20.0;
  int qps = 2;
  try {
    if (parsed.cli.has("duration")) params.duration = std::stod(parsed.cli.get("duration", ""));
    if (parsed.cli.has("qps")) qps = std::stoi(parsed.cli.get("qps", ""));
    if (parsed.cli.has("interval")) params.interval = std::stod(parsed.cli.get("interval", ""));
    if (params.duration < 60.0) throw std::invalid_argument("--duration: must be >= 60");
    if (qps < 1) throw std::invalid_argument("--qps: must be >= 1");
    if (params.interval <= 0.0) throw std::invalid_argument("--interval: must be > 0");
  } catch (const std::exception& e) {
    std::cerr << parsed.cli.program() << ": " << e.what() << "\n";
    return 2;
  }
  // The default churn plan cycles ranks through leave/rejoin at fixed
  // fractions of the service window, offset off the resync cadence; any
  // --fault replaces it wholesale.
  if (opt.fault_plan.empty()) {
    const double d = params.duration;
    opt.fault_plan.add(fault_spec("leave", 5, 0.15 * d + 1.3));
    opt.fault_plan.add(fault_spec("rejoin", 5, 0.25 * d + 2.7));
    opt.fault_plan.add(fault_spec("leave", 2, 0.45 * d + 0.9));
    opt.fault_plan.add(fault_spec("rejoin", 2, 0.50 * d + 1.1));
    opt.fault_plan.add(fault_spec("leave", 5, 0.70 * d + 0.5));
    opt.fault_plan.add(fault_spec("rejoin", 5, 0.72 * d + 1.7));
  }
  const Observability obs(opt);

  topology::MachineConfig machine = topology::testbox(8, 1);
  machine.clocks.initial_offset_abs = 5e-3;
  machine.clocks.base_skew_abs = 2e-6;
  machine.clocks.skew_walk_sd = 0.005e-6;
  params.label = "hca3/" + std::to_string(scaled(300, opt.scale, 40)) + "/skampi_offset/" +
                 std::to_string(scaled(100, opt.scale, 8));
  print_header("bench_service", "long-running sync service under churn: SLO soak", machine, opt);

  simmpi::World world(machine, opt.seed, opt.fault_plan, opt.shards);
  const int nranks = world.size();
  std::vector<std::vector<ClockEpoch>> history(static_cast<std::size_t>(nranks));
  std::vector<std::vector<double>> reconverge(static_cast<std::size_t>(nranks));
  std::vector<int> resyncs(static_cast<std::size_t>(nranks), 0);
  world.run_all([&](simmpi::RankCtx& ctx) {
    const std::size_t r = static_cast<std::size_t>(ctx.rank());
    return service_rank(&params, &history[r], &reconverge[r], &resyncs[r], ctx);
  });

  // Host-side query evaluation: deterministic replay of the client stream
  // against the recorded model history (no host state leaks into the run).
  const fault::FaultInjector* fault = world.fault_injector();
  const std::uint64_t seconds = static_cast<std::uint64_t>(params.duration);
  std::uint64_t total = 0, failed = 0;
  std::vector<double> offsets, staleness;
  offsets.reserve(seconds * static_cast<std::uint64_t>(qps));
  staleness.reserve(seconds * static_cast<std::uint64_t>(qps));
  for (std::uint64_t sec = 0; sec < seconds; ++sec) {
    for (int i = 0; i < qps; ++i) {
      const double t =
          static_cast<double>(sec) + (static_cast<double>(i) + 0.5) / static_cast<double>(qps);
      const int target = static_cast<int>((sec * static_cast<std::uint64_t>(qps) +
                                           static_cast<std::uint64_t>(i)) %
                                          static_cast<std::uint64_t>(nranks));
      ++total;
      const bool down = fault != nullptr && fault->is_down(target, t);
      const ClockEpoch* e = epoch_at(history[static_cast<std::size_t>(target)], t);
      if (down || e == nullptr) {
        ++failed;
        continue;
      }
      staleness.push_back(t - e->at);
      if (target != 0) {
        const ClockEpoch* ref = epoch_at(history[0], t);
        if (ref != nullptr) {
          offsets.push_back(std::abs(e->clock->at_exact(t) - ref->clock->at_exact(t)));
        }
      }
    }
  }
  std::sort(offsets.begin(), offsets.end());
  std::sort(staleness.begin(), staleness.end());

  std::uint64_t rejoins = 0;
  double reconv_sum = 0.0, reconv_max = 0.0;
  for (const std::vector<double>& per_rank : reconverge) {
    for (const double v : per_rank) {
      ++rejoins;
      reconv_sum += v;
      reconv_max = std::max(reconv_max, v);
    }
  }
  const double failed_rate =
      total != 0 ? static_cast<double>(failed) / static_cast<double>(total) : 0.0;
  const double off_p50 = nearest_rank(offsets, 50.0);
  const double off_p99 = nearest_rank(offsets, 99.0);
  const double off_p999 = nearest_rank(offsets, 99.9);

  util::Table table({"slo_metric", "value"});
  table.add_row({"duration_s", util::fmt(params.duration, 0)});
  table.add_row({"ranks", std::to_string(nranks)});
  table.add_row({"qps", std::to_string(qps)});
  table.add_row({"resync_interval_s", util::fmt(params.interval, 0)});
  table.add_row({"resyncs_rank0", std::to_string(resyncs[0])});
  table.add_row({"rejoins", std::to_string(rejoins)});
  table.add_row({"queries", std::to_string(total)});
  table.add_row({"failed_queries", std::to_string(failed)});
  table.add_row({"failed_query_rate", util::fmt(failed_rate, 6)});
  table.add_row({"offset_error_p50_us", util::fmt_us(off_p50, 3)});
  table.add_row({"offset_error_p99_us", util::fmt_us(off_p99, 3)});
  table.add_row({"offset_error_p999_us", util::fmt_us(off_p999, 3)});
  table.add_row({"staleness_p50_s", util::fmt(nearest_rank(staleness, 50.0), 3)});
  table.add_row({"staleness_p99_s", util::fmt(nearest_rank(staleness, 99.0), 3)});
  table.add_row({"reconverge_mean_ms",
                 util::fmt(rejoins != 0 ? reconv_sum / static_cast<double>(rejoins) * 1e3 : 0.0,
                           3)});
  table.add_row({"reconverge_max_ms", util::fmt(reconv_max * 1e3, 3)});
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);

  // Publish the stream into the metrics registry (no-ops without
  // --metrics-out); done host-side so shard threads never touch it.
  HCS_METRIC_ADD("service.query.total", total);
  HCS_METRIC_ADD("service.query.failed", failed);
  for (const double v : offsets) HCS_METRIC_OBSERVE("service.query.offset_error", v);
  for (const double v : staleness) HCS_METRIC_OBSERVE("service.query.staleness", v);
  for (const std::vector<double>& per_rank : reconverge) {
    for (const double v : per_rank) HCS_METRIC_OBSERVE("service.readmit.reconverge", v);
  }
  HCS_METRIC_SET("service.slo.offset_p99_us", off_p99 * 1e6);
  HCS_METRIC_SET("service.slo.failed_query_rate", failed_rate);
  record_memory_metrics();

  std::cout << "\nShape check: offset error stays bounded by skew x resync cadence across "
               "the whole soak (tens of us at the tuned 2 ppm skew) instead of drifting; "
               "failed queries are confined to down intervals, and each rejoin reconverges "
               "in milliseconds via its own sub-phase, not a full resync.\n";
  return 0;
}
