// Fig. 10 — Gantt charts of the 10th MPI_Allreduce in an AMG2013-like
// mini-app, traced with a global clock (H2HCA) vs. local clocks, for two
// timer configurations: clock_gettime-like (per-core timers with arbitrary
// offsets) and gettimeofday-like (NTP-conditioned, microsecond resolution).
// 27 x 8 = 216 ranks as in the paper.
//
// Expected shape: with local clock_gettime timestamps the rows scatter over
// enormous ranges (offsets dominate); gettimeofday improves to ~100s of us;
// only the global clock reveals that every rank spends roughly the same few
// tens of microseconds inside the Allreduce.
#include <iostream>

#include "clocksync/factory.hpp"
#include "common.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/world.hpp"
#include "trace/trace.hpp"
#include "util/vec.hpp"

namespace hcs::bench {
namespace {

// The AMG2013 profile the paper cites spends ~80% of its time in 8-byte
// Allreduce calls; this mini-app alternates a short imbalanced compute phase
// with such an Allreduce.
struct TraceOutcome {
  std::vector<trace::GanttRow> rows;
};

TraceOutcome run_traced_app(const topology::MachineConfig& machine, bool use_global_clock,
                            int iterations, const std::string& sync_label, std::uint64_t seed) {
  simmpi::World world(machine, seed);
  const int p = world.size();
  std::vector<trace::IntervalTracer> tracers;
  tracers.reserve(static_cast<std::size_t>(p));
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    vclock::ClockPtr trace_clock = ctx.base_clock();
    if (use_global_clock) {
      auto sync = hcs::clocksync::make_sync(sync_label);
      trace_clock = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    }
    tracers.emplace_back(ctx.rank(), trace_clock);
    trace::IntervalTracer& tracer = tracers.back();
    for (int it = 0; it < iterations; ++it) {
      // Imbalanced compute phase (deterministic per-rank smoothing work).
      const double compute = 40e-6 + 0.4e-6 * (ctx.rank() % 16);
      const std::size_t c = tracer.begin_event("compute", it);
      co_await ctx.sim().delay(compute);
      tracer.end_event(c);
      const std::size_t a = tracer.begin_event("allreduce", it);
      (void)co_await simmpi::allreduce(ctx.comm_world(), util::vec(1.0), simmpi::ReduceOp::kSum,
                                       simmpi::AllreduceAlgo::kRecursiveDoubling, 8);
      tracer.end_event(a);
    }
  });
  TraceOutcome outcome;
  outcome.rows = trace::gantt_rows(tracers, "allreduce", iterations > 10 ? 10 : iterations - 1);
  return outcome;
}

void print_gantt(const std::string& title, const std::vector<trace::GanttRow>& rows) {
  std::cout << "--- " << title << " ---\n";
  double max_start = 0, max_dur = 0;
  for (const auto& row : rows) {
    max_start = std::max(max_start, row.start);
    max_dur = std::max(max_dur, row.duration);
  }
  util::Table table({"metric", "value"});
  table.add_row({"ranks", std::to_string(rows.size())});
  table.add_row({"start-time spread [us]", util::fmt_us(max_start, 3)});
  table.add_row({"max event duration [us]", util::fmt_us(max_dur, 3)});
  table.print(std::cout);
  std::cout << "sample rows (rank: start_us duration_us): ";
  for (std::size_t i = 0; i < rows.size(); i += std::max<std::size_t>(1, rows.size() / 6)) {
    std::cout << rows[i].rank << ": " << util::fmt_us(rows[i].start, 1) << " "
              << util::fmt_us(rows[i].duration, 1) << "   ";
  }
  std::cout << "\n\n";
}

}  // namespace
}  // namespace hcs::bench

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.25);
  const Observability obs(opt);

  // 27 nodes x 8 ranks; paper's Jupiter subset.
  auto base = topology::jupiter().with_nodes(27);
  base.topo = topology::ClusterTopology(27, 2, 4, topology::TimeSourceScope::kPerNode);
  const int iterations = 12;
  // Both timer configurations below use per-core time sources, so the
  // intra-node level cannot be ClockPropSync (paper §IV-C); HCA3 is applied
  // at both levels of the H2 scheme instead.
  const std::string sync_label =
      "top/hca3/" + std::to_string(scaled(1000, opt.scale, 30)) + "/skampi_offset/" +
      std::to_string(scaled(100, opt.scale, 10)) + "/bottom/hca3/" +
      std::to_string(scaled(500, opt.scale, 20)) + "/skampi_offset/" +
      std::to_string(scaled(50, opt.scale, 10));

  print_header("Fig. 10", "Gantt of the 10th Allreduce in an AMG-like app, 27 x 8 ranks",
               base, opt);

  // clock_gettime-like: per-core timers, arbitrary large offsets, ns steps.
  auto cgt = base.with_time_source(topology::TimeSourceScope::kPerCore);
  cgt.clocks.initial_offset_abs = 50.0;  // seconds apart, as raw monotonic clocks are
  cgt.clocks.read_resolution = 1e-9;
  // gettimeofday-like: NTP keeps offsets within ~100s of microseconds; 1 us
  // resolution.
  auto gtod = base.with_time_source(topology::TimeSourceScope::kPerCore);
  gtod.clocks.initial_offset_abs = 150e-6;
  gtod.clocks.read_resolution = 1e-6;

  struct Config {
    const topology::MachineConfig* machine;
    bool use_global_clock;
    std::string title;
  };
  const std::vector<Config> configs = {
      {&cgt, true, "clock_gettime + global clock (paper 10a): aligned starts, ~tens of us"},
      {&cgt, false, "clock_gettime + local clock (paper 10b): offsets dominate completely"},
      {&gtod, true, "gettimeofday + global clock (paper 10c): aligned starts, ~tens of us"},
      {&gtod, false, "gettimeofday + local clock (paper 10d): ~100s of us scatter"},
  };
  // The four timer/clock configurations are independent mpiruns — fan out.
  runner::TrialRunner pool(opt.jobs);
  const std::vector<TraceOutcome> outcomes =
      pool.map(static_cast<int>(configs.size()), opt.seed, [&](const runner::Trial& trial) {
        const Config& c = configs[static_cast<std::size_t>(trial.index)];
        return run_traced_app(*c.machine, c.use_global_clock, iterations, sync_label, opt.seed);
      });
  for (std::size_t i = 0; i < configs.size(); ++i) {
    print_gantt(configs[i].title, outcomes[i].rows);
  }

  std::cout << "Shape check: start-time spread is seconds-scale in 10b, ~100s of us in 10d, "
               "and only tens of us with the global clock (10a/10c).\n";
  return 0;
}
