// Fig. 8 — exit imbalance introduced by MPI_Barrier algorithms; Jupiter,
// 32 x 16 = 512 ranks, 500 barrier calls per mpirun, 5 mpiruns (2500 points
// per algorithm in the paper).
//
// Expected shape: the "double ring" barrier is by far the worst (O(p)
// staggered exits); among the log-p algorithms, "tree" shows the smallest
// average imbalance, with bruck / recursive doubling penalized by their
// bursty all-to-all rounds contending at the NICs.
#include <iostream>

#include "clocksync/factory.hpp"
#include "common.hpp"
#include "mpibench/imbalance.hpp"
#include "util/histogram.hpp"
#include "simmpi/world.hpp"

namespace hcs::bench {
namespace {

std::vector<double> one_mpirun(const topology::MachineConfig& machine, simmpi::BarrierAlgo algo,
                               int ncalls, const std::string& sync_label, std::uint64_t seed) {
  simmpi::World world(machine, seed);
  std::vector<double> imbalances;
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = hcs::clocksync::make_sync(sync_label);
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    mpibench::ImbalanceParams params;
    params.ncalls = ncalls;
    const auto result =
        co_await mpibench::measure_barrier_imbalance(ctx.comm_world(), *g, algo, params);
    if (ctx.rank() == 0) imbalances = result;
  });
  return imbalances;
}

}  // namespace
}  // namespace hcs::bench

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.1);
  const Observability obs(opt);
  const auto machine = topology::jupiter().with_nodes(32);
  const int ncalls = scaled(500, opt.scale, 40);
  const int nmpiruns = 5;
  print_header("Fig. 8", "barrier exit imbalance distributions, " + std::to_string(ncalls) +
                             " calls x " + std::to_string(nmpiruns) + " mpiruns",
               machine, opt);

  const std::string sync_label = "hca3/recompute_intercept/" +
                                 std::to_string(scaled(1000, opt.scale, 40)) +
                                 "/skampi_offset/" + std::to_string(scaled(100, opt.scale, 10));

  const std::vector<simmpi::BarrierAlgo> algos{
      simmpi::BarrierAlgo::kBruck, simmpi::BarrierAlgo::kDoubleRing,
      simmpi::BarrierAlgo::kRecursiveDoubling, simmpi::BarrierAlgo::kTree};
  // All (algo, run) mpiruns are independent; the seed depends only on the
  // run index, as in the sequential loop this replaces.
  runner::TrialRunner pool(opt.jobs);
  const auto runs = pool.map(static_cast<int>(algos.size()) * nmpiruns, opt.seed,
                             [&](const runner::Trial& trial) {
                               return one_mpirun(
                                   machine, algos[static_cast<std::size_t>(trial.index / nmpiruns)],
                                   ncalls, sync_label,
                                   opt.seed + static_cast<std::uint64_t>(trial.index % nmpiruns));
                             });

  util::Table table({"barrier", "n", "min_us", "q25_us", "median_us", "q75_us", "max_us",
                     "mean_us"});
  for (std::size_t algo_idx = 0; algo_idx < algos.size(); ++algo_idx) {
    const simmpi::BarrierAlgo algo = algos[algo_idx];
    std::vector<double> pooled;
    for (int run = 0; run < nmpiruns; ++run) {
      const auto& imbalances =
          runs[algo_idx * static_cast<std::size_t>(nmpiruns) + static_cast<std::size_t>(run)];
      pooled.insert(pooled.end(), imbalances.begin(), imbalances.end());
    }
    const util::Summary s = util::summarize(pooled);
    table.add_row({simmpi::to_string(algo), std::to_string(s.n), util::fmt_us(s.min, 2),
                   util::fmt_us(s.q25, 2), util::fmt_us(s.median, 2), util::fmt_us(s.q75, 2),
                   util::fmt_us(s.max, 2), util::fmt_us(s.mean, 2)});
    std::cout << "distribution for '" << simmpi::to_string(algo) << "' [us]:\n";
    util::print_histogram(std::cout, util::make_histogram(pooled, 10), 40, 1e6, "us");
    std::cout << "\n";
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: 'double ring' worst by an order of magnitude; 'tree' has the "
               "smallest mean imbalance.\n";
  return 0;
}
