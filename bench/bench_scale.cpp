// bench_scale — million-rank-scale sweep: HCA3 vs. the sequential JK
// baseline on Titan-topology machines from 16,384 to 131,072 ranks.
//
// Two tables per run:
//   - the results table on stdout is fully deterministic (simulated sync
//     duration, accuracy, total events processed): byte-identical for any
//     --jobs, --shards, or --queue combination — the `scale` ctest slice
//     asserts exactly this at smoke size, and scripts/bench_perf.sh's
//     fig_scale mode re-asserts it at sweep size;
//   - the host table on stderr carries what depends on the machine running
//     the simulator (wall-clock seconds, events/second, peak RSS and the
//     coroutine-frame-pool reservation) and is the evidence for the ladder
//     queue + slab allocation work (BENCH_pr7.json).
//
// --ranks R[,R...] overrides the sweep (each R rounds up to whole 16-core
// Titan nodes), which is how the smoke tests keep this binary cheap.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "clocksync/factory.hpp"
#include "clocksync/skampi_offset.hpp"
#include "common.hpp"
#include "sim/frame_pool.hpp"
#include "simmpi/world.hpp"

namespace {

using namespace hcs;
using namespace hcs::bench;

struct ScalePoint {
  double sync_duration = 0.0;  // max over ranks, simulated seconds
  double max_offset_t0 = 0.0;  // right after sync
  double max_offset_t1 = 0.0;  // 1 s (simulated) later
  std::uint64_t events = 0;    // events processed by the World
  double wall_s = 0.0;         // host seconds for the whole World run
  std::size_t peak_rss = 0;    // process high-water mark after this point
  std::size_t pool_bytes = 0;  // frame-pool slab reservation after this point
};

ScalePoint run_scale_point(const topology::MachineConfig& machine, const std::string& label,
                           std::uint64_t seed, int shards, double sample_fraction) {
  // hcs-lint: allow-next-line(wall-clock) real host time: events/sec evidence
  const auto wall0 = std::chrono::steady_clock::now();
  simmpi::World world(machine, seed, {}, shards);
  ScalePoint point;
  const std::vector<int> clients =
      clocksync::sample_clients(world.size(), 0, sample_fraction, seed ^ 0xabcdefULL);
  // Per-rank slots instead of a shared accumulator: rank programs run on
  // shard worker threads, so the max is folded after the run.
  std::vector<double> durations(static_cast<std::size_t>(world.size()), 0.0);
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync(label);
    const sim::Time begin = ctx.sim().now();
    const clocksync::SyncResult res =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    if (!res.report.clean()) {
      throw std::runtime_error("bench_scale: sync reported degraded health for " + label);
    }
    durations[static_cast<std::size_t>(ctx.rank())] = ctx.sim().now() - begin;
    clocksync::SKaMPIOffset oalg(10);
    const clocksync::AccuracyResult acc = co_await clocksync::check_clock_accuracy(
        ctx.comm_world(), *res.clock, oalg, 1.0, clients);
    if (ctx.rank() == 0) {
      point.max_offset_t0 = acc.max_abs_t0;
      point.max_offset_t1 = acc.max_abs_t1;
    }
  });
  point.sync_duration = *std::max_element(durations.begin(), durations.end());
  point.events = world.events_processed();
  // hcs-lint: allow-next-line(wall-clock) real host time: events/sec evidence
  const auto wall1 = std::chrono::steady_clock::now();
  point.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  point.peak_rss = peak_rss_bytes();
  point.pool_bytes = sim::detail::FramePool::reserved_bytes();
  return point;
}

std::vector<int> parse_ranks(const std::string& spec) {
  std::vector<int> ranks;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int r = std::stoi(tok);
    if (r < 16) throw std::invalid_argument("--ranks: each entry must be >= 16, got " + tok);
    ranks.push_back(r);
  }
  if (ranks.empty()) throw std::invalid_argument("--ranks: empty list");
  return ranks;
}

std::string fmt_mib(std::size_t bytes) {
  return util::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

}  // namespace

int main(int argc, char** argv) {
  const ParsedBench parsed = parse_common_extra(
      argc, argv, 0.05,
      {{"ranks", "LIST",
        "comma-separated rank counts to sweep, each rounded up to whole 16-core Titan "
        "nodes (default 16384,65536,131072)"}});
  const BenchOptions& opt = parsed.opt;
  const Observability obs(opt);

  std::vector<int> ranks = {16384, 65536, 131072};
  try {
    if (parsed.cli.has("ranks")) ranks = parse_ranks(parsed.cli.get("ranks", ""));
  } catch (const std::exception& e) {
    std::cerr << parsed.cli.program() << ": " << e.what() << "\n";
    return 2;
  }

  const int npp = scaled(100, opt.scale, 8);
  const int nfit = scaled(1000, opt.scale, 30);
  const std::vector<std::string> labels = {
      "hca3/" + std::to_string(nfit) + "/skampi_offset/" + std::to_string(npp),
      "jk/" + std::to_string(nfit) + "/skampi_offset/" + std::to_string(npp),
  };

  // The engine name stays out of the stdout header: stdout must be
  // byte-identical for every --queue choice (it is printed with the host
  // metrics on stderr instead).
  print_header("bench_scale", "HCA3 vs. sequential JK across Titan node counts",
               topology::titan(), opt);

  // (ranks, label) pairs flattened into one trial list so --jobs composes;
  // results come back in trial order, keeping the tables deterministic.
  struct Job {
    topology::MachineConfig machine;
    int ranks = 0;
    std::string label;
  };
  std::vector<Job> sweep;
  for (const int r : ranks) {
    const int nodes = (r + 15) / 16;  // Titan is 16 cores per node
    const topology::MachineConfig machine = topology::titan().with_nodes(nodes);
    for (const std::string& label : labels) sweep.push_back({machine, nodes * 16, label});
  }

  runner::TrialRunner pool(opt.jobs);
  const std::vector<ScalePoint> points =
      pool.map(static_cast<int>(sweep.size()), opt.seed, [&](const runner::Trial& trial) {
        const Job& job = sweep[static_cast<std::size_t>(trial.index)];
        // Accuracy sampling caps at ~2000 clients so the serial
        // check-global-clock phase stays flat as ranks grow; the fraction
        // depends only on the rank count, so output stays deterministic.
        const double sample_fraction =
            std::min(0.10, 2000.0 / static_cast<double>(job.ranks));
        // hcs-lint: allow-next-line(ip-wall-clock) host timing by design: events/sec evidence
        return run_scale_point(job.machine, job.label, opt.seed, opt.shards, sample_fraction);
      });

  util::Table results({"algorithm", "ranks", "sync_duration_s", "max_offset_0s_us",
                       "max_offset_1s_us", "events"});
  util::Table host({"algorithm", "ranks", "wall_s", "events_per_s", "peak_rss_mib",
                    "frame_pool_mib"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const Job& job = sweep[i];
    const ScalePoint& p = points[i];
    results.add_row({job.label, std::to_string(job.ranks), util::fmt(p.sync_duration, 4),
                     util::fmt_us(p.max_offset_t0, 3), util::fmt_us(p.max_offset_t1, 3),
                     std::to_string(p.events)});
    const double eps = p.wall_s > 0.0 ? static_cast<double>(p.events) / p.wall_s : 0.0;
    host.add_row({job.label, std::to_string(job.ranks), util::fmt(p.wall_s, 2),
                  util::fmt(eps, 0), fmt_mib(p.peak_rss), fmt_mib(p.pool_bytes)});
  }
  results.print(std::cout);
  if (opt.csv) results.print_csv(std::cout);

  // Host-dependent numbers go to stderr so stdout stays byte-identical
  // across queue engines, shard counts and job counts.
  std::cerr << "\n--- host metrics (non-deterministic; machine-dependent; queue engine: "
            << sim::queue_impl_name(opt.queue) << ", shards: " << opt.shards << ") ---\n";
  host.print(std::cerr);
  if (opt.csv) host.print_csv(std::cerr);
  record_memory_metrics();

  std::cout << "\nShape check: JK's sync_duration grows linearly with ranks while HCA3's "
               "grows with the tree depth (log p); events grow ~linearly for both.\n";
  return 0;
}
