// Fig. 4 — flat HCA3 vs. the hierarchical H2HCA (HCA3 between node leaders +
// ClockPropSync within nodes); Jupiter, 32 x 16 = 512 ranks, 10 mpiruns.
//
// Expected shape: the hierarchical variants are faster (5 tree levels
// instead of 9, minus comm-creation overhead) and at least as accurate.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.1);
  const Observability obs(opt);
  const auto machine = topology::jupiter().with_nodes(32);

  const int npp = scaled(100, opt.scale, 10);
  const int nfit_hi = scaled(1000, opt.scale, 40);
  const int nfit_lo = scaled(500, opt.scale, 20);
  const int nmpiruns = 10;
  print_header("Fig. 4", "HCA3 vs. H2HCA (Top hca3 / Bottom ClockPropagation), 10 mpiruns",
               machine, opt);

  auto flat = [&](int nfit) {
    return "hca3/recompute_intercept/" + std::to_string(nfit) + "/skampi_offset/" +
           std::to_string(npp);
  };
  auto hier = [&](int nfit) {
    return "top/hca3/" + std::to_string(nfit) + "/skampi_offset/" + std::to_string(npp) +
           "/bottom/clockpropagation";
  };
  const std::vector<std::string> labels = {flat(nfit_hi), flat(nfit_lo), hier(nfit_hi),
                                           hier(nfit_lo)};

  util::Table table({"algorithm", "mpirun", "sync_duration_s", "max_offset_0s_us",
                     "max_offset_10s_us", "ok_ranks", "degraded_ranks", "failed_ranks"});
  run_and_print_sync_experiment(table, machine, labels, nmpiruns, 10.0, 1.0, opt);
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: Top/.../Bottom rows are faster than the flat hca3 rows at equal "
               "fit points, with comparable or better accuracy.\n";
  return 0;
}
