// Fig. 2 — clock drift of nine MPI ranks relative to a reference process.
//
// (a) offsets over 500 s (one rank per node, Hydra),
// (b) fitted linear models over the full 500 s (poor fit: drift not linear),
// (c) the first 10 s (good fit: R^2 > 0.9).
// Also prints the §III-C2 linearity-horizon sweep: R^2 of a linear fit as a
// function of the window length.
#include <cmath>
#include <iostream>

#include "clocksync/fitting.hpp"
#include "clocksync/skampi_offset.hpp"
#include "common.hpp"
#include "simmpi/world.hpp"

namespace hcs::bench {
namespace {

struct DriftSeries {
  std::vector<double> times;                 // seconds since first sample
  std::vector<std::vector<double>> offsets;  // [rank-1][sample], us relative to first
};

DriftSeries measure_drift(const topology::MachineConfig& machine, double horizon,
                          double interval, std::uint64_t seed) {
  simmpi::World world(machine, seed);
  const int p = world.size();
  DriftSeries series;
  series.offsets.resize(static_cast<std::size_t>(p - 1));
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    clocksync::SKaMPIOffset oalg(20);
    const int nsamples = static_cast<int>(horizon / interval);
    for (int s = 0; s < nsamples; ++s) {
      if (ctx.rank() == 0) {
        for (int client = 1; client < p; ++client) {
          (void)co_await oalg.measure_offset(ctx.comm_world(), *clk, 0, client);
        }
        series.times.push_back(ctx.sim().now());
      } else {
        const clocksync::ClockOffset o =
            co_await oalg.measure_offset(ctx.comm_world(), *clk, 0, ctx.rank());
        series.offsets[static_cast<std::size_t>(ctx.rank() - 1)].push_back(o.offset);
      }
      co_await ctx.sim().delay(interval);
    }
  });
  // Normalize: paper plots offsets relative to the initial offset.
  const double t0 = series.times.front();
  for (double& t : series.times) t -= t0;
  for (auto& per_rank : series.offsets) {
    const double first = per_rank.front();
    for (double& o : per_rank) o -= first;
  }
  return series;
}

void print_series(const DriftSeries& series, const std::string& title, int max_rows) {
  std::cout << "--- " << title << " ---\n";
  util::Table table([&] {
    std::vector<std::string> headers = {"time_s"};
    for (std::size_t r = 0; r < series.offsets.size(); ++r) {
      headers.push_back("rank" + std::to_string(r + 1) + "_us");
    }
    return headers;
  }());
  const std::size_t stride = std::max<std::size_t>(1, series.times.size() / static_cast<std::size_t>(max_rows));
  for (std::size_t s = 0; s < series.times.size(); s += stride) {
    std::vector<std::string> row = {util::fmt(series.times[s], 1)};
    for (const auto& per_rank : series.offsets) row.push_back(util::fmt_us(per_rank[s], 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_fits(const DriftSeries& series, const std::string& title) {
  std::cout << "--- " << title << " ---\n";
  util::Table table({"rank", "slope_ppm", "intercept_us", "R2"});
  for (std::size_t r = 0; r < series.offsets.size(); ++r) {
    const auto fit = clocksync::fit_linear_model(series.times, series.offsets[r]);
    table.add_row({std::to_string(r + 1), util::fmt(fit.model.slope * 1e6, 4),
                   util::fmt_us(fit.model.intercept, 3), util::fmt(fit.r2, 4)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

DriftSeries truncate(const DriftSeries& in, double horizon) {
  DriftSeries out;
  out.offsets.resize(in.offsets.size());
  for (std::size_t s = 0; s < in.times.size(); ++s) {
    if (in.times[s] > horizon) break;
    out.times.push_back(in.times[s]);
    for (std::size_t r = 0; r < in.offsets.size(); ++r) {
      out.offsets[r].push_back(in.offsets[r][s]);
    }
  }
  return out;
}

}  // namespace
}  // namespace hcs::bench

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 1.0);
  const Observability obs(opt);

  // "we only use one rank per compute node ... of Hydra": 10 nodes x 1 rank.
  auto machine = topology::hydra().with_nodes(10);
  machine.topo = topology::ClusterTopology(10, 1, 1, topology::TimeSourceScope::kPerNode);
  const double horizon = 500.0 * opt.scale;
  print_header("Fig. 2", "clock drift vs. reference process over " +
                             util::fmt(horizon, 0) + " s, 10 x 1 ranks, Hydra",
               machine, opt);

  const double interval = std::max(0.25, horizon / 400.0);
  const DriftSeries full = measure_drift(machine, horizon, interval, opt.seed);
  print_series(full, "Fig. 2a: offset to reference [us] over " + util::fmt(horizon, 0) + " s",
               20);
  print_fits(full, "Fig. 2b: linear fits over the full horizon (expect mediocre R2)");

  const double zoom_horizon = std::max(std::min(10.0, horizon), 3.0 * interval);
  const DriftSeries zoom = truncate(full, zoom_horizon);
  print_fits(zoom, "Fig. 2c: linear fits over the first 10 s (expect R2 > 0.9)");

  // §III-C2: linearity horizon sweep.
  std::cout << "--- Linearity horizon (median across ranks; paper: linear models good for\n"
               "    ~0-20 s, accuracy goes down significantly after one minute) ---\n";
  util::Table sweep({"window_s", "median_R2", "median_extrapolation_err_us"});
  const DriftSeries fit_window = truncate(full, std::max(std::min(10.0, horizon), 3.0 * interval));
  for (double window : {5.0, 10.0, 20.0, 60.0, 120.0, 300.0, 500.0}) {
    if (window > horizon) break;
    const DriftSeries win = truncate(full, window);
    if (win.times.size() < 3 || fit_window.times.size() < 3) continue;
    std::vector<double> r2s, errs;
    for (std::size_t r = 0; r < win.offsets.size(); ++r) {
      r2s.push_back(hcs::clocksync::fit_linear_model(win.times, win.offsets[r]).r2);
      // Fit on the first 10 s, predict the offset at the window's end: the
      // error a benchmarking tool would accumulate without re-syncing.
      const auto fit =
          hcs::clocksync::fit_linear_model(fit_window.times, fit_window.offsets[r]);
      const double predicted = fit.model.slope * win.times.back() + fit.model.intercept;
      errs.push_back(std::abs(predicted - win.offsets[r].back()));
    }
    sweep.add_row({util::fmt(window, 0), util::fmt(util::median(r2s), 4),
                   util::fmt_us(util::median(errs), 2)});
  }
  sweep.print(std::cout);
  return 0;
}
