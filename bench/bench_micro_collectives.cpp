// Microbenchmarks (google-benchmark) for the simulated collectives and the
// synchronization algorithms: how much host time one simulated operation
// costs, which bounds the experiment sizes feasible on one core.
#include <benchmark/benchmark.h>

#include "clocksync/factory.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"
#include "util/vec.hpp"

namespace {

using namespace hcs;

void BM_SimulatedBarrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto algo = static_cast<simmpi::BarrierAlgo>(state.range(1));
  for (auto _ : state) {
    simmpi::World w(topology::testbox(ranks / 4 > 0 ? ranks / 4 : 1, 4), 3);
    w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      co_await simmpi::barrier(ctx.comm_world(), algo);
    });
    benchmark::DoNotOptimize(w.sim().events_processed());
  }
}
BENCHMARK(BM_SimulatedBarrier)
    ->Args({64, static_cast<int>(simmpi::BarrierAlgo::kBruck)})
    ->Args({64, static_cast<int>(simmpi::BarrierAlgo::kTree)})
    ->Args({256, static_cast<int>(simmpi::BarrierAlgo::kBruck)})
    ->Args({256, static_cast<int>(simmpi::BarrierAlgo::kTree)});

void BM_SimulatedAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simmpi::World w(topology::testbox(ranks / 4, 4), 5);
    w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      (void)co_await simmpi::allreduce(ctx.comm_world(), util::vec(1.0));
    });
    benchmark::DoNotOptimize(w.sim().events_processed());
  }
}
BENCHMARK(BM_SimulatedAllreduce)->Arg(64)->Arg(256)->Arg(1024);

void BM_PingPongBurst(benchmark::State& state) {
  const int nexchanges = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simmpi::World w(topology::testbox(2, 1), 7);
    w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      auto clk = ctx.base_clock();
      (void)co_await ctx.comm_world().pingpong_burst(1 - ctx.rank(), ctx.rank() == 1, *clk,
                                                     nexchanges, 8);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * nexchanges);
}
BENCHMARK(BM_PingPongBurst)->Arg(100)->Arg(1000);

void BM_Hca3FullSync(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simmpi::World w(topology::testbox(nodes, 8), 9);
    w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      auto sync = clocksync::make_sync("hca3/50/skampi_offset/10");
      (void)co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * nodes * 8);
}
BENCHMARK(BM_Hca3FullSync)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
