// Fig. 9 — latency of MPI_Allreduce over message size, measured with the
// OSU-style barrier scheme vs. ReproMPI's Round-Time scheme; Titan,
// 64 x 16 = 1024 ranks, 3 mpiruns (error bars = min/max of the average).
//
// Expected shape: OSU's numbers are inflated by the barrier's exit imbalance
// at small message sizes; the curves converge as the payload grows and the
// operation itself dominates.
#include <algorithm>
#include <iostream>

#include "clocksync/factory.hpp"
#include "common.hpp"
#include "mpibench/suites.hpp"
#include "simmpi/world.hpp"

namespace hcs::bench {
namespace {

struct Point {
  double imb_us, osu_us, repro_us;
};

Point one_mpirun(const topology::MachineConfig& machine, std::int64_t msize, int nrep,
                 const std::string& sync_label, std::uint64_t seed) {
  simmpi::World world(machine, seed);
  Point point{};
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    auto sync = hcs::clocksync::make_sync(sync_label);
    auto g = co_await sync->sync_clocks(ctx.comm_world(), clk);
    const mpibench::CollectiveOp op = mpibench::make_allreduce_op(msize);
    const mpibench::BarrierSchemeParams bp{nrep, simmpi::BarrierAlgo::kTree};
    const auto imb = co_await mpibench::run_imb_like(ctx.comm_world(), *clk, op, bp);
    const auto osu = co_await mpibench::run_osu_like(ctx.comm_world(), *clk, op, bp);
    mpibench::RoundTimeParams rt;
    rt.max_nrep = nrep;
    rt.max_time_slice = 5.0;  // the paper's 5 s time slice per message size
    const auto repro = co_await mpibench::run_repro_like(ctx.comm_world(), *g, op, rt);
    if (ctx.rank() == 0) {
      point.imb_us = imb.reported_latency * 1e6;
      point.osu_us = osu.reported_latency * 1e6;
      point.repro_us = repro.reported_latency * 1e6;
    }
  });
  return point;
}

}  // namespace
}  // namespace hcs::bench

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.1);
  const Observability obs(opt);
  const auto machine = topology::titan().with_nodes(64);  // 64 x 16 = 1024 ranks
  const int nrep = scaled(200, opt.scale, 15);
  const int nmpiruns = 3;
  print_header("Fig. 9", "Allreduce latency, OSU-like vs. ReproMPI (Round-Time), " +
                             std::to_string(nrep) + " reps, " + std::to_string(nmpiruns) +
                             " mpiruns",
               machine, opt);

  const std::string sync_label = "top/hca3/" + std::to_string(scaled(1000, opt.scale, 30)) +
                                 "/skampi_offset/" + std::to_string(scaled(100, opt.scale, 10)) +
                                 "/bottom/clockpropagation";

  const std::vector<std::int64_t> msizes{4, 8, 16, 32, 64, 128, 256, 512, 1024};
  // All (msize, run) mpiruns are independent; the seed depends only on the
  // run index, as in the sequential loop this replaces.
  runner::TrialRunner pool(opt.jobs);
  const std::vector<Point> points = pool.map(
      static_cast<int>(msizes.size()) * nmpiruns, opt.seed, [&](const runner::Trial& trial) {
        return one_mpirun(machine, msizes[static_cast<std::size_t>(trial.index / nmpiruns)], nrep,
                          sync_label,
                          opt.seed + static_cast<std::uint64_t>(trial.index % nmpiruns));
      });

  util::Table table({"msize_B", "IMB_us", "OSU_us", "Repro_us", "Repro_min_us", "Repro_max_us",
                     "IMB/Repro", "OSU/Repro"});
  for (std::size_t msize_idx = 0; msize_idx < msizes.size(); ++msize_idx) {
    const std::int64_t msize = msizes[msize_idx];
    std::vector<double> imb, osu, repro;
    for (int run = 0; run < nmpiruns; ++run) {
      const Point& p =
          points[msize_idx * static_cast<std::size_t>(nmpiruns) + static_cast<std::size_t>(run)];
      imb.push_back(p.imb_us);
      osu.push_back(p.osu_us);
      repro.push_back(p.repro_us);
    }
    table.add_row({std::to_string(msize), util::fmt(util::mean(imb), 2),
                   util::fmt(util::mean(osu), 2), util::fmt(util::mean(repro), 2),
                   util::fmt(util::min(repro), 2), util::fmt(util::max(repro), 2),
                   util::fmt(util::mean(imb) / util::mean(repro), 2),
                   util::fmt(util::mean(osu) / util::mean(repro), 2)});
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: both barrier-based series grow with message size along with\n"
               "Round-Time; the max-based IMB series is clearly inflated (>1.3x) at small\n"
               "sizes and converges towards Repro by 1 KiB.  The mean-based OSU series shows\n"
               "only a weak bias in this simulator (see EXPERIMENTS.md for the deviation\n"
               "discussion vs. the paper's Fig. 9).\n";
  return 0;
}
