// Ablation (extension) — periodic re-synchronization.
//
// §III-C2 of the paper bounds the useful life of a linear clock model to
// roughly 0-20 s.  This bench quantifies that: a long-running measurement
// session keeps its global clock either from a single synchronization or
// from a ResyncManager with varying intervals, and we report the residual
// clock disagreement at the end of the session.
#include <cmath>
#include <iostream>

#include "clocksync/factory.hpp"
#include "clocksync/resync.hpp"
#include "common.hpp"
#include "simmpi/world.hpp"

namespace hcs::bench {
namespace {

struct Outcome {
  double residual_us = 0.0;
  int resyncs = 0;
  double sync_cost_s = 0.0;  // total time spent synchronizing
};

Outcome run_session(const topology::MachineConfig& machine, double interval,
                    double session_s, const std::string& label, std::uint64_t seed) {
  simmpi::World world(machine, seed);
  const int p = world.size();
  std::vector<vclock::ClockPtr> clocks(static_cast<std::size_t>(p));
  Outcome outcome;
  sim::Time end = 0;
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    clocksync::ResyncManager mgr(hcs::clocksync::make_sync(label), interval);
    const int steps = static_cast<int>(session_s);
    for (int i = 0; i < steps; ++i) {
      const sim::Time t0 = ctx.sim().now();
      clocks[static_cast<std::size_t>(ctx.rank())] =
          co_await mgr.tick(ctx.comm_world(), ctx.base_clock());
      if (ctx.rank() == 0) outcome.sync_cost_s += ctx.sim().now() - t0;
      co_await ctx.sim().delay(1.0);
    }
    if (ctx.rank() == 0) outcome.resyncs = mgr.resyncs();
    end = std::max(end, ctx.sim().now());
  });
  for (int r = 1; r < p; ++r) {
    outcome.residual_us = std::max(
        outcome.residual_us, std::abs(clocks[static_cast<std::size_t>(r)]->at_exact(end) -
                                      clocks[0]->at_exact(end)) *
                                 1e6);
  }
  return outcome;
}

}  // namespace
}  // namespace hcs::bench

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.25);
  const Observability obs(opt);
  const auto machine = topology::jupiter().with_nodes(8);
  const double session_s = 60.0;
  print_header("Ablation (periodic re-sync, extension)",
               "residual clock error after a " + util::fmt(session_s, 0) +
                   " s measurement session",
               machine, opt);

  const std::string label = "hca3/recompute_intercept/" +
                            std::to_string(scaled(1000, opt.scale, 50)) + "/skampi_offset/" +
                            std::to_string(scaled(100, opt.scale, 10));

  // Each interval's session is an independent mpirun — fan them out.
  const std::vector<double> intervals{5.0, 10.0, 20.0, 60.0, 1e9};
  runner::TrialRunner pool(opt.jobs);
  const std::vector<Outcome> outcomes =
      pool.map(static_cast<int>(intervals.size()), opt.seed, [&](const runner::Trial& trial) {
        return run_session(machine, intervals[static_cast<std::size_t>(trial.index)], session_s,
                           label, opt.seed);
      });

  util::Table table({"resync_interval_s", "resyncs", "sync_cost_s", "residual_after_60s_us"});
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const double interval = intervals[i];
    const Outcome& o = outcomes[i];
    table.add_row({interval > 1e8 ? "never (one-shot)" : util::fmt(interval, 0),
                   std::to_string(o.resyncs), util::fmt(o.sync_cost_s, 3),
                   util::fmt(o.residual_us, 3)});
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: the residual grows with the interval; re-syncing inside the "
               "paper's 0-20 s linearity horizon keeps it at the few-us level.\n";
  return 0;
}
