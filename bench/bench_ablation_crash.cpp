// Ablation — crash-stop robustness: crash time x victim role x algorithm,
// reporting how the surviving quorum classifies itself and how accurate the
// survivors' clocks still are.  Not a paper figure; it soaks the crash-stop
// failure model (docs/fault-injection.md) end to end: the oracle failure
// detector bounds every blocking receive, the quorum collectives complete
// without the victim, and the healing algorithms re-parent orphans when a
// reference rank dies.
//
// Victim roles on testbox(4, 2) (8 ranks, 2 per node): a leaf (rank 7,
// never a reference), a node reference (rank 2, a hierarchical node leader)
// and the global reference (rank 0, every algorithm's root).  Crash times:
// pre-sync (dead from the first event), mid-sync (inside every label's
// measurement phase) and post-sync (the plan is armed but never fires — the
// run must match the fault-free schedule bit for bit).
//
// Expected shape: post-sync crashes leave all 8 ranks ok; a pre-sync leaf
// death costs at most the victim and its burst partner; a dead reference
// turns into degraded (healed) survivors for hca3/hierarchical rather than
// failed ones.  Health is collected host-side, so the table stays correct
// even when the victim is rank 0.  Any extra --fault specs compose on top
// of the swept crash.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <optional>

#include "clocksync/factory.hpp"
#include "common.hpp"
#include "simmpi/world.hpp"
#include "vclock/global_clock.hpp"

namespace {

using namespace hcs;
using namespace hcs::bench;

struct CrashPoint {
  double duration = 0.0;  // sim seconds until the last survivor finished
  int ok = 0, degraded = 0, failed = 0;
  int crashed = 0;        // ranks that never returned a result
  double err_t10 = 0.0;   // max |clk - ref| over kOk ranks, 10 s after sync
};

CrashPoint run_crash(const topology::MachineConfig& machine, const std::string& label,
                     int victim, double crash_at, std::uint64_t seed,
                     const fault::FaultPlan& extra) {
  fault::FaultPlan plan = extra;
  fault::FaultSpec crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.rank = victim;
  crash.at = crash_at;
  plan.add(crash);

  simmpi::World w(machine, seed, plan);
  const int p = w.size();
  std::vector<std::optional<clocksync::SyncResult>> results(static_cast<std::size_t>(p));
  sim::Time sync_end = 0.0;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync(label);
    clocksync::SyncResult res = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    sync_end = std::max(sync_end, ctx.sim().now());
    results[static_cast<std::size_t>(ctx.rank())] = std::move(res);
  });

  CrashPoint pt;
  pt.duration = sync_end;
  int ref = -1;
  for (int r = 0; r < p; ++r) {
    const auto& res = results[static_cast<std::size_t>(r)];
    if (!res) {
      ++pt.crashed;
      continue;
    }
    switch (res->report.health) {
      case clocksync::SyncHealth::kOk:
        ++pt.ok;
        if (ref < 0) ref = r;
        break;
      case clocksync::SyncHealth::kDegraded: ++pt.degraded; break;
      case clocksync::SyncHealth::kFailed: ++pt.failed; break;
    }
  }
  if (ref >= 0) {
    const double t10 = sync_end + 10.0;
    const double ref_val = results[static_cast<std::size_t>(ref)]->clock->at_exact(t10);
    for (int r = 0; r < p; ++r) {
      const auto& res = results[static_cast<std::size_t>(r)];
      if (!res || res->report.health != clocksync::SyncHealth::kOk) continue;
      pt.err_t10 = std::max(pt.err_t10, std::abs(res->clock->at_exact(t10) - ref_val));
    }
  }
  HCS_METRIC_ADD("hcs.sync.failed_ranks", static_cast<std::uint64_t>(pt.failed));
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_common(argc, argv, 1.0);
  const Observability obs(opt);
  auto machine = topology::testbox(4, 2);  // 8 ranks, 2 per node
  machine.clocks.initial_offset_abs = 5e-3;
  machine.clocks.base_skew_abs = 2e-6;
  machine.clocks.skew_walk_sd = 0.005e-6;

  const int nfit = scaled(100, opt.scale, 20);
  const int npp = scaled(10, opt.scale, 5);
  const int nmpiruns = 3;
  print_header("Ablation (crash)",
               "crash-stop robustness: crash time x victim role x algorithm, " +
                   std::to_string(nmpiruns) + " mpiruns",
               machine, opt);

  const std::string inner = std::to_string(nfit) + "/skampi_offset/" + std::to_string(npp);
  const std::vector<std::string> labels = {
      "hca3/" + inner,
      "jk/" + inner,
      "top/hca3/" + inner + "/bottom/hca3/" + inner,
  };
  struct Victim {
    const char* role;
    int rank;
  };
  const std::vector<Victim> victims = {{"leaf", 7}, {"node_ref", 2}, {"global_ref", 0}};
  struct When {
    const char* phase;
    double at;
  };
  const std::vector<When> times = {{"pre", 0.0}, {"mid", 0.002}, {"post", 1.0}};

  // One trial per (label, victim, time, mpirun); seeds depend only on the
  // mpirun index so every cell sees the same worlds.
  const int nlabels = static_cast<int>(labels.size());
  const int nvictims = static_cast<int>(victims.size());
  const int ntimes = static_cast<int>(times.size());
  runner::TrialRunner pool(opt.jobs);
  const std::vector<CrashPoint> points =
      pool.map(nlabels * nvictims * ntimes * nmpiruns, opt.seed, [&](const runner::Trial& t) {
        const int label_idx = t.index / (nvictims * ntimes * nmpiruns);
        const int victim_idx = (t.index / (ntimes * nmpiruns)) % nvictims;
        const int time_idx = (t.index / nmpiruns) % ntimes;
        const int run = t.index % nmpiruns;
        return run_crash(machine, labels[static_cast<std::size_t>(label_idx)],
                         victims[static_cast<std::size_t>(victim_idx)].rank,
                         times[static_cast<std::size_t>(time_idx)].at,
                         opt.seed + static_cast<std::uint64_t>(run), opt.fault_plan);
      });

  util::Table table({"algorithm", "victim", "crash", "sync_duration_s", "ok_ranks",
                     "degraded_ranks", "failed_ranks", "crashed_ranks", "max_err_10s_us"});
  for (int label_idx = 0; label_idx < nlabels; ++label_idx) {
    for (int victim_idx = 0; victim_idx < nvictims; ++victim_idx) {
      for (int time_idx = 0; time_idx < ntimes; ++time_idx) {
        std::vector<double> durations, errs;
        int ok = 0, degraded = 0, failed = 0, crashed = 0;
        for (int run = 0; run < nmpiruns; ++run) {
          const CrashPoint& p = points[static_cast<std::size_t>(
              ((label_idx * nvictims + victim_idx) * ntimes + time_idx) * nmpiruns + run)];
          durations.push_back(p.duration);
          errs.push_back(p.err_t10);
          ok += p.ok;
          degraded += p.degraded;
          failed += p.failed;
          crashed += p.crashed;
        }
        table.add_row({labels[static_cast<std::size_t>(label_idx)],
                       victims[static_cast<std::size_t>(victim_idx)].role,
                       times[static_cast<std::size_t>(time_idx)].phase,
                       util::fmt(util::mean(durations), 4), std::to_string(ok),
                       std::to_string(degraded), std::to_string(failed),
                       std::to_string(crashed),
                       util::fmt_us(*std::max_element(errs.begin(), errs.end()), 3)});
      }
    }
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: post crashes are invisible (8 ok, 0 crashed); pre/mid reference "
               "deaths heal into degraded survivors for hca3/hierarchical; max_err stays in "
               "the microsecond range wherever ok_ranks > 0.\n";
  return 0;
}
