// Fig. 5 — the Fig. 4 experiment on Hydra (36 x 32 = 1152 ranks, OmniPath).
//
// Expected shape: all configurations very accurate right after sync (the
// paper reports < 0.2 us mean error on this low-latency network), visible
// drift after 10 s but H2HCA stays ~1 us.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace hcs;
  using namespace hcs::bench;
  const BenchOptions opt = parse_common(argc, argv, 0.1);
  const Observability obs(opt);
  const auto machine = topology::hydra();  // all 36 nodes x 32 ranks

  const int npp = scaled(100, opt.scale, 10);
  const int nfit_hi = scaled(1000, opt.scale, 40);
  const int nfit_lo = scaled(500, opt.scale, 20);
  const int nmpiruns = 10;
  print_header("Fig. 5", "HCA3 vs. H2HCA on Hydra (36 x 32 ranks), 10 mpiruns", machine, opt);

  auto flat = [&](int nfit) {
    return "hca3/recompute_intercept/" + std::to_string(nfit) + "/skampi_offset/" +
           std::to_string(npp);
  };
  auto hier = [&](int nfit) {
    return "top/hca3/" + std::to_string(nfit) + "/skampi_offset/" + std::to_string(npp) +
           "/bottom/clockpropagation";
  };
  const std::vector<std::string> labels = {flat(nfit_hi), flat(nfit_lo), hier(nfit_hi),
                                           hier(nfit_lo)};

  util::Table table({"algorithm", "mpirun", "sync_duration_s", "max_offset_0s_us",
                     "max_offset_10s_us", "ok_ranks", "degraded_ranks", "failed_ranks"});
  run_and_print_sync_experiment(table, machine, labels, nmpiruns, 10.0, 1.0, opt);
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::cout << "\nShape check: offsets at 0 s are smaller than on Jupiter (faster network); "
               "after 10 s the drift-walk is visible but H2HCA stays small.\n";
  return 0;
}
