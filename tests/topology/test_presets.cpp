#include "topology/presets.hpp"

#include <gtest/gtest.h>

namespace hcs::topology {
namespace {

TEST(Presets, JupiterMatchesTableI) {
  const MachineConfig m = jupiter();
  EXPECT_EQ(m.name, "Jupiter");
  EXPECT_EQ(m.topo.nodes(), 36);
  EXPECT_EQ(m.topo.sockets_per_node(), 2);
  EXPECT_EQ(m.topo.cores_per_socket(), 8);
  // Paper: ping-pong (RTT) latency 3-4 us on this network => one-way ~1.6 us.
  EXPECT_NEAR(m.net.inter_node.base_latency, 1.6e-6, 0.3e-6);
}

TEST(Presets, HydraMatchesTableI) {
  const MachineConfig m = hydra();
  EXPECT_EQ(m.topo.nodes(), 36);
  EXPECT_EQ(m.topo.ranks_per_node(), 32);
  // OmniPath is faster than Jupiter's InfiniBand QDR in the paper.
  EXPECT_LT(m.net.inter_node.base_latency, jupiter().net.inter_node.base_latency);
  // And Hydra's drift changes faster (paper §III-C3).
  EXPECT_GT(m.clocks.skew_walk_sd, jupiter().clocks.skew_walk_sd);
}

TEST(Presets, TitanMatchesTableI) {
  const MachineConfig m = titan();
  EXPECT_EQ(m.topo.nodes(), 1024);
  EXPECT_EQ(m.topo.ranks_per_node(), 16);
  EXPECT_EQ(m.topo.total_ranks(), 16384);
  // Fatter jitter (Gemini torus) than the other machines' fabrics, and a
  // heavy-tail spike component (Fig. 6 outlier discussion).
  EXPECT_GT(m.net.inter_node.jitter_mean, hydra().net.inter_node.jitter_mean);
  EXPECT_GT(m.net.inter_node.spike_prob, 0.0);
  // Host injection rate drives the Fig. 9 growth with message size.
  EXPECT_GT(m.net.nic_per_byte, 0.0);
}

TEST(Presets, AllSharePerNodeTimeSource) {
  for (const MachineConfig& m : {jupiter(), hydra(), titan()}) {
    EXPECT_EQ(m.topo.time_source_scope(), TimeSourceScope::kPerNode) << m.name;
  }
}

TEST(Presets, WithNodesResizesOnlyNodeCount) {
  const MachineConfig m = jupiter().with_nodes(32);
  EXPECT_EQ(m.topo.nodes(), 32);
  EXPECT_EQ(m.topo.total_ranks(), 512);  // the paper's "32 x 16 processes"
  EXPECT_EQ(m.topo.sockets_per_node(), 2);
  EXPECT_EQ(m.name, "Jupiter");
}

TEST(Presets, WithTimeSourceChangesScope) {
  const MachineConfig m = jupiter().with_time_source(TimeSourceScope::kPerCore);
  EXPECT_EQ(m.topo.time_source_scope(), TimeSourceScope::kPerCore);
  EXPECT_EQ(m.topo.num_time_sources(), m.topo.total_ranks());
}

TEST(Presets, TestboxShape) {
  const MachineConfig m = testbox(4, 3);
  EXPECT_EQ(m.topo.nodes(), 4);
  EXPECT_EQ(m.topo.total_ranks(), 12);
  EXPECT_EQ(m.net.inter_node.spike_prob, 0.0);  // no outliers in unit tests
}

TEST(Presets, DescribeIncludesMpiLabel) {
  EXPECT_NE(titan().describe().find("cray-mpich"), std::string::npos);
}

TEST(Presets, LinkHierarchyOrdering) {
  for (const MachineConfig& m : {jupiter(), hydra(), titan(), testbox(2, 2)}) {
    EXPECT_LT(m.net.intra_socket.base_latency, m.net.intra_node.base_latency) << m.name;
    EXPECT_LT(m.net.intra_node.base_latency, m.net.inter_node.base_latency) << m.name;
  }
}

}  // namespace
}  // namespace hcs::topology
