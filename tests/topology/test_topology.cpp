#include "topology/topology.hpp"

#include <gtest/gtest.h>

namespace hcs::topology {
namespace {

TEST(Topology, DimensionsAndCounts) {
  const ClusterTopology t(4, 2, 8);
  EXPECT_EQ(t.nodes(), 4);
  EXPECT_EQ(t.sockets_per_node(), 2);
  EXPECT_EQ(t.cores_per_socket(), 8);
  EXPECT_EQ(t.ranks_per_node(), 16);
  EXPECT_EQ(t.total_ranks(), 64);
}

TEST(Topology, RejectsBadDimensions) {
  EXPECT_THROW(ClusterTopology(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(ClusterTopology(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(ClusterTopology(1, 1, -1), std::invalid_argument);
}

TEST(Topology, BlockwisePlacement) {
  const ClusterTopology t(2, 2, 4);  // 8 ranks/node
  const RankLocation loc = t.locate(13);  // node 1, in-node 5
  EXPECT_EQ(loc.node, 1);
  EXPECT_EQ(loc.socket_in_node, 1);
  EXPECT_EQ(loc.core_in_socket, 1);
  EXPECT_EQ(loc.socket, 3);
  EXPECT_EQ(loc.core, 13);
}

TEST(Topology, LocateRejectsOutOfRange) {
  const ClusterTopology t(2, 1, 2);
  EXPECT_THROW(t.locate(-1), std::out_of_range);
  EXPECT_THROW(t.locate(4), std::out_of_range);
}

TEST(Topology, SameNodeSameSocketPredicates) {
  const ClusterTopology t(2, 2, 2);
  EXPECT_TRUE(t.same_node(0, 3));
  EXPECT_FALSE(t.same_node(0, 4));
  EXPECT_TRUE(t.same_socket(0, 1));
  EXPECT_FALSE(t.same_socket(1, 2));  // socket boundary inside node 0
}

TEST(Topology, TimeSourcePerNode) {
  const ClusterTopology t(3, 2, 2, TimeSourceScope::kPerNode);
  EXPECT_EQ(t.num_time_sources(), 3);
  EXPECT_EQ(t.time_source_id(0), 0);
  EXPECT_EQ(t.time_source_id(3), 0);
  EXPECT_EQ(t.time_source_id(4), 1);
  EXPECT_EQ(t.time_source_id(11), 2);
}

TEST(Topology, TimeSourcePerSocket) {
  const ClusterTopology t(2, 2, 2, TimeSourceScope::kPerSocket);
  EXPECT_EQ(t.num_time_sources(), 4);
  EXPECT_EQ(t.time_source_id(0), 0);
  EXPECT_EQ(t.time_source_id(2), 1);
  EXPECT_EQ(t.time_source_id(5), 2);
}

TEST(Topology, TimeSourcePerCore) {
  const ClusterTopology t(2, 1, 3, TimeSourceScope::kPerCore);
  EXPECT_EQ(t.num_time_sources(), 6);
  for (int r = 0; r < 6; ++r) EXPECT_EQ(t.time_source_id(r), r);
}

TEST(Topology, DescribeMentionsShape) {
  const ClusterTopology t(36, 2, 8);
  const std::string d = t.describe();
  EXPECT_NE(d.find("36 nodes"), std::string::npos);
  EXPECT_NE(d.find("576 ranks"), std::string::npos);
}

TEST(Topology, EveryRankHasConsistentLocation) {
  const ClusterTopology t(3, 2, 4);
  for (int r = 0; r < t.total_ranks(); ++r) {
    const RankLocation loc = t.locate(r);
    EXPECT_EQ(loc.node * t.ranks_per_node() +
                  loc.socket_in_node * t.cores_per_socket() + loc.core_in_socket,
              r);
  }
}

}  // namespace
}  // namespace hcs::topology
