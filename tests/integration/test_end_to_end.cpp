// Integration tests: miniature versions of the paper's headline experiments,
// asserting the *shapes* the full bench harnesses reproduce.  These lock the
// qualitative results into the test suite so a regression in any layer
// (simulator, clocks, collectives, sync algorithms, schemes) shows up here.
#include <gtest/gtest.h>

#include <cmath>

#include "clocksync/accuracy.hpp"
#include "clocksync/factory.hpp"
#include "clocksync/skampi_offset.hpp"
#include "mpibench/imbalance.hpp"
#include "mpibench/suites.hpp"
#include "topology/presets.hpp"
#include "util/stats.hpp"

namespace hcs {
namespace {

struct SyncOutcome {
  double duration = 0.0;
  double max_offset_t0 = 0.0;
  double max_offset_t10 = 0.0;
};

SyncOutcome run_sync(const topology::MachineConfig& machine, const std::string& label,
                     std::uint64_t seed) {
  simmpi::World world(machine, seed);
  SyncOutcome outcome;
  const auto clients = clocksync::sample_clients(world.size(), 0, 1.0, 1);
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync(label);
    const sim::Time begin = ctx.sim().now();
    const vclock::ClockPtr g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    outcome.duration = std::max(outcome.duration, ctx.sim().now() - begin);
    clocksync::SKaMPIOffset oalg(20);
    const auto acc =
        co_await clocksync::check_clock_accuracy(ctx.comm_world(), *g, oalg, 10.0, clients);
    if (ctx.rank() == 0) {
      outcome.max_offset_t0 = acc.max_abs_t0;
      outcome.max_offset_t10 = acc.max_abs_t1;
    }
  });
  return outcome;
}

// ----- Fig. 3 shape: JK accurate but O(p) slow; HCA3 fast and accurate -----

TEST(EndToEnd, Fig3Shape) {
  const auto machine = topology::jupiter().with_nodes(8);  // 128 ranks
  const SyncOutcome hca3 = run_sync(machine, "hca3/recompute_intercept/150/skampi_offset/15", 7);
  const SyncOutcome jk = run_sync(machine, "jk/150/skampi_offset/15", 7);
  EXPECT_LT(hca3.duration, jk.duration / 5.0);  // log p vs p rounds
  EXPECT_LT(hca3.max_offset_t0, 5e-6);          // both accurate right away
  EXPECT_LT(jk.max_offset_t0, 30e-6);
}

// ----- Fig. 4 shape: hierarchical H2HCA faster than flat, similar accuracy --

TEST(EndToEnd, Fig4Shape) {
  const auto machine = topology::jupiter().with_nodes(8);
  const SyncOutcome flat = run_sync(machine, "hca3/recompute_intercept/150/skampi_offset/15", 9);
  const SyncOutcome hier =
      run_sync(machine, "top/hca3/150/skampi_offset/15/bottom/clockpropagation", 9);
  EXPECT_LT(hier.duration, flat.duration);
  EXPECT_LT(hier.max_offset_t0, flat.max_offset_t0 * 3.0);
}

// ----- Fig. 6 shape: accuracy degrades but survives at larger scale --------

TEST(EndToEnd, ScalingShape) {
  const SyncOutcome small =
      run_sync(topology::jupiter().with_nodes(4), "hca3/100/skampi_offset/10", 11);
  const SyncOutcome large =
      run_sync(topology::jupiter().with_nodes(32), "hca3/100/skampi_offset/10", 11);
  EXPECT_GT(large.duration, small.duration);   // deeper tree
  EXPECT_LT(large.max_offset_t0, 50e-6);       // still a usable clock
}

// ----- Fig. 7/9 shape: barrier-based measurement inflates small payloads ---

TEST(EndToEnd, BarrierBiasShape) {
  simmpi::World world(topology::jupiter().with_nodes(8), 13);
  mpibench::SuiteReport imb, repro;
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    auto sync = clocksync::make_sync("hca3/100/skampi_offset/15");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), clk);
    const auto op = mpibench::make_allreduce_op(8);
    const auto i = co_await mpibench::run_imb_like(
        ctx.comm_world(), *clk, op,
        mpibench::BarrierSchemeParams{60, simmpi::BarrierAlgo::kBruck});
    mpibench::RoundTimeParams rt;
    rt.max_nrep = 60;
    const auto r = co_await mpibench::run_repro_like(ctx.comm_world(), *g, op, rt);
    if (ctx.rank() == 0) {
      imb = i;
      repro = r;
    }
  });
  EXPECT_GT(imb.reported_latency, repro.reported_latency * 1.15);
}

// ----- Fig. 8 shape: double ring worst, tree best ---------------------------

TEST(EndToEnd, ImbalanceShape) {
  simmpi::World world(topology::jupiter().with_nodes(8), 17);
  double tree_med = 0, ring_med = 0;
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca3/100/skampi_offset/15");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    mpibench::ImbalanceParams params;
    params.ncalls = 25;
    const auto tree = co_await mpibench::measure_barrier_imbalance(
        ctx.comm_world(), *g, simmpi::BarrierAlgo::kTree, params);
    const auto ring = co_await mpibench::measure_barrier_imbalance(
        ctx.comm_world(), *g, simmpi::BarrierAlgo::kDoubleRing, params);
    if (ctx.rank() == 0) {
      tree_med = util::median(tree);
      ring_med = util::median(ring);
    }
  });
  EXPECT_GT(ring_med, tree_med * 3.0);
}

// ----- Determinism across the whole stack -----------------------------------

TEST(EndToEnd, WholeExperimentDeterministic) {
  const auto machine = topology::jupiter().with_nodes(4);
  const SyncOutcome a = run_sync(machine, "hca3/80/skampi_offset/10", 23);
  const SyncOutcome b = run_sync(machine, "hca3/80/skampi_offset/10", 23);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.max_offset_t0, b.max_offset_t0);
  EXPECT_EQ(a.max_offset_t10, b.max_offset_t10);
  const SyncOutcome c = run_sync(machine, "hca3/80/skampi_offset/10", 24);
  EXPECT_NE(a.max_offset_t0, c.max_offset_t0);
}

// ----- Paper Table I: presets are usable end to end -------------------------

TEST(EndToEnd, EveryMachinePresetSynchronizes) {
  for (const auto& machine :
       {topology::jupiter().with_nodes(2), topology::hydra().with_nodes(2),
        topology::titan().with_nodes(4)}) {
    const SyncOutcome o =
        run_sync(machine, "top/hca3/100/skampi_offset/10/bottom/clockpropagation", 29);
    EXPECT_GT(o.duration, 0.0) << machine.name;
    EXPECT_LT(o.max_offset_t0, 10e-6) << machine.name;
  }
}

}  // namespace
}  // namespace hcs
