// Failure-injection scenarios: NTP clock steps and heavy network outliers.
// A production benchmarking tool must either survive these or make the
// breakage visible; these tests pin down which is which.
#include <gtest/gtest.h>

#include <cmath>

#include "clocksync/accuracy.hpp"
#include "clocksync/factory.hpp"
#include "clocksync/resync.hpp"
#include "clocksync/skampi_offset.hpp"
#include "mpibench/roundtime_scheme.hpp"
#include "topology/presets.hpp"
#include "vclock/hardware_clock.hpp"

namespace hcs {
namespace {

vclock::HardwareClock* hw_clock(simmpi::World& w, int rank) {
  return dynamic_cast<vclock::HardwareClock*>(w.base_clock(rank).get());
}

TEST(FailureInjection, ClockStepShiftsAllReadsAfterIt) {
  simmpi::World w(topology::testbox(1, 1), 3);
  vclock::HardwareClock* clk = hw_clock(w, 0);
  const double before = clk->at_exact(4.9);
  clk->inject_step(5.0, 250e-6);
  EXPECT_DOUBLE_EQ(clk->at_exact(4.9), before);  // past unaffected
  EXPECT_NEAR(clk->at_exact(5.1) - clk->at_exact(4.9), 0.2 + 250e-6, 1e-6);
}

TEST(FailureInjection, BackwardStepSupported) {
  simmpi::World w(topology::testbox(1, 1), 5);
  vclock::HardwareClock* clk = hw_clock(w, 0);
  clk->inject_step(2.0, -100e-6);
  EXPECT_LT(clk->at_exact(2.0 + 50e-6), clk->at_exact(2.0 - 1e-9));
}

TEST(FailureInjection, StepBreaksASynchronizedClockSilently) {
  // Sync, then step one node's hardware clock: the residual measured by
  // Check-Global-Clock after the step is dominated by the step size.
  simmpi::World w(topology::testbox(4, 2), 7);
  const double step = 300e-6;
  clocksync::AccuracyResult acc;
  const std::vector<int> clients = clocksync::sample_clients(w.size(), 0, 1.0, 1);
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca3/recompute_intercept/100/skampi_offset/20");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    if (ctx.rank() == 6) {  // node 3's time source steps 1 s from now
      hw_clock(ctx.world(), 6)->inject_step(ctx.sim().now() + 1.0, step);
    }
    clocksync::SKaMPIOffset oalg(20);
    const auto r =
        co_await clocksync::check_clock_accuracy(ctx.comm_world(), *g, oalg, 5.0, clients);
    if (ctx.rank() == 0) acc = r;
  });
  EXPECT_LT(acc.max_abs_t0, 5e-6);          // fine before the step
  EXPECT_GT(acc.max_abs_t1, 0.8 * step);    // broken after it
}

TEST(FailureInjection, PeriodicResyncRecoversFromStep) {
  auto residual_with_interval = [](double interval) {
    simmpi::World w(topology::testbox(4, 2), 9);
    std::vector<vclock::ClockPtr> clocks(static_cast<std::size_t>(w.size()));
    sim::Time end = 0;
    w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      if (ctx.rank() == 5) {
        hw_clock(ctx.world(), 5)->inject_step(3.0, 400e-6);
      }
      clocksync::ResyncManager mgr(
          clocksync::make_sync("hca3/100/skampi_offset/20"), interval);
      for (int i = 0; i < 10; ++i) {
        clocks[static_cast<std::size_t>(ctx.rank())] =
            co_await mgr.tick(ctx.comm_world(), ctx.base_clock());
        co_await ctx.sim().delay(1.0);
      }
      end = std::max(end, ctx.sim().now());
    });
    double worst = 0;
    for (int r = 1; r < w.size(); ++r) {
      worst = std::max(worst, std::abs(clocks[static_cast<std::size_t>(r)]->at_exact(end) -
                                       clocks[0]->at_exact(end)));
    }
    return worst;
  };
  const double with_resync = residual_with_interval(2.0);
  const double one_shot = residual_with_interval(1e9);
  EXPECT_GT(one_shot, 300e-6);   // the step persists in the stale model
  EXPECT_LT(with_resync, 50e-6);  // re-syncing after the step absorbs it
}

TEST(FailureInjection, RoundTimeSurvivesExtremeOutliers) {
  // 2% of messages delayed by ~1 ms: Round-Time must still deliver the
  // requested number of *valid* measurements.
  auto machine = topology::testbox(4, 2);
  machine.net.inter_node.spike_prob = 0.02;
  machine.net.inter_node.spike_mean = 1e-3;
  simmpi::World w(machine, 11);
  mpibench::MeasurementResult result;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca3/100/skampi_offset/20");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    mpibench::RoundTimeParams params;
    params.max_nrep = 60;
    params.max_time_slice = 30.0;
    const auto m = co_await mpibench::run_roundtime_scheme(
        ctx.comm_world(), *g, mpibench::make_allreduce_op(8), params);
    if (ctx.rank() == 0) result = m;
  });
  EXPECT_EQ(result.valid_reps(), 60);
}

}  // namespace
}  // namespace hcs
