// Divergence bisection: unit tests on hand-built recordings plus the
// acceptance case from the issue — two scenario recordings differing by one
// injected transit-time perturbation must pinpoint the first diverging
// event with rank and sim-time.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "replay/bisect.hpp"
#include "replay/harness.hpp"
#include "replay/record.hpp"
#include "replay/scenario.hpp"

namespace hcs::replay {
namespace {

Event make_event(EventKind kind, double time, int peer = 1) {
  Event ev;
  ev.kind = kind;
  ev.peer = peer;
  ev.time = time;
  return ev;
}

Recording two_rank_recording() {
  Recording rec;
  WorldInfo info;
  info.seed = 5;
  info.nranks = 2;
  info.machine = "testbox(2x1)";
  rec.worlds.emplace_back(std::move(info));
  rec.worlds[0].append(0, make_event(EventKind::kSend, 1.0));
  rec.worlds[0].append(0, make_event(EventKind::kRecv, 5.0));
  rec.worlds[0].append(1, make_event(EventKind::kRecv, 2.0, 0));
  rec.worlds[0].append(1, make_event(EventKind::kSend, 4.0, 0));
  return rec;
}

TEST(Bisect, IdenticalRecordingsHaveNoDivergence) {
  const Recording a = two_rank_recording();
  const Recording b = two_rank_recording();
  EXPECT_FALSE(first_divergence(a, b).has_value());
}

TEST(Bisect, ReportsDifferingField) {
  const Recording a = two_rank_recording();
  Recording b = two_rank_recording();
  b.worlds[0].ranks[0][1].time = 5.5;
  const auto d = first_divergence(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->world, 0u);
  EXPECT_EQ(d->rank, 0);
  EXPECT_EQ(d->index, 1u);
  EXPECT_DOUBLE_EQ(d->time, 5.0);  // the earlier side's time
  EXPECT_EQ(d->field, "time");
}

TEST(Bisect, PicksEarliestSimTimeAcrossRanks) {
  const Recording a = two_rank_recording();
  Recording b = two_rank_recording();
  b.worlds[0].ranks[0][1].tag = 99;  // diverges at t=5.0
  b.worlds[0].ranks[1][1].tag = 99;  // diverges at t=4.0 — must win
  const auto d = first_divergence(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->rank, 1);
  EXPECT_DOUBLE_EQ(d->time, 4.0);
  EXPECT_EQ(d->field, "tag");
}

TEST(Bisect, ReportsMissingTailEvents) {
  const Recording a = two_rank_recording();
  Recording b = two_rank_recording();
  b.worlds[0].ranks[1].pop_back();
  const auto d = first_divergence(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->rank, 1);
  EXPECT_EQ(d->index, 1u);
  EXPECT_EQ(d->field, "count");
  EXPECT_NE(d->detail.find("<absent>"), std::string::npos);
}

TEST(Bisect, HeaderDifferenceReportedOnlyWhenStreamsMatch) {
  const Recording a = two_rank_recording();
  Recording b = two_rank_recording();
  b.worlds[0].info.fault_plan = "straggler:rank=1,factor=1.05";
  const auto header_only = first_divergence(a, b);
  ASSERT_TRUE(header_only.has_value());
  EXPECT_EQ(header_only->rank, -1) << "structural difference";

  // Once any event differs too, the event wins: a perturbation experiment
  // is pinpointed by its first observable effect, not its cause's header.
  b.worlds[0].ranks[1][0].time = 2.5;
  const auto event_diff = first_divergence(a, b);
  ASSERT_TRUE(event_diff.has_value());
  EXPECT_EQ(event_diff->rank, 1);
  EXPECT_EQ(event_diff->field, "time");
}

TEST(Bisect, WorldCountMismatch) {
  const Recording a = two_rank_recording();
  Recording b = two_rank_recording();
  WorldInfo extra;
  extra.nranks = 1;
  b.worlds.emplace_back(std::move(extra));
  const auto d = first_divergence(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->rank, -1);
}

// The acceptance case (ISSUE 8): record the same scenario twice, the second
// time with a single injected transit-time nudge (a straggler factor on one
// rank), and demonstrate the bisection pinpoints the first diverging event
// with a rank and a sim-time.
TEST(Bisect, PinpointsInjectedPerturbation) {
  const std::uint64_t seed = 11;
  Recorder clean_recorder;
  {
    const ScopedRecorder install(&clean_recorder);
    run_scenario(find_scenario("micro4"), seed);
  }
  Scenario perturbed = find_scenario("micro4");
  perturbed.faults.add("straggler:rank=1,factor=1.05");
  Recorder perturbed_recorder;
  {
    const ScopedRecorder install(&perturbed_recorder);
    run_scenario(perturbed, seed);
  }
  const Recording a = parse(serialize(clean_recorder));
  const Recording b = parse(serialize(perturbed_recorder));
  const auto d = first_divergence(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_GE(d->rank, 0) << "must name a rank, not a structural difference";
  EXPECT_GT(d->time, 0.0) << "must name the sim-time of the first divergence";
  EXPECT_FALSE(d->field.empty());
  EXPECT_FALSE(d->detail.empty());
  // The straggler slows rank 1's links, so the first observable difference
  // involves rank 1 on one side of the exchange.
  const Event& first = a.worlds[d->world].ranks[static_cast<std::size_t>(d->rank)][d->index];
  EXPECT_TRUE(d->rank == 1 || first.peer == 1)
      << "rank " << d->rank << " peer " << first.peer;
}

}  // namespace
}  // namespace hcs::replay
