// Recorder invariance: the property that makes a recording a trustworthy
// divergence oracle.  Recording the same scenario must produce byte-identical
// files across --shards 1/2/8, --queue heap/ladder, and --jobs 1/4 — on a
// ring World and a hierarchical Titan slice, clean and under a crash plan.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "replay/format.hpp"
#include "replay/harness.hpp"
#include "replay/record.hpp"
#include "replay/scenario.hpp"
#include "runner/trial_runner.hpp"
#include "sim/event_queue.hpp"
#include "simmpi/world.hpp"

namespace hcs::replay {
namespace {

// Restores the process-wide engine defaults (tests in this binary share
// them) after each recording pass.
class EngineDefaults {
 public:
  EngineDefaults(int shards, sim::QueueImpl queue)
      : prev_shards_(simmpi::default_shards()), prev_queue_(sim::default_queue_impl()) {
    simmpi::set_default_shards(shards);
    sim::set_default_queue_impl(queue);
  }
  ~EngineDefaults() {
    simmpi::set_default_shards(prev_shards_);
    sim::set_default_queue_impl(prev_queue_);
  }
  EngineDefaults(const EngineDefaults&) = delete;
  EngineDefaults& operator=(const EngineDefaults&) = delete;

 private:
  int prev_shards_;
  sim::QueueImpl prev_queue_;
};

std::string record_bytes(const std::string& scenario, std::uint64_t seed, int shards,
                         sim::QueueImpl queue) {
  const EngineDefaults defaults(shards, queue);
  Recorder recorder;
  {
    const ScopedRecorder install(&recorder);
    run_scenario(find_scenario(scenario), seed);
  }
  return serialize(recorder);
}

void expect_invariant(const std::string& scenario, std::uint64_t seed,
                      const std::vector<int>& shard_counts) {
  const std::string reference = record_bytes(scenario, seed, 1, sim::QueueImpl::kHeap);
  ASSERT_FALSE(reference.empty());
  for (const int shards : shard_counts) {
    for (const sim::QueueImpl queue : {sim::QueueImpl::kHeap, sim::QueueImpl::kLadder}) {
      if (shards == 1 && queue == sim::QueueImpl::kHeap) continue;
      EXPECT_EQ(record_bytes(scenario, seed, shards, queue), reference)
          << scenario << " seed " << seed << " shards " << shards << " queue "
          << sim::queue_impl_name(queue);
    }
  }
}

TEST(RecorderInvariance, Ring8CleanAcrossShardsAndQueues) {
  expect_invariant("ring8", 3, {1, 2, 8});
}

TEST(RecorderInvariance, Ring8CrashAcrossShardsAndQueues) {
  expect_invariant("ring8-crash", 3, {1, 2, 8});
}

TEST(RecorderInvariance, TitanSmallCleanAcrossShardsAndQueues) {
  expect_invariant("titan-small", 5, {1, 2});
}

TEST(RecorderInvariance, TitanSmallCrashAcrossShardsAndQueues) {
  expect_invariant("titan-small-crash", 5, {1, 2});
}

// --jobs invariance goes through runner::TrialRunner: each concurrent trial
// records into a private per-thread Recorder, absorbed in trial-index order
// — so a 4-worker sweep must serialize byte-identically to a sequential one.
std::string record_sweep_bytes(int jobs) {
  Recorder recorder;
  const ScopedRecorder install(&recorder);
  runner::TrialRunner pool(jobs);
  pool.map(4, /*base_seed=*/21, [](const runner::Trial& trial) {
    run_scenario(find_scenario("micro4"), trial.seed);
    return 0.0;
  });
  return serialize(recorder);
}

TEST(RecorderInvariance, JobsInvariantThroughTrialRunner) {
  const std::string sequential = record_sweep_bytes(1);
  const std::string parallel = record_sweep_bytes(4);
  EXPECT_EQ(sequential, parallel);
  const Recording parsed = parse(sequential);
  ASSERT_EQ(parsed.worlds.size(), 4u);
  for (std::size_t i = 0; i < parsed.worlds.size(); ++i) {
    EXPECT_EQ(parsed.worlds[i].info.seed, 21u + i) << "trial order preserved";
    EXPECT_EQ(parsed.worlds[i].info.label, "micro4");
  }
}

}  // namespace
}  // namespace hcs::replay
