// Record model + versioned binary format: digest stability, burst payload
// encoding, serialize/parse round-trips, and corruption rejection
// (docs/record-replay.md has the byte-level spec).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "replay/format.hpp"
#include "replay/record.hpp"

namespace hcs::replay {
namespace {

Event make_event(EventKind kind, double time, std::vector<double> values = {}) {
  Event ev;
  ev.kind = kind;
  ev.peer = 3;
  ev.tag = 17;
  ev.bytes = static_cast<std::int64_t>(values.size() * sizeof(double));
  ev.time = time;
  ev.digest = payload_digest(values);
  ev.values = std::move(values);
  return ev;
}

Recorder make_recorder() {
  Recorder recorder;
  WorldInfo info;
  info.seed = 42;
  info.nranks = 2;
  info.fault_seed = 9;
  info.machine = "testbox(2x1)";
  info.fault_plan = "crash:rank=1,at=0.002";
  info.label = "unit";
  RecordedWorld& world = recorder.begin_world(std::move(info));
  world.append(0, make_event(EventKind::kSend, 0.25, {1.0, 2.0}));
  world.append(0, make_event(EventKind::kRecv, 0.5, {3.0, -0.0}));
  world.append(1, make_event(EventKind::kRecvTimeout, 0.75));
  world.append(1, make_event(EventKind::kClockRead, 1.0, {1.0000003}));
  WorldInfo second;
  second.seed = 43;
  second.nranks = 1;
  second.machine = "testbox(1x1)";
  recorder.begin_world(std::move(second));
  return recorder;
}

TEST(PayloadDigest, StableAndBitSensitive) {
  EXPECT_EQ(payload_digest({}), 0xcbf29ce484222325ULL);  // FNV-1a offset basis
  const std::uint64_t d = payload_digest({1.0, 2.0});
  EXPECT_EQ(payload_digest({1.0, 2.0}), d);
  EXPECT_NE(payload_digest({2.0, 1.0}), d);
  EXPECT_NE(payload_digest({0.0}), payload_digest({-0.0}))
      << "bit-exactness oracle must distinguish signed zeros";
}

TEST(BurstCodec, RoundTrips) {
  simmpi::BurstResult burst;
  burst.requested = 10;
  burst.lost = 2;
  burst.retries = 3;
  burst.samples.push_back({0.001, 0.0015, 0.002});
  burst.samples.push_back({0.003, 0.0035, 0.004});
  const std::vector<double> encoded = encode_burst(burst);
  const simmpi::BurstResult decoded = decode_burst(encoded);
  EXPECT_EQ(decoded.requested, burst.requested);
  EXPECT_EQ(decoded.lost, burst.lost);
  EXPECT_EQ(decoded.retries, burst.retries);
  ASSERT_EQ(decoded.samples.size(), burst.samples.size());
  for (std::size_t i = 0; i < burst.samples.size(); ++i) {
    EXPECT_EQ(decoded.samples[i].client_send, burst.samples[i].client_send);
    EXPECT_EQ(decoded.samples[i].ref_reply, burst.samples[i].ref_reply);
    EXPECT_EQ(decoded.samples[i].client_recv, burst.samples[i].client_recv);
  }
}

TEST(Format, SerializeParseRoundTrip) {
  const Recorder recorder = make_recorder();
  const std::string bytes = serialize(recorder);
  const Recording parsed = parse(bytes);
  ASSERT_EQ(parsed.worlds.size(), 2u);
  EXPECT_EQ(parsed.worlds[0].info, recorder.world(0).info);
  EXPECT_EQ(parsed.worlds[1].info, recorder.world(1).info);
  ASSERT_EQ(parsed.worlds[0].ranks.size(), 2u);
  EXPECT_EQ(parsed.worlds[0].ranks[0], recorder.world(0).ranks[0]);
  EXPECT_EQ(parsed.worlds[0].ranks[1], recorder.world(0).ranks[1]);
  EXPECT_EQ(parsed.worlds[0].total_events(), 4u);
}

TEST(Format, SerializationIsDeterministic) {
  const std::string a = serialize(make_recorder());
  const std::string b = serialize(make_recorder());
  EXPECT_EQ(a, b);
}

TEST(Format, RejectsBadMagic) {
  std::string bytes = serialize(make_recorder());
  bytes[0] = 'X';
  EXPECT_THROW(parse(bytes), std::runtime_error);
}

TEST(Format, RejectsUnknownVersion) {
  std::string bytes = serialize(make_recorder());
  bytes[4] = 99;  // the u32 version field follows the 4-byte magic
  EXPECT_THROW(parse(bytes), std::runtime_error);
}

TEST(Format, RejectsTruncation) {
  const std::string bytes = serialize(make_recorder());
  for (const std::size_t cut : {std::size_t{3}, std::size_t{9}, bytes.size() / 2}) {
    EXPECT_THROW(parse(bytes.substr(0, cut)), std::runtime_error) << "cut at " << cut;
  }
}

TEST(Format, RejectsTrailingGarbage) {
  std::string bytes = serialize(make_recorder());
  bytes += '\0';
  EXPECT_THROW(parse(bytes), std::runtime_error);
}

TEST(Recorder, AbsorbMovesWorldsInOrder) {
  Recorder a;
  WorldInfo first;
  first.seed = 1;
  first.nranks = 1;
  a.begin_world(std::move(first));
  Recorder b;
  WorldInfo second;
  second.seed = 2;
  second.nranks = 1;
  b.begin_world(std::move(second));
  a.absorb(b);
  ASSERT_EQ(a.world_count(), 2u);
  EXPECT_EQ(a.world(0).info.seed, 1u);
  EXPECT_EQ(a.world(1).info.seed, 2u);
  EXPECT_EQ(b.world_count(), 0u);
}

TEST(Recorder, PendingLabelStampsNextWorld) {
  Recorder recorder;
  recorder.set_pending_label("scenario-name");
  WorldInfo info;
  info.nranks = 1;
  EXPECT_EQ(recorder.begin_world(std::move(info)).info.label, "scenario-name");
  WorldInfo next;
  next.nranks = 1;
  EXPECT_EQ(recorder.begin_world(std::move(next)).info.label, "");
}

}  // namespace
}  // namespace hcs::replay
