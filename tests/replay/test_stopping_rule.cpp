// Unit tests for the sequential (confidence-interval) stopping rule in
// tests/support/stats.hpp: the Student-t table, the CI math, the pure
// stopping decision, and adaptive_seed_sweep() run against known
// deterministic "distributions" with expected stop counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <mutex>
#include <vector>

#include "support/stats.hpp"

namespace hcs::teststats {
namespace {

TEST(StudentT, TabulatedValues) {
  EXPECT_DOUBLE_EQ(student_t_critical(1, 0.95), 12.706);
  EXPECT_DOUBLE_EQ(student_t_critical(4, 0.95), 2.776);
  EXPECT_DOUBLE_EQ(student_t_critical(19, 0.95), 2.086);  // nearest df at or above
  EXPECT_DOUBLE_EQ(student_t_critical(1, 0.99), 63.657);
  EXPECT_DOUBLE_EQ(student_t_critical(10, 0.99), 3.169);
}

TEST(StudentT, AsymptoteBeyondTable) {
  EXPECT_DOUBLE_EQ(student_t_critical(1000, 0.95), 1.960);
  EXPECT_DOUBLE_EQ(student_t_critical(1000, 0.99), 2.576);
}

TEST(StudentT, Monotone) {
  // More degrees of freedom can only tighten the critical value.
  double prev = student_t_critical(1, 0.95);
  for (int df = 2; df <= 200; ++df) {
    const double t = student_t_critical(df, 0.95);
    EXPECT_LE(t, prev) << "df " << df;
    prev = t;
  }
}

TEST(StudentT, RejectsBadInputs) {
  EXPECT_THROW(student_t_critical(0, 0.95), std::invalid_argument);
  EXPECT_THROW(student_t_critical(5, 0.90), std::invalid_argument);
}

TEST(MeanCi, KnownSample) {
  // {1..5}: mean 3, sd sqrt(2.5); halfwidth = t(4) * sd / sqrt(5).
  const CiSummary ci = mean_ci({1.0, 2.0, 3.0, 4.0, 5.0}, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_NEAR(ci.sd, 1.5811388300841898, 1e-12);
  EXPECT_NEAR(ci.halfwidth, 2.776 * ci.sd / std::sqrt(5.0), 1e-12);
}

TEST(MeanCi, RequiresTwoSamples) {
  EXPECT_THROW(mean_ci({}, 0.95), std::invalid_argument);
  EXPECT_THROW(mean_ci({1.0}, 0.95), std::invalid_argument);
}

TEST(ShouldStop, ConstantSampleStopsAtMinSeeds) {
  SweepPolicy policy;
  std::vector<double> xs(4, 7.5);
  EXPECT_FALSE(should_stop(xs, policy)) << "below min_seeds";
  xs.push_back(7.5);
  EXPECT_TRUE(should_stop(xs, policy)) << "zero variance is as tight as it gets";
}

TEST(ShouldStop, ZeroMeanNeedsZeroVariance) {
  SweepPolicy policy;
  EXPECT_FALSE(should_stop({-1.0, 1.0, -1.0, 1.0, -1.0}, policy));
  EXPECT_TRUE(should_stop({0.0, 0.0, 0.0, 0.0, 0.0}, policy));
}

TEST(ShouldStop, WideSampleKeepsGoing) {
  SweepPolicy policy;
  EXPECT_FALSE(should_stop({0.0, 100.0, 0.0, 100.0, 0.0, 100.0}, policy));
}

// --- adaptive_seed_sweep against known distributions -----------------------

TEST(AdaptiveSweep, ConstantMetricStopsAtFirstBatch) {
  const std::vector<double> xs =
      adaptive_seed_sweep(100, /*jobs=*/1, [](std::uint64_t) { return 3.25; });
  EXPECT_EQ(xs.size(), 5u);  // default min_seeds
  for (const double x : xs) EXPECT_DOUBLE_EQ(x, 3.25);
}

TEST(AdaptiveSweep, HighVarianceMetricRunsToCap) {
  // Alternating 0/100 never yields a tight CI: all max_seeds seeds burn.
  const std::vector<double> xs = adaptive_seed_sweep(
      100, /*jobs=*/1, [](std::uint64_t seed) { return (seed % 2 == 0) ? 0.0 : 100.0; });
  EXPECT_EQ(xs.size(), 20u);  // default max_seeds
}

TEST(AdaptiveSweep, ConvergingMetricStopsMidway) {
  // First batch is wide (80/120 alternating: CI half-width ~28% of the mean),
  // later seeds sit on the mean; with a 15% target the second batch settles
  // it: expected stop count 10.
  SweepPolicy policy;
  policy.rel_halfwidth = 0.15;
  const auto metric = [](std::uint64_t seed) {
    if (seed < 105) return (seed % 2 == 0) ? 80.0 : 120.0;
    return 96.0;
  };
  const std::vector<double> xs = adaptive_seed_sweep(100, /*jobs=*/1, metric, policy);
  EXPECT_EQ(xs.size(), 10u);
}

TEST(AdaptiveSweep, SeedsAreContiguousFromBase) {
  std::vector<std::uint64_t> seen;
  const std::vector<double> xs = adaptive_seed_sweep(40, /*jobs=*/1, [&](std::uint64_t seed) {
    seen.push_back(seed);
    return (seed % 2 == 0) ? 0.0 : 100.0;  // forces a full run to the cap
  });
  ASSERT_EQ(seen.size(), 20u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 40u + i);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(xs[i], (seen[i] % 2 == 0) ? 0.0 : 100.0);
  }
}

TEST(AdaptiveSweep, DeterministicAcrossJobs) {
  const auto metric = [](std::uint64_t seed) {
    return static_cast<double>((seed * 2654435761u) % 97);
  };
  const std::vector<double> sequential = adaptive_seed_sweep(7, /*jobs=*/1, metric);
  const std::vector<double> parallel = adaptive_seed_sweep(7, /*jobs=*/4, metric);
  EXPECT_EQ(sequential, parallel);
}

TEST(AdaptiveSweep, HonorsSeedCapEnvironment) {
  ASSERT_EQ(::setenv("HCLOCKSYNC_SEED_CAP", "7", /*overwrite=*/1), 0);
  const std::vector<double> xs = adaptive_seed_sweep(
      100, /*jobs=*/1, [](std::uint64_t seed) { return (seed % 2 == 0) ? 0.0 : 100.0; });
  ASSERT_EQ(::unsetenv("HCLOCKSYNC_SEED_CAP"), 0);
  EXPECT_EQ(xs.size(), 7u);
}

TEST(AdaptiveSweep, IgnoresMalformedSeedCap) {
  ASSERT_EQ(::setenv("HCLOCKSYNC_SEED_CAP", "lots", /*overwrite=*/1), 0);
  EXPECT_EQ(seed_cap(20), 20);
  ASSERT_EQ(::setenv("HCLOCKSYNC_SEED_CAP", "-3", /*overwrite=*/1), 0);
  EXPECT_EQ(seed_cap(20), 20);
  ASSERT_EQ(::setenv("HCLOCKSYNC_SEED_CAP", "64", /*overwrite=*/1), 0);
  EXPECT_EQ(seed_cap(20), 64);
  ASSERT_EQ(::unsetenv("HCLOCKSYNC_SEED_CAP"), 0);
}

}  // namespace
}  // namespace hcs::teststats
