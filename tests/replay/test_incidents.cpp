// Recorded-incident regression suite: replay single ranks of the committed
// recordings under tests/replay/incidents/ and assert the outcomes in the
// hexfloat sidecars reproduce bit-exactly (see incidents/README.md for the
// library and how to regenerate it).
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "replay/format.hpp"
#include "replay/harness.hpp"
#include "replay/scenario.hpp"

namespace hcs::replay {
namespace {

struct Incident {
  const char* file;      // basename under tests/replay/incidents/
  const char* scenario;  // registered scenario name
  std::uint64_t seed;    // seed the incident was captured with
};

constexpr Incident kIncidents[] = {
    {"micro4-crash-seed42", "micro4-crash", 42},
    {"micro4-drop-seed7", "micro4-drop", 7},
    {"micro4-step-seed13", "micro4-step", 13},
    {"micro4-churn-seed42", "micro4-churn", 42},
};

std::string incident_path(const std::string& base, const char* ext) {
  return std::string(HCS_REPLAY_INCIDENT_DIR) + "/" + base + ext;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

class IncidentSuite : public ::testing::TestWithParam<Incident> {};

TEST_P(IncidentSuite, EveryRankReplaysBitExactly) {
  const Incident& incident = GetParam();
  const Recording recording = load(incident_path(incident.file, ".hcsr"));
  ASSERT_EQ(recording.worlds.size(), 1u);
  const RecordedWorld& world = recording.worlds[0];
  EXPECT_EQ(world.info.seed, incident.seed);
  EXPECT_EQ(world.info.label, incident.scenario);

  const std::vector<std::string> expected = read_lines(incident_path(incident.file, ".expect"));
  ASSERT_EQ(expected.size(), static_cast<std::size_t>(world.info.nranks));

  const Scenario& scenario = find_scenario(incident.scenario);
  for (int rank = 0; rank < world.info.nranks; ++rank) {
    const RankOutcome replayed = replay_scenario_rank(scenario, world, rank);
    EXPECT_EQ(describe_outcome(replayed), expected[static_cast<std::size_t>(rank)])
        << incident.file << " rank " << rank;
  }
}

// Format back-compat: the crash/drop/step incidents were committed as v1
// recordings and must keep parsing (and, per EveryRankReplaysBitExactly,
// replaying bit-exactly) under the v2 reader; churn incidents need v2 for
// their kMembership events.
TEST_P(IncidentSuite, HeaderVersionIsSupportedAndAsCommitted) {
  const Incident& incident = GetParam();
  std::ifstream in(incident_path(incident.file, ".hcsr"), std::ios::binary);
  ASSERT_TRUE(in.good());
  char header[8] = {};
  in.read(header, sizeof(header));
  ASSERT_EQ(in.gcount(), 8);
  EXPECT_EQ(std::string(header, 4), "HCSR");
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(static_cast<unsigned char>(header[4 + i])) << (8 * i);
  }
  EXPECT_GE(version, kMinFormatVersion);
  EXPECT_LE(version, kFormatVersion);
  const bool churn = std::string(incident.scenario).find("churn") != std::string::npos;
  EXPECT_EQ(version, churn ? 2u : 1u) << incident.file;
}

TEST_P(IncidentSuite, SidecarRoundTripsThroughParseOutcome) {
  const Incident& incident = GetParam();
  for (const std::string& line : read_lines(incident_path(incident.file, ".expect"))) {
    EXPECT_EQ(describe_outcome(parse_outcome(line)), line);
  }
}

// Re-running the whole scenario from scratch must still produce the
// committed outcomes — the recording pins the event order, this pins the
// simulator itself.
TEST_P(IncidentSuite, FreshRunStillMatchesSidecar) {
  const Incident& incident = GetParam();
  const std::vector<std::string> expected = read_lines(incident_path(incident.file, ".expect"));
  const std::vector<RankOutcome> outcomes =
      run_scenario(find_scenario(incident.scenario), incident.seed);
  ASSERT_EQ(outcomes.size(), expected.size());
  for (std::size_t rank = 0; rank < outcomes.size(); ++rank) {
    EXPECT_EQ(describe_outcome(outcomes[rank]), expected[rank])
        << incident.file << " rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Incidents, IncidentSuite, ::testing::ValuesIn(kIncidents),
                         [](const ::testing::TestParamInfo<Incident>& info) {
                           std::string name = info.param.scenario;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hcs::replay
