// Single-rank replay: re-executing one rank against its recording — without
// simulating the rest of the World — must reproduce that rank's outcome,
// including the final HCA-3 clock model probed at fixed times, bit-exactly.
// Also covers divergence detection and the provenance guards.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "replay/feed.hpp"
#include "replay/harness.hpp"
#include "replay/record.hpp"
#include "replay/scenario.hpp"
#include "simmpi/world.hpp"

namespace hcs::replay {
namespace {

struct Captured {
  Recorder recorder;
  std::vector<RankOutcome> outcomes;
};

Captured capture(const std::string& scenario, std::uint64_t seed) {
  Captured c;
  const ScopedRecorder install(&c.recorder);
  c.outcomes = run_scenario(find_scenario(scenario), seed);
  return c;
}

TEST(ReplayRank, EveryMicro4RankReproducesBitExactly) {
  const Captured c = capture("micro4", 17);
  const RecordedWorld& world = c.recorder.world(0);
  for (int rank = 0; rank < world.info.nranks; ++rank) {
    const RankOutcome replayed = replay_scenario_rank(find_scenario("micro4"), world, rank);
    EXPECT_EQ(describe_outcome(replayed),
              describe_outcome(c.outcomes[static_cast<std::size_t>(rank)]))
        << "rank " << rank;
  }
}

// The acceptance case (ISSUE 8): a recorded HCA-3 run's rank replays to the
// identical final clock model.  ring8 runs the full hca3/1000 pipeline; the
// probes in RankOutcome are noiseless at_exact() evaluations of the learned
// model, so string equality of the hexfloat rendering is bit-exactness.
TEST(ReplayRank, Hca3ClockModelBitExactOnRing8) {
  const Captured c = capture("ring8", 23);
  const RecordedWorld& world = c.recorder.world(0);
  const int rank = 3;
  const RankOutcome replayed = replay_scenario_rank(find_scenario("ring8"), world, rank);
  const RankOutcome& recorded = c.outcomes[static_cast<std::size_t>(rank)];
  ASSERT_TRUE(replayed.ran);
  ASSERT_EQ(replayed.probes.size(), kProbeTimes.size());
  for (std::size_t i = 0; i < replayed.probes.size(); ++i) {
    // EXPECT_EQ on doubles is exact — that is the point.
    EXPECT_EQ(replayed.probes[i], recorded.probes[i]) << "probe " << i;
  }
  EXPECT_EQ(describe_outcome(replayed), describe_outcome(recorded));
}

TEST(ReplayRank, CrashedRankReplaysAsCrashed) {
  const Captured c = capture("micro4-crash", 17);
  const RecordedWorld& world = c.recorder.world(0);
  const RankOutcome crashed =
      replay_scenario_rank(find_scenario("micro4-crash"), world, /*rank=*/2);
  EXPECT_FALSE(crashed.ran);
  EXPECT_EQ(describe_outcome(crashed), describe_outcome(c.outcomes[2]));
  const RankOutcome survivor =
      replay_scenario_rank(find_scenario("micro4-crash"), world, /*rank=*/0);
  EXPECT_TRUE(survivor.ran);
  EXPECT_EQ(describe_outcome(survivor), describe_outcome(c.outcomes[0]));
}

TEST(ReplayRank, TamperedRecordingRaisesDivergence) {
  Captured c = capture("micro4", 17);
  RecordedWorld& world =
      const_cast<RecordedWorld&>(c.recorder.world(0));  // tests may tamper
  ASSERT_FALSE(world.ranks[1].empty());
  world.ranks[1][world.ranks[1].size() / 2].time += 1e-9;
  try {
    replay_scenario_rank(find_scenario("micro4"), world, 1);
    FAIL() << "expected ReplayDivergence";
  } catch (const ReplayDivergence& d) {
    EXPECT_EQ(d.rank(), 1);
    EXPECT_NE(std::string(d.what()).find("replay divergence"), std::string::npos);
  }
}

TEST(ReplayRank, WrongScenarioIsRejected) {
  const Captured c = capture("micro4", 17);
  EXPECT_THROW(replay_scenario_rank(find_scenario("ring8"), c.recorder.world(0), 0),
               std::invalid_argument);
  EXPECT_THROW(replay_scenario_rank(find_scenario("micro4-crash"), c.recorder.world(0), 0),
               std::invalid_argument);
}

TEST(ReplayRank, AttachReplayGuards) {
  const Captured c = capture("micro4", 17);
  const RecordedWorld& world = c.recorder.world(0);
  ReplayFeed feed(world, 0);
  const Scenario& scenario = find_scenario("micro4");
  {
    simmpi::World sharded(scenario.machine, 17, scenario.faults, /*shards=*/2);
    EXPECT_THROW(sharded.attach_replay(&feed, 0), std::invalid_argument)
        << "replay requires an unsharded World";
  }
  simmpi::World world1(scenario.machine, 17, scenario.faults, /*shards=*/1);
  EXPECT_THROW(world1.attach_replay(nullptr, 0), std::invalid_argument);
  EXPECT_THROW(world1.attach_replay(&feed, 99), std::out_of_range);
}

TEST(ReplayFeedUnit, StrictFifoAndExhaustion) {
  WorldInfo info;
  info.nranks = 1;
  RecordedWorld world(std::move(info));
  Event ev;
  ev.kind = EventKind::kClockRead;
  ev.time = 1.5;
  ev.values = {1.5000001};
  world.append(0, ev);
  ReplayFeed feed(world, 0);
  ASSERT_NE(feed.peek(), nullptr);
  EXPECT_EQ(feed.peek()->kind, EventKind::kClockRead);
  EXPECT_EQ(feed.remaining(), 1u);
  feed.take();
  EXPECT_EQ(feed.peek(), nullptr);
  EXPECT_EQ(feed.consumed(), 1u);
  EXPECT_THROW(feed.expect(EventKind::kRecv, 0), ReplayDivergence);
  EXPECT_THROW(ReplayFeed(world, 5), std::out_of_range);
}

}  // namespace
}  // namespace hcs::replay
