#include "runner/trial_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "clocksync/factory.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace hcs::runner {
namespace {

TEST(ResolveJobs, PositivePassesThroughZeroIsAuto) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
  EXPECT_GE(resolve_jobs(0), 1);  // one per hardware thread, at least one
}

TEST(TrialRunner, MapReturnsResultsInTrialIndexOrder) {
  for (const int jobs : {1, 4}) {
    TrialRunner pool(jobs);
    const std::vector<int> results =
        pool.map(16, 0, [](const Trial& trial) { return trial.index * 10; });
    ASSERT_EQ(results.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 10);
  }
}

TEST(TrialRunner, SeedsAreBasePlusIndex) {
  TrialRunner pool(4);
  const auto seeds = pool.map(8, 100, [](const Trial& trial) { return trial.seed; });
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(seeds[static_cast<std::size_t>(i)], 100u + static_cast<std::uint64_t>(i));
  }
}

TEST(TrialRunner, ForEachRunsEveryTrialExactlyOnce) {
  TrialRunner pool(4);
  std::vector<std::atomic<int>> hits(32);
  pool.for_each(32, 0, [&](const Trial& trial) {
    hits[static_cast<std::size_t>(trial.index)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TrialRunner, ZeroTrialsIsANoOp) {
  TrialRunner pool(4);
  EXPECT_TRUE(pool.map(0, 0, [](const Trial&) { return 1; }).empty());
}

TEST(TrialRunner, MoreJobsThanTrialsIsFine) {
  TrialRunner pool(16);
  const auto results = pool.map(3, 0, [](const Trial& trial) { return trial.index; });
  EXPECT_EQ(results, (std::vector<int>{0, 1, 2}));
}

TEST(TrialRunner, LowestIndexExceptionWins) {
  // Both trials 3 and 9 throw; the runner must rethrow trial 3's exception
  // — the one a sequential run would have hit first.
  for (const int jobs : {1, 4}) {
    TrialRunner pool(jobs);
    try {
      pool.for_each(16, 0, [](const Trial& trial) {
        if (trial.index == 9) throw std::runtime_error("trial 9");
        if (trial.index == 3) throw std::runtime_error("trial 3");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "trial 3");
    }
  }
}

TEST(TrialRunner, ExceptionStopsClaimingNewTrials) {
  TrialRunner pool(1);  // deterministic claim order makes the count exact
  std::atomic<int> started{0};
  EXPECT_THROW(pool.for_each(1000, 0,
                             [&](const Trial& trial) {
                               started.fetch_add(1);
                               if (trial.index == 4) throw std::runtime_error("stop");
                             }),
               std::runtime_error);
  EXPECT_EQ(started.load(), 5);  // trials 0-4; the poison flag halts the rest
}

TEST(TrialRunner, NoSinksInstalledMeansNoSinksInTrials) {
  ASSERT_EQ(trace::active_tracer(), nullptr);
  ASSERT_EQ(trace::active_metrics(), nullptr);
  TrialRunner pool(4);
  const auto seen = pool.map(8, 0, [](const Trial&) {
    return trace::active_tracer() == nullptr && trace::active_metrics() == nullptr;
  });
  for (const bool ok : seen) EXPECT_TRUE(ok);
}

TEST(TrialRunner, TrialsGetPrivateSinksNotTheParents) {
  trace::Tracer parent_tracer;
  trace::MetricsRegistry parent_metrics;
  const trace::ScopedTracer it(&parent_tracer);
  const trace::ScopedMetrics im(&parent_metrics);
  TrialRunner pool(4);
  const auto ok = pool.map(8, 0, [&](const Trial&) {
    return trace::active_tracer() != nullptr && trace::active_tracer() != &parent_tracer &&
           trace::active_metrics() != nullptr && trace::active_metrics() != &parent_metrics;
  });
  for (const bool v : ok) EXPECT_TRUE(v);
}

// The core determinism guarantee: metrics and traces recorded by concurrent
// trials merge into streams that do not depend on the worker count.
TEST(TrialRunner, MergedObservabilityIsIdenticalForAnyJobCount) {
  const auto run_with_jobs = [](int jobs) {
    trace::Tracer tracer;
    trace::MetricsRegistry metrics;
    struct Streams {
      std::vector<trace::TraceEvent> events;
      std::string csv;
    } streams;
    {
      const trace::ScopedTracer it(&tracer);
      const trace::ScopedMetrics im(&metrics);
      TrialRunner pool(jobs);
      pool.for_each(12, 50, [](const Trial& trial) {
        trace::Tracer* const t = trace::active_tracer();
        trace::MetricsRegistry* const m = trace::active_metrics();
        for (int i = 0; i < 20 + trial.index; ++i) {
          t->record_complete(trial.index, trace::Category::kBench, "work",
                             static_cast<double>(i), 0.5, trial.index);
          m->counter("trials.work").inc();
          m->histogram("trials.len").observe(static_cast<double>(trial.seed % 7 + i));
        }
        m->gauge("trials.last").set(static_cast<double>(trial.index));
      });
    }
    streams.events = tracer.merged_events();
    std::ostringstream csv;
    trace::write_metrics_csv(csv, metrics);
    streams.csv = csv.str();
    return streams;
  };
  const auto j1 = run_with_jobs(1);
  const auto j4 = run_with_jobs(4);
  EXPECT_EQ(j1.csv, j4.csv);
  ASSERT_EQ(j1.events.size(), j4.events.size());
  for (std::size_t i = 0; i < j1.events.size(); ++i) {
    EXPECT_EQ(j1.events[i].seq, j4.events[i].seq);
    EXPECT_EQ(j1.events[i].rank, j4.events[i].rank);
    EXPECT_EQ(j1.events[i].ts, j4.events[i].ts);
    EXPECT_EQ(j1.events[i].arg, j4.events[i].arg);
  }
  // Gauge merge is last-writer-wins in trial order, like a sequential run.
  EXPECT_NE(j1.csv.find("trials.last"), std::string::npos);
}

// End-to-end: full simulated clock-sync trials (each with its own World)
// give bit-identical results for any worker count.
TEST(TrialRunner, SimulatedTrialsAreDeterministicAcrossJobCounts) {
  const auto machine = topology::testbox(2, 2);
  const auto run_with_jobs = [&](int jobs) {
    TrialRunner pool(jobs);
    return pool.map(4, 7, [&](const Trial& trial) {
      simmpi::World world(machine, trial.seed);
      double duration = 0.0;
      world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
        auto sync = clocksync::make_sync("hca3/recompute_intercept/20/skampi_offset/5");
        const sim::Time begin = ctx.sim().now();
        (void)co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
        duration = std::max(duration, ctx.sim().now() - begin);
      });
      return duration;
    });
  };
  const auto j1 = run_with_jobs(1);
  const auto j4 = run_with_jobs(4);
  ASSERT_EQ(j1.size(), j4.size());
  for (std::size_t i = 0; i < j1.size(); ++i) {
    EXPECT_EQ(j1[i], j4[i]);  // bit-exact, not approximately equal
    EXPECT_GT(j1[i], 0.0);
  }
}

}  // namespace
}  // namespace hcs::runner
