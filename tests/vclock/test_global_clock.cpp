#include "vclock/global_clock.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "vclock/hardware_clock.hpp"

namespace hcs::vclock {
namespace {

topology::ClockDriftParams noiseless() {
  topology::ClockDriftParams p;
  p.initial_offset_abs = 1e-3;
  p.base_skew_abs = 1e-6;
  p.skew_walk_sd = 0.0;
  p.read_noise_sd = 0.0;
  p.read_resolution = 0.0;
  return p;
}

class GlobalClockTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  ClockPtr hw_ = std::make_shared<HardwareClock>(sim_, noiseless(), 3);
};

TEST_F(GlobalClockTest, IdentityWrapperMatchesBase) {
  const ClockPtr g = GlobalClockLM::identity(hw_);
  for (double t : {0.0, 5.0, 100.0}) {
    EXPECT_DOUBLE_EQ(g->at_exact(t), hw_->at_exact(t));
  }
}

TEST_F(GlobalClockTest, AppliesModelOnTopOfBase) {
  const LinearModel lm{2e-6, -1e-6};
  GlobalClockLM g(hw_, lm);
  for (double t : {0.0, 7.0, 42.0}) {
    EXPECT_DOUBLE_EQ(g.at_exact(t), lm.apply(hw_->at_exact(t)));
  }
}

TEST_F(GlobalClockTest, NullBaseRejected) {
  EXPECT_THROW(GlobalClockLM(nullptr, LinearModel{}), std::invalid_argument);
}

TEST_F(GlobalClockTest, NestingComposes) {
  const LinearModel inner{1e-6, 3e-6};
  const LinearModel outer{-2e-6, 5e-6};
  auto mid = std::make_shared<GlobalClockLM>(hw_, inner);
  GlobalClockLM top(mid, outer);
  for (double t : {0.0, 11.0}) {
    EXPECT_DOUBLE_EQ(top.at_exact(t), outer.apply(inner.apply(hw_->at_exact(t))));
  }
}

TEST_F(GlobalClockTest, AdjustInterceptShiftsOutput) {
  GlobalClockLM g(hw_, LinearModel{0.0, 0.0});
  const double before = g.at_exact(10.0);
  g.adjust_intercept(4e-6);
  EXPECT_DOUBLE_EQ(g.at_exact(10.0), before + 4e-6);
}

TEST_F(GlobalClockTest, FlattenEncodesChainOutermostFirst) {
  auto mid = std::make_shared<GlobalClockLM>(hw_, LinearModel{1e-6, 2e-6});
  auto top = std::make_shared<GlobalClockLM>(mid, LinearModel{3e-6, 4e-6});
  const std::vector<double> buf = flatten_clock(top);
  ASSERT_EQ(buf.size(), 5u);
  EXPECT_DOUBLE_EQ(buf[0], 2.0);
  EXPECT_DOUBLE_EQ(buf[1], 3e-6);  // outermost slope first
  EXPECT_DOUBLE_EQ(buf[2], 4e-6);
  EXPECT_DOUBLE_EQ(buf[3], 1e-6);
  EXPECT_DOUBLE_EQ(buf[4], 2e-6);
}

TEST_F(GlobalClockTest, FlattenOfRawHardwareClockIsEmptyChain) {
  const std::vector<double> buf = flatten_clock(hw_);
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_DOUBLE_EQ(buf[0], 0.0);
}

TEST_F(GlobalClockTest, UnflattenRoundTripsBehaviour) {
  auto mid = std::make_shared<GlobalClockLM>(hw_, LinearModel{1.5e-6, -2e-6});
  auto top = std::make_shared<GlobalClockLM>(mid, LinearModel{-0.5e-6, 7e-6});
  const ClockPtr rebuilt = unflatten_clock(hw_, flatten_clock(top));
  for (double t : {0.0, 3.0, 99.0}) {
    EXPECT_NEAR(rebuilt->at_exact(t), top->at_exact(t), 1e-15);
  }
}

TEST_F(GlobalClockTest, UnflattenRejectsMalformedBuffers) {
  EXPECT_THROW(unflatten_clock(hw_, {}), std::invalid_argument);
  EXPECT_THROW(unflatten_clock(hw_, {2.0, 1e-6}), std::invalid_argument);
}

TEST_F(GlobalClockTest, CollapseEqualsNestedEvaluation) {
  auto mid = std::make_shared<GlobalClockLM>(hw_, LinearModel{2e-6, 1e-6});
  auto top = std::make_shared<GlobalClockLM>(mid, LinearModel{-1e-6, 3e-6});
  const LinearModel flat = collapse_models(top);
  // 1e-12 s = 1 ps; the microsecond-scale effects under study sit six orders
  // of magnitude above this rounding allowance.
  for (double t : {0.0, 20.0}) {
    EXPECT_NEAR(flat.apply(hw_->at_exact(t)), top->at_exact(t), 1e-12);
  }
}

TEST_F(GlobalClockTest, TrueTimeOfWorksThroughDecorators) {
  auto g = std::make_shared<GlobalClockLM>(hw_, LinearModel{1e-6, -4e-6});
  const double target = g->at_exact(12.34);
  EXPECT_NEAR(g->true_time_of(target, 0.0, 1.0), 12.34, 1e-9);
}

}  // namespace
}  // namespace hcs::vclock
