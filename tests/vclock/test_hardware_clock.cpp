#include "vclock/hardware_clock.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulation.hpp"

namespace hcs::vclock {
namespace {

topology::ClockDriftParams quiet_params() {
  topology::ClockDriftParams p;
  p.initial_offset_abs = 1e-3;
  p.base_skew_abs = 1e-6;
  p.skew_walk_sd = 0.0;   // perfectly linear
  p.skew_segment_s = 2.0;
  p.read_noise_sd = 0.0;  // noiseless
  p.read_resolution = 0.0;
  return p;
}

TEST(HardwareClock, ExactMappingIsLinearWithoutWalk) {
  sim::Simulation sim;
  HardwareClock clk(sim, quiet_params(), 5);
  const double o = clk.initial_offset();
  const double s = clk.base_skew();
  for (double t : {0.0, 1.0, 10.0, 100.0, 499.0}) {
    EXPECT_NEAR(clk.at_exact(t), o + (1.0 + s) * t, 1e-12 * (1.0 + t));
  }
}

TEST(HardwareClock, InitialOffsetWithinBound) {
  sim::Simulation sim;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    HardwareClock clk(sim, quiet_params(), seed);
    EXPECT_LE(std::abs(clk.initial_offset()), 1e-3);
    EXPECT_LE(std::abs(clk.base_skew()), 1e-6);
  }
}

TEST(HardwareClock, StrictlyIncreasingExact) {
  sim::Simulation sim;
  auto p = quiet_params();
  p.skew_walk_sd = 0.05e-6;
  HardwareClock clk(sim, p, 7);
  double last = clk.at_exact(0.0);
  for (double t = 0.1; t < 50.0; t += 0.1) {
    const double v = clk.at_exact(t);
    EXPECT_GT(v, last);
    last = v;
  }
}

TEST(HardwareClock, ContinuousAcrossSegmentBoundaries) {
  sim::Simulation sim;
  auto p = quiet_params();
  p.skew_walk_sd = 0.1e-6;
  HardwareClock clk(sim, p, 11);
  for (int k = 1; k < 20; ++k) {
    const double b = k * p.skew_segment_s;
    EXPECT_NEAR(clk.at_exact(b - 1e-9), clk.at_exact(b + 1e-9), 1e-8);
  }
}

TEST(HardwareClock, SkewWalkChangesSlope) {
  sim::Simulation sim;
  auto p = quiet_params();
  p.skew_walk_sd = 0.05e-6;
  HardwareClock clk(sim, p, 13);
  // Some segment must differ from the base skew (probability ~1).
  bool changed = false;
  for (double t = 0; t < 100; t += p.skew_segment_s) {
    if (clk.skew_at(t) != clk.skew_at(0.0)) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(HardwareClock, ReadNoiseBoundedAndCentered) {
  sim::Simulation sim;
  auto p = quiet_params();
  p.read_noise_sd = 20e-9;
  HardwareClock clk(sim, p, 17);
  const double exact = clk.at_exact(5.0);
  double acc = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double v = clk.at(5.0);
    EXPECT_NEAR(v, exact, 200e-9);  // 10 sigma
    acc += v - exact;
  }
  EXPECT_NEAR(acc / n, 0.0, 5e-9);
}

TEST(HardwareClock, ResolutionQuantizesReads) {
  sim::Simulation sim;
  auto p = quiet_params();
  p.read_noise_sd = 0.0;
  p.read_resolution = 1e-6;  // gettimeofday-like
  HardwareClock clk(sim, p, 19);
  const double v = clk.at(3.3333333);
  EXPECT_NEAR(std::remainder(v, 1e-6), 0.0, 1e-12);
}

TEST(HardwareClock, NowReadsAtSimulationTime) {
  sim::Simulation sim;
  HardwareClock clk(sim, quiet_params(), 23);
  bool checked = false;
  sim.spawn([](sim::Simulation& s, HardwareClock* c, bool* done) -> sim::Task<void> {
    co_await s.delay(2.5);
    EXPECT_NEAR(c->now(), c->at_exact(2.5), 1e-9);
    *done = true;
  }(sim, &clk, &checked));
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(HardwareClock, DeterministicPathForSeed) {
  sim::Simulation sim;
  auto p = quiet_params();
  p.skew_walk_sd = 0.05e-6;
  HardwareClock a(sim, p, 31), b(sim, p, 31), c(sim, p, 32);
  EXPECT_EQ(a.at_exact(123.0), b.at_exact(123.0));
  EXPECT_NE(a.at_exact(123.0), c.at_exact(123.0));
}

TEST(HardwareClock, NegativeTimeRejected) {
  sim::Simulation sim;
  HardwareClock clk(sim, quiet_params(), 37);
  EXPECT_THROW(clk.at_exact(-1.0), std::invalid_argument);
}

TEST(HardwareClock, TrueTimeOfInvertsExact) {
  sim::Simulation sim;
  auto p = quiet_params();
  p.skew_walk_sd = 0.05e-6;
  HardwareClock clk(sim, p, 41);
  for (double t : {0.5, 7.0, 33.3, 211.0}) {
    const double v = clk.at_exact(t);
    EXPECT_NEAR(clk.true_time_of(v, 0.0, 1.0), t, 1e-9);
  }
}

TEST(HardwareClock, DriftMagnitudeMatchesPaperScale) {
  // Paper Fig. 2a: hundreds of microseconds of relative drift over 500 s.
  sim::Simulation sim;
  topology::ClockDriftParams p;  // defaults are the calibrated values
  HardwareClock a(sim, p, 43), b(sim, p, 44);
  const double drift =
      (a.at_exact(500.0) - a.at_exact(0.0)) - (b.at_exact(500.0) - b.at_exact(0.0));
  EXPECT_GT(std::abs(drift), 5e-6);     // clearly visible
  EXPECT_LT(std::abs(drift), 5e-3);     // but not absurd
}

}  // namespace
}  // namespace hcs::vclock
