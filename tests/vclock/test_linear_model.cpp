#include "vclock/linear_model.hpp"

#include <gtest/gtest.h>

namespace hcs::vclock {
namespace {

TEST(LinearModel, IdentityByDefault) {
  const LinearModel lm;
  EXPECT_TRUE(lm.is_identity());
  EXPECT_DOUBLE_EQ(lm.apply(123.456), 123.456);
}

TEST(LinearModel, ApplyMatchesPaperConvention) {
  // offset(t) = slope*t + intercept; global = t + offset(t).
  const LinearModel lm{1e-6, 5e-6};
  EXPECT_DOUBLE_EQ(lm.apply(10.0), 10.0 + 1e-5 + 5e-6);
}

TEST(LinearModel, InvertIsInverseOfApply) {
  const LinearModel lm{2.5e-6, -3e-6};
  for (double t : {0.0, 1.0, 17.25, 499.9}) {
    EXPECT_NEAR(lm.invert(lm.apply(t)), t, 1e-12);
  }
}

TEST(LinearModel, MergeEqualsComposition) {
  const LinearModel outer{3e-6, 2e-6};
  const LinearModel inner{-1.5e-6, 7e-6};
  const LinearModel m = merge(outer, inner);
  for (double t : {0.0, 0.5, 10.0, 500.0}) {
    EXPECT_NEAR(m.apply(t), outer.apply(inner.apply(t)), 1e-15 * (1.0 + t));
  }
}

TEST(LinearModel, MergeWithIdentityIsNoop) {
  const LinearModel lm{4e-6, -2e-6};
  const LinearModel id;
  EXPECT_DOUBLE_EQ(merge(id, lm).slope, lm.slope);
  EXPECT_DOUBLE_EQ(merge(id, lm).intercept, lm.intercept);
  EXPECT_DOUBLE_EQ(merge(lm, id).slope, lm.slope);
  EXPECT_DOUBLE_EQ(merge(lm, id).intercept, lm.intercept);
}

TEST(LinearModel, MergeAssociative) {
  const LinearModel a{1e-6, 2e-6}, b{-2e-6, 1e-6}, c{3e-6, -4e-6};
  const LinearModel left = merge(merge(a, b), c);
  const LinearModel right = merge(a, merge(b, c));
  EXPECT_NEAR(left.slope, right.slope, 1e-18);
  EXPECT_NEAR(left.intercept, right.intercept, 1e-18);
}

TEST(LinearModel, ToStringShowsCoefficients) {
  const std::string s = to_string(LinearModel{1e-6, 2e-6});
  EXPECT_NE(s.find("slope"), std::string::npos);
  EXPECT_NE(s.find("intercept"), std::string::npos);
}

}  // namespace
}  // namespace hcs::vclock
