// Property-style sweeps over the clock layer: for a grid of drift parameters
// and seeds, the invariants every other layer relies on must hold.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "sim/simulation.hpp"
#include "vclock/global_clock.hpp"
#include "vclock/hardware_clock.hpp"

namespace hcs::vclock {
namespace {

using Params = std::tuple<double /*skew_abs*/, double /*walk_sd*/, std::uint64_t /*seed*/>;

class ClockPropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  topology::ClockDriftParams drift() const {
    const auto& [skew, walk, seed] = GetParam();
    (void)seed;
    topology::ClockDriftParams p;
    p.initial_offset_abs = 5e-3;
    p.base_skew_abs = skew;
    p.skew_walk_sd = walk;
    p.skew_segment_s = 2.0;
    p.read_noise_sd = 10e-9;
    p.read_resolution = 1e-9;
    return p;
  }
  std::uint64_t seed() const { return std::get<2>(GetParam()); }
};

TEST_P(ClockPropertyTest, ExactMappingStrictlyIncreasing) {
  sim::Simulation sim;
  HardwareClock clk(sim, drift(), seed());
  double last = clk.at_exact(0.0);
  for (double t = 0.05; t < 30.0; t += 0.05) {
    const double v = clk.at_exact(t);
    ASSERT_GT(v, last) << "t=" << t;
    last = v;
  }
}

TEST_P(ClockPropertyTest, RateStaysWithinPlausibleBounds) {
  // d(local)/d(true) must stay within 1 +- (skew + a generous walk margin):
  // a clock that races or stalls would break every offset estimator.
  sim::Simulation sim;
  HardwareClock clk(sim, drift(), seed());
  const auto& [skew, walk, _] = GetParam();
  const double bound = skew + 40.0 * walk + 1e-9;
  for (double t = 0.0; t < 60.0; t += 1.0) {
    const double rate = (clk.at_exact(t + 1.0) - clk.at_exact(t)) / 1.0;
    EXPECT_NEAR(rate, 1.0, bound) << "t=" << t;
  }
}

TEST_P(ClockPropertyTest, InverseRoundTripsThroughDecorators) {
  sim::Simulation sim;
  auto hw = std::make_shared<HardwareClock>(sim, drift(), seed());
  auto g = std::make_shared<GlobalClockLM>(
      std::make_shared<GlobalClockLM>(hw, LinearModel{2e-6, -3e-6}),
      LinearModel{-1e-6, 4e-6});
  for (double t : {0.3, 7.7, 29.9}) {
    const double v = g->at_exact(t);
    EXPECT_NEAR(g->true_time_of(v, 0.0, 1.0), t, 1e-9);
  }
}

TEST_P(ClockPropertyTest, FlattenUnflattenPreservesBehaviourUnderAnyDrift) {
  sim::Simulation sim;
  auto hw = std::make_shared<HardwareClock>(sim, drift(), seed());
  ClockPtr chain = hw;
  for (int level = 0; level < 3; ++level) {
    chain = std::make_shared<GlobalClockLM>(
        chain, LinearModel{(level + 1) * 1e-6, (level - 1) * 2e-6});
  }
  const ClockPtr rebuilt = unflatten_clock(hw, flatten_clock(chain));
  for (double t : {0.0, 11.1, 44.4}) {
    EXPECT_NEAR(rebuilt->at_exact(t), chain->at_exact(t), 1e-12);
  }
}

TEST_P(ClockPropertyTest, NoisyReadsCenterOnExactMapping) {
  sim::Simulation sim;
  HardwareClock clk(sim, drift(), seed());
  double acc = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) acc += clk.at(3.0) - clk.at_exact(3.0);
  EXPECT_LT(std::abs(acc / n), 5e-9);
}

INSTANTIATE_TEST_SUITE_P(
    DriftGrid, ClockPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 1e-6, 10e-6),    // base skew
                       ::testing::Values(0.0, 0.02e-6, 0.2e-6),  // walk sd
                       ::testing::Values(1u, 42u, 1234u)));      // seeds

}  // namespace
}  // namespace hcs::vclock
