#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace hcs::sim {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(Simulation, DelayAdvancesVirtualTime) {
  Simulation sim;
  Time observed = -1;
  sim.spawn([](Simulation& s, Time* out) -> Task<void> {
    co_await s.delay(1.5);
    *out = s.now();
  }(sim, &observed));
  sim.run();
  EXPECT_DOUBLE_EQ(observed, 1.5);
}

TEST(Simulation, SequentialDelaysAccumulate) {
  Simulation sim;
  Time observed = -1;
  sim.spawn([](Simulation& s, Time* out) -> Task<void> {
    co_await s.delay(1.0);
    co_await s.delay(2.0);
    co_await s.delay(0.25);
    *out = s.now();
  }(sim, &observed));
  sim.run();
  EXPECT_DOUBLE_EQ(observed, 3.25);
}

TEST(Simulation, NegativeDelayThrows) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> { co_await s.delay(-1.0); }(sim));
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(Simulation, ProcessesInterleaveByTime) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>* order, int id, Time step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(step);
      order->push_back(id);
    }
  };
  sim.spawn(proc(sim, &order, 1, 1.0));  // fires at 1, 2, 3
  sim.spawn(proc(sim, &order, 2, 0.4));  // fires at 0.4, 0.8, 1.2
  sim.run();
  const std::vector<int> expected = {2, 2, 1, 2, 1, 1};
  EXPECT_EQ(order, expected);
}

TEST(Simulation, ZeroDelayPreservesFifoOrder) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>* order, int id) -> Task<void> {
    co_await s.delay(0.0);
    order->push_back(id);
  };
  for (int id = 0; id < 5; ++id) sim.spawn(proc(sim, &order, id));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, CountsProcesses) {
  Simulation sim;
  auto noop = [](Simulation& s) -> Task<void> { co_await s.delay(0.1); };
  sim.spawn(noop(sim));
  sim.spawn(noop(sim));
  sim.run();
  EXPECT_EQ(sim.processes_spawned(), 2u);
  EXPECT_EQ(sim.processes_finished(), 2u);
}

TEST(Simulation, EventBudgetGuardsRunaway) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> {
    for (;;) co_await s.delay(0.001);
  }(sim));
  EXPECT_THROW(sim.run(1000), std::runtime_error);
}

TEST(Simulation, EventsProcessedCounted) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.delay(0.1);
    co_await s.delay(0.1);
  }(sim));
  sim.run();
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulation, ExceptionInProcessSurfacesFromRun) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.delay(0.5);
    throw std::logic_error("process failed");
  }(sim));
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulation, DeterministicTwoRunsSameSchedule) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim(seed);
    std::vector<double> trace;
    sim.spawn([](Simulation& s, std::vector<double>* trace) -> Task<void> {
      for (int i = 0; i < 50; ++i) {
        co_await s.delay(s.rng().exponential(1e-3));
        trace->push_back(s.now());
      }
    }(sim, &trace));
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(run_once(99), run_once(100));
}

TEST(Simulation, SpawnInsideRunningProcess) {
  Simulation sim;
  int children_done = 0;
  sim.spawn([](Simulation& s, int* done) -> Task<void> {
    co_await s.delay(1.0);
    for (int i = 0; i < 3; ++i) {
      s.spawn([](Simulation& s2, int* d) -> Task<void> {
        co_await s2.delay(0.5);
        ++*d;
      }(s, done));
    }
  }(sim, &children_done));
  sim.run();
  EXPECT_EQ(children_done, 3);
  EXPECT_EQ(sim.processes_finished(), 4u);
}

TEST(Simulation, TenThousandProcessesFinishInAnyOrder) {
  // Regression guard for the live-roots bookkeeping: finishing used to do a
  // linear scan over all live roots, making a p-process run O(p^2) in the
  // teardown phase.  With swap-and-pop it is O(p) total; at p = 10000 the
  // quadratic version takes seconds while this runs in milliseconds.  The
  // staggered delays make processes finish in an order different from spawn
  // order, exercising the swap (not just the pop-last fast path).
  Simulation sim;
  int done = 0;
  constexpr int kProcs = 10000;
  // hcs-lint: allow-next-line(wall-clock) — measures real host time on purpose
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kProcs; ++i) {
    sim.spawn([](Simulation& s, int* done, int i) -> Task<void> {
      // Earlier spawns finish later: reverse completion order.
      co_await s.delay(1.0 + static_cast<Time>(kProcs - i) * 1e-6);
      ++*done;
    }(sim, &done, i));
  }
  sim.run();
  // hcs-lint: allow-next-line(wall-clock) — perf guard, not simulated time
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(done, kProcs);
  EXPECT_EQ(sim.processes_finished(), static_cast<std::size_t>(kProcs));
  // Generous bound (quadratic teardown alone needs multiple seconds).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2000);
}

TEST(Simulation, AbandonedBlockedProcessIsReclaimed) {
  // A process that waits forever is destroyed with the Simulation; the
  // ASAN/valgrind cleanliness of this test is the assertion.
  auto sim = std::make_unique<Simulation>();
  sim->spawn([](Simulation& s) -> Task<void> { co_await s.delay(1e9); }(*sim));
  // Do not run to completion; destroy with the event pending.
  sim.reset();
  SUCCEED();
}

}  // namespace
}  // namespace hcs::sim
