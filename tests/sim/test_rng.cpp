#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hcs::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, ExponentialZeroMeanReturnsZero) {
  Rng rng(29);
  EXPECT_EQ(rng.exponential(0.0), 0.0);
  EXPECT_EQ(rng.exponential(-1.0), 0.0);
}

TEST(Rng, BernoulliProbabilityRespected) {
  Rng rng(31);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(37);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(41);
  Rng child = a.split();
  // Child differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == child.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Splitmix, KnownFirstValueStable) {
  std::uint64_t s1 = 0, s2 = 0;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace hcs::sim
