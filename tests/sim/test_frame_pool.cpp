#include "sim/frame_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace hcs::sim::detail {
namespace {

TEST(FramePool, RoundTripReusesBlocks) {
  void* a = FramePool::allocate(128);
  std::memset(a, 0xAB, 128);
  FramePool::deallocate(a);
  // LIFO freelist: the very next same-bucket allocation gets the same block.
  void* b = FramePool::allocate(128);
  EXPECT_EQ(a, b);
  FramePool::deallocate(b);
}

TEST(FramePool, PreservesMaxAlign) {
  for (const std::size_t bytes : {1u, 7u, 64u, 120u, 500u, 2000u, 5000u}) {
    void* p = FramePool::allocate(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::max_align_t),
              0u)
        << "bytes=" << bytes;
    std::memset(p, 0x5C, bytes);
    FramePool::deallocate(p);
  }
}

TEST(FramePool, OversizedBlocksBypassTheArena) {
  const std::size_t before = FramePool::reserved_bytes();
  void* p = FramePool::allocate(1 << 20);  // 1 MiB: far beyond the buckets
  std::memset(p, 0x11, 1 << 20);
  FramePool::deallocate(p);
  EXPECT_EQ(FramePool::reserved_bytes(), before);
}

TEST(FramePool, SlabRefillServesBatchesOfDistinctBlocks) {
  constexpr int kCount = 200;
  std::set<void*> seen;
  std::vector<void*> blocks;
  blocks.reserve(kCount);
  for (int i = 0; i < kCount; ++i) {
    void* p = FramePool::allocate(256);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate live block";
    std::memset(p, i & 0xFF, 256);
    blocks.push_back(p);
  }
  EXPECT_GT(FramePool::reserved_bytes(), 0u);
  for (void* p : blocks) FramePool::deallocate(p);
}

// Steady-state churn must not grow the arena: after the first refill, the
// thread cache serves every allocation.
TEST(FramePool, ChurnDoesNotGrowReservation) {
  for (int i = 0; i < 64; ++i) FramePool::deallocate(FramePool::allocate(192));
  const std::size_t after_warmup = FramePool::reserved_bytes();
  for (int i = 0; i < 100000; ++i) {
    void* p = FramePool::allocate(192);
    FramePool::deallocate(p);
  }
  EXPECT_EQ(FramePool::reserved_bytes(), after_warmup);
}

// Worker-thread lifecycle (TrialRunner, PDES shard workers): each thread
// churns its own frames; exiting threads return chains to the arena, so a
// second generation of threads reuses them instead of carving new slabs.
TEST(FramePool, ThreadsRecycleThroughTheArena) {
  auto churn = [] {
    std::vector<void*> live;
    live.reserve(256);
    for (int i = 0; i < 5000; ++i) {
      live.push_back(FramePool::allocate(96 + (i % 8) * 64));
      if (live.size() == 256) {
        for (void* p : live) FramePool::deallocate(p);
        live.clear();
      }
    }
    for (void* p : live) FramePool::deallocate(p);
  };
  std::vector<std::thread> gen1;
  for (int i = 0; i < 4; ++i) gen1.emplace_back(churn);
  for (auto& t : gen1) t.join();
  const std::size_t after_gen1 = FramePool::reserved_bytes();
  std::vector<std::thread> gen2;
  for (int i = 0; i < 4; ++i) gen2.emplace_back(churn);
  for (auto& t : gen2) t.join();
  EXPECT_EQ(FramePool::reserved_bytes(), after_gen1);
}

}  // namespace
}  // namespace hcs::sim::detail
