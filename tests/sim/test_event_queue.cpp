#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace hcs::sim {
namespace {

// The queue stores raw handles; for ordering tests a tag pointer works.
std::coroutine_handle<> tag(std::uintptr_t v) {
  return std::coroutine_handle<>::from_address(reinterpret_cast<void*>(v));
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(3.0, tag(3));
  q.push(1.0, tag(1));
  q.push(2.0, tag(2));
  EXPECT_EQ(q.pop().time, 1.0);
  EXPECT_EQ(q.pop().time, 2.0);
  EXPECT_EQ(q.pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  q.push(1.0, tag(10));
  q.push(1.0, tag(20));
  q.push(1.0, tag(30));
  EXPECT_EQ(q.pop().handle.address(), tag(10).address());
  EXPECT_EQ(q.pop().handle.address(), tag(20).address());
  EXPECT_EQ(q.pop().handle.address(), tag(30).address());
}

TEST(EventQueue, NextTimePeeksWithoutPopping) {
  EventQueue q;
  q.push(5.0, tag(1));
  q.push(2.0, tag(2));
  EXPECT_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, SizeTracksPushPop) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.push(1.0, tag(1));
  q.push(2.0, tag(2));
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.push(1.0, tag(1));
  q.push(2.0, tag(2));
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.push(4.0, tag(4));
  q.push(1.0, tag(1));
  EXPECT_EQ(q.pop().time, 1.0);
  q.push(2.0, tag(2));
  q.push(0.5, tag(5));
  EXPECT_EQ(q.pop().time, 0.5);
  EXPECT_EQ(q.pop().time, 2.0);
  EXPECT_EQ(q.pop().time, 4.0);
}

TEST(EventQueue, ManyEventsSorted) {
  EventQueue q;
  for (int i = 999; i >= 0; --i) q.push(static_cast<Time>(i % 97), tag(1));
  Time last = -1;
  while (!q.empty()) {
    const Time t = q.pop().time;
    EXPECT_GE(t, last);
    last = t;
  }
}

// The ordering contract the simulator depends on: among equal timestamps,
// pops come in push order (FIFO), even when pushes at that timestamp are
// interleaved with pushes and pops at other timestamps.
TEST(EventQueue, InterleavedEqualTimesStayFifo) {
  EventQueue q;
  q.push(2.0, tag(1));
  q.push(1.0, tag(9));
  q.push(2.0, tag(2));
  EXPECT_EQ(q.pop().handle.address(), tag(9).address());
  q.push(2.0, tag(3));
  q.push(3.0, tag(8));
  q.push(2.0, tag(4));
  for (std::uintptr_t expected = 1; expected <= 4; ++expected) {
    const EventQueue::Event ev = q.pop();
    EXPECT_EQ(ev.time, 2.0);
    EXPECT_EQ(ev.handle.address(), tag(expected).address());
  }
  EXPECT_EQ(q.pop().handle.address(), tag(8).address());
}

// Randomized check against a reference sort by (time, push order): the heap
// must produce exactly the stable order, whatever the arity or sift details.
TEST(EventQueue, RandomizedMatchesStableOrder) {
  std::mt19937_64 rng(42);
  // Few distinct timestamps => many ties, stressing the seq tiebreak.
  std::uniform_int_distribution<int> time_dist(0, 20);
  for (int round = 0; round < 20; ++round) {
    EventQueue q;
    struct Ref {
      Time time;
      std::uintptr_t id;
    };
    std::vector<Ref> ref;
    for (std::uintptr_t i = 1; i <= 500; ++i) {
      const Time t = static_cast<Time>(time_dist(rng));
      q.push(t, tag(i));
      ref.push_back({t, i});
    }
    std::stable_sort(ref.begin(), ref.end(),
                     [](const Ref& a, const Ref& b) { return a.time < b.time; });
    for (const Ref& expected : ref) {
      ASSERT_FALSE(q.empty());
      const EventQueue::Event ev = q.pop();
      EXPECT_EQ(ev.time, expected.time);
      EXPECT_EQ(ev.handle.address(), tag(expected.id).address());
    }
    EXPECT_TRUE(q.empty());
  }
}

// clear() must also reset the tiebreak sequence so a reused queue orders
// exactly like a fresh one.
TEST(EventQueue, ReuseAfterClearKeepsFifoTies) {
  EventQueue q;
  q.push(1.0, tag(1));
  q.push(1.0, tag(2));
  q.clear();
  q.push(5.0, tag(3));
  q.push(5.0, tag(4));
  q.push(5.0, tag(5));
  EXPECT_EQ(q.pop().handle.address(), tag(3).address());
  EXPECT_EQ(q.pop().handle.address(), tag(4).address());
  EXPECT_EQ(q.pop().handle.address(), tag(5).address());
}

}  // namespace
}  // namespace hcs::sim
