#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace hcs::sim {
namespace {

// The queue stores raw handles; for ordering tests a tag pointer works.
std::coroutine_handle<> tag(std::uintptr_t v) {
  return std::coroutine_handle<>::from_address(reinterpret_cast<void*>(v));
}

// Every ordering test runs against every engine: the (time, seq) contract is
// a total order, so heap, ladder and adaptive must pop identical sequences.
class EventQueueAllImpls : public ::testing::TestWithParam<QueueImpl> {
 protected:
  EventQueue make() const { return EventQueue(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(Engines, EventQueueAllImpls,
                         ::testing::Values(QueueImpl::kHeap, QueueImpl::kLadder,
                                           QueueImpl::kAdaptive),
                         [](const auto& info) {
                           return std::string(queue_impl_name(info.param));
                         });

TEST_P(EventQueueAllImpls, PopsInTimeOrder) {
  EventQueue q = make();
  q.push(3.0, tag(3));
  q.push(1.0, tag(1));
  q.push(2.0, tag(2));
  EXPECT_EQ(q.pop().time, 1.0);
  EXPECT_EQ(q.pop().time, 2.0);
  EXPECT_EQ(q.pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueAllImpls, TiesBreakByInsertionOrder) {
  EventQueue q = make();
  q.push(1.0, tag(10));
  q.push(1.0, tag(20));
  q.push(1.0, tag(30));
  EXPECT_EQ(q.pop().handle.address(), tag(10).address());
  EXPECT_EQ(q.pop().handle.address(), tag(20).address());
  EXPECT_EQ(q.pop().handle.address(), tag(30).address());
}

TEST_P(EventQueueAllImpls, NextTimePeeksWithoutPopping) {
  EventQueue q = make();
  q.push(5.0, tag(1));
  q.push(2.0, tag(2));
  EXPECT_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST_P(EventQueueAllImpls, SizeTracksPushPop) {
  EventQueue q = make();
  EXPECT_EQ(q.size(), 0u);
  q.push(1.0, tag(1));
  q.push(2.0, tag(2));
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST_P(EventQueueAllImpls, ClearDropsEverything) {
  EventQueue q = make();
  q.push(1.0, tag(1));
  q.push(2.0, tag(2));
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueAllImpls, InterleavedPushPopKeepsOrder) {
  EventQueue q = make();
  q.push(4.0, tag(4));
  q.push(1.0, tag(1));
  EXPECT_EQ(q.pop().time, 1.0);
  q.push(2.0, tag(2));
  q.push(0.5, tag(5));
  EXPECT_EQ(q.pop().time, 0.5);
  EXPECT_EQ(q.pop().time, 2.0);
  EXPECT_EQ(q.pop().time, 4.0);
}

TEST_P(EventQueueAllImpls, ManyEventsSorted) {
  EventQueue q = make();
  for (int i = 999; i >= 0; --i) q.push(static_cast<Time>(i % 97), tag(1));
  Time last = -1;
  while (!q.empty()) {
    const Time t = q.pop().time;
    EXPECT_GE(t, last);
    last = t;
  }
}

// The ordering contract the simulator depends on: among equal timestamps,
// pops come in push order (FIFO), even when pushes at that timestamp are
// interleaved with pushes and pops at other timestamps.
TEST_P(EventQueueAllImpls, InterleavedEqualTimesStayFifo) {
  EventQueue q = make();
  q.push(2.0, tag(1));
  q.push(1.0, tag(9));
  q.push(2.0, tag(2));
  EXPECT_EQ(q.pop().handle.address(), tag(9).address());
  q.push(2.0, tag(3));
  q.push(3.0, tag(8));
  q.push(2.0, tag(4));
  for (std::uintptr_t expected = 1; expected <= 4; ++expected) {
    const EventQueue::Event ev = q.pop();
    EXPECT_EQ(ev.time, 2.0);
    EXPECT_EQ(ev.handle.address(), tag(expected).address());
  }
  EXPECT_EQ(q.pop().handle.address(), tag(8).address());
}

// Randomized check against a reference sort by (time, push order): every
// engine must produce exactly the stable order, whatever the internal
// bucketing or sift details.
TEST_P(EventQueueAllImpls, RandomizedMatchesStableOrder) {
  std::mt19937_64 rng(42);
  // Few distinct timestamps => many ties, stressing the seq tiebreak.
  std::uniform_int_distribution<int> time_dist(0, 20);
  for (int round = 0; round < 20; ++round) {
    EventQueue q = make();
    struct Ref {
      Time time;
      std::uintptr_t id;
    };
    std::vector<Ref> ref;
    for (std::uintptr_t i = 1; i <= 500; ++i) {
      const Time t = static_cast<Time>(time_dist(rng));
      q.push(t, tag(i));
      ref.push_back({t, i});
    }
    std::stable_sort(ref.begin(), ref.end(),
                     [](const Ref& a, const Ref& b) { return a.time < b.time; });
    for (const Ref& expected : ref) {
      ASSERT_FALSE(q.empty());
      const EventQueue::Event ev = q.pop();
      EXPECT_EQ(ev.time, expected.time);
      EXPECT_EQ(ev.handle.address(), tag(expected.id).address());
    }
    EXPECT_TRUE(q.empty());
  }
}

// clear() must also reset the tiebreak sequence so a reused queue orders
// exactly like a fresh one.
TEST_P(EventQueueAllImpls, ReuseAfterClearKeepsFifoTies) {
  EventQueue q = make();
  q.push(1.0, tag(1));
  q.push(1.0, tag(2));
  q.clear();
  q.push(5.0, tag(3));
  q.push(5.0, tag(4));
  q.push(5.0, tag(5));
  EXPECT_EQ(q.pop().handle.address(), tag(3).address());
  EXPECT_EQ(q.pop().handle.address(), tag(4).address());
  EXPECT_EQ(q.pop().handle.address(), tag(5).address());
}

// A drained burst must not pin its peak memory: the pop-shrink policy has to
// walk the backing capacity back down below kShrinkMinCapacity (4096 slots)
// once the events are gone.
TEST_P(EventQueueAllImpls, DrainedBurstReleasesCapacity) {
  EventQueue q = make();
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> time_dist(0.0, 1000.0);
  constexpr std::size_t kBurst = 200000;
  for (std::size_t i = 0; i < kBurst; ++i) q.push(time_dist(rng), tag(1));
  EXPECT_GE(q.backing_capacity(), kBurst);
  Time last = -1.0;
  while (!q.empty()) {
    const Time t = q.pop().time;
    ASSERT_GE(t, last);
    last = t;
  }
  EXPECT_LT(q.backing_capacity(), 4096u);
}

// kAdaptive must hand off from the heap to the ladder mid-stream without
// disturbing the pop order.
TEST(EventQueueAdaptive, MigratesAtThresholdAndKeepsOrder) {
  EventQueue q(QueueImpl::kAdaptive);
  EXPECT_FALSE(q.ladder_active());
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<int> time_dist(0, 999);
  const std::size_t n = EventQueue::kAdaptiveSwitch + 1000;
  std::vector<Time> ref;
  ref.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Time t = static_cast<Time>(time_dist(rng));
    q.push(t, tag(i + 1));
    ref.push_back(t);
  }
  EXPECT_TRUE(q.ladder_active());
  std::sort(ref.begin(), ref.end());
  for (const Time expected : ref) {
    ASSERT_FALSE(q.empty());
    ASSERT_EQ(q.pop().time, expected);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueAdaptive, ClearResetsToHeapEngine) {
  EventQueue q(QueueImpl::kAdaptive);
  for (std::size_t i = 0; i <= EventQueue::kAdaptiveSwitch; ++i) {
    q.push(1.0, tag(1));
  }
  EXPECT_TRUE(q.ladder_active());
  q.clear();
  EXPECT_FALSE(q.ladder_active());
  EXPECT_EQ(q.configured_impl(), QueueImpl::kAdaptive);
}

TEST(EventQueueImpl, NamesRoundTrip) {
  for (const QueueImpl impl :
       {QueueImpl::kHeap, QueueImpl::kLadder, QueueImpl::kAdaptive}) {
    const auto parsed = queue_impl_from_string(queue_impl_name(impl));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, impl);
  }
  EXPECT_FALSE(queue_impl_from_string("fibonacci").has_value());
}

TEST(EventQueueImpl, ProcessDefaultSelectsEngine) {
  const QueueImpl saved = default_queue_impl();
  set_default_queue_impl(QueueImpl::kLadder);
  EXPECT_TRUE(EventQueue().ladder_active());
  set_default_queue_impl(QueueImpl::kHeap);
  EXPECT_FALSE(EventQueue().ladder_active());
  set_default_queue_impl(saved);
}

}  // namespace
}  // namespace hcs::sim
