#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace hcs::sim {
namespace {

// The queue stores raw handles; for ordering tests a tag pointer works.
std::coroutine_handle<> tag(std::uintptr_t v) {
  return std::coroutine_handle<>::from_address(reinterpret_cast<void*>(v));
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(3.0, tag(3));
  q.push(1.0, tag(1));
  q.push(2.0, tag(2));
  EXPECT_EQ(q.pop().time, 1.0);
  EXPECT_EQ(q.pop().time, 2.0);
  EXPECT_EQ(q.pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  q.push(1.0, tag(10));
  q.push(1.0, tag(20));
  q.push(1.0, tag(30));
  EXPECT_EQ(q.pop().handle.address(), tag(10).address());
  EXPECT_EQ(q.pop().handle.address(), tag(20).address());
  EXPECT_EQ(q.pop().handle.address(), tag(30).address());
}

TEST(EventQueue, NextTimePeeksWithoutPopping) {
  EventQueue q;
  q.push(5.0, tag(1));
  q.push(2.0, tag(2));
  EXPECT_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, SizeTracksPushPop) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.push(1.0, tag(1));
  q.push(2.0, tag(2));
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.push(1.0, tag(1));
  q.push(2.0, tag(2));
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.push(4.0, tag(4));
  q.push(1.0, tag(1));
  EXPECT_EQ(q.pop().time, 1.0);
  q.push(2.0, tag(2));
  q.push(0.5, tag(5));
  EXPECT_EQ(q.pop().time, 0.5);
  EXPECT_EQ(q.pop().time, 2.0);
  EXPECT_EQ(q.pop().time, 4.0);
}

TEST(EventQueue, ManyEventsSorted) {
  EventQueue q;
  for (int i = 999; i >= 0; --i) q.push(static_cast<Time>(i % 97), tag(1));
  Time last = -1;
  while (!q.empty()) {
    const Time t = q.pop().time;
    EXPECT_GE(t, last);
    last = t;
  }
}

}  // namespace
}  // namespace hcs::sim
