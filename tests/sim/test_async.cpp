#include "sim/async.hpp"

#include <gtest/gtest.h>

#include "simmpi/collectives.hpp"
#include "topology/presets.hpp"
#include "util/vec.hpp"

namespace hcs::sim {
namespace {

TEST(Async, CompletedFutureReturnsValueImmediately) {
  Simulation sim;
  int got = 0;
  sim.spawn([](Simulation& s, int* out) -> Task<void> {
    auto future = async(s, [](Simulation& s2) -> Task<int> {
      co_await s2.delay(0.0);
      co_return 41;
    }(s));
    co_await s.delay(1.0);  // future completes long before this
    EXPECT_TRUE(future.done());
    *out = co_await future;
  }(sim, &got));
  sim.run();
  EXPECT_EQ(got, 41);
}

TEST(Async, AwaitSuspendsUntilCompletion) {
  Simulation sim;
  Time resumed_at = 0;
  sim.spawn([](Simulation& s, Time* out) -> Task<void> {
    auto future = async(s, [](Simulation& s2) -> Task<double> {
      co_await s2.delay(2.5);
      co_return 1.5;
    }(s));
    EXPECT_FALSE(future.done());
    const double v = co_await future;
    EXPECT_EQ(v, 1.5);
    *out = s.now();
  }(sim, &resumed_at));
  sim.run();
  EXPECT_DOUBLE_EQ(resumed_at, 2.5);
}

TEST(Async, VoidTask) {
  Simulation sim;
  bool done = false;
  sim.spawn([](Simulation& s, bool* out) -> Task<void> {
    auto future = async(s, [](Simulation& s2) -> Task<void> {
      co_await s2.delay(0.5);
    }(s));
    co_await future;
    *out = true;
  }(sim, &done));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Async, ExceptionSurfacesAtAwait) {
  Simulation sim;
  bool caught = false;
  sim.spawn([](Simulation& s, bool* out) -> Task<void> {
    auto future = async(s, [](Simulation& s2) -> Task<int> {
      co_await s2.delay(0.1);
      throw std::runtime_error("async boom");
      co_return 0;
    }(s));
    try {
      (void)co_await future;
    } catch (const std::runtime_error&) {
      *out = true;
    }
  }(sim, &caught));
  sim.run();
  EXPECT_TRUE(caught);
}

// MPI_Ibarrier-style overlap: the barrier progresses while this rank
// computes, so total time ~= max(compute, barrier), not their sum.
TEST(Async, NonblockingBarrierOverlapsComputation) {
  simmpi::World w(topology::testbox(2, 2), 7);
  Time total = 0;
  w.run_all([&](simmpi::RankCtx& ctx) -> Task<void> {
    const Time t0 = ctx.sim().now();
    auto request = async(ctx.sim(), simmpi::barrier(ctx.comm_world()));
    co_await ctx.sim().delay(100e-6);  // compute >> barrier latency
    co_await request;                  // MPI_Wait
    total = std::max(total, ctx.sim().now() - t0);
  });
  EXPECT_LT(total, 110e-6);  // ~compute time, barrier hidden
  EXPECT_GE(total, 100e-6);
}

TEST(Async, NonblockingAllreduceDeliversResult) {
  simmpi::World w(topology::testbox(2, 2), 9);
  std::vector<double> got(4, 0);
  w.run_all([&](simmpi::RankCtx& ctx) -> Task<void> {
    auto request = async(ctx.sim(), simmpi::allreduce(ctx.comm_world(),
                                                      util::vec(1.0 * ctx.rank())));
    co_await ctx.sim().delay(50e-6);
    const std::vector<double> result = co_await request;
    got[static_cast<std::size_t>(ctx.rank())] = result.at(0);
  });
  for (double v : got) EXPECT_DOUBLE_EQ(v, 0.0 + 1 + 2 + 3);
}

TEST(Async, MultipleOutstandingFutures) {
  Simulation sim;
  int sum = 0;
  sim.spawn([](Simulation& s, int* out) -> Task<void> {
    std::vector<Future<int>> futures;
    for (int i = 0; i < 5; ++i) {
      futures.push_back(async(s, [](Simulation& s2, int i) -> Task<int> {
        co_await s2.delay(0.1 * (5 - i));  // complete in reverse order
        co_return i;
      }(s, i)));
    }
    for (auto& f : futures) *out += co_await f;
  }(sim, &sum));
  sim.run();
  EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4);
}

}  // namespace
}  // namespace hcs::sim
