#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/simulation.hpp"

namespace hcs::sim {
namespace {

Task<int> returns_int(int v) { co_return v; }

Task<int> adds(int a, int b) {
  const int x = co_await returns_int(a);
  const int y = co_await returns_int(b);
  co_return x + y;
}

Task<std::string> returns_string() { co_return "hello"; }

Task<int> throws_inner() {
  throw std::runtime_error("inner boom");
  co_return 0;  // unreachable; keeps this a coroutine
}

Task<int> propagates() {
  const int v = co_await throws_inner();
  co_return v + 1;
}

TEST(Task, ValueChainsThroughAwaits) {
  Simulation sim;
  int result = 0;
  sim.spawn([](int* out) -> Task<void> { *out = co_await adds(2, 3); }(&result));
  sim.run();
  EXPECT_EQ(result, 5);
}

TEST(Task, StringResult) {
  Simulation sim;
  std::string result;
  sim.spawn([](std::string* out) -> Task<void> { *out = co_await returns_string(); }(&result));
  sim.run();
  EXPECT_EQ(result, "hello");
}

TEST(Task, DeepRecursionUsesConstantStack) {
  // 100k-deep chain: only possible with symmetric transfer.
  Simulation sim;
  struct Rec {
    static Task<int> down(int n) {
      if (n == 0) co_return 0;
      co_return 1 + co_await down(n - 1);
    }
  };
  int result = 0;
  sim.spawn([](int* out) -> Task<void> { *out = co_await Rec::down(100000); }(&result));
  sim.run();
  EXPECT_EQ(result, 100000);
}

TEST(Task, ExceptionPropagatesThroughChain) {
  Simulation sim;
  sim.spawn([]() -> Task<void> { (void)co_await propagates(); }());
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Task, UnstartedTaskDestroysCleanly) {
  // A Task that is never awaited must not leak or crash.
  auto t = returns_int(7);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.done());
}

TEST(Task, MoveTransfersOwnership) {
  auto t = returns_int(1);
  Task<int> u = std::move(t);
  EXPECT_FALSE(t.valid());  // NOLINT(bugprone-use-after-move): deliberate
  EXPECT_TRUE(u.valid());
}

TEST(Task, DefaultConstructedIsInvalid) {
  const Task<int> t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.done());
}

TEST(Task, VoidTaskCompletes) {
  Simulation sim;
  bool ran = false;
  sim.spawn([](bool* flag) -> Task<void> {
    *flag = true;
    co_return;
  }(&ran));
  sim.run();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace hcs::sim
