// Differential test for the event-queue engines: heap, ladder and adaptive
// run the exact same randomized mixed push/pop workload — over a million
// operations, with heavy equal-timestamp ties and +inf sentinels — and must
// produce bit-identical pop sequences, because (time, seq) is a total order.
// This is the machine-checked form of the argument that lets bench goldens
// stay byte-identical whichever engine a run selects.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>

namespace hcs::sim {
namespace {

std::coroutine_handle<> tag(std::uintptr_t v) {
  return std::coroutine_handle<>::from_address(reinterpret_cast<void*>(v));
}

class QueueDifferential : public ::testing::Test {
 protected:
  QueueDifferential()
      : queues_{EventQueue(QueueImpl::kHeap), EventQueue(QueueImpl::kLadder),
                EventQueue(QueueImpl::kAdaptive)} {}

  void push_all(Time t) {
    ++id_;
    for (EventQueue& q : queues_) q.push(t, tag(id_));
  }

  // Pops from every engine and asserts the three results are identical.
  void pop_all() {
    const EventQueue::Event a = queues_[0].pop();
    const EventQueue::Event b = queues_[1].pop();
    const EventQueue::Event c = queues_[2].pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.seq, b.seq);
    ASSERT_EQ(a.handle.address(), b.handle.address());
    ASSERT_EQ(a.time, c.time);
    ASSERT_EQ(a.seq, c.seq);
    ASSERT_EQ(a.handle.address(), c.handle.address());
    // Pops are nondecreasing except across a +inf sentinel: once the queue
    // momentarily holds only "never" events, later finite pushes legally pop
    // below the inf that preceded them.
    if (last_time_ < kTimeInfinity) {
      ASSERT_GE(a.time, last_time_);
    }
    last_time_ = a.time;
  }

  void check_peek() {
    if (queues_[0].empty()) return;
    const Time t = queues_[0].next_time();
    ASSERT_EQ(t, queues_[1].next_time());
    ASSERT_EQ(t, queues_[2].next_time());
  }

  std::array<EventQueue, 3> queues_;
  std::uintptr_t id_ = 0;
  Time last_time_ = -1e300;
};

// A simulator-shaped workload: timestamps advance with the drain frontier
// (events schedule in the future of "now"), sizes grow into six figures,
// ties are frequent.  >1M mixed operations total.
TEST_F(QueueDifferential, MillionMixedOpsIdenticalAcrossEngines) {
  std::mt19937_64 rng(2026);
  std::uniform_real_distribution<double> dt_dist(0.0, 10.0);
  std::uniform_int_distribution<int> tie_dist(0, 50);
  std::uniform_int_distribution<int> coin(0, 99);
  Time now = 0.0;

  auto random_time = [&] {
    const int c = coin(rng);
    if (c < 30) return now + static_cast<Time>(tie_dist(rng));  // heavy ties
    if (c < 32) return kTimeInfinity;  // "never" sentinels ride along
    return now + dt_dist(rng);
  };

  // Phase 1: grow to 300k pending (past the adaptive switch) with occasional
  // pops advancing the frontier.
  while (queues_[0].size() < 300000) {
    push_all(random_time());
    if (coin(rng) < 10 && !queues_[0].empty()) {
      pop_all();
      now = last_time_;
    }
  }
  EXPECT_TRUE(queues_[2].ladder_active());

  // Phase 2: steady-state churn at large size — the regime the ladder's
  // amortized O(1) claim is about.
  for (int i = 0; i < 400000; ++i) {
    if (coin(rng) < 50) {
      push_all(random_time());
    } else {
      pop_all();
      if (last_time_ < kTimeInfinity) now = last_time_;
    }
    if (coin(rng) < 2) check_peek();
  }

  // Phase 3: drain to empty, still comparing every pop.
  while (!queues_[0].empty()) {
    pop_all();
    if (last_time_ < kTimeInfinity) now = last_time_;
    if (coin(rng) < 5) push_all(now + dt_dist(rng));
  }
  EXPECT_TRUE(queues_[1].empty());
  EXPECT_TRUE(queues_[2].empty());
}

// All-equal timestamps at scale: buckets cannot subdivide, so the ladder has
// to fall back to heapifying whole buckets — pure seq-order FIFO territory.
TEST_F(QueueDifferential, MassiveEqualTimestampBurstStaysFifo) {
  for (int i = 0; i < 100000; ++i) push_all(1.0);
  std::uintptr_t expected = 0;
  for (int i = 0; i < 100000; ++i) {
    pop_all();
    // pop_all checked cross-engine equality; FIFO means ids come in order.
    ++expected;
    ASSERT_EQ(queues_[0].size(), 100000u - expected);
  }
}

// Pops interleaved below the drained frontier boundary: pushes targeted just
// above "now" land under every live rung and must route to the bottom tier.
TEST_F(QueueDifferential, NearFrontierPushesStayOrdered) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> far(100.0, 200.0);
  std::uniform_real_distribution<double> eps(0.0, 1e-6);
  for (int i = 0; i < 100000; ++i) push_all(far(rng));
  for (int i = 0; i < 100000; ++i) {
    pop_all();
    push_all(last_time_ + eps(rng));  // barely-future event, below all rungs
  }
  while (!queues_[0].empty()) pop_all();
}

}  // namespace
}  // namespace hcs::sim
