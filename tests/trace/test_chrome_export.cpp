#include "trace/chrome_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/mini_json.hpp"
#include "trace/trace.hpp"

namespace hcs::trace {
namespace {

using testsupport::JsonParser;
using testsupport::JsonValue;

TEST(JsonEscape, HandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

JsonValue export_and_parse(const Tracer& tracer) {
  std::ostringstream os;
  write_chrome_trace(os, tracer);
  return JsonParser::parse(os.str());
}

TEST(ChromeExport, EmptyTracerStillParsesWithProcessMetadata) {
  const Tracer tracer;
  const JsonValue doc = export_and_parse(tracer);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);  // just the process_name metadata
  EXPECT_EQ(events[0].at("ph").as_string(), "M");
  EXPECT_EQ(events[0].at("name").as_string(), "process_name");
}

TEST(ChromeExport, EmitsSchemaValidCompleteAndInstantEvents) {
  Tracer tracer;
  tracer.record_complete(0, Category::kSync, "fit", 1e-3, 2e-3, 123);
  tracer.record_complete(2, Category::kNet, "send", 2e-3, 0.5e-3);
  tracer.record_instant(0, Category::kSync, "resync", 7);
  const JsonValue doc = export_and_parse(tracer);
  const auto& events = doc.at("traceEvents").as_array();

  std::size_t n_meta = 0, n_complete = 0, n_instant = 0;
  for (const JsonValue& ev : events) {
    const std::string ph = ev.at("ph").as_string();
    ASSERT_TRUE(ev.has("name"));
    ASSERT_TRUE(ev.has("pid"));
    ASSERT_TRUE(ev.has("tid"));
    if (ph == "M") {
      ++n_meta;
      continue;
    }
    ASSERT_TRUE(ev.at("ts").is_number());
    ASSERT_TRUE(ev.has("args"));
    EXPECT_TRUE(ev.at("args").at("time_source").is_string());
    if (ph == "X") {
      ++n_complete;
      EXPECT_GE(ev.at("dur").as_number(), 0.0);
    } else if (ph == "i") {
      ++n_instant;
      EXPECT_EQ(ev.at("s").as_string(), "t");  // thread-scoped instant
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  // process_name + thread_name for ranks {0, 2}.
  EXPECT_EQ(n_meta, 3u);
  EXPECT_EQ(n_complete, 2u);
  EXPECT_EQ(n_instant, 1u);

  // Timestamps are microseconds: 1e-3 s -> 1000 us.
  for (const JsonValue& ev : events) {
    if (ev.at("ph").as_string() == "X" && ev.at("name").as_string() == "fit") {
      EXPECT_NEAR(ev.at("ts").as_number(), 1000.0, 1e-9);
      EXPECT_NEAR(ev.at("dur").as_number(), 2000.0, 1e-9);
      EXPECT_EQ(ev.at("tid").as_number(), 0.0);
      EXPECT_EQ(ev.at("args").at("arg").as_number(), 123.0);
      EXPECT_EQ(ev.at("args").at("time_source").as_string(), "sim");
      EXPECT_EQ(ev.at("cat").as_string(), "sync");
    }
  }
}

TEST(ChromeExport, HostileEventNamesSurviveEscaping) {
  Tracer tracer;
  tracer.record_complete(0, Category::kApp, "we\"ird\\name\nwith\tjunk", 0.0, 1.0);
  const JsonValue doc = export_and_parse(tracer);  // parse would throw on bad JSON
  const auto& events = doc.at("traceEvents").as_array();
  bool found = false;
  for (const JsonValue& ev : events) {
    if (ev.at("ph").as_string() == "X") {
      EXPECT_EQ(ev.at("name").as_string(), "we\"ird\\name\nwith\tjunk");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ChromeExport, ThreadMetadataNamesEveryRankOnce) {
  Tracer tracer;
  for (const int rank : {3, 1, 3, 1, 0}) {
    tracer.record_instant(rank, Category::kApp, "e");
  }
  const JsonValue doc = export_and_parse(tracer);
  std::vector<double> named_tids;
  for (const JsonValue& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() == "M" && ev.at("name").as_string() == "thread_name") {
      named_tids.push_back(ev.at("tid").as_number());
      EXPECT_EQ(ev.at("args").at("name").as_string(),
                "rank " + std::to_string(static_cast<int>(ev.at("tid").as_number())));
    }
  }
  EXPECT_EQ(named_tids, (std::vector<double>{0.0, 1.0, 3.0}));
}

struct ZeroClock final : vclock::Clock {
  double at(sim::Time) override { return 0.0; }
  double at_exact(sim::Time) const override { return 0.0; }
  double now() override { return 0.0; }
};

TEST(ChromeExport, LegacyGanttExporterEmitsParseableJson) {
  // The pre-existing IntervalTracer JSON path must satisfy the same parser.
  auto clock = std::make_shared<ZeroClock>();
  std::vector<IntervalTracer> tracers;
  tracers.emplace_back(0, clock);
  const std::size_t idx = tracers[0].begin_event("all\"reduce", 3);
  tracers[0].end_event(idx);
  const JsonValue doc = JsonParser::parse(to_chrome_trace_json(tracers));
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("name").as_string(), "all\"reduce");
  EXPECT_EQ(events[0].at("args").at("iteration").as_number(), 3.0);
}

}  // namespace
}  // namespace hcs::trace
