#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "clocksync/factory.hpp"
#include "simmpi/collectives.hpp"
#include "topology/presets.hpp"
#include "util/vec.hpp"

namespace hcs::trace {
namespace {

TEST(IntervalTracer, RecordsIntervalsInClockUnits) {
  simmpi::World w(topology::testbox(1, 1), 3);
  IntervalTracer tracer(0, w.base_clock(0));
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    const std::size_t idx = tracer.begin_event("compute", 0);
    co_await ctx.sim().delay(1e-3);
    tracer.end_event(idx);
  });
  ASSERT_EQ(tracer.intervals().size(), 1u);
  EXPECT_NEAR(tracer.intervals()[0].duration(), 1e-3, 1e-6);
  EXPECT_EQ(tracer.intervals()[0].event, "compute");
}

TEST(IntervalTracer, NullClockRejected) {
  EXPECT_THROW(IntervalTracer(0, nullptr), std::invalid_argument);
}

TEST(IntervalTracer, EndEventValidatesIndex) {
  simmpi::World w(topology::testbox(1, 1), 3);
  IntervalTracer tracer(0, w.base_clock(0));
  EXPECT_THROW(tracer.end_event(0), std::out_of_range);
}

TEST(Gantt, NormalizesToEarliestStart) {
  simmpi::World w(topology::testbox(1, 2), 5);
  std::vector<IntervalTracer> tracers;
  tracers.emplace_back(0, w.base_clock(0));
  tracers.emplace_back(1, w.base_clock(1));
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    co_await ctx.sim().delay(ctx.rank() * 2e-3);  // stagger
    const std::size_t idx =
        tracers[static_cast<std::size_t>(ctx.rank())].begin_event("allreduce", 10);
    co_await ctx.sim().delay(0.5e-3);
    tracers[static_cast<std::size_t>(ctx.rank())].end_event(idx);
  });
  const auto rows = gantt_rows(tracers, "allreduce", 10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].start, 0.0);  // rank 0 started first
  EXPECT_NEAR(rows[1].start, 2e-3, 1e-6);
  EXPECT_NEAR(rows[0].duration, 0.5e-3, 1e-6);
}

TEST(Gantt, FiltersByEventAndIteration) {
  simmpi::World w(topology::testbox(1, 1), 7);
  std::vector<IntervalTracer> tracers;
  tracers.emplace_back(0, w.base_clock(0));
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    for (int it = 0; it < 3; ++it) {
      const std::size_t a = tracers[0].begin_event("allreduce", it);
      co_await ctx.sim().delay(1e-4);
      tracers[0].end_event(a);
      const std::size_t b = tracers[0].begin_event("compute", it);
      co_await ctx.sim().delay(1e-4);
      tracers[0].end_event(b);
    }
  });
  EXPECT_EQ(gantt_rows(tracers, "allreduce", 1).size(), 1u);
  EXPECT_EQ(gantt_rows(tracers, "compute", 2).size(), 1u);
  EXPECT_EQ(gantt_rows(tracers, "allreduce", 9).size(), 0u);
}

TEST(Gantt, LocalClockOffsetsDistortStarts) {
  // The Fig. 10 effect: with per-core local clocks the Gantt rows scatter by
  // the clock offsets; with a shared/global clock they align to the event's
  // true stagger (here: zero).
  auto machine = topology::testbox(2, 1);
  machine.clocks.initial_offset_abs = 50e-3;
  simmpi::World w(machine, 9);
  std::vector<IntervalTracer> local_tracers, shared_tracers;
  for (int r = 0; r < 2; ++r) {
    local_tracers.emplace_back(r, w.base_clock(r));
    shared_tracers.emplace_back(r, w.base_clock(0));  // same clock: "global"
  }
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    co_await ctx.sim().delay(1e-3);  // both start at the same true time
    const std::size_t a =
        local_tracers[static_cast<std::size_t>(ctx.rank())].begin_event("e", 0);
    const std::size_t b =
        shared_tracers[static_cast<std::size_t>(ctx.rank())].begin_event("e", 0);
    co_await ctx.sim().delay(30e-6);
    local_tracers[static_cast<std::size_t>(ctx.rank())].end_event(a);
    shared_tracers[static_cast<std::size_t>(ctx.rank())].end_event(b);
  });
  const auto local_rows = gantt_rows(local_tracers, "e", 0);
  const auto shared_rows = gantt_rows(shared_tracers, "e", 0);
  const double local_spread = std::max(local_rows[0].start, local_rows[1].start);
  const double shared_spread = std::max(shared_rows[0].start, shared_rows[1].start);
  EXPECT_GT(local_spread, 1e-3);    // dominated by the +-50 ms clock offsets
  EXPECT_LT(shared_spread, 1e-6);   // true simultaneity visible
}

TEST(ChromeTrace, EmitsValidEventPerInterval) {
  simmpi::World w(topology::testbox(1, 2), 11);
  std::vector<IntervalTracer> tracers;
  tracers.emplace_back(0, w.base_clock(0));
  tracers.emplace_back(1, w.base_clock(1));
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    const std::size_t idx =
        tracers[static_cast<std::size_t>(ctx.rank())].begin_event("allreduce", 3);
    co_await ctx.sim().delay(25e-6);
    tracers[static_cast<std::size_t>(ctx.rank())].end_event(idx);
  });
  const std::string json = to_chrome_trace_json(tracers);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"allreduce\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"iteration\":3"), std::string::npos);
  // Two intervals -> two complete events.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 2u);
}

TEST(ChromeTrace, EmptyTracersYieldEmptyEventList) {
  const std::string json = to_chrome_trace_json({});
  EXPECT_EQ(json, "{\"traceEvents\":[]}");
}

}  // namespace
}  // namespace hcs::trace
