#include "trace/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>

#include "clocksync/factory.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"

namespace hcs::trace {
namespace {

TEST(MetricsCounter, IncrementsAndAdds) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsGauge, HoldsLastValue) {
  Gauge g;
  g.set(1.0);
  g.set(-2.5);
  EXPECT_EQ(g.value(), -2.5);
}

TEST(Histogram, ExactAggregatesRegardlessOfSampleCap) {
  HistogramMetric h(2);  // tiny reservoir; aggregates must stay exact
  for (int i = 1; i <= 100; ++i) h.observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, EmptyIsAllZero) {
  HistogramMetric h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, NearestRankPercentiles) {
  HistogramMetric h;
  for (int i = 10; i >= 1; --i) h.observe(i);  // insertion order must not matter
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(10), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(90), 9.0);
  EXPECT_DOUBLE_EQ(h.percentile(91), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 10.0);
}

TEST(Histogram, PercentileRejectsOutOfRange) {
  HistogramMetric h;
  h.observe(1.0);
  EXPECT_THROW(h.percentile(-1), std::invalid_argument);
  EXPECT_THROW(h.percentile(100.5), std::invalid_argument);
}

TEST(Histogram, SampleCapBelowTwoRejected) {
  EXPECT_THROW(HistogramMetric(1), std::invalid_argument);
}

TEST(Histogram, DecimationKeepsReservoirBoundedAndDeterministic) {
  const auto fill = [](HistogramMetric& h) {
    for (int i = 0; i < 1000; ++i) h.observe(i);
  };
  HistogramMetric a(16), b(16);
  fill(a);
  fill(b);
  EXPECT_LE(a.samples().size(), 16u);
  EXPECT_GE(a.samples().size(), 8u);  // decimation halves, refill grows back
  EXPECT_EQ(a.samples(), b.samples());
  EXPECT_EQ(a.count(), 1000u);
  // The retained subsample still spans the distribution.
  EXPECT_LT(a.percentile(10), a.percentile(90));
}

TEST(Histogram, UnitDefaultsToSeconds) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.histogram("a").unit(), MetricUnit::kSeconds);
  EXPECT_EQ(reg.histogram("b", MetricUnit::kNone).unit(), MetricUnit::kNone);
  // First creation wins; a later lookup with a different unit does not mutate.
  EXPECT_EQ(reg.histogram("b", MetricUnit::kSeconds).unit(), MetricUnit::kNone);
}

TEST(Registry, ReferencesAreStableAcrossInsertions) {
  MetricsRegistry reg;
  Counter& c = reg.counter("zzz");
  c.inc();
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  EXPECT_EQ(c.value(), 1u);          // still the same node
  EXPECT_EQ(&c, &reg.counter("zzz"));
}

TEST(Registry, EmptyAndClear) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("c");
  reg.gauge("g");
  reg.histogram("h");
  EXPECT_FALSE(reg.empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Histogram, MergeFromCombinesAggregatesAndReplaysSamples) {
  HistogramMetric a, b;
  a.observe(1.0);
  a.observe(3.0);
  b.observe(-2.0);
  b.observe(10.0);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 12.0);
  EXPECT_DOUBLE_EQ(a.min(), -2.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_EQ(a.samples(), (std::vector<double>{1.0, 3.0, -2.0, 10.0}));
}

TEST(Histogram, MergeInOrderMatchesSequentialObservation) {
  // The TrialRunner merge contract: observing trial 0's samples then trial
  // 1's into one histogram must equal merging per-trial histograms in trial
  // order — including the deterministic decimation state.
  HistogramMetric sequential(16), trial0(16), trial1(16), merged(16);
  for (int i = 0; i < 100; ++i) {
    sequential.observe(i);
    trial0.observe(i);
  }
  for (int i = 100; i < 200; ++i) {
    sequential.observe(i);
    trial1.observe(i);
  }
  merged.merge_from(trial0);
  merged.merge_from(trial1);
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_DOUBLE_EQ(merged.sum(), sequential.sum());
  EXPECT_LE(merged.samples().size(), 16u);
}

TEST(Registry, MergeFromFoldsAllKinds) {
  MetricsRegistry parent, trial;
  parent.counter("hits").inc(2);
  parent.gauge("level").set(0.25);
  parent.histogram("lat").observe(1.0);
  trial.counter("hits").inc(3);
  trial.counter("misses").inc(1);
  trial.gauge("level").set(0.75);
  trial.histogram("lat").observe(3.0);
  trial.histogram("ratio", MetricUnit::kNone).observe(0.5);
  parent.merge_from(trial);
  EXPECT_EQ(parent.counter("hits").value(), 5u);
  EXPECT_EQ(parent.counter("misses").value(), 1u);
  // Gauges take the merged-in value: the later writer wins, as sequentially.
  EXPECT_EQ(parent.gauge("level").value(), 0.75);
  EXPECT_EQ(parent.histogram("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(parent.histogram("lat").max(), 3.0);
  // Histograms created by the merge keep the trial's unit.
  EXPECT_EQ(parent.histogram("ratio").unit(), MetricUnit::kNone);
}

TEST(MetricsThreadScope, InstallIsPerThread) {
  MetricsRegistry reg;
  const ScopedMetrics install(&reg);
  ASSERT_EQ(active_metrics(), &reg);
  MetricsRegistry* seen_on_other_thread = &reg;  // sentinel: must be overwritten
  std::thread([&] { seen_on_other_thread = active_metrics(); }).join();
  EXPECT_EQ(seen_on_other_thread, nullptr);
  EXPECT_EQ(active_metrics(), &reg);
}

TEST(MetricsMacros, NoOpWithoutInstalledRegistry) {
  ASSERT_EQ(active_metrics(), nullptr);
  HCS_METRIC_INC("nobody");
  HCS_METRIC_ADD("nobody", 5);
  HCS_METRIC_SET("nobody", 1.0);
  HCS_METRIC_OBSERVE("nobody", 1.0);
  HCS_METRIC_OBSERVE_RAW("nobody", 1.0);
  SUCCEED();
}

TEST(MetricsMacros, WriteIntoInstalledRegistry) {
  MetricsRegistry reg;
  {
    const ScopedMetrics install(&reg);
    HCS_METRIC_INC("hits");
    HCS_METRIC_ADD("hits", 2);
    HCS_METRIC_SET("level", 0.75);
    HCS_METRIC_OBSERVE("lat", 1e-3);
    HCS_METRIC_OBSERVE_RAW("ratio", 0.5);
  }
  EXPECT_EQ(active_metrics(), nullptr);  // ScopedMetrics restored
  EXPECT_EQ(reg.counter("hits").value(), 3u);
  EXPECT_EQ(reg.gauge("level").value(), 0.75);
  EXPECT_EQ(reg.histogram("lat").count(), 1u);
  EXPECT_EQ(reg.histogram("lat").unit(), MetricUnit::kSeconds);
  EXPECT_EQ(reg.histogram("ratio").unit(), MetricUnit::kNone);
}

TEST(MetricsExport, CsvHasHeaderAndOneRowPerMetric) {
  MetricsRegistry reg;
  reg.counter("b.count").inc(7);
  reg.gauge("a.gauge").set(2.5);
  reg.histogram("c.lat").observe(0.25);
  std::ostringstream os;
  write_metrics_csv(os, reg);
  const std::string csv = os.str();
  std::istringstream lines(csv);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 4u);  // header + 3 metrics
  EXPECT_EQ(rows[0], "name,kind,unit,count,value,mean,p50,p90,p99,min,max");
  // Deterministic order: counters, then gauges, then histograms, each by name.
  EXPECT_EQ(rows[1].rfind("b.count,counter,", 0), 0u);
  EXPECT_EQ(rows[2].rfind("a.gauge,gauge,", 0), 0u);
  EXPECT_EQ(rows[3].rfind("c.lat,histogram,s,1,0.25", 0), 0u);
  // Every row has the same number of fields as the header.
  const auto nfields = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  for (const std::string& row : rows) EXPECT_EQ(nfields(row), nfields(rows[0]));
}

TEST(MetricsExport, SummaryScalesOnlySecondsHistograms) {
  MetricsRegistry reg;
  reg.counter("msgs").inc(3);
  reg.histogram("lat").observe(2e-6);                       // 2 microseconds
  reg.histogram("r2", MetricUnit::kNone).observe(0.5);      // dimensionless
  std::ostringstream os;
  print_metrics_summary(os, reg);
  const std::string out = os.str();
  EXPECT_NE(out.find("msgs"), std::string::npos);
  EXPECT_NE(out.find("2.000"), std::string::npos);   // lat rendered in us
  EXPECT_NE(out.find("0.500"), std::string::npos);   // r2 rendered raw
  EXPECT_EQ(out.find("500000"), std::string::npos);  // r2 NOT scaled by 1e6
}

TEST(MetricsExport, EmptyRegistrySummaryIsExplicit) {
  MetricsRegistry reg;
  std::ostringstream os;
  print_metrics_summary(os, reg);
  EXPECT_NE(os.str().find("no metrics recorded"), std::string::npos);
}

TEST(MetricsIntegration, Hca3RunReportsPerLevelTrafficAndRtts) {
  // The acceptance shape: an HCA3 run on a 2-node machine must report
  // messages on the intra-socket and inter-node levels, ping-pong RTT
  // samples, fit quality and simulator totals.
  MetricsRegistry reg;
  {
    const ScopedMetrics install(&reg);
    simmpi::World world(topology::testbox(2, 2), 5);
    world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      auto sync = clocksync::make_sync("hca3/recompute_intercept/50/skampi_offset/10");
      (void)co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    });
  }
  EXPECT_GT(reg.counter("net.messages.intra_socket").value(), 0u);
  EXPECT_GT(reg.counter("net.messages.inter_node").value(), 0u);
  EXPECT_GT(reg.counter("net.bytes.inter_node").value(), 0u);
  EXPECT_GT(reg.counter("sync.pingpongs").value(), 0u);
  EXPECT_GT(reg.counter("sim.events_processed").value(), 0u);
  const HistogramMetric& rtt = reg.histogram("sync.rtt");
  ASSERT_GT(rtt.count(), 0u);
  EXPECT_GT(rtt.min(), 0.0);
  EXPECT_GE(rtt.percentile(99), rtt.percentile(50));
  const HistogramMetric& delay = reg.histogram("net.delay.inter_node");
  EXPECT_GT(delay.count(), 0u);
  // Network delays on this machine are sub-millisecond.
  EXPECT_LT(delay.percentile(50), 1e-3);
}

}  // namespace
}  // namespace hcs::trace
