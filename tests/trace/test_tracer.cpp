#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "clocksync/factory.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"
#include "trace/span.hpp"

namespace hcs::trace {
namespace {

struct FakeTimeSource final : TimeSource {
  double t = 0.0;
  double trace_now() const override { return t; }
};

TEST(StructuredTracer, NowIsZeroWithoutTimeSource) {
  Tracer tracer;
  EXPECT_EQ(tracer.now(), 0.0);
  EXPECT_EQ(tracer.time_source(), nullptr);
}

TEST(StructuredTracer, UsesInstalledTimeSource) {
  Tracer tracer;
  FakeTimeSource src;
  src.t = 1.5;
  tracer.set_time_source(&src, TimeSourceKind::kGlobalClock);
  EXPECT_EQ(tracer.now(), 1.5);
  EXPECT_EQ(tracer.time_source_kind(), TimeSourceKind::kGlobalClock);
  tracer.record_instant(0, Category::kApp, "tick");
  const auto events = tracer.merged_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts, 1.5);
  EXPECT_TRUE(events[0].instant());
  EXPECT_EQ(events[0].source, TimeSourceKind::kGlobalClock);
}

TEST(StructuredTracer, InvalidRingCapacityThrows) {
  EXPECT_THROW(Tracer(0), std::invalid_argument);
}

TEST(StructuredTracer, RingOverflowDropsOldestOnly) {
  Tracer tracer(4);
  for (int i = 0; i < 6; ++i) {
    tracer.record_complete(0, Category::kApp, "e", static_cast<double>(i), 0.1);
  }
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto events = tracer.merged_events();
  ASSERT_EQ(events.size(), 4u);
  // The two oldest events (ts 0, 1) were overwritten.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].ts, static_cast<double>(i + 2));
  }
}

TEST(StructuredTracer, RingsArePerRank) {
  Tracer tracer(2);
  tracer.record_complete(0, Category::kApp, "a", 0.0, 0.1);
  tracer.record_complete(0, Category::kApp, "b", 1.0, 0.1);
  tracer.record_complete(5, Category::kApp, "c", 2.0, 0.1);  // rank gap is fine
  EXPECT_EQ(tracer.dropped(), 0u);  // rank 0 exactly full, rank 5 has room
  EXPECT_EQ(tracer.merged_events().size(), 3u);
}

TEST(StructuredTracer, MergeOrdersByTimestampThenSequence) {
  Tracer tracer;
  // Same timestamp on three ranks: record order must break the tie.
  tracer.record_complete(2, Category::kApp, "second", 1.0, 0.1);
  tracer.record_complete(0, Category::kApp, "third", 1.0, 0.1);
  tracer.record_complete(1, Category::kApp, "first", 0.5, 0.1);
  const auto events = tracer.merged_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "first");
  EXPECT_STREQ(events[1].name, "second");
  EXPECT_STREQ(events[2].name, "third");
  EXPECT_LT(events[1].seq, events[2].seq);
}

TEST(StructuredTracer, NegativeDurationClampedToZero) {
  Tracer tracer;
  tracer.record_complete(0, Category::kApp, "e", 1.0, -0.5);
  const auto events = tracer.merged_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].dur, 0.0);     // clamped, so it is still a span ...
  EXPECT_FALSE(events[0].instant());  // ... not reinterpreted as an instant
}

TEST(StructuredTracer, ClearResetsEverything) {
  Tracer tracer(1);
  tracer.record_instant(0, Category::kApp, "a");
  tracer.record_instant(0, Category::kApp, "b");
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.merged_events().empty());
}

TEST(StructuredTracer, EnumNames) {
  EXPECT_STREQ(to_string(Category::kSync), "sync");
  EXPECT_STREQ(to_string(Category::kNet), "net");
  EXPECT_STREQ(to_string(TimeSourceKind::kSimTime), "sim");
  EXPECT_STREQ(to_string(TimeSourceKind::kLocalClock), "local");
}

TEST(StructuredTracer, AbsorbAppendsInRecordOrderAndResequences) {
  Tracer parent, trial;
  parent.record_complete(0, Category::kApp, "p0", 0.0, 0.1);
  trial.record_complete(1, Category::kSync, "t0", 5.0, 0.2, 7);
  trial.record_complete(0, Category::kApp, "t1", 3.0, 0.1);
  parent.absorb(trial);
  EXPECT_EQ(parent.recorded(), 3u);
  const auto events = parent.merged_events();
  ASSERT_EQ(events.size(), 3u);
  // Absorbed events keep rank/ts/arg but get fresh sequence numbers, so the
  // merged stream orders them as if the parent had just recorded them.
  EXPECT_STREQ(events[0].name, "p0");
  EXPECT_STREQ(events[1].name, "t1");
  EXPECT_STREQ(events[2].name, "t0");
  EXPECT_EQ(events[2].rank, 1);
  EXPECT_EQ(events[2].arg, 7);
  EXPECT_EQ(events[2].cat, Category::kSync);
  EXPECT_LT(events[0].seq, events[2].seq);
}

TEST(StructuredTracer, AbsorbInTrialOrderMatchesSequentialRecording) {
  // The TrialRunner merge contract: recording trials A then B into one
  // tracer must equal recording each into its own tracer and absorbing
  // A then B.
  auto record_trial = [](Tracer& t, int trial) {
    const double base = static_cast<double>(trial);
    t.record_complete(trial, Category::kBench, "sync", base + 0.25, 0.5);
    t.record_instant(trial, Category::kBench, "done", trial);
  };
  Tracer sequential;
  record_trial(sequential, 0);
  record_trial(sequential, 1);

  Tracer parent, trial0, trial1;
  record_trial(trial0, 0);
  record_trial(trial1, 1);
  parent.absorb(trial0);
  parent.absorb(trial1);

  const auto expected = sequential.merged_events();
  const auto merged = parent.merged_events();
  ASSERT_EQ(merged.size(), expected.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_STREQ(merged[i].name, expected[i].name);
    EXPECT_EQ(merged[i].rank, expected[i].rank);
    EXPECT_EQ(merged[i].ts, expected[i].ts);
    EXPECT_EQ(merged[i].seq, expected[i].seq);
  }
}

TEST(StructuredTracer, AbsorbRespectsRingCapacity) {
  Tracer parent(2), trial(8);
  for (int i = 0; i < 6; ++i) {
    trial.record_complete(0, Category::kApp, "e", static_cast<double>(i), 0.1);
  }
  parent.absorb(trial);
  EXPECT_EQ(parent.dropped(), 4u);
  const auto events = parent.merged_events();
  ASSERT_EQ(events.size(), 2u);  // the newest two survive
  EXPECT_DOUBLE_EQ(events[0].ts, 4.0);
  EXPECT_DOUBLE_EQ(events[1].ts, 5.0);
}

TEST(TracerThreadScope, InstallIsPerThread) {
  Tracer tracer;
  const ScopedTracer install(&tracer);
  ASSERT_EQ(active_tracer(), &tracer);
  Tracer* seen_on_other_thread = &tracer;  // sentinel: must be overwritten
  std::thread([&] { seen_on_other_thread = active_tracer(); }).join();
  EXPECT_EQ(seen_on_other_thread, nullptr);
  EXPECT_EQ(active_tracer(), &tracer);
}

TEST(ScopedTracerInstall, RestoresPreviousTracer) {
  ASSERT_EQ(active_tracer(), nullptr);
  Tracer outer, inner;
  {
    const ScopedTracer a(&outer);
    EXPECT_EQ(active_tracer(), &outer);
    {
      const ScopedTracer b(&inner);
      EXPECT_EQ(active_tracer(), &inner);
    }
    EXPECT_EQ(active_tracer(), &outer);
  }
  EXPECT_EQ(active_tracer(), nullptr);
}

TEST(SpanTest, RecordsIntervalOnDestruction) {
  Tracer tracer;
  FakeTimeSource src;
  tracer.set_time_source(&src);
  {
    const Span span(&tracer, Category::kSync, 3, "work", 42);
    src.t = 2.0;  // time passes inside the scope
  }
  const auto events = tracer.merged_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "work");
  EXPECT_EQ(events[0].ts, 0.0);
  EXPECT_EQ(events[0].dur, 2.0);
  EXPECT_EQ(events[0].rank, 3);
  EXPECT_EQ(events[0].arg, 42);
  EXPECT_EQ(events[0].cat, Category::kSync);
}

TEST(SpanTest, NullTracerIsInert) {
  const Span span(nullptr, Category::kApp, 0, "ignored");
  // Nothing to assert beyond "does not crash / does not touch a tracer".
  SUCCEED();
}

TEST(SpanMacros, NoOpWithoutInstalledTracer) {
  ASSERT_EQ(active_tracer(), nullptr);
  {
    HCS_TRACE_SCOPE(App, 0, "scope_without_tracer", 1);
    HCS_TRACE_INSTANT(App, 0, "instant_without_tracer");
  }
  SUCCEED();
}

TEST(SpanMacros, RecordIntoInstalledTracer) {
  Tracer tracer;
  FakeTimeSource src;
  tracer.set_time_source(&src);
  {
    const ScopedTracer install(&tracer);
    {
      HCS_TRACE_SCOPE(Coll, 1, "macro_span", 7);
      src.t = 1.0;
      HCS_TRACE_INSTANT(Sync, 2, "macro_instant", 9);
    }
  }
  const auto events = tracer.merged_events();
  ASSERT_EQ(events.size(), 2u);
  // The span covers [0, 1] and the instant fired at ts 1, so (ts, seq) order
  // puts the span first even though the instant was recorded earlier.
  EXPECT_STREQ(events[0].name, "macro_span");
  EXPECT_EQ(events[0].rank, 1);
  EXPECT_EQ(events[0].arg, 7);
  EXPECT_EQ(events[0].dur, 1.0);
  EXPECT_STREQ(events[1].name, "macro_instant");
  EXPECT_EQ(events[1].rank, 2);
  EXPECT_EQ(events[1].arg, 9);
}

TEST(StructuredTracer, IdenticalSimRunsProduceIdenticalStreams) {
  // The determinism contract: two identical HCA3 runs under fresh tracers
  // yield byte-identical merged event streams.
  const auto run_once = [](std::vector<TraceEvent>& out) {
    Tracer tracer;
    const ScopedTracer install(&tracer);
    simmpi::World world(topology::testbox(2, 2), 17);
    world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      auto sync = clocksync::make_sync("hca3/recompute_intercept/50/skampi_offset/10");
      (void)co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    });
    out = tracer.merged_events();
  };
  std::vector<TraceEvent> first, second;
  run_once(first);
  run_once(second);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_STREQ(first[i].name, second[i].name);
    EXPECT_EQ(first[i].ts, second[i].ts);
    EXPECT_EQ(first[i].dur, second[i].dur);
    EXPECT_EQ(first[i].seq, second[i].seq);
    EXPECT_EQ(first[i].rank, second[i].rank);
    EXPECT_EQ(first[i].cat, second[i].cat);
  }
}

TEST(StructuredTracer, WorldInstallsSimTimeSource) {
  Tracer tracer;
  const ScopedTracer install(&tracer);
  {
    simmpi::World world(topology::testbox(1, 2), 3);
    EXPECT_NE(tracer.time_source(), nullptr);
    EXPECT_EQ(tracer.time_source_kind(), TimeSourceKind::kSimTime);
  }
  // World destruction must clear its dangling time source.
  EXPECT_EQ(tracer.time_source(), nullptr);
}

}  // namespace
}  // namespace hcs::trace
