#include <gtest/gtest.h>

#include "simmpi/comm.hpp"
#include "topology/presets.hpp"
#include "util/vec.hpp"

namespace hcs::simmpi {
namespace {

World make_world(int nodes = 2, int cores = 1, std::uint64_t seed = 1) {
  return World(topology::testbox(nodes, cores), seed);
}

TEST(Nonblocking, IrecvThenWaitDelivers) {
  World w = make_world();
  double got = 0;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    if (ctx.rank() == 0) {
      co_await comm.send(1, 5, util::vec(7.5));
    } else {
      RecvRequest req = comm.irecv(0, 5);
      const Message m = co_await comm.wait(std::move(req));
      got = m.data.at(0);
    }
  });
  EXPECT_EQ(got, 7.5);
}

TEST(Nonblocking, ComputeOverlapsCommunication) {
  // The receiver posts the irecv, computes for longer than the transfer
  // takes, and the subsequent wait completes (nearly) instantly.
  World w = make_world();
  sim::Time wait_cost = -1;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    if (ctx.rank() == 0) {
      co_await comm.send(1, 1, util::vec(1.0));
    } else {
      RecvRequest req = comm.irecv(0, 1);
      co_await ctx.sim().delay(1e-3);  // compute phase >> transfer time
      const sim::Time before = ctx.sim().now();
      (void)co_await comm.wait(std::move(req));
      wait_cost = ctx.sim().now() - before;
    }
  });
  // Only the receive overhead remains; the wire time was hidden.
  EXPECT_LT(wait_cost, 1e-6);
  EXPECT_GT(wait_cost, 0.0);
}

TEST(Nonblocking, WaitBlocksUntilLateSender) {
  World w = make_world();
  sim::Time recv_done = 0;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    if (ctx.rank() == 0) {
      co_await ctx.sim().delay(0.25);
      co_await comm.send(1, 2, util::vec(2.0));
    } else {
      RecvRequest req = comm.irecv(0, 2);
      (void)co_await comm.wait(std::move(req));
      recv_done = ctx.sim().now();
    }
  });
  EXPECT_GT(recv_done, 0.25);
}

TEST(Nonblocking, PostedIrecvsMatchInPostOrder) {
  // Two irecvs with the same (src, tag) must complete in posting order
  // against FIFO message arrival.
  World w = make_world();
  std::vector<double> got;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    if (ctx.rank() == 0) {
      co_await comm.send(1, 3, util::vec(1.0));
      co_await comm.send(1, 3, util::vec(2.0));
    } else {
      RecvRequest first = comm.irecv(0, 3);
      RecvRequest second = comm.irecv(0, 3);
      const Message m2 = co_await comm.wait(std::move(second));
      const Message m1 = co_await comm.wait(std::move(first));
      got = {m1.data.at(0), m2.data.at(0)};
    }
  });
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0}));
}

TEST(Nonblocking, SymmetricExchangeWithoutDeadlock) {
  // Classic head-to-head exchange: both post irecv, then send — safe even
  // though both blocking recvs first would deadlock in rendezvous MPI.
  World w = make_world();
  std::vector<double> got(2, 0.0);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    const int peer = 1 - ctx.rank();
    RecvRequest req = comm.irecv(peer, 4);
    co_await comm.send(peer, 4, util::vec(10.0 + ctx.rank()));
    const Message m = co_await comm.wait(std::move(req));
    got[static_cast<std::size_t>(ctx.rank())] = m.data.at(0);
  });
  EXPECT_EQ(got[0], 11.0);
  EXPECT_EQ(got[1], 10.0);
}

TEST(Nonblocking, IsendReturnsImmediatelyCompletesAfterOverhead) {
  World w = make_world();
  sim::Time isend_cost = -1, wait_cost = -1;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    if (ctx.rank() == 0) {
      const sim::Time t0 = ctx.sim().now();
      SendRequest req = comm.isend(1, 6, util::vec(3.0));
      isend_cost = ctx.sim().now() - t0;  // no co_await: zero simulated time
      co_await comm.wait(std::move(req));
      wait_cost = ctx.sim().now() - t0;
    } else {
      (void)co_await comm.recv(0, 6);
    }
  });
  EXPECT_EQ(isend_cost, 0.0);
  EXPECT_GT(wait_cost, 0.0);
  EXPECT_LE(wait_cost, 1e-6);  // just the send overhead
}

TEST(Nonblocking, ManyOutstandingRequests) {
  World w = make_world();
  int received = 0;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    constexpr int kN = 50;
    if (ctx.rank() == 0) {
      std::vector<SendRequest> reqs;
      for (int i = 0; i < kN; ++i) reqs.push_back(comm.isend(1, 100 + i, util::vec(i)));
      for (auto& r : reqs) co_await comm.wait(std::move(r));
    } else {
      std::vector<RecvRequest> reqs;
      for (int i = 0; i < kN; ++i) reqs.push_back(comm.irecv(0, 100 + i));
      // Wait in reverse order: completion order must not matter.
      for (int i = kN - 1; i >= 0; --i) {
        const Message m = co_await comm.wait(std::move(reqs[static_cast<std::size_t>(i)]));
        EXPECT_EQ(m.data.at(0), static_cast<double>(i));
        ++received;
      }
    }
  });
  EXPECT_EQ(received, 50);
}

TEST(Nonblocking, BlockingRecvStillMatchesAfterRefactor) {
  // p2p_recv is now irecv + wait; spot-check the blocking path end to end.
  World w = make_world(2, 2);
  double got = 0;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    if (ctx.rank() == 3) co_await comm.send(0, 9, util::vec(12.25));
    if (ctx.rank() == 0) got = (co_await comm.recv(3, 9)).data.at(0);
  });
  EXPECT_EQ(got, 12.25);
}

}  // namespace
}  // namespace hcs::simmpi
