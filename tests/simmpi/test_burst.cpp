// Tests for the ping-pong burst fast path, including its statistical
// equivalence with an explicit message-level ping-pong (DESIGN.md §4.3).
#include <gtest/gtest.h>

#include "util/vec.hpp"

#include <cmath>

#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"
#include "topology/presets.hpp"
#include "util/stats.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::simmpi {
namespace {

TEST(Burst, ProducesRequestedExchanges) {
  World w(topology::testbox(2, 1), 5);
  BurstResult client_result, ref_result;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    auto res = co_await ctx.comm_world().pingpong_burst(1 - ctx.rank(), ctx.rank() == 1, *clk, 25);
    if (ctx.rank() == 1) client_result = std::move(res);
    else ref_result = std::move(res);
  });
  EXPECT_EQ(client_result.samples.size(), 25u);
  EXPECT_EQ(ref_result.samples.size(), 25u);  // both sides observe the same schedule
}

TEST(Burst, TimestampsAreOrderedPerExchange) {
  World w(topology::testbox(2, 1), 7);
  BurstResult result;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    auto res = co_await ctx.comm_world().pingpong_burst(1 - ctx.rank(), ctx.rank() == 1, *clk, 50);
    if (ctx.rank() == 1) result = std::move(res);
  });
  for (const PingSample& s : result.samples) {
    // The client's receive strictly follows its send (same clock).
    EXPECT_GT(s.client_recv, s.client_send);
  }
}

TEST(Burst, RttConsistentWithNetworkModel) {
  const auto machine = topology::testbox(2, 1);
  World w(machine, 9);
  BurstResult result;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    auto res = co_await ctx.comm_world().pingpong_burst(1 - ctx.rank(), ctx.rank() == 1, *clk, 200);
    if (ctx.rank() == 1) result = std::move(res);
  });
  std::vector<double> rtts;
  for (const PingSample& s : result.samples) rtts.push_back(s.client_recv - s.client_send);
  // RTT >= 2 * (base one-way) + turnaround overheads.
  const double floor = 2 * machine.net.inter_node.base_latency;
  EXPECT_GT(util::min(rtts), floor);
  EXPECT_LT(util::mean(rtts), floor + 10e-6);
}

TEST(Burst, AdvancesSimulationTimeForBothSides) {
  World w(topology::testbox(2, 1), 11);
  sim::Time client_end = 0, ref_end = 0;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    co_await ctx.comm_world().pingpong_burst(1 - ctx.rank(), ctx.rank() == 1, *clk, 100);
    if (ctx.rank() == 1) client_end = ctx.sim().now();
    else ref_end = ctx.sim().now();
  });
  EXPECT_GT(client_end, 100 * 2 * 1.0e-6);  // 100 round trips
  EXPECT_GT(client_end, ref_end);           // ref finishes at its last reply
}

TEST(Burst, BackToBackBurstsWork) {
  World w(topology::testbox(2, 1), 13);
  int client_total = 0;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    for (int i = 0; i < 10; ++i) {
      auto res =
          co_await ctx.comm_world().pingpong_burst(1 - ctx.rank(), ctx.rank() == 1, *clk, 5);
      if (ctx.rank() == 1) client_total += static_cast<int>(res.samples.size());
    }
  });
  EXPECT_EQ(client_total, 50);
}

TEST(Burst, ConcurrentPairsDoNotInterfere) {
  World w(topology::testbox(2, 2), 15);  // ranks 0,1 on node 0; 2,3 on node 1
  std::vector<int> counts(4, 0);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    const int partner = ctx.rank() ^ 2;  // pairs (0,2) and (1,3)
    auto res = co_await ctx.comm_world().pingpong_burst(partner, ctx.rank() >= 2, *clk, 20);
    counts[static_cast<std::size_t>(ctx.rank())] = static_cast<int>(res.samples.size());
  });
  for (int c : counts) EXPECT_EQ(c, 20);
}

TEST(Burst, MismatchedRolesRejected) {
  World w(topology::testbox(2, 1), 17);
  w.launch([](RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    // Both claim to be the client.
    co_await ctx.comm_world().pingpong_burst(1 - ctx.rank(), true, *clk, 5);
  });
  EXPECT_THROW(w.run(), std::logic_error);
}

TEST(Burst, RefTimestampReflectsRefClockOffset) {
  // Give the two nodes' clocks wildly different offsets; t_last must live on
  // the reference's clock, so (t_last - client mid-time) ~ ref-client offset.
  auto machine = topology::testbox(2, 1);
  machine.clocks.initial_offset_abs = 50e-3;
  machine.clocks.base_skew_abs = 0.0;
  machine.clocks.skew_walk_sd = 0.0;
  machine.clocks.read_noise_sd = 0.0;
  World w(machine, 19);
  const double off0 = w.base_clock(0)->at_exact(0.0);
  const double off1 = w.base_clock(1)->at_exact(0.0);
  BurstResult result;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    auto res = co_await ctx.comm_world().pingpong_burst(1 - ctx.rank(), ctx.rank() == 1, *clk, 30);
    if (ctx.rank() == 1) result = std::move(res);
  });
  std::vector<double> observed;
  for (const PingSample& s : result.samples) {
    observed.push_back(s.ref_reply - 0.5 * (s.client_send + s.client_recv));
  }
  EXPECT_NEAR(util::median(observed), off0 - off1, 5e-6);
}

// Statistical equivalence with an explicit message-level ping-pong.
TEST(Burst, MatchesMessageLevelPingPongDistribution) {
  const auto machine = topology::testbox(2, 1);

  // Message-level RTTs.
  std::vector<double> msg_rtts;
  {
    World w(machine, 21);
    w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
      Comm& comm = ctx.comm_world();
      auto clk = ctx.base_clock();
      for (int i = 0; i < 400; ++i) {
        if (ctx.rank() == 1) {
          const double t0 = clk->now();
          co_await comm.send(0, i, util::vec(t0));
          co_await comm.recv(0, 10000 + i);
          msg_rtts.push_back(clk->now() - t0);
        } else {
          co_await comm.recv(1, i);
          co_await comm.send(1, 10000 + i, util::vec(clk->now()));
        }
      }
    });
  }

  // Burst RTTs.
  std::vector<double> burst_rtts;
  {
    World w(machine, 22);
    w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
      auto clk = ctx.base_clock();
      auto res =
          co_await ctx.comm_world().pingpong_burst(1 - ctx.rank(), ctx.rank() == 1, *clk, 400);
      if (ctx.rank() == 1) {
        for (const PingSample& s : res.samples) burst_rtts.push_back(s.client_recv - s.client_send);
      }
    });
  }

  ASSERT_EQ(msg_rtts.size(), 400u);
  ASSERT_EQ(burst_rtts.size(), 400u);
  // Means within 15% and medians within 15%: same latency model.
  EXPECT_NEAR(util::mean(burst_rtts) / util::mean(msg_rtts), 1.0, 0.15);
  EXPECT_NEAR(util::median(burst_rtts) / util::median(msg_rtts), 1.0, 0.15);
}

}  // namespace
}  // namespace hcs::simmpi
