#include <gtest/gtest.h>

#include "util/vec.hpp"

#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"

namespace hcs::simmpi {
namespace {

World make_world(int nodes = 2, int cores = 2, std::uint64_t seed = 1) {
  return World(topology::testbox(nodes, cores), seed);
}

TEST(P2P, SendRecvDeliversPayload) {
  World w = make_world();
  std::vector<double> got;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    if (ctx.rank() == 0) {
      co_await comm.send(3, 42, util::vec(1.0, 2.0, 3.0));
    } else if (ctx.rank() == 3) {
      Message m = co_await comm.recv(0, 42);
      got = m.data;
      EXPECT_EQ(m.src, 0);
    }
  });
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(P2P, TransferTakesPositiveTime) {
  World w = make_world();
  sim::Time sent = -1, received = -1;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    if (ctx.rank() == 0) {
      co_await ctx.comm_world().send(2, 1, {});
      sent = ctx.sim().now();
    } else if (ctx.rank() == 2) {
      co_await ctx.comm_world().recv(0, 1);
      received = ctx.sim().now();
    }
  });
  EXPECT_GT(sent, 0.0);       // send overhead
  EXPECT_GT(received, sent);  // wire latency + recv overhead
}

TEST(P2P, TagsKeepMessagesApart) {
  World w = make_world();
  double first = 0, second = 0;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    if (ctx.rank() == 0) {
      co_await comm.send(1, 7, util::vec(7.0));
      co_await comm.send(1, 8, util::vec(8.0));
    } else if (ctx.rank() == 1) {
      // Receive in the opposite order of sending.
      Message m8 = co_await comm.recv(0, 8);
      Message m7 = co_await comm.recv(0, 7);
      first = m8.data.at(0);
      second = m7.data.at(0);
    }
  });
  EXPECT_EQ(first, 8.0);
  EXPECT_EQ(second, 7.0);
}

TEST(P2P, SourcesKeepMessagesApart) {
  World w = make_world(2, 2);
  std::vector<double> order;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    if (ctx.rank() == 1 || ctx.rank() == 2) {
      co_await comm.send(0, 5, util::vec(static_cast<double>(ctx.rank())));
    } else if (ctx.rank() == 0) {
      Message a = co_await comm.recv(2, 5);
      Message b = co_await comm.recv(1, 5);
      order = {a.data.at(0), b.data.at(0)};
    }
  });
  EXPECT_EQ(order, (std::vector<double>{2.0, 1.0}));
}

TEST(P2P, FifoPerSourceAndTag) {
  World w = make_world();
  std::vector<double> got;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    if (ctx.rank() == 0) {
      for (int i = 0; i < 5; ++i) co_await comm.send(1, 9, util::vec(static_cast<double>(i)));
    } else if (ctx.rank() == 1) {
      co_await ctx.sim().delay(1e-3);  // let all arrive (unexpected queue)
      for (int i = 0; i < 5; ++i) {
        Message m = co_await comm.recv(0, 9);
        got.push_back(m.data.at(0));
      }
    }
  });
  EXPECT_EQ(got, (std::vector<double>{0.0, 1.0, 2.0, 3.0, 4.0}));
}

TEST(P2P, RecvBeforeSendBlocksUntilArrival) {
  World w = make_world();
  sim::Time recv_done = -1;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    if (ctx.rank() == 1) {
      Message m = co_await comm.recv(0, 3);
      recv_done = ctx.sim().now();
      EXPECT_EQ(m.data.at(0), 99.0);
    } else if (ctx.rank() == 0) {
      co_await ctx.sim().delay(0.5);
      co_await comm.send(1, 3, util::vec(99.0));
    }
  });
  EXPECT_GT(recv_done, 0.5);
}

TEST(P2P, DeadlockDetected) {
  World w = make_world();
  w.launch([](RankCtx& ctx) -> sim::Task<void> {
    if (ctx.rank() == 0) {
      co_await ctx.comm_world().recv(1, 1);  // never sent
    }
  });
  EXPECT_THROW(w.run(), std::runtime_error);
}

TEST(P2P, DeclaredBytesSlowDelivery) {
  auto timed_transfer = [](std::int64_t bytes) {
    World w(topology::testbox(2, 1), 3);
    sim::Time received = 0;
    w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
      if (ctx.rank() == 0) {
        co_await ctx.comm_world().send(1, 1, util::vec(1.0), bytes);
      } else {
        co_await ctx.comm_world().recv(0, 1);
        received = ctx.sim().now();
      }
    });
    return received;
  };
  EXPECT_GT(timed_transfer(1 << 20), timed_transfer(8));
}

TEST(P2P, ManyMessagesAllDelivered) {
  World w = make_world(2, 4);
  int received = 0;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    const int p = comm.size();
    if (ctx.rank() == 0) {
      for (int i = 0; i < 100; ++i) {
        co_await comm.send(1 + i % (p - 1), 100 + i / (p - 1), {});
      }
    } else {
      const int mine = 100 / (p - 1) + (ctx.rank() <= 100 % (p - 1) ? 1 : 0);
      for (int i = 0; i < mine; ++i) {
        co_await comm.recv(0, 100 + i);
        ++received;
      }
    }
  });
  EXPECT_EQ(received, 100);
}

TEST(P2P, WorldDeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    World w(topology::testbox(2, 2), seed);
    sim::Time done = 0;
    w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
      Comm& comm = ctx.comm_world();
      if (ctx.rank() == 0) {
        for (int i = 0; i < 20; ++i) {
          co_await comm.send(3, i, {});
          co_await comm.recv(3, 1000 + i);
        }
        done = ctx.sim().now();
      } else if (ctx.rank() == 3) {
        for (int i = 0; i < 20; ++i) {
          co_await comm.recv(0, i);
          co_await comm.send(0, 1000 + i, {});
        }
      }
    });
    return done;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace hcs::simmpi
