// Timing-shape properties of the simulated collectives: the cost model must
// respond to scale, payload and topology the way the algorithms' complexity
// says it should — these invariants are what make the figure harnesses
// meaningful.
#include <gtest/gtest.h>

#include "simmpi/collectives.hpp"
#include "topology/presets.hpp"
#include "util/vec.hpp"

namespace hcs::simmpi {
namespace {

template <typename Op>
sim::Time timed(const topology::MachineConfig& machine, std::uint64_t seed, Op op) {
  World w(machine, seed);
  sim::Time end = 0;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    co_await op(ctx);
    end = std::max(end, ctx.sim().now());
  });
  return end;
}

sim::Time barrier_time(int nodes, BarrierAlgo algo) {
  return timed(topology::testbox(nodes, 4), 3, [algo](RankCtx& ctx) -> sim::Task<void> {
    co_await barrier(ctx.comm_world(), algo);
  });
}

TEST(CollectiveTiming, LogPBarriersGrowSublinearly) {
  for (BarrierAlgo algo :
       {BarrierAlgo::kTree, BarrierAlgo::kBruck, BarrierAlgo::kRecursiveDoubling}) {
    const sim::Time t8 = barrier_time(8, algo);
    const sim::Time t32 = barrier_time(32, algo);
    EXPECT_GT(t32, t8) << to_string(algo);
    EXPECT_LT(t32, 3.0 * t8) << to_string(algo);  // ~log growth, not 4x
  }
}

TEST(CollectiveTiming, LinearAlgorithmsGrowLinearly) {
  for (BarrierAlgo algo : {BarrierAlgo::kLinear, BarrierAlgo::kDoubleRing}) {
    const sim::Time t8 = barrier_time(8, algo);
    const sim::Time t32 = barrier_time(32, algo);
    EXPECT_GT(t32, 2.5 * t8) << to_string(algo);  // ~4x ranks => ~4x time
  }
}

TEST(CollectiveTiming, TreeBarrierBeatsLinearAtScale) {
  EXPECT_LT(barrier_time(32, BarrierAlgo::kTree), barrier_time(32, BarrierAlgo::kLinear));
}

TEST(CollectiveTiming, BcastGrowsWithPayload) {
  auto bcast_time = [](std::int64_t bytes) {
    return timed(topology::testbox(8, 2), 5, [bytes](RankCtx& ctx) -> sim::Task<void> {
      (void)co_await bcast(ctx.comm_world(), util::vec(1.0), 0, BcastAlgo::kBinomial, bytes);
    });
  };
  EXPECT_GT(bcast_time(1 << 20), bcast_time(64));
}

TEST(CollectiveTiming, ScatterAllgatherBcastWinsForLargePayloads) {
  // The van-de-Geijn motivation: pipeline the payload in chunks instead of
  // sending the full buffer down every tree edge.
  auto bcast_time = [](BcastAlgo algo, std::int64_t bytes) {
    return timed(topology::testbox(16, 1), 7, [algo, bytes](RankCtx& ctx) -> sim::Task<void> {
      (void)co_await bcast(ctx.comm_world(), util::vec(1.0), 0, algo, bytes);
    });
  };
  const std::int64_t big = 4 << 20;
  EXPECT_LT(bcast_time(BcastAlgo::kScatterAllgather, big),
            bcast_time(BcastAlgo::kBinomial, big));
  // And binomial wins for tiny payloads (fewer rounds, no rotation passes).
  EXPECT_LT(bcast_time(BcastAlgo::kBinomial, 8), bcast_time(BcastAlgo::kScatterAllgather, 8));
}

TEST(CollectiveTiming, RabenseifnerBeatsRecursiveDoublingForLargePayloads) {
  auto allreduce_time = [](AllreduceAlgo algo, std::size_t n) {
    return timed(topology::testbox(16, 1), 9, [algo, n](RankCtx& ctx) -> sim::Task<void> {
      (void)co_await allreduce(ctx.comm_world(), std::vector<double>(n, 1.0), ReduceOp::kSum,
                               algo);
    });
  };
  const std::size_t big = 1 << 17;  // 1 MiB of doubles
  EXPECT_LT(allreduce_time(AllreduceAlgo::kRabenseifner, big),
            allreduce_time(AllreduceAlgo::kRecursiveDoubling, big));
}

TEST(CollectiveTiming, InterNodeSlowerThanIntraNode) {
  auto pair_time = [](const topology::MachineConfig& m, int peer) {
    return timed(m, 11, [peer](RankCtx& ctx) -> sim::Task<void> {
      Comm& comm = ctx.comm_world();
      if (ctx.rank() == 0) {
        co_await comm.send(peer, 1, util::vec(1.0));
        (void)co_await comm.recv(peer, 2);
      } else if (ctx.rank() == peer) {
        (void)co_await comm.recv(0, 1);
        co_await comm.send(0, 2, util::vec(1.0));
      }
    });
  };
  const auto machine = topology::testbox(2, 2);  // ranks 0,1 node 0; 2,3 node 1
  EXPECT_LT(pair_time(machine, 1), pair_time(machine, 2));
}

TEST(CollectiveTiming, NicContentionSlowsSynchronizedBursts) {
  // Identical machine and traffic; only the per-node NIC serialization gap
  // changes.  Bursty all-to-all traffic from fat nodes must queue.
  auto alltoall_time = [](double nic_gap) {
    auto machine = topology::testbox(2, 8);
    machine.net.nic_gap = nic_gap;
    return timed(machine, 13, [](RankCtx& ctx) -> sim::Task<void> {
      std::vector<double> buf(static_cast<std::size_t>(ctx.comm_world().size()), 1.0);
      (void)co_await alltoall(ctx.comm_world(), std::move(buf), 1);
    });
  };
  EXPECT_GT(alltoall_time(0.5e-6), 1.5 * alltoall_time(0.0));
}

TEST(CollectiveTiming, DeterministicAcrossRuns) {
  EXPECT_EQ(barrier_time(8, BarrierAlgo::kBruck), barrier_time(8, BarrierAlgo::kBruck));
}

}  // namespace
}  // namespace hcs::simmpi
