#include "simmpi/collectives.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "topology/presets.hpp"
#include "util/vec.hpp"

namespace hcs::simmpi {
namespace {

std::vector<std::pair<int, int>> shapes() {
  return {{1, 1}, {1, 2}, {2, 2}, {2, 3}, {3, 5}, {4, 4}};
}

class ReduceScatterTest
    : public ::testing::TestWithParam<std::tuple<std::pair<int, int>, ReduceScatterAlgo>> {};

TEST_P(ReduceScatterTest, EachRankGetsItsReducedChunk) {
  const auto [shape, algo] = GetParam();
  World w(topology::testbox(shape.first, shape.second), 7);
  const int p = w.size();
  std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    // Rank r contributes value (r + 1) * (j + 1) for chunk j's two slots.
    std::vector<double> data(static_cast<std::size_t>(2 * p));
    for (int j = 0; j < p; ++j) {
      data[static_cast<std::size_t>(2 * j)] = (ctx.rank() + 1) * (j + 1);
      data[static_cast<std::size_t>(2 * j + 1)] = ctx.rank();
    }
    got[static_cast<std::size_t>(ctx.rank())] =
        co_await reduce_scatter(ctx.comm_world(), std::move(data), 2, ReduceOp::kSum, algo);
  });
  const double rank_sum = static_cast<double>(p) * (p + 1) / 2.0;  // sum of (r+1)
  const double rank_sum0 = static_cast<double>(p) * (p - 1) / 2.0;  // sum of r
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(), 2u) << "rank " << r;
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)][0], rank_sum * (r + 1)) << "rank " << r;
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)][1], rank_sum0) << "rank " << r;
  }
}

TEST_P(ReduceScatterTest, MinOp) {
  const auto [shape, algo] = GetParam();
  World w(topology::testbox(shape.first, shape.second), 9);
  const int p = w.size();
  std::vector<double> mine_at_last;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    std::vector<double> data(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) {
      data[static_cast<std::size_t>(j)] = 100.0 - ctx.rank() + j;
    }
    auto out = co_await reduce_scatter(ctx.comm_world(), std::move(data), 1, ReduceOp::kMin, algo);
    if (ctx.rank() == p - 1) mine_at_last = std::move(out);
  });
  // min over r of (100 - r + j) at j = p-1 is 100 - (p-1) + (p-1) = 100.
  ASSERT_EQ(mine_at_last.size(), 1u);
  EXPECT_DOUBLE_EQ(mine_at_last[0], 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllShapes, ReduceScatterTest,
    ::testing::Combine(::testing::ValuesIn(shapes()),
                       ::testing::Values(ReduceScatterAlgo::kRing,
                                         ReduceScatterAlgo::kReduceThenScatter)));

TEST(ReduceScatterErrors, WrongBufferSizeRejected) {
  World w(topology::testbox(1, 2), 3);
  w.launch([](RankCtx& ctx) -> sim::Task<void> {
    (void)co_await reduce_scatter(ctx.comm_world(), util::vec(1.0), 1, ReduceOp::kSum);
  });
  EXPECT_THROW(w.run(), std::invalid_argument);
}

class ScanTest : public ::testing::TestWithParam<std::tuple<std::pair<int, int>, ScanAlgo>> {};

TEST_P(ScanTest, InclusivePrefixSum) {
  const auto [shape, algo] = GetParam();
  World w(topology::testbox(shape.first, shape.second), 11);
  const int p = w.size();
  std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    got[static_cast<std::size_t>(ctx.rank())] = co_await scan(
        ctx.comm_world(), util::vec(ctx.rank() + 1.0, 1.0), ReduceOp::kSum, algo);
  });
  for (int r = 0; r < p; ++r) {
    const double prefix = static_cast<double>(r + 1) * (r + 2) / 2.0;  // 1+2+..+(r+1)
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(), 2u);
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)][0], prefix) << "rank " << r;
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)][1], r + 1.0) << "rank " << r;
  }
}

TEST_P(ScanTest, MaxOpPrefix) {
  const auto [shape, algo] = GetParam();
  World w(topology::testbox(shape.first, shape.second), 13);
  const int p = w.size();
  std::vector<double> got(static_cast<std::size_t>(p));
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    // Values zig-zag; prefix max at rank r is max over 0..r.
    const double x = (ctx.rank() % 2 == 0) ? ctx.rank() : -ctx.rank();
    const auto out = co_await scan(ctx.comm_world(), util::vec(x), ReduceOp::kMax, algo);
    got[static_cast<std::size_t>(ctx.rank())] = out.at(0);
  });
  double running = -1e9;
  for (int r = 0; r < p; ++r) {
    running = std::max(running, (r % 2 == 0) ? static_cast<double>(r) : -static_cast<double>(r));
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)], running) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllShapes, ScanTest,
    ::testing::Combine(::testing::ValuesIn(shapes()),
                       ::testing::Values(ScanAlgo::kLinear, ScanAlgo::kRecursiveDoubling)));

TEST(ScanTiming, RecursiveDoublingFasterThanLinearAtScale) {
  auto timed = [](ScanAlgo algo) {
    World w(topology::testbox(16, 4), 17);
    sim::Time end = 0;
    w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
      (void)co_await scan(ctx.comm_world(), util::vec(1.0), ReduceOp::kSum, algo);
      end = std::max(end, ctx.sim().now());
    });
    return end;
  };
  EXPECT_LT(timed(ScanAlgo::kRecursiveDoubling), timed(ScanAlgo::kLinear));
}

}  // namespace
}  // namespace hcs::simmpi
