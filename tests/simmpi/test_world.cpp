// World-level semantics: rank contexts, clock sharing, launch/run lifecycle,
// plus a randomized soak test of the transport (no message loss, per-flow
// FIFO, determinism under load).
#include <gtest/gtest.h>

#include <map>

#include "simmpi/comm.hpp"
#include "topology/presets.hpp"
#include "util/vec.hpp"

namespace hcs::simmpi {
namespace {

TEST(World, SizeMatchesTopology) {
  World w(topology::testbox(3, 4), 1);
  EXPECT_EQ(w.size(), 12);
  EXPECT_EQ(w.machine().name, "Testbox");
}

TEST(World, RanksOnSameNodeShareHardwareClock) {
  World w(topology::testbox(2, 3), 1);  // per-node time source
  EXPECT_EQ(w.base_clock(0).get(), w.base_clock(2).get());
  EXPECT_NE(w.base_clock(0).get(), w.base_clock(3).get());
}

TEST(World, PerCoreScopeGivesDistinctClocks) {
  auto m = topology::testbox(1, 4).with_time_source(topology::TimeSourceScope::kPerCore);
  World w(m, 1);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_NE(w.base_clock(a).get(), w.base_clock(b).get());
    }
  }
}

TEST(World, CtxExposesRankAndWorldComm) {
  World w(topology::testbox(1, 3), 1);
  for (int r = 0; r < 3; ++r) {
    RankCtx& ctx = w.ctx(r);
    EXPECT_EQ(ctx.rank(), r);
    EXPECT_EQ(ctx.comm_world().rank(), r);
    EXPECT_EQ(ctx.comm_world().size(), 3);
    EXPECT_EQ(&ctx.world(), &w);
  }
}

TEST(World, RunAllCompletesAllProcesses) {
  World w(topology::testbox(2, 2), 1);
  int completed = 0;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    co_await ctx.sim().delay(1e-6 * (ctx.rank() + 1));
    ++completed;
  });
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(w.sim().processes_finished(), w.sim().processes_spawned());
}

TEST(World, EventBudgetSurfacesFromRun) {
  World w(topology::testbox(1, 1), 1);
  w.launch([](RankCtx& ctx) -> sim::Task<void> {
    for (;;) co_await ctx.sim().delay(1e-9);
  });
  EXPECT_THROW(w.run(500), std::runtime_error);
}

// Randomized soak: every rank fires a random schedule of messages at random
// peers; every message must arrive exactly once, in per-(src,tag) FIFO order.
TEST(World, RandomTrafficSoak) {
  World w(topology::testbox(3, 3), 99);
  const int p = w.size();
  constexpr int kPerRank = 120;
  // expected[dst][src] = number of messages.
  std::vector<std::vector<int>> sent(static_cast<std::size_t>(p),
                                     std::vector<int>(static_cast<std::size_t>(p), 0));
  // Precompute the schedule deterministically so senders and receivers agree.
  sim::Rng plan(1234);
  std::vector<std::vector<int>> targets(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (int i = 0; i < kPerRank; ++i) {
      int dst = static_cast<int>(plan.uniform_index(static_cast<std::uint64_t>(p - 1)));
      if (dst >= r) ++dst;  // never self
      targets[static_cast<std::size_t>(r)].push_back(dst);
      ++sent[static_cast<std::size_t>(dst)][static_cast<std::size_t>(r)];
    }
  }
  std::vector<std::vector<double>> received_seqs(static_cast<std::size_t>(p * p));
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm& comm = ctx.comm_world();
    const int me = ctx.rank();
    // Post all my irecvs up front (tag = source rank).
    std::vector<std::vector<RecvRequest>> reqs(static_cast<std::size_t>(p));
    for (int src = 0; src < p; ++src) {
      for (int i = 0; i < sent[static_cast<std::size_t>(me)][static_cast<std::size_t>(src)];
           ++i) {
        reqs[static_cast<std::size_t>(src)].push_back(comm.irecv(src, src));
      }
    }
    // Fire my sends with random gaps; payload carries a per-flow sequence no.
    std::map<int, int> seq;
    for (int dst : targets[static_cast<std::size_t>(me)]) {
      co_await ctx.sim().delay(ctx.sim().rng().exponential(2e-6));
      co_await comm.send(dst, me, util::vec(static_cast<double>(seq[dst]++)));
    }
    // Drain.
    for (int src = 0; src < p; ++src) {
      for (auto& req : reqs[static_cast<std::size_t>(src)]) {
        const Message m = co_await comm.wait(std::move(req));
        received_seqs[static_cast<std::size_t>(me * p + src)].push_back(m.data.at(0));
      }
    }
  });
  // Exactly-once, FIFO per flow.
  for (int dst = 0; dst < p; ++dst) {
    for (int src = 0; src < p; ++src) {
      const auto& seqs = received_seqs[static_cast<std::size_t>(dst * p + src)];
      ASSERT_EQ(static_cast<int>(seqs.size()),
                sent[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)]);
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        EXPECT_DOUBLE_EQ(seqs[i], static_cast<double>(i)) << "flow " << src << "->" << dst;
      }
    }
  }
}

TEST(World, SoakIsDeterministic) {
  auto run_once = [] {
    World w(topology::testbox(2, 2), 77);
    sim::Time end = 0;
    w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
      Comm& comm = ctx.comm_world();
      const int p = comm.size();
      for (int i = 0; i < 40; ++i) {
        const int dist = 1 + i % (p - 1);
        const int right = (ctx.rank() + dist) % p;
        const int left = (ctx.rank() - dist + p) % p;
        RecvRequest req = comm.irecv(left, i);
        co_await comm.send(right, i, util::vec(1.0));
        (void)co_await comm.wait(std::move(req));
        co_await ctx.sim().delay(ctx.sim().rng().exponential(1e-6));
      }
      end = std::max(end, ctx.sim().now());
    });
    return std::make_pair(end, w.sim().events_processed());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hcs::simmpi
