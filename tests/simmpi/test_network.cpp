#include "simmpi/network.hpp"

#include <gtest/gtest.h>

#include "topology/presets.hpp"

namespace hcs::simmpi {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  topology::MachineConfig machine_ = topology::testbox(2, 4);  // 2 nodes x 4 cores
  NetworkModel net_{machine_.topo, machine_.net, 7};
};

TEST_F(NetworkTest, ClassifiesLevels) {
  EXPECT_EQ(net_.classify(0, 1), LinkLevel::kIntraSocket);  // 1 socket/node
  EXPECT_EQ(net_.classify(0, 4), LinkLevel::kInterNode);
  const auto two_socket = topology::jupiter();
  NetworkModel net2(two_socket.topo, two_socket.net, 7);
  EXPECT_EQ(net2.classify(0, 7), LinkLevel::kIntraSocket);
  EXPECT_EQ(net2.classify(0, 8), LinkLevel::kIntraNode);   // other socket
  EXPECT_EQ(net2.classify(0, 16), LinkLevel::kInterNode);  // next node
}

TEST_F(NetworkTest, DelayAtLeastBasePlusSerialization) {
  for (int i = 0; i < 1000; ++i) {
    const double d = net_.sample_delay(LinkLevel::kInterNode, 1024);
    EXPECT_GE(d, machine_.net.inter_node.base_latency +
                     machine_.net.inter_node.per_byte * 1024);
  }
}

TEST_F(NetworkTest, LargerMessagesTakeLonger) {
  const double small = net_.expected_delay(LinkLevel::kInterNode, 8);
  const double large = net_.expected_delay(LinkLevel::kInterNode, 1 << 20);
  EXPECT_GT(large, small);
}

TEST_F(NetworkTest, LevelsOrderedByLatency) {
  EXPECT_LT(net_.expected_delay(LinkLevel::kIntraSocket, 8),
            net_.expected_delay(LinkLevel::kIntraNode, 8));
  EXPECT_LT(net_.expected_delay(LinkLevel::kIntraNode, 8),
            net_.expected_delay(LinkLevel::kInterNode, 8));
}

TEST_F(NetworkTest, JitterProducesVariance) {
  double first = net_.sample_delay(LinkLevel::kInterNode, 8);
  bool varied = false;
  for (int i = 0; i < 100; ++i) {
    if (net_.sample_delay(LinkLevel::kInterNode, 8) != first) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST_F(NetworkTest, NicGapSerializesBackToBackEgress) {
  // Two messages handed to the NIC at the same instant must depart at least
  // nic_gap apart, so the second one arrives later on average.
  const double t1 = net_.deliver_time(0, 4, 8, 1.0);
  const double t2 = net_.deliver_time(0, 5, 8, 1.0);
  EXPECT_GE(t2, 1.0 + machine_.net.nic_gap);
  (void)t1;
}

TEST_F(NetworkTest, IntraNodeBypassesNic) {
  // Saturate node 0's egress...
  for (int i = 0; i < 50; ++i) net_.deliver_time(0, 4, 8, 2.0);
  // ...then an intra-node message at the same instant is unaffected.
  const double t = net_.deliver_time(0, 1, 8, 2.0);
  EXPECT_LT(t, 2.0 + 10 * machine_.net.intra_socket.base_latency);
}

TEST_F(NetworkTest, UncontendedIgnoresNicState) {
  for (int i = 0; i < 50; ++i) net_.deliver_time(0, 4, 8, 3.0);
  const double t = net_.deliver_time_uncontended(0, 4, 8, 3.0);
  // Bounded by base + serialization + a generous jitter allowance.
  EXPECT_LT(t, 3.0 + machine_.net.inter_node.base_latency + 1e-6);
}

TEST_F(NetworkTest, SpikesOccurAtConfiguredRate) {
  auto cfg = machine_;
  cfg.net.inter_node.spike_prob = 0.5;
  cfg.net.inter_node.spike_mean = 100e-6;
  NetworkModel spiky(cfg.topo, cfg.net, 11);
  int spikes = 0;
  const int n = 2000;
  // Base delay stays near 1 us; a spike adds Exp(100 us), so >3 us detects a
  // spike with probability ~0.97 and false-positives are negligible.
  for (int i = 0; i < n; ++i) {
    if (spiky.sample_delay(LinkLevel::kInterNode, 8) > 3e-6) ++spikes;
  }
  EXPECT_NEAR(static_cast<double>(spikes) / n, 0.5 * 0.97, 0.05);
}

TEST_F(NetworkTest, ExpectedDelayIncludesSpikeContribution) {
  auto cfg = machine_;
  cfg.net.inter_node.spike_prob = 0.1;
  cfg.net.inter_node.spike_mean = 50e-6;
  NetworkModel spiky(cfg.topo, cfg.net, 13);
  EXPECT_NEAR(spiky.expected_delay(LinkLevel::kInterNode, 0) -
                  net_.expected_delay(LinkLevel::kInterNode, 0),
              0.1 * 50e-6, 1e-9);
}

}  // namespace
}  // namespace hcs::simmpi
