#include "simmpi/collectives.hpp"

#include <gtest/gtest.h>

#include "util/vec.hpp"

#include <numeric>
#include <tuple>
#include <vector>

#include "topology/presets.hpp"

namespace hcs::simmpi {
namespace {

// Communicator sizes chosen to cover powers of two, odd sizes, primes and a
// single rank; node/core splits vary so collectives cross every link level.
std::vector<std::pair<int, int>> shapes() {
  return {{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {3, 1}, {4, 4}, {3, 5}, {4, 8}};
}

class CollectiveShapes : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  int world_size() const { return GetParam().first * GetParam().second; }
  World make() const { return World(topology::testbox(GetParam().first, GetParam().second), 17); }
};

// ----------------------------------------------------------------- barrier --

class BarrierTest
    : public ::testing::TestWithParam<std::tuple<std::pair<int, int>, BarrierAlgo>> {};

TEST_P(BarrierTest, CompletesAndActuallySynchronizes) {
  const auto [shape, algo] = GetParam();
  World w(topology::testbox(shape.first, shape.second), 23);
  const int p = w.size();
  std::vector<sim::Time> enter(static_cast<std::size_t>(p)), exit(static_cast<std::size_t>(p));
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    // Stagger arrivals so the barrier has real work to do.
    co_await ctx.sim().delay(0.001 * ctx.rank());
    enter[static_cast<std::size_t>(ctx.rank())] = ctx.sim().now();
    co_await barrier(ctx.comm_world(), algo);
    exit[static_cast<std::size_t>(ctx.rank())] = ctx.sim().now();
  });
  // Barrier property: nobody exits before the last process entered.
  const sim::Time last_enter = *std::max_element(enter.begin(), enter.end());
  for (int r = 0; r < p; ++r) {
    EXPECT_GE(exit[static_cast<std::size_t>(r)], last_enter) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllShapes, BarrierTest,
    ::testing::Combine(::testing::ValuesIn(shapes()),
                       ::testing::Values(BarrierAlgo::kLinear, BarrierAlgo::kTree,
                                         BarrierAlgo::kDoubleRing, BarrierAlgo::kBruck,
                                         BarrierAlgo::kRecursiveDoubling)));

// ------------------------------------------------------------------- bcast --

class BcastTest : public ::testing::TestWithParam<std::tuple<std::pair<int, int>, BcastAlgo, int>> {
};

TEST_P(BcastTest, EveryRankReceivesRootPayload) {
  const auto [shape, algo, root_sel] = GetParam();
  World w(topology::testbox(shape.first, shape.second), 29);
  const int p = w.size();
  const int root = root_sel % p;
  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  w.run_all([&, root](RankCtx& ctx) -> sim::Task<void> {
    std::vector<double> data;
    if (ctx.rank() == root) data = {3.14, 2.71, static_cast<double>(root)};
    results[static_cast<std::size_t>(ctx.rank())] =
        co_await bcast(ctx.comm_world(), std::move(data), root, algo);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)],
              (std::vector<double>{3.14, 2.71, static_cast<double>(root)}))
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllShapes, BcastTest,
    ::testing::Combine(::testing::ValuesIn(shapes()),
                       ::testing::Values(BcastAlgo::kBinomial, BcastAlgo::kLinear,
                                         BcastAlgo::kChain, BcastAlgo::kScatterAllgather),
                       ::testing::Values(0, 1)));

// --------------------------------------------------------------- reduce ----

class ReduceTest
    : public ::testing::TestWithParam<std::tuple<std::pair<int, int>, ReduceAlgo, ReduceOp>> {};

TEST_P(ReduceTest, RootGetsElementwiseResult) {
  const auto [shape, algo, op] = GetParam();
  World w(topology::testbox(shape.first, shape.second), 31);
  const int p = w.size();
  std::vector<double> at_root;
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    const double r = static_cast<double>(ctx.rank());
    std::vector<double> out =
        co_await reduce(ctx.comm_world(), util::vec(r, -r, 1.0), op, 0, algo);
    if (ctx.rank() == 0) at_root = std::move(out);
  });
  ASSERT_EQ(at_root.size(), 3u);
  switch (op) {
    case ReduceOp::kSum: {
      const double s = static_cast<double>(p) * (p - 1) / 2.0;
      EXPECT_DOUBLE_EQ(at_root[0], s);
      EXPECT_DOUBLE_EQ(at_root[1], -s);
      EXPECT_DOUBLE_EQ(at_root[2], static_cast<double>(p));
      break;
    }
    case ReduceOp::kMin:
      EXPECT_DOUBLE_EQ(at_root[0], 0.0);
      EXPECT_DOUBLE_EQ(at_root[1], -static_cast<double>(p - 1));
      break;
    case ReduceOp::kMax:
      EXPECT_DOUBLE_EQ(at_root[0], static_cast<double>(p - 1));
      EXPECT_DOUBLE_EQ(at_root[1], 0.0);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllShapes, ReduceTest,
    ::testing::Combine(::testing::ValuesIn(shapes()),
                       ::testing::Values(ReduceAlgo::kBinomial, ReduceAlgo::kLinear),
                       ::testing::Values(ReduceOp::kSum, ReduceOp::kMin, ReduceOp::kMax)));

// -------------------------------------------------------------- allreduce --

class AllreduceTest
    : public ::testing::TestWithParam<std::tuple<std::pair<int, int>, AllreduceAlgo>> {};

TEST_P(AllreduceTest, EveryRankGetsSum) {
  const auto [shape, algo] = GetParam();
  World w(topology::testbox(shape.first, shape.second), 37);
  const int p = w.size();
  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    const double r = static_cast<double>(ctx.rank());
    results[static_cast<std::size_t>(ctx.rank())] =
        co_await allreduce(ctx.comm_world(), util::vec(1.0, r), ReduceOp::kSum, algo);
  });
  const double s = static_cast<double>(p) * (p - 1) / 2.0;
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(results[static_cast<std::size_t>(r)].size(), 2u);
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)][0], static_cast<double>(p));
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)][1], s);
  }
}

TEST_P(AllreduceTest, MaxOpWorks) {
  const auto [shape, algo] = GetParam();
  World w(topology::testbox(shape.first, shape.second), 41);
  const int p = w.size();
  std::vector<double> mins(static_cast<std::size_t>(p), 1e9);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    const double r = static_cast<double>(ctx.rank());
    const auto out = co_await allreduce(ctx.comm_world(), util::vec(r), ReduceOp::kMax, algo);
    mins[static_cast<std::size_t>(ctx.rank())] = out.at(0);
  });
  for (double v : mins) EXPECT_DOUBLE_EQ(v, static_cast<double>(p - 1));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllShapes, AllreduceTest,
    ::testing::Combine(::testing::ValuesIn(shapes()),
                       ::testing::Values(AllreduceAlgo::kRecursiveDoubling, AllreduceAlgo::kRing,
                                         AllreduceAlgo::kReduceBcast,
                                         AllreduceAlgo::kRabenseifner)));

// ------------------------------------------------- gather/scatter/allgather --

class GatherScatterTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GatherScatterTest, GatherLinearAndBinomialAgree) {
  for (GatherAlgo algo : {GatherAlgo::kLinear, GatherAlgo::kBinomial}) {
    World w(topology::testbox(GetParam().first, GetParam().second), 43);
    const int p = w.size();
    std::vector<double> at_root;
    w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
      const double r = static_cast<double>(ctx.rank());
      auto out = co_await gather(ctx.comm_world(), util::vec(r, 10.0 * r), 0, algo);
      if (ctx.rank() == 0) at_root = std::move(out);
    });
    ASSERT_EQ(at_root.size(), static_cast<std::size_t>(2 * p));
    for (int r = 0; r < p; ++r) {
      EXPECT_DOUBLE_EQ(at_root[static_cast<std::size_t>(2 * r)], r);
      EXPECT_DOUBLE_EQ(at_root[static_cast<std::size_t>(2 * r + 1)], 10.0 * r);
    }
  }
}

TEST_P(GatherScatterTest, GatherToNonzeroRoot) {
  World w(topology::testbox(GetParam().first, GetParam().second), 47);
  const int p = w.size();
  const int root = (p > 1) ? 1 : 0;
  std::vector<double> at_root;
  w.run_all([&, root](RankCtx& ctx) -> sim::Task<void> {
    auto out = co_await gather(ctx.comm_world(), util::vec(static_cast<double>(ctx.rank())), root,
                               GatherAlgo::kBinomial);
    if (ctx.rank() == root) at_root = std::move(out);
  });
  ASSERT_EQ(at_root.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) EXPECT_DOUBLE_EQ(at_root[static_cast<std::size_t>(r)], r);
}

TEST_P(GatherScatterTest, ScatterDistributesChunks) {
  for (ScatterAlgo algo : {ScatterAlgo::kLinear, ScatterAlgo::kBinomial}) {
    World w(topology::testbox(GetParam().first, GetParam().second), 53);
    const int p = w.size();
    const int root = (p > 2) ? 2 : 0;
    std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
    w.run_all([&, root](RankCtx& ctx) -> sim::Task<void> {
      std::vector<double> all;
      if (ctx.rank() == root) {
        all.resize(static_cast<std::size_t>(2 * p));
        std::iota(all.begin(), all.end(), 0.0);
      }
      got[static_cast<std::size_t>(ctx.rank())] =
          co_await scatter(ctx.comm_world(), std::move(all), 2, root, algo);
    });
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)],
                (std::vector<double>{2.0 * r, 2.0 * r + 1}))
          << "algo=" << static_cast<int>(algo) << " rank " << r;
    }
  }
}

TEST_P(GatherScatterTest, AllgatherBothAlgorithms) {
  for (AllgatherAlgo algo : {AllgatherAlgo::kBruck, AllgatherAlgo::kRing}) {
    World w(topology::testbox(GetParam().first, GetParam().second), 59);
    const int p = w.size();
    std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
    w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
      got[static_cast<std::size_t>(ctx.rank())] =
          co_await allgather(ctx.comm_world(), util::vec(100 + ctx.rank()), algo);
    });
    for (int r = 0; r < p; ++r) {
      ASSERT_EQ(got[static_cast<std::size_t>(r)].size(), static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)], 100 + i);
      }
    }
  }
}

TEST_P(GatherScatterTest, AlltoallTransposesBlocks) {
  World w(topology::testbox(GetParam().first, GetParam().second), 61);
  const int p = w.size();
  std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    std::vector<double> sendbuf(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) {
      sendbuf[static_cast<std::size_t>(j)] = 100.0 * ctx.rank() + j;
    }
    got[static_cast<std::size_t>(ctx.rank())] =
        co_await alltoall(ctx.comm_world(), std::move(sendbuf), 1);
  });
  for (int r = 0; r < p; ++r) {
    for (int j = 0; j < p; ++j) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)],
                       100.0 * j + r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GatherScatterTest, ::testing::ValuesIn(shapes()));

// ------------------------------------------------------------ error paths --

TEST(CollectiveErrors, BadRootRejected) {
  World w(topology::testbox(1, 2), 3);
  w.launch([](RankCtx& ctx) -> sim::Task<void> {
    // hcs-lint: allow-next-line(coll-rank-branch) — the mismatch is the test
    if (ctx.rank() == 0) {
      co_await bcast(ctx.comm_world(), util::vec(1.0), 5);
    }
  });
  EXPECT_THROW(w.run(), std::invalid_argument);
}

TEST(CollectiveErrors, MismatchedReductionLengths) {
  World w(topology::testbox(1, 2), 3);
  w.launch([](RankCtx& ctx) -> sim::Task<void> {
    std::vector<double> mine(ctx.rank() == 0 ? 2 : 3, 1.0);
    co_await allreduce(ctx.comm_world(), std::move(mine), ReduceOp::kSum,
                       AllreduceAlgo::kRecursiveDoubling);
  });
  EXPECT_THROW(w.run(), std::invalid_argument);
}

}  // namespace
}  // namespace hcs::simmpi
