#include <gtest/gtest.h>

#include "util/vec.hpp"

#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"
#include "topology/presets.hpp"

namespace hcs::simmpi {
namespace {

TEST(CommSplit, EvenOddSplit) {
  World w(topology::testbox(2, 3), 7);  // 6 ranks
  std::vector<int> sizes(6), ranks(6);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm sub = co_await ctx.comm_world().split(ctx.rank() % 2, ctx.rank());
    sizes[static_cast<std::size_t>(ctx.rank())] = sub.size();
    ranks[static_cast<std::size_t>(ctx.rank())] = sub.rank();
  });
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(sizes[static_cast<std::size_t>(r)], 3);
    EXPECT_EQ(ranks[static_cast<std::size_t>(r)], r / 2);
  }
}

TEST(CommSplit, KeyOrdersNewRanks) {
  World w(topology::testbox(1, 4), 7);
  std::vector<int> new_rank(4);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    // Reverse order: highest key to rank 0 ... lowest key gets highest rank.
    Comm sub = co_await ctx.comm_world().split(0, -ctx.rank());
    new_rank[static_cast<std::size_t>(ctx.rank())] = sub.rank();
  });
  EXPECT_EQ(new_rank, (std::vector<int>{3, 2, 1, 0}));
}

TEST(CommSplit, UndefinedColorYieldsInvalidComm) {
  World w(topology::testbox(1, 4), 7);
  std::vector<bool> valid(4, true);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    const int color = (ctx.rank() == 0) ? 0 : Comm::kUndefined;
    Comm sub = co_await ctx.comm_world().split(color, 0);
    valid[static_cast<std::size_t>(ctx.rank())] = sub.valid();
  });
  EXPECT_TRUE(valid[0]);
  EXPECT_FALSE(valid[1]);
  EXPECT_FALSE(valid[2]);
  EXPECT_FALSE(valid[3]);
}

TEST(CommSplit, SharedNodeSplit) {
  World w(topology::testbox(3, 4), 7);  // 3 nodes x 4
  std::vector<int> sizes(12), local(12);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm node = co_await ctx.comm_world().split_shared_node();
    sizes[static_cast<std::size_t>(ctx.rank())] = node.size();
    local[static_cast<std::size_t>(ctx.rank())] = node.rank();
  });
  for (int r = 0; r < 12; ++r) {
    EXPECT_EQ(sizes[static_cast<std::size_t>(r)], 4);
    EXPECT_EQ(local[static_cast<std::size_t>(r)], r % 4);
  }
}

TEST(CommSplit, SharedSocketSplit) {
  topology::MachineConfig m = topology::jupiter().with_nodes(2);  // 2 x 2 x 8
  World w(m, 7);
  std::vector<int> sizes(32);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm sock = co_await ctx.comm_world().split_shared_socket();
    sizes[static_cast<std::size_t>(ctx.rank())] = sock.size();
  });
  for (int s : sizes) EXPECT_EQ(s, 8);
}

TEST(CommSplit, CollectivesWorkInsideSubcomm) {
  World w(topology::testbox(2, 4), 7);  // 8 ranks, split by node
  std::vector<double> sums(8, 0);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm node = co_await ctx.comm_world().split_shared_node();
    auto out = co_await allreduce(node, util::vec(static_cast<double>(ctx.rank())), ReduceOp::kSum,
                                  AllreduceAlgo::kRecursiveDoubling);
    sums[static_cast<std::size_t>(ctx.rank())] = out.at(0);
  });
  // Node 0: ranks 0..3 sum to 6; node 1: ranks 4..7 sum to 22.
  for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(r)], 6.0);
  for (int r = 4; r < 8; ++r) EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(r)], 22.0);
}

TEST(CommSplit, ConcurrentCollectivesOnSiblingCommsDontCrosstalk) {
  World w(topology::testbox(2, 4), 7);
  std::vector<double> results(8, 0);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm node = co_await ctx.comm_world().split_shared_node();
    // Both node communicators run a sequence of collectives concurrently.
    for (int i = 0; i < 5; ++i) {
      auto out = co_await allreduce(node, util::vec(1.0), ReduceOp::kSum);
      results[static_cast<std::size_t>(ctx.rank())] += out.at(0);
    }
  });
  for (double v : results) EXPECT_DOUBLE_EQ(v, 20.0);  // 5 rounds x 4 ranks
}

TEST(CommSplit, NestedSplit) {
  World w(topology::testbox(2, 4), 7);
  std::vector<int> leader_comm_size(8, -1);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm node = co_await ctx.comm_world().split_shared_node();
    // Leaders-only communicator, built from the world comm (Alg. 4 pattern).
    const int color = (node.rank() == 0) ? 0 : Comm::kUndefined;
    Comm leaders = co_await ctx.comm_world().split(color, ctx.rank());
    if (leaders.valid()) {
      leader_comm_size[static_cast<std::size_t>(ctx.rank())] = leaders.size();
    }
  });
  EXPECT_EQ(leader_comm_size[0], 2);
  EXPECT_EQ(leader_comm_size[4], 2);
  EXPECT_EQ(leader_comm_size[1], -1);
}

TEST(CommSplit, WorldRankMappingPreserved) {
  World w(topology::testbox(2, 2), 7);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    Comm node = co_await ctx.comm_world().split_shared_node();
    EXPECT_EQ(node.my_world_rank(), ctx.rank());
    EXPECT_EQ(node.world_rank(node.rank()), ctx.rank());
  });
}

}  // namespace
}  // namespace hcs::simmpi
