#include "clocksync/fitting.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"

namespace hcs::clocksync {
namespace {

TEST(Fitting, ExactLineRecovered) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(0.1 * i);
    y.push_back(3e-6 * (0.1 * i) + 5e-6);
  }
  const FitResult fit = fit_linear_model(x, y);
  EXPECT_NEAR(fit.model.slope, 3e-6, 1e-15);
  EXPECT_NEAR(fit.model.intercept, 5e-6, 1e-15);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Fitting, TwoPointsExact) {
  const std::vector<double> x = {1.0, 3.0};
  const std::vector<double> y = {2.0, 8.0};
  const FitResult fit = fit_linear_model(x, y);
  EXPECT_DOUBLE_EQ(fit.model.slope, 3.0);
  EXPECT_DOUBLE_EQ(fit.model.intercept, -1.0);
}

TEST(Fitting, NoisyLineApproximatelyRecovered) {
  sim::Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    const double t = 0.001 * i;
    x.push_back(t);
    y.push_back(1.2e-6 * t - 3e-6 + rng.normal(0.0, 50e-9));
  }
  const FitResult fit = fit_linear_model(x, y);
  EXPECT_NEAR(fit.model.slope, 1.2e-6, 0.2e-6);
  EXPECT_NEAR(fit.model.intercept, -3e-6, 0.2e-6);
}

TEST(Fitting, PpmSlopeOnSecondScaleTimestampsKeepsPrecision) {
  // Timestamps around 100 s with a 1 ppm slope: the regression must not lose
  // the microsecond-scale structure (centering inside fit_linear_model).
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    const double t = 100.0 + 0.01 * i;
    x.push_back(t);
    y.push_back(1e-6 * t + 7e-6);
  }
  const FitResult fit = fit_linear_model(x, y);
  EXPECT_NEAR(fit.model.slope, 1e-6, 1e-12);
  EXPECT_NEAR(fit.model.apply(100.5) - 100.5, 1e-6 * 100.5 + 7e-6, 1e-12);
}

TEST(Fitting, ConstantYGivesZeroSlope) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {4.0, 4.0, 4.0};
  const FitResult fit = fit_linear_model(x, y);
  EXPECT_DOUBLE_EQ(fit.model.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.model.intercept, 4.0);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);  // zero residual
}

TEST(Fitting, DegenerateXFallsBackToConstantOffset) {
  const std::vector<double> x = {2.0, 2.0, 2.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const FitResult fit = fit_linear_model(x, y);
  EXPECT_DOUBLE_EQ(fit.model.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.model.intercept, 2.0);
}

TEST(Fitting, RejectsMismatchedAndShortInputs) {
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW(fit_linear_model(one, two), std::invalid_argument);
  EXPECT_THROW(fit_linear_model(one, one), std::invalid_argument);
}

TEST(Fitting, R2LowForUncorrelatedData) {
  sim::Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  const FitResult fit = fit_linear_model(x, y);
  EXPECT_LT(fit.r2, 0.05);
}

}  // namespace
}  // namespace hcs::clocksync
