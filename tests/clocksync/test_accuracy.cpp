#include "clocksync/accuracy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "clocksync/factory.hpp"
#include "clocksync/skampi_offset.hpp"
#include "topology/presets.hpp"
#include "vclock/hardware_clock.hpp"

namespace hcs::clocksync {
namespace {

TEST(SampleClients, FullFractionReturnsAllOthers) {
  const auto clients = sample_clients(6, 0, 1.0, 7);
  EXPECT_EQ(clients, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(SampleClients, ExcludesNonzeroRef) {
  const auto clients = sample_clients(4, 2, 1.0, 7);
  EXPECT_EQ(clients, (std::vector<int>{0, 1, 3}));
}

TEST(SampleClients, FractionSubsamplesDeterministically) {
  const auto a = sample_clients(1000, 0, 0.1, 42);
  const auto b = sample_clients(1000, 0, 0.1, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 100u);  // 10% of 999 rounds to 100
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  const auto c = sample_clients(1000, 0, 0.1, 43);
  EXPECT_NE(a, c);
}

TEST(SampleClients, AtLeastOneClient) {
  const auto clients = sample_clients(2, 0, 1e-9, 7);
  EXPECT_EQ(clients.size(), 1u);
}

TEST(CheckClockAccuracy, PerfectlySyncedClocksShowSmallResidual) {
  // All ranks on one node share the hardware clock => residual ~ noise only.
  simmpi::World w(topology::testbox(1, 4), 3);
  AccuracyResult result;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    SKaMPIOffset oalg(20);
    const auto clients = sample_clients(ctx.comm_world().size(), 0, 1.0, 1);
    const AccuracyResult r =
        co_await check_clock_accuracy(ctx.comm_world(), *clk, oalg, 0.5, clients, 0);
    if (ctx.rank() == 0) result = r;
  });
  ASSERT_EQ(result.offsets_t0.size(), 3u);
  ASSERT_EQ(result.offsets_t1.size(), 3u);
  EXPECT_LT(result.max_abs_t0, 1e-6);
  EXPECT_LT(result.max_abs_t1, 1e-6);
}

TEST(CheckClockAccuracy, UnsyncedClocksShowTheirOffset) {
  auto machine = topology::testbox(2, 1);
  machine.clocks.initial_offset_abs = 5e-3;
  machine.clocks.base_skew_abs = 0.0;
  machine.clocks.skew_walk_sd = 0.0;
  simmpi::World w(machine, 11);
  const double truth =
      w.base_clock(0)->at_exact(0.0) - w.base_clock(1)->at_exact(0.0);
  AccuracyResult result;
  const std::vector<int> one_client = {1};
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    SKaMPIOffset oalg(20);
    const AccuracyResult r =
        co_await check_clock_accuracy(ctx.comm_world(), *clk, oalg, 0.1, one_client, 0);
    if (ctx.rank() == 0) result = r;
  });
  EXPECT_NEAR(result.offsets_t0.at(0), truth, 3e-6);
  EXPECT_NEAR(result.max_abs_t0, std::abs(truth), 3e-6);
}

TEST(CheckClockAccuracy, DriftGrowsBetweenT0AndT1) {
  // Strong uncorrected skew: after 2 s the offset must have grown.
  auto machine = topology::testbox(2, 1);
  machine.clocks.initial_offset_abs = 0.0;
  machine.clocks.base_skew_abs = 50e-6;  // 50 ppm
  machine.clocks.skew_walk_sd = 0.0;
  simmpi::World w(machine, 13);
  const auto hw0 = std::dynamic_pointer_cast<vclock::HardwareClock>(w.base_clock(0));
  const auto hw1 = std::dynamic_pointer_cast<vclock::HardwareClock>(w.base_clock(1));
  const double skew_diff = std::abs(hw0->base_skew() - hw1->base_skew());
  AccuracyResult result;
  const std::vector<int> one_client = {1};
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    SKaMPIOffset oalg(10);
    const AccuracyResult r =
        co_await check_clock_accuracy(ctx.comm_world(), *clk, oalg, 2.0, one_client, 0);
    if (ctx.rank() == 0) result = r;
  });
  const double growth = std::abs(result.offsets_t1.at(0) - result.offsets_t0.at(0));
  EXPECT_NEAR(growth, skew_diff * 2.0, skew_diff);
  EXPECT_GT(growth, 1e-6);
}

TEST(CheckClockAccuracy, SampledSubsetOnly) {
  simmpi::World w(topology::testbox(1, 6), 17);
  AccuracyResult result;
  const std::vector<int> clients = {2, 4};
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    SKaMPIOffset oalg(5);
    const AccuracyResult r =
        co_await check_clock_accuracy(ctx.comm_world(), *clk, oalg, 0.01, clients, 0);
    if (ctx.rank() == 0) result = r;
  });
  EXPECT_EQ(result.clients, clients);
  EXPECT_EQ(result.offsets_t0.size(), 2u);
}

TEST(CheckClockAccuracy, AfterHca3SyncResidualIsMicrosecondScale) {
  // Integration: full sync + accuracy check as the bench harnesses do it.
  auto machine = topology::testbox(4, 2);
  simmpi::World w(machine, 19);
  AccuracyResult result;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = make_sync("hca3/recompute_intercept/100/skampi_offset/20");
    const vclock::ClockPtr g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    SKaMPIOffset oalg(20);
    const auto clients = sample_clients(ctx.comm_world().size(), 0, 1.0, 1);
    const AccuracyResult r =
        co_await check_clock_accuracy(ctx.comm_world(), *g, oalg, 1.0, clients, 0);
    if (ctx.rank() == 0) result = r;
  });
  EXPECT_LT(result.max_abs_t0, 3e-6);
  EXPECT_LT(result.max_abs_t1, 10e-6);
  EXPECT_GT(result.max_abs_t0, 0.0);  // never exactly zero with noise
}

}  // namespace
}  // namespace hcs::clocksync
