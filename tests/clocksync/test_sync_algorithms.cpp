// End-to-end accuracy tests for the synchronization algorithm family:
// after sync_clocks, all ranks' global clocks must agree to within a small
// error, for every algorithm, on power-of-two and odd world sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "clocksync/factory.hpp"
#include "topology/presets.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {
namespace {

topology::MachineConfig machine(int nodes, int cores) {
  auto m = topology::testbox(nodes, cores);
  m.clocks.initial_offset_abs = 5e-3;
  m.clocks.base_skew_abs = 2e-6;
  m.clocks.skew_walk_sd = 0.005e-6;
  return m;
}

/// Runs `label` on the machine and returns, for each rank, the deviation of
/// its global clock from rank 0's global clock, probed `probe_after` seconds
/// after the sync completes (using noiseless clock evaluation).
std::vector<double> residuals(const std::string& label, int nodes, int cores,
                              double probe_after, std::uint64_t seed) {
  simmpi::World w(machine(nodes, cores), seed);
  const int p = w.size();
  std::vector<vclock::ClockPtr> clocks(static_cast<std::size_t>(p));
  sim::Time sync_end = 0.0;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = make_sync(label);
    clocks[static_cast<std::size_t>(ctx.rank())] =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    sync_end = std::max(sync_end, ctx.sim().now());
  });
  const double t = sync_end + probe_after;
  std::vector<double> out;
  const double ref = clocks[0]->at_exact(t);
  for (int r = 1; r < p; ++r) {
    out.push_back(clocks[static_cast<std::size_t>(r)]->at_exact(t) - ref);
  }
  return out;
}

double max_abs(const std::vector<double>& xs) {
  double m = 0;
  for (double x : xs) m = std::max(m, std::abs(x));
  return m;
}

// Note on tolerances: these unit tests run deliberately small configs
// (50-100 fit points over a few-millisecond window), so the fitted slope is
// far noisier than the paper's 1000-point production configs — the 5 s
// tolerance reflects slope_error x 5 s, not the paper's accuracy numbers
// (those are reproduced by the bench harnesses at full scale).
struct Case {
  std::string label;
  double tol_at_0;   // tolerated max offset right after sync
  double tol_at_5;   // tolerated max offset 5 s later
};

class SyncAlgoTest : public ::testing::TestWithParam<std::tuple<Case, std::pair<int, int>>> {};

TEST_P(SyncAlgoTest, GlobalClocksAgree) {
  const auto& [c, shape] = GetParam();
  const auto r0 = residuals(c.label, shape.first, shape.second, 0.0, 42);
  EXPECT_LT(max_abs(r0), c.tol_at_0) << c.label << " right after sync";
  const auto r5 = residuals(c.label, shape.first, shape.second, 5.0, 42);
  EXPECT_LT(max_abs(r5), c.tol_at_5) << c.label << " 5 s after sync";
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, SyncAlgoTest,
    ::testing::Combine(
        ::testing::Values(
            Case{"hca3/recompute_intercept/100/skampi_offset/20", 2e-6, 60e-6},
            Case{"hca3/100/skampi_offset/20", 3e-6, 60e-6},
            Case{"hca2/recompute_intercept/100/skampi_offset/20", 3e-6, 80e-6},
            Case{"hca/100/skampi_offset/20", 3e-6, 80e-6},
            Case{"jk/100/skampi_offset/10", 3e-6, 100e-6},
            Case{"jk/100/mean_rtt_offset/10", 5e-6, 120e-6},
            Case{"top/hca3/100/skampi_offset/20/bottom/clockpropagation", 2e-6, 60e-6},
            Case{"top/hca3/recompute_intercept/100/skampi_offset/20/bottom/"
                 "hca3/recompute_intercept/50/skampi_offset/10",
                 3e-6, 120e-6}),
        ::testing::Values(std::pair<int, int>{4, 4}, std::pair<int, int>{3, 5},
                          std::pair<int, int>{8, 2})));

TEST(SyncAlgorithms, SingleRankIsIdentity) {
  simmpi::World w(machine(1, 1), 3);
  vclock::ClockPtr out;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = make_sync("hca3/10/skampi_offset/5");
    out = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
  });
  ASSERT_TRUE(out != nullptr);
  // Identity wrapper over the base clock.
  EXPECT_DOUBLE_EQ(out->at_exact(1.0), w.base_clock(0)->at_exact(1.0));
}

TEST(SyncAlgorithms, TwoRanks) {
  const auto r = residuals("hca3/50/skampi_offset/20", 2, 1, 0.0, 9);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_LT(std::abs(r[0]), 2e-6);
}

TEST(SyncAlgorithms, Hca3BeatsNoSyncByOrdersOfMagnitude) {
  // Baseline: raw clocks disagree by milliseconds (initial offsets).
  simmpi::World w(machine(4, 2), 11);
  const double raw =
      std::abs(w.base_clock(0)->at_exact(1.0) - w.base_clock(4 * 2 - 1)->at_exact(1.0));
  const auto synced = residuals("hca3/100/skampi_offset/20", 4, 2, 0.0, 11);
  EXPECT_GT(raw, 1e-4);
  EXPECT_LT(max_abs(synced), raw / 100.0);
}

TEST(SyncAlgorithms, RecomputeInterceptImprovesHca2) {
  // Property from the paper: re-anchoring the intercept after the fit should
  // not hurt, and usually helps, the immediate accuracy.  Compare averages
  // over several seeds to keep the test robust.
  double with = 0, without = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    with += max_abs(residuals("hca2/recompute_intercept/50/skampi_offset/10", 4, 2, 0.0, seed));
    without += max_abs(residuals("hca2/50/skampi_offset/10", 4, 2, 0.0, seed));
  }
  EXPECT_LT(with, without * 1.5);  // at minimum: not catastrophically worse
}

TEST(SyncAlgorithms, JkDurationGrowsLinearlyHca3Logarithmically) {
  auto duration = [&](const std::string& label, int nodes) {
    simmpi::World w(machine(nodes, 1), 5);
    sim::Time end = 0;
    w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      auto sync = make_sync(label);
      (void)co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
      end = std::max(end, ctx.sim().now());
    });
    return end;
  };
  const double jk8 = duration("jk/20/skampi_offset/10", 8);
  const double jk16 = duration("jk/20/skampi_offset/10", 16);
  const double hca3_8 = duration("hca3/20/skampi_offset/10", 8);
  const double hca3_16 = duration("hca3/20/skampi_offset/10", 16);
  EXPECT_NEAR(jk16 / jk8, 16.0 / 8.0, 0.4);        // O(p)
  EXPECT_NEAR(hca3_16 / hca3_8, 4.0 / 3.0, 0.35);  // O(log p)
  EXPECT_LT(hca3_16, jk16);
}

}  // namespace
}  // namespace hcs::clocksync
