#include "clocksync/hierarchical.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "clocksync/clock_prop.hpp"
#include "clocksync/factory.hpp"
#include "clocksync/hca3.hpp"
#include "clocksync/skampi_offset.hpp"
#include "topology/presets.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {
namespace {

std::unique_ptr<ClockSync> h2_label_instance() {
  return make_sync("top/hca3/recompute_intercept/50/skampi_offset/20/bottom/clockpropagation");
}

double max_residual(simmpi::World& w, const std::function<std::unique_ptr<ClockSync>()>& make,
                    double probe_after) {
  const int p = w.size();
  std::vector<vclock::ClockPtr> clocks(static_cast<std::size_t>(p));
  sim::Time end = 0;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = make();
    clocks[static_cast<std::size_t>(ctx.rank())] =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    end = std::max(end, ctx.sim().now());
  });
  double worst = 0;
  for (int r = 1; r < p; ++r) {
    worst = std::max(worst, std::abs(clocks[static_cast<std::size_t>(r)]->at_exact(
                                end + probe_after) -
                            clocks[0]->at_exact(end + probe_after)));
  }
  return worst;
}

TEST(Hierarchical, H2SynchronizesWholeMachine) {
  simmpi::World w(topology::testbox(4, 4), 5);
  EXPECT_LT(max_residual(w, h2_label_instance, 0.0), 2e-6);
}

TEST(Hierarchical, H2StillAccurateAfterTenSeconds) {
  // 50 fit points over a ~2 ms window gives a noisy slope; 10 s of that
  // slope error still stays well below 150 us (cf. tolerance note in
  // test_sync_algorithms.cpp; the benches reproduce the paper's numbers).
  simmpi::World w(topology::testbox(4, 4), 7);
  EXPECT_LT(max_residual(w, h2_label_instance, 10.0), 150e-6);
}

TEST(Hierarchical, H2WithinNodeClocksIdentical) {
  // ClockPropSync copies the leader's chain: non-leader ranks of one node
  // must agree with their leader EXACTLY (same time source, same models).
  simmpi::World w(topology::testbox(3, 4), 9);
  std::vector<vclock::ClockPtr> clocks(12);
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = h2_label_instance();
    clocks[static_cast<std::size_t>(ctx.rank())] =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
  });
  for (int node = 0; node < 3; ++node) {
    const int leader = node * 4;
    for (int r = leader + 1; r < leader + 4; ++r) {
      EXPECT_NEAR(clocks[static_cast<std::size_t>(r)]->at_exact(3.0),
                  clocks[static_cast<std::size_t>(leader)]->at_exact(3.0), 1e-15)
          << "node " << node << " rank " << r;
    }
  }
}

TEST(Hierarchical, H3WithSocketLevel) {
  // 2 nodes x 2 sockets x 4 cores; per-socket time sources make the socket
  // level meaningful and keep ClockPropSync valid only within a socket.
  auto machine = topology::jupiter().with_nodes(2).with_time_source(
      topology::TimeSourceScope::kPerSocket);
  simmpi::World w(machine, 11);
  auto make = [] {
    return make_h3hca(
        std::make_unique<HCA3Sync>(SyncConfig{50, true}, std::make_unique<SKaMPIOffset>(20)),
        std::make_unique<HCA3Sync>(SyncConfig{30, true}, std::make_unique<SKaMPIOffset>(10)),
        std::make_unique<ClockPropSync>());
  };
  EXPECT_LT(max_residual(w, make, 0.0), 3e-6);
}

TEST(Hierarchical, H2FasterThanFlatOnMultiNodeMachine) {
  // The headline claim of §IV: fewer models to fit => shorter sync time.
  auto duration = [&](const std::string& label) {
    simmpi::World w(topology::testbox(8, 8), 13);
    sim::Time end = 0;
    w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      auto sync = make_sync(label);
      (void)co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
      end = std::max(end, ctx.sim().now());
    });
    return end;
  };
  const double flat = duration("hca3/recompute_intercept/100/skampi_offset/20");
  const double hier =
      duration("top/hca3/recompute_intercept/100/skampi_offset/20/bottom/clockpropagation");
  EXPECT_LT(hier, flat);
}

TEST(Hierarchical, SingleNodeDegeneratesToBottomOnly) {
  simmpi::World w(topology::testbox(1, 4), 15);
  EXPECT_LT(max_residual(w, h2_label_instance, 0.0), 1e-6);
}

TEST(Hierarchical, OneRankPerNodeDegeneratesToTopOnly) {
  simmpi::World w(topology::testbox(4, 1), 17);
  EXPECT_LT(max_residual(w, h2_label_instance, 0.0), 2e-6);
}

TEST(Hierarchical, NameListsLevels) {
  EXPECT_EQ(h2_label_instance()->name(),
            "Top/hca3/recompute_intercept/50/skampi_offset/20/Bottom/ClockPropagation");
  auto h3 = make_h3hca(
      std::make_unique<HCA3Sync>(SyncConfig{10, false}, std::make_unique<SKaMPIOffset>(5)),
      std::make_unique<HCA3Sync>(SyncConfig{10, false}, std::make_unique<SKaMPIOffset>(5)),
      std::make_unique<ClockPropSync>());
  EXPECT_NE(h3->name().find("Mid/hca3"), std::string::npos);
}

TEST(Hierarchical, NullLevelRejected) {
  EXPECT_THROW(HierarchicalSync(nullptr, nullptr, std::make_unique<ClockPropSync>()),
               std::invalid_argument);
}

}  // namespace
}  // namespace hcs::clocksync
