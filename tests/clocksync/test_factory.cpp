#include "clocksync/factory.hpp"

#include <gtest/gtest.h>

namespace hcs::clocksync {
namespace {

TEST(Factory, FlatLabelsRoundTrip) {
  for (const std::string label : {
           "hca3/recompute_intercept/1000/skampi_offset/100",
           "hca2/recompute_intercept/1000/skampi_offset/100",
           "hca/1000/skampi_offset/100",
           "jk/1000/skampi_offset/20",
           "jk/500/mean_rtt_offset/20",
           "hca3/500/skampi_offset/100",
       }) {
    const auto sync = make_sync(label);
    ASSERT_NE(sync, nullptr) << label;
    EXPECT_EQ(sync->name(), label) << "canonical label should round-trip";
  }
}

TEST(Factory, PaperStylePunctuationAccepted) {
  // The paper's plot labels use mixed case, dashes and spaces.
  const auto sync = make_sync("HCA3/recompute_intercept/1000/SKaMPI-Offset/100");
  EXPECT_EQ(sync->name(), "hca3/recompute_intercept/1000/skampi_offset/100");
  const auto jk = make_sync("jk/1000/skampi offset/20");
  EXPECT_EQ(jk->name(), "jk/1000/skampi_offset/20");
}

TEST(Factory, HierarchicalTwoLevel) {
  const auto sync = make_sync("Top/hca3/1000/SKaMPI-Offset/100/Bottom/ClockPropagation");
  ASSERT_NE(sync, nullptr);
  EXPECT_EQ(sync->name(), "Top/hca3/1000/skampi_offset/100/Bottom/ClockPropagation");
}

TEST(Factory, HierarchicalThreeLevel) {
  const auto sync = make_sync(
      "top/hca3/500/skampi_offset/50/mid/hca3/100/skampi_offset/20/bottom/clockpropagation");
  ASSERT_NE(sync, nullptr);
  EXPECT_NE(sync->name().find("Mid/"), std::string::npos);
}

TEST(Factory, HierarchicalWithFlatBottom) {
  const auto sync =
      make_sync("top/hca3/100/skampi_offset/20/bottom/hca2/50/skampi_offset/10");
  ASSERT_NE(sync, nullptr);
}

TEST(Factory, RejectsMalformedLabels) {
  EXPECT_THROW(make_sync(""), std::invalid_argument);
  EXPECT_THROW(make_sync("nosuch/100/skampi_offset/10"), std::invalid_argument);
  EXPECT_THROW(make_sync("hca3/100/skampi_offset"), std::invalid_argument);      // missing count
  EXPECT_THROW(make_sync("hca3/abc/skampi_offset/10"), std::invalid_argument);   // bad int
  EXPECT_THROW(make_sync("hca3/0/skampi_offset/10"), std::invalid_argument);     // zero points
  EXPECT_THROW(make_sync("hca3/100/badoffset/10"), std::invalid_argument);
  EXPECT_THROW(make_sync("top/hca3/100/skampi_offset/10"), std::invalid_argument);  // no bottom
  EXPECT_THROW(make_sync("hca3/100/skampi_offset/10/extra"), std::invalid_argument);
}

TEST(Factory, OffsetAlgorithmFactory) {
  EXPECT_EQ(make_offset_algorithm("skampi_offset", 5)->name(), "skampi_offset");
  EXPECT_EQ(make_offset_algorithm("SKaMPI-Offset", 5)->name(), "skampi_offset");
  EXPECT_EQ(make_offset_algorithm("Mean-RTT-Offset", 5)->name(), "mean_rtt_offset");
  EXPECT_THROW(make_offset_algorithm("ntp", 5), std::invalid_argument);
}

TEST(Factory, EachCallYieldsFreshInstance) {
  const auto a = make_sync("hca3/10/skampi_offset/5");
  const auto b = make_sync("hca3/10/skampi_offset/5");
  EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace hcs::clocksync
