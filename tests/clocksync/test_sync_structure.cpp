// Structural properties of the clocks each algorithm produces — the paper's
// §IV-B decorator design: flat algorithms yield exactly one model over the
// base clock; hierarchical composition nests one model per level; and
// ClockPropSync replicates the reference's chain shape on every rank.
#include <gtest/gtest.h>

#include "clocksync/factory.hpp"
#include "topology/presets.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {
namespace {

/// Number of GlobalClockLM layers above the hardware clock.
std::size_t chain_depth(const vclock::ClockPtr& clock) {
  const auto buffer = vclock::flatten_clock(clock);
  return static_cast<std::size_t>(buffer.at(0));
}

std::vector<vclock::ClockPtr> sync_all(const topology::MachineConfig& machine,
                                       const std::string& label, std::uint64_t seed) {
  simmpi::World w(machine, seed);
  std::vector<vclock::ClockPtr> clocks(static_cast<std::size_t>(w.size()));
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = make_sync(label);
    clocks[static_cast<std::size_t>(ctx.rank())] =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
  });
  return clocks;
}

TEST(SyncStructure, FlatAlgorithmsYieldSingleModelOverBase) {
  const auto machine = topology::testbox(4, 2);
  for (const std::string label :
       {"hca3/20/skampi_offset/5", "hca2/20/skampi_offset/5", "hca/20/skampi_offset/5",
        "jk/20/skampi_offset/5"}) {
    const auto clocks = sync_all(machine, label, 3);
    for (const auto& clock : clocks) {
      EXPECT_EQ(chain_depth(clock), 1u) << label;
    }
  }
}

TEST(SyncStructure, H2ClockPropGivesNodeRanksTheLeadersEffectiveModel) {
  // Non-leaders receive the leader's chain stacked on their own dummy layer,
  // so the flatten *depth* differs by one — but the collapsed model (and
  // therefore every reading) must match the leader's exactly.
  const auto machine = topology::testbox(3, 4);
  const auto clocks =
      sync_all(machine, "top/hca3/20/skampi_offset/5/bottom/clockpropagation", 5);
  for (int node = 0; node < 3; ++node) {
    const auto leader = clocks[static_cast<std::size_t>(node * 4)];
    const auto leader_lm = vclock::collapse_models(leader);
    for (int r = node * 4 + 1; r < (node + 1) * 4; ++r) {
      const auto mine = vclock::collapse_models(clocks[static_cast<std::size_t>(r)]);
      EXPECT_DOUBLE_EQ(mine.slope, leader_lm.slope) << "rank " << r;
      EXPECT_DOUBLE_EQ(mine.intercept, leader_lm.intercept) << "rank " << r;
      EXPECT_GE(chain_depth(clocks[static_cast<std::size_t>(r)]), chain_depth(leader));
      EXPECT_NEAR(clocks[static_cast<std::size_t>(r)]->at_exact(7.0), leader->at_exact(7.0),
                  1e-12)
          << "rank " << r;
    }
  }
}

TEST(SyncStructure, HierarchicalFlatBottomNestsModels) {
  // hca3-over-hca3: non-leader ranks carry (bottom model) over (leaders'
  // dummy/base), leaders carry their top model — every rank depth >= 1 and
  // at least one rank nests two real levels.
  const auto machine = topology::testbox(3, 4);
  const auto clocks = sync_all(
      machine, "top/hca3/20/skampi_offset/5/bottom/hca3/10/skampi_offset/5", 7);
  std::size_t max_depth = 0;
  for (const auto& clock : clocks) {
    const std::size_t d = chain_depth(clock);
    EXPECT_GE(d, 1u);
    max_depth = std::max(max_depth, d);
  }
  EXPECT_GE(max_depth, 2u);
}

TEST(SyncStructure, CollapsedModelEqualsNestedEvaluation) {
  const auto machine = topology::testbox(2, 3);
  const auto clocks =
      sync_all(machine, "top/hca3/20/skampi_offset/5/bottom/hca3/10/skampi_offset/5", 9);
  simmpi::World probe(machine, 9);
  for (int r = 0; r < probe.size(); ++r) {
    const auto& clock = clocks[static_cast<std::size_t>(r)];
    const vclock::LinearModel flat = vclock::collapse_models(clock);
    const double base = probe.base_clock(r)->at_exact(5.0);
    // The collapsed model applied to the base value must match the chain —
    // but only when evaluated against the SAME base readings, so compare via
    // the rebuilt chain on the probe world's identical clock path.
    const auto rebuilt = vclock::unflatten_clock(probe.base_clock(r),
                                                 vclock::flatten_clock(clock));
    EXPECT_NEAR(flat.apply(base), rebuilt->at_exact(5.0), 1e-9);
  }
}

TEST(SyncStructure, IdentityDummyForSingleRankComm) {
  const auto clocks = sync_all(topology::testbox(1, 1), "hca3/10/skampi_offset/5", 11);
  ASSERT_EQ(clocks.size(), 1u);
  EXPECT_EQ(chain_depth(clocks[0]), 1u);
  const auto buf = vclock::flatten_clock(clocks[0]);
  EXPECT_EQ(buf.at(1), 0.0);  // identity slope
  EXPECT_EQ(buf.at(2), 0.0);  // identity intercept
}

}  // namespace
}  // namespace hcs::clocksync
