// Direct tests of LEARN_CLOCK_MODEL (paper Algorithm 2).
#include "clocksync/model_learning.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "clocksync/skampi_offset.hpp"
#include "topology/presets.hpp"
#include "vclock/global_clock.hpp"
#include "vclock/hardware_clock.hpp"

namespace hcs::clocksync {
namespace {

topology::MachineConfig pair_machine(double skew_abs) {
  auto m = topology::testbox(2, 1);
  m.clocks.initial_offset_abs = 2e-3;
  m.clocks.base_skew_abs = skew_abs;
  m.clocks.skew_walk_sd = 0.0;
  return m;
}

vclock::LinearModel learn(const topology::MachineConfig& machine, const SyncConfig& cfg,
                          std::uint64_t seed, double* learn_end = nullptr) {
  simmpi::World w(machine, seed);
  vclock::LinearModel lm;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    SKaMPIOffset oalg(20);
    auto clk = vclock::GlobalClockLM::identity(ctx.base_clock());
    const LearnResult result = co_await learn_clock_model(ctx.comm_world(), 0, 1, *clk, oalg, cfg);
    if (ctx.rank() == 1) {
      lm = result.model;
      // Fault-free, a fit with >= 2 points is clean; a single point is
      // reported kFailed by design (offset-only fallback).
      if (cfg.nfitpoints >= 2) {
        EXPECT_TRUE(result.report.clean());
      }
      if (learn_end) *learn_end = ctx.sim().now();
    }
  });
  return lm;
}

TEST(ModelLearning, ReferenceSideReturnsIdentity) {
  simmpi::World w(pair_machine(1e-6), 3);
  vclock::LinearModel ref_lm{1.0, 1.0};
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    SKaMPIOffset oalg(10);
    auto clk = vclock::GlobalClockLM::identity(ctx.base_clock());
    const SyncConfig cfg{20, false};
    const auto lm = co_await learn_clock_model(ctx.comm_world(), 0, 1, *clk, oalg, cfg);
    if (ctx.rank() == 0) ref_lm = lm.model;
  });
  EXPECT_TRUE(ref_lm.is_identity());
}

TEST(ModelLearning, RecoversSkewDifference) {
  const auto machine = pair_machine(50e-6);  // exaggerated so the short fit sees it
  simmpi::World probe(machine, 5);
  const auto hw0 = std::dynamic_pointer_cast<vclock::HardwareClock>(probe.base_clock(0));
  const auto hw1 = std::dynamic_pointer_cast<vclock::HardwareClock>(probe.base_clock(1));
  // The model maps client (rank 1) time to ref (rank 0) time; its slope
  // approximates (skew0 - skew1) to first order.
  const double expected = hw0->base_skew() - hw1->base_skew();
  const vclock::LinearModel lm = learn(machine, SyncConfig{200, false}, 5);
  EXPECT_NEAR(lm.slope, expected, 5e-6);
}

TEST(ModelLearning, ModelPredictsReferenceClock) {
  const auto machine = pair_machine(5e-6);
  simmpi::World probe(machine, 7);
  double end = 0;
  const vclock::LinearModel lm = learn(machine, SyncConfig{150, false}, 7, &end);
  // Apply the model to the client's clock reading at the end of learning and
  // compare with the reference clock at the same true instant.
  const double client = probe.base_clock(1)->at_exact(end);
  const double ref = probe.base_clock(0)->at_exact(end);
  EXPECT_NEAR(lm.apply(client), ref, 2e-6);
}

TEST(ModelLearning, MoreFitPointsTightenTheSlope) {
  const auto machine = pair_machine(5e-6);
  simmpi::World probe(machine, 9);
  const auto hw0 = std::dynamic_pointer_cast<vclock::HardwareClock>(probe.base_clock(0));
  const auto hw1 = std::dynamic_pointer_cast<vclock::HardwareClock>(probe.base_clock(1));
  const double expected = hw0->base_skew() - hw1->base_skew();
  double err_small = 0, err_large = 0;
  for (std::uint64_t seed = 9; seed < 15; ++seed) {
    err_small += std::abs(learn(machine, SyncConfig{20, false}, seed).slope - expected);
    err_large += std::abs(learn(machine, SyncConfig{400, false}, seed).slope - expected);
  }
  EXPECT_LT(err_large, err_small);
}

TEST(ModelLearning, RecomputeInterceptAnchorsAtMeasurementTime) {
  // With recompute_intercept, offset(timestamp) == measured offset exactly
  // (Alg. 2: intercept = slope * (-ts) + offset), so the model's residual at
  // the end of the learning window is tiny even if the fitted intercept from
  // the regression would have been biased.
  const auto machine = pair_machine(5e-6);
  simmpi::World probe(machine, 11);
  double end = 0;
  const vclock::LinearModel lm = learn(machine, SyncConfig{100, true}, 11, &end);
  const double client = probe.base_clock(1)->at_exact(end);
  const double ref = probe.base_clock(0)->at_exact(end);
  EXPECT_NEAR(lm.apply(client), ref, 1e-6);
}

TEST(ModelLearning, SingleFitPointFallsBackToOffsetOnly) {
  const auto machine = pair_machine(1e-6);
  const vclock::LinearModel lm = learn(machine, SyncConfig{1, false}, 13);
  EXPECT_EQ(lm.slope, 0.0);
  EXPECT_NE(lm.intercept, 0.0);  // offset of milliseconds magnitude
  EXPECT_LT(std::abs(lm.intercept), 5e-3);
}

TEST(ModelLearning, NonParticipantRejected) {
  simmpi::World w(topology::testbox(3, 1), 15);
  w.launch([](simmpi::RankCtx& ctx) -> sim::Task<void> {
    if (ctx.rank() != 2) co_return;
    SKaMPIOffset oalg(5);
    auto clk = vclock::GlobalClockLM::identity(ctx.base_clock());
    const SyncConfig cfg{5, false};
    (void)co_await learn_clock_model(ctx.comm_world(), 0, 1, *clk, oalg, cfg);
  });
  EXPECT_THROW(w.run(), std::logic_error);
}

TEST(ModelLearning, DurationScalesWithWork) {
  const auto machine = pair_machine(1e-6);
  double end_small = 0, end_large = 0;
  (void)learn(machine, SyncConfig{50, false}, 17, &end_small);
  (void)learn(machine, SyncConfig{200, false}, 17, &end_large);
  EXPECT_NEAR(end_large / end_small, 4.0, 1.0);
}

}  // namespace
}  // namespace hcs::clocksync
