// Statistical acceptance tests: each synchronization algorithm, run
// fault-free over many seeds, must keep its median and p95 clock error
// within calibrated bounds.  An accuracy regression then fails ctest
// instead of only shifting bench output.
//
// The bounds were calibrated empirically on the seed configuration (20
// seeds, testbox 4x2, noiseless clock probes) and carry roughly 3x headroom
// over the observed values, so they catch order-of-magnitude regressions,
// not run-to-run noise.  SKaMPI's offset-only sync has no drift model; its
// 10 s bound is the skew envelope (up to ~2 ppm x 10 s per rank pair), which
// is exactly the degradation the HCA family exists to remove.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "clocksync/factory.hpp"
#include "sim/rng.hpp"
#include "simmpi/world.hpp"
#include "support/stats.hpp"
#include "topology/presets.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {
namespace {

constexpr std::uint64_t kBaseSeed = 1000;

// Sequential stopping rule (tests/support/stats.hpp): sweep seeds until the
// 95% CI on the 10 s-horizon error is within 25% of its mean, at least 10
// and at most 20 seeds (the historical fixed count; $HCLOCKSYNC_SEED_CAP
// raises or lowers the cap without recalibrating anything).
teststats::SweepPolicy sweep_policy() {
  teststats::SweepPolicy policy;
  policy.min_seeds = 10;
  policy.batch = 5;
  policy.max_seeds = 20;
  policy.rel_halfwidth = 0.25;
  return policy;
}

topology::MachineConfig machine() {
  auto m = topology::testbox(4, 2);  // 8 ranks, 2 per node
  m.clocks.initial_offset_abs = 5e-3;
  m.clocks.base_skew_abs = 2e-6;
  m.clocks.skew_walk_sd = 0.005e-6;
  return m;
}

/// One fault-free run of `label`: the maximum absolute deviation from rank
/// 0's global clock right after sync and `probe_after` seconds later
/// (noiseless clock evaluation), plus how many ranks reported a non-clean
/// sync (must be zero fault-free).
struct SweepPoint {
  double err_t0 = 0.0;
  double err_t1 = 0.0;
  int unhealthy_ranks = 0;
};

SweepPoint run_one(const std::string& label, double probe_after, std::uint64_t seed) {
  simmpi::World w(machine(), seed);
  const int p = w.size();
  std::vector<SyncResult> results(static_cast<std::size_t>(p));
  sim::Time sync_end = 0.0;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = make_sync(label);
    results[static_cast<std::size_t>(ctx.rank())] =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    sync_end = std::max(sync_end, ctx.sim().now());
  });
  SweepPoint point;
  for (const SyncResult& res : results) {
    if (!res.report.clean()) ++point.unhealthy_ranks;
  }
  const double ref0 = results[0].clock->at_exact(sync_end);
  const double ref1 = results[0].clock->at_exact(sync_end + probe_after);
  for (int r = 1; r < p; ++r) {
    const auto& clk = *results[static_cast<std::size_t>(r)].clock;
    point.err_t0 = std::max(point.err_t0, std::abs(clk.at_exact(sync_end) - ref0));
    point.err_t1 = std::max(point.err_t1, std::abs(clk.at_exact(sync_end + probe_after) - ref1));
  }
  return point;
}

struct Bounds {
  const char* label;
  double median_t0, p95_t0;  // seconds, right after sync
  double median_t1, p95_t1;  // seconds, 10 s after sync
};

// probe_after = 10 s for every row (the paper's Fig. 3 horizon).
// Paper-sized fit windows (nfitpoints = 1000): the slope error of a linear
// fit shrinks with the time span it covers, so short toy windows would
// drown the HCA family's drift model in fit noise at the 10 s horizon.
// Observed on the seed configuration (see the [bounds] log lines):
//   hca    0.013 / 0.024 / 1.07 / 1.77 us      jk      0.007 / 0.015 / 0.30 / 0.54 us
//   hca2   0.006 / 0.009 / 1.08 / 1.78 us      skampi  0.009 / 0.013 / 22.5 / 28.2 us
//   hca3   0.002 / 0.004 / 1.05 / 1.80 us      hlhca   0.002 / 0.004 / 0.98 / 1.65 us
constexpr Bounds kBounds[] = {
    {"hca/1000/skampi_offset/10", 0.05e-6, 0.08e-6, 3.5e-6, 6e-6},
    {"hca2/1000/skampi_offset/10", 0.02e-6, 0.03e-6, 3.5e-6, 6e-6},
    {"hca3/1000/skampi_offset/10", 0.01e-6, 0.015e-6, 3.5e-6, 6e-6},
    {"jk/1000/skampi_offset/20", 0.025e-6, 0.05e-6, 1e-6, 2e-6},
    {"skampi/skampi_offset/100", 0.03e-6, 0.05e-6, 60e-6, 80e-6},
    {"top/hca3/1000/skampi_offset/10/bottom/hca3/1000/skampi_offset/10", 0.01e-6, 0.015e-6,
     3.5e-6, 6e-6},
};

class AccuracyBounds : public ::testing::TestWithParam<Bounds> {};

TEST_P(AccuracyBounds, MedianAndP95WithinCalibratedBounds) {
  const Bounds& b = GetParam();
  // gtest assertions are not thread-safe, so the parallel sweep only
  // collects; every check happens here on the main thread.  The adaptive
  // sweep stops on the t10 error's CI (the binding statistic); side data is
  // stashed per seed under a lock because trials run concurrently.
  std::mutex mu;
  std::vector<SweepPoint> points_by_seed;
  const std::vector<double> t1s =
      teststats::adaptive_seed_sweep(kBaseSeed, /*jobs=*/0, [&](std::uint64_t seed) {
        const SweepPoint point = run_one(b.label, 10.0, seed);
        const std::lock_guard<std::mutex> lock(mu);
        const auto index = static_cast<std::size_t>(seed - kBaseSeed);
        if (points_by_seed.size() <= index) points_by_seed.resize(index + 1);
        points_by_seed[index] = point;
        return point.err_t1;
      }, sweep_policy());

  const std::size_t nseeds = t1s.size();
  ASSERT_EQ(points_by_seed.size(), nseeds);
  std::vector<double> t0s;
  int unhealthy = 0;
  for (const SweepPoint& p : points_by_seed) {
    t0s.push_back(p.err_t0);
    unhealthy += p.unhealthy_ranks;
  }
  EXPECT_EQ(unhealthy, 0) << "fault-free sync reported degraded/failed ranks";

  const double med_t0 = teststats::median(t0s);
  const double p95_t0 = teststats::percentile(t0s, 95.0);
  const double med_t1 = teststats::median(t1s);
  const double p95_t1 = teststats::percentile(t1s, 95.0);
  // Logged so recalibration after an intentional accuracy change is a
  // matter of reading the last green run, not re-deriving the sweep.
  std::cout << "[bounds] " << b.label << ": median_t0=" << med_t0 * 1e6
            << "us p95_t0=" << p95_t0 * 1e6 << "us median_t10=" << med_t1 * 1e6
            << "us p95_t10=" << p95_t1 * 1e6 << "us over " << nseeds << " seeds\n";

  EXPECT_LT(med_t0, b.median_t0) << b.label << ": median error right after sync regressed";
  EXPECT_LT(p95_t0, b.p95_t0) << b.label << ": p95 error right after sync regressed";
  EXPECT_LT(med_t1, b.median_t1) << b.label << ": median error 10 s after sync regressed";
  EXPECT_LT(p95_t1, b.p95_t1) << b.label << ": p95 error 10 s after sync regressed";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AccuracyBounds, ::testing::ValuesIn(kBounds),
                         [](const ::testing::TestParamInfo<Bounds>& info) {
                           std::string name = info.param.label;
                           std::replace_if(
                               name.begin(), name.end(),
                               [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); },
                               '_');
                           return name;
                         });

// The helpers backing the bounds above.
TEST(TestStats, NearestRankPercentile) {
  const std::vector<double> xs = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(teststats::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(teststats::percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(teststats::percentile(xs, 95.0), 5.0);
  EXPECT_DOUBLE_EQ(teststats::percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(teststats::median({1, 2, 3, 4}), 2.0);  // lower-middle, by convention
  EXPECT_THROW(teststats::percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(teststats::percentile(xs, 101.0), std::invalid_argument);
}

TEST(TestStats, SeedSweepIsDeterministicAcrossJobCounts) {
  const auto metric = [](std::uint64_t seed) {
    sim::Rng rng(seed);
    return rng.uniform();
  };
  const std::vector<double> serial = teststats::seed_sweep(16, 42, 1, metric);
  const std::vector<double> parallel = teststats::seed_sweep(16, 42, 4, metric);
  ASSERT_EQ(serial.size(), 16u);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace hcs::clocksync
