#include "clocksync/clock_prop.hpp"

#include <gtest/gtest.h>

#include "topology/presets.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {
namespace {

TEST(ClockProp, CopiesReferenceChainToAllRanks) {
  // One node, 4 cores sharing a time source: after propagation, every rank's
  // clock must match the reference's exactly (same base, same models).
  simmpi::World w(topology::testbox(1, 4), 7);
  std::vector<vclock::ClockPtr> out(4);
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    vclock::ClockPtr clk = ctx.base_clock();
    if (ctx.rank() == 0) {
      // Pretend rank 0 was synchronized: nested two-level chain.
      clk = std::make_shared<vclock::GlobalClockLM>(clk, vclock::LinearModel{1e-6, 5e-6});
      clk = std::make_shared<vclock::GlobalClockLM>(clk, vclock::LinearModel{-2e-6, 1e-6});
    }
    ClockPropSync prop(0);
    out[static_cast<std::size_t>(ctx.rank())] =
        co_await prop.sync_clocks(ctx.comm_world(), clk);
  });
  for (int r = 1; r < 4; ++r) {
    for (double t : {0.0, 2.5, 100.0}) {
      EXPECT_NEAR(out[static_cast<std::size_t>(r)]->at_exact(t), out[0]->at_exact(t), 1e-15)
          << "rank " << r << " t " << t;
    }
  }
}

TEST(ClockProp, IdentityChainPropagates) {
  simmpi::World w(topology::testbox(1, 3), 9);
  std::vector<vclock::ClockPtr> out(3);
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    ClockPropSync prop(0);
    out[static_cast<std::size_t>(ctx.rank())] =
        co_await prop.sync_clocks(ctx.comm_world(), ctx.base_clock());
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)]->at_exact(5.0),
                     w.base_clock(0)->at_exact(5.0));
  }
}

TEST(ClockProp, NonzeroReferenceRank) {
  simmpi::World w(topology::testbox(1, 4), 11);
  std::vector<vclock::ClockPtr> out(4);
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    vclock::ClockPtr clk = ctx.base_clock();
    if (ctx.rank() == 2) {
      clk = std::make_shared<vclock::GlobalClockLM>(clk, vclock::LinearModel{3e-6, -4e-6});
    }
    ClockPropSync prop(2);
    out[static_cast<std::size_t>(ctx.rank())] =
        co_await prop.sync_clocks(ctx.comm_world(), clk);
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(out[static_cast<std::size_t>(r)]->at_exact(7.0), out[2]->at_exact(7.0), 1e-15);
  }
}

TEST(ClockProp, TakesNetworkTimeProportionalToBroadcast) {
  simmpi::World w(topology::testbox(1, 8), 13);
  sim::Time end = 0;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    ClockPropSync prop(0);
    (void)co_await prop.sync_clocks(ctx.comm_world(), ctx.base_clock());
    end = std::max(end, ctx.sim().now());
  });
  EXPECT_GT(end, 0.0);
  EXPECT_LT(end, 1e-3);  // two small broadcasts, well under a millisecond
}

TEST(ClockProp, NameIsStable) {
  EXPECT_EQ(ClockPropSync().name(), "ClockPropagation");
}

}  // namespace
}  // namespace hcs::clocksync
