#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "clocksync/meanrtt_offset.hpp"
#include "clocksync/skampi_offset.hpp"
#include "topology/presets.hpp"
#include "util/stats.hpp"
#include "vclock/hardware_clock.hpp"

namespace hcs::clocksync {
namespace {

// Two single-core nodes whose clocks differ by a large static offset.
topology::MachineConfig offset_machine(double offset_abs) {
  auto m = topology::testbox(2, 1);
  m.clocks.initial_offset_abs = offset_abs;
  m.clocks.base_skew_abs = 0.0;
  m.clocks.skew_walk_sd = 0.0;
  return m;
}

double true_offset(simmpi::World& w) {
  // ref clock (rank 0) minus client clock (rank 1) at t = 0.
  return w.base_clock(0)->at_exact(0.0) - w.base_clock(1)->at_exact(0.0);
}

template <typename Alg>
ClockOffset run_measure(simmpi::World& w, Alg& alg_ref, Alg& alg_client) {
  ClockOffset measured;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    Alg& mine = ctx.rank() == 0 ? alg_ref : alg_client;
    const ClockOffset o = co_await mine.measure_offset(ctx.comm_world(), *clk, 0, 1);
    if (ctx.rank() == 1) measured = o;
  });
  return measured;
}

class OffsetParamTest : public ::testing::TestWithParam<int> {};  // nexchanges

TEST_P(OffsetParamTest, SKaMPIRecoversStaticOffset) {
  simmpi::World w(offset_machine(20e-3), 3);
  const double truth = true_offset(w);
  SKaMPIOffset a(GetParam()), b(GetParam());
  const ClockOffset o = run_measure(w, a, b);
  EXPECT_NEAR(o.offset, truth, 2e-6) << "nexchanges=" << GetParam();
  // The timestamp is a *clock value* (may be negative: initial offset), but
  // must be near the client clock's reading at the measurement instant.
  EXPECT_LT(std::abs(o.timestamp), 25e-3);
}

TEST_P(OffsetParamTest, MeanRttRecoversStaticOffset) {
  simmpi::World w(offset_machine(20e-3), 5);
  const double truth = true_offset(w);
  MeanRttOffset a(GetParam()), b(GetParam());
  const ClockOffset o = run_measure(w, a, b);
  EXPECT_NEAR(o.offset, truth, 3e-6) << "nexchanges=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Exchanges, OffsetParamTest, ::testing::Values(5, 20, 100));

TEST(OffsetAlgorithms, SKaMPIMoreRobustToJitterThanMeanRtt) {
  // With heavy asymmetric jitter, min-filtering (SKaMPI) should beat the
  // mean/median-based Mean-RTT estimator — the basis of the paper's
  // "SKaMPI-Offset inside JK" improvement (§III-C3).
  auto machine = offset_machine(10e-3);
  machine.net.inter_node.jitter_mean = 2e-6;  // strong jitter
  machine.net.inter_node.spike_prob = 0.02;
  machine.net.inter_node.spike_mean = 50e-6;

  double skampi_err_acc = 0.0, meanrtt_err_acc = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    {
      simmpi::World w(machine, 100 + t);
      const double truth = true_offset(w);
      SKaMPIOffset a(50), b(50);
      skampi_err_acc += std::abs(run_measure(w, a, b).offset - truth);
    }
    {
      simmpi::World w(machine, 100 + t);
      const double truth = true_offset(w);
      MeanRttOffset a(50), b(50);
      meanrtt_err_acc += std::abs(run_measure(w, a, b).offset - truth);
    }
  }
  EXPECT_LT(skampi_err_acc, meanrtt_err_acc);
}

TEST(OffsetAlgorithms, RepeatedMeasurementsTrackDrift) {
  // With a pure skew difference, successive offsets should grow linearly.
  auto machine = topology::testbox(2, 1);
  machine.clocks.initial_offset_abs = 0.0;
  machine.clocks.base_skew_abs = 100e-6;  // exaggerated skew: 100 ppm
  machine.clocks.skew_walk_sd = 0.0;
  simmpi::World w(machine, 17);
  const auto hw0 = std::dynamic_pointer_cast<vclock::HardwareClock>(w.base_clock(0));
  const auto hw1 = std::dynamic_pointer_cast<vclock::HardwareClock>(w.base_clock(1));
  const double skew_diff = hw0->base_skew() - hw1->base_skew();

  std::vector<double> timestamps, offsets;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    SKaMPIOffset alg(20);
    for (int i = 0; i < 10; ++i) {
      const ClockOffset o = co_await alg.measure_offset(ctx.comm_world(), *clk, 0, 1);
      if (ctx.rank() == 1) {
        timestamps.push_back(o.timestamp);
        offsets.push_back(o.offset);
      }
      co_await ctx.sim().delay(0.1);
    }
  });
  ASSERT_EQ(offsets.size(), 10u);
  const double observed_slope =
      (offsets.back() - offsets.front()) / (timestamps.back() - timestamps.front());
  EXPECT_NEAR(observed_slope, skew_diff, 10e-6);
}

TEST(OffsetAlgorithms, NonParticipantRejected) {
  simmpi::World w(topology::testbox(3, 1), 3);
  w.launch([](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    SKaMPIOffset alg(5);
    // Rank 2 is neither ref nor client.
    if (ctx.rank() == 2) {
      (void)co_await alg.measure_offset(ctx.comm_world(), *clk, 0, 1);
    }
  });
  EXPECT_THROW(w.run(), std::logic_error);
}

TEST(OffsetAlgorithms, InvalidNexchangesRejected) {
  EXPECT_THROW(SKaMPIOffset(0), std::invalid_argument);
  EXPECT_THROW(MeanRttOffset(-3), std::invalid_argument);
}

TEST(OffsetAlgorithms, CloneIsIndependentAndEquallyConfigured) {
  SKaMPIOffset orig(42);
  auto copy = orig.clone();
  EXPECT_EQ(copy->nexchanges(), 42);
  EXPECT_EQ(copy->name(), "skampi_offset");
  MeanRttOffset m(7);
  EXPECT_EQ(m.clone()->name(), "mean_rtt_offset");
}

}  // namespace
}  // namespace hcs::clocksync
