#include "clocksync/resync.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "clocksync/factory.hpp"
#include "topology/presets.hpp"

namespace hcs::clocksync {
namespace {

topology::MachineConfig drifting_machine() {
  auto m = topology::testbox(4, 2);
  m.clocks.base_skew_abs = 5e-6;     // strong 5 ppm drift
  m.clocks.skew_walk_sd = 0.05e-6;   // and a lively walk
  return m;
}

std::unique_ptr<ResyncManager> make_manager(double interval) {
  return std::make_unique<ResyncManager>(make_sync("hca3/100/skampi_offset/20"), interval);
}

TEST(Resync, RejectsBadArguments) {
  EXPECT_THROW(ResyncManager(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(ResyncManager(make_sync("hca3/10/skampi_offset/5"), 0.0),
               std::invalid_argument);
}

TEST(Resync, FirstTickSynchronizes) {
  simmpi::World w(drifting_machine(), 3);
  int resyncs = -1;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto mgr = make_manager(5.0);
    EXPECT_EQ(mgr->clock(), nullptr);
    const vclock::ClockPtr g = co_await mgr->tick(ctx.comm_world(), ctx.base_clock());
    EXPECT_NE(g, nullptr);
    if (ctx.rank() == 0) resyncs = mgr->resyncs();
  });
  EXPECT_EQ(resyncs, 1);
}

TEST(Resync, NoResyncWithinInterval) {
  simmpi::World w(drifting_machine(), 5);
  int resyncs = -1;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto mgr = make_manager(60.0);
    for (int i = 0; i < 5; ++i) {
      (void)co_await mgr->tick(ctx.comm_world(), ctx.base_clock());
      co_await ctx.sim().delay(0.1);
    }
    if (ctx.rank() == 0) resyncs = mgr->resyncs();
  });
  EXPECT_EQ(resyncs, 1);
}

TEST(Resync, ResyncsOncePerInterval) {
  simmpi::World w(drifting_machine(), 7);
  int resyncs = -1;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto mgr = make_manager(2.0);
    for (int i = 0; i < 10; ++i) {
      (void)co_await mgr->tick(ctx.comm_world(), ctx.base_clock());
      co_await ctx.sim().delay(1.0);
    }
    if (ctx.rank() == 0) resyncs = mgr->resyncs();
  });
  // ~10 s of ticking with a 2 s interval: 1 initial + ~4 re-syncs.
  EXPECT_GE(resyncs, 4);
  EXPECT_LE(resyncs, 6);
}

TEST(Resync, KeepsLongRunningTraceAccurate) {
  // The §III-C2 motivation: over 30 s, a one-shot sync degrades while a
  // periodically refreshed clock stays accurate.
  auto residual_after = [](bool periodic, std::uint64_t seed) {
    simmpi::World w(drifting_machine(), seed);
    std::vector<vclock::ClockPtr> clocks(static_cast<std::size_t>(w.size()));
    sim::Time end = 0;
    w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      auto mgr = make_manager(periodic ? 5.0 : 1e9);
      for (int i = 0; i < 30; ++i) {
        clocks[static_cast<std::size_t>(ctx.rank())] =
            co_await mgr->tick(ctx.comm_world(), ctx.base_clock());
        co_await ctx.sim().delay(1.0);
      }
      end = std::max(end, ctx.sim().now());
    });
    double worst = 0;
    for (int r = 1; r < w.size(); ++r) {
      worst = std::max(worst, std::abs(clocks[static_cast<std::size_t>(r)]->at_exact(end) -
                                       clocks[0]->at_exact(end)));
    }
    return worst;
  };
  double periodic_acc = 0, oneshot_acc = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    periodic_acc += residual_after(true, seed);
    oneshot_acc += residual_after(false, seed);
  }
  EXPECT_LT(periodic_acc, oneshot_acc);
}

TEST(Resync, AllRanksResyncTogether) {
  // The unanimity property: every rank performs the same number of resyncs
  // (a per-rank decision could deadlock or diverge).
  simmpi::World w(drifting_machine(), 11);
  std::vector<int> counts(static_cast<std::size_t>(w.size()), -1);
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto mgr = make_manager(1.0);
    for (int i = 0; i < 8; ++i) {
      (void)co_await mgr->tick(ctx.comm_world(), ctx.base_clock());
      co_await ctx.sim().delay(0.5);
    }
    counts[static_cast<std::size_t>(ctx.rank())] = mgr->resyncs();
  });
  for (int c : counts) EXPECT_EQ(c, counts[0]);
  EXPECT_GT(counts[0], 1);
}

}  // namespace
}  // namespace hcs::clocksync
