// Churn-tolerance suite: the membership oracle, the failure detector's
// recovered state, re-admission (only the returning rank's sub-phase of the
// HCA3 tree re-runs), healing votes under repeated churn, and the
// bit-identity / determinism contracts that keep churn plans on the same
// footing as crash plans (docs/fault-injection.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "clocksync/factory.hpp"
#include "clocksync/healing.hpp"
#include "clocksync/membership.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "replay/harness.hpp"
#include "replay/scenario.hpp"
#include "simmpi/world.hpp"
#include "support/stats.hpp"
#include "topology/presets.hpp"
#include "trace/span.hpp"
#include "trace/tracer.hpp"

namespace hcs {
namespace {

constexpr std::uint64_t kBaseSeed = 4200;

// Same tuned clocks as the chaos suite: ~5 ms initial offsets make a
// working sync cleanly distinguishable from an identity fallback.
topology::MachineConfig machine(int nodes, int per_node) {
  auto m = topology::testbox(nodes, per_node);
  m.clocks.initial_offset_abs = 5e-3;
  m.clocks.base_skew_abs = 2e-6;
  m.clocks.skew_walk_sd = 0.005e-6;
  return m;
}

// A kOk rank must carry a real drift model (see tests/chaos).
constexpr double kOkAccuracyBound = 50e-6;

// ---------------------------------------------------------------------------
// The churn oracle: FaultInjector's pure lifecycle functions.

TEST(ChurnOracle, LeaveRejoinWindows) {
  fault::FaultPlan plan;
  plan.add("leave:rank=1,at=0.2s");
  plan.add("rejoin:rank=1,at=0.5s");
  fault::FaultInjector inj(plan, 7, 4);

  EXPECT_TRUE(inj.churn_active());
  EXPECT_TRUE(inj.has_churn(1));
  EXPECT_FALSE(inj.has_churn(0));

  EXPECT_FALSE(inj.is_down(1, 0.1));
  EXPECT_TRUE(inj.is_down(1, 0.2));   // [begin, end)
  EXPECT_TRUE(inj.is_down(1, 0.49));
  EXPECT_FALSE(inj.is_down(1, 0.5));
  EXPECT_FALSE(inj.is_down(0, 0.3));

  EXPECT_DOUBLE_EQ(inj.crash_time(1), 0.2);
  EXPECT_DOUBLE_EQ(inj.next_down(1, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(inj.next_down(1, 0.3), 0.2);  // covering interval's begin
  EXPECT_EQ(inj.next_down(1, 0.6), sim::kTimeInfinity);

  EXPECT_EQ(inj.incarnation(1, 0.1), 0);
  EXPECT_EQ(inj.incarnation(1, 0.3), 0);  // interval not ended yet
  EXPECT_EQ(inj.incarnation(1, 0.5), 1);
  EXPECT_EQ(inj.incarnation_count(1), 2);
  EXPECT_EQ(inj.incarnation_count(0), 1);
  EXPECT_DOUBLE_EQ(inj.up_start(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(inj.up_end(1, 0), 0.2);
  EXPECT_DOUBLE_EQ(inj.up_start(1, 1), 0.5);
  EXPECT_EQ(inj.up_end(1, 1), sim::kTimeInfinity);

  EXPECT_EQ(inj.membership_epoch(0.1), 0u);
  EXPECT_EQ(inj.membership_epoch(0.2), 1u);  // departure fired
  EXPECT_EQ(inj.membership_epoch(0.4), 1u);
  EXPECT_EQ(inj.membership_epoch(0.5), 2u);  // arrival fired
  EXPECT_EQ(inj.membership_epoch(9.9), 2u);
}

TEST(ChurnOracle, JoinStartsDown) {
  fault::FaultPlan plan;
  plan.add("join:rank=2,at=0.3s");
  fault::FaultInjector inj(plan, 7, 4);

  EXPECT_TRUE(inj.churn_active());
  EXPECT_TRUE(inj.is_down(2, 0.0));
  EXPECT_TRUE(inj.is_down(2, 0.29));
  EXPECT_FALSE(inj.is_down(2, 0.3));
  EXPECT_EQ(inj.incarnation(2, 0.3), 1);
  EXPECT_EQ(inj.incarnation_count(2), 2);
  // Slot 0 is the empty pre-join incarnation: the supervisor skips it.
  EXPECT_LE(inj.up_end(2, 0), inj.up_start(2, 0));
  EXPECT_DOUBLE_EQ(inj.up_start(2, 1), 0.3);
  // A join is not a fired departure: epoch 0 until the arrival.
  EXPECT_EQ(inj.membership_epoch(0.0), 0u);
  EXPECT_EQ(inj.membership_epoch(0.3), 1u);
}

TEST(ChurnOracle, RejoinWithoutOpenIntervalThrows) {
  fault::FaultPlan plan;
  plan.add("rejoin:rank=1,at=0.5s");
  EXPECT_THROW(fault::FaultInjector(plan, 7, 4), std::invalid_argument);
}

TEST(ChurnOracle, PureCrashNextDownEqualsCrashTime) {
  fault::FaultPlan plan;
  plan.add("crash:rank=3,at=2ms");
  fault::FaultInjector inj(plan, 7, 4);
  EXPECT_FALSE(inj.churn_active());
  // The unfinished crash interval contributes a never-starting slot.
  EXPECT_EQ(inj.incarnation_count(3), 2);
  EXPECT_EQ(inj.up_start(3, 1), sim::kTimeInfinity);
  // The migration contract: for single-interval plans next_down reproduces
  // crash_time at every instant, so crash-only deadlines are unchanged.
  for (const double t : {0.0, 0.001, 0.002, 0.5, 100.0}) {
    EXPECT_DOUBLE_EQ(inj.next_down(3, t), inj.crash_time(3)) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Membership layer: tree parents, the schedule and the reference choice.

TEST(ChurnMembership, Hca3ParentMatchesBinomialTree) {
  EXPECT_EQ(clocksync::hca3_parent(0, 4), -1);
  EXPECT_EQ(clocksync::hca3_parent(0, 1), -1);
  EXPECT_EQ(clocksync::hca3_parent(1, 4), 0);
  EXPECT_EQ(clocksync::hca3_parent(2, 4), 0);
  EXPECT_EQ(clocksync::hca3_parent(3, 4), 2);
  // Non-power-of-two: ranks >= 2^floor(log2 n) are step-2 clients of
  // rank - max_power.
  EXPECT_EQ(clocksync::hca3_parent(4, 6), 0);
  EXPECT_EQ(clocksync::hca3_parent(5, 6), 1);
  EXPECT_EQ(clocksync::hca3_parent(3, 6), 2);
}

TEST(ChurnMembership, ScheduleAndReferenceFromOracle) {
  fault::FaultPlan plan;
  plan.add("leave:rank=2,at=2ms");
  plan.add("rejoin:rank=2,at=300ms");
  simmpi::World world(machine(4, 1), kBaseSeed, plan);
  const std::vector<clocksync::ReadmitEvent> schedule = clocksync::readmit_schedule(world);
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule[0].at, 0.3);
  EXPECT_EQ(schedule[0].rank, 2);
  EXPECT_EQ(schedule[0].incarnation, 1);
  // All four ranks are up at 0.3; rank 2's tree parent is rank 0.
  EXPECT_EQ(clocksync::readmit_reference(world, schedule[0]), 0);
}

TEST(ChurnMembership, SimultaneousReturnersSkipEachOther) {
  // Ranks 0 and 1 both restart at 0.3: neither may serve the other (mutual
  // re-admission would deadlock), so rank 1's reference walks past its
  // restarting tree ancestors to the lowest settled member.
  fault::FaultPlan plan;
  plan.add("leave:rank=0,at=2ms");
  plan.add("leave:rank=1,at=3ms");
  plan.add("rejoin:rank=0,at=300ms");
  plan.add("rejoin:rank=1,at=300ms");
  simmpi::World world(machine(4, 1), kBaseSeed, plan);
  const std::vector<clocksync::ReadmitEvent> schedule = clocksync::readmit_schedule(world);
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(clocksync::readmit_reference(world, schedule[0]), 2);  // rank 0's reference
  EXPECT_EQ(clocksync::readmit_reference(world, schedule[1]), 2);  // rank 1's reference
}

// ---------------------------------------------------------------------------
// Failure detector: the full alive -> suspected -> dead -> recovered ->
// (re-departure) walk of the pure status function, with recovery latency
// symmetric to suspicion (both become visible one probe period after the
// underlying transition).

TEST(ChurnDetector, StatusWalksRecoveredAndBack) {
  fault::FaultPlan plan;
  plan.add("leave:rank=1,at=0.1s");
  plan.add("rejoin:rank=1,at=0.4s");
  plan.add("leave:rank=1,at=0.8s");
  plan.add("rejoin:rank=1,at=1.1s");
  simmpi::World world(machine(4, 1), kBaseSeed, plan);
  const simmpi::FailureDetector* fd = world.failure_detector();
  ASSERT_NE(fd, nullptr);
  const double P = fd->probe_period();
  const double L = fd->detection_latency();
  EXPECT_DOUBLE_EQ(L, P * 7.0);  // P * (2^kProbeMisses - 1)
  ASSERT_GT(P, 1e-5);
  ASSERT_LT(L, 0.2);  // windows of the plan stay well separated

  const auto st = [&](double t) { return fd->status(0, 1, t); };
  using simmpi::PeerStatus;
  EXPECT_EQ(st(0.05), PeerStatus::kAlive);
  EXPECT_EQ(st(0.1 + 0.5 * P), PeerStatus::kAlive);  // not yet visible
  EXPECT_EQ(st(0.1 + 1.5 * P), PeerStatus::kSuspected);
  EXPECT_EQ(st(0.1 + L + 1e-4), PeerStatus::kDead);
  EXPECT_EQ(st(0.4 + 0.5 * P), PeerStatus::kDead);  // restart not yet visible
  EXPECT_EQ(st(0.4 + 1.5 * P), PeerStatus::kRecovered);
  EXPECT_EQ(st(0.7), PeerStatus::kRecovered);  // sticky until the next window
  EXPECT_EQ(st(0.8 + 1.5 * P), PeerStatus::kSuspected);  // re-departure
  EXPECT_EQ(st(0.8 + L + 1e-4), PeerStatus::kDead);
  EXPECT_EQ(st(1.1 + 1.5 * P), PeerStatus::kRecovered);

  // Symmetric visibility latency: suspicion flips at begin + P, recovery
  // flips at end + P.
  EXPECT_EQ(st(0.1 + P - 1e-6), PeerStatus::kAlive);
  EXPECT_EQ(st(0.1 + P + 1e-6), PeerStatus::kSuspected);
  EXPECT_EQ(st(0.4 + P - 1e-6), PeerStatus::kDead);
  EXPECT_EQ(st(0.4 + P + 1e-6), PeerStatus::kRecovered);

  // detect_time_after walks the dead-declaration windows.
  EXPECT_DOUBLE_EQ(fd->detect_time_after(0, 1, 0.0), 0.1 + L);
  EXPECT_DOUBLE_EQ(fd->detect_time_after(0, 1, 0.5), 0.8 + L);
  EXPECT_EQ(fd->detect_time_after(0, 1, 2.0), sim::kTimeInfinity);
}

// ---------------------------------------------------------------------------
// Healing votes under repeated churn: agree_any must deliver the same
// verdict to every live participant in every membership view, across the
// seed sweep, while a rank cycles down and back twice.

double agree_any_correct_fraction(std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.add("leave:rank=5,at=0.15s");
  plan.add("rejoin:rank=5,at=0.45s");
  plan.add("leave:rank=5,at=0.75s");
  plan.add("rejoin:rank=5,at=1.05s");
  const std::vector<double> votes = {0.05, 0.3, 0.6, 0.9, 1.2};

  simmpi::World world(machine(4, 2), seed, plan);
  const int p = world.size();
  // -1 = did not participate, else the vote result (0/1).
  std::vector<std::vector<int>> results(static_cast<std::size_t>(p),
                                        std::vector<int>(votes.size(), -1));
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    const fault::FaultInjector* fault = ctx.world().fault_injector();
    const int me = ctx.rank();
    sim::Simulation& s = ctx.sim();
    const sim::Time entry = s.now();
    const sim::Time my_end = fault->next_down(me, entry);
    for (std::size_t i = 0; i < votes.size(); ++i) {
      const double t = votes[i];
      if (t < entry || t >= my_end) continue;
      if (s.now() < t) co_await s.delay(t - s.now());
      simmpi::Comm view = simmpi::Comm::view_comm(ctx.world(), me, t);
      const bool r = co_await clocksync::agree_any(view, me == 1);
      results[static_cast<std::size_t>(me)][i] = r ? 1 : 0;
    }
    if (my_end < sim::kTimeInfinity) {
      // Run up to the departure so the supervisor can restart us.
      if (s.now() < my_end) co_await s.delay(my_end - s.now());
      ctx.world().check_crash(me);
    }
  });

  // Rank 1 (the yes-voter) never churns, so every participant of every
  // vote must see `true`; down ranks must not have participated.
  fault::FaultInjector probe_inj(plan, 0, p);
  int cells = 0, correct = 0;
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < votes.size(); ++i) {
      ++cells;
      const bool up = !probe_inj.is_down(r, votes[i]);
      const int got = results[static_cast<std::size_t>(r)][i];
      if (up ? got == 1 : got == -1) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(cells);
}

TEST(ChurnHealing, AgreeAnySurvivesRepeatedChurn) {
  const std::vector<double> sweep =
      teststats::adaptive_seed_sweep(kBaseSeed, 0, agree_any_correct_fraction);
  ASSERT_GE(sweep.size(), 5u);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_DOUBLE_EQ(sweep[i], 1.0) << "seed " << kBaseSeed + i;
  }
}

// An armed-but-unfired churn plan (every leave/rejoin beyond the last
// transport op) must leave the synchronized models bit-identical to the
// fault-free world — churn plans inherit the crash plans' zero-cost-when-
// idle contract.
TEST(ChurnHealing, ArmedButUnfiredChurnPlanIsBitIdentical) {
  const std::string label = "hca3/300/skampi_offset/10";
  for (std::uint64_t seed : {kBaseSeed, kBaseSeed + 1}) {
    const auto run = [&](bool with_plan) {
      fault::FaultPlan plan;
      if (with_plan) {
        plan.add("leave:rank=3,at=1e6s");
        plan.add("rejoin:rank=3,at=2e6s");
      }
      simmpi::World w(machine(4, 2), seed, plan);
      std::vector<clocksync::SyncResult> results(static_cast<std::size_t>(w.size()));
      w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
        auto sync = clocksync::make_sync(label);
        simmpi::Comm view = simmpi::Comm::view_comm(ctx.world(), ctx.rank(), 0.0);
        results[static_cast<std::size_t>(ctx.rank())] =
            co_await sync->sync_clocks(view, ctx.base_clock());
      });
      return results;
    };
    const std::vector<clocksync::SyncResult> base = run(false);
    const std::vector<clocksync::SyncResult> armed = run(true);
    ASSERT_EQ(base.size(), armed.size());
    for (std::size_t r = 0; r < base.size(); ++r) {
      EXPECT_EQ(base[r].report.health, armed[r].report.health) << "rank " << r;
      EXPECT_EQ(base[r].clock->at_exact(100.0), armed[r].clock->at_exact(100.0))
          << "rank " << r << ": armed-but-unfired churn plan changed the model";
    }
  }
}

// ---------------------------------------------------------------------------
// Re-admission re-runs ONLY the returning rank's sub-phase: the trace of
// the micro4-churn scenario carries exactly one client + one server
// membership.readmit span and no extra full-tree synchronization.

TEST(ChurnReadmit, RejoinRerunsOnlyItsSubPhase) {
  trace::Tracer tracer(1 << 16);
  {
    const trace::ScopedTracer install(&tracer);
    const std::vector<replay::RankOutcome> outcomes =
        replay::run_scenario(replay::find_scenario("micro4-churn"), 42);
    for (std::size_t r = 0; r < outcomes.size(); ++r) {
      EXPECT_TRUE(outcomes[r].ran) << "rank " << r;
    }
  }
  int readmits = 0, full_syncs = 0;
  for (const trace::TraceEvent& ev : tracer.merged_events()) {
    if (std::strcmp(ev.name, "membership.readmit") == 0 && !ev.instant()) ++readmits;
    if (std::strcmp(ev.name, "hca3.sync_clocks") == 0 && !ev.instant()) ++full_syncs;
  }
  // One rejoin = exactly two readmit spans: the returning rank (client) and
  // its tree reference (server).  Nobody else participates.
  EXPECT_EQ(readmits, 2);
  // Full-tree syncs happen only in the founding cohort (one per rank); the
  // rejoin must not trigger a world-wide resynchronization.
  EXPECT_EQ(full_syncs, 4);
}

// The rejoined rank's clock must converge to within the chaos-suite
// accuracy bound of a never-departed rank, across the adaptive seed sweep.
// The readmit learn is a 32-point pairwise exchange at ~0.3 s, so its skew
// estimate carries more variance than the founding full sync and the
// disagreement grows linearly with extrapolation distance from the learn:
// each probe gets an allowance scaled by its horizon (floor = the bound
// itself within a 2 s horizon).  The metric is the worst normalized
// disagreement; < 1.0 means every probe was inside its allowance.
double rejoined_rank_disagreement(std::uint64_t seed) {
  constexpr double kReadmitAt = 0.3;
  constexpr double kHorizon = 2.0;
  const replay::Scenario& sc = replay::find_scenario("micro4-churn");
  const std::vector<replay::RankOutcome> outcomes = replay::run_scenario(sc, seed);
  double worst = 0.0;
  for (std::size_t i = 0; i < outcomes[2].probes.size(); ++i) {
    const double err = std::abs(outcomes[2].probes[i] - outcomes[1].probes[i]);
    const double horizon = std::abs(replay::kProbeTimes[i] - kReadmitAt) / kHorizon;
    const double allowance = kOkAccuracyBound * std::max(1.0, horizon);
    worst = std::max(worst, err / allowance);
  }
  return worst;
}

TEST(ChurnReadmit, RejoinedRankConvergesToNeverDepartedRank) {
  const std::vector<double> sweep =
      teststats::adaptive_seed_sweep(kBaseSeed, 0, rejoined_rank_disagreement);
  ASSERT_GE(sweep.size(), 5u);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i], 1.0) << "seed " << kBaseSeed + i;
  }
}

// Churn runs must be byte-identical for any job count: the whole
// re-admission rendezvous is a pure function of the per-World plan.
TEST(ChurnReadmit, ChurnSweepIsJobsDeterministic) {
  const auto metric = [](std::uint64_t seed) {
    const std::vector<replay::RankOutcome> outcomes =
        replay::run_scenario(replay::find_scenario("micro4-churn"), seed);
    return outcomes[2].probes.back();  // rejoined rank's clock at t = 10 s
  };
  const std::vector<double> serial = teststats::seed_sweep(12, kBaseSeed, 1, metric);
  const std::vector<double> two = teststats::seed_sweep(12, kBaseSeed, 2, metric);
  const std::vector<double> eight = teststats::seed_sweep(12, kBaseSeed, 8, metric);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

}  // namespace
}  // namespace hcs
