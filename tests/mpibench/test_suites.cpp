#include "mpibench/suites.hpp"

#include <gtest/gtest.h>

#include "clocksync/factory.hpp"
#include "topology/presets.hpp"

namespace hcs::mpibench {
namespace {

struct AllSuites {
  SuiteReport osu, imb, repro;
};

AllSuites run_all_suites(const topology::MachineConfig& m, std::uint64_t seed, std::int64_t msize,
                         simmpi::BarrierAlgo barrier, int nrep) {
  simmpi::World w(m, seed);
  AllSuites out;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    auto sync = clocksync::make_sync("hca3/100/skampi_offset/20");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), clk);
    const CollectiveOp op = make_allreduce_op(msize);
    const auto osu =
        co_await run_osu_like(ctx.comm_world(), *clk, op, BarrierSchemeParams{nrep, barrier});
    const auto imb =
        co_await run_imb_like(ctx.comm_world(), *clk, op, BarrierSchemeParams{nrep, barrier});
    RoundTimeParams rt;
    rt.max_nrep = nrep;
    const auto repro = co_await run_repro_like(ctx.comm_world(), *g, op, rt);
    if (ctx.rank() == 0) out = AllSuites{osu, imb, repro};
  });
  return out;
}

TEST(Suites, AllReportPlausibleLatencies) {
  const auto r = run_all_suites(topology::testbox(2, 4), 3, 8, simmpi::BarrierAlgo::kTree, 50);
  for (const SuiteReport* s : {&r.osu, &r.imb, &r.repro}) {
    EXPECT_GT(s->reported_latency, 1e-6);
    EXPECT_LT(s->reported_latency, 1e-3);
    EXPECT_EQ(s->reps, 50);
  }
}

TEST(Suites, ImbAtLeastOsu) {
  // Across-rank max >= across-rank mean, always.
  const auto r = run_all_suites(topology::testbox(2, 4), 5, 8, simmpi::BarrierAlgo::kBruck, 50);
  EXPECT_GE(r.imb.reported_latency, r.osu.reported_latency);
}

TEST(Suites, BarrierSchemesInflateSmallMessageLatency) {
  // The paper's headline effect (Figs. 7 and 9): for small payloads the
  // barrier-based suites report larger latencies than Round-Time, because
  // per-rank intervals absorb the barrier's exit imbalance.
  const auto r = run_all_suites(topology::jupiter().with_nodes(4), 7, 8,
                                simmpi::BarrierAlgo::kBruck, 60);
  EXPECT_GT(r.osu.reported_latency, r.repro.reported_latency);
  EXPECT_GT(r.imb.reported_latency, r.repro.reported_latency);
}

TEST(Suites, GapShrinksForLargeMessages) {
  // At 64 KiB the operation dwarfs the barrier imbalance, so the relative
  // OSU / ReproMPI gap must shrink compared to 8 B.
  const auto small = run_all_suites(topology::jupiter().with_nodes(4), 9, 8,
                                    simmpi::BarrierAlgo::kBruck, 40);
  const auto large = run_all_suites(topology::jupiter().with_nodes(4), 9, 64 * 1024,
                                    simmpi::BarrierAlgo::kBruck, 40);
  const double ratio_small = small.osu.reported_latency / small.repro.reported_latency;
  const double ratio_large = large.osu.reported_latency / large.repro.reported_latency;
  EXPECT_LT(ratio_large, ratio_small);
  EXPECT_NEAR(ratio_large, 1.0, 0.35);
}

TEST(Suites, BarrierAlgorithmChangesReportedLatency) {
  // Fig. 7: the same operation measured with different MPI_Barrier
  // implementations yields different numbers under barrier-based schemes.
  const auto tree = run_all_suites(topology::jupiter().with_nodes(4), 11, 8,
                                   simmpi::BarrierAlgo::kTree, 60);
  const auto ring = run_all_suites(topology::jupiter().with_nodes(4), 11, 8,
                                   simmpi::BarrierAlgo::kDoubleRing, 60);
  EXPECT_NE(tree.osu.reported_latency, ring.osu.reported_latency);
}

}  // namespace
}  // namespace hcs::mpibench
