#include <gtest/gtest.h>

#include "clocksync/factory.hpp"
#include "mpibench/barrier_scheme.hpp"
#include "mpibench/window_scheme.hpp"
#include "topology/presets.hpp"
#include "util/stats.hpp"

namespace hcs::mpibench {
namespace {

topology::MachineConfig quiet_machine(int nodes, int cores) {
  auto m = topology::testbox(nodes, cores);
  m.clocks.initial_offset_abs = 1e-3;
  return m;
}

TEST(BarrierScheme, ProducesRequestedRepetitions) {
  simmpi::World w(quiet_machine(2, 2), 3);
  MeasurementResult result;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    BarrierSchemeParams params;
    params.nrep = 25;
    const auto m =
        co_await run_barrier_scheme(ctx.comm_world(), *clk, make_allreduce_op(8), params);
    if (ctx.rank() == 0) result = m;
  });
  ASSERT_EQ(result.valid_reps(), 25);
  for (const auto& ranks : result.latencies) {
    ASSERT_EQ(ranks.size(), 4u);
    for (double lat : ranks) {
      EXPECT_GT(lat, 0.0);
      EXPECT_LT(lat, 1e-3);
    }
  }
}

TEST(BarrierScheme, NonRootGetsEmptyResult) {
  simmpi::World w(quiet_machine(2, 1), 3);
  MeasurementResult at_one;
  at_one.invalid_reps = -1;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    const auto m = co_await run_barrier_scheme(ctx.comm_world(), *clk, make_allreduce_op(8),
                                               BarrierSchemeParams{10, simmpi::BarrierAlgo::kTree});
    if (ctx.rank() == 1) at_one = m;
  });
  EXPECT_TRUE(at_one.latencies.empty());
}

TEST(BarrierScheme, LatencyGrowsWithMessageSize) {
  auto measure = [](std::int64_t msize) {
    simmpi::World w(quiet_machine(2, 2), 7);
    double mean = 0;
    w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      auto clk = ctx.base_clock();
      const auto m = co_await run_barrier_scheme(
          ctx.comm_world(), *clk, make_allreduce_op(msize),
          BarrierSchemeParams{30, simmpi::BarrierAlgo::kTree});
      if (ctx.rank() == 0) {
        std::vector<double> flat;
        for (const auto& ranks : m.latencies) flat.push_back(util::mean(ranks));
        mean = util::mean(flat);
      }
    });
    return mean;
  };
  EXPECT_GT(measure(1 << 20), measure(8));
}

TEST(WindowScheme, AllRepsValidWithGenerousWindow) {
  simmpi::World w(quiet_machine(2, 2), 9);
  MeasurementResult result;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca3/50/skampi_offset/20");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    WindowSchemeParams params;
    params.nrep = 20;
    params.window = 500e-6;  // plenty for a small allreduce
    const auto m = co_await run_window_scheme(ctx.comm_world(), *g, make_allreduce_op(8), params);
    if (ctx.rank() == 0) result = m;
  });
  EXPECT_EQ(result.invalid_reps, 0);
  EXPECT_EQ(result.valid_reps(), 20);
  for (double rt : result.global_runtimes) {
    EXPECT_GT(rt, 0.0);
    EXPECT_LT(rt, 500e-6);
  }
}

TEST(WindowScheme, TooSmallWindowInvalidatesCascade) {
  // The window-scheme weakness the paper describes: windows shorter than the
  // operation make ranks miss (many) subsequent start times.
  simmpi::World w(quiet_machine(2, 2), 11);
  MeasurementResult result;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca3/50/skampi_offset/20");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    WindowSchemeParams params;
    params.nrep = 20;
    params.window = 1e-6;  // far below the allreduce latency
    const auto m = co_await run_window_scheme(ctx.comm_world(), *g, make_allreduce_op(8), params);
    if (ctx.rank() == 0) result = m;
  });
  EXPECT_GT(result.invalid_reps, 10);
}

TEST(WindowScheme, GlobalRuntimeAtLeastLocalLatency) {
  simmpi::World w(quiet_machine(2, 2), 13);
  MeasurementResult result;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca3/50/skampi_offset/20");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    const auto m = co_await run_window_scheme(ctx.comm_world(), *g, make_allreduce_op(8),
                                              WindowSchemeParams{10, 500e-6, 1e-3});
    if (ctx.rank() == 0) result = m;
  });
  ASSERT_GT(result.valid_reps(), 0);
  for (int rep = 0; rep < result.valid_reps(); ++rep) {
    // Global runtime includes the rank that finished last, so it dominates
    // any single rank's local latency minus clock error.
    EXPECT_GE(result.global_runtimes[static_cast<std::size_t>(rep)],
              util::max(result.latencies[static_cast<std::size_t>(rep)]) - 2e-6);
  }
}

TEST(WaitUntilGlobal, LateReturnsFalseImmediately) {
  simmpi::World w(quiet_machine(1, 2), 15);
  bool late_result = true;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    co_await ctx.sim().delay(0.01);
    const bool ok = co_await wait_until_global(ctx.comm_world(), *clk, clk->now() - 1e-3);
    if (ctx.rank() == 0) late_result = ok;
  });
  EXPECT_FALSE(late_result);
}

TEST(WaitUntilGlobal, WaitsToTargetWithinTolerance) {
  simmpi::World w(quiet_machine(1, 2), 17);
  double reached = 0, target = 0;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    target = clk->now() + 5e-3;
    const bool ok = co_await wait_until_global(ctx.comm_world(), *clk, target);
    EXPECT_TRUE(ok);
    if (ctx.rank() == 0) reached = clk->now();
  });
  EXPECT_NEAR(reached, target, 1e-6);
  EXPECT_GE(reached, target - 100e-9);
}

}  // namespace
}  // namespace hcs::mpibench
