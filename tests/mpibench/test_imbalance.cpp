#include "mpibench/imbalance.hpp"

#include <gtest/gtest.h>

#include "clocksync/factory.hpp"
#include "topology/presets.hpp"
#include "util/stats.hpp"

namespace hcs::mpibench {
namespace {

std::vector<double> run_imbalance(const topology::MachineConfig& m, std::uint64_t seed,
                                  simmpi::BarrierAlgo algo, int ncalls) {
  simmpi::World w(m, seed);
  std::vector<double> out;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca3/100/skampi_offset/20");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    ImbalanceParams params;
    params.ncalls = ncalls;
    const auto imbalances = co_await measure_barrier_imbalance(ctx.comm_world(), *g, algo, params);
    if (ctx.rank() == 0) out = imbalances;
  });
  return out;
}

TEST(Imbalance, PositiveAndBounded) {
  const auto imb = run_imbalance(topology::testbox(2, 4), 3, simmpi::BarrierAlgo::kTree, 50);
  ASSERT_GE(imb.size(), 45u);  // nearly all calls valid
  for (double v : imb) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1e-3);
  }
}

TEST(Imbalance, SingleRankZero) {
  const auto imb = run_imbalance(topology::testbox(1, 1), 5, simmpi::BarrierAlgo::kTree, 10);
  for (double v : imb) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Imbalance, DoubleRingWorstOfAll) {
  // The paper omits double ring from Fig. 7 because "this algorithm had an
  // even larger influence" — its token circulates twice around the ring, so
  // exit times are staggered over O(p) latencies.
  const auto m = topology::jupiter().with_nodes(4);  // 64 ranks
  const auto ring = run_imbalance(m, 7, simmpi::BarrierAlgo::kDoubleRing, 30);
  for (simmpi::BarrierAlgo other :
       {simmpi::BarrierAlgo::kTree, simmpi::BarrierAlgo::kBruck,
        simmpi::BarrierAlgo::kRecursiveDoubling}) {
    const auto imb = run_imbalance(m, 7, other, 30);
    EXPECT_GT(util::median(ring), util::median(imb))
        << "double ring vs " << simmpi::to_string(other);
  }
}

TEST(Imbalance, AlgorithmsDifferSignificantly) {
  const auto m = topology::jupiter().with_nodes(4);
  const auto tree = run_imbalance(m, 9, simmpi::BarrierAlgo::kTree, 40);
  const auto bruck = run_imbalance(m, 9, simmpi::BarrierAlgo::kBruck, 40);
  EXPECT_NE(util::median(tree), util::median(bruck));
}

TEST(Imbalance, DeterministicForSeed) {
  const auto a = run_imbalance(topology::testbox(2, 2), 11, simmpi::BarrierAlgo::kBruck, 20);
  const auto b = run_imbalance(topology::testbox(2, 2), 11, simmpi::BarrierAlgo::kBruck, 20);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace hcs::mpibench
