#include "mpibench/roundtime_scheme.hpp"

#include <gtest/gtest.h>

#include "clocksync/factory.hpp"
#include "mpibench/suites.hpp"
#include "topology/presets.hpp"
#include "util/stats.hpp"

namespace hcs::mpibench {
namespace {

topology::MachineConfig machine(int nodes, int cores) {
  auto m = topology::testbox(nodes, cores);
  m.clocks.initial_offset_abs = 1e-3;
  return m;
}

template <typename Fn>
MeasurementResult run_rt(const topology::MachineConfig& m, std::uint64_t seed, Fn params_fn) {
  simmpi::World w(m, seed);
  MeasurementResult result;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca3/50/skampi_offset/20");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    const RoundTimeParams params = params_fn();
    const auto r = co_await run_roundtime_scheme(ctx.comm_world(), *g, make_allreduce_op(8),
                                                 params);
    if (ctx.rank() == 0) result = r;
  });
  return result;
}

TEST(RoundTime, StopsAtMaxNrep) {
  const auto result = run_rt(machine(2, 2), 3, [] {
    RoundTimeParams p;
    p.max_nrep = 15;
    p.max_time_slice = 10.0;
    return p;
  });
  EXPECT_EQ(result.valid_reps(), 15);
}

TEST(RoundTime, TimeSliceBoundsTheRun) {
  // A 3 ms slice fits many small allreduces but not unbounded repetitions.
  const auto result = run_rt(machine(2, 2), 5, [] {
    RoundTimeParams p;
    p.max_time_slice = 3e-3;
    return p;
  });
  EXPECT_GT(result.valid_reps(), 5);
  EXPECT_LT(result.valid_reps(), 2000);
}

TEST(RoundTime, GlobalRuntimePlausible) {
  const auto result = run_rt(machine(2, 2), 7, [] {
    RoundTimeParams p;
    p.max_nrep = 30;
    return p;
  });
  ASSERT_EQ(result.valid_reps(), 30);
  for (double rt : result.global_runtimes) {
    EXPECT_GT(rt, 1e-6);   // a real collective takes time
    EXPECT_LT(rt, 200e-6);  // but not absurdly long on a quiet testbox
  }
}

TEST(RoundTime, RejectsSlackBelowOne) {
  simmpi::World w(machine(1, 2), 9);
  w.launch([](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    RoundTimeParams p;
    p.slack_factor = 0.5;
    (void)co_await run_roundtime_scheme(ctx.comm_world(), *clk, make_allreduce_op(8), p);
  });
  EXPECT_THROW(w.run(), std::invalid_argument);
}

TEST(RoundTime, OutlierInvalidatesOnlyFewReps) {
  // Heavy spikes delay single repetitions; Round-Time re-announces the next
  // start after each rep, so most repetitions stay valid — unlike the fixed
  // window scheme (see WindowScheme.TooSmallWindowInvalidatesCascade).
  auto m = machine(2, 2);
  m.net.inter_node.spike_prob = 5e-3;
  m.net.inter_node.spike_mean = 200e-6;
  const auto result = run_rt(m, 11, [] {
    RoundTimeParams p;
    p.max_nrep = 200;
    p.max_time_slice = 10.0;
    return p;
  });
  EXPECT_EQ(result.valid_reps(), 200);
  EXPECT_LT(result.invalid_reps, 40);  // a few re-tries, not a cascade
}

TEST(RoundTime, MedianRobustToSpikes) {
  auto m = machine(2, 2);
  m.net.inter_node.spike_prob = 2e-3;
  m.net.inter_node.spike_mean = 500e-6;
  simmpi::World w(m, 13);
  SuiteReport report;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca3/50/skampi_offset/20");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    RoundTimeParams p;
    p.max_nrep = 100;
    const auto r = co_await run_repro_like(ctx.comm_world(), *g, make_allreduce_op(8), p);
    if (ctx.rank() == 0) report = r;
  });
  EXPECT_GT(report.reported_latency, 1e-6);
  EXPECT_LT(report.reported_latency, 50e-6);  // median ignores the 500 us tail
}

}  // namespace
}  // namespace hcs::mpibench
