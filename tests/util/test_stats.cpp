#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hcs::util {
namespace {

TEST(Stats, EmptySampleIsAllZero) {
  const std::vector<double> xs;
  EXPECT_EQ(mean(xs), 0.0);
  EXPECT_EQ(stddev(xs), 0.0);
  EXPECT_EQ(median(xs), 0.0);
  EXPECT_EQ(min(xs), 0.0);
  EXPECT_EQ(max(xs), 0.0);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 0u);
}

TEST(Stats, SingleElement) {
  const std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(mean(xs), 42.0);
  EXPECT_DOUBLE_EQ(median(xs), 42.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 42.0);
  EXPECT_EQ(stddev(xs), 0.0);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.13809, 1e-4);  // sample (n-1) stddev
}

TEST(Stats, MedianEvenAndOdd) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 7.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 30.0);
}

TEST(Stats, QuantileClampsOutOfRangeQ) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -3.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 7.0), 2.0);
}

TEST(Stats, QuantileUnsortedInputHandled) {
  const std::vector<double> xs = {9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
  EXPECT_DOUBLE_EQ(min(xs), 1.0);
  EXPECT_DOUBLE_EQ(max(xs), 9.0);
}

TEST(Stats, SummaryMatchesPieces) {
  const std::vector<double> xs = {5.0, 1.0, 4.0, 2.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Stats, SummaryToStringMentionsFields) {
  const Summary s = summarize(std::vector<double>{1.0, 2.0});
  const std::string str = to_string(s, "us");
  EXPECT_NE(str.find("n=2"), std::string::npos);
  EXPECT_NE(str.find("med="), std::string::npos);
  EXPECT_NE(str.find("us"), std::string::npos);
}

TEST(Stats, NegativeValues) {
  const std::vector<double> xs = {-5.0, -1.0, -3.0};
  EXPECT_DOUBLE_EQ(mean(xs), -3.0);
  EXPECT_DOUBLE_EQ(min(xs), -5.0);
  EXPECT_DOUBLE_EQ(max(xs), -1.0);
}

}  // namespace
}  // namespace hcs::util
