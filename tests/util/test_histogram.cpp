#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hcs::util {
namespace {

TEST(Histogram, EmptySample) {
  const Histogram h = make_histogram(std::vector<double>{}, 5);
  EXPECT_TRUE(h.counts.empty());
  EXPECT_EQ(h.total, 0u);
}

TEST(Histogram, RejectsBadBinCount) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(make_histogram(xs, 0), std::invalid_argument);
}

TEST(Histogram, CountsSumToTotal) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const Histogram h = make_histogram(xs, 4);
  std::size_t sum = 0;
  for (auto c : h.counts) sum += c;
  EXPECT_EQ(sum, xs.size());
  EXPECT_EQ(h.total, xs.size());
}

TEST(Histogram, UniformDataSplitsEvenly) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(static_cast<double>(i));
  const Histogram h = make_histogram(xs, 4);
  ASSERT_EQ(h.counts.size(), 4u);
  for (auto c : h.counts) EXPECT_EQ(c, 25u);
}

TEST(Histogram, MaxValueLandsInLastBin) {
  const std::vector<double> xs = {0.0, 1.0};
  const Histogram h = make_histogram(xs, 2);
  EXPECT_EQ(h.counts.front(), 1u);
  EXPECT_EQ(h.counts.back(), 1u);
}

TEST(Histogram, ConstantSampleSingleBin) {
  const std::vector<double> xs = {3.0, 3.0, 3.0};
  const Histogram h = make_histogram(xs, 3);
  EXPECT_EQ(h.counts[0], 3u);
}

TEST(Histogram, BinEdges) {
  const std::vector<double> xs = {0.0, 10.0};
  const Histogram h = make_histogram(xs, 5);
  EXPECT_DOUBLE_EQ(h.bin_left(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_left(5), 10.0);
}

TEST(Histogram, PrintsOneLinePerBinWithBars) {
  std::vector<double> xs;
  for (int i = 0; i < 30; ++i) xs.push_back(i < 20 ? 1.0 : 2.0);
  const Histogram h = make_histogram(xs, 2);
  std::ostringstream os;
  print_histogram(os, h, 10);
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bin full width
}

TEST(Histogram, EmptyPrintIsGraceful) {
  std::ostringstream os;
  print_histogram(os, Histogram{}, 10);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace hcs::util
