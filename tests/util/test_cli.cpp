#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace hcs::util {
namespace {

Cli make(std::initializer_list<const char*> args, std::vector<std::string> flags = {}) {
  std::vector<const char*> argv(args);
  return Cli(static_cast<int>(argv.size()), argv.data(), std::move(flags));
}

TEST(Cli, ParsesKeyValuePairs) {
  const Cli cli = make({"prog", "--seed", "7", "--name", "jupiter"});
  EXPECT_EQ(cli.get_int("seed", 0), 7);
  EXPECT_EQ(cli.get("name", ""), "jupiter");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, ParsesEqualsForm) {
  const Cli cli = make({"prog", "--scale=0.5", "--out=x.csv"});
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(cli.get("out", ""), "x.csv");
}

TEST(Cli, BooleanFlags) {
  const Cli cli = make({"prog", "--csv", "--seed", "3"}, {"csv"});
  EXPECT_TRUE(cli.has("csv"));
  EXPECT_EQ(cli.get_int("seed", 0), 3);
}

TEST(Cli, TrailingFlagWithoutValue) {
  const Cli cli = make({"prog", "--verbose"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get("verbose", ""), "1");
}

TEST(Cli, PositionalArguments) {
  const Cli cli = make({"prog", "alpha", "--k", "v", "beta"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "alpha");
  EXPECT_EQ(cli.positional()[1], "beta");
}

TEST(Cli, FallbacksWhenMissing) {
  const Cli cli = make({"prog"});
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(cli.get_int("missing", -4), -4);
  EXPECT_EQ(cli.seed(123), 123u);
}

TEST(Cli, ScaleFromCommandLineBeatsEnv) {
  ::setenv("HCLOCKSYNC_SCALE", "0.25", 1);
  const Cli cli = make({"prog", "--scale", "0.5"});
  EXPECT_DOUBLE_EQ(cli.scale(), 0.5);
  ::unsetenv("HCLOCKSYNC_SCALE");
}

TEST(Cli, ScaleFromEnv) {
  ::setenv("HCLOCKSYNC_SCALE", "0.125", 1);
  const Cli cli = make({"prog"});
  EXPECT_DOUBLE_EQ(cli.scale(), 0.125);
  ::unsetenv("HCLOCKSYNC_SCALE");
}

TEST(Cli, ScaleOutOfRangeThrows) {
  const Cli cli = make({"prog", "--scale", "0"});
  EXPECT_THROW(cli.scale(), std::invalid_argument);
  const Cli cli2 = make({"prog", "--scale", "9"});
  EXPECT_THROW(cli2.scale(), std::invalid_argument);
}

TEST(Cli, RejectUnknownAcceptsKnownSet) {
  const Cli cli = make({"prog", "--seed", "3", "--csv"}, {"csv"});
  EXPECT_NO_THROW(cli.reject_unknown({"seed", "csv"}));
}

TEST(Cli, RejectUnknownThrowsOnTypo) {
  // "--job 4" (missing the s) must be an error, not a silently ignored
  // option running the default configuration.
  const Cli cli = make({"prog", "--job", "4"});
  try {
    cli.reject_unknown({"jobs", "seed"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--job"), std::string::npos) << what;
    EXPECT_NE(what.find("--jobs"), std::string::npos) << what;  // known set listed
  }
}

TEST(Cli, RejectUnknownSeesEqualsForm) {
  const Cli cli = make({"prog", "--traceout=x.json"});
  EXPECT_THROW(cli.reject_unknown({"trace-out"}), std::invalid_argument);
}

TEST(Cli, JobsFromCommandLineBeatsEnv) {
  ::setenv("HCLOCKSYNC_JOBS", "8", 1);
  const Cli cli = make({"prog", "--jobs", "2"});
  EXPECT_EQ(cli.jobs(), 2);
  ::unsetenv("HCLOCKSYNC_JOBS");
}

TEST(Cli, JobsFromEnv) {
  ::setenv("HCLOCKSYNC_JOBS", "3", 1);
  const Cli cli = make({"prog"});
  EXPECT_EQ(cli.jobs(), 3);
  ::unsetenv("HCLOCKSYNC_JOBS");
}

TEST(Cli, JobsDefaultsAndZeroMeansAuto) {
  const Cli cli = make({"prog"});
  EXPECT_EQ(cli.jobs(), 1);
  EXPECT_EQ(cli.jobs(4), 4);
  const Cli cli0 = make({"prog", "--jobs", "0"});
  EXPECT_EQ(cli0.jobs(), 0);  // 0 = auto, resolved by runner::resolve_jobs
}

TEST(Cli, NegativeJobsThrows) {
  const Cli cli = make({"prog", "--jobs", "-2"});
  EXPECT_THROW(cli.jobs(), std::invalid_argument);
}

TEST(Cli, GetAllReturnsEveryOccurrenceInOrder) {
  // Repeatable flags (--fault) need all values; get() keeps only the last.
  const Cli cli = make({"prog", "--fault", "drop:p=0.01", "--seed", "2",
                        "--fault=clockstep:rank=3,at=200s,step=50us"});
  const std::vector<std::string> faults = cli.get_all("fault");
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0], "drop:p=0.01");
  EXPECT_EQ(faults[1], "clockstep:rank=3,at=200s,step=50us");
  EXPECT_EQ(cli.get("fault", ""), "clockstep:rank=3,at=200s,step=50us");  // last wins
}

TEST(Cli, GetAllOfAbsentKeyIsEmpty) {
  const Cli cli = make({"prog", "--seed", "2"});
  EXPECT_TRUE(cli.get_all("fault").empty());
  EXPECT_EQ(cli.get_all("seed"), std::vector<std::string>{"2"});
}

}  // namespace
}  // namespace hcs::util
