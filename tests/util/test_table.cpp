#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hcs::util {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"k", "v"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t({"k"});
  t.add_row({"plain"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "k\nplain\n");
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Fmt, MicrosecondsConversion) {
  EXPECT_EQ(fmt_us(1.5e-6, 1), "1.5");
  EXPECT_EQ(fmt_us(2e-3, 0), "2000");
}

}  // namespace
}  // namespace hcs::util
