// Chaos soak: crash-stop robustness of every synchronization algorithm.
//
// Sweeps crash time (pre-sync, mid-sync, post-sync) x victim role (leaf,
// node reference, global reference) x algorithm over a seed sweep, and
// asserts the crash-stop contract end to end:
//   1. Termination — no run hangs (the world drains; ctest's timeout is the
//      backstop, but every run here finishes in bounded simulated time
//      because each blocking receive is bounded by the failure detector).
//   2. Victim semantics — a rank crashed before sync never reports a
//      result; a crash scheduled after the last transport op changes
//      nothing (all ranks clean, accuracy intact).
//   3. Classification — every survivor reports ok/degraded/failed, and a
//      rank claiming kOk must actually own an accurate global clock: its
//      noiseless deviation from the lowest-ranked kOk survivor stays inside
//      a bound that cleanly separates "has a drift model" from "fell back
//      to the identity model" (the initial offsets are ~5 ms; a working
//      sync lands under ~10 us at the 10 s horizon).
//
// The sweep intentionally reuses the machine and seed configuration of
// test_accuracy_bounds.cpp so the fault-free column of this suite is the
// same world the calibrated PR 3 bounds were measured on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "clocksync/factory.hpp"
#include "fault/fault_plan.hpp"
#include "simmpi/world.hpp"
#include "support/stats.hpp"
#include "topology/presets.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {
namespace {

constexpr int kSeeds = 20;
constexpr std::uint64_t kBaseSeed = 1000;

// testbox(4, 2): 8 ranks, 2 per node.  Node references (lowest rank per
// node) are 0/2/4/6; rank 0 doubles as the global reference.
topology::MachineConfig machine() {
  auto m = topology::testbox(4, 2);
  m.clocks.initial_offset_abs = 5e-3;
  m.clocks.base_skew_abs = 2e-6;
  m.clocks.skew_walk_sd = 0.005e-6;
  return m;
}

struct VictimRole {
  const char* name;
  int rank;
};
constexpr VictimRole kRoles[] = {
    {"leaf", 7},        // last rank of the last node: never a reference
    {"node_ref", 2},    // lowest rank of node 1: a hierarchical node leader
    {"global_ref", 0},  // rank 0: every algorithm's root / global reference
};

// Pre-sync (dead from the first event), mid-sync (inside every algorithm's
// measurement phase; the slowest label, JK at 1000 fit points, runs ~0.2 s
// and the fastest, SKaMPI, ~4 ms), and post-sync (after the last transport
// op of every label, so the crash never actually fires).
constexpr double kCrashTimes[] = {0.0, 0.003, 1.0};

const char* kLabels[] = {
    "hca/1000/skampi_offset/10",
    "hca2/1000/skampi_offset/10",
    "hca3/1000/skampi_offset/10",
    "jk/1000/skampi_offset/20",
    "skampi/skampi_offset/100",
    "top/hca3/1000/skampi_offset/10/bottom/hca3/1000/skampi_offset/10",
};

// A kOk rank must carry a real drift model: identity fallbacks sit at the
// ~5 ms initial offset, two orders of magnitude above this.
constexpr double kOkAccuracyBound = 50e-6;

struct ChaosPoint {
  int synced = 0;  // ranks that returned a SyncResult (victim drops out)
  int ok = 0, degraded = 0, failed = 0;
  bool victim_synced = false;
  double err_t10 = 0.0;  // max |clk - ref| over kOk ranks, 10 s after sync
};

ChaosPoint run_one(const std::string& label, int victim, double crash_at, std::uint64_t seed) {
  fault::FaultPlan plan;
  fault::FaultSpec crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.rank = victim;
  crash.at = crash_at;
  plan.add(crash);

  simmpi::World w(machine(), seed, plan);
  const int p = w.size();
  std::vector<std::optional<SyncResult>> results(static_cast<std::size_t>(p));
  sim::Time sync_end = 0.0;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = make_sync(label);
    SyncResult res = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    sync_end = std::max(sync_end, ctx.sim().now());
    results[static_cast<std::size_t>(ctx.rank())] = std::move(res);
  });

  ChaosPoint pt;
  int ref = -1;
  for (int r = 0; r < p; ++r) {
    const auto& res = results[static_cast<std::size_t>(r)];
    if (!res) continue;
    ++pt.synced;
    if (r == victim) pt.victim_synced = true;
    switch (res->report.health) {
      case SyncHealth::kOk:
        ++pt.ok;
        if (ref < 0) ref = r;
        break;
      case SyncHealth::kDegraded: ++pt.degraded; break;
      case SyncHealth::kFailed: ++pt.failed; break;
    }
  }
  if (ref >= 0) {
    const double t10 = sync_end + 10.0;
    const double ref_val = results[static_cast<std::size_t>(ref)]->clock->at_exact(t10);
    for (int r = 0; r < p; ++r) {
      const auto& res = results[static_cast<std::size_t>(r)];
      if (!res || res->report.health != SyncHealth::kOk) continue;
      pt.err_t10 = std::max(pt.err_t10, std::abs(res->clock->at_exact(t10) - ref_val));
    }
  }
  return pt;
}

struct Cell {
  const char* label;
  VictimRole role;
  double crash_at;
};

class CrashSoak : public ::testing::TestWithParam<const char*> {};

TEST_P(CrashSoak, TerminatesAndClassifiesUnderEveryCrash) {
  const std::string label = GetParam();
  const int p = 8;
  for (const VictimRole& role : kRoles) {
    for (const double at : kCrashTimes) {
      // gtest assertions are not thread-safe; the parallel sweep only
      // collects and every check happens here on the main thread.
      runner::TrialRunner pool(0);
      const std::vector<ChaosPoint> points =
          pool.map(kSeeds, kBaseSeed,
                   [&](const runner::Trial& t) { return run_one(label, role.rank, at, t.seed); });

      int worst_ok = p, worst_synced = p;
      double worst_err = 0.0;
      for (const ChaosPoint& pt : points) {
        const std::string where = label + " victim=" + role.name +
                                  " at=" + std::to_string(at);
        // Survivors always classify and account for every rank.
        EXPECT_EQ(pt.ok + pt.degraded + pt.failed, pt.synced) << where;
        EXPECT_GE(pt.synced, p - 1) << where << ": a survivor failed to terminate";
        EXPECT_LT(pt.err_t10, kOkAccuracyBound)
            << where << ": a rank classified kOk does not own an accurate clock";
        if (at == 0.0) {
          EXPECT_FALSE(pt.victim_synced) << where << ": pre-sync victim reported a result";
          EXPECT_EQ(pt.synced, p - 1) << where;
        }
        if (at == 1.0) {
          // The crash lands after the last transport op: nothing happens.
          EXPECT_EQ(pt.synced, p) << where;
          EXPECT_EQ(pt.ok, p) << where << ": unfired crash plan degraded a rank";
        }
        worst_ok = std::min(worst_ok, pt.ok);
        worst_synced = std::min(worst_synced, pt.synced);
        worst_err = std::max(worst_err, pt.err_t10);
      }
      // A leaf death touches at most the victim and its burst partner; the
      // quorum must stay healthy.
      if (at == 0.0 && std::string(role.name) == "leaf") {
        EXPECT_GE(worst_ok, p - 2) << label << ": leaf crash degraded the healthy quorum";
      }
      std::cout << "[chaos] " << label << " victim=" << role.name << " at=" << at
                << ": worst ok=" << worst_ok << " synced=" << worst_synced
                << " err_t10=" << worst_err * 1e6 << "us over " << kSeeds << " seeds\n";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CrashSoak, ::testing::ValuesIn(kLabels),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           std::replace_if(
                               name.begin(), name.end(),
                               [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); },
                               '_');
                           return name;
                         });

// Self-healing promotes a replacement reference: when the global reference
// dies before sync, the healing algorithms (hca3 and the hierarchical
// composition) must still deliver a working clock to the surviving quorum —
// re-synced ranks report kDegraded (they hold a consistent quorum clock,
// acquired on the second attempt), never a silent identity fallback.
TEST(CrashHealing, GlobalRefDeathPromotesReplacement) {
  for (const char* label : {"hca3/1000/skampi_offset/10",
                            "top/hca3/1000/skampi_offset/10/bottom/hca3/1000/skampi_offset/10"}) {
    runner::TrialRunner pool(0);
    const std::vector<ChaosPoint> points = pool.map(
        kSeeds, kBaseSeed, [&](const runner::Trial& t) { return run_one(label, 0, 0.0, t.seed); });
    for (const ChaosPoint& pt : points) {
      EXPECT_EQ(pt.synced, 7) << label;
      EXPECT_EQ(pt.failed, 0) << label << ": healing left a survivor without a model";
      EXPECT_LT(pt.err_t10, kOkAccuracyBound) << label;
    }
  }
}

// A crash scheduled far beyond the run is the "zero-crash plan": the
// failure detector is armed but never fires, and the synchronized models
// must be bit-identical to the fault-free world (same seeds, same worlds).
TEST(CrashHealing, UnfiredCrashPlanIsBitIdenticalToFaultFree) {
  const std::string label = "hca3/1000/skampi_offset/10";
  for (std::uint64_t seed : {kBaseSeed, kBaseSeed + 1}) {
    const auto run = [&](bool with_plan) {
      fault::FaultPlan plan;
      if (with_plan) {
        fault::FaultSpec crash;
        crash.kind = fault::FaultKind::kCrash;
        crash.rank = 3;
        crash.at = 1e6;  // far beyond any transport op
        plan.add(crash);
      }
      simmpi::World w(machine(), seed, plan);
      std::vector<SyncResult> results(static_cast<std::size_t>(w.size()));
      w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
        auto sync = make_sync(label);
        results[static_cast<std::size_t>(ctx.rank())] =
            co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
      });
      return results;
    };
    const std::vector<SyncResult> base = run(false);
    const std::vector<SyncResult> armed = run(true);
    ASSERT_EQ(base.size(), armed.size());
    for (std::size_t r = 0; r < base.size(); ++r) {
      EXPECT_EQ(base[r].report.health, armed[r].report.health) << "rank " << r;
      const double probe = 100.0;
      EXPECT_EQ(base[r].clock->at_exact(probe), armed[r].clock->at_exact(probe))
          << "rank " << r << ": armed-but-unfired crash plan changed the model";
    }
  }
}

// Crash runs must be byte-identical for any job count: the detector and
// the drop rule are pure functions of the per-World plan, so fanning the
// sweep across threads may not change a single classification or model.
TEST(CrashHealing, CrashSweepIsJobsDeterministic) {
  const auto metric = [](std::uint64_t seed) {
    const ChaosPoint pt = run_one("hca3/1000/skampi_offset/10", 2, 0.003, seed);
    return static_cast<double>(pt.ok) + 10.0 * pt.degraded + 100.0 * pt.failed + pt.err_t10;
  };
  const std::vector<double> serial = teststats::seed_sweep(12, kBaseSeed, 1, metric);
  const std::vector<double> two = teststats::seed_sweep(12, kBaseSeed, 2, metric);
  const std::vector<double> eight = teststats::seed_sweep(12, kBaseSeed, 8, metric);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

}  // namespace
}  // namespace hcs::clocksync
