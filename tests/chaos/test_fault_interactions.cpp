// Fault-interaction robustness: the sync layer must degrade, not hang or
// crash, when independent fault mechanisms compose.
//
// Two interactions with history of breaking retry machinery:
//   - Retransmit exhaustion: at drop rates high enough that whole exchanges
//     lose all kMaxPingAttempts attempts, bursts report lost exchanges and
//     fits run on fewer points; past ~80% the fit can starve entirely.  The
//     contract is graceful: every rank still terminates with a classified
//     report, never an exception or a hang.
//   - Pause x straggler on the same rank: a paused rank stops making
//     progress while the straggler factor stretches every delay to/from it,
//     so its partners' timeouts and the pause-window translation interact.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "clocksync/factory.hpp"
#include "fault/fault_plan.hpp"
#include "simmpi/world.hpp"
#include "support/stats.hpp"
#include "topology/presets.hpp"

namespace hcs::clocksync {
namespace {

constexpr std::uint64_t kBaseSeed = 4000;

struct RunSummary {
  int synced = 0;
  int clean = 0;           // ranks whose report is clean (kOk, nothing lost)
  int failed = 0;
  std::uint64_t lost = 0;  // total exchanges lost across ranks
  std::uint64_t retries = 0;
};

RunSummary run_plan(const std::string& label, const fault::FaultPlan& plan, std::uint64_t seed) {
  simmpi::World w(topology::testbox(4, 2), seed, plan);
  std::vector<std::optional<SyncResult>> results(static_cast<std::size_t>(w.size()));
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = make_sync(label);
    results[static_cast<std::size_t>(ctx.rank())] =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
  });
  RunSummary s;
  for (const auto& res : results) {
    if (!res) continue;
    ++s.synced;
    if (res->report.clean()) ++s.clean;
    if (res->report.health == SyncHealth::kFailed) ++s.failed;
    s.lost += res->report.exchanges_lost;
    s.retries += res->report.retries;
  }
  return s;
}

// Every exchange gets 3 attempts; at p=0.5 an exchange dies with
// probability 0.125, at p=0.9 with 0.729 — deep into exhaustion.  Each
// step up must terminate, keep every rank classified, and lose more.
TEST(RetransmitExhaustion, DegradesGracefullyAsDropsSaturate) {
  const std::string label = "hca3/100/skampi_offset/10";
  std::uint64_t previous_lost = 0;
  for (const double p : {0.2, 0.5, 0.9}) {
    fault::FaultSpec drop;
    drop.kind = fault::FaultKind::kDrop;
    drop.p = p;
    fault::FaultPlan plan;
    plan.add(drop);
    const RunSummary s = run_plan(label, plan, kBaseSeed);
    EXPECT_EQ(s.synced, 8) << "drop p=" << p << ": a rank failed to terminate";
    EXPECT_GT(s.retries, 0u) << "drop p=" << p;
    EXPECT_GE(s.lost, previous_lost) << "drop p=" << p;
    previous_lost = s.lost;
  }
}

// At 90% drop most fit points are invalid; ranks must classify themselves
// as degraded/failed rather than pretending the sync was clean.
TEST(RetransmitExhaustion, SaturatedDropsAreNeverReportedClean) {
  fault::FaultSpec drop;
  drop.kind = fault::FaultKind::kDrop;
  drop.p = 0.9;
  fault::FaultPlan plan;
  plan.add(drop);
  int nonclean_runs = 0;
  for (std::uint64_t seed = kBaseSeed; seed < kBaseSeed + 5; ++seed) {
    const RunSummary s = run_plan("hca3/100/skampi_offset/10", plan, seed);
    EXPECT_EQ(s.synced, 8);
    if (s.clean < 8) ++nonclean_runs;
  }
  EXPECT_EQ(nonclean_runs, 5) << "90% drop reported an all-clean sync";
}

// Pause and straggler on the same rank: the pause window is translated by
// the straggler's delay scaling at both endpoints, so partner timeouts see
// the worst of both.  Every combination must terminate with all 8 ranks
// reporting, and the interaction run must not beat the fault-free run's
// cleanliness.
TEST(PauseStragglerInteraction, ComposedFaultsTerminateEverywhere) {
  const std::string label = "hca3/100/skampi_offset/10";
  for (const double factor : {4.0, 16.0}) {
    for (const double pause_at : {0.0005, 0.002}) {
      fault::FaultSpec pause;
      pause.kind = fault::FaultKind::kPause;
      pause.rank = 5;
      pause.at = pause_at;
      pause.duration = 0.005;
      fault::FaultSpec straggle;
      straggle.kind = fault::FaultKind::kStraggler;
      straggle.rank = 5;
      straggle.factor = factor;
      fault::FaultPlan plan;
      plan.add(pause);
      plan.add(straggle);
      const RunSummary s = run_plan(label, plan, kBaseSeed);
      EXPECT_EQ(s.synced, 8) << "factor=" << factor << " pause_at=" << pause_at
                             << ": a rank failed to terminate";
      EXPECT_EQ(s.failed, 0) << "factor=" << factor << " pause_at=" << pause_at
                             << ": a live, slow rank must degrade, not fail";
    }
  }
}

// The same composed plan must stay deterministic across job counts: the
// chaos sweep's per-trial worlds may not leak state through the pool.
TEST(PauseStragglerInteraction, ComposedPlanIsJobsDeterministic) {
  fault::FaultSpec pause;
  pause.kind = fault::FaultKind::kPause;
  pause.rank = 5;
  pause.at = 0.001;
  pause.duration = 0.005;
  fault::FaultSpec straggle;
  straggle.kind = fault::FaultKind::kStraggler;
  straggle.rank = 5;
  straggle.factor = 8.0;
  fault::FaultPlan plan;
  plan.add(pause);
  plan.add(straggle);
  const auto metric = [&](std::uint64_t seed) {
    const RunSummary s = run_plan("hca3/100/skampi_offset/10", plan, seed);
    return static_cast<double>(s.lost) + 1e3 * static_cast<double>(s.clean);
  };
  const std::vector<double> serial = teststats::seed_sweep(8, kBaseSeed, 1, metric);
  const std::vector<double> parallel = teststats::seed_sweep(8, kBaseSeed, 8, metric);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace hcs::clocksync
