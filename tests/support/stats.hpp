// Statistical helpers for acceptance tests: nearest-rank percentiles and a
// parallel seed sweep.  Header-only and independent of the bench helpers so
// sanitizer CI configurations that build with HCS_BUILD_BENCH=OFF can still
// compile every test that uses it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "runner/trial_runner.hpp"

namespace hcs::teststats {

/// Nearest-rank percentile of a non-empty sample, pct in [0, 100].  Exact
/// sample values only (no interpolation), so bounds calibrated against it
/// are stable under small sample-size changes.
inline double percentile(std::vector<double> xs, double pct) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (pct < 0.0 || pct > 100.0) throw std::invalid_argument("percentile: pct not in [0, 100]");
  std::sort(xs.begin(), xs.end());
  const auto n = xs.size();
  auto rank = static_cast<std::size_t>(std::ceil(pct / 100.0 * static_cast<double>(n)));
  rank = std::clamp<std::size_t>(rank, 1, n);
  return xs[rank - 1];
}

/// Nearest-rank median (the lower-middle element for even sample sizes).
inline double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

/// Runs metric(seed) for seeds base_seed + [0, nseeds) across worker threads
/// and returns the values in seed order.  Deterministic for any job count
/// (runner::TrialRunner semantics); metric must touch only per-trial state.
template <typename Fn>
std::vector<double> seed_sweep(int nseeds, std::uint64_t base_seed, int jobs, Fn&& metric) {
  runner::TrialRunner pool(jobs);
  return pool.map(nseeds, base_seed,
                  [&](const runner::Trial& trial) { return metric(trial.seed); });
}

}  // namespace hcs::teststats
