// Statistical helpers for acceptance tests: nearest-rank percentiles, a
// parallel seed sweep, and a sequential (confidence-interval) stopping rule
// for adaptive sweeps.  Header-only and independent of the bench helpers so
// sanitizer CI configurations that build with HCS_BUILD_BENCH=OFF can still
// compile every test that uses it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "runner/trial_runner.hpp"

namespace hcs::teststats {

/// Nearest-rank percentile of a non-empty sample, pct in [0, 100].  Exact
/// sample values only (no interpolation), so bounds calibrated against it
/// are stable under small sample-size changes.
inline double percentile(std::vector<double> xs, double pct) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (pct < 0.0 || pct > 100.0) throw std::invalid_argument("percentile: pct not in [0, 100]");
  std::sort(xs.begin(), xs.end());
  const auto n = xs.size();
  auto rank = static_cast<std::size_t>(std::ceil(pct / 100.0 * static_cast<double>(n)));
  rank = std::clamp<std::size_t>(rank, 1, n);
  return xs[rank - 1];
}

/// Nearest-rank median (the lower-middle element for even sample sizes).
inline double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

/// Runs metric(seed) for seeds base_seed + [0, nseeds) across worker threads
/// and returns the values in seed order.  Deterministic for any job count
/// (runner::TrialRunner semantics); metric must touch only per-trial state.
template <typename Fn>
std::vector<double> seed_sweep(int nseeds, std::uint64_t base_seed, int jobs, Fn&& metric) {
  runner::TrialRunner pool(jobs);
  return pool.map(nseeds, base_seed,
                  [&](const runner::Trial& trial) { return metric(trial.seed); });
}

// ---------------------------------------------------------------------------
// Sequential stopping rule (Hunold & Carpen-Amarie, "MPI Benchmarking
// Revisited"): instead of always burning a fixed 20 seeds, run batches until
// the Student-t confidence interval of the mean of the checked statistic is
// tight enough relative to the mean, or a hard cap is reached.  The cap
// defaults to the historical 20 and honors $HCLOCKSYNC_SEED_CAP, so CI can
// trade time for confidence without code changes.

struct SweepPolicy {
  int min_seeds = 5;   // seeds in the first batch, before any CI check
  int batch = 5;       // seeds added per subsequent round
  int max_seeds = 20;  // hard cap; adaptive_seed_sweep applies $HCLOCKSYNC_SEED_CAP
  double confidence = 0.95;     // two-sided Student-t confidence level (0.95 or 0.99)
  double rel_halfwidth = 0.05;  // stop once halfwidth <= rel_halfwidth * |mean|
};

/// Two-sided Student-t critical value for `df` degrees of freedom at the
/// 0.95 or 0.99 confidence level (nearest tabulated df at or above; normal
/// asymptote past df 120).  Other levels throw std::invalid_argument.
inline double student_t_critical(int df, double confidence) {
  if (df < 1) throw std::invalid_argument("student_t_critical: df must be >= 1");
  const bool p95 = confidence == 0.95;
  if (!p95 && confidence != 0.99) {
    throw std::invalid_argument("student_t_critical: only 0.95 and 0.99 are tabulated");
  }
  struct Row {
    int df;
    double t95;
    double t99;
  };
  static constexpr Row kTable[] = {
      {1, 12.706, 63.657}, {2, 4.303, 9.925}, {3, 3.182, 5.841},  {4, 2.776, 4.604},
      {5, 2.571, 4.032},   {6, 2.447, 3.707}, {7, 2.365, 3.499},  {8, 2.306, 3.355},
      {9, 2.262, 3.250},   {10, 2.228, 3.169}, {12, 2.179, 3.055}, {15, 2.131, 2.947},
      {20, 2.086, 2.845},  {30, 2.042, 2.750}, {60, 2.000, 2.660}, {120, 1.980, 2.617},
  };
  for (const Row& row : kTable) {
    if (df <= row.df) return p95 ? row.t95 : row.t99;
  }
  return p95 ? 1.960 : 2.576;
}

struct CiSummary {
  double mean = 0.0;
  double sd = 0.0;         // sample standard deviation (n - 1 denominator)
  double halfwidth = 0.0;  // t * sd / sqrt(n)
};

/// Student-t confidence interval of the mean; requires n >= 2.
inline CiSummary mean_ci(const std::vector<double>& xs, double confidence) {
  const auto n = xs.size();
  if (n < 2) throw std::invalid_argument("mean_ci: need at least 2 samples");
  CiSummary ci;
  for (const double x : xs) ci.mean += x;
  ci.mean /= static_cast<double>(n);
  double ss = 0.0;
  for (const double x : xs) ss += (x - ci.mean) * (x - ci.mean);
  ci.sd = std::sqrt(ss / static_cast<double>(n - 1));
  const double t = student_t_critical(static_cast<int>(n) - 1, confidence);
  ci.halfwidth = t * ci.sd / std::sqrt(static_cast<double>(n));
  return ci;
}

/// The pure stopping decision: true once the sample is at least min_seeds
/// long and the CI half-width is within rel_halfwidth of |mean| (a zero-mean
/// sample therefore stops only when its variance is exactly zero).
inline bool should_stop(const std::vector<double>& xs, const SweepPolicy& policy) {
  if (static_cast<int>(xs.size()) < std::max(policy.min_seeds, 2)) return false;
  const CiSummary ci = mean_ci(xs, policy.confidence);
  return ci.halfwidth <= policy.rel_halfwidth * std::abs(ci.mean);
}

/// The hard cap after applying $HCLOCKSYNC_SEED_CAP (must parse as a
/// positive integer to take effect).
inline int seed_cap(int fallback) {
  if (const char* env = std::getenv("HCLOCKSYNC_SEED_CAP")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  return fallback;
}

/// seed_sweep with the sequential stopping rule: runs metric(seed) for seeds
/// base_seed + [0, n) in batches, stopping as soon as should_stop() holds or
/// the (env-capped) policy.max_seeds is reached, and returns the values in
/// seed order.  Deterministic for any job count: batch boundaries and the
/// stopping decision depend only on the metric values, never on timing.
template <typename Fn>
std::vector<double> adaptive_seed_sweep(std::uint64_t base_seed, int jobs, Fn&& metric,
                                        SweepPolicy policy = {}) {
  const int cap = std::max(seed_cap(policy.max_seeds), 1);
  const int first = std::clamp(policy.min_seeds, 1, cap);
  const int step = std::max(policy.batch, 1);
  runner::TrialRunner pool(jobs);
  std::vector<double> xs;
  while (static_cast<int>(xs.size()) < cap) {
    const int have = static_cast<int>(xs.size());
    const int want = have == 0 ? first : std::min(have + step, cap);
    const std::vector<double> batch =
        pool.map(want - have, base_seed + static_cast<std::uint64_t>(have),
                 [&](const runner::Trial& trial) { return metric(trial.seed); });
    xs.insert(xs.end(), batch.begin(), batch.end());
    if (should_stop(xs, policy)) break;
  }
  return xs;
}

}  // namespace hcs::teststats
