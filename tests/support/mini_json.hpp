// Minimal recursive-descent JSON parser for tests.
//
// Just enough of RFC 8259 to round-trip what our exporters emit (objects,
// arrays, strings with escapes, numbers, bools, null) while rejecting
// malformed output — so "the trace file is valid JSON" is a real assertion,
// not a substring check.  Throws std::runtime_error with a byte offset on
// the first syntax error.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace hcs::testsupport {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>;

  JsonValue() : v_(nullptr) {}
  JsonValue(Storage v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(v_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(v_); }

  bool has(const std::string& key) const { return as_object().count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return as_object().at(key); }

 private:
  Storage v_;
};

class JsonParser {
 public:
  /// Parses exactly one JSON document; trailing garbage is an error.
  static JsonValue parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v = p.value();
    p.skip_ws();
    if (p.pos_ != text.size()) p.fail("trailing characters after document");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) + ": " + what);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue(string());
      case 't': literal("true"); return JsonValue(true);
      case 'f': literal("false"); return JsonValue(false);
      case 'n': literal("null"); return JsonValue(nullptr);
      default: return number();
    }
  }

  void literal(const char* word) {
    for (const char* c = word; *c; ++c) {
      if (pos_ >= text_.size() || text_[pos_] != *c) fail(std::string("bad literal ") + word);
      ++pos_;
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      std::size_t used = 0;
      const double d = std::stod(text_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) fail("bad number");
      return JsonValue(d);
    } catch (const std::logic_error&) {
      fail("bad number");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Tests only emit ASCII control escapes; encode as a single byte.
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported by mini parser");
          out += static_cast<char>(code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue array() {
    expect('[');
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    while (true) {
      items.push_back(value());
      skip_ws();
      const char c = next();
      if (c == ']') return JsonValue(std::move(items));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue object() {
    expect('{');
    JsonObject members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      members.emplace(std::move(key), value());
      skip_ws();
      const char c = next();
      if (c == '}') return JsonValue(std::move(members));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace hcs::testsupport
