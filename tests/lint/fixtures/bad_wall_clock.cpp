// Bad fixture for wall-clock: host time sources in simulated code.
#include <chrono>
#include <sys/time.h>

namespace fixture {

double host_now() {
  const auto t0 = std::chrono::steady_clock::now();  // hcs-lint-expect: wall-clock
  (void)t0;
  struct timeval tv;
  gettimeofday(&tv, nullptr);  // hcs-lint-expect: wall-clock
  return static_cast<double>(tv.tv_sec);
}

using WallClock = std::chrono::system_clock;  // hcs-lint-expect: wall-clock

}  // namespace fixture
