// Bad fixture for coro-lambda-capture: lambda coroutines outliving their
// captures (CP.51).  The temporary closure dies at the semicolon; the frame
// keeps pointing into it.
#include "sim/simulation.hpp"

namespace fixture {

void use(int v);

void detached_with_capture(hcs::sim::Simulation& s, int payload) {
  s.spawn([&payload]() -> hcs::sim::Task<void> {  // hcs-lint-expect: coro-lambda-capture
    co_await s.delay(1.0);
    use(payload);
  }());
}

auto returned_ref_capture(hcs::sim::Simulation& s) {
  int local = 42;
  return [&]() -> hcs::sim::Task<void> {  // hcs-lint-expect: coro-lambda-capture
    co_await s.delay(1.0);
    use(local);
  };
}

}  // namespace fixture
