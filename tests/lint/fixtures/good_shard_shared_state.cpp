// Good fixture for shard-shared-state: rank code stays inside its own shard —
// time comes from the rank's accessors, cross-shard effects ride ordinary
// sends (the engine's mailbox API), and the shard index is only ever read.
namespace fixture {

struct Simulation {
  double now() const;
};

struct Ctx {
  Simulation& sim();  // resolves the rank's owning shard
  int rank() const;
};

namespace sim {
int current_shard();
}

struct Payload {
  double value;
};

void post(Ctx& ctx, int dst, Payload p);

// Reads time through the rank's own shard.
double observe(Ctx& ctx) { return ctx.sim().now(); }

// Cross-shard communication through the transport: the message is queued in
// the destination shard's mailbox and delivered at the next window boundary.
void publish(Ctx& ctx, int dst, double v) { post(ctx, dst, Payload{v}); }

// Reading the shard index is fine; only re-pointing it is a hazard.
int where() { return sim::current_shard(); }

}  // namespace fixture
