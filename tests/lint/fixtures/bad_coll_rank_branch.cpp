// Bad fixture for coll-rank-branch: collective calls that only some ranks
// reach.  Not compiled — scanned by the lint tests.
#include "simmpi/collectives.hpp"

namespace fixture {

sim::Task<void> diverging(hcs::simmpi::RankCtx& ctx) {
  if (ctx.rank() == 0) {  // hcs-lint-expect: coll-rank-branch
    co_await bcast(ctx.comm_world(), 1.0, 0);
  }
  co_return;
}

sim::Task<void> early_exit(hcs::simmpi::RankCtx& ctx) {
  if (ctx.rank() > 3) {  // hcs-lint-expect: coll-rank-branch
    co_return;
  }
  co_await barrier(ctx.comm_world());
}

sim::Task<void> tainted_variable(hcs::simmpi::RankCtx& ctx) {
  const int me = ctx.rank();
  const int color = me % 2;
  if (color == 0) {  // hcs-lint-expect: coll-rank-branch
    auto row = co_await ctx.comm_world().split(0, 0);
  }
  co_return;
}

}  // namespace fixture
