// Good fixture for coll-rank-branch: every pattern here is rank-divergent
// control flow that is nevertheless collectively safe, and must stay silent.
#include "simmpi/collectives.hpp"

namespace fixture {

// Both branches reach the same collective sequence.
sim::Task<void> matched(hcs::simmpi::RankCtx& ctx) {
  if (ctx.rank() == 0) {
    co_await bcast(ctx.comm_world(), 1.0, 0);
  } else {
    co_await bcast(ctx.comm_world(), 0.0, 0);
  }
}

// Failure-detector checks are not rank branching: peer_status(rank) reads
// liveness, it does not pick a collective path by rank identity.
sim::Task<void> neutral_status(hcs::simmpi::RankCtx& ctx, int peer_rank) {
  if (ctx.comm_world().peer_status(peer_rank) == hcs::simmpi::PeerStatus::kDead) {
    co_return;
  }
  co_await barrier(ctx.comm_world());
}

// break only leaves the loop; every rank still reaches the barrier.
sim::Task<void> loop_break(hcs::simmpi::RankCtx& ctx) {
  for (int i = 0; i < 4; ++i) {
    if (i == ctx.rank()) {
      break;
    }
  }
  co_await barrier(ctx.comm_world());
}

// Rank-dependent work (not collectives) inside a branch is fine.
sim::Task<void> local_work(hcs::simmpi::RankCtx& ctx, std::vector<double>& acc) {
  if (ctx.rank() == 0) {
    acc.push_back(1.0);
  }
  co_await barrier(ctx.comm_world());
}

}  // namespace fixture
