// Good fixture for wall-clock: simulated code reads time from the
// Simulation; chrono *types* without a clock source are fine too.
#include <chrono>

#include "sim/simulation.hpp"

namespace fixture {

double sample(const hcs::sim::Simulation& s) { return s.now(); }

// Durations and time_points are deterministic values, not clock reads.
std::chrono::nanoseconds budget() { return std::chrono::nanoseconds(100); }

}  // namespace fixture
