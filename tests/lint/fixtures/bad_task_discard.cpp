// Bad fixture for task-discard: Task-returning calls whose result is dropped
// on the floor — the coroutine is destroyed before it ever runs.
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace fixture {

sim::Task<void> fire_and_forget(hcs::simmpi::Comm& comm) {
  comm.send(1, 0, 3.5);  // hcs-lint-expect: task-discard
  barrier(comm);  // hcs-lint-expect: task-discard
  co_return;
}

void sync_context(hcs::sim::Simulation& s) {
  s.delay(0.25);  // hcs-lint-expect: task-discard
}

}  // namespace fixture
