// Bad fixture for soa-point-state: per-point measurement state kept
// array-of-structs in clock-sync code.
#include <utility>
#include <vector>

namespace fixture {

// A per-point record: two floating-point fields scanned one at a time by the
// median/outlier/fit passes.
struct FitPoint {
  double timestamp = 0.0;
  double offset = 0.0;
  double min_rtt = 0.0;
};

double sum_offsets(int n) {
  std::vector<FitPoint> points;  // hcs-lint-expect: soa-point-state
  points.reserve(static_cast<unsigned>(n));
  double sum = 0.0;
  for (const FitPoint& p : points) sum += p.offset;
  return sum;
}

double median_diff() {
  // The two-field point record in disguise.
  std::vector<std::pair<double, double>> obs;  // hcs-lint-expect: soa-point-state
  return obs.empty() ? 0.0 : obs.front().second;
}

struct ClockOffset;  // the real one lives in clocksync/offset.hpp

// Known point struct: flagged even though the definition is in another file.
std::vector<ClockOffset>* burst_results();  // hcs-lint-expect: soa-point-state

}  // namespace fixture
