// Bad fixture for shard-shared-state: rank code reaching across shard
// boundaries instead of going through the mailbox API and per-rank accessors.
namespace fixture {

struct Simulation {
  double now() const;
};

struct World {
  Simulation& sim();  // shard 0's event loop
};

struct Ctx {
  World& world();
  Simulation& sim();  // the rank's own shard
};

// Reads shard 0's clock from rank code — wrong time for ranks on any other
// shard, and a data race with shard 0's worker thread.
double observe(Ctx& ctx) {
  return ctx.world().sim().now();  // hcs-lint-expect: shard-shared-state
}

struct Comm {
  World* world_;
  double now() const {
    return world_->sim().now();  // hcs-lint-expect: shard-shared-state
  }
};

// Re-points the engine-owned shard context so subsequent writes land in
// another shard's state, bypassing the window-boundary mailbox drain.
void hijack_shard(int target, double* slot, double v) {
  sim::set_current_shard(target);  // hcs-lint-expect: shard-shared-state
  *slot = v;
}

}  // namespace fixture
