// Good fixture for soa-point-state: SoA layouts and near-miss AoS shapes
// that must stay silent.
#include <cstddef>
#include <utility>
#include <vector>

namespace fixture {

// The recommended shape: one contiguous array per field.
class FitPointsSoA {
 public:
  void push(double timestamp, double offset) {
    timestamps_.push_back(timestamp);
    offsets_.push_back(offset);
  }
  std::size_t size() const { return timestamps_.size(); }

 private:
  std::vector<double> timestamps_;
  std::vector<double> offsets_;
};

// One floating-point field is not a point record — a vector of these scans
// the whole element anyway.
struct Sample {
  double value = 0.0;
  int rank = 0;
};

std::vector<Sample> samples;

// A single point-shaped instance is fine; the rule is about arrays of them.
struct Window {
  double lo = 0.0;
  double hi = 0.0;
};

Window current_window;

double lookup(const std::vector<double>& xs, const std::vector<std::pair<int, double>>& tags) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  for (const auto& t : tags) sum += t.second;
  return sum;
}

}  // namespace fixture
