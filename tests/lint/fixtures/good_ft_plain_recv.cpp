// Good fixture for ft-plain-recv: plain recv is fine in a file that never
// touches the failure-detector API (no crash-awareness expected here).
#include "simmpi/comm.hpp"

namespace fixture {

sim::Task<double> drain(hcs::simmpi::Comm& comm, int peer) {
  double v = co_await comm.recv(peer, 0);
  co_return v;
}

// A declaration of a method named recv is not a call.
struct Stub {
  sim::Task<double> recv(int peer, int tag);
};

}  // namespace fixture
