// Bad fixture for raw-random: nondeterministic or unseedable randomness.
#include <cstdlib>
#include <random>

namespace fixture {

int roll() {
  std::random_device rd;  // hcs-lint-expect: raw-random
  (void)rd;
  std::mt19937 gen;  // hcs-lint-expect: raw-random
  (void)gen;
  return rand() % 6;  // hcs-lint-expect: raw-random
}

void reseed() {
  srand(42);  // hcs-lint-expect: raw-random
}

}  // namespace fixture
