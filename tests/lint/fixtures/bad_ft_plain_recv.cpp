// Bad fixture for ft-plain-recv: a file on the failure-detector path (it
// calls recv_ft) also uses plain recv, which hangs if the peer crashed.
#include "simmpi/comm.hpp"

namespace fixture {

sim::Task<double> drain(hcs::simmpi::Comm& comm, int peer) {
  auto guarded = co_await comm.recv_ft(peer, 0);
  double v = co_await comm.recv(peer, 1);  // hcs-lint-expect: ft-plain-recv
  co_return v;
}

}  // namespace fixture
