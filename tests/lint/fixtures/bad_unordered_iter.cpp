// Bad fixture for unordered-iter: iteration order feeds output.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

void emit(int k, double v);

void dump_param(const std::unordered_map<int, double>& stats) {
  for (const auto& kv : stats) {  // hcs-lint-expect: unordered-iter
    emit(kv.first, kv.second);
  }
}

void dump_local() {
  std::unordered_set<std::string> names;
  names.insert("a");
  for (const auto& n : names) {  // hcs-lint-expect: unordered-iter
    emit(static_cast<int>(n.size()), 0.0);
  }
}

}  // namespace fixture
