// Good fixture for co-await-subexpr: every await is a full statement (or the
// sole initializer); short-circuiting happens on already-awaited values.
#include "simmpi/comm.hpp"

namespace fixture {

sim::Task<bool> ready(hcs::simmpi::Comm& comm);
sim::Task<bool> drain(hcs::simmpi::Comm& comm);

sim::Task<int> hoisted(hcs::simmpi::Comm& comm, bool is_leaf) {
  int v = 7;
  if (is_leaf) {
    v = co_await comm.recv(0, 0);
  }
  co_return v;
}

sim::Task<bool> sequenced(hcs::simmpi::Comm& comm) {
  const bool a = co_await ready(comm);
  const bool b = co_await drain(comm);
  co_return a && b;
}

// && inside the awaited call's arguments is below the co_await, not beside it.
sim::Task<void> args_ok(hcs::simmpi::Comm& comm, bool x, bool y) {
  co_await comm.send(0, 0, (x && y) ? 1.0 : 0.0);
}

}  // namespace fixture
