// Good fixture for task-discard: every Task is awaited, stored or spawned.
#include <utility>

#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace fixture {

sim::Task<void> awaited(hcs::simmpi::Comm& comm) {
  co_await comm.send(1, 0, 3.5);
  auto pending = comm.recv(1, 0);
  double v = co_await std::move(pending);
  (void)v;
  co_return;
}

void spawned(hcs::sim::Simulation& s, hcs::simmpi::Comm& comm) {
  s.spawn(comm.send(1, 0, 2.0));
}

// A declaration is not a discarded call.
sim::Task<void> send(hcs::simmpi::Comm& comm, int peer);

}  // namespace fixture
