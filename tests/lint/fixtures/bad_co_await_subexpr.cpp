// Bad fixture for co-await-subexpr: the GCC 12 miscompile class — co_await
// evaluated inside ?:, && or || (cf. the PR 4 Comm::split frame double-free).
#include "simmpi/comm.hpp"

namespace fixture {

sim::Task<bool> ready(hcs::simmpi::Comm& comm);
sim::Task<bool> drain(hcs::simmpi::Comm& comm);

sim::Task<int> ternary(hcs::simmpi::Comm& comm, bool is_leaf) {
  int v = is_leaf ? co_await comm.recv(0, 0) : 7;  // hcs-lint-expect: co-await-subexpr
  co_return v;
}

sim::Task<bool> conjunction(hcs::simmpi::Comm& comm) {
  bool ok = co_await ready(comm) &&  // hcs-lint-expect: co-await-subexpr
            co_await drain(comm);    // hcs-lint-expect: co-await-subexpr
  co_return ok;
}

}  // namespace fixture
