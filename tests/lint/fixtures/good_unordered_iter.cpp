// Good fixture for unordered-iter: ordered containers iterate fine, and
// point lookups into unordered containers are not iteration.
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

void emit(int k, double v);

void dump_ordered(const std::map<int, double>& stats) {
  for (const auto& kv : stats) {
    emit(kv.first, kv.second);
  }
}

double lookup(const std::unordered_map<int, double>& cache, int key) {
  return cache.at(key);
}

void classic_loop(const std::vector<double>& xs) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    emit(static_cast<int>(i), xs[i]);
  }
}

}  // namespace fixture
