// Good fixture for coro-lambda-capture: the repo's safe idioms must stay
// silent — run_all holds the callable for the whole run, and capture-free
// lambdas pass state as coroutine parameters (copied into the frame).
#include "sim/simulation.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/world.hpp"

namespace fixture {

// The World owns the callable until every rank finishes: captures are safe.
void run(hcs::simmpi::World& w, int rounds) {
  w.run_all([&](hcs::simmpi::RankCtx& ctx) -> hcs::sim::Task<void> {
    for (int i = 0; i < rounds; ++i) {
      co_await barrier(ctx.comm_world());
    }
  });
}

// Capture-free immediately-invoked coroutine: state lives in the frame.
void detached(hcs::sim::Simulation& s) {
  s.spawn([](hcs::sim::Simulation& sim) -> hcs::sim::Task<void> {
    co_await sim.delay(1.0);
  }(s));
}

// Returned lambda capturing by value owns its state.
auto by_value(hcs::sim::Simulation& s, int payload) {
  return [payload](hcs::sim::Simulation& sim) -> hcs::sim::Task<void> {
    co_await sim.delay(static_cast<double>(payload));
  };
}

}  // namespace fixture
