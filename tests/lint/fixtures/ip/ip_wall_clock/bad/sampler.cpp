// hcs-lint-path: src/clocksync/sampler.cpp
// Bad fixture for ip-wall-clock, file 2/3: sim-visible code one call edge
// away from the exempt wall-clock read.  Not compiled.

namespace hcs::clocksync {

double sample_latency() {
  return host_now_seconds() * 1e-3;  // hcs-lint-expect: ip-wall-clock
}

}  // namespace hcs::clocksync
