// hcs-lint-path: src/clocksync/reporter.cpp
// Bad fixture for ip-wall-clock, file 3/3: two call edges away from the
// hazard — the chain in the message walks through sample_latency.  Not
// compiled.

namespace hcs::clocksync {

double report_latency_ms() {
  return sample_latency() * 1e3;  // hcs-lint-expect: ip-wall-clock
}

}  // namespace hcs::clocksync
