// hcs-lint-path: src/runner/host_timer.cpp
// Bad fixture for ip-wall-clock, file 1/3: the taint source.  src/runner/ is
// exempt from the per-file wall-clock rule, so this helper lints clean on its
// own — the hazard only becomes visible from its callers.  Not compiled.
#include <chrono>

namespace hcs::runner {

double host_now_seconds() {
  const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(since_epoch).count();
}

}  // namespace hcs::runner
