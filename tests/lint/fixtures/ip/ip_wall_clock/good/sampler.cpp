// hcs-lint-path: src/clocksync/sampler.cpp
// Good fixture for ip-wall-clock, file 2/2: same call shape as the bad set,
// but the callee carries no wall-clock hazard.  Not compiled.

namespace hcs::clocksync {

double sample_latency(double now) { return host_now_seconds(now) * 1e-3; }

}  // namespace hcs::clocksync
