// hcs-lint-path: src/runner/host_timer.cpp
// Good fixture for ip-wall-clock, file 1/2: the runner helper takes the time
// as a parameter instead of reading a wall clock, so no taint enters the
// call graph.  Not compiled.

namespace hcs::runner {

double host_now_seconds(double injected_now) { return injected_now; }

}  // namespace hcs::runner
