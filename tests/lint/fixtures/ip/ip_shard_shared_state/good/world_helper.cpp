// hcs-lint-path: src/simmpi/world.cpp
// Good fixture for ip-shard-shared-state, file 1/2: the helper routes the
// request through the mailbox API instead of writing the shard slot, and
// only reads the sanctioned per-rank accessor.  Not compiled.

namespace hcs::simmpi {

void pin_shard_for_rank(int shard) {
  const int cur = current_shard();
  if (cur != shard) post_migration_request(shard);
}

}  // namespace hcs::simmpi
