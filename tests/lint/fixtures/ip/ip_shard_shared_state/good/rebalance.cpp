// hcs-lint-path: src/clocksync/rebalance.cpp
// Good fixture for ip-shard-shared-state, file 2/2: the same caller as the
// bad set — clean because the helper no longer writes engine-owned state.
// Not compiled.

namespace hcs::clocksync {

void rebalance_rank(int shard) { pin_shard_for_rank(shard); }

}  // namespace hcs::clocksync
