// hcs-lint-path: src/simmpi/world.cpp
// Bad fixture for ip-shard-shared-state, file 1/2: the engine-owned helper.
// world.cpp is exempt from the per-file shard-shared-state rule (it owns the
// thread-local slot), so the write is invisible file-locally.  Not compiled.

namespace hcs::simmpi {

void pin_shard_for_rank(int shard) { set_current_shard(shard); }

}  // namespace hcs::simmpi
