// hcs-lint-path: src/clocksync/rebalance.cpp
// Bad fixture for ip-shard-shared-state, file 2/2: rank code reaching the
// engine's shard-slot write through the exempt helper.  Not compiled.

namespace hcs::clocksync {

void rebalance_rank(int shard) {
  pin_shard_for_rank(shard);  // hcs-lint-expect: ip-shard-shared-state
}

}  // namespace hcs::clocksync
