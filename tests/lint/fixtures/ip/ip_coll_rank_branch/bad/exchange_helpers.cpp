// hcs-lint-path: src/clocksync/exchange_helpers.cpp
// Bad fixture for ip-coll-rank-branch, file 1/2: helpers whose collective
// footprints differ.  File-locally each is fine — the divergence only
// appears when a rank-dependent branch picks between them.  Not compiled.

namespace hcs::clocksync {

sim::Task<void> exchange_root(simmpi::Comm& comm) {
  co_await barrier(comm);
}

sim::Task<void> exchange_leaf(simmpi::Comm& comm) {
  double v = 0.0;
  co_await allreduce(comm, v);
}

sim::Task<void> finish_round(simmpi::Comm& comm) {
  co_await barrier(comm);
}

}  // namespace hcs::clocksync
