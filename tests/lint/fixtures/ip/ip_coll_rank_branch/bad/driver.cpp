// hcs-lint-path: src/clocksync/driver.cpp
// Bad fixture for ip-coll-rank-branch, file 2/2: both hazards the rule owns.
// The arms carry no direct collectives (so the per-file rule stays silent);
// the helpers hide {barrier} vs {allreduce}.  The second function exits early
// on a rank-dependent condition, skipping the barrier inside finish_round.
// Not compiled.

namespace hcs::clocksync {

sim::Task<void> drive_divergent(simmpi::Comm& comm) {
  const int r = comm.rank();
  if (r == 0) {  // hcs-lint-expect: ip-coll-rank-branch
    co_await exchange_root(comm);
  } else {
    co_await exchange_leaf(comm);
  }
}

sim::Task<void> drive_early_exit(simmpi::Comm& comm) {
  const int r = comm.rank();
  if (r != 0) {  // hcs-lint-expect: ip-coll-rank-branch
    co_return;
  }
  co_await finish_round(comm);
}

}  // namespace hcs::clocksync
