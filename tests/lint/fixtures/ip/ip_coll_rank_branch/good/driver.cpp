// hcs-lint-path: src/clocksync/driver.cpp
// Good fixture for ip-coll-rank-branch, file 2/2: the branch picks between
// helpers with identical collective bags, and the early exit only skips a
// helper with no collectives in reach.  Not compiled.

namespace hcs::clocksync {

sim::Task<void> drive_uniform(simmpi::Comm& comm) {
  const int r = comm.rank();
  if (r == 0) {
    co_await exchange_root(comm);
  } else {
    co_await exchange_leaf(comm);
  }
}

sim::Task<void> drive_local_tail(simmpi::Comm& comm, std::vector<double>& xs) {
  const int r = comm.rank();
  if (r != 0) {
    co_return;
  }
  co_await fold_residuals(xs);
}

}  // namespace hcs::clocksync
