// hcs-lint-path: src/clocksync/exchange_helpers.cpp
// Good fixture for ip-coll-rank-branch, file 1/2: both helpers perform the
// same collective, so either arm reaches the same sequence.  Not compiled.

namespace hcs::clocksync {

sim::Task<void> exchange_root(simmpi::Comm& comm) {
  co_await barrier(comm);
}

sim::Task<void> exchange_leaf(simmpi::Comm& comm) {
  co_await barrier(comm);
}

sim::Task<void> fold_residuals(std::vector<double>& xs) {
  double acc = 0.0;
  for (double x : xs) acc += x;
  xs.assign(1, acc);
  co_return;
}

}  // namespace hcs::clocksync
