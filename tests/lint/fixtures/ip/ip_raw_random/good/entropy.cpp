// hcs-lint-path: src/clocksync/entropy.cpp
// Good fixture for ip-raw-random, file 1/2: identical taint source to the
// bad set — the caller neutralizes it with a call-site suppression instead.
// Not compiled.

namespace hcs::clocksync {

int host_entropy() {
  return rand();  // hcs-lint: allow(raw-random) fixture: pretend-justified host entropy
}

}  // namespace hcs::clocksync
