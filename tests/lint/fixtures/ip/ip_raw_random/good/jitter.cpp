// hcs-lint-path: src/clocksync/jitter.cpp
// Good fixture for ip-raw-random, file 2/2: the interprocedural finding is
// acknowledged at the call site, which is exactly where the rule asks for
// the justification.  Not compiled.

namespace hcs::clocksync {

int jitter_sample() {
  return host_entropy() % 7;  // hcs-lint: allow(ip-raw-random) fixture: bench-only entropy
}

}  // namespace hcs::clocksync
