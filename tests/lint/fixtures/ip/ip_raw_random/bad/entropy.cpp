// hcs-lint-path: src/clocksync/entropy.cpp
// Bad fixture for ip-raw-random, file 1/2: the taint source.  The rand()
// call is suppressed with a per-file justification, so the per-file rule is
// silent here — but the suppression does not launder the callers.  Not
// compiled.

namespace hcs::clocksync {

int host_entropy() {
  return rand();  // hcs-lint: allow(raw-random) fixture: pretend-justified host entropy
}

}  // namespace hcs::clocksync
