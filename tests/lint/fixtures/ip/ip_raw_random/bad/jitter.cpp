// hcs-lint-path: src/clocksync/jitter.cpp
// Bad fixture for ip-raw-random, file 2/2: the caller reaches the suppressed
// rand() through the helper without any justification of its own.  Not
// compiled.

namespace hcs::clocksync {

int jitter_sample() {
  return host_entropy() % 7;  // hcs-lint-expect: ip-raw-random
}

}  // namespace hcs::clocksync
