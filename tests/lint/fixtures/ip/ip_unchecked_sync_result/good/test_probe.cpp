// hcs-lint-path: tests/clocksync/test_probe.cpp
// Good fixture for ip-unchecked-sync-result, file 3/3: tests/ is exempt —
// a harness may drive sync_clocks purely for its side effects.  Not
// compiled.

namespace hcs::clocksync {

void probe_once(simmpi::Comm& comm) {
  run_mini_sync(comm);
}

}  // namespace hcs::clocksync
