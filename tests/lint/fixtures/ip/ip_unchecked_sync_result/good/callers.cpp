// hcs-lint-path: src/clocksync/callers.cpp
// Good fixture for ip-unchecked-sync-result, file 2/3: the caller binds the
// full result and consults the report before trusting the clock.  Not
// compiled.

namespace hcs::clocksync {

void caller_checks(simmpi::Comm& comm) {
  const SyncResult res = run_mini_sync(comm);
  if (!res.report.clean()) {
    return;
  }
  install_clock(res.clock);
}

}  // namespace hcs::clocksync
