// hcs-lint-path: src/clocksync/mini_sync.cpp
// Good fixture for ip-unchecked-sync-result, file 1/3: same definition as
// the bad set.  Not compiled.

namespace hcs::clocksync {

SyncResult run_mini_sync(simmpi::Comm& comm) {
  SyncReport report;
  report.points_requested = comm.size();
  return SyncResult{nullptr, report};
}

}  // namespace hcs::clocksync
