// hcs-lint-path: src/clocksync/callers.cpp
// Bad fixture for ip-unchecked-sync-result, file 2/2: the three ways to drop
// the SyncReport — discard the value, narrow it to the clock, or bind it and
// never consult .report.  Not compiled.

namespace hcs::clocksync {

void caller_discards(simmpi::Comm& comm) {
  run_mini_sync(comm);  // hcs-lint-expect: ip-unchecked-sync-result
}

void caller_narrows(simmpi::Comm& comm) {
  const vclock::ClockPtr g = run_mini_sync(comm);  // hcs-lint-expect: ip-unchecked-sync-result
  install_clock(g);
}

void caller_binds_unchecked(simmpi::Comm& comm) {
  const auto res = run_mini_sync(comm);  // hcs-lint-expect: ip-unchecked-sync-result
  install_clock(res.clock);
}

}  // namespace hcs::clocksync
