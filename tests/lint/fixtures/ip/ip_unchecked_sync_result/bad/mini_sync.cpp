// hcs-lint-path: src/clocksync/mini_sync.cpp
// Bad fixture for ip-unchecked-sync-result, file 1/2: a SyncResult-returning
// definition for the index to resolve.  Not compiled.

namespace hcs::clocksync {

SyncResult run_mini_sync(simmpi::Comm& comm) {
  SyncReport report;
  report.points_requested = comm.size();
  return SyncResult{nullptr, report};
}

}  // namespace hcs::clocksync
