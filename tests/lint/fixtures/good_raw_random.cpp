// Good fixture for raw-random: all randomness derives from the run seed.
#include <cstdint>
#include <random>

#include "sim/rng.hpp"

namespace fixture {

// Member engines ending in _ are seeded in the constructor.
struct Streams {
  explicit Streams(std::uint64_t seed) : rng_(seed) {}
  std::mt19937_64 rng_;
};

// Explicitly seeded locals are fine.
double jitter(std::uint64_t seed) {
  std::mt19937 gen(seed);
  return static_cast<double>(gen());
}

// The project RNG carries the per-trial seed.
int draw(hcs::sim::Rng& rng) { return static_cast<int>(rng.uniform(0.0, 5.0)); }

}  // namespace fixture
