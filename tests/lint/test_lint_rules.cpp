// Fixture-driven rule tests: every rule has a bad fixture whose
// `// hcs-lint-expect: <rule-id>` annotations name the exact findings it must
// produce (rule id + line), and a good fixture that must stay silent.  The
// pairing itself is enforced: adding a rule without fixtures fails RuleTable.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/rules.hpp"

namespace hcs::lint {
namespace {

namespace fs = std::filesystem;

const fs::path kFixtureDir = HCS_LINT_FIXTURE_DIR;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string underscored(std::string rule) {
  for (char& c : rule) {
    if (c == '-') c = '_';
  }
  return rule;
}

// Findings and expectations both reduce to (line, rule) pairs with
// multiplicity — two awaits on one line mean two findings on that line.
using LineRule = std::pair<int, std::string>;

std::multiset<LineRule> expectations(const std::string& source) {
  std::multiset<LineRule> out;
  std::istringstream in(source);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    ++n;
    const std::size_t at = line.find("hcs-lint-expect:");
    if (at == std::string::npos) continue;
    std::string cur;
    const auto flush = [&] {
      if (!cur.empty()) out.insert({n, cur});
      cur.clear();
    };
    for (std::size_t i = at + 16; i < line.size(); ++i) {
      const char c = line[i];
      if (c == ',') {
        flush();
      } else if (c != ' ' && c != '\t') {
        cur.push_back(c);
      }
    }
    flush();
  }
  return out;
}

std::multiset<LineRule> as_line_rules(const std::vector<Finding>& findings) {
  std::multiset<LineRule> out;
  for (const Finding& f : findings) out.insert({f.line, f.rule});
  return out;
}

std::string dump(const std::multiset<LineRule>& s) {
  std::ostringstream os;
  for (const auto& [line, rule] : s) os << "  line " << line << ": " << rule << "\n";
  return s.empty() ? "  (none)\n" : os.str();
}

class FixturePair : public ::testing::TestWithParam<std::string> {};

TEST_P(FixturePair, BadFixtureFiresExactlyTheAnnotatedFindings) {
  const std::string rule = GetParam();
  const fs::path path = kFixtureDir / ("bad_" + underscored(rule) + ".cpp");
  const std::string source = read_file(path);
  const std::multiset<LineRule> expected = expectations(source);
  ASSERT_FALSE(expected.empty()) << path << " has no hcs-lint-expect annotations";

  const std::vector<Finding> findings =
      analyze_source("tests/lint/fixtures/" + path.filename().string(), source, {});
  const std::multiset<LineRule> actual = as_line_rules(findings);
  EXPECT_EQ(expected, actual) << "expected findings:\n"
                              << dump(expected) << "actual findings:\n"
                              << dump(actual);
  for (const auto& [line, r] : expected) {
    EXPECT_EQ(r, rule) << path << ":" << line
                       << " annotates a different rule than the fixture is named for";
  }
}

TEST_P(FixturePair, GoodFixtureStaysSilent) {
  const std::string rule = GetParam();
  const fs::path path = kFixtureDir / ("good_" + underscored(rule) + ".cpp");
  const std::string source = read_file(path);
  ASSERT_EQ(source.find("hcs-lint-expect"), std::string::npos)
      << path << ": good fixtures must not carry expect annotations";

  const std::vector<Finding> findings =
      analyze_source("tests/lint/fixtures/" + path.filename().string(), source, {});
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << "  " << f.path << ":" << f.line << ": " << f.message << " [" << f.rule << "]\n";
  }
  EXPECT_TRUE(findings.empty()) << "good fixture produced findings:\n" << os.str();
}

std::vector<std::string> per_file_rule_ids() {
  std::vector<std::string> ids;
  for (const RuleInfo& r : rule_table()) {
    if (!r.interprocedural) ids.push_back(r.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllRules, FixturePair, ::testing::ValuesIn(per_file_rule_ids()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return underscored(info.param);
                         });

// Counts *.cpp files directly inside `dir` (the multi-file ip fixture sets).
std::size_t cpp_files_in(const fs::path& dir) {
  if (!fs::is_directory(dir)) return 0;
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".cpp") ++n;
  }
  return n;
}

TEST(RuleTable, EveryRuleHasAFixturePairOnDisk) {
  for (const RuleInfo& r : rule_table()) {
    if (r.interprocedural) {
      // Interprocedural rules need multi-file sets: ip/<rule>/{bad,good}/.
      const fs::path base = kFixtureDir / "ip" / underscored(r.id);
      EXPECT_GE(cpp_files_in(base / "bad"), 2u)
          << "rule " << r.id << " needs a multi-file bad set under " << (base / "bad");
      EXPECT_GE(cpp_files_in(base / "good"), 2u)
          << "rule " << r.id << " needs a multi-file good set under " << (base / "good");
      continue;
    }
    EXPECT_TRUE(fs::exists(kFixtureDir / ("bad_" + underscored(r.id) + ".cpp")))
        << "rule " << r.id << " has no bad fixture";
    EXPECT_TRUE(fs::exists(kFixtureDir / ("good_" + underscored(r.id) + ".cpp")))
        << "rule " << r.id << " has no good fixture";
  }
}

TEST(RuleTable, EveryIpFixtureDirectoryNamesAKnownInterproceduralRule) {
  const fs::path ip_dir = kFixtureDir / "ip";
  ASSERT_TRUE(fs::is_directory(ip_dir));
  for (const auto& entry : fs::directory_iterator(ip_dir)) {
    ASSERT_TRUE(entry.is_directory()) << entry.path() << " is not a per-rule directory";
    std::string id = entry.path().filename().string();
    for (char& c : id) {
      if (c == '_') c = '-';
    }
    const RuleInfo* rule = find_rule(id);
    ASSERT_NE(rule, nullptr) << entry.path() << " names unknown rule '" << id << "'";
    EXPECT_TRUE(rule->interprocedural)
        << entry.path() << ": only interprocedural rules live under ip/";
  }
}

TEST(RuleTable, EveryFixtureOnDiskNamesAKnownRule) {
  for (const auto& entry : fs::directory_iterator(kFixtureDir)) {
    if (entry.is_directory()) continue;  // ip/ holds the interprocedural sets
    std::string stem = entry.path().stem().string();
    std::string prefix;
    for (const char* p : {"bad_", "good_"}) {
      if (stem.rfind(p, 0) == 0) prefix = p;
    }
    ASSERT_FALSE(prefix.empty()) << "fixture " << entry.path()
                                 << " is not named bad_<rule>.cpp or good_<rule>.cpp";
    std::string id = stem.substr(prefix.size());
    for (char& c : id) {
      if (c == '_') c = '-';
    }
    EXPECT_NE(find_rule(id), nullptr) << "fixture " << entry.path()
                                      << " names unknown rule '" << id << "'";
  }
}

TEST(RuleTable, IdsAreUniqueAndCategorized) {
  std::set<std::string> seen;
  const std::set<std::string> kCategories = {"collective-matching", "determinism",
                                             "coroutine-lifetime", "performance"};
  for (const RuleInfo& r : rule_table()) {
    EXPECT_TRUE(seen.insert(r.id).second) << "duplicate rule id " << r.id;
    EXPECT_TRUE(kCategories.count(r.category)) << r.id << ": unknown category " << r.category;
    EXPECT_FALSE(r.summary.empty()) << r.id << ": empty summary";
  }
}

}  // namespace
}  // namespace hcs::lint
