// Lint infrastructure tests: the lexer's literal/comment handling, the
// suppression-comment mechanism, rule selection, fixture-path skipping and
// the committed-baseline lifecycle.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/baseline.hpp"
#include "lint/lexer.hpp"

namespace hcs::lint {
namespace {

std::vector<Finding> run(const std::string& source, std::set<std::string> rules = {}) {
  AnalyzerOptions opts;
  opts.enabled_rules = std::move(rules);
  return analyze_source("src/clocksync/sample.cpp", source, opts);
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LintLexer, KeywordsInCommentsAndStringsAreNotTokens) {
  const std::string src =
      "// co_await rand() inside a comment\n"
      "/* gettimeofday(&tv, 0); */\n"
      "const char* s = \"co_await x && y\";\n"
      "const char* r = R\"(std::random_device rd;)\";\n";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintLexer, RawStringWithCustomDelimiter) {
  const LexedFile f = lex("x.cpp", "auto s = R\"ab(quote \" and )\" inside)ab\";");
  ASSERT_EQ(f.tokens.size(), 6u);  // auto s = <string> ; <eof>
  EXPECT_EQ(f.tokens[3].kind, TokKind::kString);
  EXPECT_EQ(f.tokens[3].text, "quote \" and )\" inside");
}

TEST(LintLexer, PreprocessorDirectivesProduceNoTokens) {
  const std::string src =
      "#include <random>\n"
      "#define BAD rand() + \\\n"
      "            rand()\n"
      "int x;\n";
  const LexedFile f = lex("x.cpp", src);
  ASSERT_EQ(f.tokens.size(), 4u);  // int x ; <eof>
  EXPECT_EQ(f.tokens[0].text, "int");
  EXPECT_EQ(f.tokens[1].line, 4);
  EXPECT_TRUE(run(src).empty());  // the rand() in the macro body is not scanned
}

TEST(LintLexer, MultiCharPunctuatorsAreLongestMunch) {
  const LexedFile f = lex("x.cpp", "a<<=b; c->*d; e<=>f; g::h;");
  std::vector<std::string> puncts;
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kPunct && t.text != ";") puncts.push_back(t.text);
  }
  EXPECT_EQ(puncts, (std::vector<std::string>{"<<=", "->*", "<=>", "::"}));
}

TEST(LintLexer, LineCommentBackslashContinuationSwallowsTheNextLine) {
  // Phase-2 splicing runs before comment recognition: a backslash at the end
  // of a // comment extends it over the next physical line.
  const LexedFile f = lex("x.cpp", "// spliced \\\nint hidden;\nint visible;\n");
  ASSERT_EQ(f.tokens.size(), 4u);  // int visible ; <eof>
  EXPECT_EQ(f.tokens[1].text, "visible");
  ASSERT_EQ(f.comments.size(), 1u);
  EXPECT_EQ(f.comments[0].line, 1);
  EXPECT_EQ(f.comments[0].end_line, 2);
}

TEST(LintLexer, LineCommentCrlfContinuationAlsoSplices) {
  const LexedFile f = lex("x.cpp", "// spliced \\\r\nint hidden;\r\nint visible;\r\n");
  ASSERT_EQ(f.tokens.size(), 4u);
  EXPECT_EQ(f.tokens[1].text, "visible");
}

TEST(LintLexer, SplicedAllowNextLineCountsFromTheLastPhysicalLine) {
  const std::string src =
      "// hcs-lint: allow-next-line(raw-random) justified \\\n   shim\n"
      "int f() { return rand(); }\n";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintLexer, DirectiveCrlfContinuationStaysInsideTheDirective) {
  const std::string src = "#define BAD rand() \\\r\n            rand()\r\nint y;\n";
  const LexedFile f = lex("x.cpp", src);
  ASSERT_EQ(f.tokens.size(), 4u);  // int y ; <eof>
  EXPECT_EQ(f.tokens[0].text, "int");
  EXPECT_EQ(f.tokens[0].line, 3);
  EXPECT_TRUE(run(src).empty());
}

TEST(LintLexer, UnterminatedRawStringAtEofDoesNotCrash) {
  // "R\"abc" with no "(" used to read past the buffer.
  const LexedFile f = lex("x.cpp", "auto s = R\"abc");
  ASSERT_EQ(f.tokens.size(), 5u);  // auto s = <string> <eof>
  EXPECT_EQ(f.tokens[3].kind, TokKind::kString);
  EXPECT_EQ(f.tokens[3].text, "abc");
}

TEST(LintLexer, UnterminatedRawStringBodyAtEofIsTheRemainder) {
  const LexedFile f = lex("x.cpp", "auto s = R\"ab(dangling");
  ASSERT_EQ(f.tokens.size(), 5u);
  EXPECT_EQ(f.tokens[3].kind, TokKind::kString);
  EXPECT_EQ(f.tokens[3].text, "dangling");
}

TEST(LintLexer, CommentsCarryLineRanges) {
  const LexedFile f = lex("x.cpp", "int a;\n/* two\nlines */\nint b; // tail\n");
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_EQ(f.comments[0].line, 2);
  EXPECT_EQ(f.comments[0].end_line, 3);
  EXPECT_EQ(f.comments[1].text, "tail");
  EXPECT_EQ(f.comments[1].end_line, 4);
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

const char* kOneRand = "int f() { return rand(); }\n";

TEST(LintSuppression, FiresWithoutSuppression) {
  const std::vector<Finding> fs = run(kOneRand);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "raw-random");
  EXPECT_EQ(fs[0].line, 1);
}

TEST(LintSuppression, AllowOnSameLine) {
  EXPECT_TRUE(run("int f() { return rand(); }  // hcs-lint: allow(raw-random)\n").empty());
}

TEST(LintSuppression, AllowNextLine) {
  EXPECT_TRUE(run("// hcs-lint: allow-next-line(raw-random) seed shim\nint f() { return rand(); }\n")
                  .empty());
}

TEST(LintSuppression, AllowNextLineAfterBlockCommentCountsFromItsLastLine) {
  const std::string src =
      "/* justification spanning\n"
      "   hcs-lint: allow-next-line(raw-random) */\n"
      "int f() { return rand(); }\n";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintSuppression, AllowFile) {
  const std::string src =
      "// hcs-lint: allow-file(raw-random)\n"
      "int f() { return rand(); }\n"
      "int g() { return rand(); }\n";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintSuppression, SuppressionIsRuleSpecific) {
  const std::string src =
      "int f() { return rand(); }  // hcs-lint: allow(wall-clock)\n";
  const std::vector<Finding> fs = run(src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "raw-random");
}

TEST(LintSuppression, MultipleRulesInOneAllow) {
  const std::string src =
      "void f() { std::mt19937 g; auto t = std::chrono::steady_clock::now(); }"
      "  // hcs-lint: allow(raw-random, wall-clock)\n";
  EXPECT_TRUE(run(src).empty());
}

TEST(LintSuppression, UnknownRuleNameIsItselfAFinding) {
  const std::vector<Finding> fs = run("int x;  // hcs-lint: allow(no-such-rule)\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "bad-suppression");
  EXPECT_NE(fs[0].message.find("no-such-rule"), std::string::npos);
}

TEST(LintSuppression, MalformedAnnotationIsItselfAFinding) {
  const std::vector<Finding> fs = run("int x;  // hcs-lint: disable everything\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "bad-suppression");
}

// ---------------------------------------------------------------------------
// Rule selection and path exemptions
// ---------------------------------------------------------------------------

const char* kTwoRuleSource =
    "void f() { std::mt19937 g; auto t = std::chrono::steady_clock::now(); }\n";

TEST(LintSelection, EnabledRulesFilter) {
  const std::vector<Finding> fs = run(kTwoRuleSource, {"wall-clock"});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "wall-clock");
}

TEST(LintSelection, AllRulesRunByDefault) {
  EXPECT_EQ(run(kTwoRuleSource).size(), 2u);
}

TEST(LintSelection, RunnerIsExemptFromWallClock) {
  const std::string src = "auto t = std::chrono::steady_clock::now();\n";
  AnalyzerOptions opts;
  EXPECT_EQ(analyze_source("src/runner/timer.cpp", src, opts).size(), 0u);
  EXPECT_EQ(analyze_source("src/clocksync/timer.cpp", src, opts).size(), 1u);
}

TEST(LintPaths, FixtureDirectoryIsSkipped) {
  AnalyzerOptions opts;
  const AnalysisResult res = analyze_paths({HCS_LINT_FIXTURE_DIR}, opts);
  EXPECT_TRUE(res.findings.empty()) << "bad fixtures must not fail the repo-wide run";
  EXPECT_TRUE(res.lines.empty());
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

Finding finding(const std::string& rule, const std::string& path, int line) {
  return Finding{rule, Severity::kError, path, line, 1, "msg"};
}

TEST(LintBaseline, RoundTripAndConsume) {
  const std::vector<std::string> lines = {"int a;", "int x = rand();", "int b;"};
  const Finding f = finding("raw-random", "src/a.cpp", 2);
  const std::string text = Baseline::serialize({f}, {{"src/a.cpp", lines}});

  Baseline b;
  std::string err;
  ASSERT_TRUE(b.parse(text, &err)) << err;
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE(b.consume(f, lines));
  EXPECT_FALSE(b.consume(f, lines)) << "one credit covers one finding";
}

TEST(LintBaseline, KeyIsLineNumberFree) {
  const std::vector<std::string> before = {"int x = rand();"};
  const std::vector<std::string> after = {"", "", "int  x =  rand();"};  // shifted + respaced
  const std::string text =
      Baseline::serialize({finding("raw-random", "src/a.cpp", 1)}, {{"src/a.cpp", before}});
  Baseline b;
  std::string err;
  ASSERT_TRUE(b.parse(text, &err)) << err;
  EXPECT_TRUE(b.consume(finding("raw-random", "src/a.cpp", 3), after));
}

TEST(LintBaseline, DifferentRuleOrPathDoesNotMatch) {
  const std::vector<std::string> lines = {"int x = rand();"};
  const std::string text =
      Baseline::serialize({finding("raw-random", "src/a.cpp", 1)}, {{"src/a.cpp", lines}});
  Baseline b;
  std::string err;
  ASSERT_TRUE(b.parse(text, &err)) << err;
  EXPECT_FALSE(b.consume(finding("wall-clock", "src/a.cpp", 1), lines));
  EXPECT_FALSE(b.consume(finding("raw-random", "src/b.cpp", 1), lines));
}

TEST(LintBaseline, CountsAccumulatePerIdenticalLine) {
  const std::vector<std::string> lines = {"f(rand(), rand());"};
  const Finding f1 = finding("raw-random", "src/a.cpp", 1);
  const std::string text = Baseline::serialize({f1, f1}, {{"src/a.cpp", lines}});
  Baseline b;
  std::string err;
  ASSERT_TRUE(b.parse(text, &err)) << err;
  EXPECT_TRUE(b.consume(f1, lines));
  EXPECT_TRUE(b.consume(f1, lines));
  EXPECT_FALSE(b.consume(f1, lines));
}

TEST(LintBaseline, MalformedLineRejectedWithError) {
  Baseline b;
  std::string err;
  EXPECT_FALSE(b.parse("not-tab-separated\n", &err));
  EXPECT_FALSE(err.empty());
}

TEST(LintBaseline, CommentsAndBlankLinesIgnored) {
  Baseline b;
  std::string err;
  EXPECT_TRUE(b.parse("# header\n\n# more\n", &err)) << err;
  EXPECT_TRUE(b.empty());
}

TEST(LintBaseline, PathsWithSpacesRoundTrip) {
  const std::vector<std::string> lines = {"int x = rand();"};
  const Finding f = finding("raw-random", "src/my dir/a file.cpp", 1);
  const std::string text = Baseline::serialize({f}, {{"src/my dir/a file.cpp", lines}});
  Baseline b;
  std::string err;
  ASSERT_TRUE(b.parse(text, &err)) << err;
  EXPECT_TRUE(b.consume(f, lines));
  EXPECT_TRUE(b.unknown_rule_warnings().empty());
}

TEST(LintBaseline, StaleRuleIdWarnsInsteadOfFailing) {
  // A baseline written before a rule was renamed/retired must stay loadable;
  // the entry is inert and surfaced as a warning.
  const std::string text =
      "# header\n"
      "1\tretired-rule\tsrc/a.cpp\tint x = rand();\n"
      "1\traw-random\tsrc/a.cpp\tint x = rand();\n";
  Baseline b;
  std::string err;
  ASSERT_TRUE(b.parse(text, &err)) << err;
  ASSERT_EQ(b.unknown_rule_warnings().size(), 1u);
  EXPECT_NE(b.unknown_rule_warnings()[0].find("retired-rule"), std::string::npos);
  EXPECT_NE(b.unknown_rule_warnings()[0].find("line 2"), std::string::npos);
  // The known entry still works; the stale one never matches anything.
  EXPECT_TRUE(b.consume(finding("raw-random", "src/a.cpp", 1), {"int x = rand();"}));
  EXPECT_FALSE(b.consume(finding("retired-rule", "src/a.cpp", 1), {"int x = rand();"}));
}

TEST(LintBaseline, BadSuppressionEntriesAreNotStale) {
  Baseline b;
  std::string err;
  ASSERT_TRUE(b.parse("1\tbad-suppression\tsrc/a.cpp\tint x;\n", &err)) << err;
  EXPECT_TRUE(b.unknown_rule_warnings().empty());
}

TEST(LintBaseline, ApplyBaselineKeepsOnlyFreshFindings) {
  AnalysisResult res;
  res.lines["src/a.cpp"] = {"int x = rand();", "auto t = std::chrono::steady_clock::now();"};
  res.findings = {finding("raw-random", "src/a.cpp", 1), finding("wall-clock", "src/a.cpp", 2)};

  Baseline b;
  std::string err;
  ASSERT_TRUE(b.parse(Baseline::serialize({res.findings[0]}, {{"src/a.cpp", res.lines["src/a.cpp"]}}),
                      &err))
      << err;
  const std::vector<Finding> fresh = apply_baseline(res, std::move(b));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].rule, "wall-clock");
}

}  // namespace
}  // namespace hcs::lint
