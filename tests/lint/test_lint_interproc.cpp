// Whole-program (phase 2) tests: the per-rule multi-file fixture sets under
// fixtures/ip/<rule>/{bad,good}/, the ProjectIndex resolution contract, the
// call-depth bound, the incremental summary cache and the SARIF export.
//
// Every fixture file's first line is a virtual-path directive
//   // hcs-lint-path: <rel path>
// so one on-disk set can model exempt directories (src/runner/, tests/, ...)
// without polluting the real tree.  Bad files carry hcs-lint-expect
// annotations naming the exact rule + line of every finding.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/callgraph.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"
#include "lint/summary.hpp"
#include "support/mini_json.hpp"

namespace hcs::lint {
namespace {

namespace fs = std::filesystem;

const fs::path kFixtureDir = HCS_LINT_FIXTURE_DIR;

using Sources = std::vector<std::pair<std::string, std::string>>;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string underscored(std::string rule) {
  for (char& c : rule) {
    if (c == '-') c = '_';
  }
  return rule;
}

// Loads a fixture set, mapping each file to the virtual path named by its
// first-line hcs-lint-path directive.
Sources load_set(const fs::path& dir) {
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".cpp") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  Sources out;
  for (const fs::path& p : paths) {
    const std::string content = read_file(p);
    const std::string kDirective = "// hcs-lint-path: ";
    EXPECT_EQ(content.rfind(kDirective, 0), 0u)
        << p << " must start with '" << kDirective << "<rel path>'";
    const std::size_t eol = content.find('\n');
    std::string rel = content.substr(kDirective.size(),
                                     eol == std::string::npos ? std::string::npos
                                                              : eol - kDirective.size());
    while (!rel.empty() && (rel.back() == ' ' || rel.back() == '\r')) rel.pop_back();
    out.emplace_back(std::move(rel), content);
  }
  return out;
}

// Findings and expectations reduce to (virtual path, line, rule) triples.
using PathLineRule = std::tuple<std::string, int, std::string>;

std::multiset<PathLineRule> expectations(const Sources& sources) {
  std::multiset<PathLineRule> out;
  for (const auto& [rel, content] : sources) {
    std::istringstream in(content);
    std::string line;
    int n = 0;
    while (std::getline(in, line)) {
      ++n;
      const std::size_t at = line.find("hcs-lint-expect:");
      if (at == std::string::npos) continue;
      std::string cur;
      const auto flush = [&, rel = rel] {
        if (!cur.empty()) out.insert({rel, n, cur});
        cur.clear();
      };
      for (std::size_t i = at + 16; i < line.size(); ++i) {
        const char c = line[i];
        if (c == ',') {
          flush();
        } else if (c != ' ' && c != '\t') {
          cur.push_back(c);
        }
      }
      flush();
    }
  }
  return out;
}

std::multiset<PathLineRule> as_triples(const std::vector<Finding>& findings) {
  std::multiset<PathLineRule> out;
  for (const Finding& f : findings) out.insert({f.path, f.line, f.rule});
  return out;
}

std::string dump(const std::multiset<PathLineRule>& s) {
  std::ostringstream os;
  for (const auto& [path, line, rule] : s) os << "  " << path << ":" << line << ": " << rule << "\n";
  return s.empty() ? "  (none)\n" : os.str();
}

std::vector<Finding> run_set(const Sources& sources, const std::string& rule) {
  AnalyzerOptions opts;
  opts.enabled_rules = {rule};
  return analyze_sources(sources, opts).findings;
}

class IpFixtureSet : public ::testing::TestWithParam<std::string> {};

TEST_P(IpFixtureSet, BadSetFiresExactlyTheAnnotatedFindings) {
  const std::string rule = GetParam();
  const Sources sources = load_set(kFixtureDir / "ip" / underscored(rule) / "bad");
  ASSERT_GE(sources.size(), 2u) << "interprocedural sets must span multiple files";
  const std::multiset<PathLineRule> expected = expectations(sources);
  ASSERT_FALSE(expected.empty()) << "bad set has no hcs-lint-expect annotations";
  const std::multiset<PathLineRule> actual = as_triples(run_set(sources, rule));
  EXPECT_EQ(expected, actual) << "expected findings:\n"
                              << dump(expected) << "actual findings:\n"
                              << dump(actual);
  for (const auto& [path, line, r] : expected) {
    EXPECT_EQ(r, rule) << path << ":" << line
                       << " annotates a different rule than the set is named for";
  }
}

TEST_P(IpFixtureSet, GoodSetStaysSilent) {
  const std::string rule = GetParam();
  const Sources sources = load_set(kFixtureDir / "ip" / underscored(rule) / "good");
  ASSERT_GE(sources.size(), 2u);
  const std::multiset<PathLineRule> expected = expectations(sources);
  ASSERT_TRUE(expected.empty()) << "good sets must not carry expect annotations";
  const std::vector<Finding> findings = run_set(sources, rule);
  EXPECT_TRUE(findings.empty()) << "good set produced findings:\n" << dump(as_triples(findings));
}

std::vector<std::string> ip_rule_ids() {
  std::vector<std::string> ids;
  for (const RuleInfo& r : rule_table()) {
    if (r.interprocedural) ids.push_back(r.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllIpRules, IpFixtureSet, ::testing::ValuesIn(ip_rule_ids()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return underscored(info.param);
                         });

// ---------------------------------------------------------------------------
// ProjectIndex
// ---------------------------------------------------------------------------

FileSummary summarize(const std::string& rel, const std::string& src) {
  return build_summary(lex(rel, src), rel);
}

TEST(ProjectIndex, UniqueNameResolvesAmbiguousDoesNot) {
  std::vector<FileSummary> files;
  files.push_back(summarize("src/a.cpp", "int only_here() { return 1; }\n"
                                         "int twice() { return 2; }\n"));
  files.push_back(summarize("src/b.cpp", "int twice() { return 3; }\n"));
  const ProjectIndex index = ProjectIndex::build(files);

  const FuncRef* unique = index.resolve("only_here");
  ASSERT_NE(unique, nullptr);
  EXPECT_EQ(unique->file->rel_path, "src/a.cpp");
  EXPECT_EQ(describe(*unique), "only_here (src/a.cpp:1)");

  EXPECT_EQ(index.resolve("twice"), nullptr) << "ambiguous names must not resolve";
  EXPECT_EQ(index.candidates("twice").size(), 2u);
  EXPECT_EQ(index.resolve("undefined_anywhere"), nullptr);
  EXPECT_TRUE(index.candidates("undefined_anywhere").empty());
}

TEST(ProjectIndex, AllReturnSyncResultRequiresEveryCandidateToAgree) {
  std::vector<FileSummary> files;
  files.push_back(summarize("src/a.cpp",
                            "SyncResult sync_clocks(Comm& c) { return SyncResult{}; }\n"));
  files.push_back(summarize("src/b.cpp",
                            "SyncResult sync_clocks(Comm& c) { return SyncResult{}; }\n"
                            "int plain() { return 0; }\n"));
  const ProjectIndex index = ProjectIndex::build(files);
  EXPECT_TRUE(index.all_return_sync_result("sync_clocks"))
      << "same-named overrides that all return SyncResult must agree";
  EXPECT_FALSE(index.all_return_sync_result("plain"));
  EXPECT_FALSE(index.all_return_sync_result("undefined_anywhere"));
}

TEST(ProjectIndex, StdIshNamesNeverBecomeCallEdges) {
  // A project that happens to define clear() must not absorb every container
  // clear() in the repo: the summary drops stoplisted names at extraction.
  const FileSummary s = summarize(
      "src/a.cpp", "void caller(std::vector<int>& v) { v.clear(); helper_fn(v); }\n");
  ASSERT_EQ(s.functions.size(), 1u);
  ASSERT_EQ(s.functions[0].calls.size(), 1u);
  EXPECT_EQ(s.functions[0].calls[0].name, "helper_fn");
}

TEST(InterprocDepth, MaxCallDepthBoundsThePropagation) {
  // chain: c3 -> c2 -> c1 -> hidden_clock (suppressed wall clock).
  const Sources sources = {
      {"src/clocksync/z.cpp",
       "double hidden_clock() {\n"
       "  return std::chrono::steady_clock::now().time_since_epoch().count();"
       "  // hcs-lint: allow(wall-clock) fixture\n"
       "}\n"
       "double c1() { return hidden_clock(); }\n"
       "double c2() { return c1(); }\n"
       "double c3() { return c2(); }\n"},
  };
  AnalyzerOptions deep;
  deep.enabled_rules = {"ip-wall-clock"};
  deep.max_call_depth = 4;
  EXPECT_EQ(analyze_sources(sources, deep).findings.size(), 3u)
      << "every edge of the chain is a finding at depth 4";

  AnalyzerOptions shallow = deep;
  shallow.max_call_depth = 1;
  // Depth 1 taints only c1; the c1->hidden_clock and c2->c1 edges are
  // reported, the c3->c2 edge is beyond the bound.
  EXPECT_EQ(analyze_sources(sources, shallow).findings.size(), 2u);
}

// ---------------------------------------------------------------------------
// Incremental summary cache
// ---------------------------------------------------------------------------

Sources cache_project() {
  return {
      {"src/clocksync/helper.cpp",
       "int host_entropy() {\n"
       "  return rand();  // hcs-lint: allow(raw-random) fixture\n"
       "}\n"},
      {"src/clocksync/caller.cpp", "int sample() { return host_entropy(); }\n"},
      {"src/clocksync/other.cpp", "int unrelated() { return 7; }\n"},
  };
}

TEST(LintCache, WarmRunIsByteIdenticalAndSkipsLexing) {
  AnalyzerOptions opts;
  opts.cache_dir = (fs::path(::testing::TempDir()) / "hcs_lint_cache_warm").string();
  fs::remove_all(opts.cache_dir);

  const AnalysisResult cold = analyze_sources(cache_project(), opts);
  EXPECT_EQ(cold.stats.files, 3);
  EXPECT_EQ(cold.stats.files_lexed, 3);
  EXPECT_EQ(cold.stats.cache_hits, 0);
  ASSERT_EQ(cold.findings.size(), 1u);
  EXPECT_EQ(cold.findings[0].rule, "ip-raw-random");

  const AnalysisResult warm = analyze_sources(cache_project(), opts);
  EXPECT_EQ(warm.stats.files_lexed, 0) << "unchanged files must come from the cache";
  EXPECT_EQ(warm.stats.cache_hits, 3);
  EXPECT_EQ(warm.findings, cold.findings) << "cached findings must be byte-identical";
  EXPECT_EQ(warm.lines, cold.lines);
}

TEST(LintCache, OnlyChangedFilesAreRelexed) {
  AnalyzerOptions opts;
  opts.cache_dir = (fs::path(::testing::TempDir()) / "hcs_lint_cache_changed").string();
  fs::remove_all(opts.cache_dir);

  const AnalysisResult cold = analyze_sources(cache_project(), opts);
  ASSERT_EQ(cold.findings.size(), 1u);

  Sources edited = cache_project();
  edited[1].second =
      "int sample() {\n"
      "  return host_entropy();  // hcs-lint: allow(ip-raw-random) fixture: justified\n"
      "}\n";
  const AnalysisResult warm = analyze_sources(edited, opts);
  EXPECT_EQ(warm.stats.files_lexed, 1) << "only the edited file is re-lexed";
  EXPECT_EQ(warm.stats.cache_hits, 2);
  EXPECT_TRUE(warm.findings.empty()) << "the new suppression must take effect";
}

TEST(LintCache, CorruptCacheEntryFallsBackToLexing) {
  AnalyzerOptions opts;
  opts.cache_dir = (fs::path(::testing::TempDir()) / "hcs_lint_cache_corrupt").string();
  fs::remove_all(opts.cache_dir);

  const AnalysisResult cold = analyze_sources(cache_project(), opts);
  std::vector<fs::path> entries;
  for (const auto& e : fs::directory_iterator(opts.cache_dir)) entries.push_back(e.path());
  ASSERT_EQ(entries.size(), 3u);
  std::sort(entries.begin(), entries.end());
  {
    std::ofstream out(entries[0], std::ios::binary | std::ios::trunc);
    out << "hcs-lint-summary 1\ngarbage line\n";
  }

  const AnalysisResult warm = analyze_sources(cache_project(), opts);
  EXPECT_EQ(warm.stats.files_lexed, 1) << "the corrupt entry falls back to a fresh summary";
  EXPECT_EQ(warm.stats.cache_hits, 2);
  EXPECT_EQ(warm.findings, cold.findings);
}

TEST(LintSummary, SerializationRoundTrips) {
  const Sources sources = load_set(kFixtureDir / "ip" / "ip_coll_rank_branch" / "bad");
  for (const auto& [rel, content] : sources) {
    const FileSummary s = summarize(rel, content);
    FileSummary back;
    ASSERT_TRUE(parse_summary(serialize_summary(s), &back)) << rel;
    EXPECT_EQ(serialize_summary(back), serialize_summary(s)) << rel;
  }
}

// ---------------------------------------------------------------------------
// SARIF
// ---------------------------------------------------------------------------

TEST(Sarif, ExportIsValidAndCarriesRulesAndResults) {
  AnalyzerOptions opts;
  const AnalysisResult res = analyze_sources(cache_project(), opts);
  ASSERT_FALSE(res.findings.empty());

  const testsupport::JsonValue doc = testsupport::JsonParser::parse(to_sarif(res.findings));
  EXPECT_EQ(doc.at("version").as_string(), "2.1.0");
  const auto& run = doc.at("runs").as_array().at(0);
  const auto& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").as_string(), "hcs-lint");

  std::set<std::string> rule_ids;
  for (const auto& r : driver.at("rules").as_array()) rule_ids.insert(r.at("id").as_string());
  for (const RuleInfo& r : rule_table()) {
    EXPECT_TRUE(rule_ids.count(r.id)) << "rule " << r.id << " missing from SARIF rule table";
  }
  EXPECT_TRUE(rule_ids.count("bad-suppression"));

  const auto& results = run.at("results").as_array();
  ASSERT_EQ(results.size(), res.findings.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    EXPECT_EQ(r.at("ruleId").as_string(), res.findings[i].rule);
    const auto& loc = r.at("locations").as_array().at(0).at("physicalLocation");
    EXPECT_EQ(loc.at("artifactLocation").at("uri").as_string(), res.findings[i].path);
    EXPECT_EQ(static_cast<int>(loc.at("region").at("startLine").as_number()),
              res.findings[i].line);
  }
}

TEST(Sarif, EmptyFindingsStillProduceAValidDocument) {
  const testsupport::JsonValue doc = testsupport::JsonParser::parse(to_sarif({}));
  EXPECT_TRUE(doc.at("runs").as_array().at(0).at("results").as_array().empty());
}

}  // namespace
}  // namespace hcs::lint
