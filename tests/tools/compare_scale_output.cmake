# Determinism guard for bench_scale across engine configurations.
#
# Runs BINARY at smoke size under every (queue engine x shard count)
# combination the scaling work touches and fails unless stdout is
# byte-identical across all runs: simulation output may not depend on the
# event-queue engine (heap / ladder / adaptive) or on the PDES shard count.
# Host metrics (wall-clock, RSS) go to the binary's stderr, which this guard
# deliberately ignores.
#
# Usage: cmake -DBINARY=<path to bench_scale> -DOUT_DIR=<dir>
#              [-DOUT_NAME=<stem>]    # default "scale"
#              -P compare_scale_output.cmake
foreach(required BINARY OUT_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "compare_scale_output.cmake: -D${required}=... is required")
  endif()
endforeach()
if(NOT DEFINED OUT_NAME)
  set(OUT_NAME scale)
endif()

set(args --ranks 64,128 --scale 0.02 --seed 3 --csv)

function(run_once tag)
  execute_process(COMMAND ${BINARY} ${args} ${ARGN}
                  OUTPUT_FILE ${OUT_DIR}/${OUT_NAME}_${tag}.out
                  ERROR_VARIABLE ignored_stderr RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BINARY} ${args} ${ARGN} failed with exit code ${rc}")
  endif()
endfunction()

run_once(heap1 --queue heap --shards 1)
run_once(heap2 --queue heap --shards 2)
run_once(ladder1 --queue ladder --shards 1)
run_once(ladder2 --queue ladder --shards 2)
run_once(adaptive2 --queue adaptive --shards 2)

function(expect_same tag why)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${OUT_DIR}/${OUT_NAME}_heap1.out ${OUT_DIR}/${OUT_NAME}_${tag}.out
                  RESULT_VARIABLE differs)
  if(NOT differs EQUAL 0)
    message(FATAL_ERROR "${why} (${OUT_DIR}/${OUT_NAME}_heap1.out vs "
                        "${OUT_DIR}/${OUT_NAME}_${tag}.out)")
  endif()
endfunction()

expect_same(heap2 "output differs between --shards 1 and --shards 2 (heap engine)")
expect_same(ladder1 "output differs between the heap and ladder queue engines")
expect_same(ladder2 "output differs between heap --shards 1 and ladder --shards 2")
expect_same(adaptive2 "output differs between the heap and adaptive queue engines")
