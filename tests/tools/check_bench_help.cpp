// Asserts a bench binary's --help output lists every flag it parses.
//
// All bench binaries parse the shared flag set (bench/common.hpp's
// kBenchFlags, which also drives --help and unknown-flag rejection), so this
// links the same table and greps the child's actual output for each entry:
// adding a flag to parse_common without documenting it — or breaking --help
// itself — fails ctest for every bench binary.
//
//   usage: check_bench_help <path to bench binary>
#include <cstdio>
#include <iostream>
#include <string>

#include "common.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: check_bench_help <bench binary>\n";
    return 2;
  }
  const std::string cmd = std::string(argv[1]) + " --help";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) {
    std::cerr << "check_bench_help: cannot run: " << cmd << "\n";
    return 2;
  }
  std::string output;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) output.append(buf, n);
  const int status = pclose(pipe);
  if (status != 0) {
    std::cerr << "check_bench_help: `" << cmd << "` exited with status " << status
              << " (expected 0)\n";
    return 1;
  }

  int missing = 0;
  for (std::size_t i = 0; i < hcs::bench::kBenchFlagCount; ++i) {
    const std::string flag = std::string("--") + hcs::bench::kBenchFlags[i].name;
    if (output.find(flag) == std::string::npos) {
      std::cerr << "check_bench_help: --help output of " << argv[1] << " does not mention "
                << flag << "\n";
      ++missing;
    }
  }
  if (missing > 0) {
    std::cerr << "--- actual --help output ---\n" << output;
    return 1;
  }
  std::cout << "ok: " << hcs::bench::kBenchFlagCount << " flags documented by " << argv[1]
            << " --help\n";
  return 0;
}
