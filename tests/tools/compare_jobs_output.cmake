# Runs BINARY twice (--jobs 1 vs --jobs 4, otherwise identical arguments)
# and fails unless stdout is byte-identical: the TrialRunner determinism
# guarantee, asserted end-to-end on a real bench binary.
#
# Usage: cmake -DBINARY=<path> -DOUT_DIR=<dir> -P compare_jobs_output.cmake
foreach(required BINARY OUT_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "compare_jobs_output.cmake: -D${required}=... is required")
  endif()
endforeach()

set(args --scale 0.02 --seed 3 --csv)

execute_process(COMMAND ${BINARY} ${args} --jobs 1
                OUTPUT_FILE ${OUT_DIR}/jobs1.out RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "${BINARY} --jobs 1 failed with exit code ${rc1}")
endif()

execute_process(COMMAND ${BINARY} ${args} --jobs 4
                OUTPUT_FILE ${OUT_DIR}/jobs4.out RESULT_VARIABLE rc4)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "${BINARY} --jobs 4 failed with exit code ${rc4}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${OUT_DIR}/jobs1.out ${OUT_DIR}/jobs4.out
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "output differs between --jobs 1 and --jobs 4 "
                      "(${OUT_DIR}/jobs1.out vs ${OUT_DIR}/jobs4.out)")
endif()
