# Determinism guard for bench binaries, end to end.
#
# Runs BINARY three times — --jobs 1, --jobs 4, and --jobs 4 again — and
# fails unless stdout is byte-identical across all runs: the TrialRunner
# guarantee (any worker count, any run, same bytes), asserted on a real
# binary.  When GOLDEN is set, the output is additionally diffed against the
# committed reference, catching silent changes to the simulated schedule.
#
# Usage: cmake -DBINARY=<path> -DOUT_DIR=<dir>
#              [-DOUT_NAME=<stem>]               # default "jobs"; keeps
#                                                # parallel ctest runs apart
#              [-DEXTRA_ARGS="--fault drop:p=0.02 ..."]  # space-separated
#              [-DGOLDEN=<committed reference file>]
#              -P compare_jobs_output.cmake
foreach(required BINARY OUT_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "compare_jobs_output.cmake: -D${required}=... is required")
  endif()
endforeach()
if(NOT DEFINED OUT_NAME)
  set(OUT_NAME jobs)
endif()

set(args --scale 0.02 --seed 3 --csv)
if(DEFINED EXTRA_ARGS)
  separate_arguments(extra UNIX_COMMAND "${EXTRA_ARGS}")
  list(APPEND args ${extra})
endif()

function(run_once jobs outfile)
  execute_process(COMMAND ${BINARY} ${args} --jobs ${jobs}
                  OUTPUT_FILE ${outfile} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BINARY} ${args} --jobs ${jobs} failed with exit code ${rc}")
  endif()
endfunction()

function(expect_same a b why)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
                  RESULT_VARIABLE differs)
  if(NOT differs EQUAL 0)
    message(FATAL_ERROR "${why} (${a} vs ${b})")
  endif()
endfunction()

run_once(1 ${OUT_DIR}/${OUT_NAME}1.out)
run_once(4 ${OUT_DIR}/${OUT_NAME}4.out)
run_once(4 ${OUT_DIR}/${OUT_NAME}4b.out)

expect_same(${OUT_DIR}/${OUT_NAME}1.out ${OUT_DIR}/${OUT_NAME}4.out
            "output differs between --jobs 1 and --jobs 4")
expect_same(${OUT_DIR}/${OUT_NAME}4.out ${OUT_DIR}/${OUT_NAME}4b.out
            "output differs between two identical --jobs 4 runs")
if(DEFINED GOLDEN)
  expect_same(${OUT_DIR}/${OUT_NAME}1.out ${GOLDEN}
              "output differs from the committed golden reference; if the "
              "change is intentional, regenerate the golden file (see "
              "tests/golden/README.md)")
endif()
