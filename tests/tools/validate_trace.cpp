// validate_trace <trace.json>
//
// Standalone Chrome-trace validator used by the ctest integration fixture:
// trace_app writes a trace, this tool re-parses it with the same strict mini
// JSON parser the unit tests use and checks the Trace Event Format schema
// (object form, traceEvents array, per-phase required fields).  Exits 0 on
// success, 1 with a diagnostic otherwise.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "support/mini_json.hpp"

namespace {

using hcs::testsupport::JsonParser;
using hcs::testsupport::JsonValue;

int fail(const std::string& what) {
  std::cerr << "validate_trace: " << what << "\n";
  return 1;
}

}  // namespace

namespace {

int validate(const JsonValue& doc) {
  if (!doc.is_object()) return fail("document is not a JSON object");
  if (!doc.has("traceEvents")) return fail("missing traceEvents");
  if (!doc.at("traceEvents").is_array()) return fail("traceEvents is not an array");

  std::size_t n_spans = 0, n_instants = 0, n_meta = 0;
  for (const JsonValue& ev : doc.at("traceEvents").as_array()) {
    if (!ev.is_object()) return fail("event is not an object");
    for (const char* key : {"name", "ph", "pid", "tid"}) {
      if (!ev.has(key)) return fail(std::string("event missing \"") + key + "\"");
    }
    const std::string ph = ev.at("ph").as_string();
    if (ph == "M") {
      ++n_meta;
      continue;
    }
    if (!ev.has("ts") || !ev.at("ts").is_number()) return fail("event missing numeric ts");
    if (ph == "X") {
      ++n_spans;
      if (!ev.has("dur") || !ev.at("dur").is_number()) return fail("X event missing dur");
      if (ev.at("dur").as_number() < 0) return fail("X event with negative dur");
    } else if (ph == "i") {
      ++n_instants;
    } else {
      return fail("unexpected phase \"" + ph + "\"");
    }
  }

  std::cout << "valid Chrome trace: " << n_spans << " spans, " << n_instants
            << " instants, " << n_meta << " metadata events\n";
  if (n_spans + n_instants == 0) return fail("trace contains no events");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) return fail("usage: validate_trace <trace.json>");
  std::ifstream in(argv[1]);
  if (!in) return fail(std::string("cannot open ") + argv[1]);
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    return validate(JsonParser::parse(buffer.str()));
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}
