# Determinism guard for bench_service across engine configurations.
#
# Runs BINARY at smoke size twice — serial heap engine vs. jobs 4 /
# shards 2 / ladder engine — with --record-out, and fails unless both the
# stdout SLO tables and the event-order recordings are byte-identical;
# BISECT (tools/hcs_bisect) must additionally report the recordings as
# identical runs.  This is the end-to-end churn determinism gate: the soak
# includes the default leave/rejoin plan, so membership markers, view-
# stamped messages and re-admission sub-phases are all on the record.
#
# Usage: cmake -DBINARY=<path to bench_service> -DBISECT=<path to hcs_bisect>
#              -DOUT_DIR=<dir> -P compare_service_output.cmake
foreach(required BINARY BISECT OUT_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "compare_service_output.cmake: -D${required}=... is required")
  endif()
endforeach()

set(args --duration 120 --qps 2 --interval 20 --seed 3 --csv)

function(run_once tag)
  execute_process(COMMAND ${BINARY} ${args} --record-out ${OUT_DIR}/service_${tag}.hcsr ${ARGN}
                  OUTPUT_FILE ${OUT_DIR}/service_${tag}.out
                  ERROR_VARIABLE ignored_stderr RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BINARY} ${args} ${ARGN} failed with exit code ${rc}")
  endif()
endfunction()

run_once(serial --queue heap --shards 1 --jobs 1)
run_once(parallel --queue ladder --shards 2 --jobs 4)

# The stdout tables must match modulo the "wrote recording: <path>" line,
# which embeds the (deliberately different) recording filename.
foreach(tag serial parallel)
  file(READ ${OUT_DIR}/service_${tag}.out ${tag}_out)
  string(REGEX REPLACE "wrote recording [^\n]*\n" "" ${tag}_out "${${tag}_out}")
endforeach()
if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR "bench_service stdout differs between serial-heap and "
                      "jobs4-shards2-ladder (${OUT_DIR}/service_serial.out vs "
                      "${OUT_DIR}/service_parallel.out)")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${OUT_DIR}/service_serial.hcsr ${OUT_DIR}/service_parallel.hcsr
                RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
  message(FATAL_ERROR "bench_service recording differs between serial-heap and "
                      "jobs4-shards2-ladder (${OUT_DIR}/service_serial.hcsr vs "
                      "${OUT_DIR}/service_parallel.hcsr)")
endif()

execute_process(COMMAND ${BISECT} ${OUT_DIR}/service_serial.hcsr ${OUT_DIR}/service_parallel.hcsr
                RESULT_VARIABLE bisect_rc OUTPUT_VARIABLE bisect_out ERROR_VARIABLE bisect_err)
if(NOT bisect_rc EQUAL 0)
  message(FATAL_ERROR "hcs_bisect found a divergence between the bench_service recordings: "
                      "${bisect_out}${bisect_err}")
endif()
