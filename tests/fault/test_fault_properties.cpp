// Property tests for the network/clock stack under an active FaultPlan.
//
// Delay-only plans (reorder/burst/straggler, no drops) must preserve full
// message-passing semantics: conservation (every payload arrives exactly
// once), completion, and FIFO per channel.  Plans with drops must never
// deadlock — the reliable transport retransmits, collectives stay data-
// correct, and the sync layer terminates with honest degraded/failed
// reports.  Everything stays byte-reproducible for any --jobs value.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "clocksync/factory.hpp"
#include "fault/fault_plan.hpp"
#include "runner/trial_runner.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"

namespace hcs::fault {
namespace {

FaultPlan delay_only_plan() {
  FaultPlan plan;
  plan.add("reorder:p=0.3,delay=100us");
  plan.add("burst:period=5ms,duration=1ms,delay=200us");
  plan.add("straggler:rank=1,factor=3");
  return plan;
}

FaultPlan droppy_plan(double p) {
  FaultPlan plan;
  plan.add("drop:p=" + std::to_string(p));
  plan.add("duplicate:p=0.1");
  plan.add("reorder:p=0.2,delay=50us");
  return plan;
}

// ---------------------------------------------------------- delay-only ----

TEST(FaultPropertiesDelayOnly, PointToPointConservesAndOrdersPerChannel) {
  // Every rank streams numbered payloads to every other rank on a shared
  // tag; despite reordering faults, each channel must deliver exactly the
  // sent sequence, in order (holdback restores FIFO).
  constexpr int kMessages = 40;
  simmpi::World w(topology::testbox(2, 2), 7, delay_only_plan());
  const int p = w.size();
  std::vector<std::vector<double>> received(
      static_cast<std::size_t>(p * p));  // [src * p + dst] payload sequence
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    simmpi::Comm& comm = ctx.comm_world();
    const int me = ctx.rank();
    for (int dst = 0; dst < p; ++dst) {
      if (dst == me) continue;
      for (int i = 0; i < kMessages; ++i) {
        std::vector<double> payload(1, static_cast<double>(me * 1000 + i));
        comm.isend(dst, 42, std::move(payload));
      }
    }
    for (int src = 0; src < p; ++src) {
      if (src == me) continue;
      for (int i = 0; i < kMessages; ++i) {
        const simmpi::Message msg = co_await comm.recv(src, 42);
        EXPECT_EQ(msg.data.size(), 1u);  // EXPECT: ASSERT cannot `return` from a coroutine
        received[static_cast<std::size_t>(src * p + me)].push_back(msg.data.at(0));
      }
    }
  });
  for (int src = 0; src < p; ++src) {
    for (int dst = 0; dst < p; ++dst) {
      if (src == dst) continue;
      const auto& seq = received[static_cast<std::size_t>(src * p + dst)];
      ASSERT_EQ(seq.size(), static_cast<std::size_t>(kMessages)) << src << "->" << dst;
      for (int i = 0; i < kMessages; ++i) {
        EXPECT_EQ(seq[static_cast<std::size_t>(i)], src * 1000 + i)
            << src << "->" << dst << " position " << i;
      }
    }
  }
}

TEST(FaultPropertiesDelayOnly, CollectivesStayCorrect) {
  simmpi::World w(topology::testbox(4, 2), 13, delay_only_plan());
  const int p = w.size();
  int checked = 0;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    simmpi::Comm& comm = ctx.comm_world();
    const double me = ctx.rank();

    std::vector<double> sum_in(1, me);
    const std::vector<double> sum = co_await simmpi::allreduce(comm, std::move(sum_in));
    EXPECT_DOUBLE_EQ(sum.at(0), p * (p - 1) / 2.0);

    std::vector<double> gather_in(1, me);
    const std::vector<double> gathered = co_await simmpi::gather(comm, std::move(gather_in));
    if (ctx.rank() == 0) {
      EXPECT_EQ(gathered.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p && r < static_cast<int>(gathered.size()); ++r) {
        EXPECT_DOUBLE_EQ(gathered[static_cast<std::size_t>(r)], r);
      }
    }

    std::vector<double> bcast_in;
    if (ctx.rank() == 0) bcast_in = {3.5, -1.25};
    const std::vector<double> bc = co_await simmpi::bcast(comm, std::move(bcast_in));
    EXPECT_EQ(bc.size(), 2u);
    EXPECT_DOUBLE_EQ(bc.at(0), 3.5);
    EXPECT_DOUBLE_EQ(bc.at(1), -1.25);

    co_await simmpi::barrier(comm);
    ++checked;
  });
  EXPECT_EQ(checked, p);  // every rank completed the full collective chain
}

// --------------------------------------------------------------- drops ----

TEST(FaultPropertiesDrops, CollectivesCompleteAndStayCorrect) {
  // 10% drop + duplicates + reordering: the reliable transport must
  // retransmit through it; payloads still arrive exactly once and reduced
  // values are exact.
  simmpi::World w(topology::testbox(4, 2), 19, droppy_plan(0.1));
  const int p = w.size();
  int completed = 0;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    simmpi::Comm& comm = ctx.comm_world();
    const double me = ctx.rank();
    for (int round = 0; round < 3; ++round) {
      std::vector<double> in(1, me + round);
      const std::vector<double> sum = co_await simmpi::allreduce(comm, std::move(in));
      EXPECT_DOUBLE_EQ(sum.at(0), p * (p - 1) / 2.0 + p * round);
      co_await simmpi::barrier(comm);
    }
    ++completed;
  });
  ASSERT_GT(w.fault_injector()->drops(), 0u) << "plan injected no drops; test is vacuous";
  EXPECT_EQ(completed, p);
}

TEST(FaultPropertiesDrops, SyncTerminatesAndReportsDegradedRanks) {
  // At a 25% drop rate whole bursts go missing; every algorithm must still
  // terminate and at least one client must own up to a non-clean report.
  for (const char* label : {"hca3/30/skampi_offset/8", "jk/30/skampi_offset/8"}) {
    simmpi::World w(topology::testbox(2, 2), 29, droppy_plan(0.25));
    const int p = w.size();
    std::vector<clocksync::SyncResult> results(static_cast<std::size_t>(p));
    w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
      auto sync = clocksync::make_sync(label);
      results[static_cast<std::size_t>(ctx.rank())] =
          co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    });
    int unclean = 0;
    for (const clocksync::SyncResult& res : results) {
      ASSERT_NE(res.clock, nullptr) << label;
      if (!res.report.clean()) ++unclean;
    }
    EXPECT_GT(unclean, 0) << label << ": heavy loss went unreported";
    // Lost exchanges and retries must be visible in the aggregate numbers.
    int lost = 0, retries = 0;
    for (const clocksync::SyncResult& res : results) {
      lost += res.report.exchanges_lost;
      retries += res.report.retries;
    }
    EXPECT_GT(lost + retries, 0) << label;
  }
}

TEST(FaultPropertiesDrops, PauseAndClockFaultsDoNotStallSync) {
  FaultPlan plan;
  plan.add("pause:rank=1,at=0s,duration=5ms");
  plan.add("clockstep:rank=2,at=1ms,step=100us");
  plan.add("drop:p=0.05");
  simmpi::World w(topology::testbox(2, 2), 31, plan);
  sim::Time end = 0.0;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca2/20/skampi_offset/5");
    (void)co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    end = std::max(end, ctx.sim().now());
  });
  // The paused rank cannot make progress before its window closes, so the
  // sync observably waited for it — and still finished.
  EXPECT_GE(end, 5e-3);
}

// -------------------------------------------------------- determinism ----

TEST(FaultPropertiesDeterminism, TrialSweepIsIdenticalForAnyJobCount) {
  const auto sweep = [](int jobs) {
    runner::TrialRunner pool(jobs);
    return pool.map(8, 100, [](const runner::Trial& trial) {
      simmpi::World w(topology::testbox(2, 2), trial.seed, droppy_plan(0.05));
      double out = 0.0;
      w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
        auto sync = clocksync::make_sync("hca3/20/skampi_offset/5");
        const clocksync::SyncResult res =
            co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
        out += res.clock->at_exact(ctx.sim().now()) +
               static_cast<double>(res.report.exchanges_lost);
      });
      return out;
    });
  };
  const std::vector<double> serial = sweep(1);
  EXPECT_EQ(serial, sweep(4));
  EXPECT_EQ(serial, sweep(3));
}

}  // namespace
}  // namespace hcs::fault
