// FaultPlan spec-string grammar: every kind parses into the documented
// fields, describe() is a lossless round-trip, units work, and malformed
// specs fail eagerly with a message naming the offending spec.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fault/fault_plan.hpp"

namespace hcs::fault {
namespace {

TEST(FaultPlanGrammar, DropParsesProbabilityAndLevel) {
  const FaultSpec s = FaultPlan::parse_spec("drop:p=0.01,level=inter_node");
  EXPECT_EQ(s.kind, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(s.p, 0.01);
  EXPECT_EQ(s.level, NetLevel::kInterNode);
}

TEST(FaultPlanGrammar, DropDefaultsToAllLevels) {
  const FaultSpec s = FaultPlan::parse_spec("drop:p=0.5");
  EXPECT_EQ(s.level, NetLevel::kAll);
  EXPECT_EQ(std::string("network"), to_string(s.level));
}

TEST(FaultPlanGrammar, DurationUnitsConvertToSeconds) {
  EXPECT_DOUBLE_EQ(FaultPlan::parse_spec("reorder:p=0.1,delay=2s").delay, 2.0);
  EXPECT_DOUBLE_EQ(FaultPlan::parse_spec("reorder:p=0.1,delay=2ms").delay, 2e-3);
  EXPECT_DOUBLE_EQ(FaultPlan::parse_spec("reorder:p=0.1,delay=2us").delay, 2e-6);
  EXPECT_DOUBLE_EQ(FaultPlan::parse_spec("reorder:p=0.1,delay=2ns").delay, 2e-9);
  EXPECT_DOUBLE_EQ(FaultPlan::parse_spec("reorder:p=0.1,delay=0.5").delay, 0.5);  // bare = s
}

TEST(FaultPlanGrammar, BurstParsesAllKeys) {
  const FaultSpec s =
      FaultPlan::parse_spec("burst:period=1s,duration=100ms,delay=50us,phase=10ms,level=intra_node");
  EXPECT_EQ(s.kind, FaultKind::kBurst);
  EXPECT_DOUBLE_EQ(s.period, 1.0);
  EXPECT_DOUBLE_EQ(s.duration, 0.1);
  EXPECT_DOUBLE_EQ(s.delay, 50e-6);
  EXPECT_DOUBLE_EQ(s.phase, 0.01);
  EXPECT_EQ(s.level, NetLevel::kIntraNode);
}

TEST(FaultPlanGrammar, RankTargetedKindsParse) {
  const FaultSpec straggler = FaultPlan::parse_spec("straggler:rank=3,factor=2.5");
  EXPECT_EQ(straggler.rank, 3);
  EXPECT_DOUBLE_EQ(straggler.factor, 2.5);

  const FaultSpec step = FaultPlan::parse_spec("clockstep:rank=1,at=200s,step=50us");
  EXPECT_EQ(step.rank, 1);
  EXPECT_DOUBLE_EQ(step.at, 200.0);
  EXPECT_DOUBLE_EQ(step.step, 50e-6);

  const FaultSpec jump = FaultPlan::parse_spec("freqjump:rank=0,at=10s,ppm=-3");
  EXPECT_DOUBLE_EQ(jump.ppm, -3.0);

  const FaultSpec pause = FaultPlan::parse_spec("pause:rank=2,at=1s,duration=20ms");
  EXPECT_EQ(pause.rank, 2);
  EXPECT_DOUBLE_EQ(pause.duration, 0.02);
}

TEST(FaultPlanGrammar, DescribeRoundTrips) {
  const char* specs[] = {
      "drop:p=0.01",
      "drop:p=0.25,level=inter_node",
      "duplicate:p=0.1,level=intra_socket",
      "reorder:p=0.2,delay=1ms",
      "burst:period=2s,duration=250ms,delay=100us,phase=50ms",
      "straggler:rank=5,factor=4",
      "clockstep:rank=3,at=200s,step=50us",
      "freqjump:rank=1,at=10s,ppm=2.5",
      "pause:rank=0,at=1s,duration=100ms",
  };
  for (const char* spec : specs) {
    const FaultSpec parsed = FaultPlan::parse_spec(spec);
    // describe() is canonical, so a second round must be a fixed point.
    const std::string canonical = parsed.describe();
    EXPECT_EQ(FaultPlan::parse_spec(canonical).describe(), canonical) << spec;
  }
}

TEST(FaultPlanGrammar, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                                  // no kind
      "drop",                              // missing keys
      "warp:p=0.1",                        // unknown kind
      "drop:p",                            // not key=value
      "drop:p=",                           // empty value
      "drop:p=0.1,p=0.2",                  // duplicate key
      "drop:p=1.5",                        // out of range
      "drop:p=0.1,level=underwater",       // unknown level
      "drop:p=0.1,rank=3",                 // key not valid for kind
      "reorder:p=0.1",                     // missing required delay
      "reorder:p=0.1,delay=2fortnights",   // unknown unit
      "straggler:rank=-1,factor=2",        // negative rank
      "straggler:rank=0,factor=0.5",       // factor < 1
      "burst:period=1s,duration=2s,delay=1us",  // duration > period
      "clockstep:rank=0,at=1s,step=0",     // zero step
      "pause:rank=0,at=1s,duration=0",     // zero duration
  };
  for (const char* spec : bad) {
    EXPECT_THROW(FaultPlan::parse_spec(spec), std::invalid_argument) << "'" << spec << "'";
  }
}

TEST(FaultPlanGrammar, ErrorMessageNamesTheSpec) {
  try {
    FaultPlan::parse_spec("drop:p=2");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("drop:p=2"), std::string::npos) << e.what();
  }
}

TEST(FaultPlanBuilding, AccumulatesSpecsAndSeed) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.describe(), "(none)");
  plan.add("drop:p=0.01");
  plan.add("clockstep:rank=3,at=200s,step=50us");
  plan.set_seed(7);
  EXPECT_FALSE(plan.empty());
  ASSERT_EQ(plan.specs().size(), 2u);
  EXPECT_EQ(plan.seed(), 7u);
  EXPECT_EQ(plan.describe(), "drop:p=0.01 clockstep:rank=3,at=200s,step=5e-05s");
}

}  // namespace
}  // namespace hcs::fault
