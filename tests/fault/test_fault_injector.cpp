// FaultInjector determinism and World integration: the RNG streams are
// separate from the fault-free model (a zero-probability plan changes
// nothing), identical (seed, plan) pairs reproduce exactly, and clock /
// pause faults resolve against the right ranks.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "clocksync/factory.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"

namespace hcs::fault {
namespace {

/// One full synchronization under `plan`; readings are bit-compared, so any
/// divergence in the simulated schedule or the injected faults shows up.
struct RunResult {
  sim::Time sync_end = 0.0;
  std::vector<double> readings;
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t delayed = 0;

  bool operator==(const RunResult&) const = default;
};

RunResult run_sync(const FaultPlan& plan, std::uint64_t seed) {
  simmpi::World w(topology::testbox(2, 2), seed, plan);
  const int p = w.size();
  std::vector<vclock::ClockPtr> clocks(static_cast<std::size_t>(p));
  RunResult out;
  w.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca3/50/skampi_offset/10");
    clocks[static_cast<std::size_t>(ctx.rank())] =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    out.sync_end = std::max(out.sync_end, ctx.sim().now());
  });
  for (const vclock::ClockPtr& clk : clocks) out.readings.push_back(clk->at_exact(out.sync_end));
  if (FaultInjector* inj = w.fault_injector()) {
    out.drops = inj->drops();
    out.duplicates = inj->duplicates();
    out.delayed = inj->delayed();
  }
  return out;
}

TEST(FaultInjector_, ZeroProbabilityPlanIsBitIdenticalToNoPlan) {
  FaultPlan zero;
  zero.add("drop:p=0");
  zero.add("duplicate:p=0");
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const RunResult without = run_sync({}, seed);
    RunResult with = run_sync(zero, seed);
    EXPECT_EQ(with.drops, 0u);
    // Counters aside, the simulated schedule must match bit for bit.
    with.drops = with.duplicates = with.delayed = 0;
    EXPECT_EQ(with, without) << "seed " << seed;
  }
}

TEST(FaultInjector_, SameSeedAndPlanReproduceExactly) {
  FaultPlan plan;
  plan.add("drop:p=0.05");
  plan.add("reorder:p=0.1,delay=100us");
  plan.set_seed(3);
  const RunResult a = run_sync(plan, 11);
  const RunResult b = run_sync(plan, 11);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.drops, 0u);
}

TEST(FaultInjector_, FaultSeedSelectsADifferentFaultStream) {
  FaultPlan a, b;
  a.add("drop:p=0.05");
  b.add("drop:p=0.05");
  a.set_seed(1);
  b.set_seed(2);
  // Same world seed, different fault stream: the fault-free model is shared
  // but which messages drop differs, so the schedules diverge.
  EXPECT_NE(run_sync(a, 11), run_sync(b, 11));
}

TEST(FaultInjector_, DuplicatesAndDelaysAreCounted) {
  FaultPlan plan;
  plan.add("duplicate:p=0.2");
  plan.add("reorder:p=0.2,delay=50us");
  const RunResult r = run_sync(plan, 5);
  EXPECT_GT(r.duplicates, 0u);
  EXPECT_GT(r.delayed, 0u);
}

TEST(FaultInjector_, PauseWindowTranslatesTimestamps) {
  FaultPlan plan;
  plan.add("pause:rank=1,at=2s,duration=500ms");
  FaultInjector inj(plan, 99, 4);
  EXPECT_TRUE(inj.pause_active());
  EXPECT_FALSE(inj.net_active());
  EXPECT_DOUBLE_EQ(inj.release_time(1, 1.0), 1.0);    // before the window
  EXPECT_DOUBLE_EQ(inj.release_time(1, 2.0), 2.5);    // at onset
  EXPECT_DOUBLE_EQ(inj.release_time(1, 2.49), 2.5);   // inside
  EXPECT_DOUBLE_EQ(inj.release_time(1, 2.5), 2.5);    // window end is open
  EXPECT_DOUBLE_EQ(inj.release_time(0, 2.25), 2.25);  // other ranks unaffected
}

TEST(FaultInjector_, ClockFaultsResolveAgainstTheirRank) {
  FaultPlan plan;
  plan.add("clockstep:rank=2,at=100s,step=-250us");
  plan.add("freqjump:rank=0,at=10s,ppm=5");
  FaultInjector inj(plan, 0, 4);
  ASSERT_EQ(inj.clock_faults().size(), 2u);
  EXPECT_EQ(inj.clock_faults()[0].kind, FaultKind::kClockStep);
  EXPECT_EQ(inj.clock_faults()[0].rank, 2);
  EXPECT_DOUBLE_EQ(inj.clock_faults()[0].at, 100.0);
  EXPECT_DOUBLE_EQ(inj.clock_faults()[0].delta, -250e-6);
  EXPECT_EQ(inj.clock_faults()[1].kind, FaultKind::kFreqJump);
  EXPECT_DOUBLE_EQ(inj.clock_faults()[1].delta, 5e-6);
}

TEST(FaultInjector_, RankTargetedSpecBeyondWorldSizeThrows) {
  FaultPlan plan;
  plan.add("clockstep:rank=64,at=1s,step=1ms");
  EXPECT_THROW(simmpi::World(topology::testbox(2, 2), 1, plan), std::invalid_argument);
}

TEST(WorldClockFaults, ClockStepShiftsReadsAfterOnset) {
  FaultPlan plan;
  plan.add("clockstep:rank=1,at=5s,step=250us");
  simmpi::World faulted(topology::testbox(2, 1), 17, plan);
  simmpi::World clean(topology::testbox(2, 1), 17);
  const auto read = [](simmpi::World& w, int rank, double t) {
    return w.base_clock(rank)->at_exact(t);
  };
  EXPECT_DOUBLE_EQ(read(faulted, 1, 4.9), read(clean, 1, 4.9));  // past unaffected
  EXPECT_NEAR(read(faulted, 1, 5.1) - read(clean, 1, 5.1), 250e-6, 1e-12);
  EXPECT_DOUBLE_EQ(read(faulted, 0, 5.1), read(clean, 0, 5.1));  // other rank untouched
}

TEST(WorldClockFaults, FreqJumpChangesTheRateAfterOnset) {
  FaultPlan plan;
  plan.add("freqjump:rank=0,at=10s,ppm=100");
  simmpi::World faulted(topology::testbox(1, 1), 23, plan);
  simmpi::World clean(topology::testbox(1, 1), 23);
  const auto rate_delta = [&](double t0, double t1) {
    const double faulted_span =
        faulted.base_clock(0)->at_exact(t1) - faulted.base_clock(0)->at_exact(t0);
    const double clean_span = clean.base_clock(0)->at_exact(t1) - clean.base_clock(0)->at_exact(t0);
    return (faulted_span - clean_span) / (t1 - t0);
  };
  EXPECT_NEAR(rate_delta(0.0, 10.0), 0.0, 1e-9);      // before: identical rate
  EXPECT_NEAR(rate_delta(10.0, 20.0), 100e-6, 1e-8);  // after: +100 ppm
}

}  // namespace
}  // namespace hcs::fault
