// Conservative-PDES engine (docs/parallel-simulation.md): window scheduler
// lookahead math, shard partitioning, cross-shard mailbox ordering, and the
// headline guarantee — bit-identical results for any shard count, clean and
// under fault/crash plans.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "clocksync/factory.hpp"
#include "fault/fault_plan.hpp"
#include "sim/simulation.hpp"
#include "simmpi/comm.hpp"
#include "topology/presets.hpp"
#include "util/vec.hpp"

namespace hcs::simmpi {
namespace {

fault::FaultPlan plan_of(const std::vector<std::string>& specs) {
  fault::FaultPlan plan;
  for (const std::string& s : specs) plan.add(s);
  return plan;
}

// ------------------------------------------------------- window scheduler --

TEST(Lookahead, IsTheInterNodeBaseLatency) {
  const auto machine = topology::testbox(4, 2);
  World w(machine, 7, {}, 4);
  EXPECT_EQ(w.lookahead(), machine.net.inter_node.base_latency);
  EXPECT_GT(w.lookahead(), 0.0);
}

TEST(Lookahead, IndependentOfShardCount) {
  const auto machine = topology::testbox(4, 2);
  EXPECT_EQ(World(machine, 7, {}, 1).lookahead(), World(machine, 7, {}, 4).lookahead());
}

TEST(RunWindow, ProcessesStrictlyBelowTheBoundary) {
  sim::Simulation s(1);
  int fired_early = 0, fired_late = 0;
  s.spawn([](sim::Simulation& sim, int& early, int& late) -> sim::Task<void> {
    co_await sim.delay(1.0);
    ++early;
    co_await sim.delay(1.0);  // resumes at exactly t = 2.0
    ++late;
  }(s, fired_early, fired_late));
  s.run_window(2.0);  // the t == 2.0 event must stay queued
  EXPECT_EQ(fired_early, 1);
  EXPECT_EQ(fired_late, 0);
  ASSERT_FALSE(s.idle());
  EXPECT_EQ(s.next_event_time(), 2.0);
  s.run_window(3.0);
  EXPECT_EQ(fired_late, 1);
  EXPECT_TRUE(s.idle());
}

TEST(RunWindow, ParksErrorsForTakeError) {
  sim::Simulation s(1);
  s.spawn([](sim::Simulation& sim) -> sim::Task<void> {
    co_await sim.delay(1.0);
    throw std::runtime_error("boom");
  }(s));
  s.run_window(2.0);  // must not throw across a shard barrier
  const std::exception_ptr error = s.take_error();
  ASSERT_TRUE(error);
  EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
  EXPECT_TRUE(s.idle());                 // take_error drops queued events
  EXPECT_EQ(s.take_error(), nullptr);    // one-shot
}

TEST(RunWindow, BudgetGuardCountsLifetimeEvents) {
  sim::Simulation s(1);
  s.spawn([](sim::Simulation& sim) -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) co_await sim.delay(1.0);
  }(s));
  s.run_window(100.0, 3);
  EXPECT_TRUE(s.take_error());  // fourth event would exceed the cap of 3
}

// ------------------------------------------------------------ partitioning --

TEST(ShardPartition, NodeAlignedContiguousAndComplete) {
  const auto machine = topology::testbox(8, 2);
  for (const int shards : {1, 2, 3, 8}) {
    World w(machine, 5, {}, shards);
    ASSERT_EQ(w.shards(), shards);
    int prev = 0;
    std::vector<bool> used(static_cast<std::size_t>(shards), false);
    for (int r = 0; r < w.size(); ++r) {
      const int s = w.shard_of_rank(r);
      ASSERT_GE(s, prev);  // contiguous node ranges
      ASSERT_LT(s, shards);
      used[static_cast<std::size_t>(s)] = true;
      prev = s;
      // Node-aligned: a co-located rank lands in the same shard.
      EXPECT_EQ(s, w.shard_of_rank(r - (r % 2)));
    }
    for (const bool u : used) EXPECT_TRUE(u);  // no empty shard
  }
}

TEST(ShardPartition, ClampsToNodeCount) {
  World w(topology::testbox(3, 2), 5, {}, 64);
  EXPECT_EQ(w.shards(), 3);
  EXPECT_EQ(World(topology::testbox(3, 2), 5, {}, -4).shards(), 1);
}

TEST(ShardPartition, RanksOnSameNodeShareTheSimulation) {
  World w(topology::testbox(4, 2), 5, {}, 4);
  EXPECT_EQ(&w.sim_of(0), &w.sim_of(1));
  EXPECT_NE(&w.sim_of(0), &w.sim_of(2));
  EXPECT_EQ(&w.sim_of(0), &w.sim());  // rank 0 lives in shard 0
}

// ------------------------------------------------- cross-shard transport --

// All-to-one across node boundaries with channel sequencing active (any net
// fault plan turns it on): per-channel FIFO must survive the window-boundary
// outbox merge — including dropped-and-retransmitted messages — at every
// shard count.
TEST(CrossShardMailbox, PerChannelFifoAcrossWindows) {
  for (const int shards : {1, 2, 4}) {
    World w(topology::testbox(4, 1), 11, plan_of({"drop:p=0.1"}), shards);
    const int p = w.size();
    const int dst = p - 1;
    constexpr int kMsgs = 20;
    bool fifo_ok = true;
    w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
      auto& comm = ctx.comm_world();
      if (ctx.rank() == dst) {
        for (int src = 0; src + 1 < p; ++src) {
          for (int i = 0; i < kMsgs; ++i) {
            const Message m = co_await comm.recv(src, 7);
            if (m.data[0] != static_cast<double>(i)) fifo_ok = false;
          }
        }
      } else {
        for (int i = 0; i < kMsgs; ++i) {
          co_await comm.send(dst, 7, util::vec(static_cast<double>(i)));
        }
      }
    });
    EXPECT_TRUE(fifo_ok) << "shards=" << shards;
  }
}

// Fault-free the transport promises no total FIFO (wire jitter may reorder
// same-channel messages) — but the timeline it produces must be the SAME at
// every shard count.  All-to-one maximizes merge pressure on the receiving
// NIC; the recorded post-recv timestamps observe every ingress-admission
// decision, so any shard-dependent merge would shift them.
TEST(CrossShardMailbox, MergeOrderMatchesUnshardedEngine) {
  auto arrival_times = [](int shards) {
    World w(topology::testbox(4, 1), 11, {}, shards);
    const int p = w.size();
    const int dst = p - 1;
    constexpr int kMsgs = 20;
    std::vector<double> times;
    w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
      auto& comm = ctx.comm_world();
      if (ctx.rank() == dst) {
        for (int i = 0; i < kMsgs; ++i) {
          for (int src = 0; src + 1 < p; ++src) {
            const Message m = co_await comm.recv(src, i);
            times.push_back(m.arrived_at);
            times.push_back(ctx.sim().now());
          }
        }
      } else {
        for (int i = 0; i < kMsgs; ++i) {
          co_await comm.send(dst, i, util::vec(static_cast<double>(ctx.rank() * 100 + i)));
        }
      }
    });
    return times;
  };
  const std::vector<double> base = arrival_times(1);
  for (const int shards : {2, 4}) {
    EXPECT_EQ(base, arrival_times(shards)) << "shards=" << shards;
  }
}

// Transport-level determinism fixture: a ring of cross-node exchanges whose
// per-rank completion times and payload checksums must match bit-for-bit at
// every shard count.
std::vector<double> ring_trace(int shards, const fault::FaultPlan& plan) {
  World w(topology::testbox(4, 2), 42, plan, shards);
  const int p = w.size();
  std::vector<double> out(static_cast<std::size_t>(2 * p), 0.0);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    auto& comm = ctx.comm_world();
    const int me = ctx.rank();
    const int next = (me + 2) % p;      // always a different node (2 cores/node)
    const int prev = (me + p - 2) % p;
    for (int i = 0; i < 6; ++i) {
      co_await comm.send(next, i, util::vec(static_cast<double>(me * 100 + i)));
      const Message m = co_await comm.recv(prev, i);
      out[static_cast<std::size_t>(2 * me)] += m.data[0] + ctx.sim().now();
    }
    out[static_cast<std::size_t>(2 * me) + 1] = ctx.sim().now();
  });
  return out;
}

TEST(ShardDeterminism, RingTraceBitIdenticalCleanAndFaulted) {
  const std::vector<fault::FaultPlan> plans = {
      {},
      plan_of({"drop:p=0.1", "duplicate:p=0.05"}),
      plan_of({"crash:rank=3,at=0.0005s"}),
  };
  for (const auto& plan : plans) {
    const std::vector<double> base = ring_trace(1, plan);
    for (const int shards : {2, 4}) {
      EXPECT_EQ(base, ring_trace(shards, plan)) << "shards=" << shards;
    }
  }
}

// End-to-end determinism: a full hierarchical sync (ping-pong bursts, fits,
// collectives) must produce bit-identical per-rank corrections at every
// shard count — the unit-level version of the bench golden gates.
std::vector<double> sync_trace(int shards, const fault::FaultPlan& plan) {
  World w(topology::testbox(4, 2), 9, plan, shards);
  const int p = w.size();
  std::vector<double> out(static_cast<std::size_t>(2 * p), 0.0);
  w.run_all([&](RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca2/recompute_intercept/20/skampi_offset/5");
    const auto clock = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    const std::size_t me = static_cast<std::size_t>(ctx.rank());
    out[2 * me] = clock->at_exact(0.5);
    out[2 * me + 1] = ctx.sim().now();
  });
  return out;
}

TEST(ShardDeterminism, FullSyncBitIdenticalCleanAndFaulted) {
  const std::vector<fault::FaultPlan> plans = {
      {},
      plan_of({"drop:p=0.02", "clockstep:rank=3,at=0.01s,step=50us"}),
      plan_of({"crash:rank=5,at=0.01s"}),
  };
  for (const auto& plan : plans) {
    const std::vector<double> base = sync_trace(1, plan);
    for (const int shards : {2, 4}) {
      EXPECT_EQ(base, sync_trace(shards, plan)) << "shards=" << shards;
    }
  }
}

// ----------------------------------------------------- engine error paths --

TEST(ShardedEngine, DeadlockStillDetected) {
  World w(topology::testbox(2, 1), 3, {}, 2);
  w.launch([](RankCtx& ctx) -> sim::Task<void> {
    if (ctx.rank() == 0) (void)co_await ctx.comm_world().recv(1, 0);  // never sent
    co_return;
  });
  try {
    w.run();
    FAIL() << "expected a deadlock error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST(ShardedEngine, EventBudgetSurfacesFromRun) {
  for (const int shards : {1, 2}) {
    World w(topology::testbox(2, 1), 3, {}, shards);
    w.launch([](RankCtx& ctx) -> sim::Task<void> {
      for (;;) co_await ctx.sim().delay(1e-9);
    });
    EXPECT_THROW(w.run(500), std::runtime_error) << "shards=" << shards;
  }
}

TEST(ShardedEngine, RankErrorPropagatesFromWorkerShard) {
  World w(topology::testbox(4, 1), 3, {}, 4);
  w.launch([](RankCtx& ctx) -> sim::Task<void> {
    co_await ctx.sim().delay(1e-6);
    if (ctx.rank() == 3) throw std::logic_error("rank 3 exploded");
    co_await ctx.sim().delay(1.0);
  });
  EXPECT_THROW(w.run(), std::logic_error);
}

}  // namespace
}  // namespace hcs::simmpi
