// Minimal MPI tracing library (paper §V-C, Fig. 10).
//
// Records (enter, leave) intervals of named events per rank using an
// arbitrary Clock — the paper's point is that the *choice* of clock (local
// clock_gettime / gettimeofday vs. a synchronized global clock) decides
// whether a Gantt view of a short MPI_Allreduce is interpretable at all.
#pragma once

#include <string>
#include <vector>

#include "vclock/clock.hpp"

namespace hcs::trace {

struct Interval {
  std::string event;
  int iteration = 0;
  double start = 0.0;  // clock units of the recording clock
  double end = 0.0;
  double duration() const { return end - start; }
};

/// One per rank; not shared.
class IntervalTracer {
 public:
  IntervalTracer(int rank, vclock::ClockPtr clock);

  /// Begins an interval and returns its index (for end_event).
  std::size_t begin_event(const std::string& name, int iteration);
  void end_event(std::size_t index);

  int rank() const { return rank_; }
  const std::vector<Interval>& intervals() const { return intervals_; }
  const vclock::ClockPtr& clock() const { return clock_; }

 private:
  int rank_;
  vclock::ClockPtr clock_;
  std::vector<Interval> intervals_;
};

/// One row of the paper's Gantt charts: the start (normalized to the
/// earliest start over all ranks) and the duration of one event instance.
struct GanttRow {
  int rank = 0;
  double start = 0.0;     // seconds after the earliest plotted start
  double duration = 0.0;  // seconds
};

/// Extracts the rows for `event` at `iteration` across all tracers,
/// normalizing the start times to the minimum (the paper's "normalized
/// time" axis).  Tracers must be ordered by rank.
std::vector<GanttRow> gantt_rows(const std::vector<IntervalTracer>& tracers, const std::string& event,
                                 int iteration);

/// Serializes all recorded intervals into the Chrome Trace Event Format
/// (load in chrome://tracing or https://ui.perfetto.dev): one "complete"
/// event per interval, pid 0, tid = rank, microsecond timestamps on each
/// tracer's own clock.  This is the practical payoff of a global clock for
/// tracing (paper §V-C): recorded with local clocks the timeline is
/// scrambled; with a synchronized clock it lines up.
std::string to_chrome_trace_json(const std::vector<IntervalTracer>& tracers);

}  // namespace hcs::trace
