// Low-overhead structured event tracer (observability core).
//
// A Tracer records spans (timed intervals) and instant events keyed by
// (rank, time-source, category) into fixed-capacity per-rank ring buffers,
// so a runaway event source degrades to "oldest events dropped" instead of
// unbounded memory growth.  merged_events() flushes all rings into one
// deterministic stream ordered by (timestamp, record sequence) — identical
// runs produce identical streams, which the tests assert.
//
// The tracer is installed per-thread (install_tracer / ScopedTracer write a
// thread_local slot); the HCS_TRACE_SCOPE macro in span.hpp reads the active
// tracer through a single pointer load, so instrumentation costs one branch
// when tracing is off and can be compiled out entirely with
// -DHCS_TRACE_DISABLE.  Thread scoping is what lets runner::TrialRunner give
// every concurrent trial a private tracer and merge them deterministically
// afterwards (absorb) without any locking on the record path.
//
// Timestamps come from a TimeSource.  simmpi::World installs itself as the
// source (true simulated time) while it is alive; exporters label events
// with the source they were recorded on, mirroring the paper's point that a
// trace is only interpretable if you know which clock stamped it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hcs::trace {

enum class Category : std::uint8_t { kSim, kNet, kColl, kSync, kBench, kApp };
const char* to_string(Category cat);

enum class TimeSourceKind : std::uint8_t { kSimTime, kLocalClock, kGlobalClock };
const char* to_string(TimeSourceKind kind);

struct TraceEvent {
  const char* name = "";  // static-storage string; the tracer does not copy
  double ts = 0.0;        // seconds on the recording time source
  double dur = -1.0;      // span duration; < 0 marks an instant event
  std::uint64_t seq = 0;  // global record order (deterministic tiebreak)
  std::int64_t arg = 0;   // one free integer argument (bytes, level, ...)
  std::int32_t rank = 0;
  Category cat = Category::kApp;
  TimeSourceKind source = TimeSourceKind::kSimTime;

  bool instant() const { return dur < 0.0; }
};

/// Provider of "now" for recorded events.  Implemented by simmpi::World
/// (simulated time); tests implement it with a fake.
class TimeSource {
 public:
  virtual ~TimeSource() = default;
  virtual double trace_now() const = 0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1 << 14;  // events per rank

  explicit Tracer(std::size_t ring_capacity = kDefaultRingCapacity);

  std::size_t ring_capacity() const noexcept { return capacity_; }

  /// Sets (or clears, with nullptr) the timestamp provider.  Not owned.
  void set_time_source(TimeSource* source, TimeSourceKind kind = TimeSourceKind::kSimTime);
  const TimeSource* time_source() const noexcept { return source_; }
  TimeSourceKind time_source_kind() const noexcept { return kind_; }

  /// Current time on the installed source; 0.0 when none is installed.
  double now() const { return source_ ? source_->trace_now() : 0.0; }

  /// Records a span with explicit timestamps (for callers that know better
  /// times than "now", e.g. the synthesized ping-pong bursts).
  void record_complete(int rank, Category cat, const char* name, double ts, double dur,
                       std::int64_t arg = 0);

  /// Records an instant event stamped with now().
  void record_instant(int rank, Category cat, const char* name, std::int64_t arg = 0);

  std::uint64_t recorded() const noexcept { return recorded_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Flush: all per-rank rings merged into (ts, seq) order.  seq is unique,
  /// so the order is total and identical across identical runs.
  std::vector<TraceEvent> merged_events() const;

  /// Appends every event of `other` (in `other`'s record order) to this
  /// tracer, re-sequencing them as if they had just been recorded here.
  /// Absorbing per-trial tracers in trial-index order therefore yields the
  /// exact stream a sequential run of those trials would have produced —
  /// the merge step of runner::TrialRunner.  Events keep their rank,
  /// timestamps and time-source label; ring capacity applies as usual.
  void absorb(const Tracer& other);

  void clear();

 private:
  struct Ring {
    std::vector<TraceEvent> buf;  // capacity-bounded; oldest overwritten
    std::size_t next = 0;
    bool wrapped = false;
  };

  void push(int rank, TraceEvent ev);

  std::size_t capacity_;
  std::vector<Ring> rings_;  // indexed by rank; grown on demand
  TimeSource* source_ = nullptr;
  TimeSourceKind kind_ = TimeSourceKind::kSimTime;
  std::uint64_t seq_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// The calling thread's active tracer (nullptr = tracing off, the default).
/// The slot is thread_local: installing a tracer affects only the current
/// thread, and a tracer must not be shared between threads without external
/// synchronization.
Tracer* active_tracer() noexcept;
void install_tracer(Tracer* tracer) noexcept;

/// RAII install/uninstall, restoring the previous tracer.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* previous_;
};

}  // namespace hcs::trace
