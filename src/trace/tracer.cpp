#include "trace/tracer.hpp"

#include <algorithm>
#include <stdexcept>

namespace hcs::trace {

const char* to_string(Category cat) {
  switch (cat) {
    case Category::kSim: return "sim";
    case Category::kNet: return "net";
    case Category::kColl: return "coll";
    case Category::kSync: return "sync";
    case Category::kBench: return "bench";
    case Category::kApp: return "app";
  }
  return "?";
}

const char* to_string(TimeSourceKind kind) {
  switch (kind) {
    case TimeSourceKind::kSimTime: return "sim";
    case TimeSourceKind::kLocalClock: return "local";
    case TimeSourceKind::kGlobalClock: return "global";
  }
  return "?";
}

Tracer::Tracer(std::size_t ring_capacity) : capacity_(ring_capacity) {
  if (ring_capacity < 1) throw std::invalid_argument("Tracer: ring capacity must be >= 1");
}

void Tracer::set_time_source(TimeSource* source, TimeSourceKind kind) {
  source_ = source;
  kind_ = kind;
}

void Tracer::push(int rank, TraceEvent ev) {
  const auto idx = static_cast<std::size_t>(std::max(rank, 0));
  if (idx >= rings_.size()) rings_.resize(idx + 1);
  Ring& ring = rings_[idx];
  ev.seq = seq_++;
  ++recorded_;
  if (ring.buf.size() < capacity_) {
    ring.buf.push_back(ev);
    return;
  }
  // Full: overwrite the oldest slot (ring.next points at it).
  ring.buf[ring.next] = ev;
  ring.next = (ring.next + 1) % capacity_;
  ring.wrapped = true;
  ++dropped_;
}

void Tracer::record_complete(int rank, Category cat, const char* name, double ts, double dur,
                             std::int64_t arg) {
  TraceEvent ev;
  ev.name = name;
  ev.ts = ts;
  ev.dur = dur < 0.0 ? 0.0 : dur;
  ev.arg = arg;
  ev.rank = rank;
  ev.cat = cat;
  ev.source = kind_;
  push(rank, ev);
}

void Tracer::record_instant(int rank, Category cat, const char* name, std::int64_t arg) {
  TraceEvent ev;
  ev.name = name;
  ev.ts = now();
  ev.dur = -1.0;
  ev.arg = arg;
  ev.rank = rank;
  ev.cat = cat;
  ev.source = kind_;
  push(rank, ev);
}

std::vector<TraceEvent> Tracer::merged_events() const {
  std::vector<TraceEvent> out;
  out.reserve(recorded_ > dropped_ ? static_cast<std::size_t>(recorded_ - dropped_) : 0);
  for (const Ring& ring : rings_) {
    if (!ring.wrapped) {
      out.insert(out.end(), ring.buf.begin(), ring.buf.end());
      continue;
    }
    // Oldest-to-newest: [next, end) then [0, next).
    out.insert(out.end(), ring.buf.begin() + static_cast<std::ptrdiff_t>(ring.next),
               ring.buf.end());
    out.insert(out.end(), ring.buf.begin(),
               ring.buf.begin() + static_cast<std::ptrdiff_t>(ring.next));
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.seq < b.seq;
  });
  return out;
}

void Tracer::absorb(const Tracer& other) {
  // Replay other's events in record (seq) order so the result is exactly what
  // recording them here in the first place would have produced.
  std::vector<TraceEvent> events;
  events.reserve(other.recorded_ > other.dropped_
                     ? static_cast<std::size_t>(other.recorded_ - other.dropped_)
                     : 0);
  for (const Ring& ring : other.rings_) {
    if (!ring.wrapped) {
      events.insert(events.end(), ring.buf.begin(), ring.buf.end());
      continue;
    }
    events.insert(events.end(), ring.buf.begin() + static_cast<std::ptrdiff_t>(ring.next),
                  ring.buf.end());
    events.insert(events.end(), ring.buf.begin(),
                  ring.buf.begin() + static_cast<std::ptrdiff_t>(ring.next));
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  for (const TraceEvent& ev : events) push(ev.rank, ev);
}

void Tracer::clear() {
  rings_.clear();
  seq_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

namespace {
thread_local Tracer* g_active_tracer = nullptr;
}  // namespace

Tracer* active_tracer() noexcept { return g_active_tracer; }
void install_tracer(Tracer* tracer) noexcept { g_active_tracer = tracer; }

ScopedTracer::ScopedTracer(Tracer* tracer) : previous_(g_active_tracer) {
  g_active_tracer = tracer;
}
ScopedTracer::~ScopedTracer() { g_active_tracer = previous_; }

}  // namespace hcs::trace
