#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "trace/chrome_export.hpp"

namespace hcs::trace {

IntervalTracer::IntervalTracer(int rank, vclock::ClockPtr clock) : rank_(rank), clock_(std::move(clock)) {
  if (!clock_) throw std::invalid_argument("Tracer: null clock");
}

std::size_t IntervalTracer::begin_event(const std::string& name, int iteration) {
  Interval iv;
  iv.event = name;
  iv.iteration = iteration;
  iv.start = clock_->now();
  intervals_.push_back(std::move(iv));
  return intervals_.size() - 1;
}

void IntervalTracer::end_event(std::size_t index) {
  if (index >= intervals_.size()) throw std::out_of_range("IntervalTracer::end_event: bad index");
  intervals_[index].end = clock_->now();
}

std::vector<GanttRow> gantt_rows(const std::vector<IntervalTracer>& tracers, const std::string& event,
                                 int iteration) {
  std::vector<GanttRow> rows;
  rows.reserve(tracers.size());
  double min_start = std::numeric_limits<double>::infinity();
  for (const IntervalTracer& tracer : tracers) {
    for (const Interval& iv : tracer.intervals()) {
      if (iv.event == event && iv.iteration == iteration) {
        GanttRow row;
        row.rank = tracer.rank();
        row.start = iv.start;
        row.duration = iv.duration();
        rows.push_back(row);
        min_start = std::min(min_start, iv.start);
        break;
      }
    }
  }
  for (GanttRow& row : rows) row.start -= min_start;
  return rows;
}

std::string to_chrome_trace_json(const std::vector<IntervalTracer>& tracers) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const IntervalTracer& tracer : tracers) {
    for (const Interval& iv : tracer.intervals()) {
      if (!first) out += ',';
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"cat\":\"mpi\",\"ph\":\"X\",\"pid\":0,"
                    "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"iteration\":%d}}",
                    json_escape(iv.event).c_str(), tracer.rank(), iv.start * 1e6,
                    iv.duration() * 1e6, iv.iteration);
      out += buf;
    }
  }
  out += "]}";
  return out;
}

}  // namespace hcs::trace
