// Scoped-span instrumentation macros over the active tracer.
//
//   HCS_TRACE_SCOPE(Sync, rank, "learn_clock_model", other_rank);
//   HCS_TRACE_INSTANT(Sync, rank, "resync");
//
// The first argument is a Category member without its `k` prefix (Sim, Net,
// Coll, Sync, Bench, App).  The optional trailing argument is the event's
// free integer payload (bytes, partner rank, ...).  The event name must be a
// string literal or otherwise outlive the tracer.
//
// Cost model: with no tracer installed each macro is one pointer load and a
// branch (bench_micro_sim verifies the hot paths stay flat); compiling with
// -DHCS_TRACE_DISABLE removes even that.
#pragma once

#include "trace/tracer.hpp"

namespace hcs::trace {

/// RAII span: captures now() at construction, records a complete event over
/// [t0, now()] at destruction.  Null tracer = fully inert.  Safe to hold
/// across co_await suspension points (the span then covers virtual time).
class Span {
 public:
  Span(Tracer* tracer, Category cat, int rank, const char* name, std::int64_t arg = 0)
      : tracer_(tracer) {
    if (tracer_) {
      cat_ = cat;
      rank_ = rank;
      name_ = name;
      arg_ = arg;
      t0_ = tracer_->now();
    }
  }
  ~Span() {
    if (tracer_) tracer_->record_complete(rank_, cat_, name_, t0_, tracer_->now() - t0_, arg_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  const char* name_ = "";
  double t0_ = 0.0;
  std::int64_t arg_ = 0;
  int rank_ = 0;
  Category cat_ = Category::kApp;
};

}  // namespace hcs::trace

#define HCS_TRACE_CONCAT_IMPL(a, b) a##b
#define HCS_TRACE_CONCAT(a, b) HCS_TRACE_CONCAT_IMPL(a, b)

#ifdef HCS_TRACE_DISABLE

#define HCS_TRACE_SCOPE(cat, rank, ...) ((void)0)
#define HCS_TRACE_INSTANT(cat, rank, ...) ((void)0)

#else

#define HCS_TRACE_SCOPE(cat, rank, ...)                                              \
  const ::hcs::trace::Span HCS_TRACE_CONCAT(hcs_trace_span_, __LINE__)(              \
      ::hcs::trace::active_tracer(), ::hcs::trace::Category::HCS_TRACE_CONCAT(k, cat), \
      (rank), __VA_ARGS__)

#define HCS_TRACE_INSTANT(cat, rank, ...)                                             \
  do {                                                                                \
    if (::hcs::trace::Tracer* hcs_trace_t = ::hcs::trace::active_tracer()) {          \
      hcs_trace_t->record_instant((rank), ::hcs::trace::Category::HCS_TRACE_CONCAT(k, cat), \
                                  __VA_ARGS__);                                       \
    }                                                                                 \
  } while (0)

#endif  // HCS_TRACE_DISABLE
