#include "trace/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/table.hpp"

namespace hcs::trace {

HistogramMetric::HistogramMetric(std::size_t sample_cap, MetricUnit unit)
    : cap_(sample_cap), unit_(unit) {
  if (sample_cap < 2) throw std::invalid_argument("HistogramMetric: sample cap must be >= 2");
}

void HistogramMetric::observe(double x) {
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  retain_sample(x);
}

void HistogramMetric::retain_sample(double x) {
  if (++since_last_ < stride_) return;
  since_last_ = 0;
  if (samples_.size() == cap_) {
    // Decimate: keep every other retained sample, double the stride.  Keeps
    // the reservoir an (approximately) uniform, deterministic subsample.
    std::size_t w = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2) samples_[w++] = samples_[i];
    samples_.resize(w);
    stride_ *= 2;
  }
  samples_.push_back(x);
}

void HistogramMetric::merge_from(const HistogramMetric& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (const double x : other.samples_) retain_sample(x);
}

double HistogramMetric::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (q < 0.0 || q > 100.0) throw std::invalid_argument("percentile: q outside [0, 100]");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  return sorted[rank == 0 ? 0 : rank - 1];
}

Counter& MetricsRegistry::counter(const std::string& name) { return counters_[name]; }
Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }
HistogramMetric& MetricsRegistry::histogram(const std::string& name, MetricUnit unit) {
  return histograms_
      .try_emplace(name, HistogramMetric(HistogramMetric::kDefaultSampleCap, unit))
      .first->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].inc(c.value());
  for (const auto& [name, g] : other.gauges_) gauges_[name].set(g.value());
  for (const auto& [name, h] : other.histograms_) {
    histograms_.try_emplace(name, HistogramMetric(HistogramMetric::kDefaultSampleCap, h.unit()))
        .first->second.merge_from(h);
  }
}

namespace {
thread_local MetricsRegistry* g_active_metrics = nullptr;
}  // namespace

MetricsRegistry* active_metrics() noexcept { return g_active_metrics; }
void install_metrics(MetricsRegistry* registry) noexcept { g_active_metrics = registry; }

ScopedMetrics::ScopedMetrics(MetricsRegistry* registry) : previous_(g_active_metrics) {
  g_active_metrics = registry;
}
ScopedMetrics::~ScopedMetrics() { g_active_metrics = previous_; }

void write_metrics_csv(std::ostream& os, const MetricsRegistry& registry) {
  os << "name,kind,unit,count,value,mean,p50,p90,p99,min,max\n";
  for (const auto& [name, c] : registry.counters()) {
    os << name << ",counter,," << c.value() << "," << c.value() << ",,,,,,\n";
  }
  for (const auto& [name, g] : registry.gauges()) {
    os << name << ",gauge,,1," << g.value() << ",,,,,,\n";
  }
  for (const auto& [name, h] : registry.histograms()) {
    os << name << ",histogram," << (h.unit() == MetricUnit::kSeconds ? "s" : "") << ","
       << h.count() << "," << h.sum() << "," << h.mean() << "," << h.percentile(50) << ","
       << h.percentile(90) << "," << h.percentile(99) << "," << h.min() << "," << h.max()
       << "\n";
  }
}

void print_metrics_summary(std::ostream& os, const MetricsRegistry& registry,
                           double unit_scale) {
  if (registry.empty()) {
    os << "(no metrics recorded)\n";
    return;
  }
  if (!registry.counters().empty() || !registry.gauges().empty()) {
    util::Table table({"metric", "value"});
    for (const auto& [name, c] : registry.counters()) {
      table.add_row({name, std::to_string(c.value())});
    }
    for (const auto& [name, g] : registry.gauges()) table.add_row({name, util::fmt(g.value())});
    table.print(os);
  }
  if (!registry.histograms().empty()) {
    os << "\n";
    util::Table table({"histogram", "count", "mean", "p50", "p90", "p99", "min", "max"});
    for (const auto& [name, h] : registry.histograms()) {
      const double s = h.unit() == MetricUnit::kSeconds ? unit_scale : 1.0;
      table.add_row({name, std::to_string(h.count()), util::fmt(h.mean() * s),
                     util::fmt(h.percentile(50) * s), util::fmt(h.percentile(90) * s),
                     util::fmt(h.percentile(99) * s), util::fmt(h.min() * s),
                     util::fmt(h.max() * s)});
    }
    table.print(os);
    os << "(seconds-valued histogram columns scaled by " << unit_scale
       << "; unitless histograms printed raw)\n";
  }
}

}  // namespace hcs::trace
