// Chrome Trace Event Format export for the structured tracer.
//
// Produces the JSON-object form ({"traceEvents":[...]}) readable by
// chrome://tracing and https://ui.perfetto.dev: one "X" (complete) event per
// span, one "i" (instant) event per instant, plus "M" metadata events naming
// the process and one thread per rank.  Timestamps are microseconds; tid is
// the rank, so the timeline shows one row per rank like the paper's Gantt
// charts (Fig. 10).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "trace/tracer.hpp"

namespace hcs::trace {

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view s);

/// Writes `events` (typically Tracer::merged_events()) as Chrome trace JSON.
void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events);

/// Convenience: merge + write.
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// Writes the tracer's merged events to `path`; returns false if the file
/// could not be opened or written.
bool write_chrome_trace_file(const std::string& path, const Tracer& tracer);

}  // namespace hcs::trace
