#include "trace/chrome_export.hpp"

#include <cstdio>
#include <fstream>
#include <set>

namespace hcs::trace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_number(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  os << buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };

  // Metadata: name the process and one thread per rank so Perfetto shows
  // "rank N" rows instead of bare tids.
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"hclocksync\"}}";
  std::set<std::int32_t> ranks;
  for (const TraceEvent& ev : events) ranks.insert(ev.rank);
  for (const std::int32_t rank : ranks) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << rank
       << ",\"args\":{\"name\":\"rank " << rank << "\"}}";
  }

  for (const TraceEvent& ev : events) {
    sep();
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\"" << to_string(ev.cat)
       << "\",\"ph\":\"" << (ev.instant() ? 'i' : 'X') << "\",\"pid\":0,\"tid\":" << ev.rank
       << ",\"ts\":";
    write_number(os, ev.ts * 1e6);
    if (ev.instant()) {
      os << ",\"s\":\"t\"";
    } else {
      os << ",\"dur\":";
      write_number(os, ev.dur * 1e6);
    }
    os << ",\"args\":{\"arg\":" << ev.arg << ",\"time_source\":\"" << to_string(ev.source)
       << "\"}}";
  }
  os << "]}";
}

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  write_chrome_trace(os, tracer.merged_events());
}

bool write_chrome_trace_file(const std::string& path, const Tracer& tracer) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, tracer);
  out.flush();
  return out.good();
}

}  // namespace hcs::trace
