// Metrics registry: counters, gauges and sample histograms that the
// simulator, the network model and the sync algorithms report into.
//
// Like the tracer, a registry is installed per-thread (install_metrics /
// ScopedMetrics write a thread_local slot); with none installed every
// HCS_METRIC_* macro is a pointer load and a branch.  Thread scoping lets
// runner::TrialRunner hand each concurrent trial a private registry and
// merge them in trial-index order afterwards (merge_from), keeping the
// record path lock-free.  Hot callers (NetworkModel, World) resolve their
// Counter/HistogramMetric pointers once at construction — registry entries
// are stable for the registry's lifetime — so the per-message cost with
// metrics ON is a few adds, not a map lookup.
//
// Histograms keep exact count/sum/min/max and a capacity-bounded sample
// reservoir (stride decimation: when full, every other retained sample is
// discarded and the sampling stride doubles — deterministic, no RNG).
// Percentiles use the nearest-rank method over the retained samples.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace hcs::trace {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Unit of a histogram's observations.  Seconds-valued histograms get their
/// summary columns rendered in microseconds; unitless ones (ratios, counts
/// per round, r^2) are printed raw.
enum class MetricUnit : std::uint8_t { kSeconds, kNone };

class HistogramMetric {
 public:
  static constexpr std::size_t kDefaultSampleCap = 1 << 16;

  explicit HistogramMetric(std::size_t sample_cap = kDefaultSampleCap,
                           MetricUnit unit = MetricUnit::kSeconds);

  void observe(double x);

  MetricUnit unit() const noexcept { return unit_; }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double mean() const noexcept { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Nearest-rank percentile (q in [0, 100]) over the retained samples.
  double percentile(double q) const;

  /// Retained samples, in observation order (decimated once past the cap).
  const std::vector<double>& samples() const noexcept { return samples_; }

  /// Folds `other` into this histogram: exact aggregates (count/sum/min/max)
  /// merge exactly; other's retained samples are replayed through this
  /// histogram's reservoir in their observation order.  Merging per-trial
  /// histograms in trial-index order is deterministic for any thread count.
  void merge_from(const HistogramMetric& other);

 private:
  void retain_sample(double x);

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::vector<double> samples_;
  std::size_t cap_;
  MetricUnit unit_;
  std::uint64_t stride_ = 1;  // record every stride_-th observation
  std::uint64_t since_last_ = 0;
};

/// Named metrics, iterated in name order (deterministic exports).  References
/// returned by counter()/gauge()/histogram() stay valid for the registry's
/// lifetime (std::map nodes are stable).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `unit` only takes effect on first creation of `name`.
  HistogramMetric& histogram(const std::string& name, MetricUnit unit = MetricUnit::kSeconds);

  const std::map<std::string, Counter>& counters() const noexcept { return counters_; }
  const std::map<std::string, Gauge>& gauges() const noexcept { return gauges_; }
  const std::map<std::string, HistogramMetric>& histograms() const noexcept {
    return histograms_;
  }

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// Folds `other` into this registry: counters add, gauges take other's
  /// value (the later writer wins, as in a sequential run), histograms merge
  /// via HistogramMetric::merge_from.  Used by runner::TrialRunner to fold
  /// per-trial registries back into the parent in trial-index order.
  void merge_from(const MetricsRegistry& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, HistogramMetric> histograms_;
};

/// The calling thread's active registry (nullptr = metrics off, the
/// default).  The slot is thread_local: installing a registry affects only
/// the current thread, and a registry must not be shared between threads
/// without external synchronization.
MetricsRegistry* active_metrics() noexcept;
void install_metrics(MetricsRegistry* registry) noexcept;

/// RAII install/uninstall, restoring the previous registry.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* registry);
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// CSV dump: one row per metric with kind, count/value and distribution
/// columns (mean/p50/p90/p99/min/max for histograms).
void write_metrics_csv(std::ostream& os, const MetricsRegistry& registry);

/// Human-readable end-of-run summary (util::Table): counters & gauges first,
/// then histogram percentiles.  `unit_scale` multiplies the columns of
/// seconds-valued histograms (1e6 renders them as microseconds); unitless
/// histograms print raw.
void print_metrics_summary(std::ostream& os, const MetricsRegistry& registry,
                           double unit_scale = 1e6);

}  // namespace hcs::trace

#define HCS_METRIC_INC(name)                                                          \
  do {                                                                                \
    if (::hcs::trace::MetricsRegistry* hcs_m = ::hcs::trace::active_metrics())        \
      hcs_m->counter(name).inc();                                                     \
  } while (0)

#define HCS_METRIC_ADD(name, n)                                                       \
  do {                                                                                \
    if (::hcs::trace::MetricsRegistry* hcs_m = ::hcs::trace::active_metrics())        \
      hcs_m->counter(name).inc(static_cast<std::uint64_t>(n));                        \
  } while (0)

#define HCS_METRIC_SET(name, v)                                                       \
  do {                                                                                \
    if (::hcs::trace::MetricsRegistry* hcs_m = ::hcs::trace::active_metrics())        \
      hcs_m->gauge(name).set(v);                                                      \
  } while (0)

#define HCS_METRIC_OBSERVE(name, x)                                                   \
  do {                                                                                \
    if (::hcs::trace::MetricsRegistry* hcs_m = ::hcs::trace::active_metrics())        \
      hcs_m->histogram(name).observe(x);                                              \
  } while (0)

#define HCS_METRIC_OBSERVE_RAW(name, x)                                               \
  do {                                                                                \
    if (::hcs::trace::MetricsRegistry* hcs_m = ::hcs::trace::active_metrics())        \
      hcs_m->histogram(name, ::hcs::trace::MetricUnit::kNone).observe(x);             \
  } while (0)
