#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/shard_context.hpp"

namespace hcs::fault {

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed, int nranks)
    : channel_seed_(seed ^ (plan.seed() * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL)),
      channel_rngs_(static_cast<std::size_t>(nranks > 0 ? nranks : 0)) {
  // Per-rank lifecycle events: (time, is_up).  crash/leave go down at `at`,
  // rejoin comes back up, join is down from 0 until `at`.
  std::vector<std::vector<std::pair<sim::Time, bool>>> lifecycle(
      static_cast<std::size_t>(nranks > 0 ? nranks : 0));
  churn_ranks_.assign(static_cast<std::size_t>(nranks > 0 ? nranks : 0), false);
  for (const FaultSpec& s : plan.specs()) {
    if (s.rank >= nranks || s.peer >= nranks) {
      throw std::invalid_argument("fault spec targets rank " +
                                  std::to_string(s.rank >= nranks ? s.rank : s.peer) +
                                  " but the machine has only " + std::to_string(nranks) +
                                  " ranks: " + s.describe());
    }
    switch (s.kind) {
      case FaultKind::kDrop:
        if (s.p > 0.0) drops_rules_.push_back({s.level, s.p});
        break;
      case FaultKind::kDuplicate:
        if (s.p > 0.0) dup_rules_.push_back({s.level, s.p});
        break;
      case FaultKind::kReorder:
        if (s.p > 0.0) reorder_rules_.push_back({s.level, s.p, s.delay});
        break;
      case FaultKind::kBurst: {
        // Log-normal heavy tail with sigma = 1 and the mean pinned to the
        // spec's delay: mean = exp(mu + sigma^2/2)  =>  mu = ln(delay) - 1/2.
        BurstRule rule{s.level, s.period, s.duration, s.phase, std::log(s.delay) - 0.5, 1.0};
        burst_rules_.push_back(rule);
        break;
      }
      case FaultKind::kStraggler:
        if (s.factor > 1.0) straggler_rules_.push_back({s.rank, s.factor});
        break;
      case FaultKind::kClockStep:
        clock_faults_.push_back({FaultKind::kClockStep, s.rank, s.at, s.step});
        break;
      case FaultKind::kFreqJump:
        clock_faults_.push_back({FaultKind::kFreqJump, s.rank, s.at, s.ppm * 1e-6});
        break;
      case FaultKind::kPause:
        pauses_.push_back({s.rank, s.at, s.at + s.duration});
        break;
      case FaultKind::kCrash:
        lifecycle[static_cast<std::size_t>(s.rank)].push_back({s.at, false});
        break;
      case FaultKind::kLeave:
        lifecycle[static_cast<std::size_t>(s.rank)].push_back({s.at, false});
        churn_ranks_[static_cast<std::size_t>(s.rank)] = true;
        break;
      case FaultKind::kJoin:
        lifecycle[static_cast<std::size_t>(s.rank)].push_back({0.0, false});
        lifecycle[static_cast<std::size_t>(s.rank)].push_back({s.at, true});
        churn_ranks_[static_cast<std::size_t>(s.rank)] = true;
        break;
      case FaultKind::kRejoin:
        lifecycle[static_cast<std::size_t>(s.rank)].push_back({s.at, true});
        churn_ranks_[static_cast<std::size_t>(s.rank)] = true;
        break;
      case FaultKind::kCrashLink: {
        const int a = s.rank < s.peer ? s.rank : s.peer;
        const int b = s.rank < s.peer ? s.peer : s.rank;
        link_cuts_.push_back({a, b, s.at});
        break;
      }
    }
  }
  // Assemble the per-rank down intervals from the lifecycle events: stable
  // alternation of down/up, earliest down wins when two overlap (matching
  // the old duplicate-crash rule), every up must close an open interval.
  bool any_lifecycle = false;
  for (const auto& events : lifecycle) {
    if (!events.empty()) any_lifecycle = true;
  }
  if (any_lifecycle) {
    crash_times_.assign(static_cast<std::size_t>(nranks), sim::kTimeInfinity);
    down_.resize(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      auto events = lifecycle[static_cast<std::size_t>(r)];
      if (events.empty()) continue;
      std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
        return a.first != b.first ? a.first < b.first : a.second < b.second;
      });
      auto& intervals = down_[static_cast<std::size_t>(r)];
      bool open = false;
      sim::Time open_begin = 0.0;
      for (const auto& [at, up] : events) {
        if (!up) {
          if (!open) {
            open = true;
            open_begin = at;
          }  // else: already down, earliest wins
        } else {
          if (!open || at <= open_begin) {
            throw std::invalid_argument("rejoin:rank=" + std::to_string(r) +
                                        " must follow a crash/leave/join of the same rank");
          }
          intervals.push_back({open_begin, at});
          open = false;
        }
      }
      if (open) intervals.push_back({open_begin, sim::kTimeInfinity});
      crash_times_[static_cast<std::size_t>(r)] = intervals.front().begin;
      for (const DownInterval& iv : intervals) {
        if (iv.begin > 0.0) transitions_.push_back(iv.begin);
        if (iv.end < sim::kTimeInfinity) transitions_.push_back(iv.end);
      }
    }
    std::sort(transitions_.begin(), transitions_.end());
  }
  churn_active_ = false;
  for (const bool c : churn_ranks_) churn_active_ = churn_active_ || c;
  crash_active_ = !crash_times_.empty() || !link_cuts_.empty();
  net_active_ = !drops_rules_.empty() || !dup_rules_.empty() || !reorder_rules_.empty() ||
                !burst_rules_.empty() || !straggler_rules_.empty();
  shard_metrics_.push_back(resolve_metrics(trace::active_metrics()));
}

bool FaultInjector::is_down(int rank, sim::Time t) const noexcept {
  if (rank < 0 || rank >= static_cast<int>(down_.size())) return false;
  for (const DownInterval& iv : down_[static_cast<std::size_t>(rank)]) {
    if (t >= iv.begin && t < iv.end) return true;
    if (t < iv.begin) break;  // sorted: no later interval can cover t
  }
  return false;
}

sim::Time FaultInjector::next_down(int rank, sim::Time t) const noexcept {
  if (rank < 0 || rank >= static_cast<int>(down_.size())) return sim::kTimeInfinity;
  for (const DownInterval& iv : down_[static_cast<std::size_t>(rank)]) {
    if (t < iv.end) return iv.begin;  // covering interval, or the next one
  }
  return sim::kTimeInfinity;
}

int FaultInjector::incarnation(int rank, sim::Time t) const noexcept {
  if (rank < 0 || rank >= static_cast<int>(down_.size())) return 0;
  int n = 0;
  for (const DownInterval& iv : down_[static_cast<std::size_t>(rank)]) {
    if (iv.end <= t) ++n;
  }
  return n;
}

int FaultInjector::incarnation_count(int rank) const noexcept {
  if (rank < 0 || rank >= static_cast<int>(down_.size())) return 1;
  return static_cast<int>(down_[static_cast<std::size_t>(rank)].size()) + 1;
}

sim::Time FaultInjector::up_start(int rank, int k) const noexcept {
  if (k <= 0) return 0.0;
  if (rank < 0 || rank >= static_cast<int>(down_.size())) return sim::kTimeInfinity;
  const auto& intervals = down_[static_cast<std::size_t>(rank)];
  if (k > static_cast<int>(intervals.size())) return sim::kTimeInfinity;
  return intervals[static_cast<std::size_t>(k - 1)].end;
}

sim::Time FaultInjector::up_end(int rank, int k) const noexcept {
  if (rank < 0 || rank >= static_cast<int>(down_.size())) return sim::kTimeInfinity;
  const auto& intervals = down_[static_cast<std::size_t>(rank)];
  if (k < 0 || k >= static_cast<int>(intervals.size())) return sim::kTimeInfinity;
  return intervals[static_cast<std::size_t>(k)].begin;
}

std::uint64_t FaultInjector::membership_epoch(sim::Time t) const noexcept {
  const auto it = std::upper_bound(transitions_.begin(), transitions_.end(), t);
  return static_cast<std::uint64_t>(it - transitions_.begin());
}

FaultInjector::ShardMetrics FaultInjector::resolve_metrics(trace::MetricsRegistry* registry) {
  ShardMetrics out;
  if (!registry) return out;
  out.drops = &registry->counter("fault.net.drops");
  out.duplicates = &registry->counter("fault.net.duplicates");
  out.delayed = &registry->counter("fault.net.delayed");
  out.pauses = &registry->counter("fault.pause.holds");
  out.crash_drops = &registry->counter("fault.crash.drops");
  out.extra_delay = &registry->histogram("fault.net.extra_delay");
  return out;
}

void FaultInjector::bind_shards(const std::vector<trace::MetricsRegistry*>& registries) {
  shard_metrics_.clear();
  for (trace::MetricsRegistry* registry : registries) {
    shard_metrics_.push_back(resolve_metrics(registry));
  }
  if (shard_metrics_.empty()) shard_metrics_.push_back(resolve_metrics(nullptr));
}

FaultInjector::ShardMetrics& FaultInjector::my_metrics() const {
  assert(static_cast<std::size_t>(sim::current_shard()) < shard_metrics_.size());
  return shard_metrics_[static_cast<std::size_t>(sim::current_shard())];
}

sim::Rng& FaultInjector::channel_rng(int src, int dst) {
  auto& per_src = channel_rngs_[static_cast<std::size_t>(src)];
  auto it = per_src.find(dst);
  if (it == per_src.end()) {
    std::uint64_t state = channel_seed_ ^
                          (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(src) + 1)) ^
                          (0xd1b54a32d192ed03ULL * (static_cast<std::uint64_t>(dst) + 1));
    const std::uint64_t derived = sim::splitmix64(state);
    it = per_src.emplace(dst, sim::Rng(derived)).first;
  }
  return it->second;
}

sim::Time FaultInjector::link_down_time(int a, int b) const noexcept {
  if (a > b) {
    const int tmp = a;
    a = b;
    b = tmp;
  }
  sim::Time out = sim::kTimeInfinity;
  for (const LinkCut& cut : link_cuts_) {
    if (cut.a == a && cut.b == b && cut.at < out) out = cut.at;
  }
  return out;
}

void FaultInjector::count_crash_drop() {
  crash_drops_.fetch_add(1, std::memory_order_relaxed);
  if (trace::Counter* m = my_metrics().crash_drops) m->inc();
}

NetFaultDecision FaultInjector::on_message(int src, int dst, int level, sim::Time now) {
  NetFaultDecision d;
  sim::Rng& rng = channel_rng(src, dst);
  for (const StragglerRule& r : straggler_rules_) {
    if (src == r.rank || dst == r.rank) d.delay_factor *= r.factor;
  }
  for (const BurstRule& r : burst_rules_) {
    if (!matches(r.level, level)) continue;
    const double in_period = std::fmod(now - r.phase, r.period);
    if (now >= r.phase && in_period >= 0.0 && in_period < r.duration) {
      d.extra_delay += rng.lognormal(r.mu, r.sigma);
    }
  }
  for (const ReorderRule& r : reorder_rules_) {
    if (matches(r.level, level) && rng.bernoulli(r.p)) {
      d.extra_delay += rng.exponential(r.delay);
    }
  }
  for (const ProbRule& r : drops_rules_) {
    if (matches(r.level, level) && rng.bernoulli(r.p)) d.drop = true;
  }
  for (const ProbRule& r : dup_rules_) {
    if (matches(r.level, level) && rng.bernoulli(r.p)) d.duplicate = true;
  }
  ShardMetrics& m = my_metrics();
  if (d.drop) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    if (m.drops) m.drops->inc();
  }
  if (d.duplicate) {
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    if (m.duplicates) m.duplicates->inc();
  }
  if (d.extra_delay > 0.0) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
    if (m.delayed) m.delayed->inc();
    if (m.extra_delay) m.extra_delay->observe(d.extra_delay);
  }
  return d;
}

sim::Time FaultInjector::release_time(int rank, sim::Time t) const {
  // Windows may abut or overlap; iterate until no window covers `t`.  The
  // list is tiny (one entry per --fault pause:...), so the scan is cheap.
  bool moved = true;
  sim::Time out = t;
  while (moved) {
    moved = false;
    for (const PauseRule& r : pauses_) {
      if (r.rank == rank && out >= r.begin && out < r.end) {
        out = r.end;
        moved = true;
      }
    }
  }
  if (out != t) {
    pause_holds_.fetch_add(1, std::memory_order_relaxed);
    if (trace::Counter* m = my_metrics().pauses) m->inc();
  }
  return out;
}

}  // namespace hcs::fault
