#include "fault/fault_injector.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace hcs::fault {

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed, int nranks)
    : rng_(seed ^ (plan.seed() * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL)) {
  for (const FaultSpec& s : plan.specs()) {
    if (s.rank >= nranks || s.peer >= nranks) {
      throw std::invalid_argument("fault spec targets rank " +
                                  std::to_string(s.rank >= nranks ? s.rank : s.peer) +
                                  " but the machine has only " + std::to_string(nranks) +
                                  " ranks: " + s.describe());
    }
    switch (s.kind) {
      case FaultKind::kDrop:
        if (s.p > 0.0) drops_rules_.push_back({s.level, s.p});
        break;
      case FaultKind::kDuplicate:
        if (s.p > 0.0) dup_rules_.push_back({s.level, s.p});
        break;
      case FaultKind::kReorder:
        if (s.p > 0.0) reorder_rules_.push_back({s.level, s.p, s.delay});
        break;
      case FaultKind::kBurst: {
        // Log-normal heavy tail with sigma = 1 and the mean pinned to the
        // spec's delay: mean = exp(mu + sigma^2/2)  =>  mu = ln(delay) - 1/2.
        BurstRule rule{s.level, s.period, s.duration, s.phase, std::log(s.delay) - 0.5, 1.0};
        burst_rules_.push_back(rule);
        break;
      }
      case FaultKind::kStraggler:
        if (s.factor > 1.0) straggler_rules_.push_back({s.rank, s.factor});
        break;
      case FaultKind::kClockStep:
        clock_faults_.push_back({FaultKind::kClockStep, s.rank, s.at, s.step});
        break;
      case FaultKind::kFreqJump:
        clock_faults_.push_back({FaultKind::kFreqJump, s.rank, s.at, s.ppm * 1e-6});
        break;
      case FaultKind::kPause:
        pauses_.push_back({s.rank, s.at, s.at + s.duration});
        break;
      case FaultKind::kCrash: {
        if (crash_times_.empty()) crash_times_.assign(static_cast<std::size_t>(nranks),
                                                      sim::kTimeInfinity);
        sim::Time& t = crash_times_[static_cast<std::size_t>(s.rank)];
        if (s.at < t) t = s.at;  // earliest crash wins if a rank is listed twice
        break;
      }
      case FaultKind::kCrashLink: {
        const int a = s.rank < s.peer ? s.rank : s.peer;
        const int b = s.rank < s.peer ? s.peer : s.rank;
        link_cuts_.push_back({a, b, s.at});
        break;
      }
    }
  }
  crash_active_ = !crash_times_.empty() || !link_cuts_.empty();
  net_active_ = !drops_rules_.empty() || !dup_rules_.empty() || !reorder_rules_.empty() ||
                !burst_rules_.empty() || !straggler_rules_.empty();
  if (trace::MetricsRegistry* m = trace::active_metrics()) {
    drop_metric_ = &m->counter("fault.net.drops");
    dup_metric_ = &m->counter("fault.net.duplicates");
    delayed_metric_ = &m->counter("fault.net.delayed");
    pause_metric_ = &m->counter("fault.pause.holds");
    crash_drop_metric_ = &m->counter("fault.crash.drops");
    extra_delay_metric_ = &m->histogram("fault.net.extra_delay");
  }
}

sim::Time FaultInjector::link_down_time(int a, int b) const noexcept {
  if (a > b) {
    const int tmp = a;
    a = b;
    b = tmp;
  }
  sim::Time out = sim::kTimeInfinity;
  for (const LinkCut& cut : link_cuts_) {
    if (cut.a == a && cut.b == b && cut.at < out) out = cut.at;
  }
  return out;
}

void FaultInjector::count_crash_drop() {
  ++crash_drops_;
  if (crash_drop_metric_) crash_drop_metric_->inc();
}

NetFaultDecision FaultInjector::on_message(int src, int dst, int level, sim::Time now) {
  NetFaultDecision d;
  for (const StragglerRule& r : straggler_rules_) {
    if (src == r.rank || dst == r.rank) d.delay_factor *= r.factor;
  }
  for (const BurstRule& r : burst_rules_) {
    if (!matches(r.level, level)) continue;
    const double in_period = std::fmod(now - r.phase, r.period);
    if (now >= r.phase && in_period >= 0.0 && in_period < r.duration) {
      d.extra_delay += rng_.lognormal(r.mu, r.sigma);
    }
  }
  for (const ReorderRule& r : reorder_rules_) {
    if (matches(r.level, level) && rng_.bernoulli(r.p)) {
      d.extra_delay += rng_.exponential(r.delay);
    }
  }
  for (const ProbRule& r : drops_rules_) {
    if (matches(r.level, level) && rng_.bernoulli(r.p)) d.drop = true;
  }
  for (const ProbRule& r : dup_rules_) {
    if (matches(r.level, level) && rng_.bernoulli(r.p)) d.duplicate = true;
  }
  if (d.drop) {
    ++drops_;
    if (drop_metric_) drop_metric_->inc();
  }
  if (d.duplicate) {
    ++duplicates_;
    if (dup_metric_) dup_metric_->inc();
  }
  if (d.extra_delay > 0.0) {
    ++delayed_;
    if (delayed_metric_) delayed_metric_->inc();
    if (extra_delay_metric_) extra_delay_metric_->observe(d.extra_delay);
  }
  return d;
}

sim::Time FaultInjector::release_time(int rank, sim::Time t) const {
  // Windows may abut or overlap; iterate until no window covers `t`.  The
  // list is tiny (one entry per --fault pause:...), so the scan is cheap.
  bool moved = true;
  sim::Time out = t;
  while (moved) {
    moved = false;
    for (const PauseRule& r : pauses_) {
      if (r.rank == rank && out >= r.begin && out < r.end) {
        out = r.end;
        moved = true;
      }
    }
  }
  if (out != t) {
    ++pause_holds_;
    if (pause_metric_) pause_metric_->inc();
  }
  return out;
}

}  // namespace hcs::fault
