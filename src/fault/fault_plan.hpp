// Deterministic fault-injection plans (docs/fault-injection.md).
//
// A FaultPlan is the parsed, immutable description of which faults to
// inject: it is built from repeatable `--fault <spec>` strings (plus an
// optional `--fault-seed`), validated eagerly, and carried by value into
// each World.  The plan itself holds no randomness — every World
// instantiates its own fault::FaultInjector whose RNG streams derive from
// (world seed, plan seed), so trials stay bit-identical for any --jobs
// value and an empty plan leaves the simulation untouched.
//
// Spec grammar (one fault per --fault flag):
//   kind:key=value[,key=value...]
// with duration/time values accepting the suffixes s, ms, us, ns.  Kinds:
//   drop       p=<0..1> [level=<net level>]        lose messages
//   duplicate  p=<0..1> [level=<net level>]        deliver twice
//   reorder    p=<0..1> delay=<dur> [level=...]    extra Exp(delay) latency
//   burst      period=<dur> duration=<dur> delay=<dur> [phase=<dur>] [level=...]
//              periodic congestion windows with heavy-tail (log-normal)
//              extra delay while the window is open
//   straggler  rank=<r> factor=<f>=1>              scale all delays to/from r
//   clockstep  rank=<r> at=<time> step=<dur>       NTP-style clock step
//   freqjump   rank=<r> at=<time> ppm=<f>          clock frequency change
//   pause      rank=<r> at=<time> duration=<dur>   rank stops making progress
//   crash      rank=<r> at=<time>                  crash-stop: rank dies at `at`
//   crashlink  rank=<a> peer=<b> at=<time>         link a<->b severed from `at`
//   leave      rank=<r> at=<time>                  graceful departure at `at`
//   join       rank=<r> at=<time>                  rank is absent until `at`
//   rejoin     rank=<r> at=<time>                  a crashed/left rank restarts
//                                                  at `at` with a fresh clock
// `level` is one of network (default: every link), intra_socket,
// intra_node, inter_node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hcs::fault {

enum class FaultKind {
  kDrop,
  kDuplicate,
  kReorder,
  kBurst,
  kStraggler,
  kClockStep,
  kFreqJump,
  kPause,
  kCrash,
  kCrashLink,
  kLeave,
  kJoin,
  kRejoin,
};

/// Which network link level a network fault applies to.  kAll matches every
/// message; the other values mirror simmpi::LinkLevel (and must stay in the
/// same order so the injector can compare against a LinkLevel cast to int).
enum class NetLevel { kAll = -1, kIntraSocket = 0, kIntraNode = 1, kInterNode = 2 };

const char* to_string(FaultKind kind);
const char* to_string(NetLevel level);

/// One parsed fault.  Only the fields meaningful for `kind` are set; the
/// parser validates presence and ranges, so consumers can trust the values.
struct FaultSpec {
  FaultKind kind = FaultKind::kDrop;
  NetLevel level = NetLevel::kAll;  // network faults only
  double p = 0.0;                   // drop / duplicate / reorder probability
  double delay = 0.0;               // reorder / burst mean extra delay (s)
  double period = 0.0;              // burst period (s)
  double duration = 0.0;            // burst window / pause length (s)
  double phase = 0.0;               // burst window start within each period (s)
  int rank = -1;                    // straggler / clockstep / freqjump / pause / churn
  int peer = -1;                    // crashlink: the other endpoint
  double factor = 1.0;              // straggler delay multiplier
  double at = 0.0;                  // clockstep / freqjump / pause / churn onset (s)
  double step = 0.0;                // clockstep delta (s, may be negative)
  double ppm = 0.0;                 // freqjump skew delta in parts-per-million

  /// Canonical spec string (parses back to an equal FaultSpec).
  std::string describe() const;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses one `kind:key=value,...` spec; throws std::invalid_argument
  /// with a message naming the offending spec on any grammar/range error.
  static FaultSpec parse_spec(const std::string& spec);

  /// Parses and appends one spec string.
  void add(const std::string& spec) { specs_.push_back(parse_spec(spec)); }
  void add(FaultSpec spec) { specs_.push_back(spec); }

  bool empty() const noexcept { return specs_.empty(); }
  const std::vector<FaultSpec>& specs() const noexcept { return specs_; }

  /// Extra seed mixed into every injector's RNG streams (--fault-seed).
  std::uint64_t seed() const noexcept { return seed_; }
  void set_seed(std::uint64_t seed) noexcept { seed_ = seed; }

  /// Human-readable one-line summary, e.g. for bench headers.
  std::string describe() const;

 private:
  std::vector<FaultSpec> specs_;
  std::uint64_t seed_ = 0;
};

}  // namespace hcs::fault
