// Per-World instantiation of a FaultPlan.
//
// The injector owns RNG streams derived from (world seed, plan seed) that
// are completely separate from the network / clock RNGs: consulting the
// injector never perturbs the fault-free random sequences, so a plan whose
// probabilities are all zero produces bit-identical results to no plan at
// all (tested in tests/fault/test_fault_injector.cpp).  Fault randomness is
// keyed per (src, dst) channel — like NetworkModel's delay streams — so the
// verdict for a message depends only on its channel's draw history, which
// follows the sender's timeline.  That makes fault decisions invariant under
// World sharding (docs/parallel-simulation.md); a channel is only consulted
// from its sender's shard, so the streams need no locking, and the firing
// counters are relaxed atomics.
//
// Network faults are evaluated per message via on_message(); pause windows
// translate timestamps via release_time(); clock faults are applied once by
// the World at construction.  Fault firings are counted into the active
// MetricsRegistry (handles resolved at construction, like NetworkModel;
// re-bound per shard via bind_shards when the World is sharded).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "trace/metrics.hpp"

namespace hcs::fault {

/// Verdict for one message hand-off.  `drop` loses the attempt, `duplicate`
/// delivers a second copy, `delay_factor` scales the sampled wire delay and
/// `extra_delay` is added on top (congestion burst / reorder latency).
struct NetFaultDecision {
  bool drop = false;
  bool duplicate = false;
  double extra_delay = 0.0;
  double delay_factor = 1.0;
};

/// One clock fault resolved against a concrete rank (applied by the World
/// to the rank's time source at construction).
struct ClockFault {
  FaultKind kind = FaultKind::kClockStep;  // kClockStep or kFreqJump
  int rank = -1;
  sim::Time at = 0.0;
  double delta = 0.0;  // step seconds, or skew delta (ppm * 1e-6)
};

class FaultInjector {
 public:
  /// `seed` individualizes this World's fault streams (derive it from the
  /// World's own seed so parallel trials stay reproducible); `nranks` is
  /// used to validate rank-targeted specs eagerly.
  FaultInjector(const FaultPlan& plan, std::uint64_t seed, int nranks);

  /// True when any network-level fault (drop/duplicate/reorder/burst/
  /// straggler) is configured — the transport enables sequence tracking,
  /// retransmission and burst retries only then.
  bool net_active() const noexcept { return net_active_; }

  /// True when any pause window is configured.
  bool pause_active() const noexcept { return !pauses_.empty(); }

  /// True when any crash, crashlink or churn fault is configured — the
  /// transport and collectives enable the failure-detection paths only
  /// then, so a crash-free plan stays bit-identical to no plan at all.
  bool crash_active() const noexcept { return crash_active_; }

  /// True when any leave/join/rejoin fault is configured: some rank's
  /// lifetime has more than the single crash-stop incarnation, so the
  /// World runs churn supervisors and stamps membership views.
  bool churn_active() const noexcept { return churn_active_; }

  /// True when `rank` is targeted by a leave/join/rejoin spec.
  bool has_churn(int rank) const noexcept {
    return rank >= 0 && rank < static_cast<int>(churn_ranks_.size()) &&
           churn_ranks_[static_cast<std::size_t>(rank)];
  }

  /// First down time for `rank` (crash, leave, or an initial join gap),
  /// or sim::kTimeInfinity if it never goes down.  For pure crash plans
  /// this is the crash-stop instant.
  sim::Time crash_time(int rank) const noexcept {
    return rank >= 0 && rank < static_cast<int>(crash_times_.size())
               ? crash_times_[static_cast<std::size_t>(rank)]
               : sim::kTimeInfinity;
  }

  /// True when `rank` is down (crashed, departed, or not yet joined) at `t`.
  bool is_down(int rank, sim::Time t) const noexcept;

  /// Begin of the down interval covering `t`, or of the next one after
  /// `t`; sim::kTimeInfinity when the rank never goes down again.  For a
  /// single-interval (pure crash) plan this equals crash_time(rank) at
  /// every instant, so crash-only call sites keep their exact deadlines.
  sim::Time next_down(int rank, sim::Time t) const noexcept;

  /// Incarnation of `rank` at `t`: the number of completed down intervals
  /// before or at `t`, so every restart bumps it by one.  Messages are
  /// delivered only within a single incarnation of both endpoints.
  int incarnation(int rank, sim::Time t) const noexcept;

  /// Number of up-periods in the plan for `rank` (1 when it never churns;
  /// a trailing unfinished crash still counts its never-starting slot).
  int incarnation_count(int rank) const noexcept;

  /// Start of incarnation `k` of `rank`: 0 for k = 0, else the end of down
  /// interval k-1 (sim::kTimeInfinity when that interval never ends).
  sim::Time up_start(int rank, int k) const noexcept;

  /// End of incarnation `k` (the begin of down interval k), or
  /// sim::kTimeInfinity when the incarnation runs forever.
  sim::Time up_end(int rank, int k) const noexcept;

  /// Membership epoch at `t`: the number of membership transitions (rank
  /// departures and arrivals) that fired at or before `t`.  Epoch 0 is the
  /// initial view; ranks that start down (join) belong to epoch 0's
  /// complement, not to a transition.
  std::uint64_t membership_epoch(sim::Time t) const noexcept;

  /// Time from which the a<->b link is severed (crashlink), or
  /// sim::kTimeInfinity if that link never goes down.  Symmetric.
  sim::Time link_down_time(int a, int b) const noexcept;

  /// True when a message sent from `src` to `dst` at `send_time` must be
  /// dropped by the crash model: the sender is down, or the link is
  /// already severed.  (Arrival-side checks use is_down(dst) directly.)
  bool crash_drops(int src, int dst, sim::Time send_time) const noexcept {
    return is_down(src, send_time) || send_time >= link_down_time(src, dst);
  }

  /// Counts one message lost to a crash/crashlink (metrics + counter).
  void count_crash_drop();

  /// Evaluates all network faults for one message hand-off.  `level` is the
  /// simmpi::LinkLevel cast to int (NetLevel uses the same encoding).
  NetFaultDecision on_message(int src, int dst, int level, sim::Time now);

  /// Earliest time at or after `t` at which `rank` is outside every pause
  /// window (identity when no pause covers `t`).
  sim::Time release_time(int rank, sim::Time t) const;

  /// Clock faults resolved per rank, for the World to apply.
  const std::vector<ClockFault>& clock_faults() const noexcept { return clock_faults_; }

  /// Re-resolves the metric handles against one registry per shard (null
  /// entries = metrics off); see NetworkModel::bind_shards.
  void bind_shards(const std::vector<trace::MetricsRegistry*>& registries);

  // Firing counters (also exported as fault.* metrics when a registry is
  // active); plain members so tests need no registry.
  std::uint64_t drops() const noexcept { return drops_.load(std::memory_order_relaxed); }
  std::uint64_t duplicates() const noexcept { return duplicates_.load(std::memory_order_relaxed); }
  std::uint64_t delayed() const noexcept { return delayed_.load(std::memory_order_relaxed); }
  std::uint64_t pause_holds() const noexcept { return pause_holds_.load(std::memory_order_relaxed); }
  std::uint64_t crash_drops_count() const noexcept {
    return crash_drops_.load(std::memory_order_relaxed);
  }

 private:
  struct ProbRule {
    NetLevel level;
    double p;
  };
  struct ReorderRule {
    NetLevel level;
    double p;
    double delay;
  };
  struct BurstRule {
    NetLevel level;
    double period;
    double duration;
    double phase;
    double mu;     // log-normal parameters chosen so the mean is spec.delay
    double sigma;
  };
  struct StragglerRule {
    int rank;
    double factor;
  };
  struct PauseRule {
    int rank;
    sim::Time begin;
    sim::Time end;
  };
  struct LinkCut {
    int a;  // a < b (endpoints normalised at construction)
    int b;
    sim::Time at;
  };
  /// One contiguous down period of a rank: [begin, end).  A crash or leave
  /// with no later rejoin has end = kTimeInfinity; a join contributes
  /// [0, at).  Sorted by begin, non-overlapping (built in the ctor).
  struct DownInterval {
    sim::Time begin;
    sim::Time end;
  };

  static bool matches(NetLevel rule_level, int level) {
    return rule_level == NetLevel::kAll || static_cast<int>(rule_level) == level;
  }

  /// The (src -> dst) channel's private fault stream, created on first use.
  sim::Rng& channel_rng(int src, int dst);

  std::uint64_t channel_seed_;
  std::vector<std::map<int, sim::Rng>> channel_rngs_;  // [src][dst]
  std::vector<ProbRule> drops_rules_;
  std::vector<ProbRule> dup_rules_;
  std::vector<ReorderRule> reorder_rules_;
  std::vector<BurstRule> burst_rules_;
  std::vector<StragglerRule> straggler_rules_;
  std::vector<PauseRule> pauses_;
  std::vector<ClockFault> clock_faults_;
  std::vector<sim::Time> crash_times_;  // indexed by rank; first down begin
  std::vector<std::vector<DownInterval>> down_;  // indexed by rank
  std::vector<bool> churn_ranks_;                // indexed by rank
  std::vector<sim::Time> transitions_;  // sorted fired membership changes
  std::vector<LinkCut> link_cuts_;
  bool net_active_ = false;
  bool crash_active_ = false;
  bool churn_active_ = false;

  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> delayed_{0};
  mutable std::atomic<std::uint64_t> pause_holds_{0};
  std::atomic<std::uint64_t> crash_drops_{0};

  // Per-shard metric handles, indexed by sim::current_shard(); slot 0 is
  // resolved at construction, bind_shards replaces the table.
  struct ShardMetrics {
    trace::Counter* drops = nullptr;
    trace::Counter* duplicates = nullptr;
    trace::Counter* delayed = nullptr;
    trace::Counter* pauses = nullptr;
    trace::Counter* crash_drops = nullptr;
    trace::HistogramMetric* extra_delay = nullptr;
  };
  static ShardMetrics resolve_metrics(trace::MetricsRegistry* registry);
  ShardMetrics& my_metrics() const;

  mutable std::vector<ShardMetrics> shard_metrics_;  // size >= 1
};

}  // namespace hcs::fault
