// Per-World instantiation of a FaultPlan.
//
// The injector owns RNG streams derived from (world seed, plan seed) that
// are completely separate from the network / clock RNGs: consulting the
// injector never perturbs the fault-free random sequences, so a plan whose
// probabilities are all zero produces bit-identical results to no plan at
// all (tested in tests/fault/test_fault_injector.cpp).  One injector per
// World; the simulation is single-threaded, so no locking.
//
// Network faults are evaluated per message via on_message(); pause windows
// translate timestamps via release_time(); clock faults are applied once by
// the World at construction.  Fault firings are counted into the active
// MetricsRegistry (handles resolved at construction, like NetworkModel).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "trace/metrics.hpp"

namespace hcs::fault {

/// Verdict for one message hand-off.  `drop` loses the attempt, `duplicate`
/// delivers a second copy, `delay_factor` scales the sampled wire delay and
/// `extra_delay` is added on top (congestion burst / reorder latency).
struct NetFaultDecision {
  bool drop = false;
  bool duplicate = false;
  double extra_delay = 0.0;
  double delay_factor = 1.0;
};

/// One clock fault resolved against a concrete rank (applied by the World
/// to the rank's time source at construction).
struct ClockFault {
  FaultKind kind = FaultKind::kClockStep;  // kClockStep or kFreqJump
  int rank = -1;
  sim::Time at = 0.0;
  double delta = 0.0;  // step seconds, or skew delta (ppm * 1e-6)
};

class FaultInjector {
 public:
  /// `seed` individualizes this World's fault streams (derive it from the
  /// World's own seed so parallel trials stay reproducible); `nranks` is
  /// used to validate rank-targeted specs eagerly.
  FaultInjector(const FaultPlan& plan, std::uint64_t seed, int nranks);

  /// True when any network-level fault (drop/duplicate/reorder/burst/
  /// straggler) is configured — the transport enables sequence tracking,
  /// retransmission and burst retries only then.
  bool net_active() const noexcept { return net_active_; }

  /// True when any pause window is configured.
  bool pause_active() const noexcept { return !pauses_.empty(); }

  /// True when any crash or crashlink fault is configured — the transport
  /// and collectives enable the failure-detection paths only then, so a
  /// crash-free plan stays bit-identical to no plan at all.
  bool crash_active() const noexcept { return crash_active_; }

  /// Crash-stop time for `rank`, or sim::kTimeInfinity if it never crashes.
  sim::Time crash_time(int rank) const noexcept {
    return rank >= 0 && rank < static_cast<int>(crash_times_.size())
               ? crash_times_[static_cast<std::size_t>(rank)]
               : sim::kTimeInfinity;
  }

  /// Time from which the a<->b link is severed (crashlink), or
  /// sim::kTimeInfinity if that link never goes down.  Symmetric.
  sim::Time link_down_time(int a, int b) const noexcept;

  /// True when a message sent from `src` to `dst` at `send_time` must be
  /// dropped by the crash model: the sender is already dead, or the link is
  /// already severed.  (Arrival-side checks use crash_time(dst) directly.)
  bool crash_drops(int src, int dst, sim::Time send_time) const noexcept {
    return send_time >= crash_time(src) || send_time >= link_down_time(src, dst);
  }

  /// Counts one message lost to a crash/crashlink (metrics + counter).
  void count_crash_drop();

  /// Evaluates all network faults for one message hand-off.  `level` is the
  /// simmpi::LinkLevel cast to int (NetLevel uses the same encoding).
  NetFaultDecision on_message(int src, int dst, int level, sim::Time now);

  /// Earliest time at or after `t` at which `rank` is outside every pause
  /// window (identity when no pause covers `t`).
  sim::Time release_time(int rank, sim::Time t) const;

  /// Clock faults resolved per rank, for the World to apply.
  const std::vector<ClockFault>& clock_faults() const noexcept { return clock_faults_; }

  // Firing counters (also exported as fault.* metrics when a registry is
  // active); plain members so tests need no registry.
  std::uint64_t drops() const noexcept { return drops_; }
  std::uint64_t duplicates() const noexcept { return duplicates_; }
  std::uint64_t delayed() const noexcept { return delayed_; }
  std::uint64_t pause_holds() const noexcept { return pause_holds_; }
  std::uint64_t crash_drops_count() const noexcept { return crash_drops_; }

 private:
  struct ProbRule {
    NetLevel level;
    double p;
  };
  struct ReorderRule {
    NetLevel level;
    double p;
    double delay;
  };
  struct BurstRule {
    NetLevel level;
    double period;
    double duration;
    double phase;
    double mu;     // log-normal parameters chosen so the mean is spec.delay
    double sigma;
  };
  struct StragglerRule {
    int rank;
    double factor;
  };
  struct PauseRule {
    int rank;
    sim::Time begin;
    sim::Time end;
  };
  struct LinkCut {
    int a;  // a < b (endpoints normalised at construction)
    int b;
    sim::Time at;
  };

  static bool matches(NetLevel rule_level, int level) {
    return rule_level == NetLevel::kAll || static_cast<int>(rule_level) == level;
  }

  sim::Rng rng_;
  std::vector<ProbRule> drops_rules_;
  std::vector<ProbRule> dup_rules_;
  std::vector<ReorderRule> reorder_rules_;
  std::vector<BurstRule> burst_rules_;
  std::vector<StragglerRule> straggler_rules_;
  std::vector<PauseRule> pauses_;
  std::vector<ClockFault> clock_faults_;
  std::vector<sim::Time> crash_times_;  // indexed by rank; kTimeInfinity = alive
  std::vector<LinkCut> link_cuts_;
  bool net_active_ = false;
  bool crash_active_ = false;

  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t delayed_ = 0;
  mutable std::uint64_t pause_holds_ = 0;
  std::uint64_t crash_drops_ = 0;

  trace::Counter* drop_metric_ = nullptr;
  trace::Counter* dup_metric_ = nullptr;
  trace::Counter* delayed_metric_ = nullptr;
  trace::Counter* pause_metric_ = nullptr;
  trace::Counter* crash_drop_metric_ = nullptr;
  trace::HistogramMetric* extra_delay_metric_ = nullptr;
};

}  // namespace hcs::fault
