#include "fault/fault_plan.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>

namespace hcs::fault {

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("bad fault spec '" + spec + "': " + why);
}

/// Parses a numeric value with an optional s/ms/us/ns duration suffix.
/// `allow_unit` is false for probabilities, factors and ppm values.
double parse_value(const std::string& spec, const std::string& key, const std::string& text,
                   bool allow_unit) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, "value of '" + key + "' is not a number");
  }
  const std::string unit = text.substr(pos);
  if (unit.empty()) return value;
  if (!allow_unit) bad_spec(spec, "'" + key + "' takes a plain number, got unit '" + unit + "'");
  if (unit == "s") return value;
  if (unit == "ms") return value * 1e-3;
  if (unit == "us") return value * 1e-6;
  if (unit == "ns") return value * 1e-9;
  bad_spec(spec, "unknown unit '" + unit + "' on '" + key + "' (use s, ms, us or ns)");
}

int parse_rank(const std::string& spec, const std::string& text) {
  std::size_t pos = 0;
  int rank = -1;
  try {
    rank = std::stoi(text, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, "rank is not an integer");
  }
  if (pos != text.size() || rank < 0) bad_spec(spec, "rank must be a non-negative integer");
  return rank;
}

NetLevel parse_level(const std::string& spec, const std::string& text) {
  if (text == "network" || text == "all") return NetLevel::kAll;
  if (text == "intra_socket") return NetLevel::kIntraSocket;
  if (text == "intra_node") return NetLevel::kIntraNode;
  if (text == "inter_node") return NetLevel::kInterNode;
  bad_spec(spec, "unknown level '" + text +
                     "' (use network, intra_socket, intra_node or inter_node)");
}

FaultKind parse_kind(const std::string& spec, const std::string& text) {
  if (text == "drop") return FaultKind::kDrop;
  if (text == "duplicate") return FaultKind::kDuplicate;
  if (text == "reorder") return FaultKind::kReorder;
  if (text == "burst") return FaultKind::kBurst;
  if (text == "straggler") return FaultKind::kStraggler;
  if (text == "clockstep") return FaultKind::kClockStep;
  if (text == "freqjump") return FaultKind::kFreqJump;
  if (text == "pause") return FaultKind::kPause;
  if (text == "crash") return FaultKind::kCrash;
  if (text == "crashlink") return FaultKind::kCrashLink;
  if (text == "leave") return FaultKind::kLeave;
  if (text == "join") return FaultKind::kJoin;
  if (text == "rejoin") return FaultKind::kRejoin;
  bad_spec(spec, "unknown fault kind '" + text +
                     "' (drop, duplicate, reorder, burst, straggler, clockstep, freqjump, pause, "
                     "crash, crashlink, leave, join, rejoin)");
}

/// Formats a double compactly and losslessly enough for describe().
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kBurst: return "burst";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kClockStep: return "clockstep";
    case FaultKind::kFreqJump: return "freqjump";
    case FaultKind::kPause: return "pause";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kCrashLink: return "crashlink";
    case FaultKind::kLeave: return "leave";
    case FaultKind::kJoin: return "join";
    case FaultKind::kRejoin: return "rejoin";
  }
  return "?";
}

const char* to_string(NetLevel level) {
  switch (level) {
    case NetLevel::kAll: return "network";
    case NetLevel::kIntraSocket: return "intra_socket";
    case NetLevel::kIntraNode: return "intra_node";
    case NetLevel::kInterNode: return "inter_node";
  }
  return "?";
}

std::string FaultSpec::describe() const {
  std::string out = to_string(kind);
  out += ':';
  const auto add = [&out](const std::string& key, const std::string& value) {
    if (out.back() != ':') out += ',';
    out += key + "=" + value;
  };
  switch (kind) {
    case FaultKind::kDrop:
    case FaultKind::kDuplicate:
      add("p", fmt(p));
      if (level != NetLevel::kAll) add("level", to_string(level));
      break;
    case FaultKind::kReorder:
      add("p", fmt(p));
      add("delay", fmt(delay) + "s");
      if (level != NetLevel::kAll) add("level", to_string(level));
      break;
    case FaultKind::kBurst:
      add("period", fmt(period) + "s");
      add("duration", fmt(duration) + "s");
      add("delay", fmt(delay) + "s");
      if (phase != 0.0) add("phase", fmt(phase) + "s");
      if (level != NetLevel::kAll) add("level", to_string(level));
      break;
    case FaultKind::kStraggler:
      add("rank", std::to_string(rank));
      add("factor", fmt(factor));
      break;
    case FaultKind::kClockStep:
      add("rank", std::to_string(rank));
      add("at", fmt(at) + "s");
      add("step", fmt(step) + "s");
      break;
    case FaultKind::kFreqJump:
      add("rank", std::to_string(rank));
      add("at", fmt(at) + "s");
      add("ppm", fmt(ppm));
      break;
    case FaultKind::kPause:
      add("rank", std::to_string(rank));
      add("at", fmt(at) + "s");
      add("duration", fmt(duration) + "s");
      break;
    case FaultKind::kCrash:
    case FaultKind::kLeave:
    case FaultKind::kJoin:
    case FaultKind::kRejoin:
      add("rank", std::to_string(rank));
      add("at", fmt(at) + "s");
      break;
    case FaultKind::kCrashLink:
      add("rank", std::to_string(rank));
      add("peer", std::to_string(peer));
      add("at", fmt(at) + "s");
      break;
  }
  return out;
}

FaultSpec FaultPlan::parse_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    bad_spec(spec, "expected kind:key=value[,key=value...]");
  }
  FaultSpec out;
  out.kind = parse_kind(spec, spec.substr(0, colon));

  std::map<std::string, std::string> kv;
  std::size_t begin = colon + 1;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    const auto eq = item.find('=');
    if (item.empty() || eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      bad_spec(spec, "expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    if (!kv.emplace(key, item.substr(eq + 1)).second) {
      bad_spec(spec, "duplicate key '" + key + "'");
    }
    begin = end + 1;
  }

  std::set<std::string> allowed;
  const auto want = [&](const char* key) -> bool {
    allowed.insert(key);
    return kv.count(key) > 0;
  };
  const auto require = [&](const char* key) -> std::string {
    allowed.insert(key);
    const auto it = kv.find(key);
    if (it == kv.end()) bad_spec(spec, std::string("missing required key '") + key + "'");
    return it->second;
  };

  switch (out.kind) {
    case FaultKind::kDrop:
    case FaultKind::kDuplicate:
      out.p = parse_value(spec, "p", require("p"), false);
      if (want("level")) out.level = parse_level(spec, kv["level"]);
      if (out.p < 0.0 || out.p > 1.0) bad_spec(spec, "p must be in [0, 1]");
      break;
    case FaultKind::kReorder:
      out.p = parse_value(spec, "p", require("p"), false);
      out.delay = parse_value(spec, "delay", require("delay"), true);
      if (want("level")) out.level = parse_level(spec, kv["level"]);
      if (out.p < 0.0 || out.p > 1.0) bad_spec(spec, "p must be in [0, 1]");
      if (out.delay <= 0.0) bad_spec(spec, "delay must be > 0");
      break;
    case FaultKind::kBurst:
      out.period = parse_value(spec, "period", require("period"), true);
      out.duration = parse_value(spec, "duration", require("duration"), true);
      out.delay = parse_value(spec, "delay", require("delay"), true);
      if (want("phase")) out.phase = parse_value(spec, "phase", kv["phase"], true);
      if (want("level")) out.level = parse_level(spec, kv["level"]);
      if (out.period <= 0.0) bad_spec(spec, "period must be > 0");
      if (out.duration <= 0.0 || out.duration > out.period) {
        bad_spec(spec, "duration must be in (0, period]");
      }
      if (out.delay <= 0.0) bad_spec(spec, "delay must be > 0");
      if (out.phase < 0.0) bad_spec(spec, "phase must be >= 0");
      break;
    case FaultKind::kStraggler:
      out.rank = parse_rank(spec, require("rank"));
      out.factor = parse_value(spec, "factor", require("factor"), false);
      if (out.factor < 1.0) bad_spec(spec, "factor must be >= 1");
      break;
    case FaultKind::kClockStep:
      out.rank = parse_rank(spec, require("rank"));
      out.at = parse_value(spec, "at", require("at"), true);
      out.step = parse_value(spec, "step", require("step"), true);
      if (out.at < 0.0) bad_spec(spec, "at must be >= 0");
      if (out.step == 0.0) bad_spec(spec, "step must be non-zero");
      break;
    case FaultKind::kFreqJump:
      out.rank = parse_rank(spec, require("rank"));
      out.at = parse_value(spec, "at", require("at"), true);
      out.ppm = parse_value(spec, "ppm", require("ppm"), false);
      if (out.at < 0.0) bad_spec(spec, "at must be >= 0");
      if (out.ppm == 0.0) bad_spec(spec, "ppm must be non-zero");
      break;
    case FaultKind::kPause:
      out.rank = parse_rank(spec, require("rank"));
      out.at = parse_value(spec, "at", require("at"), true);
      out.duration = parse_value(spec, "duration", require("duration"), true);
      if (out.at < 0.0) bad_spec(spec, "at must be >= 0");
      if (out.duration <= 0.0) bad_spec(spec, "duration must be > 0");
      break;
    case FaultKind::kCrash:
    case FaultKind::kLeave:
    case FaultKind::kJoin:
    case FaultKind::kRejoin:
      out.rank = parse_rank(spec, require("rank"));
      out.at = parse_value(spec, "at", require("at"), true);
      if (out.at < 0.0) bad_spec(spec, "at must be >= 0");
      break;
    case FaultKind::kCrashLink:
      out.rank = parse_rank(spec, require("rank"));
      out.peer = parse_rank(spec, require("peer"));
      out.at = parse_value(spec, "at", require("at"), true);
      if (out.peer == out.rank) bad_spec(spec, "peer must differ from rank");
      if (out.at < 0.0) bad_spec(spec, "at must be >= 0");
      break;
  }
  for (const auto& [key, value] : kv) {
    (void)value;
    if (!allowed.count(key)) {
      bad_spec(spec, "unknown key '" + key + "' for kind '" + to_string(out.kind) + "'");
    }
  }
  return out;
}

std::string FaultPlan::describe() const {
  if (specs_.empty()) return "(none)";
  std::string out;
  for (const FaultSpec& s : specs_) {
    if (!out.empty()) out += ' ';
    out += s.describe();
  }
  return out;
}

}  // namespace hcs::fault
