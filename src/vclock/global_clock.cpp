#include "vclock/global_clock.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace hcs::vclock {

GlobalClockLM::GlobalClockLM(ClockPtr base, LinearModel lm) : base_(std::move(base)), lm_(lm) {
  if (!base_) throw std::invalid_argument("GlobalClockLM: null base clock");
}

ClockPtr GlobalClockLM::identity(ClockPtr base) {
  return std::make_shared<GlobalClockLM>(std::move(base), LinearModel{});
}

double GlobalClockLM::now() { return lm_.apply(base_->now()); }

std::vector<double> flatten_clock(const ClockPtr& clock) {
  std::vector<LinearModel> chain;
  const Clock* cur = clock.get();
  while (const auto* lm = dynamic_cast<const GlobalClockLM*>(cur)) {
    chain.push_back(lm->model());
    cur = lm->base().get();
  }
  std::vector<double> buffer;
  buffer.reserve(1 + 2 * chain.size());
  buffer.push_back(static_cast<double>(chain.size()));
  for (const LinearModel& lm : chain) {
    buffer.push_back(lm.slope);
    buffer.push_back(lm.intercept);
  }
  return buffer;
}

ClockPtr unflatten_clock(ClockPtr base, const std::vector<double>& buffer) {
  if (buffer.empty()) throw std::invalid_argument("unflatten_clock: empty buffer");
  const auto depth = static_cast<std::size_t>(std::llround(buffer[0]));
  if (buffer.size() != 1 + 2 * depth) {
    throw std::invalid_argument("unflatten_clock: malformed buffer");
  }
  // The buffer lists models outermost-first; rebuild innermost-first.
  ClockPtr clock = std::move(base);
  for (std::size_t level = depth; level-- > 0;) {
    const LinearModel lm{buffer[1 + 2 * level], buffer[2 + 2 * level]};
    clock = std::make_shared<GlobalClockLM>(std::move(clock), lm);
  }
  return clock;
}

LinearModel collapse_models(const ClockPtr& clock) {
  LinearModel acc{};  // identity
  const Clock* cur = clock.get();
  while (const auto* lm = dynamic_cast<const GlobalClockLM*>(cur)) {
    acc = merge(acc, lm->model());
    cur = lm->base().get();
  }
  return acc;
}

}  // namespace hcs::vclock
