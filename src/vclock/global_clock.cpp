#include "vclock/global_clock.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "vclock/model_bank.hpp"

namespace hcs::vclock {

namespace {

// One step down a decorator chain, whichever representation the level uses:
// heap GlobalClockLM or SoA BankedClockLM (model_bank.hpp).  Returns the
// base clock and writes the level's model, or nullptr at the innermost
// non-model clock.
const Clock* chain_step(const Clock* cur, LinearModel* out) {
  if (const auto* lm = dynamic_cast<const GlobalClockLM*>(cur)) {
    *out = lm->model();
    return lm->base().get();
  }
  if (const auto* banked = dynamic_cast<const BankedClockLM*>(cur)) {
    *out = banked->model();
    return banked->base().get();
  }
  return nullptr;
}

}  // namespace

GlobalClockLM::GlobalClockLM(ClockPtr base, LinearModel lm) : base_(std::move(base)), lm_(lm) {
  if (!base_) throw std::invalid_argument("GlobalClockLM: null base clock");
}

ClockPtr GlobalClockLM::identity(ClockPtr base) {
  return std::make_shared<GlobalClockLM>(std::move(base), LinearModel{});
}

double GlobalClockLM::now() { return lm_.apply(base_->now()); }

std::vector<double> flatten_clock(const ClockPtr& clock) {
  std::vector<LinearModel> chain;
  LinearModel lm;
  for (const Clock* cur = clock.get(); (cur = chain_step(cur, &lm)) != nullptr;) {
    chain.push_back(lm);
  }
  std::vector<double> buffer;
  buffer.reserve(1 + 2 * chain.size());
  buffer.push_back(static_cast<double>(chain.size()));
  for (const LinearModel& lm : chain) {
    buffer.push_back(lm.slope);
    buffer.push_back(lm.intercept);
  }
  return buffer;
}

ClockPtr unflatten_clock(ClockPtr base, const std::vector<double>& buffer,
                         const ModelBankPtr& bank) {
  if (buffer.empty()) throw std::invalid_argument("unflatten_clock: empty buffer");
  const auto depth = static_cast<std::size_t>(std::llround(buffer[0]));
  if (buffer.size() != 1 + 2 * depth) {
    throw std::invalid_argument("unflatten_clock: malformed buffer");
  }
  // The buffer lists models outermost-first; rebuild innermost-first.
  ClockPtr clock = std::move(base);
  for (std::size_t level = depth; level-- > 0;) {
    const LinearModel lm{buffer[1 + 2 * level], buffer[2 + 2 * level]};
    clock = make_synced_clock(std::move(clock), lm, bank);
  }
  return clock;
}

LinearModel collapse_models(const ClockPtr& clock) {
  LinearModel acc{};  // identity
  LinearModel lm;
  for (const Clock* cur = clock.get(); (cur = chain_step(cur, &lm)) != nullptr;) {
    acc = merge(acc, lm);
  }
  return acc;
}

ClockPtr make_synced_clock(ClockPtr base, LinearModel lm, const ModelBankPtr& bank) {
  if (bank == nullptr) return std::make_shared<GlobalClockLM>(std::move(base), lm);
  const std::size_t row = bank->add(lm);
  return std::make_shared<BankedClockLM>(std::move(base), bank, row);
}

}  // namespace hcs::vclock
