// SoA storage for per-rank synchronized-clock models.
//
// Every sync algorithm ends with one LinearModel per rank stacked on the
// rank's base clock.  Storing those models as individual GlobalClockLM heap
// objects scatters 100k+ tiny allocations across the heap; a LinearModelBank
// instead keeps all models of a shard in two contiguous double arrays
// (structure-of-arrays), and BankedClockLM is the per-rank Clock view into
// one row.  Arithmetic is bit-identical to GlobalClockLM — same
// LinearModel::apply on the same doubles — so simulation output does not
// depend on which representation an algorithm used, and flatten_clock /
// collapse_models (global_clock.cpp) walk both transparently.
//
// Banks are shard-confined: World owns one bank per PDES shard, and all
// ranks of a shard run on one thread per window, so appends never race.
// Row order is append order, which is deterministic per shard; nothing
// observable depends on row indices.  Views keep the bank alive via
// shared_ptr, so a SyncResult's clock stays valid after its World dies.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "vclock/clock.hpp"
#include "vclock/linear_model.hpp"

namespace hcs::vclock {

class LinearModelBank {
 public:
  /// Appends a model; returns its row index.
  std::size_t add(LinearModel lm) {
    slopes_.push_back(lm.slope);
    intercepts_.push_back(lm.intercept);
    return slopes_.size() - 1;
  }

  LinearModel get(std::size_t row) const {
    return LinearModel{slopes_[row], intercepts_[row]};
  }

  double slope(std::size_t row) const noexcept { return slopes_[row]; }
  double intercept(std::size_t row) const noexcept { return intercepts_[row]; }

  /// HCA's final offset-adjustment round edits the model in place.
  void adjust_intercept(std::size_t row, double delta) {
    intercepts_[row] += delta;
  }

  std::size_t size() const noexcept { return slopes_.size(); }
  void reserve(std::size_t rows) {
    slopes_.reserve(rows);
    intercepts_.reserve(rows);
  }

 private:
  std::vector<double> slopes_;
  std::vector<double> intercepts_;
};

using ModelBankPtr = std::shared_ptr<LinearModelBank>;

/// A synchronized clock whose model lives in a LinearModelBank row.  The
/// functional twin of GlobalClockLM (same decorator semantics, same
/// flatten/unflatten/collapse treatment), different storage.
class BankedClockLM final : public Clock {
 public:
  BankedClockLM(ClockPtr base, ModelBankPtr bank, std::size_t row)
      : base_(std::move(base)), bank_(std::move(bank)), row_(row) {
    if (!base_) throw std::invalid_argument("BankedClockLM: null base clock");
    if (!bank_) throw std::invalid_argument("BankedClockLM: null bank");
  }

  double at(sim::Time true_time) override {
    return model().apply(base_->at(true_time));
  }
  double at_exact(sim::Time true_time) const override {
    return model().apply(base_->at_exact(true_time));
  }
  double now() override { return model().apply(base_->now()); }

  LinearModel model() const { return bank_->get(row_); }
  const ClockPtr& base() const { return base_; }

  /// Adds `delta` to the intercept (HCA's final offset-adjustment round).
  void adjust_intercept(double delta) { bank_->adjust_intercept(row_, delta); }

 private:
  ClockPtr base_;
  ModelBankPtr bank_;
  std::size_t row_;
};

/// Stacks `lm` on `base` in `bank` (SoA path), or as a plain GlobalClockLM
/// when no bank is available (bank == nullptr) — declared here, defined in
/// global_clock.cpp next to the chain walkers that must understand both.
ClockPtr make_synced_clock(ClockPtr base, LinearModel lm, const ModelBankPtr& bank);

}  // namespace hcs::vclock
