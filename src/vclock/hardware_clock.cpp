#include "vclock/hardware_clock.hpp"

#include <cmath>
#include <stdexcept>

namespace hcs::vclock {

HardwareClock::HardwareClock(sim::Simulation& sim, const topology::ClockDriftParams& params,
                             std::uint64_t seed)
    : sim_(&sim), params_(params), path_rng_(seed), noise_rng_(seed ^ 0x5bf0'3635'dea8'39a9ULL) {
  if (params_.skew_segment_s <= 0) {
    throw std::invalid_argument("HardwareClock: skew_segment_s must be > 0");
  }
  initial_offset_ = path_rng_.uniform(-params_.initial_offset_abs, params_.initial_offset_abs);
  segment_skews_.push_back(path_rng_.uniform(-params_.base_skew_abs, params_.base_skew_abs));
  boundary_locals_.push_back(initial_offset_);
}

void HardwareClock::extend_path(std::size_t segment) const {
  while (segment_skews_.size() <= segment) {
    const double prev = segment_skews_.back();
    segment_skews_.push_back(prev + path_rng_.normal(0.0, params_.skew_walk_sd));
    boundary_locals_.push_back(boundary_locals_.back() + (1.0 + prev) * params_.skew_segment_s);
  }
}

double HardwareClock::skew_at(sim::Time true_time) const {
  if (true_time < 0) throw std::invalid_argument("HardwareClock: negative time");
  const auto seg = static_cast<std::size_t>(true_time / params_.skew_segment_s);
  extend_path(seg);
  double skew = segment_skews_[seg];
  for (const auto& [when, delta_skew] : freq_jumps_) {
    if (true_time > when) skew += delta_skew;
  }
  return skew;
}

double HardwareClock::at_exact(sim::Time true_time) const {
  if (true_time < 0) throw std::invalid_argument("HardwareClock: negative time");
  const auto seg = static_cast<std::size_t>(true_time / params_.skew_segment_s);
  extend_path(seg);
  const double seg_start = static_cast<double>(seg) * params_.skew_segment_s;
  double value = boundary_locals_[seg] + (1.0 + segment_skews_[seg]) * (true_time - seg_start);
  for (const auto& [when, delta] : steps_) {
    if (true_time >= when) value += delta;
  }
  for (const auto& [when, delta_skew] : freq_jumps_) {
    if (true_time > when) value += delta_skew * (true_time - when);
  }
  return value;
}

void HardwareClock::inject_step(sim::Time when, double delta) {
  if (when < 0) throw std::invalid_argument("HardwareClock: negative step time");
  steps_.emplace_back(when, delta);
}

void HardwareClock::inject_frequency_jump(sim::Time when, double delta_skew) {
  if (when < 0) throw std::invalid_argument("HardwareClock: negative frequency-jump time");
  freq_jumps_.emplace_back(when, delta_skew);
}

double HardwareClock::at(sim::Time true_time) {
  double value = at_exact(true_time);
  if (params_.read_noise_sd > 0) value += noise_rng_.normal(0.0, params_.read_noise_sd);
  if (params_.read_resolution > 0) {
    value = std::floor(value / params_.read_resolution) * params_.read_resolution;
  }
  return value;
}

}  // namespace hcs::vclock
