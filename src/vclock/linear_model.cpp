#include "vclock/linear_model.hpp"

#include <sstream>

namespace hcs::vclock {

LinearModel merge(const LinearModel& outer, const LinearModel& inner) {
  // outer.apply(inner.apply(t)) = (1+so)((1+si) t + ii) + io
  //                             = (1+so)(1+si) t + (1+so) ii + io.
  // Expanded form so + si + so*si avoids the catastrophic cancellation of
  // (1+so)(1+si) - 1 at ppm-scale slopes.
  LinearModel m;
  m.slope = outer.slope + inner.slope + outer.slope * inner.slope;
  m.intercept = (1.0 + outer.slope) * inner.intercept + outer.intercept;
  return m;
}

std::string to_string(const LinearModel& lm) {
  std::ostringstream os;
  os.precision(12);
  os << "lm(slope=" << lm.slope << ", intercept=" << lm.intercept << ")";
  return os.str();
}

}  // namespace hcs::vclock
