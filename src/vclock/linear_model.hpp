// Linear clock-drift model (slope + intercept) and its algebra.
//
// The model follows the paper's convention: for a local timestamp t, the
// offset to the reference clock is estimated as slope * t + intercept, so the
// reference ("global") time is  g(t) = t + slope * t + intercept.
// Composition (HCA2's MERGE of cm(0,2) and cm(2,3), Fig. 1a) is again linear.
#pragma once

#include <string>

namespace hcs::vclock {

struct LinearModel {
  double slope = 0.0;
  double intercept = 0.0;

  /// g(t) = t + slope * t + intercept.
  double apply(double t) const { return t + slope * t + intercept; }

  /// Inverse mapping: the t for which apply(t) == g.
  double invert(double g) const { return (g - intercept) / (1.0 + slope); }

  bool is_identity() const { return slope == 0.0 && intercept == 0.0; }
};

/// MERGE(outer, inner): model mapping inner's domain directly to outer's
/// reference, i.e. merged.apply(t) == outer.apply(inner.apply(t)).
LinearModel merge(const LinearModel& outer, const LinearModel& inner);

std::string to_string(const LinearModel& lm);

}  // namespace hcs::vclock
