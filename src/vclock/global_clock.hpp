// Logical, global clock: a linear model stacked on a base clock.
//
// GlobalClockLM is the decorator the paper describes in §IV-B: a synchronized
// clock wraps either the hardware clock (flat algorithms) or another
// GlobalClockLM (hierarchical synchronization), producing nested models like
// cm(cm(0,2),4).  flatten()/unflatten() serialize the decorator chain into a
// buffer of doubles for ClockPropSync's broadcast (paper Alg. 3).
#pragma once

#include <vector>

#include "vclock/clock.hpp"
#include "vclock/linear_model.hpp"
#include "vclock/model_bank.hpp"

namespace hcs::vclock {

class GlobalClockLM final : public Clock {
 public:
  GlobalClockLM(ClockPtr base, LinearModel lm);

  /// The paper's GLOBALCLOCKLM(clk, 0, 0) "dummy clock": identity model.
  static ClockPtr identity(ClockPtr base);

  double at(sim::Time true_time) override { return lm_.apply(base_->at(true_time)); }
  double at_exact(sim::Time true_time) const override {
    return lm_.apply(base_->at_exact(true_time));
  }
  double now() override;

  const LinearModel& model() const { return lm_; }
  const ClockPtr& base() const { return base_; }

  /// Adds `delta` to the intercept (HCA's final offset-adjustment round).
  void adjust_intercept(double delta) { lm_.intercept += delta; }

 private:
  ClockPtr base_;
  LinearModel lm_;
};

/// Serializes the model chain (GlobalClockLM and/or BankedClockLM levels)
/// above the innermost non-model clock, outermost model first:
/// [depth, s_1, i_1, ..., s_d, i_d].
std::vector<double> flatten_clock(const ClockPtr& clock);

/// Rebuilds the chain described by `buffer` on top of `base`.  The caller
/// must guarantee `base` ticks identically to the clock that was flattened
/// (same time source) — exactly ClockPropSync's applicability condition.
/// With a bank, the rebuilt levels store their models in it (SoA layout);
/// without one they are plain GlobalClockLM decorators.
ClockPtr unflatten_clock(ClockPtr base, const std::vector<double>& buffer,
                         const ModelBankPtr& bank = nullptr);

/// Collapses a decorator chain into one equivalent LinearModel (for tests
/// and for reporting).
LinearModel collapse_models(const ClockPtr& clock);

}  // namespace hcs::vclock
