// Clock abstraction.
//
// A Clock maps simulated true time to the time an observer reads.  The two
// entry points mirror how the paper's algorithms use clocks:
//   * now()            — "read my clock here and now" (includes read noise),
//   * at(true_time)    — read at a specific true instant (used by the
//                        ping-pong burst fast path; also noisy),
//   * at_exact(t)      — the noiseless, deterministic mapping (used for
//                        inverting a clock when busy-waiting on a target
//                        logical time, and by tests).
// Clocks are shared: hardware clocks between ranks of one time source, and
// synchronized (logical) clocks decorate a base clock (paper §IV-B).
#pragma once

#include <memory>

#include "sim/time.hpp"

namespace hcs::vclock {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Noisy read at an arbitrary true time.
  virtual double at(sim::Time true_time) = 0;

  /// Noiseless deterministic mapping (strictly increasing in true_time).
  virtual double at_exact(sim::Time true_time) const = 0;

  /// Noisy read at the current simulation time.
  virtual double now() = 0;

  /// True time at which this clock (noiselessly) shows `clock_value`.
  /// Implemented by bisection over at_exact; `hint` brackets the search.
  sim::Time true_time_of(double clock_value, sim::Time hint_lo, sim::Time hint_hi) const;
};

using ClockPtr = std::shared_ptr<Clock>;

}  // namespace hcs::vclock
