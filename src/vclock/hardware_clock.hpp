// Simulated hardware time source.
//
// local(t) = initial_offset + integral over [0, t] of (1 + skew(u)) du,
// where skew(u) is piecewise constant and performs a random walk across
// segments of length skew_segment_s.  This reproduces the paper's Fig. 2:
// drift is very nearly linear within a ~10 s window (R^2 > 0.9) but visibly
// non-linear over 500 s.  Reads add Gaussian noise and are quantized to the
// timer resolution.
//
// One HardwareClock instance is shared by all ranks of one time source
// (node, socket or core, per topology::TimeSourceScope).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "topology/params.hpp"
#include "vclock/clock.hpp"

namespace hcs::vclock {

class HardwareClock final : public Clock {
 public:
  /// `seed` individualizes this time source's offset/skew path.
  HardwareClock(sim::Simulation& sim, const topology::ClockDriftParams& params,
                std::uint64_t seed);

  double at(sim::Time true_time) override;
  double at_exact(sim::Time true_time) const override;
  double now() override { return at(sim_->now()); }

  double initial_offset() const { return initial_offset_; }
  double base_skew() const { return segment_skews_.empty() ? 0.0 : segment_skews_[0]; }

  /// Skew in effect at `true_time` (extends the walk if needed).
  double skew_at(sim::Time true_time) const;

  /// Failure injection: an NTP-style step of `delta` seconds applied to all
  /// reads at true times >= `when` (negative deltas model backward steps).
  /// Synchronized clocks built on top of this source silently break — the
  /// scenario that forces periodic re-synchronization in practice.
  void inject_step(sim::Time when, double delta);

  /// Failure injection: a permanent skew change of `delta_skew` (seconds per
  /// second, e.g. 50e-6 for +50 ppm) from true time `when` on — an abrupt
  /// frequency jump such as a thermal event or power-state change.  Any
  /// linear model fitted before `when` degrades from then on.
  void inject_frequency_jump(sim::Time when, double delta_skew);

 private:
  void extend_path(std::size_t segment) const;

  sim::Simulation* sim_;
  topology::ClockDriftParams params_;
  double initial_offset_;
  // Lazily-extended random-walk path.  Mutable: extending the path and read
  // noise are observer effects that do not change the logical clock.
  mutable sim::Rng path_rng_;
  mutable sim::Rng noise_rng_;
  mutable std::vector<double> segment_skews_;      // skew during segment k
  mutable std::vector<double> boundary_locals_;    // local time at k * segment
  std::vector<std::pair<sim::Time, double>> steps_;  // injected NTP steps
  std::vector<std::pair<sim::Time, double>> freq_jumps_;  // injected skew changes
};

}  // namespace hcs::vclock
