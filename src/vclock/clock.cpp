#include "vclock/clock.hpp"

#include <stdexcept>

namespace hcs::vclock {

sim::Time Clock::true_time_of(double clock_value, sim::Time hint_lo, sim::Time hint_hi) const {
  // Clocks advance at 1 +- a few ppm, so at_exact is strictly increasing.
  // Grow the bracket if the hints do not enclose the target, then bisect.
  sim::Time lo = hint_lo;
  sim::Time hi = hint_hi;
  if (hi <= lo) hi = lo + 1e-6;
  double span = hi - lo;
  int guard = 0;
  while (at_exact(hi) < clock_value) {
    hi += span;
    span *= 2;
    if (++guard > 128) throw std::runtime_error("Clock::true_time_of: no upper bracket");
  }
  guard = 0;
  while (at_exact(lo) > clock_value && lo > 0) {
    lo = (lo > span) ? lo - span : 0.0;
    span *= 2;
    if (++guard > 128) throw std::runtime_error("Clock::true_time_of: no lower bracket");
  }
  for (int i = 0; i < 200 && hi - lo > 1e-12; ++i) {
    const sim::Time mid = 0.5 * (lo + hi);
    if (at_exact(mid) < clock_value) lo = mid;
    else hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace hcs::vclock
