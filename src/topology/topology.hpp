// Cluster topology: how MPI ranks map onto nodes, sockets and cores.
//
// Ranks are placed block-wise and pinned, mirroring the paper's experiments
// ("we created processes on all available cores and pinned processes to
// cores"): rank r lives on node r / ranks_per_node, socket (r mod
// ranks_per_node) / ranks_per_socket, core r mod ranks_per_socket.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hcs::topology {

/// Which hardware component owns the time source (paper §IV-B: on all three
/// machines cores of a node share one; clock_getcpuclockid-style per-core
/// sources are modelled for the Fig. 10 tracing study).
enum class TimeSourceScope { kPerNode, kPerSocket, kPerCore };

std::string to_string(TimeSourceScope scope);

struct RankLocation {
  int node;
  int socket;        // global socket id
  int socket_in_node;
  int core;          // global core id == rank under pinning
  int core_in_socket;
};

class ClusterTopology {
 public:
  ClusterTopology(int nodes, int sockets_per_node, int cores_per_socket,
                  TimeSourceScope scope = TimeSourceScope::kPerNode);

  int nodes() const noexcept { return nodes_; }
  int sockets_per_node() const noexcept { return sockets_per_node_; }
  int cores_per_socket() const noexcept { return cores_per_socket_; }
  int ranks_per_node() const noexcept { return sockets_per_node_ * cores_per_socket_; }
  int total_ranks() const noexcept { return nodes_ * ranks_per_node(); }
  TimeSourceScope time_source_scope() const noexcept { return scope_; }

  RankLocation locate(int rank) const;

  /// Identifier of the hardware time source rank `rank` reads.
  int time_source_id(int rank) const;

  /// Number of distinct hardware time sources in the machine.
  int num_time_sources() const noexcept;

  bool same_node(int a, int b) const { return locate(a).node == locate(b).node; }
  bool same_socket(int a, int b) const;

  std::string describe() const;

 private:
  int nodes_;
  int sockets_per_node_;
  int cores_per_socket_;
  TimeSourceScope scope_;
};

}  // namespace hcs::topology
