#include "topology/presets.hpp"

#include <sstream>

namespace hcs::topology {

MachineConfig MachineConfig::with_nodes(int nodes) const {
  MachineConfig copy = *this;
  copy.topo = ClusterTopology(nodes, topo.sockets_per_node(), topo.cores_per_socket(),
                              topo.time_source_scope());
  return copy;
}

MachineConfig MachineConfig::with_time_source(TimeSourceScope scope) const {
  MachineConfig copy = *this;
  copy.topo =
      ClusterTopology(topo.nodes(), topo.sockets_per_node(), topo.cores_per_socket(), scope);
  return copy;
}

std::string MachineConfig::describe() const {
  std::ostringstream os;
  os << name << " (" << hardware << ", " << mpi_label << "): " << topo.describe();
  return os.str();
}

MachineConfig jupiter() {
  MachineConfig m;
  m.name = "Jupiter";
  m.hardware = "36 x Dual Opteron 6134 @ 2.3 GHz, InfiniBand QDR";
  m.mpi_label = "Open MPI 3.1.0";
  m.topo = ClusterTopology(36, 2, 8, TimeSourceScope::kPerNode);
  // InfiniBand QDR: paper quotes 3-4 us ping-pong RTT => ~1.6 us one-way.
  m.net.inter_node = LinkParams{1.55e-6, 0.30e-9, 140e-9, 6e-4, 25e-6};
  m.net.intra_node = LinkParams{0.40e-6, 0.10e-9, 40e-9, 1e-4, 4e-6};
  m.net.intra_socket = LinkParams{0.18e-6, 0.06e-9, 18e-9, 5e-5, 2e-6};
  m.net.send_overhead = 0.30e-6;
  m.net.recv_overhead = 0.30e-6;
  m.net.nic_gap = 0.25e-6;
  m.net.nic_per_byte = 1.0e-9;
  m.clocks = ClockDriftParams{10e-3, 1.2e-6, 0.035e-6, 2.0, 15e-9, 1e-9};
  return m;
}

MachineConfig hydra() {
  MachineConfig m;
  m.name = "Hydra";
  m.hardware = "36 x Dual Intel Xeon Gold 6130 @ 2.1 GHz, Intel OmniPath";
  m.mpi_label = "Open MPI 3.1.0";
  m.topo = ClusterTopology(36, 2, 16, TimeSourceScope::kPerNode);
  // OmniPath: "the newer OmniPath network has a smaller latency".
  m.net.inter_node = LinkParams{1.05e-6, 0.12e-9, 90e-9, 4e-4, 15e-6};
  m.net.intra_node = LinkParams{0.30e-6, 0.06e-9, 25e-9, 1e-4, 3e-6};
  m.net.intra_socket = LinkParams{0.14e-6, 0.04e-9, 12e-9, 5e-5, 1.5e-6};
  m.net.send_overhead = 0.20e-6;
  m.net.recv_overhead = 0.20e-6;
  m.net.nic_gap = 0.15e-6;
  m.net.nic_per_byte = 0.5e-9;
  // Paper §III-C3: "the clock drift between processes changes rather quickly"
  // on Hydra, so the skew walk is a bit livelier than Jupiter's.
  m.clocks = ClockDriftParams{10e-3, 1.0e-6, 0.055e-6, 2.0, 10e-9, 1e-9};
  return m;
}

MachineConfig titan() {
  MachineConfig m;
  m.name = "Titan";
  m.hardware = "Cray XK7, Opteron 6274 @ 2.2 GHz, Cray Gemini";
  m.mpi_label = "cray-mpich/7.6.3";
  // XK7 nodes have a single 16-core Opteron socket; the paper runs 16 ranks
  // per node (1024 x 16 in Fig. 6, 64 x 16 in Fig. 9).
  m.topo = ClusterTopology(1024, 1, 16, TimeSourceScope::kPerNode);
  // Gemini 3D torus: slightly higher latency, fatter jitter tail (paper
  // Fig. 6 discusses occasional congestion-like outliers at 16k ranks).
  m.net.inter_node = LinkParams{1.80e-6, 0.20e-9, 220e-9, 3.0e-5, 25e-6};
  m.net.intra_node = LinkParams{0.35e-6, 0.08e-9, 30e-9, 1e-4, 4e-6};
  m.net.intra_socket = LinkParams{0.18e-6, 0.06e-9, 18e-9, 5e-5, 2e-6};
  m.net.send_overhead = 0.30e-6;
  m.net.recv_overhead = 0.30e-6;
  // Gemini router: multiple lanes per node, so per-message NIC serialization
  // is mild — 16 concurrent senders per node cost ~1 us, keeping a 1024-rank
  // allreduce in the paper's 25-50 us range (Fig. 9).
  m.net.nic_gap = 0.015e-6;
  m.net.nic_per_byte = 1.2e-9;  // host injection rate ~0.8 GB/s per rank burst
  m.clocks = ClockDriftParams{10e-3, 1.3e-6, 0.045e-6, 2.0, 15e-9, 1e-9};
  return m;
}

MachineConfig testbox(int nodes, int cores_per_node) {
  MachineConfig m;
  m.name = "Testbox";
  m.hardware = "synthetic test machine";
  m.mpi_label = "simmpi";
  m.topo = ClusterTopology(nodes, 1, cores_per_node, TimeSourceScope::kPerNode);
  m.net.inter_node = LinkParams{1.0e-6, 0.25e-9, 50e-9, 0.0, 0.0};
  m.net.intra_node = LinkParams{0.30e-6, 0.08e-9, 20e-9, 0.0, 0.0};
  m.net.intra_socket = LinkParams{0.15e-6, 0.05e-9, 10e-9, 0.0, 0.0};
  m.net.send_overhead = 0.20e-6;
  m.net.recv_overhead = 0.20e-6;
  m.net.nic_gap = 0.10e-6;
  m.clocks = ClockDriftParams{1e-3, 1.0e-6, 0.010e-6, 2.0, 10e-9, 1e-9};
  return m;
}

}  // namespace hcs::topology
