// Machine presets mirroring Table I of the paper.
//
// Absolute latency/drift values are calibrated to the magnitudes the paper
// reports (e.g. "the ping-pong latency on this network is 3 us to 4 us" for
// Jupiter's InfiniBand, i.e. ~1.6 us one-way), not measured from the original
// hardware; see DESIGN.md §1 for the substitution rationale.
#pragma once

#include <string>

#include "topology/params.hpp"
#include "topology/topology.hpp"

namespace hcs::topology {

struct MachineConfig {
  std::string name;
  std::string hardware;   // free-text description (Table I column 2)
  std::string mpi_label;  // library the paper used on this machine
  ClusterTopology topo{1, 1, 1};
  NetworkParams net;
  ClockDriftParams clocks;

  /// Same machine with a different node count (experiments often use a
  /// subset of nodes, e.g. "32 x 16 processes" on 36-node Jupiter).
  MachineConfig with_nodes(int nodes) const;
  /// Same machine with a different time-source scope (Fig. 10 timer study).
  MachineConfig with_time_source(TimeSourceScope scope) const;

  std::string describe() const;
};

/// Jupiter: 36 x Dual Opteron 6134 (2 sockets x 8 cores), InfiniBand QDR.
MachineConfig jupiter();

/// Hydra: 36 x Dual Xeon Gold 6130 (2 sockets x 16 cores), Intel OmniPath.
MachineConfig hydra();

/// Titan: Cray XK7, one Opteron 6274 socket with 16 cores, Cray Gemini.
MachineConfig titan();

/// Tiny machine for unit tests: `nodes` x 1 socket x `cores` cores with mild
/// noise; deterministic-friendly.
MachineConfig testbox(int nodes, int cores_per_node);

}  // namespace hcs::topology
