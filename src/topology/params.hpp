// Plain-data machine parameters: network link model and clock drift model.
//
// These structs describe the simulated hardware; they are interpreted by
// simmpi::NetworkModel and vclock::HardwareClock respectively.  Units are
// seconds throughout.
#pragma once

#include <cstdint>

namespace hcs::topology {

/// One class of links (intra-socket, intra-node or inter-node).
///
/// One-way message delay = base_latency + per_byte * bytes + Exp(jitter_mean)
/// [+ Exp(spike_mean) with probability spike_prob].  The exponential jitter
/// gives the positively-skewed delay distributions real networks show; spikes
/// model the rare outliers that motivate Round-Time's invalidation logic.
struct LinkParams {
  double base_latency = 1.0e-6;
  double per_byte = 0.25e-9;     // ~4 GB/s
  double jitter_mean = 100e-9;
  double spike_prob = 0.0;
  double spike_mean = 0.0;
};

/// LogGP-flavoured network model for a whole machine.
struct NetworkParams {
  LinkParams intra_socket{0.15e-6, 0.05e-9, 15e-9, 0.0, 0.0};
  LinkParams intra_node{0.35e-6, 0.08e-9, 30e-9, 0.0, 0.0};
  LinkParams inter_node{1.6e-6, 0.30e-9, 120e-9, 5e-4, 20e-6};

  /// CPU overhead charged to the sender / receiver per message.
  double send_overhead = 0.25e-6;
  double recv_overhead = 0.25e-6;

  /// Per-node NIC serialization gap for inter-node messages.  Messages
  /// leaving or entering a node within less than this gap queue behind each
  /// other; this is the contention mechanism that penalizes bursty
  /// dissemination-style collectives (DESIGN.md §4.5, paper Fig. 8).
  double nic_gap = 0.20e-6;

  /// Per-byte NIC serialization (host-side copies / injection rate).  With
  /// many ranks per node this is what makes collective latency grow with the
  /// payload (paper Fig. 9: ReproMPI's curve rises towards 1 KiB).
  double nic_per_byte = 0.0;
};

/// Behaviour of one hardware time source (paper §III-C2, Fig. 2).
///
/// The local clock starts at a random offset, advances at rate (1 + skew),
/// and the skew itself performs a random walk with steps every
/// skew_segment_s seconds — linear drift over ~10 s windows, visibly
/// non-linear over hundreds of seconds, as measured in the paper.
struct ClockDriftParams {
  double initial_offset_abs = 10e-3;   // |offset(0)| <= 10 ms, uniform
  double base_skew_abs = 1.5e-6;       // |skew| <= 1.5 ppm, uniform
  double skew_walk_sd = 0.010e-6;      // per-segment skew step, 0.01 ppm
  double skew_segment_s = 2.0;         // segment length of the random walk
  double read_noise_sd = 12e-9;        // per-read timestamp noise
  double read_resolution = 1e-9;       // timestamp granularity (clock_gettime)
};

}  // namespace hcs::topology
