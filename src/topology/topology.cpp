#include "topology/topology.hpp"

#include <sstream>

namespace hcs::topology {

std::string to_string(TimeSourceScope scope) {
  switch (scope) {
    case TimeSourceScope::kPerNode: return "per-node";
    case TimeSourceScope::kPerSocket: return "per-socket";
    case TimeSourceScope::kPerCore: return "per-core";
  }
  return "?";
}

ClusterTopology::ClusterTopology(int nodes, int sockets_per_node, int cores_per_socket,
                                 TimeSourceScope scope)
    : nodes_(nodes),
      sockets_per_node_(sockets_per_node),
      cores_per_socket_(cores_per_socket),
      scope_(scope) {
  if (nodes < 1 || sockets_per_node < 1 || cores_per_socket < 1) {
    throw std::invalid_argument("ClusterTopology: all dimensions must be >= 1");
  }
}

RankLocation ClusterTopology::locate(int rank) const {
  if (rank < 0 || rank >= total_ranks()) {
    throw std::out_of_range("ClusterTopology::locate: rank " + std::to_string(rank) +
                            " outside [0, " + std::to_string(total_ranks()) + ")");
  }
  RankLocation loc;
  const int rpn = ranks_per_node();
  loc.node = rank / rpn;
  const int in_node = rank % rpn;
  loc.socket_in_node = in_node / cores_per_socket_;
  loc.core_in_socket = in_node % cores_per_socket_;
  loc.socket = loc.node * sockets_per_node_ + loc.socket_in_node;
  loc.core = rank;
  return loc;
}

int ClusterTopology::time_source_id(int rank) const {
  const RankLocation loc = locate(rank);
  switch (scope_) {
    case TimeSourceScope::kPerNode: return loc.node;
    case TimeSourceScope::kPerSocket: return loc.socket;
    case TimeSourceScope::kPerCore: return loc.core;
  }
  return loc.node;
}

int ClusterTopology::num_time_sources() const noexcept {
  switch (scope_) {
    case TimeSourceScope::kPerNode: return nodes_;
    case TimeSourceScope::kPerSocket: return nodes_ * sockets_per_node_;
    case TimeSourceScope::kPerCore: return total_ranks();
  }
  return nodes_;
}

bool ClusterTopology::same_socket(int a, int b) const {
  return locate(a).socket == locate(b).socket;
}

std::string ClusterTopology::describe() const {
  std::ostringstream os;
  os << nodes_ << " nodes x " << sockets_per_node_ << " sockets x " << cores_per_socket_
     << " cores = " << total_ranks() << " ranks, time source " << to_string(scope_);
  return os.str();
}

}  // namespace hcs::topology
