#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hcs::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width " + std::to_string(cells.size()) +
                                " != header width " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_us(double seconds, int precision) { return fmt(seconds * 1e6, precision); }

}  // namespace hcs::util
