// Plain-text table and CSV emission used by the bench harnesses.
//
// A Table accumulates rows of strings and prints them column-aligned, the way
// the paper's figures are reported as series.  Numeric cells can be added with
// a precision; add_row() checks the column count.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace hcs::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must match the header width.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Column-aligned plain text with a header separator line.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default 3 digits).
std::string fmt(double v, int precision = 3);

/// Formats seconds as microseconds with a "us"-free plain number.
std::string fmt_us(double seconds, int precision = 3);

}  // namespace hcs::util
