// Minimal command-line option parser for the bench and example binaries.
//
// Supports "--key value", "--key=value" and boolean "--flag" forms;
// positional arguments are collected in order.  Callers that know their full
// option set call reject_unknown() after construction, turning typos like
// "--job 4" into an error instead of a silently ignored option.  The scale
// factor used by every bench binary is also read from the HCLOCKSYNC_SCALE
// environment variable, and the worker count from HCLOCKSYNC_JOBS (command
// line wins in both cases).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hcs::util {

class Cli {
 public:
  /// Parses argv.  `known_flags` lists boolean options (no value expected).
  Cli(int argc, const char* const* argv, std::vector<std::string> known_flags = {});

  /// Throws std::invalid_argument naming the offender (and the known set)
  /// if any parsed option is not in `known_options`.  Flags passed to the
  /// constructor must be listed again here.
  void reject_unknown(const std::vector<std::string>& known_options) const;

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;

  /// All values given for a repeatable option, in command-line order (e.g.
  /// "--fault drop:... --fault clockstep:...").  Empty when absent.  The
  /// single-value accessors above return the last occurrence.
  std::vector<std::string> get_all(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Benchmark scale in (0, 4]: --scale beats $HCLOCKSYNC_SCALE beats 1.0.
  double scale(double fallback = 1.0) const;

  /// Seed: --seed beats fallback.
  std::uint64_t seed(std::uint64_t fallback) const;

  /// Worker threads: --jobs beats $HCLOCKSYNC_JOBS beats fallback.
  /// 0 means "one per hardware thread" (resolved by runner::resolve_jobs);
  /// negative values throw.
  int jobs(int fallback = 1) const;

  /// Event-loop shards per World: --shards beats $HCLOCKSYNC_SHARDS beats
  /// fallback.  0 means "one per hardware thread" (resolved by
  /// runner::resolve_jobs); negative values throw.  Orthogonal to jobs():
  /// jobs parallelizes across independent trials, shards inside one World.
  int shards(int fallback = 1) const;

  /// Event-queue engine name: --queue beats $HCLOCKSYNC_QUEUE beats
  /// fallback.  Returned verbatim; callers validate against the engine set
  /// (sim::queue_impl_from_string) so the error can name the binary.
  std::string queue(const std::string& fallback) const;

  /// Observability outputs: "--trace-out run.json" requests a Chrome-trace
  /// dump, "--metrics-out run.csv" a metrics CSV.  Empty = disabled.
  std::string trace_out() const { return get("trace-out", ""); }
  std::string metrics_out() const { return get("metrics-out", ""); }

  /// Record/replay (docs/record-replay.md): "--record-out run.hcsr" writes
  /// the deterministic event-order recording, "--replay run.hcsr" re-runs
  /// while verifying against one.  Empty = disabled.
  std::string record_out() const { return get("record-out", ""); }
  std::string replay_file() const { return get("replay", ""); }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;                 // last occurrence
  std::map<std::string, std::vector<std::string>> repeated_;   // all, in order
  std::vector<std::string> positional_;
};

}  // namespace hcs::util
