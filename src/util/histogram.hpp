// ASCII histograms for distribution-shaped results (the paper's Fig. 8 shows
// imbalance *distributions*; a five-number summary hides their shape).
#pragma once

#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace hcs::util {

struct Histogram {
  double lo = 0.0;           // left edge of the first bin
  double bin_width = 0.0;
  std::vector<std::size_t> counts;
  std::size_t total = 0;

  double bin_left(std::size_t bin) const { return lo + bin_width * static_cast<double>(bin); }
};

/// Builds a linear-bin histogram over [min(xs), max(xs)].  nbins >= 1; an
/// empty sample yields an empty histogram.
Histogram make_histogram(std::span<const double> xs, int nbins);

/// Renders one line per bin: "[lo, hi)  count  ####…" with bars scaled to
/// `width` characters; `unit_scale` multiplies edge labels (e.g. 1e6 for us).
void print_histogram(std::ostream& os, const Histogram& h, int width = 40,
                     double unit_scale = 1.0, const std::string& unit = "");

}  // namespace hcs::util
