// Helper to build small double vectors as coroutine-call arguments.
//
// GCC 12 rejects braced-init-list arguments in co_await-ed calls ("array
// used as initializer": the initializer list's backing array cannot be
// persisted into the coroutine frame).  vec(a, b, ...) returns a plain
// prvalue vector and sidesteps the bug.
#pragma once

#include <vector>

namespace hcs::util {

template <typename... Ts>
std::vector<double> vec(Ts... xs) {
  return {static_cast<double>(xs)...};
}

}  // namespace hcs::util
