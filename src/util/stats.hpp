// Summary statistics over small-to-medium samples.
//
// All functions operate on a span of doubles.  Quantile-based functions copy
// and sort internally; callers that already hold sorted data can use the
// *_sorted variants to avoid the copy.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hcs::util {

/// Arithmetic mean; returns 0.0 for an empty sample.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0.0 for fewer than 2 points.
double stddev(std::span<const double> xs);

/// Smallest element; 0.0 for an empty sample.
double min(std::span<const double> xs);

/// Largest element; 0.0 for an empty sample.
double max(std::span<const double> xs);

/// Median (interpolated for even sizes); 0.0 for an empty sample.
double median(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1]; 0.0 for an empty sample.
double quantile(std::span<const double> xs, double q);

/// Quantile on data the caller guarantees to be ascending-sorted.
double quantile_sorted(std::span<const double> sorted, double q);

/// Five-number summary plus mean/stddev, as printed by the bench harnesses.
struct Summary {
  std::size_t n = 0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

Summary summarize(std::span<const double> xs);

/// "n=.. min=.. q25=.. med=.. q75=.. max=.. mean=.." with a unit suffix.
std::string to_string(const Summary& s, const std::string& unit = "");

}  // namespace hcs::util
