#include "util/histogram.hpp"

#include <algorithm>
#include <iomanip>
#include <stdexcept>

namespace hcs::util {

Histogram make_histogram(std::span<const double> xs, int nbins) {
  if (nbins < 1) throw std::invalid_argument("make_histogram: nbins must be >= 1");
  Histogram h;
  if (xs.empty()) return h;
  const auto [lo_it, hi_it] = std::minmax_element(xs.begin(), xs.end());
  h.lo = *lo_it;
  const double hi = *hi_it;
  h.bin_width = (hi > h.lo) ? (hi - h.lo) / nbins : 1.0;
  h.counts.assign(static_cast<std::size_t>(nbins), 0);
  for (double x : xs) {
    auto bin = static_cast<std::size_t>((x - h.lo) / h.bin_width);
    bin = std::min(bin, h.counts.size() - 1);  // the max lands in the last bin
    ++h.counts[bin];
  }
  h.total = xs.size();
  return h;
}

void print_histogram(std::ostream& os, const Histogram& h, int width, double unit_scale,
                     const std::string& unit) {
  if (h.counts.empty()) {
    os << "(empty histogram)\n";
    return;
  }
  const std::size_t peak = *std::max_element(h.counts.begin(), h.counts.end());
  for (std::size_t bin = 0; bin < h.counts.size(); ++bin) {
    const double left = h.bin_left(bin) * unit_scale;
    const double right = h.bin_left(bin + 1) * unit_scale;
    const auto bar = peak == 0 ? std::size_t{0}
                               : h.counts[bin] * static_cast<std::size_t>(width) / peak;
    os << "  [" << std::setw(9) << std::fixed << std::setprecision(2) << left << ", "
       << std::setw(9) << right << ") " << unit << " " << std::setw(6) << h.counts[bin] << "  "
       << std::string(bar, '#') << "\n";
  }
}

}  // namespace hcs::util
