#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace hcs::util {

Cli::Cli(int argc, const char* const* argv, std::vector<std::string> known_flags) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string key = arg.substr(2);
    std::string value;
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else {
      const bool is_flag =
          std::find(known_flags.begin(), known_flags.end(), key) != known_flags.end();
      value = (is_flag || i + 1 >= argc) ? "1" : argv[++i];
    }
    options_[key] = value;
    repeated_[key].push_back(std::move(value));
  }
}

void Cli::reject_unknown(const std::vector<std::string>& known_options) const {
  for (const auto& [key, value] : options_) {
    if (std::find(known_options.begin(), known_options.end(), key) != known_options.end()) {
      continue;
    }
    std::string known = "(known:";
    for (const std::string& k : known_options) known += " --" + k;
    known += ")";
    throw std::invalid_argument("unknown option --" + key + " " + known);
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::stod(it->second);
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::stoll(it->second);
}

std::vector<std::string> Cli::get_all(const std::string& key) const {
  const auto it = repeated_.find(key);
  return it == repeated_.end() ? std::vector<std::string>{} : it->second;
}

double Cli::scale(double fallback) const {
  double s = fallback;
  if (const char* env = std::getenv("HCLOCKSYNC_SCALE")) {
    s = std::stod(env);
  }
  s = get_double("scale", s);
  if (s <= 0.0 || s > 4.0) {
    throw std::invalid_argument("scale must be in (0, 4], got " + std::to_string(s));
  }
  return s;
}

std::uint64_t Cli::seed(std::uint64_t fallback) const {
  return static_cast<std::uint64_t>(get_int("seed", static_cast<std::int64_t>(fallback)));
}

int Cli::jobs(int fallback) const {
  std::int64_t j = fallback;
  if (const char* env = std::getenv("HCLOCKSYNC_JOBS")) {
    j = std::stoll(env);
  }
  j = get_int("jobs", j);
  if (j < 0) {
    throw std::invalid_argument("jobs must be >= 0 (0 = one per hardware thread), got " +
                                std::to_string(j));
  }
  return static_cast<int>(j);
}

std::string Cli::queue(const std::string& fallback) const {
  std::string q = fallback;
  if (const char* env = std::getenv("HCLOCKSYNC_QUEUE")) {
    q = env;
  }
  return get("queue", q);
}

int Cli::shards(int fallback) const {
  std::int64_t s = fallback;
  if (const char* env = std::getenv("HCLOCKSYNC_SHARDS")) {
    s = std::stoll(env);
  }
  s = get_int("shards", s);
  if (s < 0) {
    throw std::invalid_argument("shards must be >= 0 (0 = one per hardware thread), got " +
                                std::to_string(s));
  }
  return static_cast<int>(s);
}

}  // namespace hcs::util
