#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hcs::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  s.min = copy.front();
  s.max = copy.back();
  s.q25 = quantile_sorted(copy, 0.25);
  s.median = quantile_sorted(copy, 0.50);
  s.q75 = quantile_sorted(copy, 0.75);
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  return s;
}

std::string to_string(const Summary& s, const std::string& unit) {
  std::ostringstream os;
  os.precision(4);
  os << "n=" << s.n << " min=" << s.min << unit << " q25=" << s.q25 << unit
     << " med=" << s.median << unit << " q75=" << s.q75 << unit
     << " max=" << s.max << unit << " mean=" << s.mean << unit;
  return os.str();
}

}  // namespace hcs::util
