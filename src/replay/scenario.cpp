#include "replay/scenario.hpp"

#include <stdexcept>

namespace hcs::replay {

namespace {

// The chaos suite's tuned clock parameters (tests/chaos/): visible initial
// offsets so a working sync is distinguishable from an identity fallback.
void tune_clocks(topology::MachineConfig& m) {
  m.clocks.initial_offset_abs = 5e-3;
  m.clocks.base_skew_abs = 2e-6;
  m.clocks.skew_walk_sd = 0.005e-6;
}

std::vector<Scenario> build_scenarios() {
  std::vector<Scenario> all;

  {
    // 8 single-rank nodes: every message is inter-node, so the shard count
    // can range over 1..8 — the workhorse of the invariance tests.
    Scenario s;
    s.name = "ring8";
    s.description = "8 nodes x 1 rank, HCA-3, fault-free";
    s.machine = topology::testbox(8, 1);
    tune_clocks(s.machine);
    s.sync_label = "hca3/1000/skampi_offset/10";
    all.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "ring8-crash";
    s.description = "ring8 with a mid-sync crash of rank 5";
    s.machine = topology::testbox(8, 1);
    tune_clocks(s.machine);
    s.sync_label = "hca3/1000/skampi_offset/10";
    s.faults.add("crash:rank=5,at=2ms");
    all.push_back(std::move(s));
  }
  {
    // A hierarchical slice of the paper's Titan preset: multiple ranks per
    // node exercises the intra-node burst fast path alongside cross-node
    // rendezvous.
    Scenario s;
    s.name = "titan-small";
    s.description = "Titan preset at 4 nodes (64 ranks), HCA-3, fault-free";
    s.machine = topology::titan().with_nodes(4);
    s.sync_label = "hca3/300/skampi_offset/10";
    s.sample_fraction = 0.25;  // keep the accuracy phase cheap at 64 ranks
    all.push_back(std::move(s));
  }
  {
    // Tiny World + short sync: keeps recordings small enough to commit as
    // incidents under tests/replay/incidents/ (docs/record-replay.md).
    Scenario s;
    s.name = "micro4";
    s.description = "4 nodes x 1 rank, short HCA-3 sync; incident-sized recordings";
    s.machine = topology::testbox(4, 1);
    tune_clocks(s.machine);
    s.sync_label = "hca3/60/skampi_offset/8";
    s.accuracy_exchanges = 8;
    all.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "micro4-crash";
    s.description = "micro4 with a mid-sync crash of rank 2";
    s.machine = topology::testbox(4, 1);
    tune_clocks(s.machine);
    s.sync_label = "hca3/60/skampi_offset/8";
    s.accuracy_exchanges = 8;
    s.faults.add("crash:rank=2,at=2ms");
    all.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "micro4-drop";
    s.description = "micro4 with 5% message drops (retries on the record)";
    s.machine = topology::testbox(4, 1);
    tune_clocks(s.machine);
    s.sync_label = "hca3/60/skampi_offset/8";
    s.accuracy_exchanges = 8;
    s.faults.add("drop:p=0.05");
    all.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "micro4-step";
    s.description = "micro4 with a 50us clock step on rank 3 mid-sync";
    s.machine = topology::testbox(4, 1);
    tune_clocks(s.machine);
    s.sync_label = "hca3/60/skampi_offset/8";
    s.accuracy_exchanges = 8;
    s.faults.add("clockstep:rank=3,at=2ms,step=50us");
    all.push_back(std::move(s));
  }
  {
    // Churn incident: rank 2 leaves mid-sync (the cohort heals) and rejoins
    // at 300ms with a fresh clock, re-admitted through its HCA3 tree parent.
    Scenario s;
    s.name = "micro4-churn";
    s.description = "micro4 with rank 2 leaving mid-sync and rejoining at 300ms";
    s.machine = topology::testbox(4, 1);
    tune_clocks(s.machine);
    s.sync_label = "hca3/60/skampi_offset/8";
    s.accuracy_exchanges = 8;
    s.faults.add("leave:rank=2,at=2ms");
    s.faults.add("rejoin:rank=2,at=300ms");
    all.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "titan-small-crash";
    s.description = "titan-small with a mid-sync crash of rank 3";
    s.machine = topology::titan().with_nodes(4);
    s.sync_label = "hca3/300/skampi_offset/10";
    s.sample_fraction = 0.25;
    s.faults.add("crash:rank=3,at=3ms");
    all.push_back(std::move(s));
  }
  return all;
}

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> all = build_scenarios();
  return all;
}

}  // namespace

const Scenario& find_scenario(const std::string& name) {
  for (const Scenario& s : scenarios()) {
    if (s.name == name) return s;
  }
  std::string known;
  for (const Scenario& s : scenarios()) {
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  throw std::invalid_argument("unknown scenario \"" + name + "\" (known: " + known + ")");
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(scenarios().size());
  for (const Scenario& s : scenarios()) names.push_back(s.name);
  return names;
}

}  // namespace hcs::replay
