// Single-rank replay feed (docs/record-replay.md).
//
// A ReplayFeed walks one rank's recorded event stream in order.  The World
// transport hooks consume it instead of simulating the other ranks: receive
// completions and ping-pong bursts are answered straight from the log
// (resumed at the recorded absolute sim-time), sends and clock reads are
// verified against it.  Any mismatch between what the replayed program does
// and what the log says throws ReplayDivergence with enough detail to name
// the first diverging event.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "replay/record.hpp"

namespace hcs::replay {

/// The replayed rank did something the recording did not: different
/// operation, different arguments, different payload, or it ran past the
/// end of the log.
class ReplayDivergence : public std::runtime_error {
 public:
  ReplayDivergence(int rank, std::size_t index, std::string what)
      : std::runtime_error("replay divergence at rank " + std::to_string(rank) + ", event " +
                           std::to_string(index) + ": " + std::move(what)),
        rank_(rank),
        index_(index) {}

  int rank() const noexcept { return rank_; }
  std::size_t event_index() const noexcept { return index_; }

 private:
  int rank_;
  std::size_t index_;
};

class ReplayFeed {
 public:
  /// Serves `rank`'s events of `world`; the RecordedWorld must outlive the
  /// feed (the World holds the feed only by pointer, so the caller owns
  /// both).
  ReplayFeed(const RecordedWorld& world, int rank);

  int rank() const noexcept { return rank_; }

  /// Next unconsumed event, or nullptr once the log is exhausted.
  const Event* peek() const noexcept {
    return cursor_ < events_->size() ? &(*events_)[cursor_] : nullptr;
  }

  /// Consumes and returns the next event; throws ReplayDivergence when the
  /// log is exhausted.
  const Event& take();

  /// Consumes the next event after checking it has `kind` (and `peer`, when
  /// `peer` >= 0); throws ReplayDivergence naming both sides on mismatch.
  const Event& expect(EventKind kind, int peer);

  std::size_t consumed() const noexcept { return cursor_; }
  std::size_t remaining() const noexcept { return events_->size() - cursor_; }

  /// Throws ReplayDivergence carrying this feed's rank and cursor position.
  [[noreturn]] void diverge(const std::string& what) const {
    throw ReplayDivergence(rank_, cursor_, what);
  }

 private:
  const std::vector<Event>* events_;
  int rank_;
  std::size_t cursor_ = 0;
};

}  // namespace hcs::replay
