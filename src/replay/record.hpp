// Deterministic event-order recorder (docs/record-replay.md).
//
// A Recorder captures, per World and per rank, the complete sequence of
// transport-level observations a rank program makes: message sends (payload
// digest only), receive completions (full payload, so a replay can feed
// them back), receive timeouts, synthesized ping-pong bursts, and direct
// clock reads.  Together these are exactly the inputs a rank's control flow
// depends on — replaying them reproduces that rank bit-for-bit without
// simulating the rest of the World (replay/feed.hpp).
//
// Determinism contract: events are appended only from the shard thread that
// owns the rank (each rank has a private buffer sized at World creation, so
// appends never race or reallocate), and serialization walks worlds and
// ranks in index order.  Because every recorded quantity is part of the
// simulated timeline — which the engine already guarantees is bit-identical
// across --jobs/--shards/--queue — recordings are byte-identical across all
// three knobs; tests/replay/test_invariance.cpp gates this.
//
// The recorder is installed per-thread (install_recorder / ScopedRecorder),
// mirroring trace::Tracer: runner::TrialRunner gives each concurrent trial
// a private Recorder and absorbs them in trial-index order afterwards.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "simmpi/message.hpp"

namespace hcs::replay {

enum class EventKind : std::uint8_t {
  kSend = 1,         // peer = dst; payload digest only
  kRecv = 2,         // peer = src; full payload (replay feeds it back)
  kRecvTimeout = 3,  // peer = src; bounded receive gave up at `time`
  kBurst = 4,        // peer = partner; flags bit 0 = caller was the client
  kClockRead = 5,    // values[0] = the noisy clock reading
  // Format v2: a membership transition of the recorded rank itself.
  // flags 0 = departure (the rank's program unwound via RankCrashed here),
  // flags 1 = restart (the churn supervisor brought incarnation aux0 up).
  kMembership = 6,   // aux0 = incarnation index (as a double)
};

const char* to_string(EventKind kind);

/// One recorded observation.  `time` is the simulated time at which the
/// rank's program observes the result (send dispatch, receive completion,
/// burst resume, clock read) — the instant replay resumes the rank at.
struct Event {
  EventKind kind = EventKind::kSend;
  std::uint8_t flags = 0;       // kBurst: bit 0 set when the caller was the client
  std::int32_t peer = -1;       // the other rank (world numbering); -1 = none
  std::int64_t tag = 0;
  std::int64_t bytes = 0;       // declared wire size (send/recv)
  double time = 0.0;            // simulated observation time
  double aux0 = 0.0;            // kRecv: message sent_at
  double aux1 = 0.0;            // kRecv: message arrived_at
  std::uint64_t digest = 0;     // FNV-1a over the payload double bits
  std::vector<double> values;   // payload / encoded burst / clock reading

  bool operator==(const Event& other) const = default;
};

/// FNV-1a over the raw bit patterns of `values` (deterministic across
/// platforms with IEEE-754 doubles; 0.0 and -0.0 digest differently, which
/// is what a bit-exactness oracle wants).
std::uint64_t payload_digest(const std::vector<double>& values);

/// Burst results travel inside Event::values; both directions live here so
/// the recorder and the replay feed can never disagree on the layout.
std::vector<double> encode_burst(const simmpi::BurstResult& result);
simmpi::BurstResult decode_burst(const std::vector<double>& values);

/// Identity of one recorded World, written into the file header so a
/// recording is self-describing (the incident suite rebuilds the World from
/// it; hcs_bisect prints it when two recordings disagree on provenance).
struct WorldInfo {
  std::uint64_t seed = 0;
  std::int32_t nranks = 0;
  std::uint64_t fault_seed = 0;
  std::string machine;     // MachineConfig::describe()
  std::string fault_plan;  // FaultPlan::describe(); empty = fault-free
  std::string label;       // optional scenario / bench label

  bool operator==(const WorldInfo& other) const = default;
};

/// Per-World event log: one append-only buffer per rank.  Buffers are sized
/// at construction, so concurrent appends for different ranks (different
/// shard threads) touch disjoint, stable storage.
struct RecordedWorld {
  WorldInfo info;
  std::vector<std::vector<Event>> ranks;  // [rank] -> events in program order

  explicit RecordedWorld(WorldInfo world_info)
      : info(std::move(world_info)), ranks(static_cast<std::size_t>(info.nranks)) {}

  void append(int rank, Event ev) {
    ranks[static_cast<std::size_t>(rank)].push_back(std::move(ev));
  }

  std::uint64_t total_events() const noexcept {
    std::uint64_t n = 0;
    for (const auto& r : ranks) n += r.size();
    return n;
  }
};

class Recorder {
 public:
  /// Starts a new World section; the returned reference stays valid for the
  /// Recorder's lifetime (sections are heap-allocated).  Called by the World
  /// constructor on whichever thread constructs the World.
  RecordedWorld& begin_world(WorldInfo info);

  /// Label stamped into the next begin_world call (scenario captures name
  /// their Worlds this way); cleared once used.
  void set_pending_label(std::string label) { pending_label_ = std::move(label); }

  std::size_t world_count() const noexcept { return worlds_.size(); }
  const RecordedWorld& world(std::size_t index) const { return *worlds_[index]; }

  /// Moves every World section of `other` (in order) to the end of this
  /// recorder — the trial-index-order merge step of runner::TrialRunner,
  /// mirroring trace::Tracer::absorb.
  void absorb(Recorder& other);

 private:
  std::vector<std::unique_ptr<RecordedWorld>> worlds_;
  std::string pending_label_;
};

/// The calling thread's active recorder (nullptr = recording off).  Same
/// thread-scoping rules as trace::active_tracer.
Recorder* active_recorder() noexcept;
void install_recorder(Recorder* recorder) noexcept;

/// RAII install/uninstall, restoring the previous recorder.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder* recorder);
  ~ScopedRecorder();
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* previous_;
};

}  // namespace hcs::replay
