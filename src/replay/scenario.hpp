// Named capture scenarios (docs/record-replay.md).
//
// A Scenario is everything needed to reproduce a recorded run from scratch:
// the machine, the synchronization label, the fault plan, and the accuracy
// phase's knobs.  hcs_capture records scenarios by name; the incident suite
// and the single-rank replayer rebuild the identical World from the same
// Scenario plus the seed stored in the recording header.
#pragma once

#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "topology/presets.hpp"

namespace hcs::replay {

struct Scenario {
  std::string name;
  std::string description;
  topology::MachineConfig machine;
  std::string sync_label;        // clocksync::make_sync label
  fault::FaultPlan faults;
  double accuracy_wait = 0.25;   // seconds between the two accuracy passes
  int accuracy_exchanges = 20;   // ping-pongs per accuracy measurement
  double sample_fraction = 1.0;  // fraction of clients measured
};

/// The named scenario; throws std::invalid_argument listing the known names
/// when `name` is unknown.
const Scenario& find_scenario(const std::string& name);

/// All registered scenario names, in registration order.
std::vector<std::string> scenario_names();

}  // namespace hcs::replay
