#include "replay/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "clocksync/accuracy.hpp"
#include "clocksync/factory.hpp"
#include "clocksync/membership.hpp"
#include "clocksync/skampi_offset.hpp"
#include "replay/feed.hpp"
#include "simmpi/world.hpp"

namespace hcs::replay {

namespace {

// Client sampling is seeded off the World seed so different seeds exercise
// different client subsets; the mix constant keeps it uncorrelated with the
// World's own streams.
constexpr std::uint64_t kClientSeedMix = 0xabcdefULL;

std::string hexf(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_hexf(const std::string& tok, const char* field) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == tok.c_str()) {
    throw std::invalid_argument(std::string("parse_outcome: bad ") + field + " value \"" + tok +
                                "\"");
  }
  return v;
}

// Churn-plan variant of the rank program: the founding cohort synchronizes
// over the membership view at time 0, a returning rank runs (only) its own
// re-admission sub-phase, and every rank serves the re-admissions it
// references — all rendezvous derived from the fault oracle, no cohort-wide
// accuracy collective (probe disagreement is the accuracy oracle under
// churn).  The churn supervisor re-invokes this program per incarnation;
// the last incarnation's outcome wins.
sim::Task<void> churn_scenario_rank(const Scenario* scenario, RankOutcome* outcomes,
                                    simmpi::RankCtx& ctx) {
  simmpi::World& world = ctx.world();
  const fault::FaultInjector* fault = world.fault_injector();
  const int me = ctx.rank();
  sim::Simulation& s = ctx.sim();
  const sim::Time entry = s.now();
  const int inc = fault->incarnation(me, entry);
  const std::vector<clocksync::ReadmitEvent> schedule = clocksync::readmit_schedule(world);
  RankOutcome& mine = outcomes[me];
  mine = RankOutcome{};  // a restart discards the departed incarnation's partial outcome
  clocksync::SKaMPIOffset oalg(scenario->accuracy_exchanges);
  clocksync::ReadmitPolicy policy;

  vclock::ClockPtr clock;
  if (inc == 0) {
    simmpi::Comm view = simmpi::Comm::view_comm(world, me, 0.0);
    auto sync = clocksync::make_sync(scenario->sync_label);
    clocksync::SyncResult res = co_await sync->sync_clocks(view, ctx.base_clock());
    clock = res.clock;
    mine.health = static_cast<int>(res.report.health);
    mine.points_used = res.report.points_used;
  } else {
    const clocksync::ReadmitEvent event{entry, me, inc};
    simmpi::Comm view = simmpi::Comm::view_comm(world, me, entry);
    clocksync::ReadmitResult res =
        co_await clocksync::readmit(view, event, ctx.base_clock(), oalg, policy);
    clock = res.clock;
    mine.health = static_cast<int>(res.report.health);
    mine.points_used = res.report.points_used;
  }
  mine.sync_end = s.now();

  for (const clocksync::ReadmitEvent& ev : schedule) {
    if (ev.at < entry || ev.rank == me) continue;
    if (fault->next_down(me, entry) <= ev.at) break;  // departed before then
    if (clocksync::readmit_reference(world, ev) != me) continue;
    simmpi::Comm view = simmpi::Comm::view_comm(world, me, ev.at);
    clocksync::ReadmitResult served = co_await clocksync::readmit(view, ev, clock, oalg, policy);
    clock = served.clock;
  }

  mine.probes.reserve(kProbeTimes.size());
  for (const double t : kProbeTimes) mine.probes.push_back(clock->at_exact(t));
  mine.ran = true;
}

// The one rank program every scenario runs; a free coroutine (not a
// capturing lambda) so its frame owns stable copies/pointers for the whole
// run.  `outcomes` points at the caller's per-rank array: each rank writes
// only its own slot, which is safe under sharding (slots are disjoint and
// the vector is pre-sized).
sim::Task<void> scenario_rank(const Scenario* scenario, std::uint64_t seed,
                              RankOutcome* outcomes, simmpi::RankCtx& ctx) {
  const fault::FaultInjector* fault = ctx.world().fault_injector();
  if (fault != nullptr && fault->churn_active()) {
    co_return co_await churn_scenario_rank(scenario, outcomes, ctx);
  }
  simmpi::Comm& comm = ctx.comm_world();
  auto sync = clocksync::make_sync(scenario->sync_label);
  clocksync::SyncResult res = co_await sync->sync_clocks(comm, ctx.base_clock());
  RankOutcome& mine = outcomes[ctx.rank()];
  mine.health = static_cast<int>(res.report.health);
  mine.points_used = res.report.points_used;
  mine.sync_end = ctx.sim().now();
  mine.probes.reserve(kProbeTimes.size());
  for (const double t : kProbeTimes) mine.probes.push_back(res.clock->at_exact(t));

  clocksync::SKaMPIOffset oalg(scenario->accuracy_exchanges);
  const std::vector<int> clients = clocksync::sample_clients(
      comm.size(), /*p_ref=*/0, scenario->sample_fraction, seed ^ kClientSeedMix);
  const clocksync::AccuracyResult acc = co_await clocksync::check_clock_accuracy(
      comm, *res.clock, oalg, scenario->accuracy_wait, clients, /*p_ref=*/0);
  mine.max_abs_t0 = acc.max_abs_t0;
  mine.max_abs_t1 = acc.max_abs_t1;
  mine.ran = true;  // last: a crash anywhere above leaves ran == false
}

}  // namespace

std::string describe_outcome(const RankOutcome& o) {
  std::ostringstream os;
  os << "ran=" << (o.ran ? 1 : 0) << " health=" << o.health << " points_used=" << o.points_used
     << " sync_end=" << hexf(o.sync_end) << " probes=";
  for (std::size_t i = 0; i < o.probes.size(); ++i) {
    if (i != 0) os << ',';
    os << hexf(o.probes[i]);
  }
  os << " acc_t0=" << hexf(o.max_abs_t0) << " acc_t1=" << hexf(o.max_abs_t1);
  return os.str();
}

RankOutcome parse_outcome(const std::string& line) {
  RankOutcome o;
  std::istringstream is(line);
  std::string tok;
  bool saw_ran = false;
  while (is >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("parse_outcome: malformed token \"" + tok + "\"");
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "ran") {
      o.ran = value == "1";
      saw_ran = true;
    } else if (key == "health") {
      o.health = std::stoi(value);
    } else if (key == "points_used") {
      o.points_used = std::stoi(value);
    } else if (key == "sync_end") {
      o.sync_end = parse_hexf(value, "sync_end");
    } else if (key == "probes") {
      std::istringstream ps(value);
      std::string p;
      while (std::getline(ps, p, ',')) {
        if (!p.empty()) o.probes.push_back(parse_hexf(p, "probes"));
      }
    } else if (key == "acc_t0") {
      o.max_abs_t0 = parse_hexf(value, "acc_t0");
    } else if (key == "acc_t1") {
      o.max_abs_t1 = parse_hexf(value, "acc_t1");
    } else {
      throw std::invalid_argument("parse_outcome: unknown key \"" + key + "\"");
    }
  }
  if (!saw_ran) throw std::invalid_argument("parse_outcome: missing ran= field");
  return o;
}

std::vector<RankOutcome> run_scenario(const Scenario& scenario, std::uint64_t seed) {
  if (Recorder* recorder = active_recorder()) recorder->set_pending_label(scenario.name);
  simmpi::World world(scenario.machine, seed, scenario.faults);
  std::vector<RankOutcome> outcomes(static_cast<std::size_t>(world.size()));
  world.run_all([&scenario, seed, &outcomes](simmpi::RankCtx& ctx) {
    return scenario_rank(&scenario, seed, outcomes.data(), ctx);
  });
  return outcomes;
}

RankOutcome replay_scenario_rank(const Scenario& scenario, const RecordedWorld& recorded,
                                 int rank) {
  if (recorded.info.machine != scenario.machine.describe()) {
    throw std::invalid_argument("replay_scenario_rank: recording was made on \"" +
                                recorded.info.machine + "\", scenario \"" + scenario.name +
                                "\" describes \"" + scenario.machine.describe() + "\"");
  }
  const std::string plan = scenario.faults.empty() ? "" : scenario.faults.describe();
  if (recorded.info.fault_plan != plan || recorded.info.fault_seed != scenario.faults.seed()) {
    throw std::invalid_argument(
        "replay_scenario_rank: recorded fault plan \"" + recorded.info.fault_plan +
        "\" does not match scenario \"" + scenario.name + "\" (\"" + plan + "\")");
  }
  simmpi::World world(scenario.machine, recorded.info.seed, scenario.faults, /*shards=*/1);
  ReplayFeed feed(recorded, rank);
  world.attach_replay(&feed, rank);
  std::vector<RankOutcome> outcomes(static_cast<std::size_t>(world.size()));
  world.run_all([&scenario, &recorded, &outcomes](simmpi::RankCtx& ctx) {
    return scenario_rank(&scenario, recorded.info.seed, outcomes.data(), ctx);
  });
  if (feed.remaining() != 0) {
    throw ReplayDivergence(rank, feed.consumed(),
                           "replayed program finished with " + std::to_string(feed.remaining()) +
                               " recorded events unconsumed");
  }
  return outcomes[static_cast<std::size_t>(rank)];
}

}  // namespace hcs::replay
