// Recorded clock reads (docs/record-replay.md).
//
// Hardware clock noise is drawn from an RNG shared by every rank of a time
// source, so a direct clk.now() cannot be recomputed when only one rank is
// replayed (the co-located ranks that would have consumed interleaved draws
// are not running).  Sync code therefore routes its direct clock reads
// through observed_now(): a plain clk.now() while recording is off, a
// recorded read while a Recorder is installed, and a log-fed value during
// single-rank replay.  Clock reads inside ping-pong bursts are already part
// of the recorded BurstResult and need no hook.
#pragma once

#include "simmpi/comm.hpp"
#include "vclock/clock.hpp"

namespace hcs::replay {

/// Noisy "read my clock now" for rank code, record/replay aware.
inline double observed_now(simmpi::Comm& comm, vclock::Clock& clk) {
  return comm.world().clock_read_hook(comm.my_world_rank(), clk);
}

}  // namespace hcs::replay
