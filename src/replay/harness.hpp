// Scenario harness: one recordable, replayable rank program
// (docs/record-replay.md).
//
// Every capture scenario runs the same program on every rank: synchronize
// with the scenario's algorithm, probe the learned clock model at fixed
// noiseless times, then run a two-pass accuracy check.  The per-rank
// RankOutcome summarizes everything downstream tests assert on; because all
// of its inputs come through the recorded transport surface, replaying one
// rank against its recording reproduces its outcome bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "replay/record.hpp"
#include "replay/scenario.hpp"

namespace hcs::replay {

/// Noiseless probe times (absolute simulated seconds) at which each rank
/// evaluates its synchronized clock model via at_exact(); bit-exact model
/// equality is asserted through these.
inline constexpr std::array<double, 5> kProbeTimes = {0.0, 0.5, 1.0, 2.0, 10.0};

struct RankOutcome {
  bool ran = false;        // false: the rank crashed before finishing
  int health = -1;         // clocksync::SyncHealth as int; -1 = no result
  int points_used = 0;     // fit points that survived validity checks
  double sync_end = 0.0;   // sim-time when sync_clocks returned
  std::vector<double> probes;  // model at kProbeTimes (at_exact, noiseless)
  double max_abs_t0 = 0.0;     // accuracy right after sync (p_ref only)
  double max_abs_t1 = 0.0;     // accuracy after accuracy_wait (p_ref only)
};

/// One line per outcome, doubles in hexfloat (%a): round-trips bit-exactly
/// through text, so incident sidecars can assert bit-for-bit reproduction.
std::string describe_outcome(const RankOutcome& outcome);

/// Parses a describe_outcome() line back; throws std::invalid_argument on
/// malformed input.
RankOutcome parse_outcome(const std::string& line);

/// Runs the scenario's World to completion (recording it when a Recorder is
/// installed on this thread — the scenario name becomes the section label)
/// and returns every rank's outcome.
std::vector<RankOutcome> run_scenario(const Scenario& scenario, std::uint64_t seed);

/// Replays `rank` of a recording of this scenario without simulating the
/// other ranks.  The RecordedWorld's header must match the scenario (same
/// machine, fault plan, and fault seed); throws std::invalid_argument when
/// it does not and ReplayDivergence when the replayed rank deviates from the
/// log (including not consuming it fully).
RankOutcome replay_scenario_rank(const Scenario& scenario, const RecordedWorld& recorded,
                                 int rank);

}  // namespace hcs::replay
