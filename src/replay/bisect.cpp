#include "replay/bisect.hpp"

#include <algorithm>
#include <sstream>

namespace hcs::replay {

namespace {

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) s.push_back(digits[(v >> shift) & 0xfU]);
  return s;
}

// The first field in which two non-equal events differ, in diagnostic
// priority order (operation identity before timing before payload).
std::string differing_field(const Event& a, const Event& b) {
  if (a.kind != b.kind) return "kind";
  if (a.peer != b.peer) return "peer";
  if (a.tag != b.tag) return "tag";
  if (a.flags != b.flags) return "flags";
  if (a.bytes != b.bytes) return "bytes";
  if (a.time != b.time) return "time";
  if (a.aux0 != b.aux0 || a.aux1 != b.aux1) return "message-times";
  if (a.digest != b.digest || a.values != b.values) return "payload";
  return "unknown";
}

struct RankDivergence {
  int rank = -1;
  std::size_t index = 0;
  double time = 0.0;
  std::string field;
  std::string detail;
};

// First index at which the two streams differ; nullopt when identical.
std::optional<RankDivergence> diff_rank(int rank, const std::vector<Event>& a,
                                        const std::vector<Event>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) continue;
    RankDivergence d;
    d.rank = rank;
    d.index = i;
    d.time = std::min(a[i].time, b[i].time);
    d.field = differing_field(a[i], b[i]);
    d.detail = "a: " + describe_event(a[i]) + "\n  b: " + describe_event(b[i]);
    return d;
  }
  if (a.size() == b.size()) return std::nullopt;
  RankDivergence d;
  d.rank = rank;
  d.index = n;
  const std::vector<Event>& longer = a.size() > b.size() ? a : b;
  d.time = longer[n].time;
  d.field = "count";
  d.detail = std::string("a: ") + (a.size() > n ? describe_event(a[n]) : "<absent>") +
             "\n  b: " + (b.size() > n ? describe_event(b[n]) : "<absent>") + "\n  (" +
             std::to_string(a.size()) + " vs " + std::to_string(b.size()) + " events)";
  return d;
}

}  // namespace

std::string describe_event(const Event& ev) {
  std::ostringstream os;
  os.precision(17);
  os << to_string(ev.kind) << " peer=" << ev.peer << " tag=" << ev.tag;
  if (ev.kind == EventKind::kSend || ev.kind == EventKind::kRecv) os << " bytes=" << ev.bytes;
  if (ev.kind == EventKind::kBurst) {
    os << " role=" << ((ev.flags & 1U) != 0 ? "client" : "reference");
  }
  os << " time=" << ev.time << " values=" << ev.values.size()
     << " digest=" << hex64(ev.digest);
  return os.str();
}

std::optional<Divergence> first_divergence(const Recording& a, const Recording& b) {
  const std::size_t nworlds = std::min(a.worlds.size(), b.worlds.size());
  std::optional<Divergence> header_only;
  for (std::size_t w = 0; w < nworlds; ++w) {
    const RecordedWorld& wa = a.worlds[w];
    const RecordedWorld& wb = b.worlds[w];
    if (wa.info.nranks != wb.info.nranks) {
      Divergence d;
      d.world = w;
      d.field = "nranks";
      d.detail = "a: " + std::to_string(wa.info.nranks) + " ranks, b: " +
                 std::to_string(wb.info.nranks) + " ranks";
      return d;
    }
    if (!header_only && !(wa.info == wb.info)) {
      Divergence d;
      d.world = w;
      d.field = "header";
      d.detail = "a: seed=" + std::to_string(wa.info.seed) + " machine=\"" + wa.info.machine +
                 "\" faults=\"" + wa.info.fault_plan + "\"\n  b: seed=" +
                 std::to_string(wb.info.seed) + " machine=\"" + wb.info.machine +
                 "\" faults=\"" + wb.info.fault_plan + "\"";
      header_only = d;
    }
    // Earliest diverging event across this world's ranks, by
    // (sim-time, rank, index).
    std::optional<RankDivergence> best;
    for (int r = 0; r < wa.info.nranks; ++r) {
      const auto d = diff_rank(r, wa.ranks[static_cast<std::size_t>(r)],
                               wb.ranks[static_cast<std::size_t>(r)]);
      if (!d) continue;
      if (!best || d->time < best->time ||
          (d->time == best->time && d->rank < best->rank)) {
        best = d;
      }
    }
    if (best) {
      Divergence d;
      d.world = w;
      d.rank = best->rank;
      d.index = best->index;
      d.time = best->time;
      d.field = best->field;
      d.detail = best->detail;
      return d;
    }
  }
  if (a.worlds.size() != b.worlds.size()) {
    Divergence d;
    d.world = nworlds;
    d.field = "world-count";
    d.detail = "a: " + std::to_string(a.worlds.size()) + " worlds, b: " +
               std::to_string(b.worlds.size()) + " worlds";
    return d;
  }
  return header_only;
}

}  // namespace hcs::replay
