// Divergence bisection between two recordings (docs/record-replay.md).
//
// Two runs that should be byte-identical sometimes are not; instead of
// "bytes differ", first_divergence() names the first event at which the two
// event streams disagree — rank, sim-time, event kind, payload digest —
// which is usually enough to localize the offending subsystem.  "First" is
// by (sim-time, rank, event index): the earliest simulated moment at which
// the two runs observably differ.
#pragma once

#include <optional>
#include <string>

#include "replay/format.hpp"

namespace hcs::replay {

struct Divergence {
  std::size_t world = 0;    // world index within the recordings
  int rank = -1;            // -1 for structural (header / world count) differences
  std::size_t index = 0;    // event index within the rank
  double time = 0.0;        // sim-time of the first diverging event
  std::string field;        // which part differed: "kind", "time", "payload", ...
  std::string detail;       // human-readable description of both sides
};

/// One-line rendering of one side's event for divergence reports; `missing`
/// events (one stream shorter than the other) render as "<absent>".
std::string describe_event(const Event& ev);

/// The first point at which the two recordings disagree, or nullopt when
/// they are equivalent.  World count, per-world header info and per-rank
/// event streams are all compared; header-only differences (e.g. two
/// different fault plans, as in a deliberate perturbation experiment) are
/// reported only if every event stream matches, so an injected perturbation
/// is always pinpointed by its first observable event.
std::optional<Divergence> first_divergence(const Recording& a, const Recording& b);

}  // namespace hcs::replay
