#include "replay/feed.hpp"

#include <stdexcept>

namespace hcs::replay {

ReplayFeed::ReplayFeed(const RecordedWorld& world, int rank)
    : events_(nullptr), rank_(rank) {
  if (rank < 0 || rank >= world.info.nranks) {
    throw std::out_of_range("ReplayFeed: rank " + std::to_string(rank) +
                            " not in recorded world of " + std::to_string(world.info.nranks) +
                            " ranks");
  }
  events_ = &world.ranks[static_cast<std::size_t>(rank)];
}

const Event& ReplayFeed::take() {
  if (cursor_ >= events_->size()) {
    diverge("recorded event log exhausted (the replayed program performed more transport "
            "operations than the recording)");
  }
  return (*events_)[cursor_++];
}

const Event& ReplayFeed::expect(EventKind kind, int peer) {
  const Event* ev = peek();
  if (ev == nullptr) {
    diverge(std::string("recorded event log exhausted while expecting ") + to_string(kind));
  }
  if (ev->kind != kind) {
    diverge(std::string("expected ") + to_string(kind) + " but the recording has " +
            to_string(ev->kind) + " (peer " + std::to_string(ev->peer) + ", sim-time " +
            std::to_string(ev->time) + ")");
  }
  if (peer >= 0 && ev->peer != peer) {
    diverge(std::string(to_string(kind)) + " peer mismatch: replay targets rank " +
            std::to_string(peer) + ", recording has rank " + std::to_string(ev->peer));
  }
  ++cursor_;
  return *ev;
}

}  // namespace hcs::replay
