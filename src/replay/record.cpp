#include "replay/record.hpp"

#include <cstring>

namespace hcs::replay {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kRecvTimeout: return "recv-timeout";
    case EventKind::kBurst: return "burst";
    case EventKind::kClockRead: return "clock-read";
    case EventKind::kMembership: return "membership";
  }
  return "?";
}

std::uint64_t payload_digest(const std::vector<double>& values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const double v : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (bits >> (8 * byte)) & 0xffU;
      h *= 0x100000001b3ULL;  // FNV prime
    }
  }
  return h;
}

std::vector<double> encode_burst(const simmpi::BurstResult& result) {
  std::vector<double> values;
  values.reserve(4 + 3 * result.samples.size());
  values.push_back(static_cast<double>(result.requested));
  values.push_back(static_cast<double>(result.lost));
  values.push_back(static_cast<double>(result.retries));
  values.push_back(static_cast<double>(result.samples.size()));
  for (const simmpi::PingSample& s : result.samples) {
    values.push_back(s.client_send);
    values.push_back(s.ref_reply);
    values.push_back(s.client_recv);
  }
  return values;
}

simmpi::BurstResult decode_burst(const std::vector<double>& values) {
  simmpi::BurstResult result;
  if (values.size() < 4) return result;
  result.requested = static_cast<int>(values[0]);
  result.lost = static_cast<int>(values[1]);
  result.retries = static_cast<int>(values[2]);
  const auto nsamples = static_cast<std::size_t>(values[3]);
  result.samples.reserve(nsamples);
  for (std::size_t i = 0; i < nsamples && 4 + 3 * i + 2 < values.size(); ++i) {
    simmpi::PingSample s;
    s.client_send = values[4 + 3 * i];
    s.ref_reply = values[4 + 3 * i + 1];
    s.client_recv = values[4 + 3 * i + 2];
    result.samples.push_back(s);
  }
  return result;
}

RecordedWorld& Recorder::begin_world(WorldInfo info) {
  if (info.label.empty() && !pending_label_.empty()) info.label = pending_label_;
  pending_label_.clear();
  worlds_.push_back(std::make_unique<RecordedWorld>(std::move(info)));
  return *worlds_.back();
}

void Recorder::absorb(Recorder& other) {
  for (auto& world : other.worlds_) worlds_.push_back(std::move(world));
  other.worlds_.clear();
}

namespace {
thread_local Recorder* t_recorder = nullptr;
}  // namespace

Recorder* active_recorder() noexcept { return t_recorder; }

void install_recorder(Recorder* recorder) noexcept { t_recorder = recorder; }

ScopedRecorder::ScopedRecorder(Recorder* recorder) : previous_(t_recorder) {
  t_recorder = recorder;
}

ScopedRecorder::~ScopedRecorder() { t_recorder = previous_; }

}  // namespace hcs::replay
