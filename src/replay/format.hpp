// Versioned binary serialization for recordings (docs/record-replay.md has
// the byte-level spec).
//
// Layout (all integers little-endian, doubles as IEEE-754 bit patterns):
//   file   := magic "HCSR" | u32 version (1 or 2) | u32 nworlds | world*
//   world  := u64 seed | i32 nranks | u64 fault_seed
//           | str machine | str fault_plan | str label
//           | rank* (nranks of them) | u64 total_events (integrity check)
//   rank   := u64 nevents | event*
//   event  := u8 kind | u8 flags | i32 peer | i64 tag | i64 bytes
//           | f64 time | f64 aux0 | f64 aux1 | u64 digest
//           | u32 nvalues | f64*
//   str    := u32 length | bytes
//
// serialize() walks worlds and ranks in index order, so identical event
// streams produce byte-identical files — the property the invariance tests
// and the CI bisect smoke step gate.
//
// Version history.  v1: event kinds 1..5.  v2: adds kMembership (kind 6,
// churn epochs — docs/fault-injection.md); the event wire layout itself is
// unchanged, so v1 files parse bit-exactly under a v2 reader (the committed
// v1 incidents in tests/replay/incidents/ gate this back-compat).
#pragma once

#include <string>
#include <vector>

#include "replay/record.hpp"

namespace hcs::replay {

inline constexpr std::uint32_t kFormatVersion = 2;

/// Oldest version parse() still reads (v1 recordings carry no kMembership
/// events but are otherwise identical on the wire).
inline constexpr std::uint32_t kMinFormatVersion = 1;

/// A recording loaded back from disk (or parsed from bytes).
struct Recording {
  std::vector<RecordedWorld> worlds;
};

/// Deterministic byte serialization of everything the recorder captured.
std::string serialize(const Recorder& recorder);

/// Parses bytes produced by serialize(); throws std::runtime_error naming
/// the offset on any magic/version/bounds violation.
Recording parse(const std::string& bytes);

/// Writes serialize(recorder) to `path`; false (with errno untouched) when
/// the file cannot be written.
bool save(const std::string& path, const Recorder& recorder);

/// Reads and parses `path`; throws std::runtime_error when the file cannot
/// be read or fails to parse.
Recording load(const std::string& path);

}  // namespace hcs::replay
