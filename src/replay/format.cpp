#include "replay/format.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace hcs::replay {

namespace {

constexpr char kMagic[4] = {'H', 'C', 'S', 'R'};

// --- writer -----------------------------------------------------------------

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
}

void put_i32(std::string& out, std::int32_t v) { put_u32(out, static_cast<std::uint32_t>(v)); }
void put_i64(std::string& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_event(std::string& out, const Event& ev) {
  put_u8(out, static_cast<std::uint8_t>(ev.kind));
  put_u8(out, ev.flags);
  put_i32(out, ev.peer);
  put_i64(out, ev.tag);
  put_i64(out, ev.bytes);
  put_f64(out, ev.time);
  put_f64(out, ev.aux0);
  put_f64(out, ev.aux1);
  put_u64(out, ev.digest);
  put_u32(out, static_cast<std::uint32_t>(ev.values.size()));
  for (const double v : ev.values) put_f64(out, v);
}

// --- reader -----------------------------------------------------------------

struct Cursor {
  const std::string* bytes;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > bytes->size()) {
      throw std::runtime_error("recording truncated at byte " + std::to_string(pos) +
                               " (need " + std::to_string(n) + " more)");
    }
  }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>((*bytes)[pos++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>((*bytes)[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>((*bytes)[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s = bytes->substr(pos, n);
    pos += n;
    return s;
  }
};

Event parse_event(Cursor& c, std::uint32_t version) {
  Event ev;
  const std::uint8_t kind = c.u8();
  const std::uint8_t max_kind = version >= 2 ? 6 : 5;  // v2 adds kMembership
  if (kind < 1 || kind > max_kind) {
    throw std::runtime_error("recording: bad event kind " + std::to_string(kind) +
                             " for format version " + std::to_string(version) +
                             " at byte " + std::to_string(c.pos - 1));
  }
  ev.kind = static_cast<EventKind>(kind);
  ev.flags = c.u8();
  ev.peer = c.i32();
  ev.tag = c.i64();
  ev.bytes = c.i64();
  ev.time = c.f64();
  ev.aux0 = c.f64();
  ev.aux1 = c.f64();
  ev.digest = c.u64();
  const std::uint32_t nvalues = c.u32();
  c.need(static_cast<std::size_t>(nvalues) * 8);
  ev.values.reserve(nvalues);
  for (std::uint32_t i = 0; i < nvalues; ++i) ev.values.push_back(c.f64());
  return ev;
}

}  // namespace

std::string serialize(const Recorder& recorder) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(recorder.world_count()));
  for (std::size_t w = 0; w < recorder.world_count(); ++w) {
    const RecordedWorld& world = recorder.world(w);
    put_u64(out, world.info.seed);
    put_i32(out, world.info.nranks);
    put_u64(out, world.info.fault_seed);
    put_str(out, world.info.machine);
    put_str(out, world.info.fault_plan);
    put_str(out, world.info.label);
    for (const std::vector<Event>& rank_events : world.ranks) {
      put_u64(out, rank_events.size());
      for (const Event& ev : rank_events) put_event(out, ev);
    }
    put_u64(out, world.total_events());
  }
  return out;
}

Recording parse(const std::string& bytes) {
  Cursor c{&bytes};
  c.need(sizeof(kMagic));
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a recording: bad magic (expected \"HCSR\")");
  }
  c.pos = sizeof(kMagic);
  const std::uint32_t version = c.u32();
  if (version < kMinFormatVersion || version > kFormatVersion) {
    throw std::runtime_error("recording format version " + std::to_string(version) +
                             " not supported (this build reads versions " +
                             std::to_string(kMinFormatVersion) + ".." +
                             std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t nworlds = c.u32();
  Recording rec;
  rec.worlds.reserve(nworlds);
  for (std::uint32_t w = 0; w < nworlds; ++w) {
    WorldInfo info;
    info.seed = c.u64();
    info.nranks = c.i32();
    if (info.nranks < 0 || info.nranks > (1 << 24)) {
      throw std::runtime_error("recording: implausible rank count " +
                               std::to_string(info.nranks));
    }
    info.fault_seed = c.u64();
    info.machine = c.str();
    info.fault_plan = c.str();
    info.label = c.str();
    RecordedWorld world(std::move(info));
    for (auto& rank_events : world.ranks) {
      const std::uint64_t nevents = c.u64();
      // Each event is at least 47 bytes on the wire; reject counts the
      // remaining bytes cannot possibly hold before reserving.
      if (nevents > (bytes.size() - c.pos) / 47 + 1) {
        throw std::runtime_error("recording: implausible event count " +
                                 std::to_string(nevents));
      }
      rank_events.reserve(static_cast<std::size_t>(nevents));
      for (std::uint64_t e = 0; e < nevents; ++e) rank_events.push_back(parse_event(c, version));
    }
    const std::uint64_t total = c.u64();
    if (total != world.total_events()) {
      throw std::runtime_error("recording: world " + std::to_string(w) +
                               " event-count trailer mismatch");
    }
    rec.worlds.push_back(std::move(world));
  }
  if (c.pos != bytes.size()) {
    throw std::runtime_error("recording: " + std::to_string(bytes.size() - c.pos) +
                             " trailing bytes after last world");
  }
  return rec;
}

bool save(const std::string& path, const Recorder& recorder) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string bytes = serialize(recorder);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

Recording load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open recording: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) throw std::runtime_error("cannot read recording: " + path);
  return parse(buf.str());
}

}  // namespace hcs::replay
