// Virtual-time definitions for the discrete-event simulator.
//
// Simulation time ("true time") is a double counting seconds since the start
// of the run.  At the 500 s horizons used by the paper's drift experiments a
// double still resolves ~0.1 ps, seven orders of magnitude below the
// microsecond effects under study (DESIGN.md §4.2).
#pragma once

#include <limits>

namespace hcs::sim {

using Time = double;

inline constexpr Time kNanosecond = 1e-9;
inline constexpr Time kMicrosecond = 1e-6;
inline constexpr Time kMillisecond = 1e-3;
inline constexpr Time kSecond = 1.0;

/// "Never": comparisons like `now >= crash_time` are false for live ranks.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Converts seconds to microseconds (for reporting).
constexpr double to_us(Time t) { return t * 1e6; }

}  // namespace hcs::sim
