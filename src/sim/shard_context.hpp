// Thread-local shard index for the sharded (PDES) World engine.
//
// When a World is sharded (see docs/parallel-simulation.md), each shard's
// event loop runs on its own worker thread; components that cache per-shard
// state (metric handles, per-shard registries) index it by the calling
// thread's shard.  The default of 0 makes every unsharded path — tests,
// examples, --shards 1 — behave exactly as before sharding existed: slot 0
// is the whole world.
//
// The serial barrier phases of the engine (cross-shard mailbox drains,
// ping-pong rendezvous synthesis) run on the coordinating thread and set the
// shard index explicitly around work done on a shard's behalf.
#pragma once

namespace hcs::sim {

namespace detail {
inline thread_local int tl_current_shard = 0;
}

/// Shard whose event loop the calling thread is executing (0 when unsharded).
inline int current_shard() noexcept { return detail::tl_current_shard; }

/// Set by shard worker threads at startup and by the engine's serial phases.
inline void set_current_shard(int shard) noexcept { detail::tl_current_shard = shard; }

}  // namespace hcs::sim
