#include "sim/rng.hpp"

#include <cmath>

namespace hcs::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t x = next_u64();
    if (x >= threshold) return x % n;
  }
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sd) { return mean + sd * normal(); }

double Rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  return -mean * std::log1p(-uniform());
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace hcs::sim
