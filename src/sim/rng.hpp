// Deterministic random number generation for the simulator.
//
// xoshiro256** seeded via splitmix64: fast, high quality, and — unlike
// std::mt19937 + std::normal_distribution — bit-identical across standard
// library implementations, which the reproducibility tests rely on.
#pragma once

#include <cstdint>

namespace hcs::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Marsaglia polar method (one spare cached).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sd);

  /// Exponential with the given mean (mean <= 0 returns 0).
  double exponential(double mean);

  /// Log-normal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Derives an independent child stream (used for per-run seeds).
  Rng split();

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// splitmix64 step, exposed for seed derivation in tests and harnesses.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace hcs::sim
