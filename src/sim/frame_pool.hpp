// Thread-local freelist allocator for coroutine frames.
//
// Every blocking operation in the simulator (delay, p2p, collectives, the
// sync algorithms' phases) is a short-lived Task<T> coroutine whose frame
// would otherwise round-trip through malloc/free millions of times per run.
// FramePool recycles those frames through per-thread, size-bucketed
// freelists: allocation is a pointer pop in the steady state, deallocation a
// pointer push, and no locks are involved because each thread owns its own
// cache (runner::TrialRunner runs whole trials per thread, so frames are
// born and die on the same thread).
//
// Layout: each block carries a small header tagging its bucket so sized and
// unsized deallocation both work; frames larger than the largest bucket fall
// through to ::operator new/delete untouched.  Blocks freed on a different
// thread than the one that allocated them simply land in the freeing
// thread's cache — correct, just not what the layout is optimized for.
#pragma once

#include <cstddef>
#include <new>

namespace hcs::sim::detail {

class FramePool {
 public:
  static void* allocate(std::size_t bytes) {
    const std::size_t total = bytes + kHeader;
    const std::size_t bucket = (total + kGranularity - 1) / kGranularity;
    if (bucket >= kBuckets) return finish(::operator new(total), 0);  // 0 = unpooled
    Cache& c = cache();
    if (void* p = c.free[bucket]) {
      c.free[bucket] = *static_cast<void**>(p);
      return finish(p, bucket);
    }
    return finish(::operator new(bucket * kGranularity), bucket);
  }

  static void deallocate(void* user) noexcept {
    void* p = static_cast<char*>(user) - kHeader;
    const std::size_t bucket = *static_cast<std::size_t*>(p);
    if (bucket == 0) {
      ::operator delete(p);
      return;
    }
    Cache& c = cache();
    *static_cast<void**>(p) = c.free[bucket];
    c.free[bucket] = p;
  }

 private:
  // The header must preserve the alignment ::operator new guarantees, since
  // coroutine frames assume at most that from their promise's operator new.
  static constexpr std::size_t kHeader = alignof(std::max_align_t);
  static constexpr std::size_t kGranularity = 64;  // one cache line per step
  static constexpr std::size_t kBuckets = 33;      // pooled blocks up to 2 KiB

  struct Cache {
    void* free[kBuckets] = {};
    ~Cache() {
      for (void* head : free) {
        while (head != nullptr) {
          void* next = *static_cast<void**>(head);
          ::operator delete(head);
          head = next;
        }
      }
    }
  };

  static Cache& cache() noexcept {
    static thread_local Cache c;
    return c;
  }

  static void* finish(void* p, std::size_t bucket) noexcept {
    *static_cast<std::size_t*>(p) = bucket;
    return static_cast<char*>(p) + kHeader;
  }
};

}  // namespace hcs::sim::detail
