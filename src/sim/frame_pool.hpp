// Slab-backed, thread-cached allocator for coroutine frames.
//
// Every blocking operation in the simulator (delay, p2p, collectives, the
// sync algorithms' phases) is a short-lived Task<T> coroutine whose frame
// would otherwise round-trip through malloc/free millions of times per run.
// Two layers keep that cheap at 100k+ ranks:
//
// * **Thread caches** (FramePool): per-thread, size-bucketed freelists.
//   Allocation is a pointer pop in the steady state, deallocation a pointer
//   push, no locks — each thread owns its cache (runner::TrialRunner runs
//   whole trials per thread and the PDES shard workers own their shards, so
//   frames are born and die on the same thread).
// * **A global slab arena** (SlabArena): when a thread cache misses, it
//   refills a whole batch of blocks carved from 64 KiB size-classed slabs
//   under one mutex acquisition, instead of one ::operator new per frame.
//   A 100k-rank World's frames land contiguously instead of scattered
//   across the heap, and the startup cost is one slab allocation per
//   ~64 KiB of frames rather than per frame.  Dying threads hand their
//   chains back to the arena, so shard workers from one window recycle
//   into the next.  Slabs live until process exit (freed by the arena
//   destructor, keeping leak checkers quiet); peak footprint is visible to
//   benches via FramePool::reserved_bytes().
//
// Layout: each block carries a small header tagging its bucket so sized and
// unsized deallocation both work; frames larger than the largest bucket fall
// through to ::operator new/delete untouched.  Blocks freed on a different
// thread than the one that allocated them simply land in the freeing
// thread's cache — correct, just not what the layout is optimized for.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <new>
#include <vector>

namespace hcs::sim::detail {

class SlabArena {
 public:
  static SlabArena& instance() {
    static SlabArena arena;
    return arena;
  }

  // Pops up to `want` blocks of size `block_bytes` as a chain linked through
  // each block's first word; carves a fresh slab when the recycled chains run
  // dry.  Always returns at least one block.
  void* take_chain(std::size_t bucket, std::size_t block_bytes,
                   std::size_t want) {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_[bucket] == nullptr) carve_slab(bucket, block_bytes);
    void* head = free_[bucket];
    void* tail = head;
    for (std::size_t i = 1; i < want; ++i) {
      void* next = *static_cast<void**>(tail);
      if (next == nullptr) break;
      tail = next;
    }
    free_[bucket] = *static_cast<void**>(tail);
    *static_cast<void**>(tail) = nullptr;
    return head;
  }

  // Returns a chain of blocks (linked through their first word) to the
  // arena's recycled list — used by thread caches on thread exit.
  void give_chain(std::size_t bucket, void* head) noexcept {
    if (head == nullptr) return;
    void* tail = head;
    while (*static_cast<void**>(tail) != nullptr) {
      tail = *static_cast<void**>(tail);
    }
    std::lock_guard<std::mutex> lock(mu_);
    *static_cast<void**>(tail) = free_[bucket];
    free_[bucket] = head;
  }

  std::size_t bytes_reserved() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kBuckets = 33;  // pooled blocks up to 2 KiB
  static constexpr std::size_t kSlabBytes = std::size_t{1} << 16;  // 64 KiB

 private:
  SlabArena() = default;
  ~SlabArena() {
    for (void* slab : slabs_) ::operator delete(slab);
  }
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  // Called under mu_.  One slab serves kSlabBytes/block_bytes frames; all of
  // them join the recycled chain at once.
  void carve_slab(std::size_t bucket, std::size_t block_bytes) {
    const std::size_t count = kSlabBytes / block_bytes > 0
                                  ? kSlabBytes / block_bytes
                                  : std::size_t{1};
    const std::size_t slab_bytes = count * block_bytes;
    char* slab = static_cast<char*>(::operator new(slab_bytes));
    slabs_.push_back(slab);
    bytes_.fetch_add(slab_bytes, std::memory_order_relaxed);
    for (std::size_t i = 0; i < count; ++i) {
      void* block = slab + i * block_bytes;
      *static_cast<void**>(block) = free_[bucket];
      free_[bucket] = block;
    }
  }

  std::mutex mu_;
  std::vector<void*> slabs_;
  void* free_[kBuckets] = {};
  std::atomic<std::size_t> bytes_{0};
};

class FramePool {
 public:
  static void* allocate(std::size_t bytes) {
    const std::size_t total = bytes + kHeader;
    const std::size_t bucket = (total + kGranularity - 1) / kGranularity;
    if (bucket >= kBuckets) return finish(::operator new(total), 0);  // 0 = unpooled
    Cache& c = cache();
    if (void* p = c.free[bucket]) {
      c.free[bucket] = *static_cast<void**>(p);
      return finish(p, bucket);
    }
    // Miss: pull a batch from the arena under one lock, keep the rest.
    const std::size_t block_bytes = bucket * kGranularity;
    void* head = SlabArena::instance().take_chain(bucket, block_bytes,
                                                  kRefillBatch);
    c.free[bucket] = *static_cast<void**>(head);
    return finish(head, bucket);
  }

  static void deallocate(void* user) noexcept {
    void* p = static_cast<char*>(user) - kHeader;
    const std::size_t bucket = *static_cast<std::size_t*>(p);
    if (bucket == 0) {
      ::operator delete(p);
      return;
    }
    Cache& c = cache();
    *static_cast<void**>(p) = c.free[bucket];
    c.free[bucket] = p;
  }

  /// Total slab bytes the process has carved for pooled frames (never
  /// shrinks; slabs are recycled, not returned).  Benches report this next
  /// to peak RSS so frame-memory growth is visible per scale point.
  static std::size_t reserved_bytes() noexcept {
    return SlabArena::instance().bytes_reserved();
  }

 private:
  // The header must preserve the alignment ::operator new guarantees, since
  // coroutine frames assume at most that from their promise's operator new.
  // Slab carving keeps it: blocks are multiples of kGranularity from a
  // max_align_t-aligned slab base.
  static constexpr std::size_t kHeader = alignof(std::max_align_t);
  static constexpr std::size_t kGranularity = 64;  // one cache line per step
  static constexpr std::size_t kBuckets = SlabArena::kBuckets;
  static constexpr std::size_t kRefillBatch = 32;

  struct Cache {
    void* free[kBuckets] = {};
    // Thread exit: hand every chain back to the arena so the next worker
    // generation reuses these frames.  Thread-storage objects are destroyed
    // before static-storage ones, so the arena is still alive here.
    ~Cache() {
      for (std::size_t b = 0; b < kBuckets; ++b) {
        if (free[b] != nullptr) SlabArena::instance().give_chain(b, free[b]);
      }
    }
  };

  static Cache& cache() noexcept {
    static thread_local Cache c;
    return c;
  }

  static void* finish(void* p, std::size_t bucket) noexcept {
    *static_cast<std::size_t*>(p) = bucket;
    return static_cast<char*>(p) + kHeader;
  }
};

}  // namespace hcs::sim::detail
