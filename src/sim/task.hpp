// Lazily-started coroutine task used for every simulated process and every
// blocking operation inside the simulator.
//
// Task<T> is a single-owner, move-only handle.  `co_await task` starts the
// child and suspends the parent until the child completes; completion resumes
// the parent via symmetric transfer, so arbitrarily deep call chains use O(1)
// native stack.  Exceptions propagate through co_await.
//
// A Task must either be co_awaited or handed to Simulation::spawn; destroying
// a started-but-unfinished Task destroys the whole child chain.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "sim/frame_pool.hpp"

namespace hcs::sim {

template <typename T>
class Task;

namespace detail {

class TaskPromiseBase {
 public:
  // Route every Task frame through the thread-local freelist: blocking-op
  // coroutines are created and destroyed millions of times per simulation,
  // and this turns the malloc/free round-trip into two pointer moves.
  static void* operator new(std::size_t bytes) { return FramePool::allocate(bytes); }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept { FramePool::deallocate(p); }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation_;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void set_continuation(std::coroutine_handle<> cont) noexcept { continuation_ = cont; }

  void unhandled_exception() noexcept { exception_ = std::current_exception(); }

  void rethrow_if_exception() {
    if (exception_) std::rethrow_exception(exception_);
  }

 private:
  std::coroutine_handle<> continuation_ = nullptr;
  std::exception_ptr exception_ = nullptr;
};

template <typename T>
class TaskPromise final : public TaskPromiseBase {
 public:
  Task<T> get_return_object() noexcept;
  void return_value(T value) noexcept { value_ = std::move(value); }
  T take_value() {
    rethrow_if_exception();
    return std::move(value_);
  }

 private:
  T value_{};
};

template <>
class TaskPromise<void> final : public TaskPromiseBase {
 public:
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
  void take_value() { rethrow_if_exception(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return handle_ != nullptr; }
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Releases ownership of the coroutine handle (used by Simulation::spawn).
  handle_type release() noexcept { return std::exchange(handle_, nullptr); }

  struct Awaiter {
    handle_type child;
    bool await_ready() const noexcept { return !child || child.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
      child.promise().set_continuation(parent);
      return child;  // symmetric transfer: start the child now
    }
    T await_resume() { return child.promise().take_value(); }
  };

  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  handle_type handle_ = nullptr;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>{std::coroutine_handle<TaskPromise<T>>::from_promise(*this)};
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>{std::coroutine_handle<TaskPromise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace hcs::sim
