// Single-threaded discrete-event scheduler.
//
// Processes are Task<void> coroutines spawned before (or during) run().  A
// process advances virtual time only by awaiting `delay()` or operations
// built on it; run() drains the event queue until no events remain or an
// event budget is exceeded.  Everything is deterministic for a fixed seed.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace hcs::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const noexcept { return now_; }
  Rng& rng() noexcept { return rng_; }

  /// Schedules `handle` to resume at absolute time `t` (>= now()).  Inline:
  /// together with EventQueue::push this is the schedule half of the
  /// per-event hot path (bench_micro_sim / BM_SimulationDelayChain).
  void schedule_at(Time t, std::coroutine_handle<> handle) {
    queue_.push(t < now_ ? now_ : t, handle);
  }

  /// Awaitable that suspends the calling coroutine for `dt` (>= 0) seconds.
  /// Even dt == 0 goes through the event queue, preserving FIFO fairness.
  auto delay(Time dt) {
    struct Awaiter {
      Simulation& sim;
      Time dt;
      bool await_ready() const noexcept { return false; }
      // Pushes directly instead of going through schedule_at: dt >= 0 is
      // checked below, so the t < now_ clamp can never fire on this path.
      void await_suspend(std::coroutine_handle<> h) { sim.queue_.push(sim.now_ + dt, h); }
      void await_resume() const noexcept {}
    };
    if (dt < 0) throw std::invalid_argument("Simulation::delay: negative duration");
    return Awaiter{*this, dt};
  }

  /// Detaches `task` as a top-level process.  It starts running immediately
  /// (until its first suspension); completion is tracked by run().
  void spawn(Task<void> task);

  /// Runs until the event queue is empty.  Throws if a process threw, or if
  /// more than `max_events` events fire (runaway guard).
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Windowed execution for the sharded World engine: processes events with
  /// time strictly below `window_end` (ties with `window_end` stay queued for
  /// the next window).  Never throws — errors (including the event-budget
  /// guard, compared against lifetime events_processed() like run()) are
  /// parked for take_error() so shard worker threads can't unwind across the
  /// barrier.  Reports no metrics; the engine reports once per World::run.
  void run_window(Time window_end, std::uint64_t max_events = UINT64_MAX);

  /// True when no events are queued (a shard with nothing scheduled).
  bool idle() const noexcept { return queue_.empty(); }

  /// Timestamp of the earliest queued event; only valid when !idle().
  Time next_event_time() const noexcept { return queue_.next_time(); }

  /// Hands back (and clears) the first process/budget error recorded by
  /// run_window, dropping all still-queued events — mirroring run()'s
  /// throw-path cleanup.  Returns nullptr when no error is pending.
  std::exception_ptr take_error();

  std::uint64_t events_processed() const noexcept { return events_processed_; }
  std::size_t processes_spawned() const noexcept { return spawned_; }
  std::size_t processes_finished() const noexcept { return finished_; }

  // Internal: called by the spawn wrapper coroutine (public only because the
  // wrapper's nested promise type cannot be befriended before definition).
  // on_root_started returns the root's slot in live_roots_; the promise keeps
  // it current across swap-and-pop removals so on_root_finished is O(1)
  // instead of a linear scan (quadratic teardown for many processes).
  std::size_t on_root_started(std::coroutine_handle<> handle);
  void on_root_finished(std::size_t live_index, std::exception_ptr error);

  struct RootFrame;  // wrapper coroutine that notifies completion (internal)

 private:
  Time now_ = 0.0;
  EventQueue queue_;
  Rng rng_;
  std::uint64_t events_processed_ = 0;
  std::size_t spawned_ = 0;
  std::size_t finished_ = 0;
  std::exception_ptr first_error_ = nullptr;
  std::vector<std::coroutine_handle<>> live_roots_;
};

}  // namespace hcs::sim
