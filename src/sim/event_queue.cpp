#include "sim/event_queue.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace hcs::sim {

namespace {
std::atomic<QueueImpl> g_default_queue_impl{QueueImpl::kAdaptive};
}  // namespace

void set_default_queue_impl(QueueImpl impl) noexcept {
  g_default_queue_impl.store(impl, std::memory_order_relaxed);
}

QueueImpl default_queue_impl() noexcept {
  return g_default_queue_impl.load(std::memory_order_relaxed);
}

std::optional<QueueImpl> queue_impl_from_string(std::string_view name) noexcept {
  if (name == "heap") return QueueImpl::kHeap;
  if (name == "ladder") return QueueImpl::kLadder;
  if (name == "adaptive") return QueueImpl::kAdaptive;
  return std::nullopt;
}

const char* queue_impl_name(QueueImpl impl) noexcept {
  switch (impl) {
    case QueueImpl::kHeap:
      return "heap";
    case QueueImpl::kLadder:
      return "ladder";
    case QueueImpl::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

// Out of line on purpose: sift-down only runs for pops on a populated heap,
// while push/pop stay inline in the header for the hot path.
//
// Bottom-up variant (the std::pop_heap trick): the displaced event comes
// from the end of the heap, so it almost always belongs near a leaf again.
// Walking the hole straight to the bottom and then sifting the event back up
// skips the against-the-event comparison at every level, cutting average
// comparisons by ~a quarter on large heaps.
void EventQueue::sift_down(std::vector<Event>& v, std::size_t hole,
                           Event ev) noexcept {
  const std::size_t n = v.size();
  const std::size_t start = hole;
  // Phase 1: promote the earliest of up to four adjacent children into the
  // hole until the hole reaches a leaf.
  std::size_t first_child = hole * kArity + 1;
  while (first_child < n) {
    std::size_t best = first_child;
    const std::size_t end = first_child + kArity < n ? first_child + kArity : n;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (before(v[c], v[best])) best = c;
    }
    v[hole] = v[best];
    hole = best;
    first_child = hole * kArity + 1;
  }
  // Phase 2: sift the displaced event back up to its true position (usually
  // zero or one level).
  while (hole > start) {
    const std::size_t parent = (hole - 1) / kArity;
    if (!before(ev, v[parent])) break;
    v[hole] = v[parent];
    hole = parent;
  }
  v[hole] = ev;
}

void EventQueue::heapify(std::vector<Event>& v) noexcept {
  if (v.size() < 2) return;
  for (std::size_t i = (v.size() - 2) / kArity + 1; i-- > 0;) {
    sift_down(v, i, v[i]);
  }
}

void EventQueue::shrink(std::vector<Event>& v) {
  std::vector<Event> smaller;
  smaller.reserve(std::max<std::size_t>(v.size() * 2, 64));
  smaller.insert(smaller.end(), v.begin(), v.end());
  v.swap(smaller);
}

void EventQueue::clear() noexcept {
  heap_ = {};
  top_ = {};
  rungs_ = {};
  bottom_ = {};
  ladder_size_ = 0;
  next_seq_ = 0;
  top_start_ = std::numeric_limits<Time>::lowest();
  ladder_active_ = configured_ == QueueImpl::kLadder;
}

std::size_t EventQueue::backing_capacity() const noexcept {
  std::size_t cap = heap_.capacity() + top_.capacity() + bottom_.capacity();
  for (const Rung& r : rungs_) {
    for (const auto& bucket : r.buckets) cap += bucket.capacity();
  }
  return cap;
}

// The adaptive switch: dump the heap array — order is irrelevant — into the
// ladder's unsorted top tier and let the first refill spread it into rungs.
// O(n) moves, no comparisons.
void EventQueue::migrate_to_ladder() {
  ladder_size_ = heap_.size();
  top_ = std::move(heap_);
  heap_ = {};
  // lowest(): everything (rungs and bottom are empty) accumulates in top
  // until the first transfer establishes a real threshold.
  top_start_ = std::numeric_limits<Time>::lowest();
  ladder_active_ = true;
}

void EventQueue::ladder_push(const Event& ev) {
  ++ladder_size_;
  if (ev.time >= top_start_) {
    top_.push_back(ev);
    return;
  }
  // Walk rungs coarsest-first.  An event lands in the first rung whose
  // not-yet-drained bucket range covers it; otherwise it keeps descending
  // and ultimately joins the bottom heap.  Bucket edges are FP-monotone in
  // time, so two events can never invert across a bucket boundary.
  for (Rung& r : rungs_) {
    const std::size_t nb = r.buckets.size();
    const double off = (ev.time - r.start) / r.width;
    std::size_t idx;
    if (!(off > 0)) {
      idx = 0;
    } else if (off >= static_cast<double>(nb)) {
      idx = nb - 1;
    } else {
      idx = static_cast<std::size_t>(off);
    }
    if (idx >= r.cur) {
      r.buckets[idx].push_back(ev);
      return;
    }
  }
  heap_push(bottom_, ev);
}

EventQueue::Event EventQueue::ladder_pop() {
  if (bottom_.empty()) refill_bottom();
  Event top = bottom_.front();
  if (bottom_.size() > 1) {
    const Event last = bottom_.back();
    bottom_.pop_back();
    sift_down(bottom_, 0, last);
  } else {
    bottom_.pop_back();
  }
  --ladder_size_;
  maybe_shrink(bottom_);
  return top;
}

Time EventQueue::ladder_next_time() noexcept {
  if (bottom_.empty()) refill_bottom();
  return bottom_.front().time;
}

// Moves the next batch of events into the (empty) bottom heap: drain the
// innermost rung's next bucket, subdividing oversized buckets into fresh
// rungs, and fall back to spreading the top tier when the rungs run dry.
void EventQueue::refill_bottom() {
  while (bottom_.empty()) {
    if (!rungs_.empty()) {
      Rung& r = rungs_.back();
      const std::size_t nb = r.buckets.size();
      while (r.cur < nb && r.buckets[r.cur].empty()) ++r.cur;
      if (r.cur == nb) {
        rungs_.pop_back();
        continue;
      }
      std::vector<Event> bucket = std::move(r.buckets[r.cur]);
      ++r.cur;  // before any spawn: pushes must now route below this bucket
      if (bucket.size() > kSpawnThreshold && try_spawn_rung(bucket)) {
        continue;
      }
      bottom_ = std::move(bucket);
      heapify(bottom_);
    } else if (!top_.empty()) {
      transfer_top();
    } else {
      return;  // queue empty; callers guard on that
    }
  }
}

void EventQueue::transfer_top() {
  std::vector<Event> moved = std::move(top_);
  top_ = {};
  Time mx = moved.front().time;
  for (const Event& e : moved) mx = std::max(mx, e.time);
  // Events pushed from now on at or above mx stay in the top tier.  Events
  // already at mx went into the new rung's last bucket with strictly smaller
  // sequence numbers than any future push, so draining the rung before the
  // next transfer preserves the (time, seq) order.
  top_start_ = mx;
  if (!try_spawn_rung(moved)) {
    bottom_ = std::move(moved);
    heapify(bottom_);
  }
}

bool EventQueue::try_spawn_rung(std::vector<Event>& events) {
  if (rungs_.size() >= kMaxRungs) return false;
  Time mn = events.front().time;
  Time mx = mn;
  for (const Event& e : events) {
    mn = std::min(mn, e.time);
    mx = std::max(mx, e.time);
  }
  if (!(mx > mn)) return false;  // all-equal timestamps cannot subdivide
  const std::size_t nb = std::clamp(events.size(), kMinBuckets, kMaxBuckets);
  const double width = (mx - mn) / static_cast<double>(nb);
  if (!(width > 0) || !std::isfinite(width)) return false;
  Rung r;
  r.start = mn;
  r.width = width;
  r.cur = 0;
  r.buckets.resize(nb);
  for (const Event& e : events) {
    const double off = (e.time - mn) / width;
    std::size_t idx;
    if (!(off > 0)) {
      idx = 0;
    } else if (off >= static_cast<double>(nb)) {
      idx = nb - 1;
    } else {
      idx = static_cast<std::size_t>(off);
    }
    r.buckets[idx].push_back(e);
  }
  rungs_.push_back(std::move(r));
  return true;
}

}  // namespace hcs::sim
