#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace hcs::sim {

void EventQueue::push(Time time, std::coroutine_handle<> handle) {
  heap_.push_back(Event{time, next_seq_++, handle});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

Time EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Event EventQueue::pop() {
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Event ev = heap_.back();
  heap_.pop_back();
  return ev;
}

}  // namespace hcs::sim
