#include "sim/event_queue.hpp"

namespace hcs::sim {

// Out of line on purpose: sift-down only runs for pops on a populated heap,
// while push/pop stay inline in the header for the hot path.
//
// Bottom-up variant (the std::pop_heap trick): the displaced event comes
// from the end of the heap, so it almost always belongs near a leaf again.
// Walking the hole straight to the bottom and then sifting the event back up
// skips the against-the-event comparison at every level, cutting average
// comparisons by ~a quarter on large heaps.
void EventQueue::sift_down(std::size_t hole, Event ev) noexcept {
  const std::size_t n = heap_.size();
  const std::size_t start = hole;
  // Phase 1: promote the earliest of up to four adjacent children into the
  // hole until the hole reaches a leaf.
  std::size_t first_child = hole * kArity + 1;
  while (first_child < n) {
    std::size_t best = first_child;
    const std::size_t end = first_child + kArity < n ? first_child + kArity : n;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    heap_[hole] = heap_[best];
    hole = best;
    first_child = hole * kArity + 1;
  }
  // Phase 2: sift the displaced event back up to its true position (usually
  // zero or one level).
  while (hole > start) {
    const std::size_t parent = (hole - 1) / kArity;
    if (!before(ev, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = ev;
}

}  // namespace hcs::sim
