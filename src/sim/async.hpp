// Futures over tasks: start a Task now, await its result later.
//
// async() eagerly spawns the task as a simulation process and returns a
// Future; co_awaiting the Future suspends until the task completes (or
// returns immediately if it already has).  This is the building block for
// nonblocking collectives (MPI_Ibarrier/MPI_Iallreduce analogues, the
// NBCBench use case the paper's related work discusses):
//
//   auto req = sim::async(ctx.sim(), simmpi::barrier(comm));
//   ... overlap computation ...
//   co_await req;   // MPI_Wait
//
// Note on collectives: async starts the task eagerly, so the communicator's
// collective sequence number advances at the async() call — all ranks must
// issue their (nonblocking and blocking) collectives in the same order, as
// in MPI.
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace hcs::sim {

namespace detail {

template <typename T>
struct FutureValue {
  std::optional<T> value;
  void set(T v) { value.emplace(std::move(v)); }
  T take() { return std::move(*value); }
};

template <>
struct FutureValue<void> {
  void set() {}
  void take() {}
};

template <typename T>
struct FutureState {
  Simulation* sim = nullptr;
  bool done = false;
  std::exception_ptr error = nullptr;
  std::coroutine_handle<> waiter = nullptr;
  FutureValue<T> storage;
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Future {
 public:
  explicit Future(std::shared_ptr<detail::FutureState<T>> state) : state_(std::move(state)) {}

  bool done() const { return state_->done; }

  auto operator co_await() const {
    struct Awaiter {
      std::shared_ptr<detail::FutureState<T>> state;
      bool await_ready() const noexcept { return state->done; }
      void await_suspend(std::coroutine_handle<> h) { state->waiter = h; }
      T await_resume() {
        if (state->error) std::rethrow_exception(state->error);
        return state->storage.take();
      }
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

namespace detail {

template <typename T>
Task<void> run_async(std::shared_ptr<FutureState<T>> state, Task<T> task) {
  try {
    if constexpr (std::is_void_v<T>) {
      co_await task;
      state->storage.set();
    } else {
      state->storage.set(co_await task);
    }
  } catch (...) {
    state->error = std::current_exception();
  }
  state->done = true;
  if (state->waiter) {
    state->sim->schedule_at(state->sim->now(), state->waiter);
    state->waiter = nullptr;
  }
}

}  // namespace detail

/// Starts `task` as a detached simulation process; the returned Future
/// completes when the task does.  Exceptions surface at the co_await.
template <typename T>
Future<T> async(Simulation& sim, Task<T> task) {
  auto state = std::make_shared<detail::FutureState<T>>();
  state->sim = &sim;
  sim.spawn(detail::run_async<T>(state, std::move(task)));
  return Future<T>(state);
}

}  // namespace hcs::sim
