#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>

#include "trace/metrics.hpp"

namespace hcs::sim {

// Wrapper coroutine that owns a spawned Task and notifies the simulation on
// completion.  It starts eagerly (initial_suspend never) and self-destroys in
// final_suspend, after handing its error (if any) back to the Simulation.
struct Simulation::RootFrame {
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    Simulation* sim;
    std::size_t live_index = 0;  // slot in live_roots_; kept current on swaps
    std::exception_ptr error = nullptr;

    static void* operator new(std::size_t bytes) { return detail::FramePool::allocate(bytes); }
    static void operator delete(void* p) noexcept { detail::FramePool::deallocate(p); }
    static void operator delete(void* p, std::size_t) noexcept { detail::FramePool::deallocate(p); }

    promise_type(Simulation& s, Task<void>&&) noexcept : sim(&s) {}

    RootFrame get_return_object() noexcept {
      live_index = sim->on_root_started(Handle::from_promise(*this));
      return {};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(Handle h) noexcept {
        Simulation* sim = h.promise().sim;
        std::exception_ptr error = h.promise().error;
        const std::size_t live_index = h.promise().live_index;
        h.destroy();
        sim->on_root_finished(live_index, error);
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };
};

namespace {
Simulation::RootFrame run_root(Simulation& sim, Task<void>&& task) {
  (void)sim;
  const Task<void> owned = std::move(task);
  co_await owned;
}
}  // namespace

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

Simulation::~Simulation() {
  queue_.clear();
  // Destroy any processes that never finished; this recursively destroys
  // their suspended child-task chains.
  for (auto h : live_roots_) h.destroy();
}

void Simulation::spawn(Task<void> task) { run_root(*this, std::move(task)); }

std::size_t Simulation::on_root_started(std::coroutine_handle<> handle) {
  ++spawned_;
  live_roots_.push_back(handle);
  return live_roots_.size() - 1;
}

void Simulation::on_root_finished(std::size_t live_index, std::exception_ptr error) {
  ++finished_;
  assert(live_index < live_roots_.size());
  // Swap-and-pop: O(1) removal.  The root moved into the vacated slot must
  // learn its new index, which the RootFrame promise stores.
  const std::size_t last = live_roots_.size() - 1;
  if (live_index != last) {
    live_roots_[live_index] = live_roots_[last];
    RootFrame::Handle::from_address(live_roots_[live_index].address()).promise().live_index =
        live_index;
  }
  live_roots_.pop_back();
  if (error && !first_error_) first_error_ = error;
}

void Simulation::run(std::uint64_t max_events) {
  // A process may have failed before its first suspension (spawn is eager).
  if (first_error_) {
    queue_.clear();
    auto error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
  // Metrics are reported once per run(), never inside the per-event loop:
  // bench_micro_sim guards the loop's per-event cost.
  const std::uint64_t events_before = events_processed_;
  while (!queue_.empty()) {
    if (events_processed_ >= max_events) {
      throw std::runtime_error("Simulation::run: event budget exceeded (" +
                               std::to_string(max_events) + " events)");
    }
    const EventQueue::Event ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ++events_processed_;
    ev.handle.resume();
    if (first_error_) {
      queue_.clear();
      auto error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
  HCS_METRIC_ADD("sim.events_processed", events_processed_ - events_before);
  HCS_METRIC_SET("sim.virtual_time_s", now_);
  HCS_METRIC_SET("sim.processes_spawned", static_cast<double>(spawned_));
}

void Simulation::run_window(Time window_end, std::uint64_t max_events) {
  if (first_error_) return;  // collected by take_error() in the serial phase
  while (!queue_.empty() && queue_.next_time() < window_end) {
    if (events_processed_ >= max_events) {
      first_error_ = std::make_exception_ptr(
          std::runtime_error("Simulation::run: event budget exceeded (" +
                             std::to_string(max_events) + " events)"));
      return;
    }
    const EventQueue::Event ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ++events_processed_;
    ev.handle.resume();
    if (first_error_) return;
  }
}

std::exception_ptr Simulation::take_error() {
  if (!first_error_) return nullptr;
  queue_.clear();
  auto error = first_error_;
  first_error_ = nullptr;
  return error;
}

}  // namespace hcs::sim
