// Time-ordered event queue.
//
// Events at equal timestamps fire in insertion order (sequence-number
// tie-break) so runs are bit-deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace hcs::sim {

class EventQueue {
 public:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
  };

  void push(Time time, std::coroutine_handle<> handle);
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Earliest event time; queue must be non-empty.
  Time next_time() const;

  /// Removes and returns the earliest event; queue must be non-empty.
  Event pop();

  /// Drops all pending events without resuming them.  Coroutine frames are
  /// owned by their parents / root wrappers, so no frames are destroyed here.
  void clear() noexcept { heap_.clear(); }

 private:
  static bool later(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hcs::sim
