// Time-ordered event queue.
//
// Events at equal timestamps fire in insertion order (sequence-number
// tie-break) so runs are bit-deterministic.
//
// Implemented as an implicit 4-ary min-heap: compared with the binary heap
// it halves the tree depth, so a push/pop pair touches fewer cache lines and
// sift-down decides among four children that share one or two lines (an
// Event is 24 bytes).  bench_micro_sim (BM_EventQueuePushPop) guards the
// per-event cost; the deterministic (time, seq) ordering contract is
// unchanged and asserted by tests/sim/test_event_queue.cpp.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace hcs::sim {

class EventQueue {
 public:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
  };

  // push/pop are defined inline: they sit on the simulator's per-event hot
  // path and must inline into Simulation::run and the delay awaiter.
  void push(Time time, std::coroutine_handle<> handle) {
    const Event ev{time, next_seq_++, handle};
    // Sift up with a moving hole: write the new event only once, into its
    // final slot, instead of swapping down the path.  The no-move case (new
    // event belongs at the end — always true for a near-empty queue) keeps
    // the single store done by push_back.
    std::size_t hole = heap_.size();
    heap_.push_back(ev);
    if (hole > 0 && before(ev, heap_[(hole - 1) / kArity])) {
      do {
        const std::size_t parent = (hole - 1) / kArity;
        heap_[hole] = heap_[parent];
        hole = parent;
      } while (hole > 0 && before(ev, heap_[(hole - 1) / kArity]));
      heap_[hole] = ev;
    }
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Earliest event time; queue must be non-empty.
  Time next_time() const noexcept { return heap_.front().time; }

  /// Removes and returns the earliest event; queue must be non-empty.
  Event pop() {
    Event top = heap_.front();
    if (heap_.size() > 1) {
      const Event last = heap_.back();
      heap_.pop_back();
      sift_down(0, last);
    } else {
      heap_.pop_back();  // single element: no displaced event to re-sift
    }
    return top;
  }

  /// Drops all pending events without resuming them.  Coroutine frames are
  /// owned by their parents / root wrappers, so no frames are destroyed here.
  /// Also resets the tie-break sequence, so a reused queue behaves exactly
  /// like a fresh one.
  void clear() noexcept {
    heap_.clear();
    next_seq_ = 0;
  }

 private:
  static constexpr std::size_t kArity = 4;

  static bool before(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_down(std::size_t hole, Event ev) noexcept;

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hcs::sim
