// Time-ordered event queue.
//
// Events at equal timestamps fire in insertion order (sequence-number
// tie-break) so runs are bit-deterministic.  (time, seq) is a *total* order,
// so every correct implementation pops the exact same sequence — which is
// what lets two engines coexist behind one interface:
//
// * **4-ary implicit min-heap** (the default engine below ~32k pending
//   events): compared with the binary heap it halves the tree depth, so a
//   push/pop pair touches fewer cache lines and sift-down decides among four
//   children that share one or two lines (an Event is 24 bytes).  Pops use
//   the bottom-up heapsort trick.  O(log n) per op — the log starts to bite
//   once a 100k-rank World keeps 100k+ events pending.
// * **Ladder queue** (Tang et al.): an unsorted far-future "top" tier, a
//   stack of bucket-array rungs that subdivide lazily as buckets drain, and
//   a small 4-ary heap as the "bottom" tier that serves pops.  Amortized
//   O(1) per event for the timestamp distributions a simulator produces.
//   Determinism needs no extra care: the bottom heap orders by the same
//   (time, seq) total order, and bucketing by time can never reorder two
//   events across the (time, seq) comparison.
//
// The engine is chosen per-queue (QueueImpl) with a process-wide default
// (set_default_queue_impl, e.g. from the shared --queue bench flag).
// kAdaptive starts on the heap and migrates to the ladder the first time the
// population crosses kAdaptiveSwitch — small sims keep the heap's tiny
// constants, huge sims get O(1).  bench_micro_sim (BM_EventQueuePushPop,
// BM_EventQueueHold) measures both engines from 1k to 10M pending events;
// tests/sim/test_event_queue.cpp asserts the ordering contract on every
// engine and tests/scale/test_queue_differential.cpp diffs heap vs. ladder
// pop sequences over millions of randomized mixed operations.
#pragma once

#include <coroutine>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace hcs::sim {

/// Event-queue engine selection.
enum class QueueImpl : std::uint8_t {
  kHeap,      ///< always the 4-ary heap
  kLadder,    ///< always the ladder queue
  kAdaptive,  ///< heap until kAdaptiveSwitch events are pending, then ladder
};

/// Process-wide default engine for newly constructed queues (kAdaptive until
/// overridden).  Benches route the shared --queue / HCLOCKSYNC_QUEUE flag
/// here before building Worlds.
void set_default_queue_impl(QueueImpl impl) noexcept;
QueueImpl default_queue_impl() noexcept;

/// "heap" / "ladder" / "adaptive" <-> QueueImpl (for flags and reports).
std::optional<QueueImpl> queue_impl_from_string(std::string_view name) noexcept;
const char* queue_impl_name(QueueImpl impl) noexcept;

class EventQueue {
 public:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
  };

  EventQueue() : EventQueue(default_queue_impl()) {}
  explicit EventQueue(QueueImpl impl)
      : configured_(impl), ladder_active_(impl == QueueImpl::kLadder) {}

  // push/pop are defined inline: they sit on the simulator's per-event hot
  // path and must inline into Simulation::run and the delay awaiter.  Only
  // the ladder engine's bodies are out of line.
  void push(Time time, std::coroutine_handle<> handle) {
    const Event ev{time, next_seq_++, handle};
    if (!ladder_active_) {
      heap_push(heap_, ev);
      if (configured_ == QueueImpl::kAdaptive && heap_.size() >= kAdaptiveSwitch) {
        migrate_to_ladder();
      }
      return;
    }
    ladder_push(ev);
  }

  bool empty() const noexcept {
    return ladder_active_ ? ladder_size_ == 0 : heap_.empty();
  }
  std::size_t size() const noexcept {
    return ladder_active_ ? ladder_size_ : heap_.size();
  }

  /// Earliest event time; queue must be non-empty.  For the ladder engine the
  /// peek may have to refill the bottom tier (allocation failure terminates —
  /// acceptable for a simulator that would OOM an instant later anyway).
  Time next_time() const noexcept {
    if (!ladder_active_) return heap_.front().time;
    return const_cast<EventQueue*>(this)->ladder_next_time();
  }

  /// Removes and returns the earliest event; queue must be non-empty.
  Event pop() {
    if (!ladder_active_) {
      Event top = heap_.front();
      if (heap_.size() > 1) {
        const Event last = heap_.back();
        heap_.pop_back();
        sift_down(heap_, 0, last);
      } else {
        heap_.pop_back();  // single element: no displaced event to re-sift
      }
      maybe_shrink(heap_);
      return top;
    }
    return ladder_pop();
  }

  /// Drops all pending events without resuming them.  Coroutine frames are
  /// owned by their parents / root wrappers, so no frames are destroyed here.
  /// Also resets the tie-break sequence and releases backing storage, so a
  /// reused queue behaves exactly like a fresh one.
  void clear() noexcept;

  /// Engine this queue was constructed with.
  QueueImpl configured_impl() const noexcept { return configured_; }
  /// True once the ladder engine is serving (immediately for kLadder,
  /// after the adaptive switch for kAdaptive, never for kHeap).
  bool ladder_active() const noexcept { return ladder_active_; }

  /// Total Event slots of backing storage currently reserved, across every
  /// internal structure.  Diagnostics/tests only: the pop-shrink policy is
  /// asserted with this (a drained queue must not pin a burst's memory).
  std::size_t backing_capacity() const noexcept;

  /// Population at which kAdaptive migrates to the ladder.  bench_micro_sim's
  /// heap-vs-ladder sweep puts the crossover between 16k and 64k pending
  /// events on this container class (BENCH_pr7.json).
  static constexpr std::size_t kAdaptiveSwitch = 32768;

 private:
  static constexpr std::size_t kArity = 4;
  // Shrink policy: after a pop leaves a vector at < 1/4 of a >= 4096-slot
  // capacity, reallocate to 2x the live size.  Amortized O(1) per pop, and a
  // fully drained 10M-event burst ends below 4096 slots (~96 KiB).
  static constexpr std::size_t kShrinkMinCapacity = 4096;
  // Ladder tuning: buckets bigger than kSpawnThreshold subdivide into a
  // sub-rung instead of heapifying into the bottom tier; rung bucket counts
  // are clamped to [kMinBuckets, kMaxBuckets]; kMaxRungs bounds subdivision
  // depth (beyond it everything falls through to the bottom heap).
  static constexpr std::size_t kSpawnThreshold = 512;
  static constexpr std::size_t kMinBuckets = 4;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 16;
  static constexpr std::size_t kMaxRungs = 64;

  static bool before(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Generic 4-ary heap primitives shared by the main heap engine and the
  // ladder's bottom tier (identical comparator => identical pop order).
  static void heap_push(std::vector<Event>& v, const Event& ev) {
    // Sift up with a moving hole: write the new event only once, into its
    // final slot, instead of swapping down the path.  The no-move case (new
    // event belongs at the end — always true for a near-empty queue) keeps
    // the single store done by push_back.
    std::size_t hole = v.size();
    v.push_back(ev);
    if (hole > 0 && before(ev, v[(hole - 1) / kArity])) {
      do {
        const std::size_t parent = (hole - 1) / kArity;
        v[hole] = v[parent];
        hole = parent;
      } while (hole > 0 && before(ev, v[(hole - 1) / kArity]));
      v[hole] = ev;
    }
  }
  static void sift_down(std::vector<Event>& v, std::size_t hole,
                        Event ev) noexcept;
  static void heapify(std::vector<Event>& v) noexcept;
  static void maybe_shrink(std::vector<Event>& v) {
    if (v.capacity() >= kShrinkMinCapacity && v.size() < v.capacity() / 4) {
      shrink(v);
    }
  }
  static void shrink(std::vector<Event>& v);

  // Ladder engine (see file comment).  `top_` holds events with
  // time >= top_start_, unsorted.  `rungs_` is a stack, coarsest first; rung
  // bucket b spans [start + b*width, start + (b+1)*width), buckets below
  // `cur` are drained.  `bottom_` is a 4-ary (time, seq) min-heap serving
  // pops.  Structure order is a class invariant: every event in bottom_
  // precedes every live rung event precedes every top_ event in (time, seq).
  struct Rung {
    Time start;
    double width;
    std::size_t cur;
    std::vector<std::vector<Event>> buckets;
  };

  void migrate_to_ladder();
  void ladder_push(const Event& ev);
  Event ladder_pop();
  Time ladder_next_time() noexcept;
  void refill_bottom();
  void transfer_top();
  // Distributes `events` into a fresh rung appended to rungs_.  Returns
  // false (leaving rungs_ untouched) when the span cannot be subdivided —
  // all-equal timestamps, non-finite span, or rung depth exhausted — in
  // which case the caller heapifies into bottom_ instead.
  bool try_spawn_rung(std::vector<Event>& events);

  QueueImpl configured_;
  bool ladder_active_;
  std::uint64_t next_seq_ = 0;

  std::vector<Event> heap_;  // heap engine storage

  std::vector<Event> top_;
  Time top_start_ = std::numeric_limits<Time>::lowest();
  std::vector<Rung> rungs_;
  std::vector<Event> bottom_;
  std::size_t ladder_size_ = 0;
};

}  // namespace hcs::sim
