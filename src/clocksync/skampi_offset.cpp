#include "clocksync/skampi_offset.hpp"

#include <limits>
#include <stdexcept>

#include "replay/observe.hpp"

namespace hcs::clocksync {

namespace {
constexpr std::int64_t kPingBytes = 8;  // one double on the wire
}

SKaMPIOffset::SKaMPIOffset(int nexchanges) : nexchanges_(nexchanges) {
  if (nexchanges < 1) throw std::invalid_argument("SKaMPIOffset: nexchanges must be >= 1");
}

std::unique_ptr<OffsetAlgorithm> SKaMPIOffset::clone() const {
  return std::make_unique<SKaMPIOffset>(nexchanges_);
}

sim::Task<ClockOffset> SKaMPIOffset::measure_offset(simmpi::Comm& comm, vclock::Clock& clk,
                                                    int p_ref, int client) {
  const int me = comm.rank();
  if (me != p_ref && me != client) {
    throw std::logic_error("SKaMPIOffset: called by a non-participating rank");
  }
  const bool i_am_client = (me == client);
  const int partner = i_am_client ? p_ref : client;
  const simmpi::BurstResult burst =
      co_await comm.pingpong_burst(partner, i_am_client, clk, nexchanges_, kPingBytes);

  ClockOffset result;
  result.lost = burst.lost;
  result.retries = burst.retries;
  if (!i_am_client) co_return result;
  if (burst.samples.empty()) {
    // Every exchange was lost (only possible under fault injection); the
    // caller discards the point and reports the rank degraded.
    result.valid = false;
    result.timestamp = replay::observed_now(comm, clk);
    co_return result;
  }

  double td_min = -std::numeric_limits<double>::infinity();
  double td_max = std::numeric_limits<double>::infinity();
  double min_rtt = std::numeric_limits<double>::infinity();
  for (const simmpi::PingSample& s : burst.samples) {
    td_min = std::max(td_min, s.ref_reply - s.client_recv);
    td_max = std::min(td_max, s.ref_reply - s.client_send);
    min_rtt = std::min(min_rtt, s.client_recv - s.client_send);
  }
  result.offset = 0.5 * (td_min + td_max);
  result.timestamp = replay::observed_now(comm, clk);
  result.min_rtt = min_rtt;
  co_return result;
}

}  // namespace hcs::clocksync
