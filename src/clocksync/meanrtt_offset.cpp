#include "clocksync/meanrtt_offset.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "clocksync/soa.hpp"
#include "replay/observe.hpp"

namespace hcs::clocksync {

namespace {
constexpr std::int64_t kPingBytes = 8;
}

MeanRttOffset::MeanRttOffset(int nexchanges) : nexchanges_(nexchanges) {
  if (nexchanges < 1) throw std::invalid_argument("MeanRttOffset: nexchanges must be >= 1");
}

std::unique_ptr<OffsetAlgorithm> MeanRttOffset::clone() const {
  return std::make_unique<MeanRttOffset>(nexchanges_);
}

sim::Task<ClockOffset> MeanRttOffset::measure_offset(simmpi::Comm& comm, vclock::Clock& clk,
                                                     int p_ref, int client) {
  const int me = comm.rank();
  if (me != p_ref && me != client) {
    throw std::logic_error("MeanRttOffset: called by a non-participating rank");
  }
  const bool i_am_client = (me == client);
  const int partner = i_am_client ? p_ref : client;
  const auto key = std::make_pair(p_ref, client);

  // Measure the RTT once per pair; both sides keep the cache consistent by
  // both participating in the extra burst.
  auto cached = rtt_cache_.find(key);
  ClockOffset result;
  if (cached == rtt_cache_.end()) {
    // One extra warmup exchange: the very first ping-pong of a pair includes
    // the time the partner spent busy elsewhere (e.g. JK's reference serving
    // earlier clients), which would bias the mean RTT by milliseconds.
    // Dropping it matches real measure_rtt implementations.
    const simmpi::BurstResult warmup =
        co_await comm.pingpong_burst(partner, i_am_client, clk, nexchanges_ + 1, kPingBytes);
    result.lost += warmup.lost;
    result.retries += warmup.retries;
    double rtt = 0.0;
    if (i_am_client && warmup.samples.size() >= 2) {
      for (std::size_t i = 1; i < warmup.samples.size(); ++i) {
        rtt += warmup.samples[i].client_recv - warmup.samples[i].client_send;
      }
      rtt /= static_cast<double>(warmup.samples.size() - 1);
    }
    // A warmup burst that lost (almost) every exchange caches rtt == 0; the
    // offset measurements below still work, just without the RTT/2 midpoint
    // correction, and the loss shows up in the rank's sync report.
    cached = rtt_cache_.emplace(key, rtt).first;
  }

  const simmpi::BurstResult burst =
      co_await comm.pingpong_burst(partner, i_am_client, clk, nexchanges_, kPingBytes);
  result.lost += burst.lost;
  result.retries += burst.retries;
  if (!i_am_client) co_return result;
  if (burst.samples.empty()) {
    result.valid = false;
    result.timestamp = replay::observed_now(comm, clk);
    co_return result;
  }

  const double rtt = cached->second;
  // diff = local - ref - rtt/2, i.e. -(offset to reference).
  ObsSoA observations;
  observations.reserve(burst.samples.size());
  double min_rtt = std::numeric_limits<double>::infinity();
  for (const simmpi::PingSample& s : burst.samples) {
    observations.push(s.client_recv, s.client_recv - s.ref_reply - rtt / 2.0);
    min_rtt = std::min(min_rtt, s.client_recv - s.client_send);
  }
  const auto [median_ts, median_diff] = observations.median_by_diff();
  // The paper's time_var is (local - ref): negate to report (ref - local),
  // the convention ClockOffset and the fitted models use.
  result.timestamp = median_ts;
  result.offset = -median_diff;
  result.min_rtt = min_rtt;
  co_return result;
}

}  // namespace hcs::clocksync
