// SoA containers for per-point sync-measurement state.
//
// A 100k-rank sync holds tens of millions of measurement points across the
// live clients.  Keeping each point as a struct-in-a-vector costs a wide
// stride on every pass (median scans, outlier compaction, fitting touch one
// field at a time); these containers store each field contiguously instead.
// The hcs-lint rule `soa-point-state` steers new clocksync code here.
//
// Everything is bit-identical to the struct-of-fields form it replaced:
// selection runs nth_element over the same value sequences with the same
// comparators, so the chosen elements — and therefore every fitted model —
// are unchanged (the bench goldens gate this).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace hcs::clocksync {

/// A client's fit-point table for one learn_clock_model call: timestamp,
/// measured offset and per-point minimum RTT, one array per field.
class FitPointsSoA {
 public:
  void reserve(std::size_t n) {
    timestamps_.reserve(n);
    offsets_.reserve(n);
    min_rtts_.reserve(n);
  }

  void push(double timestamp, double offset, double min_rtt) {
    timestamps_.push_back(timestamp);
    offsets_.push_back(offset);
    min_rtts_.push_back(min_rtt);
  }

  std::size_t size() const noexcept { return timestamps_.size(); }
  bool empty() const noexcept { return timestamps_.empty(); }

  const std::vector<double>& timestamps() const noexcept { return timestamps_; }
  const std::vector<double>& offsets() const noexcept { return offsets_; }
  const std::vector<double>& min_rtts() const noexcept { return min_rtts_; }

  /// Min-RTT outlier rejection (paper §V): drops every point whose minimum
  /// RTT exceeds twice the median of the per-point minima (plus epsilon),
  /// compacting all three arrays in place.  No-op below four points.
  /// Returns the number of points rejected.
  std::size_t compact_by_min_rtt();

 private:
  std::vector<double> timestamps_;
  std::vector<double> offsets_;
  std::vector<double> min_rtts_;
};

/// MeanRttOffset's per-burst observation table: the client-side receive
/// timestamp and the midpoint-corrected clock difference per exchange.
class ObsSoA {
 public:
  void reserve(std::size_t n) {
    timestamps_.reserve(n);
    diffs_.reserve(n);
  }

  void push(double timestamp, double diff) {
    timestamps_.push_back(timestamp);
    diffs_.push_back(diff);
  }

  std::size_t size() const noexcept { return timestamps_.size(); }

  /// (timestamp, diff) of the median-by-diff observation — the element a
  /// nth_element over (diff, timestamp) records would select.
  std::pair<double, double> median_by_diff() const;

 private:
  std::vector<double> timestamps_;
  std::vector<double> diffs_;
};

}  // namespace hcs::clocksync
