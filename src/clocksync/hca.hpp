// HCA (paper [Hunold & Carpen-Amarie 2015]).
//
// HCA2's tree + merge + scatter, followed by an extra round in which the
// root re-measures and adjusts the clock offset (intercept) of every other
// process individually.  The adjustment makes the algorithm O(p) overall,
// "still often fast enough in practice" per the paper, and is the feature
// that distinguishes HCA from HCA2.
#pragma once

#include "clocksync/hca2.hpp"

namespace hcs::clocksync {

class HCASync final : public HCA2Sync {
 public:
  HCASync(SyncConfig cfg, std::unique_ptr<OffsetAlgorithm> oalg);

  sim::Task<SyncResult> sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) override;
  std::string name() const override;
};

}  // namespace hcs::clocksync
