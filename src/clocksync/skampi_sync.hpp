// SKaMPI-style offset-only synchronization (the paper's baseline).
//
// The reference process measures the offset to every client sequentially and
// each client applies it as a constant correction — no drift model at all
// (slope = 0).  Accurate right after synchronization, degrades linearly with
// the clock skew afterwards; the HCA family exists to fix exactly that.
#pragma once

#include "clocksync/sync_algorithm.hpp"

namespace hcs::clocksync {

class SKaMPISync final : public ClockSync {
 public:
  explicit SKaMPISync(std::unique_ptr<OffsetAlgorithm> oalg);

  sim::Task<SyncResult> sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) override;
  std::string name() const override;

 private:
  std::unique_ptr<OffsetAlgorithm> oalg_;
};

}  // namespace hcs::clocksync
