#include "clocksync/hca2.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "clocksync/healing.hpp"
#include "clocksync/model_learning.hpp"
#include "simmpi/collectives.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {

namespace {
// User tags for the model-table messages flowing up the tree; bursts carry
// no tags, so any distinct per-round values work.
constexpr int kTableTagBase = 7100;
constexpr int kRemainderTableTag = 7099;

std::vector<double> serialize_table(const std::map<int, vclock::LinearModel>& models) {
  std::vector<double> out;
  out.reserve(1 + 3 * models.size());
  out.push_back(static_cast<double>(models.size()));
  for (const auto& [rank, lm] : models) {
    out.push_back(static_cast<double>(rank));
    out.push_back(lm.slope);
    out.push_back(lm.intercept);
  }
  return out;
}

// Merges a child's serialized table into `into`, composing every entry with
// `to_child`, the model mapping the child's clock to ours.
void merge_table(std::map<int, vclock::LinearModel>& into, const vclock::LinearModel& to_child,
                 const std::vector<double>& buffer) {
  if (buffer.empty()) throw std::invalid_argument("HCA2: empty model table");
  const auto count = static_cast<std::size_t>(buffer[0]);
  if (buffer.size() != 1 + 3 * count) throw std::invalid_argument("HCA2: malformed model table");
  for (std::size_t i = 0; i < count; ++i) {
    const int rank = static_cast<int>(buffer[1 + 3 * i]);
    const vclock::LinearModel lm{buffer[2 + 3 * i], buffer[3 + 3 * i]};
    into[rank] = merge(to_child, lm);
  }
}
}  // namespace

HCA2Sync::HCA2Sync(SyncConfig cfg, std::unique_ptr<OffsetAlgorithm> oalg)
    : cfg_(cfg), oalg_(std::move(oalg)) {
  if (!oalg_) throw std::invalid_argument("HCA2Sync: null offset algorithm");
}

std::string HCA2Sync::name() const { return sync_label("hca2", cfg_, *oalg_); }

sim::Task<LearnResult> HCA2Sync::run_tree_and_scatter(simmpi::Comm& comm, vclock::ClockPtr clk) {
  const int nprocs = comm.size();
  const int r = comm.rank();
  SyncReport report;

  int nrounds = 0;
  while ((2 << nrounds) <= nprocs) ++nrounds;
  const int max_power = 1 << nrounds;

  // Models of my subtree, mapping each member's clock to mine.
  std::map<int, vclock::LinearModel> models;
  models[r] = vclock::LinearModel{};  // self: identity

  // Remainder ranks first, so their models join their partner's subtree
  // before the tree phase sends it upward.
  if (r >= max_power) {
    const int partner = r - max_power;
    const LearnResult learned = co_await learn_clock_model(comm, partner, r, *clk, *oalg_, cfg_);
    report.merge(learned.report);
    std::map<int, vclock::LinearModel> mine;
    mine[r] = learned.model;
    co_await comm.send(partner, kRemainderTableTag, serialize_table(mine));
  } else if (r + max_power < nprocs) {
    const int partner = r + max_power;
    (void)co_await learn_clock_model(comm, r, partner, *clk, *oalg_, cfg_);
    std::optional<simmpi::Message> msg = co_await comm.recv_ft(partner, kRemainderTableTag);
    // The child's table is already expressed relative to my clock.  A dead
    // remainder rank never joins the table; the root NaN-fills its slot.
    if (msg) merge_table(models, vclock::LinearModel{}, msg->data);
  }

  // Inverted binomial tree: leaves first (paper Fig. 1a).
  if (r < max_power) {
    for (int k = 1; k <= nrounds; ++k) {
      const int step = 1 << k;
      const int half = 1 << (k - 1);
      if (r % step == 0) {
        const int child = r + half;
        if (child < max_power) {
          (void)co_await learn_clock_model(comm, r, child, *clk, *oalg_, cfg_);
          std::optional<simmpi::Message> msg = co_await comm.recv_ft(child, kTableTagBase + k);
          // A dead child takes its whole subtree's models with it; the root
          // NaN-fills the missing ranks and they report kFailed below.
          if (!msg) continue;
          if (msg->data.size() < 3) throw std::logic_error("HCA2: missing child model");
          // First triple is the child's own model cm(r, child); the rest of
          // the table is relative to the child and composes through it.
          const vclock::LinearModel to_child{msg->data[1], msg->data[2]};
          (void)msg->data[0];
          std::vector<double> rest(msg->data.begin() + 3, msg->data.end());
          models[child] = to_child;
          if (!rest.empty()) {
            const auto count = static_cast<std::size_t>(rest.size() / 3);
            std::vector<double> table;
            table.push_back(static_cast<double>(count));
            table.insert(table.end(), rest.begin(), rest.end());
            merge_table(models, to_child, table);
          }
        }
      } else if (r % step == half) {
        const int parent = r - half;
        const LearnResult learned =
            co_await learn_clock_model(comm, parent, r, *clk, *oalg_, cfg_);
        report.merge(learned.report);
        // Send my own model first, then my subtree (relative to me).
        std::vector<double> payload;
        payload.push_back(static_cast<double>(r));
        payload.push_back(learned.model.slope);
        payload.push_back(learned.model.intercept);
        for (const auto& [rank, model] : models) {
          if (rank == r) continue;
          payload.push_back(static_cast<double>(rank));
          payload.push_back(model.slope);
          payload.push_back(model.intercept);
        }
        co_await comm.send(parent, kTableTagBase + k, std::move(payload));
        break;  // my part in the tree is done; wait for the scatter
      }
    }
  }

  // Root distributes one (slope, intercept) pair per rank.
  std::vector<double> flat;
  if (r == 0) {
    if (static_cast<int>(models.size()) != nprocs && !crash_model_active(comm)) {
      throw std::logic_error("HCA2: root collected " + std::to_string(models.size()) +
                             " models for " + std::to_string(nprocs) + " ranks");
    }
    // Under the crash model dead or orphaned ranks are simply absent; their
    // slots scatter as NaN and the receiving rank falls back below.
    flat.assign(2 * static_cast<std::size_t>(nprocs),
                std::numeric_limits<double>::quiet_NaN());
    for (const auto& [rank, lm] : models) {
      flat[2 * static_cast<std::size_t>(rank)] = lm.slope;
      flat[2 * static_cast<std::size_t>(rank) + 1] = lm.intercept;
    }
  }
  const std::vector<double> mine =
      co_await simmpi::scatter(comm, std::move(flat), 2, 0, simmpi::ScatterAlgo::kBinomial);
  vclock::LinearModel model{mine.at(0), mine.at(1)};
  if (std::isnan(model.slope) || std::isnan(model.intercept)) {
    // My model never reached the root (I or an ancestor was orphaned by a
    // crash, or the scatter path died): identity fallback, reported failed.
    model = vclock::LinearModel{};
    report.health = SyncHealth::kFailed;
  }
  co_return LearnResult{model, report};
}

sim::Task<SyncResult> HCA2Sync::sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) {
  const LearnResult learned = co_await run_tree_and_scatter(comm, clk);
  const vclock::ModelBankPtr& bank = comm.world().model_bank_of(comm.my_world_rank());
  co_return SyncResult{vclock::make_synced_clock(std::move(clk), learned.model, bank),
                       learned.report};
}

}  // namespace hcs::clocksync
