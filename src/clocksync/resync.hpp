// Periodic re-synchronization (extension; paper §II and §III-C2).
//
// The paper establishes that a linear clock model is only trustworthy for
// roughly 0-20 s and that trace-analysis tools therefore "have to
// re-synchronize clocks periodically".  ResyncManager packages that policy:
// an application calls tick() at natural collective points; whenever the
// configured interval has elapsed on the logical global clock, the inner
// synchronization algorithm is re-run and a fresh clock replaces the old
// one.  The decision is taken by rank 0 and broadcast so that all ranks
// re-synchronize together (a per-rank decision could deadlock the
// collective sync).
#pragma once

#include <memory>

#include "clocksync/sync_algorithm.hpp"

namespace hcs::clocksync {

class ResyncManager {
 public:
  /// `inner` performs each (re-)synchronization; `interval` is the logical
  /// time between re-syncs.  One manager per rank, as with ClockSync.
  ResyncManager(std::unique_ptr<ClockSync> inner, double interval);

  /// Collective: all ranks must call tick() at matching points.  Performs
  /// the initial synchronization on first call and a re-synchronization
  /// whenever rank 0's global clock passed the deadline.  Returns the
  /// current global clock (possibly unchanged).
  sim::Task<vclock::ClockPtr> tick(simmpi::Comm& comm, vclock::ClockPtr base);

  /// Adopts an externally produced clock — e.g. a churn re-admission's
  /// pairwise sub-phase (clocksync/membership) — as the current global
  /// clock, with `deadline` the next re-sync due time on that clock.  A
  /// returning rank that adopted its re-admitted clock participates in the
  /// next tick()'s collective decision like everyone else, instead of
  /// forcing an initial synchronization the rest of the view would not
  /// expect.  Does not count as a resync.
  void adopt(vclock::ClockPtr clock, double deadline) {
    current_ = std::move(clock);
    deadline_ = deadline;
  }

  /// Clock from the most recent (re-)synchronization; null before the
  /// first tick.
  const vclock::ClockPtr& clock() const { return current_; }

  /// Number of synchronizations performed (including the initial one).
  int resyncs() const { return resyncs_; }

  /// This rank's health report from the most recent (re-)synchronization;
  /// default (clean) before the first tick.
  const SyncReport& last_report() const { return last_report_; }

  double interval() const { return interval_; }

 private:
  std::unique_ptr<ClockSync> inner_;
  double interval_;
  double deadline_ = 0.0;  // on the current global clock
  vclock::ClockPtr current_;
  SyncReport last_report_;
  int resyncs_ = 0;
};

}  // namespace hcs::clocksync
