// Self-healing building blocks for synchronization under the crash model.
//
// When a reference rank dies mid-sync, the orphaned ranks cannot simply be
// abandoned: the hierarchy promotes a replacement reference and re-runs the
// affected sub-phase over the surviving quorum.  Both steps need agreement —
// every live member of the group must make the same re-run decision, or the
// healing split itself would stall on ranks that never join it.
//
// The helpers here provide exactly that:
//   - agree_any: a fault-tolerant any-vote across the communicator.  All live
//     members participate unconditionally, so live-live pairs complete at
//     message latency and dead peers resolve at their modelled detection
//     time.  For pure crash faults the failure detector is consistent across
//     observers, so live members converge on the same decision.
//   - surviving_quorum: re-splits the communicator over the live members;
//     because Comm::split keeps members sorted, the lowest live rank of the
//     group becomes rank 0 of the healed communicator — the deterministic
//     replacement election.
//
// With no crash fault active both helpers are no-ops (agree_any returns the
// local vote, no messages), keeping fault-free runs bit-identical.  The same
// guarantee extends to armed-but-unfired plans: healing phases are entered
// only once the oracle detector reports that some failure event has actually
// fired (crash_era_begun), because the vote's own messages would otherwise
// perturb the shared network schedule of a run where nothing ever fails.
#pragma once

#include "sim/task.hpp"
#include "simmpi/comm.hpp"

namespace hcs::clocksync {

/// True iff `comm`'s world runs the crash-stop failure model (a crash or
/// crashlink fault is planned), i.e. healing logic should engage.
bool crash_model_active(const simmpi::Comm& comm);

/// True iff some planned crash/link-cut has fired by now.  Healing phases
/// gate on this, not on crash_model_active alone: before the first event no
/// rank can have crash-failed, and the vote's messages must not disturb a
/// schedule that is (so far) identical to the fault-free one.  A crash
/// landing inside the tiny completion-skew window between two ranks' checks
/// can split the decision; the vote's bounded receives still terminate, and
/// the late ranks heal among themselves.
bool crash_era_begun(const simmpi::Comm& comm);

/// Fault-tolerant OR-vote: true iff any live member of `comm` voted true.
/// Collective over all members; immediate (no messages) when the crash model
/// is inactive or the communicator is trivial.
sim::Task<bool> agree_any(simmpi::Comm& comm, bool my_vote);

/// New communicator containing the surviving members of `comm`, contiguously
/// renumbered with the lowest live rank as rank 0.  Collective.
sim::Task<simmpi::Comm> surviving_quorum(simmpi::Comm& comm);

}  // namespace hcs::clocksync
