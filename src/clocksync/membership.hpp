// Membership and re-admission under churn (docs/fault-injection.md).
//
// A churn plan (leave/join/rejoin faults) makes the set of live ranks a
// deterministic function of simulated time.  This module turns that oracle
// into a re-admission protocol: when a rank restarts, it does NOT trigger a
// full-world resynchronization — it re-runs exactly its own sub-phase of the
// HCA3 tree, a single pairwise LEARN_CLOCK_MODEL against its tree reference
// in the membership view at the restart instant.  The reference serves with
// its already-synchronized global clock, so the returning rank re-anchors to
// the cluster's logical time in one pairwise exchange.
//
// Everything here is a pure function of the fault plan: both the returning
// rank and its reference derive the rendezvous (who, when, which view) from
// the oracle without exchanging a message, which keeps churn runs
// bit-identical across --jobs/--shards/--queue just like crash runs.
#pragma once

#include <vector>

#include "clocksync/model_learning.hpp"
#include "clocksync/offset.hpp"
#include "clocksync/sync_algorithm.hpp"
#include "sim/task.hpp"
#include "simmpi/comm.hpp"

namespace hcs::clocksync {

/// The HCA3 binomial-tree reference of `rank` in a communicator of `nprocs`
/// members: the rank it learned its clock model from during sync_clocks
/// (clear the top bit for ranks >= 2^floor(log2 n), the lowest set bit
/// otherwise).  -1 for rank 0 (the root has no reference) and for trivial
/// communicators.
int hca3_parent(int rank, int nprocs);

/// One scheduled restart in the fault plan.
struct ReadmitEvent {
  sim::Time at = 0.0;   // restart instant (the rank's up_start)
  int rank = -1;        // world rank that (re)joins
  int incarnation = 0;  // incarnation index that begins at `at`
};

/// Every scheduled restart of the world's churn plan, sorted by (at, rank).
/// Pure function of the oracle — identical on every rank, no messages.
/// Empty when no churn plan is active.
std::vector<ReadmitEvent> readmit_schedule(simmpi::World& world);

/// World rank that serves `event`'s re-admission: the returning rank's HCA3
/// tree parent within the membership view at event.at (the lowest-ranked
/// other member when the returning rank is the view's rank 0).  -1 when the
/// view has no other member — the returning rank then has nobody to
/// re-anchor against and keeps its unsynchronized clock.
int readmit_reference(simmpi::World& world, const ReadmitEvent& event);

/// Re-admission tuning: a deliberately small fit compared to a full sync —
/// the whole point is that one returning rank costs one short pairwise
/// phase, not a world-wide re-run.
struct ReadmitPolicy {
  SyncConfig sync{/*nfitpoints=*/32, /*recompute_intercept=*/true};
};

/// Clock produced by one re-admission plus the client-side quality report
/// (clean on the serving side).
struct ReadmitResult {
  vclock::ClockPtr clock;
  SyncReport report;
};

/// The re-admission sub-phase itself.  Pairwise collective: called by the
/// returning rank (with its fresh base clock) and by
/// readmit_reference(event) (with its current global clock); no other rank
/// participates.  `view` must be the membership view communicator at
/// event.at on both sides (simmpi::Comm::view_comm).  Returns the newly
/// synchronized clock on the returning rank and `clk` unchanged on the
/// reference.  Emits a "membership.readmit" trace span on both sides.
sim::Task<ReadmitResult> readmit(simmpi::Comm& view, ReadmitEvent event, vclock::ClockPtr clk,
                                 OffsetAlgorithm& oalg, ReadmitPolicy policy);

}  // namespace hcs::clocksync
