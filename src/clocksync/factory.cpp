#include "clocksync/factory.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <vector>

#include "clocksync/clock_prop.hpp"
#include "clocksync/hca.hpp"
#include "clocksync/hca2.hpp"
#include "clocksync/hca3.hpp"
#include "clocksync/hierarchical.hpp"
#include "clocksync/jk.hpp"
#include "clocksync/meanrtt_offset.hpp"
#include "clocksync/skampi_offset.hpp"
#include "clocksync/skampi_sync.hpp"

namespace hcs::clocksync {

const char* to_string(SyncHealth health) {
  switch (health) {
    case SyncHealth::kOk: return "ok";
    case SyncHealth::kDegraded: return "degraded";
    case SyncHealth::kFailed: return "failed";
  }
  return "?";
}

std::string sync_label(const std::string& algo, const SyncConfig& cfg,
                       const OffsetAlgorithm& oalg) {
  std::string label = algo;
  if (cfg.recompute_intercept) label += "/recompute_intercept";
  label += "/" + std::to_string(cfg.nfitpoints) + "/" + oalg.name() + "/" +
           std::to_string(oalg.nexchanges());
  return label;
}

namespace {

std::string canonical(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    if (c == '-' || c == ' ') return '_';
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::vector<std::string> split_slash(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find('/', start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

int parse_int(const std::string& tok, const std::string& what) {
  try {
    const int v = std::stoi(tok);
    if (v < 1) throw std::invalid_argument("non-positive");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("make_sync: bad " + what + " '" + tok + "'");
  }
}

bool is_prop(const std::string& tok) {
  return tok == "clockpropagation" || tok == "clockprop" || tok == "clockpropsync";
}

/// Parses one flat algorithm (or ClockPropagation) from tokens[pos...].
std::unique_ptr<ClockSync> parse_flat(const std::vector<std::string>& toks, std::size_t& pos) {
  if (pos >= toks.size()) throw std::invalid_argument("make_sync: missing algorithm name");
  const std::string algo = toks[pos++];
  if (is_prop(algo)) return std::make_unique<ClockPropSync>();
  if (algo == "skampi" || algo == "offset_only") {
    // Offset-only baseline: no fit, so no nfitpoints token — just the
    // offset algorithm and its exchange count ("skampi/skampi_offset/100").
    if (pos + 2 > toks.size()) {
      throw std::invalid_argument("make_sync: expected offset/nexchanges after '" + algo + "'");
    }
    const std::string offset_name = toks[pos++];
    const int nexchanges = parse_int(toks[pos++], "nexchanges");
    return std::make_unique<SKaMPISync>(make_offset_algorithm(offset_name, nexchanges));
  }

  SyncConfig cfg;
  if (pos < toks.size() && toks[pos] == "recompute_intercept") {
    cfg.recompute_intercept = true;
    ++pos;
  }
  if (pos + 3 > toks.size()) {
    throw std::invalid_argument("make_sync: expected nfitpoints/offset/nexchanges after '" +
                                algo + "'");
  }
  cfg.nfitpoints = parse_int(toks[pos++], "nfitpoints");
  const std::string offset_name = toks[pos++];
  const int nexchanges = parse_int(toks[pos++], "nexchanges");
  auto oalg = make_offset_algorithm(offset_name, nexchanges);

  if (algo == "hca") return std::make_unique<HCASync>(cfg, std::move(oalg));
  if (algo == "hca2") return std::make_unique<HCA2Sync>(cfg, std::move(oalg));
  if (algo == "hca3") return std::make_unique<HCA3Sync>(cfg, std::move(oalg));
  if (algo == "jk") return std::make_unique<JKSync>(cfg, std::move(oalg));
  throw std::invalid_argument("make_sync: unknown algorithm '" + algo + "'");
}

}  // namespace

std::unique_ptr<OffsetAlgorithm> make_offset_algorithm(const std::string& name, int nexchanges) {
  const std::string n = canonical(name);
  if (n == "skampi_offset" || n == "skampi") return std::make_unique<SKaMPIOffset>(nexchanges);
  if (n == "mean_rtt_offset" || n == "mean_rtt" || n == "meanrtt") {
    return std::make_unique<MeanRttOffset>(nexchanges);
  }
  throw std::invalid_argument("make_offset_algorithm: unknown offset algorithm '" + name + "'");
}

std::unique_ptr<ClockSync> make_sync(const std::string& label) {
  const std::vector<std::string> toks = split_slash(canonical(label));
  std::size_t pos = 0;
  if (toks.empty()) throw std::invalid_argument("make_sync: empty label");

  if (toks[0] == "top") {
    pos = 1;
    auto top = parse_flat(toks, pos);
    std::unique_ptr<ClockSync> mid;
    if (pos < toks.size() && toks[pos] == "mid") {
      ++pos;
      mid = parse_flat(toks, pos);
    }
    if (pos >= toks.size() || toks[pos] != "bottom") {
      throw std::invalid_argument("make_sync: hierarchical label missing '/bottom/'");
    }
    ++pos;
    auto bottom = parse_flat(toks, pos);
    if (pos != toks.size()) {
      throw std::invalid_argument("make_sync: trailing tokens in label '" + label + "'");
    }
    if (mid) return make_h3hca(std::move(top), std::move(mid), std::move(bottom));
    return make_h2hca(std::move(top), std::move(bottom));
  }

  auto sync = parse_flat(toks, pos);
  if (pos != toks.size()) {
    throw std::invalid_argument("make_sync: trailing tokens in label '" + label + "'");
  }
  return sync;
}

}  // namespace hcs::clocksync
