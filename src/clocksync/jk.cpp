#include "clocksync/jk.hpp"

#include <stdexcept>

#include "clocksync/model_learning.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {

JKSync::JKSync(SyncConfig cfg, std::unique_ptr<OffsetAlgorithm> oalg)
    : cfg_(cfg), oalg_(std::move(oalg)) {
  if (!oalg_) throw std::invalid_argument("JKSync: null offset algorithm");
}

std::string JKSync::name() const { return sync_label("jk", cfg_, *oalg_); }

sim::Task<SyncResult> JKSync::sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) {
  const int r = comm.rank();
  if (r == 0) {
    for (int client = 1; client < comm.size(); ++client) {
      (void)co_await learn_clock_model(comm, 0, client, *clk, *oalg_, cfg_);
    }
    co_return SyncResult{vclock::GlobalClockLM::identity(std::move(clk)), {}};
  }
  const LearnResult learned = co_await learn_clock_model(comm, 0, r, *clk, *oalg_, cfg_);
  const vclock::ModelBankPtr& bank = comm.world().model_bank_of(comm.my_world_rank());
  co_return SyncResult{vclock::make_synced_clock(std::move(clk), learned.model, bank),
                       learned.report};
}

}  // namespace hcs::clocksync
