#include "clocksync/clock_prop.hpp"

#include "simmpi/collectives.hpp"
#include "util/vec.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {

sim::Task<SyncResult> ClockPropSync::sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) {
  const bool i_am_ref = comm.rank() == p_ref_;

  // Two broadcasts as in Alg. 3: buffer size first, then the flat buffer.
  // Broadcasts ride the reliable transport (bounded retransmit, never lost),
  // so the report stays clean even under fault injection.
  std::vector<double> buffer;
  if (i_am_ref) buffer = vclock::flatten_clock(clk);
  const std::vector<double> size_msg = co_await simmpi::bcast(
      comm, util::vec(static_cast<double>(buffer.size())), p_ref_, simmpi::BcastAlgo::kBinomial);
  (void)size_msg;  // the simulated transport derives buffer sizes itself
  buffer = co_await simmpi::bcast(comm, std::move(buffer), p_ref_, simmpi::BcastAlgo::kBinomial);

  if (i_am_ref) co_return SyncResult{std::move(clk), {}};
  // Rebuild the reference's model chain on top of my own base clock; valid
  // because both clocks tick off the same hardware time source.  The rebuilt
  // levels store their models in the rank's shard bank (SoA layout).
  co_return SyncResult{
      vclock::unflatten_clock(std::move(clk), buffer,
                              comm.world().model_bank_of(comm.my_world_rank())),
      {}};
}

}  // namespace hcs::clocksync
