// SKaMPI-Offset (paper Alg. 7, after [Worsch et al. 2002]).
//
// Minimum-filtering offset estimator: across nexchanges ping-pongs it keeps
//   td_min = max(t_last - s_now)   (reply cannot be later than my receive)
//   td_max = min(t_last - s_slast) (reply cannot be earlier than my send)
// and estimates the offset as their midpoint.  Using minima makes it robust
// to jitter: "if a timing packet is lucky enough to experience the minimum
// delay, then its timestamps have not been corrupted" (Ridoux & Veitch).
#pragma once

#include "clocksync/offset.hpp"

namespace hcs::clocksync {

class SKaMPIOffset final : public OffsetAlgorithm {
 public:
  explicit SKaMPIOffset(int nexchanges);

  sim::Task<ClockOffset> measure_offset(simmpi::Comm& comm, vclock::Clock& clk, int p_ref,
                                        int client) override;
  std::string name() const override { return "skampi_offset"; }
  int nexchanges() const override { return nexchanges_; }
  std::unique_ptr<OffsetAlgorithm> clone() const override;

 private:
  int nexchanges_;
};

}  // namespace hcs::clocksync
