#include "clocksync/hierarchical.hpp"

#include <stdexcept>

#include "trace/span.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {

HierarchicalSync::HierarchicalSync(std::unique_ptr<ClockSync> top, std::unique_ptr<ClockSync> mid,
                                   std::unique_ptr<ClockSync> bottom)
    : top_(std::move(top)), mid_(std::move(mid)), bottom_(std::move(bottom)) {
  if (!top_ || !bottom_) throw std::invalid_argument("HierarchicalSync: null level algorithm");
}

std::string HierarchicalSync::name() const {
  if (mid_) {
    return "Top/" + top_->name() + "/Mid/" + mid_->name() + "/Bottom/" + bottom_->name();
  }
  return "Top/" + top_->name() + "/Bottom/" + bottom_->name();
}

sim::Task<vclock::ClockPtr> HierarchicalSync::sync_clocks(simmpi::Comm& comm,
                                                          vclock::ClockPtr clk) {
  if (mid_) co_return co_await sync_h3(comm, std::move(clk));
  co_return co_await sync_h2(comm, std::move(clk));
}

// Algorithm 4 (H2HCA).
sim::Task<vclock::ClockPtr> HierarchicalSync::sync_h2(simmpi::Comm& comm, vclock::ClockPtr clk) {
  const int wr = comm.my_world_rank();
  // Communicator creation (MPI_COMM_TYPE_SHARED analogue + a leaders split);
  // deliberately inside the timed region, as in the paper's evaluation.
  simmpi::Comm comm_intranode;
  simmpi::Comm comm_internode;
  {
    HCS_TRACE_SCOPE(Sync, wr, "hier.split");
    comm_intranode = co_await comm.split_shared_node();
    const int leader_color = comm_intranode.rank() == 0 ? 0 : simmpi::Comm::kUndefined;
    comm_internode = co_await comm.split(leader_color, comm.rank());
  }

  // Step 1: synchronization between nodes.
  vclock::ClockPtr global_clk1 = vclock::GlobalClockLM::identity(clk);
  if (comm_internode.valid() && comm_internode.size() > 1) {
    HCS_TRACE_SCOPE(Sync, wr, "hier.top");
    global_clk1 = co_await top_->sync_clocks(comm_internode, clk);
  }
  // Step 2: synchronization within the compute node.
  vclock::ClockPtr global_clk2 = global_clk1;
  if (comm_intranode.size() > 1) {
    HCS_TRACE_SCOPE(Sync, wr, "hier.bottom");
    global_clk2 = co_await bottom_->sync_clocks(comm_intranode, global_clk1);
  }
  co_return global_clk2;
}

// §IV-D (H3HCA): node leaders / socket leaders per node / within-socket.
sim::Task<vclock::ClockPtr> HierarchicalSync::sync_h3(simmpi::Comm& comm, vclock::ClockPtr clk) {
  const int wr = comm.my_world_rank();
  simmpi::Comm comm_socket;
  simmpi::Comm comm_socket_leaders;
  simmpi::Comm comm_internode;
  {
    HCS_TRACE_SCOPE(Sync, wr, "hier.split");
    comm_socket = co_await comm.split_shared_socket();
    const auto loc = comm.world().topo().locate(comm.my_world_rank());
    const int socket_leader_color =
        comm_socket.rank() == 0 ? loc.node : simmpi::Comm::kUndefined;
    comm_socket_leaders = co_await comm.split(socket_leader_color, comm.rank());
    const bool is_node_leader = comm_socket_leaders.valid() && comm_socket_leaders.rank() == 0;
    const int node_leader_color = is_node_leader ? 0 : simmpi::Comm::kUndefined;
    comm_internode = co_await comm.split(node_leader_color, comm.rank());
  }

  vclock::ClockPtr global_clk1 = vclock::GlobalClockLM::identity(clk);
  if (comm_internode.valid() && comm_internode.size() > 1) {
    HCS_TRACE_SCOPE(Sync, wr, "hier.top");
    global_clk1 = co_await top_->sync_clocks(comm_internode, clk);
  }
  vclock::ClockPtr global_clk2 = global_clk1;
  if (comm_socket_leaders.valid() && comm_socket_leaders.size() > 1) {
    HCS_TRACE_SCOPE(Sync, wr, "hier.mid");
    global_clk2 = co_await mid_->sync_clocks(comm_socket_leaders, global_clk1);
  }
  vclock::ClockPtr global_clk3 = global_clk2;
  if (comm_socket.size() > 1) {
    HCS_TRACE_SCOPE(Sync, wr, "hier.bottom");
    global_clk3 = co_await bottom_->sync_clocks(comm_socket, global_clk2);
  }
  co_return global_clk3;
}

std::unique_ptr<ClockSync> make_h2hca(std::unique_ptr<ClockSync> top,
                                      std::unique_ptr<ClockSync> bottom) {
  return std::make_unique<HierarchicalSync>(std::move(top), nullptr, std::move(bottom));
}

std::unique_ptr<ClockSync> make_h3hca(std::unique_ptr<ClockSync> top,
                                      std::unique_ptr<ClockSync> mid,
                                      std::unique_ptr<ClockSync> bottom) {
  return std::make_unique<HierarchicalSync>(std::move(top), std::move(mid), std::move(bottom));
}

}  // namespace hcs::clocksync
