#include "clocksync/hierarchical.hpp"

#include <algorithm>
#include <stdexcept>

#include "clocksync/healing.hpp"
#include "trace/span.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {

HierarchicalSync::HierarchicalSync(std::unique_ptr<ClockSync> top, std::unique_ptr<ClockSync> mid,
                                   std::unique_ptr<ClockSync> bottom)
    : top_(std::move(top)), mid_(std::move(mid)), bottom_(std::move(bottom)) {
  if (!top_ || !bottom_) throw std::invalid_argument("HierarchicalSync: null level algorithm");
}

std::string HierarchicalSync::name() const {
  if (mid_) {
    return "Top/" + top_->name() + "/Mid/" + mid_->name() + "/Bottom/" + bottom_->name();
  }
  return "Top/" + top_->name() + "/Bottom/" + bottom_->name();
}

sim::Task<SyncResult> HierarchicalSync::sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) {
  if (mid_) co_return co_await sync_h3(comm, std::move(clk));
  co_return co_await sync_h2(comm, std::move(clk));
}

// One hierarchy level, self-healing under the crash model: if any live
// member's level sync failed (typically because the level's reference rank
// died mid-phase), the survivors agree on a re-run, re-split — which elects
// the lowest live rank of the group as the replacement reference and
// re-parents the orphans under it — and repeat just this level.  Healed
// ranks report at least kDegraded even when the re-run succeeds: their clock
// chains through a replacement elected after the original reference died.
// Fault-free — and under any plan whose first crash/link-cut has not fired
// yet — this is exactly one sync_clocks call, bit-identical to the
// pre-healing behaviour.
sim::Task<SyncResult> HierarchicalSync::run_level(ClockSync& algo, simmpi::Comm& level,
                                                  vclock::ClockPtr base) {
  SyncResult res = co_await algo.sync_clocks(level, base);
  if (!crash_era_begun(level)) co_return res;
  const bool rerun = co_await agree_any(level, res.report.health == SyncHealth::kFailed);
  if (!rerun) co_return res;
  simmpi::Comm healed = co_await surviving_quorum(level);
  if (healed.size() <= 1) {
    // Sole survivor of its group: nothing left to synchronize against.
    res.report.health = std::max(res.report.health, SyncHealth::kDegraded);
    co_return res;
  }
  SyncResult redo = co_await algo.sync_clocks(healed, std::move(base));
  redo.report.points_invalid += res.report.points_invalid;
  redo.report.exchanges_lost += res.report.exchanges_lost;
  redo.report.retries += res.report.retries;
  redo.report.health = std::max(redo.report.health, SyncHealth::kDegraded);
  co_return redo;
}

// Algorithm 4 (H2HCA).
sim::Task<SyncResult> HierarchicalSync::sync_h2(simmpi::Comm& comm, vclock::ClockPtr clk) {
  const int wr = comm.my_world_rank();
  // Communicator creation (MPI_COMM_TYPE_SHARED analogue + a leaders split);
  // deliberately inside the timed region, as in the paper's evaluation.
  simmpi::Comm comm_intranode;
  simmpi::Comm comm_internode;
  {
    HCS_TRACE_SCOPE(Sync, wr, "hier.split");
    comm_intranode = co_await comm.split_shared_node();
    const int leader_color = comm_intranode.rank() == 0 ? 0 : simmpi::Comm::kUndefined;
    comm_internode = co_await comm.split(leader_color, comm.rank());
  }

  // Step 1: synchronization between nodes.  Level reports merge: a rank is
  // degraded if any level it participated in was degraded.
  SyncReport report;
  vclock::ClockPtr global_clk1 = vclock::GlobalClockLM::identity(clk);
  if (comm_internode.valid() && comm_internode.size() > 1) {
    HCS_TRACE_SCOPE(Sync, wr, "hier.top");
    SyncResult res = co_await run_level(*top_, comm_internode, clk);
    global_clk1 = std::move(res.clock);
    report.merge(res.report);
  }
  // Step 2: synchronization within the compute node.
  vclock::ClockPtr global_clk2 = global_clk1;
  if (comm_intranode.size() > 1) {
    HCS_TRACE_SCOPE(Sync, wr, "hier.bottom");
    SyncResult res = co_await run_level(*bottom_, comm_intranode, global_clk1);
    global_clk2 = std::move(res.clock);
    report.merge(res.report);
  }
  co_return SyncResult{std::move(global_clk2), report};
}

// §IV-D (H3HCA): node leaders / socket leaders per node / within-socket.
sim::Task<SyncResult> HierarchicalSync::sync_h3(simmpi::Comm& comm, vclock::ClockPtr clk) {
  const int wr = comm.my_world_rank();
  simmpi::Comm comm_socket;
  simmpi::Comm comm_socket_leaders;
  simmpi::Comm comm_internode;
  {
    HCS_TRACE_SCOPE(Sync, wr, "hier.split");
    comm_socket = co_await comm.split_shared_socket();
    const auto loc = comm.world().topo().locate(comm.my_world_rank());
    const int socket_leader_color =
        comm_socket.rank() == 0 ? loc.node : simmpi::Comm::kUndefined;
    comm_socket_leaders = co_await comm.split(socket_leader_color, comm.rank());
    const bool is_node_leader = comm_socket_leaders.valid() && comm_socket_leaders.rank() == 0;
    const int node_leader_color = is_node_leader ? 0 : simmpi::Comm::kUndefined;
    comm_internode = co_await comm.split(node_leader_color, comm.rank());
  }

  SyncReport report;
  vclock::ClockPtr global_clk1 = vclock::GlobalClockLM::identity(clk);
  if (comm_internode.valid() && comm_internode.size() > 1) {
    HCS_TRACE_SCOPE(Sync, wr, "hier.top");
    SyncResult res = co_await run_level(*top_, comm_internode, clk);
    global_clk1 = std::move(res.clock);
    report.merge(res.report);
  }
  vclock::ClockPtr global_clk2 = global_clk1;
  if (comm_socket_leaders.valid() && comm_socket_leaders.size() > 1) {
    HCS_TRACE_SCOPE(Sync, wr, "hier.mid");
    SyncResult res = co_await run_level(*mid_, comm_socket_leaders, global_clk1);
    global_clk2 = std::move(res.clock);
    report.merge(res.report);
  }
  vclock::ClockPtr global_clk3 = global_clk2;
  if (comm_socket.size() > 1) {
    HCS_TRACE_SCOPE(Sync, wr, "hier.bottom");
    SyncResult res = co_await run_level(*bottom_, comm_socket, global_clk2);
    global_clk3 = std::move(res.clock);
    report.merge(res.report);
  }
  co_return SyncResult{std::move(global_clk3), report};
}

std::unique_ptr<ClockSync> make_h2hca(std::unique_ptr<ClockSync> top,
                                      std::unique_ptr<ClockSync> bottom) {
  return std::make_unique<HierarchicalSync>(std::move(top), nullptr, std::move(bottom));
}

std::unique_ptr<ClockSync> make_h3hca(std::unique_ptr<ClockSync> top,
                                      std::unique_ptr<ClockSync> mid,
                                      std::unique_ptr<ClockSync> bottom) {
  return std::make_unique<HierarchicalSync>(std::move(top), std::move(mid), std::move(bottom));
}

}  // namespace hcs::clocksync
