#include "clocksync/hca.hpp"

#include "vclock/global_clock.hpp"

namespace hcs::clocksync {

HCASync::HCASync(SyncConfig cfg, std::unique_ptr<OffsetAlgorithm> oalg)
    : HCA2Sync(cfg, std::move(oalg)) {}

std::string HCASync::name() const { return sync_label("hca", cfg_, *oalg_); }

sim::Task<SyncResult> HCASync::sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) {
  LearnResult learned = co_await run_tree_and_scatter(comm, clk);
  // Concrete BankedClockLM (not the ClockPtr make_synced_clock returns): the
  // final pass below edits the intercept in place through the typed view.
  const vclock::ModelBankPtr& bank = comm.world().model_bank_of(comm.my_world_rank());
  auto global = std::make_shared<vclock::BankedClockLM>(clk, bank, bank->add(learned.model));

  // Final O(p) pass: the root measures the residual offset of each process's
  // *global* clock and the process absorbs it into its intercept.
  const int r = comm.rank();
  if (r == 0) {
    for (int client = 1; client < comm.size(); ++client) {
      if (comm.peer_status(client) == simmpi::PeerStatus::kDead) continue;
      (void)co_await oalg_->measure_offset(comm, *global, 0, client);
    }
  } else {
    const ClockOffset o = co_await oalg_->measure_offset(comm, *global, 0, r);
    learned.report.exchanges_lost += o.lost;
    learned.report.retries += o.retries;
    if (o.valid) {
      global->adjust_intercept(o.offset);
    } else {
      // The residual-offset burst lost every exchange; keep the scattered
      // intercept and flag the rank instead of adjusting by garbage.
      ++learned.report.points_invalid;
    }
    if (o.lost > 0 || !o.valid) {
      learned.report.health = std::max(learned.report.health, SyncHealth::kDegraded);
    }
  }
  co_return SyncResult{std::move(global), learned.report};
}

}  // namespace hcs::clocksync
