#include "clocksync/hca.hpp"

#include "vclock/global_clock.hpp"

namespace hcs::clocksync {

HCASync::HCASync(SyncConfig cfg, std::unique_ptr<OffsetAlgorithm> oalg)
    : HCA2Sync(cfg, std::move(oalg)) {}

std::string HCASync::name() const { return sync_label("hca", cfg_, *oalg_); }

sim::Task<vclock::ClockPtr> HCASync::sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) {
  const vclock::LinearModel lm = co_await run_tree_and_scatter(comm, clk);
  auto global = std::make_shared<vclock::GlobalClockLM>(clk, lm);

  // Final O(p) pass: the root measures the residual offset of each process's
  // *global* clock and the process absorbs it into its intercept.
  const int r = comm.rank();
  if (r == 0) {
    for (int client = 1; client < comm.size(); ++client) {
      (void)co_await oalg_->measure_offset(comm, *global, 0, client);
    }
  } else {
    const ClockOffset o = co_await oalg_->measure_offset(comm, *global, 0, r);
    global->adjust_intercept(o.offset);
  }
  co_return global;
}

}  // namespace hcs::clocksync
