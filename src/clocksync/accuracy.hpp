// Check-Global-Clock (paper Algorithm 6).
//
// After synchronization, the reference rank measures the residual offset of
// every (sampled) client's global clock twice: immediately, and again
// wait_time seconds later.  The maxima of |offset| over clients are the
// y-values of the paper's Figs. 3-6.
#pragma once

#include <vector>

#include "clocksync/offset.hpp"
#include "sim/task.hpp"
#include "simmpi/comm.hpp"

namespace hcs::clocksync {

struct AccuracyResult {
  std::vector<int> clients;        // sampled comm ranks, ascending
  std::vector<double> offsets_t0;  // offset per client right after sync
  std::vector<double> offsets_t1;  // offset per client after wait_time
  double max_abs_t0 = 0.0;
  double max_abs_t1 = 0.0;
};

/// Deterministic sample of client ranks (excluding `p_ref`).  fraction = 1
/// returns every other rank; smaller fractions subsample reproducibly (the
/// paper samples 10 % of 16k ranks on Titan).
std::vector<int> sample_clients(int nprocs, int p_ref, double fraction, std::uint64_t seed);

/// Collective over the communicator: every rank calls it with its global
/// clock; the result is meaningful on `p_ref` only.  `clients` must be the
/// same list on every rank (use sample_clients).
/// `clients` is taken by value: a caller's temporary bound to a reference
/// parameter of this lazily-started coroutine would dangle.
sim::Task<AccuracyResult> check_clock_accuracy(simmpi::Comm& comm, vclock::Clock& g_clk,
                                               OffsetAlgorithm& oalg, double wait_time,
                                               std::vector<int> clients, int p_ref = 0);

}  // namespace hcs::clocksync
