// HCA3 (paper Algorithm 1, Fig. 1b) — the paper's primary contribution.
//
// The reference time is pushed down a binomial tree from rank 0 in O(log p)
// rounds (PulseSync-style).  In each round a reference process timestamps
// with its *already synchronized* global clock, so every client fits its
// model directly against (an emulation of) the root clock at the moment it
// will use it — avoiding both HCA2's model composition and its extrapolation
// of stale fits under time-varying drift.
#pragma once

#include "clocksync/sync_algorithm.hpp"

namespace hcs::clocksync {

class HCA3Sync final : public ClockSync {
 public:
  HCA3Sync(SyncConfig cfg, std::unique_ptr<OffsetAlgorithm> oalg);

  sim::Task<SyncResult> sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) override;
  std::string name() const override;

 private:
  sim::Task<SyncResult> sync_once(simmpi::Comm& comm, vclock::ClockPtr clk);

  SyncConfig cfg_;
  std::unique_ptr<OffsetAlgorithm> oalg_;
};

}  // namespace hcs::clocksync
