#include "clocksync/fitting.hpp"

#include <cstddef>
#include <stdexcept>

namespace hcs::clocksync {

FitResult fit_linear_model(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("fit_linear_model: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("fit_linear_model: need at least 2 points");
  const auto n = static_cast<double>(x.size());

  double x_mean = 0.0, y_mean = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x_mean += x[i];
    y_mean += y[i];
  }
  x_mean /= n;
  y_mean /= n;

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - x_mean;
    const double dy = y[i] - y_mean;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }

  FitResult fit;
  if (sxx == 0.0) {
    // All timestamps identical: fall back to a constant-offset model.
    fit.model.slope = 0.0;
    fit.model.intercept = y_mean;
    fit.r2 = 0.0;
    return fit;
  }
  fit.model.slope = sxy / sxx;
  fit.model.intercept = y_mean - fit.model.slope * x_mean;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace hcs::clocksync
