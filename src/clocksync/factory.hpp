// Configuration-string factory for clock synchronization algorithms.
//
// Grammar (case-insensitive, matching the labels used in the paper's plots;
// '-' and '_' are interchangeable, spaces map to '_'):
//
//   flat     := algo [ "/recompute_intercept" ] "/" nfitpoints "/" offset "/" nexchanges
//   algo     := "hca" | "hca2" | "hca3" | "jk"
//   offset   := "skampi_offset" | "mean_rtt_offset"
//   prop     := "clockpropagation" | "clockprop"
//   h2       := "top/" flat "/bottom/" (flat | prop)
//   h3       := "top/" flat "/mid/" (flat | prop) "/bottom/" (flat | prop)
//
// Examples from the paper:
//   "hca3/recompute_intercept/1000/skampi_offset/100"
//   "jk/1000/skampi_offset/20"
//   "Top/hca3/500/SKaMPI-Offset/100/Bottom/ClockPropagation"
#pragma once

#include <memory>
#include <string>

#include "clocksync/offset.hpp"
#include "clocksync/sync_algorithm.hpp"

namespace hcs::clocksync {

/// Builds a fresh per-rank synchronization algorithm from its label.
/// Throws std::invalid_argument on malformed labels.
std::unique_ptr<ClockSync> make_sync(const std::string& label);

/// Builds an offset algorithm from its name fragment.
std::unique_ptr<OffsetAlgorithm> make_offset_algorithm(const std::string& name, int nexchanges);

}  // namespace hcs::clocksync
