// HlHCA — hierarchical clock synchronization (paper §IV, Algorithm 4).
//
// The machine's architectural levels each get their own communicator and
// their own synchronization algorithm.  H2HCA uses {inter-node, intra-node};
// H3HCA adds a socket level (paper §IV-D).  Communicator creation happens
// inside sync_clocks so its (collective) cost is charged to the
// synchronization duration, exactly as the paper measures it.
//
// Clocks nest: the clock produced at level k becomes the base clock passed
// to level k+1, yielding chains like cm(cm(0,2),4) (paper §IV-B).
#pragma once

#include <memory>

#include "clocksync/sync_algorithm.hpp"

namespace hcs::clocksync {

class HierarchicalSync final : public ClockSync {
 public:
  /// Two levels (H2HCA): `top` between node leaders, `bottom` within each
  /// node.  Three levels (H3HCA, mid != nullptr): `top` between node
  /// leaders, `mid` between socket leaders within a node, `bottom` within
  /// each socket.
  HierarchicalSync(std::unique_ptr<ClockSync> top, std::unique_ptr<ClockSync> mid,
                   std::unique_ptr<ClockSync> bottom);

  sim::Task<SyncResult> sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) override;
  std::string name() const override;

  int levels() const { return mid_ ? 3 : 2; }

 private:
  sim::Task<SyncResult> sync_h2(simmpi::Comm& comm, vclock::ClockPtr clk);
  sim::Task<SyncResult> sync_h3(simmpi::Comm& comm, vclock::ClockPtr clk);
  sim::Task<SyncResult> run_level(ClockSync& algo, simmpi::Comm& level, vclock::ClockPtr base);

  std::unique_ptr<ClockSync> top_;
  std::unique_ptr<ClockSync> mid_;  // nullptr for H2HCA
  std::unique_ptr<ClockSync> bottom_;
};

/// Convenience factories matching the paper's two realizations.
std::unique_ptr<ClockSync> make_h2hca(std::unique_ptr<ClockSync> top,
                                      std::unique_ptr<ClockSync> bottom);
std::unique_ptr<ClockSync> make_h3hca(std::unique_ptr<ClockSync> top,
                                      std::unique_ptr<ClockSync> mid,
                                      std::unique_ptr<ClockSync> bottom);

}  // namespace hcs::clocksync
