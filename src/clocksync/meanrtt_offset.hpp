// Mean-RTT-Offset (paper Alg. 8, after Jones & Koenig 2013).
//
// Estimates the pair's round-trip time once (mean over a burst, cached per
// pair), then derives per-exchange offsets as
//   offset_i = local_recv_i - ref_time_i - rtt/2
// and reports the median offset with its timestamp.  Averaging makes the
// estimator sensitive to jitter asymmetry — exactly the weakness the paper
// exploits when it shows SKaMPI-Offset improves JK (§III-C3).
#pragma once

#include <cstdint>
#include <map>

#include "clocksync/offset.hpp"

namespace hcs::clocksync {

class MeanRttOffset final : public OffsetAlgorithm {
 public:
  explicit MeanRttOffset(int nexchanges);

  sim::Task<ClockOffset> measure_offset(simmpi::Comm& comm, vclock::Clock& clk, int p_ref,
                                        int client) override;
  std::string name() const override { return "mean_rtt_offset"; }
  int nexchanges() const override { return nexchanges_; }
  std::unique_ptr<OffsetAlgorithm> clone() const override;

 private:
  int nexchanges_;
  // have_rtt cache (paper Alg. 8 line 3), keyed by (ref, client) comm ranks.
  std::map<std::pair<int, int>, double> rtt_cache_;
};

}  // namespace hcs::clocksync
