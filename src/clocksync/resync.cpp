#include "clocksync/resync.hpp"

#include <stdexcept>

#include "replay/observe.hpp"
#include "simmpi/collectives.hpp"
#include "trace/metrics.hpp"
#include "trace/span.hpp"
#include "util/vec.hpp"

namespace hcs::clocksync {

ResyncManager::ResyncManager(std::unique_ptr<ClockSync> inner, double interval)
    : inner_(std::move(inner)), interval_(interval) {
  if (!inner_) throw std::invalid_argument("ResyncManager: null inner algorithm");
  if (interval <= 0) throw std::invalid_argument("ResyncManager: interval must be > 0");
}

sim::Task<vclock::ClockPtr> ResyncManager::tick(simmpi::Comm& comm, vclock::ClockPtr base) {
  bool resync_now = false;
  if (!current_) {
    resync_now = true;  // first tick: everyone agrees unconditionally
  } else {
    // Rank 0 decides on its global clock; a broadcast makes the decision
    // unanimous even if other ranks' clocks disagree around the deadline.
    std::vector<double> decision;
    if (comm.rank() == 0) {
      decision = util::vec(replay::observed_now(comm, *current_) >= deadline_ ? 1.0 : 0.0);
    }
    decision = co_await simmpi::bcast(comm, std::move(decision), 0);
    resync_now = decision.at(0) != 0.0;
  }
  if (resync_now) {
    HCS_TRACE_INSTANT(Sync, comm.my_world_rank(), "resync", resyncs_);
    if (comm.rank() == 0) HCS_METRIC_INC("sync.resyncs");  // once per round, not per rank
    SyncResult res = co_await inner_->sync_clocks(comm, std::move(base));
    current_ = std::move(res.clock);
    last_report_ = res.report;
    deadline_ = replay::observed_now(comm, *current_) + interval_;
    ++resyncs_;
  }
  co_return current_;
}

}  // namespace hcs::clocksync
