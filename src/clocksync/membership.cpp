#include "clocksync/membership.hpp"

#include <algorithm>

#include "trace/span.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {

int hca3_parent(int rank, int nprocs) {
  if (rank <= 0 || nprocs <= 1) return -1;
  int nrounds = 0;
  while ((2 << nrounds) <= nprocs) ++nrounds;
  const int max_power = 1 << nrounds;
  if (rank >= max_power) return rank - max_power;   // step-2 clients
  return rank - (rank & -rank);                     // step-1: clear lowest set bit
}

std::vector<ReadmitEvent> readmit_schedule(simmpi::World& world) {
  std::vector<ReadmitEvent> out;
  const fault::FaultInjector* fault = world.fault_injector();
  if (fault == nullptr || !fault->churn_active()) return out;
  for (int r = 0; r < world.size(); ++r) {
    if (!fault->has_churn(r)) continue;
    const int incarnations = fault->incarnation_count(r);
    for (int k = 1; k < incarnations; ++k) {
      const sim::Time at = fault->up_start(r, k);
      if (at >= sim::kTimeInfinity) break;        // final departure: no restart
      if (fault->up_end(r, k) <= at) continue;    // empty slot
      out.push_back(ReadmitEvent{at, r, k});
    }
  }
  std::sort(out.begin(), out.end(), [](const ReadmitEvent& a, const ReadmitEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.rank < b.rank;
  });
  return out;
}

namespace {

// Position of `world_rank` among the ranks up at `at`; -1 when down.
int view_position(simmpi::World& world, int world_rank, sim::Time at) {
  const fault::FaultInjector* fault = world.fault_injector();
  int pos = 0;
  for (int r = 0; r < world.size(); ++r) {
    if (fault != nullptr && fault->is_down(r, at)) continue;
    if (r == world_rank) return pos;
    ++pos;
  }
  return -1;
}

}  // namespace

int readmit_reference(simmpi::World& world, const ReadmitEvent& event) {
  const fault::FaultInjector* fault = world.fault_injector();
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(world.size()));
  int pos = -1;
  for (int r = 0; r < world.size(); ++r) {
    if (fault != nullptr && fault->is_down(r, event.at)) continue;
    if (r == event.rank) pos = static_cast<int>(members.size());
    members.push_back(r);
  }
  const int n = static_cast<int>(members.size());
  if (pos < 0 || n < 2) return -1;
  // A rank restarting at the same instant is itself a re-admission client
  // and cannot serve (two simultaneous returners referencing each other
  // would deadlock); walk up the tree past them, then fall back to the
  // lowest settled member.
  const auto restarting_here = [&](int world_rank) {
    if (fault == nullptr || !fault->has_churn(world_rank)) return false;
    const int k = fault->incarnation(world_rank, event.at);
    return k > 0 && fault->up_start(world_rank, k) == event.at;
  };
  for (int p = pos; (p = hca3_parent(p, n)) >= 0;) {
    if (!restarting_here(members[static_cast<std::size_t>(p)])) {
      return members[static_cast<std::size_t>(p)];
    }
  }
  for (int i = 0; i < n; ++i) {
    if (i == pos || restarting_here(members[static_cast<std::size_t>(i)])) continue;
    return members[static_cast<std::size_t>(i)];
  }
  return -1;  // every other member is also restarting right now
}

sim::Task<ReadmitResult> readmit(simmpi::Comm& view, ReadmitEvent event, vclock::ClockPtr clk,
                                 OffsetAlgorithm& oalg, ReadmitPolicy policy) {
  simmpi::World& world = view.world();
  const int me = view.my_world_rank();
  const int client_pos = view_position(world, event.rank, event.at);
  const int ref_world = readmit_reference(world, event);
  const int ref_pos = view_position(world, ref_world, event.at);
  HCS_TRACE_SCOPE(Sync, me, "membership.readmit", event.incarnation);
  if (client_pos < 0 || ref_pos < 0) co_return ReadmitResult{std::move(clk), SyncReport{}};
  if (view.rank() != client_pos) {
    // The failure detector clears the returning rank one probe period after
    // its restart; a burst posted before that would abandon against a
    // believed-dead partner.  The serving side therefore rendezvouses at
    // event.at + P — the client simply blocks until it is served.
    const simmpi::FailureDetector* fd = view.world().failure_detector();
    sim::Simulation& s = view.sim();
    const sim::Time ready = fd != nullptr ? event.at + fd->probe_period() : event.at;
    if (s.now() < ready) co_await s.delay(ready - s.now());
  }
  if (view.rank() == client_pos) {
    // The returning rank's sub-phase of the tree: one pairwise learn against
    // its reference, then re-anchor the global clock — exactly what its
    // original HCA3 round did, and nothing more.
    vclock::ClockPtr dummy = vclock::GlobalClockLM::identity(clk);
    const LearnResult learned =
        co_await learn_clock_model(view, ref_pos, client_pos, *dummy, oalg, policy.sync);
    ReadmitResult out;
    out.report = learned.report;
    out.clock = vclock::make_synced_clock(clk, learned.model, world.model_bank_of(me));
    co_return out;
  }
  // Serving side: answer the ping-pongs with the synchronized clock, keep it.
  (void)co_await learn_clock_model(view, ref_pos, client_pos, *clk, oalg, policy.sync);
  co_return ReadmitResult{std::move(clk), SyncReport{}};
}

}  // namespace hcs::clocksync
