// JK (Jones & Koenig 2013).
//
// The reference process synchronizes every client individually: accurate
// direct fits, but O(p) rounds — at scale the clock drift changes while the
// later clients are still waiting their turn, which is exactly why the paper
// finds JK uncompetitive on Hydra and Titan.
#pragma once

#include "clocksync/sync_algorithm.hpp"

namespace hcs::clocksync {

class JKSync final : public ClockSync {
 public:
  JKSync(SyncConfig cfg, std::unique_ptr<OffsetAlgorithm> oalg);

  sim::Task<SyncResult> sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) override;
  std::string name() const override;

 private:
  SyncConfig cfg_;
  std::unique_ptr<OffsetAlgorithm> oalg_;
};

}  // namespace hcs::clocksync
