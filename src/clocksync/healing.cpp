#include "clocksync/healing.hpp"

#include <optional>
#include <vector>

#include "simmpi/message.hpp"

namespace hcs::clocksync {

bool crash_model_active(const simmpi::Comm& comm) {
  return comm.world().failure_detector() != nullptr;
}

bool crash_era_begun(const simmpi::Comm& comm) {
  const simmpi::FailureDetector* fd = comm.world().failure_detector();
  return fd && fd->any_event_fired(comm.sim().now());
}

sim::Task<bool> agree_any(simmpi::Comm& comm, bool my_vote) {
  if (!crash_model_active(comm) || comm.size() <= 1) co_return my_vote;
  // Direct O(p^2) exchange, mirroring Comm::split's crash-era member
  // exchange: no relays, so a dead rank can only lose its own vote.  A vote
  // lost to a crash reads as "false", which at worst skips a heal for a rank
  // that is dead anyway.
  comm.advance_collective();
  const std::int64_t tag = comm.collective_tag(0);
  const std::vector<double> ballot = {my_vote ? 1.0 : 0.0};
  for (int peer = 0; peer < comm.size(); ++peer) {
    if (peer != comm.rank()) co_await comm.send(peer, tag, ballot, 8);
  }
  bool any = my_vote;
  for (int peer = 0; peer < comm.size(); ++peer) {
    if (peer == comm.rank()) continue;
    std::optional<simmpi::Message> msg = co_await comm.recv_ft(peer, tag);
    if (msg && !msg->data.empty() && msg->data.front() != 0.0) any = true;
  }
  co_return any;
}

sim::Task<simmpi::Comm> surviving_quorum(simmpi::Comm& comm) {
  // The crash-era split excludes ranks whose (color, key) never arrived;
  // members stay sorted, so the lowest live rank is elected rank 0.
  co_return co_await comm.split(0, comm.rank());
}

}  // namespace hcs::clocksync
