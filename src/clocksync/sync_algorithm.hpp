// Clock synchronization algorithm interface.
//
// sync_clocks is a collective over the communicator: every member calls it
// with its current base clock (MPI_Wtime analogue, or an already-synchronized
// global clock when used inside HlHCA) and receives a logical, global clock.
// A ClockSync instance belongs to one rank (per-rank state such as the
// Mean-RTT cache lives in the owned OffsetAlgorithm).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "clocksync/offset.hpp"
#include "sim/task.hpp"
#include "simmpi/comm.hpp"
#include "vclock/clock.hpp"

namespace hcs::clocksync {

/// Tuning knobs shared by the algorithm family (paper §III-C3).
struct SyncConfig {
  int nfitpoints = 1000;           // fit points per linear regression
  bool recompute_intercept = false;  // re-measure the intercept after fitting
};

/// Per-rank health of one synchronization, ordered by severity.  kOk: every
/// measurement usable.  kDegraded: exchanges were lost or outliers rejected,
/// but enough points survived to fit a model.  kFailed: too few points — the
/// returned clock is a best-effort fallback, not a synchronized clock.
enum class SyncHealth : std::uint8_t { kOk = 0, kDegraded = 1, kFailed = 2 };

const char* to_string(SyncHealth health);

/// Measurement-quality report accumulated by one rank across the learn /
/// offset phases of a synchronization.  Under fault injection this is how a
/// sync reports degraded or failed ranks instead of hanging; fault-free the
/// report is all zeros with health == kOk.
struct SyncReport {
  SyncHealth health = SyncHealth::kOk;
  int points_requested = 0;  // fit points this rank asked for (client role)
  int points_used = 0;       // points that survived validity + outlier checks
  int points_invalid = 0;    // measurements whose burst lost every exchange
  int outliers_rejected = 0; // valid points rejected by the min-RTT filter
  int exchanges_lost = 0;    // ping-pong exchanges abandoned by the transport
  int retries = 0;           // timed-out exchange attempts that were retried

  bool clean() const noexcept { return health == SyncHealth::kOk; }

  /// Severity-max on health, sums elsewhere (used when a sync composes
  /// several learn phases, e.g. hierarchical levels).
  void merge(const SyncReport& other) {
    health = std::max(health, other.health);
    points_requested += other.points_requested;
    points_used += other.points_used;
    points_invalid += other.points_invalid;
    outliers_rejected += other.outliers_rejected;
    exchanges_lost += other.exchanges_lost;
    retries += other.retries;
  }
};

/// A synchronized clock plus this rank's measurement-quality report.  The
/// implicit conversions keep pre-existing call sites — which only want the
/// clock — compiling unchanged.
struct SyncResult {
  vclock::ClockPtr clock;
  SyncReport report;

  operator vclock::ClockPtr() const { return clock; }  // NOLINT(google-explicit-constructor)
  vclock::Clock& operator*() const { return *clock; }
  vclock::Clock* operator->() const { return clock.get(); }
};

class ClockSync {
 public:
  virtual ~ClockSync() = default;

  /// Collective: returns this rank's synchronized logical clock plus its
  /// health report (SyncResult converts implicitly to vclock::ClockPtr for
  /// callers that ignore the report).
  virtual sim::Task<SyncResult> sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) = 0;

  /// Human-readable label, e.g. "hca3/recompute_intercept/1000/skampi_offset/100".
  virtual std::string name() const = 0;
};

/// Formats the canonical label for a flat algorithm.
std::string sync_label(const std::string& algo, const SyncConfig& cfg,
                       const OffsetAlgorithm& oalg);

}  // namespace hcs::clocksync
