// Clock synchronization algorithm interface.
//
// sync_clocks is a collective over the communicator: every member calls it
// with its current base clock (MPI_Wtime analogue, or an already-synchronized
// global clock when used inside HlHCA) and receives a logical, global clock.
// A ClockSync instance belongs to one rank (per-rank state such as the
// Mean-RTT cache lives in the owned OffsetAlgorithm).
#pragma once

#include <memory>
#include <string>

#include "clocksync/offset.hpp"
#include "sim/task.hpp"
#include "simmpi/comm.hpp"
#include "vclock/clock.hpp"

namespace hcs::clocksync {

/// Tuning knobs shared by the algorithm family (paper §III-C3).
struct SyncConfig {
  int nfitpoints = 1000;           // fit points per linear regression
  bool recompute_intercept = false;  // re-measure the intercept after fitting
};

class ClockSync {
 public:
  virtual ~ClockSync() = default;

  /// Collective: returns this rank's synchronized logical clock.
  virtual sim::Task<vclock::ClockPtr> sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) = 0;

  /// Human-readable label, e.g. "hca3/recompute_intercept/1000/skampi_offset/100".
  virtual std::string name() const = 0;
};

/// Formats the canonical label for a flat algorithm.
std::string sync_label(const std::string& algo, const SyncConfig& cfg,
                       const OffsetAlgorithm& oalg);

}  // namespace hcs::clocksync
