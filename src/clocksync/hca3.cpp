#include "clocksync/hca3.hpp"

#include <algorithm>
#include <stdexcept>

#include "clocksync/healing.hpp"
#include "clocksync/model_learning.hpp"
#include "trace/span.hpp"
#include "vclock/global_clock.hpp"

namespace hcs::clocksync {

HCA3Sync::HCA3Sync(SyncConfig cfg, std::unique_ptr<OffsetAlgorithm> oalg)
    : cfg_(cfg), oalg_(std::move(oalg)) {
  if (!oalg_) throw std::invalid_argument("HCA3Sync: null offset algorithm");
}

std::string HCA3Sync::name() const { return sync_label("hca3", cfg_, *oalg_); }

sim::Task<SyncResult> HCA3Sync::sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) {
  SyncResult res = co_await sync_once(comm, clk);
  if (!crash_era_begun(comm) || comm.size() <= 1) co_return res;
  // Crash healing: a dead tree reference orphans its whole subtree (the
  // orphan serves its own children with an unsynchronized clock).  The
  // survivors agree, re-split — contiguously renumbering the live ranks, so
  // every orphan is re-parented and the lowest live rank becomes the new
  // root — and re-run the tree once over the quorum.
  const bool rerun = co_await agree_any(comm, res.report.health == SyncHealth::kFailed);
  if (!rerun) co_return res;
  simmpi::Comm healed = co_await surviving_quorum(comm);
  if (healed.size() <= 1) {
    res.report.health = std::max(res.report.health, SyncHealth::kDegraded);
    co_return res;
  }
  SyncResult redo = co_await sync_once(healed, std::move(clk));
  redo.report.points_invalid += res.report.points_invalid;
  redo.report.exchanges_lost += res.report.exchanges_lost;
  redo.report.retries += res.report.retries;
  redo.report.health = std::max(redo.report.health, SyncHealth::kDegraded);
  co_return redo;
}

sim::Task<SyncResult> HCA3Sync::sync_once(simmpi::Comm& comm, vclock::ClockPtr clk) {
  const int nprocs = comm.size();
  const int r = comm.rank();
  HCS_TRACE_SCOPE(Sync, comm.my_world_rank(), "hca3.sync_clocks", nprocs);

  int nrounds = 0;
  while ((2 << nrounds) <= nprocs) ++nrounds;  // floor(log2(nprocs))
  const int max_power = 1 << nrounds;

  vclock::ClockPtr my_clk = vclock::GlobalClockLM::identity(clk);  // dummy clock
  SyncReport report;  // each rank is a client at most once, plus ref roles

  // Step 1: ranks below max_power, reference time flowing down the tree.
  for (int i = nrounds; i >= 1; --i) {
    const int running_power = 1 << i;
    const int next_power = 1 << (i - 1);
    if (r >= max_power) break;
    if (r % running_power == 0) {
      const int other_rank = r + next_power;
      (void)co_await learn_clock_model(comm, r, other_rank, *my_clk, *oalg_, cfg_);
    } else if (r % running_power == next_power) {
      const int other_rank = r - next_power;
      const LearnResult learned =
          co_await learn_clock_model(comm, other_rank, r, *my_clk, *oalg_, cfg_);
      report.merge(learned.report);
      my_clk = vclock::make_synced_clock(clk, learned.model,
                                         comm.world().model_bank_of(comm.my_world_rank()));
    }
  }

  // Step 2: the remaining ranks in [max_power, nprocs).
  if (r >= max_power) {
    const int other_rank = r - max_power;
    const LearnResult learned =
        co_await learn_clock_model(comm, other_rank, r, *my_clk, *oalg_, cfg_);
    report.merge(learned.report);
    my_clk = vclock::make_synced_clock(clk, learned.model,
                                       comm.world().model_bank_of(comm.my_world_rank()));
  } else if (r < nprocs - max_power) {
    const int other_rank = r + max_power;
    (void)co_await learn_clock_model(comm, r, other_rank, *my_clk, *oalg_, cfg_);
  }
  co_return SyncResult{std::move(my_clk), report};
}

}  // namespace hcs::clocksync
