// LEARN_CLOCK_MODEL (paper Algorithm 2).
//
// Pairwise collective between `p_ref` and `other_rank`: the client gathers
// nfitpoints (timestamp, offset) pairs using the configured offset algorithm
// and fits a linear drift model; the reference merely answers the ping-pongs.
// With cfg.recompute_intercept set, one extra offset measurement re-anchors
// the intercept at the end of the fit (Alg. 2, COMPUTE_AND_SET_INTERCEPT).
//
// Robustness (fault injection): measurements whose burst lost every exchange
// are discarded, and surviving points whose tightest RTT exceeds twice the
// median min-RTT are rejected as outliers before fitting — congested or
// retried bursts produce asymmetric delays that would bias the regression.
// The LearnResult's report says how many points survived; fault-free it is
// clean (the min over >= nexchanges RTTs is essentially never an outlier).
#pragma once

#include "clocksync/offset.hpp"
#include "clocksync/sync_algorithm.hpp"
#include "vclock/linear_model.hpp"

namespace hcs::clocksync {

/// Fitted model plus the client's measurement-quality report.
struct LearnResult {
  vclock::LinearModel model;
  SyncReport report;
};

/// Returns the fitted model on the client; an identity model on the
/// reference (whose report is clean — quality is a client-side notion).
/// `clk` is the caller's clock used for timestamping — HCA3 passes an
/// already-synchronized global clock on the reference side.
/// `cfg` by value (lazily-started coroutine; temporaries bound to reference
/// parameters would dangle).
sim::Task<LearnResult> learn_clock_model(simmpi::Comm& comm, int p_ref, int other_rank,
                                         vclock::Clock& clk, OffsetAlgorithm& oalg,
                                         SyncConfig cfg);

}  // namespace hcs::clocksync
