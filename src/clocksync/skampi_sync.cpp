#include "clocksync/skampi_sync.hpp"

#include <stdexcept>

#include "vclock/global_clock.hpp"

namespace hcs::clocksync {

SKaMPISync::SKaMPISync(std::unique_ptr<OffsetAlgorithm> oalg) : oalg_(std::move(oalg)) {
  if (!oalg_) throw std::invalid_argument("SKaMPISync: null offset algorithm");
}

std::string SKaMPISync::name() const {
  return "skampi/" + oalg_->name() + "/" + std::to_string(oalg_->nexchanges());
}

sim::Task<SyncResult> SKaMPISync::sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) {
  const int r = comm.rank();
  if (r == 0) {
    for (int client = 1; client < comm.size(); ++client) {
      // Unreachable clients are marked failed on their own side; the
      // reference just skips them and keeps serving the quorum.
      if (comm.peer_status(client) == simmpi::PeerStatus::kDead) continue;
      (void)co_await oalg_->measure_offset(comm, *clk, 0, client);
    }
    co_return SyncResult{vclock::GlobalClockLM::identity(std::move(clk)), {}};
  }
  const ClockOffset o = co_await oalg_->measure_offset(comm, *clk, 0, r);
  SyncReport report;
  report.points_requested = 1;
  report.exchanges_lost = o.lost;
  report.retries = o.retries;
  if (o.valid) {
    report.points_used = 1;
    if (o.lost > 0) report.health = SyncHealth::kDegraded;
  } else {
    report.points_invalid = 1;
    report.health = SyncHealth::kFailed;  // no usable measurement: identity fallback
  }
  // Constant offset, no drift model: slope = 0 (an invalid measurement
  // carries offset 0.0, so the fallback is the uncorrected clock).
  co_return SyncResult{
      vclock::make_synced_clock(std::move(clk), vclock::LinearModel{0.0, o.offset},
                                comm.world().model_bank_of(comm.my_world_rank())),
      report};
}

}  // namespace hcs::clocksync
