// Ordinary least-squares fitting for clock drift models.
#pragma once

#include <span>

#include "vclock/linear_model.hpp"

namespace hcs::clocksync {

struct FitResult {
  vclock::LinearModel model;
  double r2 = 0.0;  // coefficient of determination
};

/// Fits y = slope * x + intercept.  x and y must have equal size >= 2.
/// x values are centered internally, so second-scale timestamps with
/// microsecond-scale structure do not lose precision.
FitResult fit_linear_model(std::span<const double> x, std::span<const double> y);

}  // namespace hcs::clocksync
