// HCA2 (paper [Hunold & Carpen-Amarie 2015], Fig. 1a).
//
// Clock models are learned up an inverted binomial tree against *base*
// clocks, merged at the root (MERGE of linear models), and distributed with
// MPI_Scatter.  O(log p) rounds, but merged models multiply per-fit errors
// and extrapolate fits taken early in the run — the weaknesses HCA3 removes.
#pragma once

#include <map>

#include "clocksync/model_learning.hpp"
#include "clocksync/sync_algorithm.hpp"
#include "vclock/linear_model.hpp"

namespace hcs::clocksync {

class HCA2Sync : public ClockSync {
 public:
  HCA2Sync(SyncConfig cfg, std::unique_ptr<OffsetAlgorithm> oalg);

  sim::Task<SyncResult> sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) override;
  std::string name() const override;

 protected:
  /// The shared tree + merge + scatter pipeline; returns this rank's fitted
  /// model relative to rank 0 (identity on rank 0) plus the merged quality
  /// report of every learn phase this rank was a client in.  HCASync reuses
  /// this.
  sim::Task<LearnResult> run_tree_and_scatter(simmpi::Comm& comm, vclock::ClockPtr clk);

  SyncConfig cfg_;
  std::unique_ptr<OffsetAlgorithm> oalg_;
};

}  // namespace hcs::clocksync
