#include "clocksync/model_learning.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "clocksync/fitting.hpp"
#include "clocksync/soa.hpp"
#include "trace/metrics.hpp"
#include "trace/span.hpp"

namespace hcs::clocksync {

namespace {

/// Classifies the learn outcome.  Outlier rejection alone (a few points at
/// most fault-free) does not degrade health; lost exchanges or unusable
/// measurements do, and fewer than two usable points means the fit failed.
SyncHealth classify_health(const SyncReport& r) {
  if (r.points_used < 2) return SyncHealth::kFailed;
  if (r.points_invalid > 0 || r.exchanges_lost > 0 ||
      r.outliers_rejected > r.points_requested / 4) {
    return SyncHealth::kDegraded;
  }
  return SyncHealth::kOk;
}

}  // namespace

sim::Task<LearnResult> learn_clock_model(simmpi::Comm& comm, int p_ref, int other_rank,
                                         vclock::Clock& clk, OffsetAlgorithm& oalg,
                                         SyncConfig cfg) {
  const int me = comm.rank();
  HCS_TRACE_SCOPE(Sync, comm.my_world_rank(), "learn_clock_model",
                  comm.world_rank(me == p_ref ? other_rank : p_ref));
  LearnResult out;  // identity model; returned as-is on the reference side

  if (me == p_ref) {
    for (int idx = 0; idx < cfg.nfitpoints; ++idx) {
      // A client declared dead will never complete another burst; stop
      // serving it instead of burning a timeout per remaining fit point.
      if (comm.peer_status(other_rank) == simmpi::PeerStatus::kDead) co_return out;
      (void)co_await oalg.measure_offset(comm, clk, p_ref, other_rank);
    }
    if (cfg.recompute_intercept &&
        comm.peer_status(other_rank) != simmpi::PeerStatus::kDead) {
      (void)co_await oalg.measure_offset(comm, clk, p_ref, other_rank);
    }
    co_return out;
  }
  if (me != other_rank) {
    throw std::logic_error("learn_clock_model: called by a non-participating rank");
  }

  SyncReport& report = out.report;
  report.points_requested = cfg.nfitpoints;
  FitPointsSoA points;
  points.reserve(static_cast<std::size_t>(cfg.nfitpoints));
  for (int idx = 0; idx < cfg.nfitpoints; ++idx) {
    // Dead reference: the remaining points can only come back invalid, so
    // charge them in one step and let the caller's healing logic take over.
    if (comm.peer_status(p_ref) == simmpi::PeerStatus::kDead) {
      report.points_invalid += cfg.nfitpoints - idx;
      break;
    }
    const ClockOffset o = co_await oalg.measure_offset(comm, clk, p_ref, other_rank);
    report.exchanges_lost += o.lost;
    report.retries += o.retries;
    if (!o.valid) {
      ++report.points_invalid;
      continue;
    }
    points.push(o.timestamp, o.offset, o.min_rtt);
  }

  // Min-RTT outlier rejection: points measured through congestion windows or
  // rescued by retries have inflated, asymmetric RTTs.  The threshold is
  // twice the median of the per-point minimum RTTs, which fault-free sits
  // just above the base latency and rejects nothing.
  report.outliers_rejected += static_cast<int>(points.compact_by_min_rtt());
  report.points_used = static_cast<int>(points.size());

  HCS_METRIC_ADD("sync.fit_points", report.points_used);
  if (report.outliers_rejected > 0) {
    HCS_METRIC_ADD("sync.fit_outliers_rejected", report.outliers_rejected);
  }
  if (report.points_used >= 2) {
    const FitResult fit = fit_linear_model(points.timestamps(), points.offsets());
    out.model = fit.model;
    HCS_METRIC_OBSERVE_RAW("sync.fit_r2", fit.r2);
  } else {
    // Degenerate: a single usable point fixes only the offset; none at all
    // leaves the identity model (health kFailed either way).
    out.model.slope = 0.0;
    out.model.intercept = points.empty() ? 0.0 : points.offsets().front();
  }
  if (cfg.recompute_intercept && comm.peer_status(p_ref) != simmpi::PeerStatus::kDead) {
    const ClockOffset o = co_await oalg.measure_offset(comm, clk, p_ref, other_rank);
    report.exchanges_lost += o.lost;
    report.retries += o.retries;
    if (o.valid) {
      out.model.intercept = out.model.slope * (-o.timestamp) + o.offset;
    } else {
      ++report.points_invalid;  // keep the fitted intercept
    }
  }
  report.health = classify_health(report);
  co_return out;
}

}  // namespace hcs::clocksync
