#include "clocksync/model_learning.hpp"

#include <stdexcept>
#include <vector>

#include "clocksync/fitting.hpp"
#include "trace/metrics.hpp"
#include "trace/span.hpp"

namespace hcs::clocksync {

sim::Task<vclock::LinearModel> learn_clock_model(simmpi::Comm& comm, int p_ref, int other_rank,
                                                 vclock::Clock& clk, OffsetAlgorithm& oalg,
                                                 SyncConfig cfg) {
  const int me = comm.rank();
  HCS_TRACE_SCOPE(Sync, comm.my_world_rank(), "learn_clock_model",
                  comm.world_rank(me == p_ref ? other_rank : p_ref));
  vclock::LinearModel lm;  // identity; returned as-is on the reference side

  if (me == p_ref) {
    for (int idx = 0; idx < cfg.nfitpoints; ++idx) {
      (void)co_await oalg.measure_offset(comm, clk, p_ref, other_rank);
    }
    if (cfg.recompute_intercept) {
      (void)co_await oalg.measure_offset(comm, clk, p_ref, other_rank);
    }
    co_return lm;
  }
  if (me != other_rank) {
    throw std::logic_error("learn_clock_model: called by a non-participating rank");
  }

  std::vector<double> xfit, yfit;
  xfit.reserve(static_cast<std::size_t>(cfg.nfitpoints));
  yfit.reserve(static_cast<std::size_t>(cfg.nfitpoints));
  for (int idx = 0; idx < cfg.nfitpoints; ++idx) {
    const ClockOffset o = co_await oalg.measure_offset(comm, clk, p_ref, other_rank);
    xfit.push_back(o.timestamp);
    yfit.push_back(o.offset);
  }
  HCS_METRIC_ADD("sync.fit_points", cfg.nfitpoints);
  if (cfg.nfitpoints >= 2) {
    const FitResult fit = fit_linear_model(xfit, yfit);
    lm = fit.model;
    HCS_METRIC_OBSERVE_RAW("sync.fit_r2", fit.r2);
  } else {
    // Degenerate configuration: a single fit point fixes only the offset.
    lm.slope = 0.0;
    lm.intercept = yfit.empty() ? 0.0 : yfit.front();
  }
  if (cfg.recompute_intercept) {
    const ClockOffset o = co_await oalg.measure_offset(comm, clk, p_ref, other_rank);
    lm.intercept = lm.slope * (-o.timestamp) + o.offset;
  }
  co_return lm;
}

}  // namespace hcs::clocksync
