// ClockPropSync (paper Algorithm 3).
//
// Intra-node clock propagation: the already-synchronized reference process
// flattens its (possibly nested) clock-model chain into a buffer, broadcasts
// it over the node-local communicator, and every other process re-instantiates
// the chain on top of its own base clock.
//
// Applicability condition (paper §IV-C): this is only correct if all ranks in
// the communicator read the SAME hardware time source — the condition one
// would check with clock_getcpuclockid on Linux.  The harnesses verify it via
// topology::ClusterTopology::time_source_id before composing HlHCA.
#pragma once

#include "clocksync/sync_algorithm.hpp"

namespace hcs::clocksync {

class ClockPropSync final : public ClockSync {
 public:
  /// `p_ref` is the communicator rank that has been synchronized with the
  /// global root (rank 0 after a node-leader split).
  explicit ClockPropSync(int p_ref = 0) : p_ref_(p_ref) {}

  sim::Task<SyncResult> sync_clocks(simmpi::Comm& comm, vclock::ClockPtr clk) override;
  std::string name() const override { return "ClockPropagation"; }

 private:
  int p_ref_;
};

}  // namespace hcs::clocksync
