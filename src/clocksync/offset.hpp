// Clock-offset measurement building blocks (paper §III-A).
//
// A clock offset algorithm estimates the current offset between a client's
// clock and a reference process's clock by exchanging ping-pong messages.
// Both the reference and the client call measure_offset (it is a pairwise
// collective); the returned ClockOffset is meaningful on the client and a
// zero dummy on the reference.
#pragma once

#include <memory>
#include <string>

#include "sim/task.hpp"
#include "simmpi/comm.hpp"
#include "vclock/clock.hpp"

namespace hcs::clocksync {

/// One fit point: the client-clock timestamp at which the offset to the
/// reference clock was estimated, and that estimated offset (ref - client).
/// The quality fields feed the fitting path's outlier rejection and the
/// degraded-rank reporting under fault injection; fault-free they are
/// `valid == true`, `lost == retries == 0` and `min_rtt` is the burst's
/// tightest round-trip.
struct ClockOffset {
  double timestamp = 0.0;
  double offset = 0.0;
  double min_rtt = 0.0;  // tightest client-observed RTT in the burst (quality signal)
  bool valid = true;     // false when every exchange of the burst was lost
  int lost = 0;          // exchanges abandoned by the transport's retry budget
  int retries = 0;       // timed-out exchange attempts that were retried
};

class OffsetAlgorithm {
 public:
  virtual ~OffsetAlgorithm() = default;

  /// Pairwise collective between comm ranks `p_ref` and `client`; `clk` is
  /// the caller's current clock (base or already-synchronized global clock —
  /// HCA3 passes the latter on the reference side, paper Fig. 1b).
  virtual sim::Task<ClockOffset> measure_offset(simmpi::Comm& comm, vclock::Clock& clk,
                                                int p_ref, int client) = 0;

  /// Label fragment used in configuration strings, e.g. "skampi_offset".
  virtual std::string name() const = 0;

  /// Ping-pongs per offset estimate (the paper's third tuning knob).
  virtual int nexchanges() const = 0;

  /// Fresh instance with the same parameters (per-rank state such as the
  /// Mean-RTT cache must not be shared between ranks).
  virtual std::unique_ptr<OffsetAlgorithm> clone() const = 0;
};

}  // namespace hcs::clocksync
