#include "clocksync/soa.hpp"

#include <algorithm>
#include <numeric>

namespace hcs::clocksync {

std::size_t FitPointsSoA::compact_by_min_rtt() {
  if (min_rtts_.size() < 4) return 0;
  std::vector<double> sorted = min_rtts_;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(sorted.size() / 2),
                   sorted.end());
  const double threshold = 2.0 * sorted[sorted.size() / 2] + 1e-9;
  std::size_t kept = 0;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < min_rtts_.size(); ++i) {
    if (min_rtts_[i] <= threshold) {
      timestamps_[kept] = timestamps_[i];
      offsets_[kept] = offsets_[i];
      min_rtts_[kept] = min_rtts_[i];
      ++kept;
    } else {
      ++rejected;
    }
  }
  timestamps_.resize(kept);
  offsets_.resize(kept);
  min_rtts_.resize(kept);
  return rejected;
}

std::pair<double, double> ObsSoA::median_by_diff() const {
  // nth_element over row indices compared by diff: the comparator sees the
  // exact decisions an AoS nth_element over {timestamp, diff} records would,
  // so the selected row — including its timestamp — is identical.
  std::vector<std::size_t> rows(diffs_.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  const auto mid = rows.begin() + static_cast<std::ptrdiff_t>(rows.size() / 2);
  std::nth_element(rows.begin(), mid, rows.end(),
                   [this](std::size_t a, std::size_t b) { return diffs_[a] < diffs_[b]; });
  return {timestamps_[*mid], diffs_[*mid]};
}

}  // namespace hcs::clocksync
